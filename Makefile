.PHONY: all build test lint check smoke bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# Static-analysis gate over every registry circuit. The warning budget
# is pinned to the current known findings (x641 dangling/unobservable
# cones, x820/x1488 redundant tie-offs, the x5378 uninitializable state
# core); a new warning anywhere fails the build.
lint:
	dune build bin/lint.exe
	dune exec bin/lint.exe -- --quiet --max-warnings 8

check: test lint

# Acceptance gate: the unit/property suites plus the seeded s27
# fault-injection campaign (200 faults, hardened defense) — every fault
# must be corrected or detected, with zero silent escapes.
smoke: test
	dune exec bin/inject.exe -- --smoke

bench:
	dune exec bench/main.exe -- --fast

clean:
	dune clean
