.PHONY: all build test test-parallel lint trace-smoke fuzz-smoke interrupt-smoke daemon-smoke sat-smoke blif-smoke perf-smoke check smoke bench bench-json clean

all: build

build:
	dune build @all

test:
	dune runtest

# The same tier-1 suite with the domain pool active: BIST_JOBS=2 routes
# every fault simulation through the sharded parallel path, whose
# results are bit-identical by the DESIGN.md §8 invariant — so the
# exact same tests must pass unchanged.
test-parallel:
	BIST_JOBS=2 dune runtest --force

# Static-analysis gate over every registry circuit. The warning budget
# is pinned to the current known findings (x641 dangling/unobservable
# cones, x820/x1488 redundant tie-offs, the x5378 uninitializable state
# core); a new warning anywhere fails the build.
lint:
	dune build bin/lint.exe
	dune exec bin/lint.exe -- --quiet --max-warnings 8

# Observability gate: a traced s27 generation run must produce a
# parseable Chrome trace-event document (validated by the from-scratch
# JSON parser behind `bistgen trace-check`).
trace-smoke:
	dune build bin/bistgen.exe
	dune exec bin/bistgen.exe -- tgen s27 --trace _build/trace-smoke.json -o /dev/null
	dune exec bin/bistgen.exe -- trace-check _build/trace-smoke.json

# Parser robustness gate: thousands of seeded random mutations of the
# registry's .bench sources must either parse or raise Parse_error —
# any other exception is a crash the CLI would expose.
fuzz-smoke:
	dune exec test/test_main.exe -- test fuzz

# Resilience gate (DESIGN.md §10): deadline- and SIGTERM-preempted runs,
# resumed from their checkpoints, must reproduce the uninterrupted
# result bit for bit; damaged or mismatched checkpoints must exit 2.
interrupt-smoke:
	./scripts/interrupt_smoke.sh

# Daemon robustness gate (DESIGN.md §11): a SIGKILLed worker's job
# migrates to a fresh worker bit-identically, a full queue answers with
# a typed rejection, hostile clients (truncated/garbage/slow frames)
# leave the daemon serving, and a SIGTERMed daemon parks its queue and
# recovers it on restart.
daemon-smoke:
	./scripts/daemon_smoke.sh

# Exact-untestability gate (DESIGN.md §12): the SAT pass must prove the
# known x298 untestable set, refute everything else (at least one fault
# via a SAT-derived, simulator-validated test), and respect the frame
# bound exactly on the boundary fault N6/0.
sat-smoke:
	./scripts/sat_smoke.sh

# BLIF frontend gate (DESIGN.md §14): every checked-in examples/*.blif
# parses, the Yosys-flavoured s27 runs lint + tgen unmodified, and the
# .bench and .blif serializations of one circuit produce byte-identical
# fault tables for the same sequence — sequentially and with BIST_JOBS=2.
blif-smoke:
	./scripts/blif_smoke.sh

# Performance gate (DESIGN.md §13): appends a fresh fault-table bench
# record (jobs=2) to BENCH_results.json, fails on any identical=false in
# the trajectory, and on multi-core hosts fails if the x1488/x5378
# speedup regressed >20% below the best recorded value (on cores=1 the
# speedup assertion is skipped with a warning — sharding is
# crossover-suppressed there by design).
perf-smoke:
	dune build bench/main.exe
	dune exec bench/main.exe -- --perf-smoke

check: test test-parallel lint trace-smoke fuzz-smoke interrupt-smoke daemon-smoke sat-smoke blif-smoke perf-smoke

# Acceptance gate: the unit/property suites plus the seeded s27
# fault-injection campaign (200 faults, hardened defense) — every fault
# must be corrected or detected, with zero silent escapes.
smoke: test
	dune exec bin/inject.exe -- --smoke

bench:
	dune exec bench/main.exe -- --fast

# Append a timed fault-table run record (sequential vs --jobs pool,
# with a bit-identity check) to the committed perf trajectory.
bench-json:
	dune exec bench/main.exe -- --json BENCH_results.json

clean:
	dune clean
