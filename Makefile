.PHONY: all build test smoke bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# Acceptance gate: the unit/property suites plus the seeded s27
# fault-injection campaign (200 faults, hardened defense) — every fault
# must be corrected or detected, with zero silent escapes.
smoke: test
	dune exec bin/inject.exe -- --smoke

bench:
	dune exec bench/main.exe -- --fast

clean:
	dune clean
