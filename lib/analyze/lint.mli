(** Unified static-analysis driver: one entry point that runs the
    {!Bist_circuit.Validate} soft checks, the {!Untestable} prescreen,
    the {!Sgraph} pass and a {!Scoap} summary over a netlist and folds
    everything into a flat list of severity-tagged findings, suitable
    for both human review and a CI gate ({!Bin.lint}). *)

type severity = Error | Warning | Info

val severity_name : severity -> string

type finding = {
  severity : severity;
  category : string;  (** stable machine-readable slug, e.g. "x-risk" *)
  message : string;
  nodes : string list;  (** affected node/fault names, possibly truncated *)
}

type report = { circuit : string; findings : finding list }

val run : ?sat:Untestable.exact_config -> Bist_circuit.Netlist.t -> report
(** The untestability section reports three exact buckets: proved
    untestable (warning), refuted by a concrete detecting test (info —
    never counted against a warning budget), and unknown. Without
    [?sat] the proofs are structural and the unknown residue is
    informational; with a SAT config the report is exact up to
    [sat.frames] time frames and a non-empty unknown set becomes a
    warning. *)

val errors : report -> int
val warnings : report -> int
val infos : report -> int

val pp : Format.formatter -> report -> unit
(** Text rendering, one line per finding:
    ["s27: warning[x-risk]: ... (G5 G6)"]. *)

val to_json : report -> string
(** Single-object JSON rendering with [circuit], severity counts, and
    the findings array. Self-contained (no external JSON library). *)
