module Netlist = Bist_circuit.Netlist
module Validate = Bist_circuit.Validate
module Fault = Bist_fault.Fault
module Universe = Bist_fault.Universe

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type finding = {
  severity : severity;
  category : string;
  message : string;
  nodes : string list;
}

type report = { circuit : string; findings : finding list }

let max_named_nodes = 8

let names c nodes = List.sort compare (List.map (Netlist.name c) nodes)

let truncate nodes =
  let n = List.length nodes in
  if n <= max_named_nodes then nodes
  else List.filteri (fun i _ -> i < max_named_nodes) nodes @ [ "..." ]

let plural n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s")

let validate_findings c =
  let r = Validate.check c in
  let finding severity category noun rest nodes =
    if nodes = [] then []
    else
      [
        {
          severity;
          category;
          message = plural (List.length nodes) noun ^ " " ^ rest;
          nodes = truncate (names c nodes);
        };
      ]
  in
  finding Warning "dangling" "dangling node" "(no fanout, not a primary output)"
    r.Validate.dangling
  @ finding Warning "unobservable" "node" "with no path to any primary output"
      r.Validate.unobservable
  @ finding Error "uncontrollable-ff" "flip-flop"
      "unreachable from any primary input" r.Validate.uncontrollable_ffs
  @ finding Warning "uninitializable-ff" "flip-flop"
      "that can never leave X under 3-valued simulation"
      r.Validate.maybe_uninitializable_ffs

(* The untestability section distinguishes three exact buckets: faults
   {e proved} untestable (one warning, the actionable set), faults
   {e refuted} by a concrete detecting test (info — they are ordinary
   testable faults and never count against a warning budget), and the
   {e unknown} residue. Without a SAT config the proofs are the
   structural ones and unknown is informational; with SAT enabled the
   report is exact up to the frame bound, so a non-empty unknown set
   is itself a warning (raise the frame bound or budgets to clear
   it). *)
let untestable_findings ?sat c =
  let u = Universe.collapsed c in
  let config =
    match sat with
    | Some cfg -> cfg
    | None -> { Untestable.default_exact_config with Untestable.sat_cap = 0 }
  in
  let sat_on = config.Untestable.sat_cap <> 0 in
  let e = Untestable.exact_prescreen ~config u in
  let fault_names set =
    List.map (fun id -> Fault.name c (Universe.get u id))
      (Bist_util.Bitset.elements set)
  in
  let total = Universe.size u in
  let n_proved = Bist_util.Bitset.cardinal e.Untestable.proved in
  let n_refuted = Bist_util.Bitset.cardinal e.Untestable.refuted in
  let n_unknown = Bist_util.Bitset.cardinal e.Untestable.unknown in
  let p = e.Untestable.structural in
  let proved_finding =
    if n_proved = 0 then []
    else
      [
        {
          severity = Warning;
          category = "untestable-faults";
          message =
            Printf.sprintf
              "%s proved untestable (of %d collapsed): %d unexcitable, %d \
               unobservable, %d propagation-blocked%s"
              (plural n_proved "fault") total p.Untestable.unexcitable
              p.Untestable.unobservable p.Untestable.blocked
              (if sat_on then
                 Printf.sprintf
                   ", %d SAT-unreachable, %d SAT-blocked (frame bound %d)"
                   e.Untestable.sat_unreachable e.Untestable.sat_blocked
                   config.Untestable.frames
               else "");
          nodes = truncate (fault_names e.Untestable.proved);
        };
      ]
  in
  let refuted_finding =
    if n_refuted = 0 then []
    else
      [
        {
          severity = Info;
          category = "refuted-faults";
          message =
            Printf.sprintf
              "%d of %d collapsed faults refuted by a concrete test%s"
              n_refuted total
              (match List.length e.Untestable.sat_tests with
              | 0 -> ""
              | k -> Printf.sprintf " (%d via SAT-derived tests)" k);
          nodes = [];
        };
      ]
  in
  let unknown_finding =
    if n_unknown = 0 then []
    else
      [
        {
          severity = (if sat_on then Warning else Info);
          category = "unknown-testability";
          message =
            Printf.sprintf
              "%s unresolved (no untestability proof, no detecting test%s)"
              (plural n_unknown "fault")
              (if sat_on then
                 Printf.sprintf " within %d frames / %d conflicts / cap %d"
                   config.Untestable.frames config.Untestable.max_conflicts
                   config.Untestable.sat_cap
               else " found by simulation");
          nodes = truncate (fault_names e.Untestable.unknown);
        };
      ]
  in
  proved_finding @ refuted_finding @ unknown_finding

let sgraph_findings c =
  let g = Sgraph.analyze c in
  if Sgraph.num_ffs g = 0 then []
  else begin
    let info =
      {
        severity = Info;
        category = "s-graph";
        message =
          Printf.sprintf
            "%s, %s (largest %d, %d cyclic), sequential depth %d"
            (plural (Sgraph.num_ffs g) "flip-flop")
            (plural (Sgraph.num_sccs g) "SCC")
            (Sgraph.largest_scc g) (Sgraph.nontrivial_sccs g) (Sgraph.depth g);
        nodes = [];
      }
    in
    let risk = Sgraph.x_risk g in
    let risk_finding =
      if risk = [] then []
      else
        [
          {
            severity = Warning;
            category = "x-risk";
            message =
              Printf.sprintf
                "%s may hold X indefinitely (cyclic state core with no \
                 round-0 synchronization) — X-contaminated MISR signatures \
                 likely"
                (plural (List.length risk) "flip-flop");
            nodes = truncate (names c risk);
          };
        ]
    in
    info :: risk_finding
  end

let scoap_findings c =
  let s = Scoap.compute c in
  let sum = Scoap.summarize s (Universe.collapsed c) in
  [
    {
      severity = Info;
      category = "scoap";
      message =
        Printf.sprintf
          "SCOAP over %s: median cost %d, max finite %d, %d saturated"
          (plural sum.Scoap.faults "collapsed fault")
          sum.Scoap.median_cost sum.Scoap.max_finite_cost sum.Scoap.saturated;
      nodes = [];
    };
  ]

let run ?sat c =
  {
    circuit = Netlist.circuit_name c;
    findings =
      validate_findings c @ untestable_findings ?sat c @ sgraph_findings c
      @ scoap_findings c;
  }

let count sev r =
  List.length (List.filter (fun f -> f.severity = sev) r.findings)

let errors = count Error
let warnings = count Warning
let infos = count Info

let pp fmt r =
  List.iter
    (fun f ->
      Format.fprintf fmt "%s: %s[%s]: %s" r.circuit (severity_name f.severity)
        f.category f.message;
      if f.nodes <> [] then
        Format.fprintf fmt " (%s)" (String.concat " " f.nodes);
      Format.fprintf fmt "@.")
    r.findings;
  Format.fprintf fmt "%s: %d error(s), %d warning(s), %d info(s)@." r.circuit
    (errors r) (warnings r) (infos r)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json r =
  let finding f =
    Printf.sprintf "{\"severity\":%s,\"category\":%s,\"message\":%s,\"nodes\":[%s]}"
      (json_string (severity_name f.severity))
      (json_string f.category) (json_string f.message)
      (String.concat "," (List.map json_string f.nodes))
  in
  Printf.sprintf
    "{\"circuit\":%s,\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"findings\":[%s]}"
    (json_string r.circuit) (errors r) (warnings r) (infos r)
    (String.concat "," (List.map finding r.findings))
