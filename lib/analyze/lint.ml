module Netlist = Bist_circuit.Netlist
module Validate = Bist_circuit.Validate
module Fault = Bist_fault.Fault
module Universe = Bist_fault.Universe

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type finding = {
  severity : severity;
  category : string;
  message : string;
  nodes : string list;
}

type report = { circuit : string; findings : finding list }

let max_named_nodes = 8

let names c nodes = List.sort compare (List.map (Netlist.name c) nodes)

let truncate nodes =
  let n = List.length nodes in
  if n <= max_named_nodes then nodes
  else List.filteri (fun i _ -> i < max_named_nodes) nodes @ [ "..." ]

let plural n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s")

let validate_findings c =
  let r = Validate.check c in
  let finding severity category noun rest nodes =
    if nodes = [] then []
    else
      [
        {
          severity;
          category;
          message = plural (List.length nodes) noun ^ " " ^ rest;
          nodes = truncate (names c nodes);
        };
      ]
  in
  finding Warning "dangling" "dangling node" "(no fanout, not a primary output)"
    r.Validate.dangling
  @ finding Warning "unobservable" "node" "with no path to any primary output"
      r.Validate.unobservable
  @ finding Error "uncontrollable-ff" "flip-flop"
      "unreachable from any primary input" r.Validate.uncontrollable_ffs
  @ finding Warning "uninitializable-ff" "flip-flop"
      "that can never leave X under 3-valued simulation"
      r.Validate.maybe_uninitializable_ffs

let untestable_findings c =
  let u = Universe.collapsed c in
  let p = Untestable.prescreen_universe u in
  let n = Untestable.total p in
  if n = 0 then []
  else begin
    let nodes = ref [] in
    Universe.iter
      (fun id f ->
        if Bist_util.Bitset.mem p.Untestable.untestable id then
          nodes := Fault.name c f :: !nodes)
      u;
    [
      {
        severity = Warning;
        category = "untestable-faults";
        message =
          Printf.sprintf
            "%s provably untestable (of %d collapsed): %d unexcitable, %d \
             unobservable, %d propagation-blocked"
            (plural n "fault") (Universe.size u) p.Untestable.unexcitable
            p.Untestable.unobservable p.Untestable.blocked;
        nodes = truncate (List.rev !nodes);
      };
    ]
  end

let sgraph_findings c =
  let g = Sgraph.analyze c in
  if Sgraph.num_ffs g = 0 then []
  else begin
    let info =
      {
        severity = Info;
        category = "s-graph";
        message =
          Printf.sprintf
            "%s, %s (largest %d, %d cyclic), sequential depth %d"
            (plural (Sgraph.num_ffs g) "flip-flop")
            (plural (Sgraph.num_sccs g) "SCC")
            (Sgraph.largest_scc g) (Sgraph.nontrivial_sccs g) (Sgraph.depth g);
        nodes = [];
      }
    in
    let risk = Sgraph.x_risk g in
    let risk_finding =
      if risk = [] then []
      else
        [
          {
            severity = Warning;
            category = "x-risk";
            message =
              Printf.sprintf
                "%s may hold X indefinitely (cyclic state core with no \
                 round-0 synchronization) — X-contaminated MISR signatures \
                 likely"
                (plural (List.length risk) "flip-flop");
            nodes = truncate (names c risk);
          };
        ]
    in
    info :: risk_finding
  end

let scoap_findings c =
  let s = Scoap.compute c in
  let sum = Scoap.summarize s (Universe.collapsed c) in
  [
    {
      severity = Info;
      category = "scoap";
      message =
        Printf.sprintf
          "SCOAP over %s: median cost %d, max finite %d, %d saturated"
          (plural sum.Scoap.faults "collapsed fault")
          sum.Scoap.median_cost sum.Scoap.max_finite_cost sum.Scoap.saturated;
      nodes = [];
    };
  ]

let run c =
  {
    circuit = Netlist.circuit_name c;
    findings =
      validate_findings c @ untestable_findings c @ sgraph_findings c
      @ scoap_findings c;
  }

let count sev r =
  List.length (List.filter (fun f -> f.severity = sev) r.findings)

let errors = count Error
let warnings = count Warning
let infos = count Info

let pp fmt r =
  List.iter
    (fun f ->
      Format.fprintf fmt "%s: %s[%s]: %s" r.circuit (severity_name f.severity)
        f.category f.message;
      if f.nodes <> [] then
        Format.fprintf fmt " (%s)" (String.concat " " f.nodes);
      Format.fprintf fmt "@.")
    r.findings;
  Format.fprintf fmt "%s: %d error(s), %d warning(s), %d info(s)@." r.circuit
    (errors r) (warnings r) (infos r)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json r =
  let finding f =
    Printf.sprintf "{\"severity\":%s,\"category\":%s,\"message\":%s,\"nodes\":[%s]}"
      (json_string (severity_name f.severity))
      (json_string f.category) (json_string f.message)
      (String.concat "," (List.map json_string f.nodes))
  in
  Printf.sprintf
    "{\"circuit\":%s,\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"findings\":[%s]}"
    (json_string r.circuit) (errors r) (warnings r) (infos r)
    (String.concat "," (List.map finding r.findings))
