module Netlist = Bist_circuit.Netlist
module Gate = Bist_circuit.Gate
module Fault = Bist_fault.Fault
module Universe = Bist_fault.Universe

let infinite = 1_000_000_000

let sat_add a b = if a >= infinite || b >= infinite then infinite else a + b
let sat_scale k a = if a >= infinite then infinite else min infinite (k * a)

type t = {
  circuit : Netlist.t;
  cc0 : int array;
  cc1 : int array;
  co : int array;
  sc0 : int array;
  sc1 : int array;
  so : int array;
}

(* Per-gate controllability from fanin controllabilities. [extra] is the
   cost of crossing the gate itself: 1 for the combinational measures, 0
   for the sequential ones (only flip-flops cost a clock). *)
let gate_ctrl kind ~extra c0 c1 fanins =
  let sum f = Array.fold_left (fun acc d -> sat_add acc (f d)) 0 fanins in
  let mn f = Array.fold_left (fun acc d -> min acc (f d)) infinite fanins in
  let zero, one =
    match kind with
    | Gate.Buf -> (c0 fanins.(0), c1 fanins.(0))
    | Gate.Not -> (c1 fanins.(0), c0 fanins.(0))
    | Gate.And -> (mn c0, sum c1)
    | Gate.Nand -> (sum c1, mn c0)
    | Gate.Or -> (sum c0, mn c1)
    | Gate.Nor -> (mn c1, sum c0)
    | Gate.Xor | Gate.Xnor ->
      (* Cheapest way to produce each parity over the fanin fold. *)
      let a0, a1 =
        Array.fold_left
          (fun (a0, a1) d ->
            let x0 = c0 d and x1 = c1 d in
            ( min (sat_add a0 x0) (sat_add a1 x1),
              min (sat_add a0 x1) (sat_add a1 x0) ))
          (0, infinite) fanins
      in
      if kind = Gate.Xnor then (a1, a0) else (a0, a1)
    | Gate.Input | Gate.Dff | Gate.Const0 | Gate.Const1 ->
      invalid_arg "Scoap.gate_ctrl"
  in
  (sat_add zero extra, sat_add one extra)

let controllabilities c ~extra ~dff_extra ~input_cost ~const_cost =
  let n = Netlist.size c in
  let c0 = Array.make n infinite and c1 = Array.make n infinite in
  Array.iter
    (fun pi ->
      c0.(pi) <- input_cost;
      c1.(pi) <- input_cost)
    (Netlist.inputs c);
  let changed = ref true in
  while !changed do
    changed := false;
    let set node (z, o) =
      if z < c0.(node) then begin
        c0.(node) <- z;
        changed := true
      end;
      if o < c1.(node) then begin
        c1.(node) <- o;
        changed := true
      end
    in
    Array.iter
      (fun node ->
        match Netlist.kind c node with
        | Gate.Const0 -> set node (const_cost, infinite)
        | Gate.Const1 -> set node (infinite, const_cost)
        | kind ->
          let fanins = Netlist.fanins c node in
          set node
            (gate_ctrl kind ~extra (fun d -> c0.(d)) (fun d -> c1.(d)) fanins))
      (Netlist.topo_order c);
    Array.iter
      (fun ff ->
        let d = (Netlist.fanins c ff).(0) in
        set ff (sat_add c0.(d) dff_extra, sat_add c1.(d) dff_extra))
      (Netlist.dffs c)
  done;
  (c0, c1)

(* Observability of fanin pin [p] of [gate]: the gate's own output
   observability plus the cost of holding every other pin at a value that
   lets the pin's value through. *)
let pin_obs_of kind ~extra ~out_obs c0 c1 fanins p =
  let side acc j =
    if j = p then acc
    else
      let d = fanins.(j) in
      let hold =
        match kind with
        | Gate.And | Gate.Nand -> c1 d
        | Gate.Or | Gate.Nor -> c0 d
        | Gate.Xor | Gate.Xnor -> min (c0 d) (c1 d)
        | _ -> 0
      in
      sat_add acc hold
  in
  let acc = ref (sat_add out_obs extra) in
  for j = 0 to Array.length fanins - 1 do
    acc := side !acc j
  done;
  !acc

let observabilities c ~extra ~dff_extra (c0, c1) =
  let n = Netlist.size c in
  let obs = Array.make n infinite in
  let changed = ref true in
  while !changed do
    changed := false;
    let relax node v =
      if v < obs.(node) then begin
        obs.(node) <- v;
        changed := true
      end
    in
    for node = 0 to n - 1 do
      if Netlist.is_output c node then relax node 0;
      Array.iter
        (fun g ->
          let fanins = Netlist.fanins c g in
          match Netlist.kind c g with
          | Gate.Dff -> relax node (sat_add obs.(g) dff_extra)
          | kind ->
            Array.iteri
              (fun p d ->
                if d = node then
                  relax node
                    (pin_obs_of kind ~extra ~out_obs:obs.(g)
                       (fun d -> c0.(d))
                       (fun d -> c1.(d))
                       fanins p))
              fanins)
        (Netlist.fanouts c node)
    done
  done;
  obs

let compute c =
  let cc = controllabilities c ~extra:1 ~dff_extra:1 ~input_cost:1 ~const_cost:1 in
  let sc = controllabilities c ~extra:0 ~dff_extra:1 ~input_cost:0 ~const_cost:0 in
  let co = observabilities c ~extra:1 ~dff_extra:1 cc in
  let so = observabilities c ~extra:0 ~dff_extra:1 sc in
  {
    circuit = c;
    cc0 = fst cc;
    cc1 = snd cc;
    co;
    sc0 = fst sc;
    sc1 = snd sc;
    so;
  }

let cc0 t n = t.cc0.(n)
let cc1 t n = t.cc1.(n)
let co t n = t.co.(n)
let sc0 t n = t.sc0.(n)
let sc1 t n = t.sc1.(n)
let so t n = t.so.(n)

let pin_co t ~gate ~pin =
  let c = t.circuit in
  match Netlist.kind c gate with
  | Gate.Dff -> sat_add t.co.(gate) 1
  | kind ->
    pin_obs_of kind ~extra:1 ~out_obs:t.co.(gate)
      (fun d -> t.cc0.(d))
      (fun d -> t.cc1.(d))
      (Netlist.fanins c gate) pin

let pin_so t ~gate ~pin =
  let c = t.circuit in
  match Netlist.kind c gate with
  | Gate.Dff -> sat_add t.so.(gate) 1
  | kind ->
    pin_obs_of kind ~extra:0 ~out_obs:t.so.(gate)
      (fun d -> t.sc0.(d))
      (fun d -> t.sc1.(d))
      (Netlist.fanins c gate) pin

(* Sequential effort dominates in practice (a clock cycle costs far more
   than an extra gate), hence the 100x weight on the sequential part. *)
let fault_cost t f =
  let c = t.circuit in
  let driver, comb_obs, seq_obs =
    match f.Fault.site with
    | Fault.Output node -> (node, t.co.(node), t.so.(node))
    | Fault.Pin { gate; pin } ->
      ((Netlist.fanins c gate).(pin), pin_co t ~gate ~pin, pin_so t ~gate ~pin)
  in
  let comb_ctrl, seq_ctrl =
    match f.Fault.stuck with
    | Bist_logic.Ternary.Zero -> (t.cc1.(driver), t.sc1.(driver))
    | Bist_logic.Ternary.One -> (t.cc0.(driver), t.sc0.(driver))
    | Bist_logic.Ternary.X -> invalid_arg "Scoap.fault_cost"
  in
  sat_add (sat_add comb_ctrl comb_obs) (sat_scale 100 (sat_add seq_ctrl seq_obs))

type summary = {
  faults : int;
  median_cost : int;
  max_finite_cost : int;
  saturated : int;
}

let summarize t u =
  let costs = Array.init (Universe.size u) (fun i -> fault_cost t (Universe.get u i)) in
  Array.sort compare costs;
  let n = Array.length costs in
  let saturated = Array.fold_left (fun acc c -> if c >= infinite then acc + 1 else acc) 0 costs in
  let max_finite =
    Array.fold_left (fun acc c -> if c < infinite then max acc c else acc) 0 costs
  in
  {
    faults = n;
    median_cost = (if n = 0 then 0 else costs.(n / 2));
    max_finite_cost = max_finite;
    saturated;
  }
