(** Static untestability proofs for single stuck-at faults.

    Three sound (no-false-positive) arguments, all purely structural:

    - {b Unexcitable}: the achievable-value fixpoint ({!Bist_circuit.Validate.achievable})
      shows the fault line can never carry the value opposite the stuck
      value in the fault-free machine. Detection under three-valued
      simulation requires a binary good-vs-faulty conflict at a primary
      output, which can only originate at the fault site when the good
      value there is exactly the complement of the stuck value — so the
      fault is undetectable.

    - {b Unobservable}: no fanout path (through any number of gates and
      flip-flops) from the fault line reaches a primary output.

    - {b Blocked}: every fanout path is cut by a gate with a {e blocking
      side pin} — a side input that is provably a solid controlling
      constant (always that binary value, never X), or provably always X.
      A good-vs-faulty conflict cannot cross such a gate: a solid
      controlling side forces both machines' outputs, and an always-X
      side keeps at least one machine's output off the conflicting
      binary value. The argument is only valid when the blocking side is
      outside the fault's structural fanout cone (otherwise the faulty
      machine could change the blocker itself); {!check} performs that
      per-fault refinement automatically.

    Verdicts are with respect to pessimistic three-valued simulation
    from the all-X reset state — the detection semantics used everywhere
    in this repository ({!Bist_fault.Fsim}). *)

type reason =
  | Unexcitable
  | Unobservable
  | Blocked
  | Sat_unreachable
      (** UNSAT proof that no sequence within the frame bound excites
          the fault site ({!exact_prescreen} only). *)
  | Sat_blocked
      (** UNSAT proof that no sequence within the frame bound
          propagates the fault to an output ({!exact_prescreen}
          only). *)

val reason_name : reason -> string

type t
(** Per-circuit analysis state, computed once and queried per fault. *)

val analyze : Bist_circuit.Netlist.t -> t

val check : t -> Bist_fault.Fault.t -> reason option
(** [Some r] means the fault is provably undetectable, for reason [r].
    [None] means no proof was found (the fault may or may not be
    testable). *)

type prescreen = {
  untestable : Bist_util.Bitset.t;
      (** Fault ids (into the screened universe) proved untestable. *)
  unexcitable : int;
  unobservable : int;
  blocked : int;
}

val prescreen_universe : Bist_fault.Universe.t -> prescreen

val total : prescreen -> int
(** Faults removed, all reasons combined. *)

(** {2 Exact (SAT-backed) prescreen}

    Three phases: the structural prover above; refutation of the
    remainder by deterministic random simulation (a detected fault is
    testable, no proof needed); and bounded-exact SAT queries
    ({!Bist_sat.Satgen}) on the surviving hard tail. The result
    partitions the universe into {e proved} untestable (structural
    proofs are unconditional; SAT proofs are exact up to
    [config.frames] time frames), {e refuted} (a concrete detecting
    test exists), and {e unknown} (budget or cap exhausted). *)

type exact_config = {
  frames : int;  (** SAT time-frame bound *)
  max_conflicts : int;  (** per-solve conflict budget *)
  sat_cap : int;
      (** max faults sent to the SAT solver, in fault-id order;
          [0] disables the SAT phase, negative removes the cap *)
  refute_rounds : int;  (** random refutation sequences *)
  refute_length : int;
  seed : int;  (** fixed seed: results are deterministic *)
}

val default_exact_config : exact_config

type exact = {
  config : exact_config;
  structural : prescreen;
  proved : Bist_util.Bitset.t;
      (** structural plus SAT-proved fault ids *)
  refuted : Bist_util.Bitset.t;
      (** ids with a concrete detecting test (simulation or a
          validated SAT model) *)
  unknown : Bist_util.Bitset.t;  (** everything else *)
  sat_unreachable : int;
  sat_blocked : int;
  sat_attempted : int;
  sat_tests : (int * Bist_logic.Tseq.t) list;
      (** validated SAT-derived tests for previously undischarged
          faults, in fault-id order — ready to seed T0 *)
}

val exact_prescreen :
  ?obs:Bist_obs.Obs.t ->
  ?ctl:Bist_resilience.Ctl.t ->
  ?config:exact_config ->
  Bist_fault.Universe.t ->
  exact
(** Deterministic for a fixed config. [?ctl] makes the simulation and
    SAT phases preemptible; [?obs] records ["untestable.structural"],
    ["untestable.sim_refute"] and ["untestable.sat"] spans. *)

val exact_proved_total : exact -> int
