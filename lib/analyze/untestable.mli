(** Static untestability proofs for single stuck-at faults.

    Three sound (no-false-positive) arguments, all purely structural:

    - {b Unexcitable}: the achievable-value fixpoint ({!Bist_circuit.Validate.achievable})
      shows the fault line can never carry the value opposite the stuck
      value in the fault-free machine. Detection under three-valued
      simulation requires a binary good-vs-faulty conflict at a primary
      output, which can only originate at the fault site when the good
      value there is exactly the complement of the stuck value — so the
      fault is undetectable.

    - {b Unobservable}: no fanout path (through any number of gates and
      flip-flops) from the fault line reaches a primary output.

    - {b Blocked}: every fanout path is cut by a gate with a {e blocking
      side pin} — a side input that is provably a solid controlling
      constant (always that binary value, never X), or provably always X.
      A good-vs-faulty conflict cannot cross such a gate: a solid
      controlling side forces both machines' outputs, and an always-X
      side keeps at least one machine's output off the conflicting
      binary value. The argument is only valid when the blocking side is
      outside the fault's structural fanout cone (otherwise the faulty
      machine could change the blocker itself); {!check} performs that
      per-fault refinement automatically.

    Verdicts are with respect to pessimistic three-valued simulation
    from the all-X reset state — the detection semantics used everywhere
    in this repository ({!Bist_fault.Fsim}). *)

type reason = Unexcitable | Unobservable | Blocked

val reason_name : reason -> string

type t
(** Per-circuit analysis state, computed once and queried per fault. *)

val analyze : Bist_circuit.Netlist.t -> t

val check : t -> Bist_fault.Fault.t -> reason option
(** [Some r] means the fault is provably undetectable, for reason [r].
    [None] means no proof was found (the fault may or may not be
    testable). *)

type prescreen = {
  untestable : Bist_util.Bitset.t;
      (** Fault ids (into the screened universe) proved untestable. *)
  unexcitable : int;
  unobservable : int;
  blocked : int;
}

val prescreen_universe : Bist_fault.Universe.t -> prescreen

val total : prescreen -> int
(** Faults removed, all reasons combined. *)
