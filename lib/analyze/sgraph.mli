(** S-graph: the flip-flop dependency structure of a sequential circuit.

    The S-graph has one vertex per flip-flop and an edge [a -> b] when
    flip-flop [a]'s output lies in the combinational back-cone of [b]'s
    D input — i.e. [b]'s next state can depend on [a]'s current state.
    Its SCC decomposition and depth summarize how hard the circuit is to
    synchronize from the all-X reset state, and which flip-flops risk
    feeding X values into a MISR signature indefinitely (the known
    x5378-class gap: a self-feeding state core that logic simulation
    never initializes). *)

type t

val analyze : Bist_circuit.Netlist.t -> t

val num_ffs : t -> int
val num_sccs : t -> int

val largest_scc : t -> int
(** Size of the largest SCC; 0 for a combinational circuit. *)

val nontrivial_sccs : t -> int
(** SCCs of size >= 2, plus single flip-flops that feed themselves. *)

val depth : t -> int
(** Longest chain of SCCs in the condensation — a lower bound on how
    many "waves" of synchronization the state needs. 0 for a
    combinational circuit, 1 when no flip-flop depends on another. *)

val sync_level : t -> Bist_circuit.Netlist.node -> int
(** For a flip-flop node: the synchronous round at which the
    achievable-value fixpoint first gives it a binary value (0 = one
    clock from reset), or [-1] if it provably never leaves X.
    Raises [Invalid_argument] on a non-flip-flop node. *)

val uninitializable : t -> Bist_circuit.Netlist.node list
(** Flip-flops that provably never leave X (sync level -1). *)

val x_risk : t -> Bist_circuit.Netlist.node list
(** Flip-flops at risk of holding X indefinitely in practice: the
    provably uninitializable ones, plus every member of a cyclic SCC
    none of whose members synchronizes on round 0 — such a state core
    must bootstrap itself through feedback, which random/expanded
    sequences frequently fail to do (the MISR-contamination risk). *)
