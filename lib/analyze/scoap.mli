(** SCOAP testability measures (Goldstein 1979), combinational and
    sequential.

    Six per-node measures: CC0/CC1 estimate the effort of driving the
    node's output to 0/1, CO the effort of propagating its value to a
    primary output. The combinational measures add one per gate crossed;
    the sequential variants (SC0/SC1/SO) instead add one per flip-flop
    crossed, estimating the number of clock cycles needed. Computed as a
    monotone min-fixpoint over the levelized netlist, iterated until
    stable across the flip-flop feedback edges, with saturating
    arithmetic so cyclic structural dependencies settle at {!infinite}
    rather than diverging.

    The measures are heuristics, not proofs: a saturated cost does {e
    not} imply untestability (see {!Untestable} for that), but higher
    cost correlates with faults the random phases of the generator miss,
    which is why {!fault_cost} drives the directed-phase target order. *)

type t

val infinite : int
(** Saturation bound for all measures. Costs at or above this value mean
    "no bounded strategy found". *)

val compute : Bist_circuit.Netlist.t -> t

val cc0 : t -> Bist_circuit.Netlist.node -> int
val cc1 : t -> Bist_circuit.Netlist.node -> int
val co : t -> Bist_circuit.Netlist.node -> int
val sc0 : t -> Bist_circuit.Netlist.node -> int
val sc1 : t -> Bist_circuit.Netlist.node -> int
val so : t -> Bist_circuit.Netlist.node -> int

val pin_co : t -> gate:Bist_circuit.Netlist.node -> pin:int -> int
(** Combinational observability of one fanin pin of [gate]: the cost of
    propagating a value through that pin (side pins held at
    non-controlling values) and onward to a primary output. *)

val pin_so : t -> gate:Bist_circuit.Netlist.node -> pin:int -> int

val fault_cost : t -> Bist_fault.Fault.t -> int
(** Estimated difficulty of detecting the fault: controllability of the
    opposite value at the fault line plus the line's observability,
    combining combinational and (weighted) sequential measures.
    Saturating; incomparable beyond {!infinite}. *)

type summary = {
  faults : int;  (** faults scored *)
  median_cost : int;
  max_finite_cost : int;  (** largest non-saturated {!fault_cost} *)
  saturated : int;  (** faults whose cost saturated at {!infinite} *)
}

val summarize : t -> Bist_fault.Universe.t -> summary
