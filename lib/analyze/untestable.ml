module Netlist = Bist_circuit.Netlist
module Validate = Bist_circuit.Validate
module Gate = Bist_circuit.Gate
module Ternary = Bist_logic.Ternary
module Fault = Bist_fault.Fault
module Universe = Bist_fault.Universe
module Bitset = Bist_util.Bitset

type reason =
  | Unexcitable
  | Unobservable
  | Blocked
  | Sat_unreachable
  | Sat_blocked

let reason_name = function
  | Unexcitable -> "unexcitable"
  | Unobservable -> "unobservable"
  | Blocked -> "blocked"
  | Sat_unreachable -> "sat-unreachable"
  | Sat_blocked -> "sat-blocked"

(* How a node can cut propagation when it appears as a side input of a
   gate on the propagation path. *)
type blocker =
  | Not_blocker
  | Solid of Ternary.t  (* always exactly this binary value, never X *)
  | Always_x  (* never leaves X *)

type t = {
  circuit : Netlist.t;
  ach : int array;  (* achievable-value masks, Validate.achievable *)
  blocker : blocker array;
  obs : bool array;  (* observable with every blocker active *)
  obs_structural : bool array;  (* observable ignoring blockers *)
  reaches_blocking : bool array;
      (* nodes whose forward cone contains some node used as a blocking
         side pin somewhere — faults there need per-fault refinement *)
}

let has0 m = m land 0b01 <> 0
let has1 m = m land 0b10 <> 0

(* Nodes that provably never carry X: primary inputs (WLOG binary — any
   X input can be refined to a binary one without losing detections),
   constants, and gates all of whose fanins are never-X or which have a
   solid controlling fanin. Flip-flops are X at power-up, so never. A
   single topological pass suffices: sources are fixed and combinational
   nodes only depend on their fanins. *)
let compute_blockers c ach =
  let n = Netlist.size c in
  let never_x = Array.make n false in
  Array.iter (fun pi -> never_x.(pi) <- true) (Netlist.inputs c);
  Array.iter
    (fun node ->
      let fanins = Netlist.fanins c node in
      let solid_controlling d =
        never_x.(d)
        &&
        match Gate.controlling_value (Netlist.kind c node) with
        | Some Ternary.Zero -> ach.(d) = 0b01
        | Some Ternary.One -> ach.(d) = 0b10
        | _ -> false
      in
      match Netlist.kind c node with
      | Gate.Const0 | Gate.Const1 -> never_x.(node) <- true
      | _ ->
        never_x.(node) <-
          Array.for_all (fun d -> never_x.(d)) fanins
          || Array.exists solid_controlling fanins)
    (Netlist.topo_order c);
  Array.init n (fun node ->
      if ach.(node) = 0 then Always_x
      else if never_x.(node) then
        match ach.(node) with
        | 0b01 -> Solid Ternary.Zero
        | 0b10 -> Solid Ternary.One
        | _ -> Not_blocker
      else Not_blocker)

(* Whether side pin [j] of [gate] cuts a conflict entering through
   another pin, given [active d] saying whether node [d] may serve as a
   blocker (false inside the fault cone during refinement). *)
let side_blocks c blocker ~active gate j =
  let d = (Netlist.fanins c gate).(j) in
  active d
  &&
  match Netlist.kind c gate with
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor -> (
    match blocker.(d) with
    | Always_x -> true
    | Solid v -> Gate.controlling_value (Netlist.kind c gate) = Some v
    | Not_blocker -> false)
  | Gate.Xor | Gate.Xnor -> blocker.(d) = Always_x
  | _ -> false

(* Can a conflict on fanin pin [p] of [gate] reach the gate's output? *)
let pin_passes c blocker ~active gate p =
  let fanins = Netlist.fanins c gate in
  let ok = ref true in
  for j = 0 to Array.length fanins - 1 do
    if j <> p && side_blocks c blocker ~active gate j then ok := false
  done;
  !ok

(* Backward reachability from the primary outputs over the fanin edges
   that pass the blocking test. Plain graph reachability: whether a pin
   passes depends only on static side-pin properties, not on the
   reachability being computed. *)
let compute_obs c blocker ~active =
  let obs = Array.make (Netlist.size c) false in
  let rec visit node =
    if not obs.(node) then begin
      obs.(node) <- true;
      Array.iteri
        (fun p d -> if pin_passes c blocker ~active node p then visit_in d)
        (Netlist.fanins c node)
    end
  and visit_in d = if not obs.(d) then visit d in
  Array.iter visit (Netlist.outputs c);
  obs

let analyze c =
  let ach = Validate.achievable c in
  let blocker = compute_blockers c ach in
  let all _ = true in
  let obs = compute_obs c blocker ~active:all in
  let obs_structural = compute_obs c blocker ~active:(fun _ -> false) in
  (* Mark every node whose forward cone contains a node that actually
     blocks some pin somewhere: backward fanin closure from those
     blocking sides. *)
  let n = Netlist.size c in
  let reaches = Array.make n false in
  let rec back d =
    if not reaches.(d) then begin
      reaches.(d) <- true;
      Array.iter back (Netlist.fanins c d)
    end
  in
  for gate = 0 to n - 1 do
    let fanins = Netlist.fanins c gate in
    for j = 0 to Array.length fanins - 1 do
      if side_blocks c blocker ~active:all gate j then back fanins.(j)
    done
  done;
  { circuit = c; ach; blocker; obs; obs_structural; reaches_blocking = reaches }

(* Forward structural cone of a node: everything the faulty machine can
   possibly deviate on (fanouts, crossing flip-flops over time). *)
let forward_cone c root =
  let inside = Array.make (Netlist.size c) false in
  let rec visit node =
    if not inside.(node) then begin
      inside.(node) <- true;
      Array.iter visit (Netlist.fanouts c node)
    end
  in
  visit root;
  inside

(* Is the fault observable, on the exact line it pins? A stem fault is
   observable iff its node is; a pin fault additionally needs its own
   pin to pass into the gate. *)
let fault_observable c blocker obs ~active f =
  match f.Fault.site with
  | Fault.Output node -> obs.(node)
  | Fault.Pin { gate; pin } ->
    obs.(gate) && pin_passes c blocker ~active gate pin

let fault_root f =
  match f.Fault.site with
  | Fault.Output node -> node
  | Fault.Pin { gate; pin = _ } -> gate

let fault_driver c f =
  match f.Fault.site with
  | Fault.Output node -> node
  | Fault.Pin { gate; pin } -> (Netlist.fanins c gate).(pin)

let check t f =
  let c = t.circuit in
  let driver = fault_driver c f in
  let excitable =
    match f.Fault.stuck with
    | Ternary.Zero -> has1 t.ach.(driver)
    | Ternary.One -> has0 t.ach.(driver)
    | Ternary.X -> invalid_arg "Untestable.check"
  in
  let all _ = true in
  if not excitable then Some Unexcitable
  else if fault_observable c t.blocker t.obs ~active:all f then None
  else begin
    (* Propagation is cut under the full blocker set. Decide why. *)
    let structurally_dead =
      match f.Fault.site with
      | Fault.Output node -> not t.obs_structural.(node)
      | Fault.Pin { gate; _ } -> not t.obs_structural.(gate)
    in
    if structurally_dead then Some Unobservable
    else begin
      (* Cut only by blockers. The proof holds as long as no blocker sits
         inside the fault's own fanout cone; otherwise re-run the
         reachability with in-cone blockers disabled. *)
      let root = fault_root f in
      if not t.reaches_blocking.(root) then Some Blocked
      else begin
        let cone = forward_cone c root in
        let active d = not cone.(d) in
        let obs = compute_obs c t.blocker ~active in
        if fault_observable c t.blocker obs ~active f then None
        else Some Blocked
      end
    end
  end

type prescreen = {
  untestable : Bitset.t;
  unexcitable : int;
  unobservable : int;
  blocked : int;
}

let prescreen_universe u =
  let t = analyze (Universe.circuit u) in
  let untestable = Bitset.create (Universe.size u) in
  let unexcitable = ref 0 and unobservable = ref 0 and blocked = ref 0 in
  Universe.iter
    (fun id f ->
      match check t f with
      | None -> ()
      | Some r ->
        Bitset.add untestable id;
        (match r with
        | Unexcitable -> incr unexcitable
        | Unobservable -> incr unobservable
        | Blocked -> incr blocked
        | Sat_unreachable | Sat_blocked -> assert false (* check is structural *)))
    u;
  {
    untestable;
    unexcitable = !unexcitable;
    unobservable = !unobservable;
    blocked = !blocked;
  }

let total p = p.unexcitable + p.unobservable + p.blocked

(* --- Exact (SAT-backed) prescreen ---------------------------------- *)

type exact_config = {
  frames : int;
  max_conflicts : int;
  sat_cap : int;
  refute_rounds : int;
  refute_length : int;
  seed : int;
}

let default_exact_config =
  {
    frames = 8;
    max_conflicts = 20_000;
    sat_cap = 64;
    refute_rounds = 4;
    refute_length = 48;
    seed = 0xBB5;
  }

type exact = {
  config : exact_config;
  structural : prescreen;
  proved : Bitset.t;
  refuted : Bitset.t;
  unknown : Bitset.t;
  sat_unreachable : int;
  sat_blocked : int;
  sat_attempted : int;
  sat_tests : (int * Bist_logic.Tseq.t) list;
}

let exact_prescreen ?(obs = Bist_obs.Obs.null) ?ctl
    ?(config = default_exact_config) u =
  let circuit = Universe.circuit u in
  let n = Universe.size u in
  let structural =
    Bist_obs.Obs.span obs ~cat:"analyze" "untestable.structural" (fun () ->
        prescreen_universe u)
  in
  let proved = Bitset.copy structural.untestable in
  let refuted = Bitset.create n in
  (* Phase 2: cheap refutation by random simulation — any fault a
     concrete sequence detects is testable, no SAT call needed. Fixed
     seed: lint output and engine behaviour stay deterministic. *)
  Bist_obs.Obs.span obs ~cat:"analyze" "untestable.sim_refute" (fun () ->
      let rng = Bist_util.Rng.create config.seed in
      let targets = Bitset.create n in
      Bitset.fill targets;
      Bitset.diff_into targets proved;
      for _ = 1 to config.refute_rounds do
        if not (Bitset.is_empty targets) then begin
          let seq =
            Bist_logic.Tseq.random_binary rng
              ~width:(Netlist.num_inputs circuit)
              ~length:config.refute_length
          in
          let outcome =
            Bist_fault.Fsim.run ~obs ?ctl ~targets ~stop_when_all_detected:true
              u seq
          in
          Bitset.union_into refuted outcome.Bist_fault.Fsim.detected;
          Bitset.diff_into targets outcome.Bist_fault.Fsim.detected
        end
      done);
  (* Phase 3: the hard tail goes to the SAT solver, in fault-id order up
     to [sat_cap] queries ([sat_cap < 0] removes the cap; [sat_cap = 0]
     disables the phase). *)
  let sat_unreachable = ref 0 in
  let sat_blocked = ref 0 in
  let sat_attempted = ref 0 in
  let sat_tests = ref [] in
  let remaining = Bitset.create n in
  Bitset.fill remaining;
  Bitset.diff_into remaining proved;
  Bitset.diff_into remaining refuted;
  if config.sat_cap <> 0 && not (Bitset.is_empty remaining) then
    Bist_obs.Obs.span obs ~cat:"analyze" "untestable.sat"
      ~args:(fun () ->
        [
          ("attempted", string_of_int !sat_attempted);
          ("proved", string_of_int (!sat_unreachable + !sat_blocked));
          ("tests", string_of_int (List.length !sat_tests));
        ])
      (fun () ->
        let view = Bist_sat.Cnf.view ~frames:config.frames circuit in
        Bitset.iter
          (fun id ->
            if config.sat_cap < 0 || !sat_attempted < config.sat_cap then begin
              incr sat_attempted;
              match
                Bist_sat.Satgen.solve_fault ~obs ?ctl
                  ~max_conflicts:config.max_conflicts view (Universe.get u id)
              with
              | Bist_sat.Satgen.Unreachable ->
                incr sat_unreachable;
                Bitset.add proved id
              | Bist_sat.Satgen.Blocked ->
                incr sat_blocked;
                Bitset.add proved id
              | Bist_sat.Satgen.Test seq ->
                Bitset.add refuted id;
                sat_tests := (id, seq) :: !sat_tests
              | Bist_sat.Satgen.Unknown -> ()
            end)
          remaining);
  let unknown = Bitset.create n in
  Bitset.fill unknown;
  Bitset.diff_into unknown proved;
  Bitset.diff_into unknown refuted;
  {
    config;
    structural;
    proved;
    refuted;
    unknown;
    sat_unreachable = !sat_unreachable;
    sat_blocked = !sat_blocked;
    sat_attempted = !sat_attempted;
    sat_tests = List.rev !sat_tests;
  }

let exact_proved_total e = Bitset.cardinal e.proved
