module Netlist = Bist_circuit.Netlist
module Gate = Bist_circuit.Gate
module Validate = Bist_circuit.Validate

type t = {
  ffs : Netlist.node array;
  ff_index : (Netlist.node, int) Hashtbl.t;
  succ : int array array;  (* succ.(a) = flip-flops whose next state reads a *)
  scc_id : int array;
  scc_sizes : int array;
  self_loop : bool array;  (* per flip-flop index *)
  depth : int;
  sync_levels : int array;  (* per flip-flop index, -1 = never *)
}

(* Flip-flops in the combinational back-cone of [b]'s D input. *)
let state_deps c ff_index b =
  let seen = Hashtbl.create 16 in
  let deps = ref [] in
  let rec visit node =
    if not (Hashtbl.mem seen node) then begin
      Hashtbl.add seen node ();
      match Netlist.kind c node with
      | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
      | Gate.Dff -> deps := Hashtbl.find ff_index node :: !deps
      | _ -> Array.iter visit (Netlist.fanins c node)
    end
  in
  visit (Netlist.fanins c b).(0);
  !deps

let analyze c =
  let ffs = Netlist.dffs c in
  let n = Array.length ffs in
  let ff_index = Hashtbl.create (2 * n) in
  Array.iteri (fun i ff -> Hashtbl.add ff_index ff i) ffs;
  let preds = Array.map (fun ff -> state_deps c ff_index ff) ffs in
  let succ = Array.make n [] in
  Array.iteri (fun b ps -> List.iter (fun a -> succ.(a) <- b :: succ.(a)) ps) preds;
  let succ = Array.map Array.of_list succ in
  let self_loop = Array.mapi (fun b ps -> List.mem b ps) preds in
  (* Tarjan. SCCs are emitted in reverse topological order of the
     condensation, so the longest-chain DP can run during emission. *)
  let scc_id = Array.make n (-1) in
  let scc_sizes = ref [] in
  let num_sccs = ref 0 in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let scc_depth = Array.make (max n 1) 0 in  (* per scc id, 1 + max succ depth *)
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    Array.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      succ.(v);
    if lowlink.(v) = index.(v) then begin
      let id = !num_sccs in
      incr num_sccs;
      let members = ref [] in
      let continue = ref true in
      while !continue do
        match !stack with
        | [] -> assert false
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          scc_id.(w) <- id;
          members := w :: !members;
          if w = v then continue := false
      done;
      scc_sizes := List.length !members :: !scc_sizes;
      (* Successor SCCs are already numbered (< id), so their final
         depths are known. *)
      let d = ref 0 in
      List.iter
        (fun w ->
          Array.iter
            (fun x ->
              let sid = scc_id.(x) in
              if sid <> id && sid <> -1 then d := max !d scc_depth.(sid))
            succ.(w))
        !members;
      scc_depth.(id) <- !d + 1
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  let _, sync_levels = Validate.achievable_rounds c in
  {
    ffs;
    ff_index;
    succ;
    scc_id;
    scc_sizes = Array.of_list (List.rev !scc_sizes);
    self_loop;
    depth = Array.fold_left max 0 (Array.sub scc_depth 0 !num_sccs);
    sync_levels;
  }

let num_ffs t = Array.length t.ffs
let num_sccs t = Array.length t.scc_sizes

let largest_scc t = Array.fold_left max 0 t.scc_sizes

let cyclic t i = t.scc_sizes.(t.scc_id.(i)) >= 2 || t.self_loop.(i)

let nontrivial_sccs t =
  let seen = Array.make (num_sccs t) false in
  let count = ref 0 in
  for i = 0 to num_ffs t - 1 do
    if cyclic t i && not seen.(t.scc_id.(i)) then begin
      seen.(t.scc_id.(i)) <- true;
      incr count
    end
  done;
  !count

let depth t = if num_ffs t = 0 then 0 else t.depth

let sync_level t ff =
  match Hashtbl.find_opt t.ff_index ff with
  | Some i -> t.sync_levels.(i)
  | None -> invalid_arg "Sgraph.sync_level: not a flip-flop"

let uninitializable t =
  let out = ref [] in
  for i = num_ffs t - 1 downto 0 do
    if t.sync_levels.(i) = -1 then out := t.ffs.(i) :: !out
  done;
  !out

let x_risk t =
  (* Per cyclic SCC: does any member synchronize on round 0? If not, the
     whole core must bootstrap through its own feedback. *)
  let k = num_sccs t in
  let cyclic_scc = Array.make k false in
  let has_level0 = Array.make k false in
  for i = 0 to num_ffs t - 1 do
    let s = t.scc_id.(i) in
    if cyclic t i then cyclic_scc.(s) <- true;
    if t.sync_levels.(i) = 0 then has_level0.(s) <- true
  done;
  let out = ref [] in
  for i = num_ffs t - 1 downto 0 do
    let s = t.scc_id.(i) in
    if t.sync_levels.(i) = -1 || (cyclic_scc.(s) && not has_level0.(s)) then
      out := t.ffs.(i) :: !out
  done;
  !out
