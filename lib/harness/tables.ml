module At = Bist_util.Ascii_table
module Scheme = Bist_core.Scheme

let fi = string_of_int
let ff2 v = Printf.sprintf "%.2f" v

let table3 results =
  let t =
    At.create
      ~headers:
        [ ("circuit", At.Left); ("tot", At.Right); ("det", At.Right);
          ("len", At.Right); ("n", At.Right); ("|S|", At.Right);
          ("tot len", At.Right); ("max len", At.Right); ("|S|'", At.Right);
          ("tot len'", At.Right); ("max len'", At.Right) ]
  in
  List.iter
    (fun (r : Experiment.circuit_result) ->
      let b = r.best in
      At.add_row t
        [ r.name; fi b.total_faults; fi b.detected_by_t0; fi b.t0_length;
          fi b.n; fi b.before.count; fi b.before.total_length;
          fi b.before.max_length; fi b.after.count; fi b.after.total_length;
          fi b.after.max_length ])
    results;
  "Table 3: experimental results (primed columns = after static compaction)\n"
  ^ At.render t

let table4 results =
  let t =
    At.create
      ~headers:
        [ ("circuit", At.Left); ("Proc.1", At.Right); ("comp.", At.Right) ]
  in
  let norm num den = if den <= 0.0 then "n/a" else ff2 (num /. den) in
  List.iter
    (fun (r : Experiment.circuit_result) ->
      let b = r.best in
      At.add_row t
        [ r.name;
          norm b.proc1_seconds b.simulate_t0_seconds;
          norm b.compaction_seconds b.simulate_t0_seconds ])
    results;
  "Table 4: run times normalized by the time to fault-simulate T0\n"
  ^ At.render t

let averages results =
  let n = float_of_int (List.length results) in
  let tot, mx =
    List.fold_left
      (fun (t, m) (r : Experiment.circuit_result) ->
        (t +. Scheme.ratio_total r.best, m +. Scheme.ratio_max r.best))
      (0.0, 0.0) results
  in
  if n = 0.0 then (0.0, 0.0) else (tot /. n, mx /. n)

let table5 results =
  let t =
    At.create
      ~headers:
        [ ("circuit", At.Left); ("len", At.Right); ("n", At.Right);
          ("|S|", At.Right); ("tot len", At.Right); ("/T0", At.Right);
          ("max len", At.Right); ("/T0", At.Right); ("test len", At.Right) ]
  in
  List.iter
    (fun (r : Experiment.circuit_result) ->
      let b = r.best in
      At.add_row t
        [ r.name; fi b.t0_length; fi b.n; fi b.after.count;
          fi b.after.total_length; ff2 (Scheme.ratio_total b);
          fi b.after.max_length; ff2 (Scheme.ratio_max b);
          fi b.expanded_total_length ])
    results;
  At.add_separator t;
  let avg_tot, avg_max = averages results in
  At.add_row t
    [ "average"; ""; ""; ""; ""; ff2 avg_tot; ""; ff2 avg_max; "" ];
  "Table 5: comparison with T0 (test len = 8 n L applied at-speed)\n"
  ^ At.render t

let prescreen_table results =
  let t =
    At.create
      ~headers:
        [ ("circuit", At.Left); ("faults", At.Right); ("unexc", At.Right);
          ("unobs", At.Right); ("blocked", At.Right); ("untestable", At.Right);
          ("%", At.Right); ("SCOAP med", At.Right); ("max fin", At.Right);
          ("sat", At.Right) ]
  in
  List.iter
    (fun (r : Experiment.circuit_result) ->
      let p = r.prescreen in
      let total = Bist_analyze.Untestable.total p in
      let pct =
        if r.scoap.Bist_analyze.Scoap.faults = 0 then 0.0
        else
          100.0 *. float_of_int total
          /. float_of_int r.scoap.Bist_analyze.Scoap.faults
      in
      At.add_row t
        [ r.name; fi r.scoap.Bist_analyze.Scoap.faults;
          fi p.Bist_analyze.Untestable.unexcitable;
          fi p.Bist_analyze.Untestable.unobservable;
          fi p.Bist_analyze.Untestable.blocked; fi total;
          Printf.sprintf "%.1f" pct;
          fi r.scoap.Bist_analyze.Scoap.median_cost;
          fi r.scoap.Bist_analyze.Scoap.max_finite_cost;
          fi r.scoap.Bist_analyze.Scoap.saturated ])
    results;
  "Static prescreen (provably untestable faults) and SCOAP cost profile\n"
  ^ At.render t

let comparison results =
  let t =
    At.create
      ~headers:
        [ ("circuit", At.Left); ("paper", At.Left);
          ("tot/T0 (paper)", At.Right); ("tot/T0 (ours)", At.Right);
          ("max/T0 (paper)", At.Right); ("max/T0 (ours)", At.Right);
          ("n (paper)", At.Right); ("n (ours)", At.Right) ]
  in
  List.iter
    (fun (r : Experiment.circuit_result) ->
      match Paper_data.find r.paper_name with
      | None -> ()
      | Some p ->
        let paper_tot = float_of_int p.after_total /. float_of_int p.t0_length in
        let paper_max = float_of_int p.after_max /. float_of_int p.t0_length in
        At.add_row t
          [ r.name; p.circuit; ff2 paper_tot; ff2 (Scheme.ratio_total r.best);
            ff2 paper_max; ff2 (Scheme.ratio_max r.best); fi p.n; fi r.best.n ])
    results;
  At.add_separator t;
  let avg_tot, avg_max = averages results in
  At.add_row t
    [ "average"; ""; ff2 Paper_data.avg_ratio_total; ff2 avg_tot;
      ff2 Paper_data.avg_ratio_max; ff2 avg_max; ""; "" ];
  "Measured vs paper (Table 5 headline ratios)\n" ^ At.render t
