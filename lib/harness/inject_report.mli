(** Rendering of fault-injection campaign results for [bin/inject.exe].

    The "covered" column is [(corrected + detected) / (count - benign)]:
    the fraction of faults with an observable effect that the defense
    either outran or honestly reported. The acceptance bar for the
    hardened configuration is 100% — equivalently, zero escapes. *)

val summary : Bist_inject.Campaign.t list -> string
(** One row per campaign: outcome totals and the coverage ratio. *)

val breakdown : Bist_inject.Campaign.t -> string
(** Outcome counts per fault kind for a single campaign. *)

val escapes : Bist_inject.Campaign.t -> string list
(** Human-readable description of every escaped fault. *)
