module At = Bist_util.Ascii_table
module Campaign = Bist_inject.Campaign

let fi = string_of_int

let pct num den =
  if den = 0 then "n/a" else Printf.sprintf "%.1f%%" (100.0 *. float_of_int num /. float_of_int den)

let summary campaigns =
  let t =
    At.create
      ~headers:
        [ ("circuit", At.Left); ("defense", At.Left); ("faults", At.Right);
          ("corrected", At.Right); ("detected", At.Right); ("benign", At.Right);
          ("escaped", At.Right); ("covered", At.Right) ]
  in
  List.iter
    (fun (c : Campaign.t) ->
      let d = c.config.defense in
      let defense_name =
        Printf.sprintf "%s%s%s"
          (Bist_hw.Ecc.scheme_name d.ecc)
          (if d.signature_check then "+sig" else "")
          (if d.cycle_check then "+cyc" else "")
      in
      At.add_row t
        [ c.circuit_name; defense_name; fi c.config.count; fi c.corrected;
          fi c.detected; fi c.benign; fi c.escaped;
          pct (c.corrected + c.detected) (c.config.count - c.benign) ])
    campaigns;
  At.render t

let breakdown (c : Campaign.t) =
  let t =
    At.create
      ~headers:
        [ ("fault kind", At.Left); ("corrected", At.Right); ("detected", At.Right);
          ("benign", At.Right); ("escaped", At.Right) ]
  in
  List.iter
    (fun (kind, (co, de, be, es)) -> At.add_row t [ kind; fi co; fi de; fi be; fi es ])
    (Campaign.by_kind c);
  At.render t

let escapes (c : Campaign.t) =
  List.filter_map
    (fun (tr : Campaign.trial) ->
      if tr.outcome = Campaign.Escaped then
        Some (Bist_hw.Injector.fault_to_string tr.fault)
      else None)
    c.trials
