(** Plain-text test sequence files.

    One vector per line over the alphabet [0], [1], [x]; [#] starts a
    comment; blank lines are ignored. This is the interchange format of
    the [bistgen] command-line tool. *)

exception Parse_error of { line : int; message : string }
(** Raised on malformed input, mirroring
    {!Bist_circuit.Bench_parser.Parse_error}: [line] is the 1-based line
    of the offending vector, or [0] when the error is not tied to a line
    (an input with no vectors at all). A printer is registered with
    [Printexc], but the CLIs catch it and report without a backtrace. *)

val parse : string -> Bist_logic.Tseq.t
(** Parse file contents. Raises {!Parse_error} on a bad vector symbol, a
    ragged vector width, or an input with no vectors. *)

val load : string -> Bist_logic.Tseq.t
(** Read a file. *)

val to_string : Bist_logic.Tseq.t -> string

val save : Bist_logic.Tseq.t -> string -> unit

val save_set : Bist_logic.Tseq.t list -> string -> unit
(** Write a stored-sequence set: sequences separated by [--] lines. *)

val load_set : string -> Bist_logic.Tseq.t list
