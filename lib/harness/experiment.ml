module Tseq = Bist_logic.Tseq
module Universe = Bist_fault.Universe

type budget = {
  tgen_max_length : int;
  compaction_trials : int;
  ns : int list;
  strategy : Bist_core.Procedure2.strategy;
}

let budget_for circuit =
  let nodes = Bist_circuit.Netlist.size circuit in
  let compaction_trials =
    if nodes < 500 then 300
    else if nodes < 1500 then 150
    else if nodes < 3000 then 60
    else 16
  in
  let tgen_max_length = if nodes < 1500 then 1200 else 700 in
  let strategy =
    if nodes < 1500 then Bist_core.Procedure2.paper_strategy
    else Bist_core.Procedure2.fast_strategy
  in
  { tgen_max_length; compaction_trials; ns = [ 2; 4; 8; 16 ]; strategy }

type circuit_result = {
  name : string;
  paper_name : string;
  scaled : bool;
  stats : Bist_circuit.Stats.t;
  t0 : Tseq.t;
  tgen_stats : Bist_tgen.Engine.stats;
  compaction_stats : Bist_tgen.Compaction.stats;
  runs : Bist_core.Scheme.run list;
  best : Bist_core.Scheme.run;
  prescreen : Bist_analyze.Untestable.prescreen;
  scoap : Bist_analyze.Scoap.summary;
}

let run_circuit ?(seed = 2026) ?budget (entry : Bist_bench.Registry.entry) =
  let circuit = entry.circuit () in
  let budget = match budget with Some b -> b | None -> budget_for circuit in
  let universe = Universe.collapsed circuit in
  let rng = Bist_util.Rng.create seed in
  let config =
    { (Bist_tgen.Engine.default_config circuit) with
      max_length = budget.tgen_max_length;
      directed_budget =
        (if Bist_circuit.Netlist.size circuit < 1500 then 16 else 0) }
  in
  let t0_raw, tgen_stats = Bist_tgen.Engine.generate ~config ~rng universe in
  let t0, compaction_stats =
    Bist_tgen.Compaction.compact ~max_trials:budget.compaction_trials universe
      t0_raw
  in
  let runs =
    List.map
      (fun n ->
        Bist_core.Scheme.execute ~strategy:budget.strategy ~seed:(seed + n) ~n
          ~t0 universe)
      budget.ns
  in
  let best =
    match runs with
    | [] -> invalid_arg "Experiment.run_circuit: empty n sweep"
    | first :: rest -> List.fold_left Bist_core.Scheme.better first rest
  in
  {
    name = entry.name;
    paper_name = entry.paper_name;
    scaled = entry.scaled;
    stats = Bist_circuit.Stats.of_netlist circuit;
    t0;
    tgen_stats;
    compaction_stats;
    runs;
    best;
    prescreen = Bist_analyze.Untestable.prescreen_universe universe;
    scoap =
      Bist_analyze.Scoap.summarize (Bist_analyze.Scoap.compute circuit) universe;
  }

type spread = { mean : float; min : float; max : float }

type robustness = {
  circuit : string;
  seeds : int list;
  ratio_total : spread;
  ratio_max : spread;
  always_verified : bool;
}

let spread_of values =
  let n = float_of_int (List.length values) in
  {
    mean = List.fold_left ( +. ) 0.0 values /. n;
    min = List.fold_left Float.min infinity values;
    max = List.fold_left Float.max neg_infinity values;
  }

let robustness ?(seeds = [ 2026; 2027; 2028 ]) entry =
  if seeds = [] then invalid_arg "Experiment.robustness: no seeds";
  let results = List.map (fun seed -> run_circuit ~seed entry) seeds in
  let bests = List.map (fun r -> r.best) results in
  {
    circuit = entry.Bist_bench.Registry.name;
    seeds;
    ratio_total = spread_of (List.map Bist_core.Scheme.ratio_total bests);
    ratio_max = spread_of (List.map Bist_core.Scheme.ratio_max bests);
    always_verified =
      List.for_all (fun (b : Bist_core.Scheme.run) -> b.coverage_verified) bests;
  }

let run_suite ?(seed = 2026) ?circuits ?(progress = fun _ -> ()) () =
  let entries =
    match circuits with
    | None -> Bist_bench.Registry.evaluation_suite ()
    | Some names ->
      List.map
        (fun name ->
          match Bist_bench.Registry.find name with
          | Some e -> e
          | None -> invalid_arg (Printf.sprintf "unknown circuit %S" name))
        names
  in
  List.map
    (fun (entry : Bist_bench.Registry.entry) ->
      progress (Printf.sprintf "[%s] generating T0 and running the scheme..." entry.name);
      let result = run_circuit ~seed entry in
      progress
        (Printf.sprintf
           "[%s] T0=%d vectors, detected %d/%d; best n=%d: |S|=%d tot=%d max=%d"
           entry.name (Tseq.length result.t0) result.tgen_stats.detected
           result.tgen_stats.total_faults result.best.n
           result.best.after.count result.best.after.total_length
           result.best.after.max_length);
      result)
    entries
