(** Renderers for the paper's result tables over measured data.

    Each function takes the suite results from {!Experiment.run_suite}
    and prints the corresponding table of the paper; the comparison
    variants interleave the published numbers so drift is visible at a
    glance. *)

val table3 : Experiment.circuit_result list -> string
(** Table 3: faults / detected / |T0| / n / before- and after-compaction
    |S|, total length, max length. *)

val table4 : Experiment.circuit_result list -> string
(** Table 4: run times of Procedure 1 and compaction, normalized by the
    time to fault-simulate T0. *)

val table5 : Experiment.circuit_result list -> string
(** Table 5: total and maximum stored length as fractions of |T0|, and
    the applied at-speed test length 8·n·L, with column averages. *)

val comparison : Experiment.circuit_result list -> string
(** Measured-vs-paper table over the headline Table 5 ratios. *)

val prescreen_table : Experiment.circuit_result list -> string
(** Per-circuit static-analysis columns: untestable faults proved by the
    {!Bist_analyze.Untestable} prescreen (by reason), their share of the
    collapsed universe, and the {!Bist_analyze.Scoap} fault-cost profile
    (median / max finite / saturated count). *)

val averages : Experiment.circuit_result list -> float * float
(** (avg total ratio, avg max ratio) — the paper reports 0.46 / 0.10. *)
