module Tseq = Bist_logic.Tseq

exception Parse_error of { line : int; message : string }

let parse_error line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let () =
  Printexc.register_printer (function
    | Parse_error { line; message } when line > 0 ->
      Some (Printf.sprintf "sequence parse error at line %d: %s" line message)
    | Parse_error { message; _ } ->
      Some (Printf.sprintf "sequence parse error: %s" message)
    | _ -> None)

let strip line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.trim line

let parse_lines lines =
  let vectors =
    List.filter_map
      (fun (lineno, line) ->
        let line = strip line in
        if line = "" then None
        else
          match Bist_logic.Vector.of_string line with
          | v -> Some (lineno, v)
          | exception Invalid_argument msg -> parse_error lineno "%s" msg)
      lines
  in
  match vectors with
  | [] -> parse_error 0 "sequence file contains no vectors"
  | (_, first) :: _ as vs ->
    (* Report ragged lines here, with the offending line number, instead
       of letting [Tseq.of_vectors] raise a positionless
       [Invalid_argument]. *)
    let width = Bist_logic.Vector.width first in
    List.iter
      (fun (lineno, v) ->
        let w = Bist_logic.Vector.width v in
        if w <> width then
          parse_error lineno "vector has %d symbols, expected %d (from the first vector)"
            w width)
      vs;
    Tseq.of_vectors (Array.of_list (List.map snd vs))

let numbered text =
  List.mapi (fun i line -> (i + 1, line)) (String.split_on_char '\n' text)

let parse text = parse_lines (numbered text)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path = parse (read_file path)

let to_string seq = String.concat "\n" (Tseq.to_strings seq) ^ "\n"

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let save seq path = write_file path (to_string seq)

let save_set seqs path =
  write_file path (String.concat "--\n" (List.map to_string seqs))

let load_set path =
  let text = read_file path in
  let chunks = ref [] in
  let current = ref [] in
  let lineno = ref 0 in
  let flush_chunk () =
    if !current <> [] then begin
      chunks := parse_lines (List.rev !current) :: !chunks;
      current := []
    end
  in
  List.iter
    (fun line ->
      incr lineno;
      if strip line = "--" then flush_chunk ()
      else current := (!lineno, line) :: !current)
    (String.split_on_char '\n' text);
  flush_chunk ();
  List.rev !chunks
