(** The full per-circuit experiment pipeline.

    For a circuit entry: build the fault universe, generate [T0]
    (the STRATEGATE substitute), statically compact it (the [12]
    substitute), run the scheme for each [n] of the sweep, and pick the
    best [n] by the paper's rule. Budgets scale with circuit size so the
    complete suite stays runnable in minutes. *)

type budget = {
  tgen_max_length : int;
  compaction_trials : int;
  ns : int list;
  strategy : Bist_core.Procedure2.strategy;
      (** Paper-exact below ~1500 nodes, {!Bist_core.Procedure2.fast_strategy}
          above. *)
}

val budget_for : Bist_circuit.Netlist.t -> budget
(** Size-scaled defaults; the [n] sweep is always the paper's
    [\[2; 4; 8; 16\]]. *)

type circuit_result = {
  name : string;
  paper_name : string;
  scaled : bool;
  stats : Bist_circuit.Stats.t;
  t0 : Bist_logic.Tseq.t;
  tgen_stats : Bist_tgen.Engine.stats;
  compaction_stats : Bist_tgen.Compaction.stats;
  runs : Bist_core.Scheme.run list;  (** One per [n], sweep order. *)
  best : Bist_core.Scheme.run;
  prescreen : Bist_analyze.Untestable.prescreen;
      (** Static untestability counts over the collapsed universe. *)
  scoap : Bist_analyze.Scoap.summary;  (** Fault-cost distribution. *)
}

val run_circuit :
  ?seed:int -> ?budget:budget -> Bist_bench.Registry.entry -> circuit_result

val run_suite :
  ?seed:int ->
  ?circuits:string list ->
  ?progress:(string -> unit) ->
  unit ->
  circuit_result list
(** Run every circuit of the registry's evaluation suite (or the named
    subset). [progress] receives one line per pipeline stage. *)

(** {2 Seed robustness}

    The pipeline is randomized (T0 generation, Procedure 2's omission
    order); this aggregates the headline ratios over several seeds so the
    report can show the spread, not just one draw. *)

type spread = { mean : float; min : float; max : float }

type robustness = {
  circuit : string;
  seeds : int list;
  ratio_total : spread;  (** after total / |T0| across seeds. *)
  ratio_max : spread;
  always_verified : bool;  (** Coverage preserved under every seed. *)
}

val robustness :
  ?seeds:int list -> Bist_bench.Registry.entry -> robustness
(** Default seeds: [\[2026; 2027; 2028\]]. Each seed reruns the whole
    pipeline (T0 included). *)
