(** Deterministic pseudo-random number generation.

    All randomized steps of the library (vector generation, Procedure 2's
    omission order, the synthetic circuit generator) draw from this module
    so that every experiment is reproducible from a single integer seed.
    The generator is xoshiro256** seeded through splitmix64. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Generators built
    from equal seeds produce equal streams. *)

val copy : t -> t
(** Independent snapshot of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val export : t -> int64 array
(** The four xoshiro256** state words, for checkpointing. [import]ing
    them restores a generator that continues the exact stream. *)

val import : int64 array -> t
(** Rebuild a generator from {!export}ed state. Raises [Invalid_argument]
    unless given exactly four words that are not all zero (the one state
    xoshiro cannot leave). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool
(** Fair coin flip. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t len] is a uniformly random permutation of [0..len-1]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)
