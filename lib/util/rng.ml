type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: expands a small seed into well-distributed initial state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) land max_int in
  create seed

let export t = [| t.s0; t.s1; t.s2; t.s3 |]

let import words =
  if Array.length words <> 4 then
    invalid_arg "Rng.import: expected exactly 4 state words";
  if Array.for_all (fun w -> w = 0L) words then
    invalid_arg "Rng.import: the all-zero state is not a valid xoshiro state";
  { s0 = words.(0); s1 = words.(1); s2 = words.(2); s3 = words.(3) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the low 62 bits avoids modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let v = Int64.to_int (bits64 t) land mask in
    let r = v mod bound in
    if v - r + (bound - 1) < 0 then draw () else r
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v /. 9007199254740992.0 (* 2^53 *)

let bernoulli t p = float t < p

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t len =
  let arr = Array.init len (fun i -> i) in
  shuffle_in_place t arr;
  arr

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))
