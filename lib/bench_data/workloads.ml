let profiles =
  [
    {
      Synth.name = "dp32";
      num_inputs = 12;
      num_outputs = 8;
      num_ffs = 32;
      num_gates = 260;
      sync_fraction = Synth.default_sync_fraction;
      seed = 320032;
      style = Synth.Datapath;
    };
    {
      Synth.name = "pipe16";
      num_inputs = 8;
      num_outputs = 6;
      num_ffs = 16;
      num_gates = 140;
      sync_fraction = Synth.default_sync_fraction;
      seed = 160016;
      style = Synth.Pipeline;
    };
    {
      Synth.name = "fsm8";
      num_inputs = 6;
      num_outputs = 4;
      num_ffs = 8;
      num_gates = 90;
      sync_fraction = Synth.default_sync_fraction;
      seed = 80008;
      style = Synth.Fsm;
    };
  ]

let all () =
  List.map
    (fun p ->
      let cache = ref None in
      let circuit () =
        match !cache with
        | Some c -> c
        | None ->
          let c = Synth.generate p in
          cache := Some c;
          c
      in
      (p.Synth.name, circuit))
    profiles

let find key = List.assoc_opt key (all ())
