type entry = {
  name : string;
  paper_name : string;
  circuit : unit -> Bist_circuit.Netlist.t;
  scaled : bool;
}

let s27 =
  { name = "s27"; paper_name = "s27"; circuit = S27.circuit; scaled = false }

(* Structural profiles of the ISCAS-89 circuits used in the paper
   (PIs / POs / FFs / gates). Seeds are arbitrary but frozen. *)
let profiles =
  [
    ("x298", "s298", 3, 6, 14, 119, false, 2981);
    ("x344", "s344", 9, 11, 15, 160, false, 3441);
    ("x382", "s382", 3, 6, 21, 158, false, 3821);
    ("x400", "s400", 3, 6, 21, 164, false, 4001);
    ("x526", "s526", 3, 6, 21, 193, false, 5261);
    ("x641", "s641", 35, 24, 19, 379, false, 6411);
    ("x820", "s820", 18, 19, 5, 289, false, 8201);
    ("x1196", "s1196", 14, 14, 18, 529, false, 11961);
    ("x1423", "s1423", 17, 5, 74, 657, false, 14231);
    ("x1488", "s1488", 8, 19, 6, 653, false, 14881);
    ("x5378", "s5378", 35, 49, 179, 2779, false, 53781);
    (* Real s35932: 35 PIs, 320 POs, 1728 FFs, ~16k gates; scaled ~4x. *)
    ("x35932", "s35932", 35, 80, 430, 4000, true, 359321);
  ]

let entry_of_profile (name, paper_name, pis, pos, ffs, gates, scaled, seed) =
  let profile =
    {
      Synth.name;
      num_inputs = pis;
      num_outputs = pos;
      num_ffs = ffs;
      num_gates = gates;
      sync_fraction = Synth.default_sync_fraction;
      seed;
      style = Synth.Random;
    }
  in
  (* Memoize: generation is deterministic but not free for the big ones. *)
  let cache = ref None in
  let circuit () =
    match !cache with
    | Some c -> c
    | None ->
      let c = Synth.generate profile in
      cache := Some c;
      c
  in
  { name; paper_name; circuit; scaled }

let evaluation_suite () = List.map entry_of_profile profiles

let all () = s27 :: evaluation_suite ()

let find key =
  List.find_opt (fun e -> e.name = key || e.paper_name = key) (all ())
