(** The one circuit-resolution path shared by every CLI and the daemon.

    Specs are either file paths — dispatched on extension, [.bench] to
    {!Bist_circuit.Bench_parser}, [.blif] to {!Bist_circuit.Blif_parser}
    — or known names: registry entries ([s27], [x298], ..., by our name
    or the paper's), teaching circuits ([counter3], [shift4],
    [parity_fsm], [gray3], [johnson4]) and styled workloads ([dp32],
    [pipe16], [fsm8]).

    Parse errors propagate as the parsers' own typed exceptions; only
    spec-level problems (unknown extension, unknown name) raise
    {!Usage_error}, which the CLIs map to exit code 2. *)

exception Usage_error of string
(** The spec itself is wrong (not any parsed content): unsupported file
    extension, or a name that is neither a file nor a known circuit. *)

val supported_extensions : string list
(** The extensions {!load_file} dispatches on: [[".bench"; ".blif"]]. *)

val load_file : string -> Bist_circuit.Netlist.t
(** Parse a circuit file by extension ([.bench] / [.blif], case
    insensitive). Raises {!Usage_error} — naming the offending path and
    the supported extensions — for other extensions, and
    [Bench_parser.Parse_error] / [Blif_parser.Parse_error] for
    malformed content. *)

type payload_format = Bench | Blif

val parse_payload :
  format:payload_format -> name:string -> string -> Bist_circuit.Netlist.t
(** Parse in-memory netlist text (a daemon payload job) without ever
    touching the filesystem; [name] labels the circuit. Raises the
    parser's own typed [Parse_error] on malformed content and nothing
    else. *)

val find_named : string -> Bist_circuit.Netlist.t option
(** Known circuit names only — never touches the filesystem, which is
    what network-facing callers (the daemon) must use. *)

val resolve : string -> Bist_circuit.Netlist.t
(** [load_file] if the spec names an existing file, else {!find_named},
    else {!Usage_error} listing what would have been accepted. *)
