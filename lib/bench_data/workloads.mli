(** Styled synthetic workload circuits.

    Where {!Registry} holds the paper's evaluation suite (frozen
    [Synth.Random] profiles whose fault tables are published in
    EXPERIMENTS.md), these are structural stress shapes from the styled
    generator variants — datapath, pipeline, FSM — exposed by name
    through {!Loader.find_named} so the CLIs and daemon can run them
    without perturbing the registry, its fingerprints, or the
    experiment tables. *)

val all : unit -> (string * (unit -> Bist_circuit.Netlist.t)) list
(** [(name, circuit)] pairs, deterministic in the frozen seeds:
    ["dp32"] (datapath, 32 FFs in four words),
    ["pipe16"] (pipeline, 16 FFs in four ranks),
    ["fsm8"] (dense 8-bit state machine). *)

val find : string -> (unit -> Bist_circuit.Netlist.t) option
