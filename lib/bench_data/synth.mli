(** Synthetic synchronous sequential benchmark circuits.

    The paper evaluates on ISCAS-89 netlists, which are not available
    here; this generator produces random gate-level circuits matched to a
    published profile (PI / PO / flip-flop / gate counts). Circuits are
    deterministic in the seed.

    Structure, chosen so the circuits behave like the real benchmarks
    under three-valued sequential test generation:

    - gates draw fanins with a recency bias, giving multi-level cones;
    - a configurable fraction of flip-flops get a {e synchronizing} D
      input — a gate with a controlling side driven directly by a primary
      input — so the state can be progressively initialized from the
      all-X state, as in the real benchmarks;
    - every gate output is observable: leftover unconsumed signals become
      primary outputs or are folded into an OR collector tree feeding the
      last output. *)

type style =
  | Random
      (** The original generator: weighted random gates, load-mux /
          sync-gate flip-flop inputs. *)
  | Datapath
      (** Register-file flavour: flip-flops grouped into words of eight
          sharing one load line per word, each bit a load-mux
          ([D = load·data + ¬load·feedback]) — the shape synthesized
          datapaths take after register inference. *)
  | Pipeline
      (** Flip-flops arranged in ranks; each rank's D inputs combine the
          previous rank's outputs (rank 0 loads from primary inputs), a
          fraction gated by a primary input for initializability. *)
  | Fsm
      (** A small dense state register: every D is a two-term
          sum-of-products over state bits (possibly inverted) and a
          primary input, so next-state logic reads most of the state —
          the hard case for subsequence-based loading. *)

type profile = {
  name : string;
  num_inputs : int;
  num_outputs : int;
  num_ffs : int;
  num_gates : int;  (** Target combinational gate count (approximate). *)
  sync_fraction : float;
      (** Fraction of flip-flops given a synchronizing D gate. *)
  seed : int;
  style : style;
      (** Structural flavour. [Random] reproduces the original generator
          exactly (same circuits for the same seed), so published
          registry profiles are unaffected by the styled variants. *)
}

val default_sync_fraction : float
(** 0.7 — calibrated so random circuits reach coverages comparable to the
    ISCAS-89 circuits under random/deterministic test generation. *)

val generate : profile -> Bist_circuit.Netlist.t
(** Raises [Invalid_argument] on nonsensical profiles (no inputs or no
    outputs). *)
