exception Usage_error of string

let () =
  Printexc.register_printer (function
    | Usage_error message -> Some (Printf.sprintf "usage error: %s" message)
    | _ -> None)

let usage fmt = Printf.ksprintf (fun m -> raise (Usage_error m)) fmt

let supported_extensions = [ ".bench"; ".blif" ]

let supported () = String.concat ", " supported_extensions

let load_file path =
  match String.lowercase_ascii (Filename.extension path) with
  | ".bench" -> Bist_circuit.Bench_parser.parse_file path
  | ".blif" -> Bist_circuit.Blif_parser.parse_file path
  | "" -> usage "%S has no extension (supported: %s)" path (supported ())
  | ext ->
    usage "%S has unsupported extension %S (supported: %s)" path ext
      (supported ())

type payload_format = Bench | Blif

let parse_payload ~format ~name text =
  match format with
  | Bench -> Bist_circuit.Bench_parser.parse_string ~name text
  | Blif -> Bist_circuit.Blif_parser.parse_string ~name text

let teaching = function
  | "counter3" -> Some (Teaching.counter3 ())
  | "shift4" -> Some (Teaching.shift4 ())
  | "parity_fsm" -> Some (Teaching.parity_fsm ())
  | "gray3" -> Some (Teaching.gray3 ())
  | "johnson4" -> Some (Teaching.johnson4 ())
  | _ -> None

let find_named spec =
  match Registry.find spec with
  | Some entry -> Some (entry.Registry.circuit ())
  | None -> (
    match teaching spec with
    | Some c -> Some c
    | None -> (
      match Workloads.find spec with
      | Some circuit -> Some (circuit ())
      | None -> None))

let resolve spec =
  if Sys.file_exists spec then load_file spec
  else
    match find_named spec with
    | Some c -> c
    | None ->
      usage
        "%S is neither a file nor a known circuit (try s27, x298, counter3, \
         dp32, ... or a .bench/.blif path)"
        spec
