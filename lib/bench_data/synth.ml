module Rng = Bist_util.Rng
module Gate = Bist_circuit.Gate
module Builder = Bist_circuit.Builder

type style = Random | Datapath | Pipeline | Fsm

type profile = {
  name : string;
  num_inputs : int;
  num_outputs : int;
  num_ffs : int;
  num_gates : int;
  sync_fraction : float;
  seed : int;
  style : style;
}

let default_sync_fraction = 0.85

type state = {
  rng : Rng.t;
  builder : Builder.t;
  mutable signals : string array; (* every defined signal, definition order *)
  mutable n_signals : int;
  used : (string, unit) Hashtbl.t; (* signals with at least one consumer *)
  mutable gate_counter : int;
  pi_not : (string, string) Hashtbl.t; (* cached NOT(pi) gates *)
}

let push st name =
  if st.n_signals = Array.length st.signals then begin
    let bigger = Array.make (max 16 (2 * st.n_signals)) "" in
    Array.blit st.signals 0 bigger 0 st.n_signals;
    st.signals <- bigger
  end;
  st.signals.(st.n_signals) <- name;
  st.n_signals <- st.n_signals + 1

let mark_used st name = Hashtbl.replace st.used name ()

(* Recency-biased pick: squaring the uniform draw favours signals defined
   recently, which stretches cones into multiple levels instead of letting
   every gate hang off the primary inputs. *)
let pick_signal st =
  let u = Rng.float st.rng in
  let idx = int_of_float (float_of_int st.n_signals *. (1.0 -. (u *. u))) in
  st.signals.(min idx (st.n_signals - 1))

let pick_distinct st n =
  let rec pick acc tries =
    if List.length acc >= n then acc
    else
      let s = pick_signal st in
      if List.mem s acc && tries < 8 then pick acc (tries + 1)
      else pick (s :: acc) 0
  in
  pick [] 0

let fresh_gate st = begin
  let name = Printf.sprintf "N%d" st.gate_counter in
  st.gate_counter <- st.gate_counter + 1;
  name
end

let add_gate st kind fanins =
  let name = fresh_gate st in
  Builder.add_gate st.builder ~output:name kind fanins;
  List.iter (mark_used st) fanins;
  push st name;
  name

let gate_kinds =
  [| (Gate.And, 24); (Gate.Nand, 18); (Gate.Or, 20); (Gate.Nor, 18);
     (Gate.Not, 12); (Gate.Xor, 4); (Gate.Xnor, 2); (Gate.Buf, 2) |]

let total_weight = Array.fold_left (fun acc (_, w) -> acc + w) 0 gate_kinds

let sample_kind rng =
  let r = Rng.int rng total_weight in
  let rec go i acc =
    let kind, w = gate_kinds.(i) in
    if r < acc + w then kind else go (i + 1) (acc + w)
  in
  go 0 0

let sample_arity rng kind =
  match kind with
  | Gate.Not | Gate.Buf -> 1
  | _ ->
    let r = Rng.int rng 10 in
    if r < 7 then 2 else if r < 9 then 3 else 4

let add_random_gate st =
  let kind = sample_kind st.rng in
  let arity = sample_arity st.rng kind in
  ignore (add_gate st kind (pick_distinct st arity) : string)

let pi_inverter st pi =
  match Hashtbl.find_opt st.pi_not pi with
  | Some g -> g
  | None ->
    let g = add_gate st Gate.Not [ pi ] in
    Hashtbl.add st.pi_not pi g;
    g

(* Prefer primary inputs for load-mux data: directly controllable values
   are what lets test generation steer the state. *)
let pick_data st pis =
  if Rng.bool st.rng then Rng.choose st.rng pis else pick_signal st

(* D = load·data + ¬load·feedback, with [load] a primary input: one cycle
   with the load line asserted copies a controllable value into the
   flip-flop, which is how real register files become initializable. *)
let add_load_mux_with st ~load ~pis =
  let nload = pi_inverter st load in
  let data = pick_data st pis in
  let fb = pick_signal st in
  let a1 = add_gate st Gate.And [ load; data ] in
  let a2 = add_gate st Gate.And [ nload; fb ] in
  add_gate st Gate.Or [ a1; a2 ]

let add_load_mux st ~pis =
  let load = Rng.choose st.rng pis in
  add_load_mux_with st ~load ~pis

(* D gate with a PI on a controlling side: forces one known value. *)
let add_sync_gate st ~pis =
  let kind =
    match Rng.int st.rng 4 with
    | 0 -> Gate.And
    | 1 -> Gate.Or
    | 2 -> Gate.Nand
    | _ -> Gate.Nor
  in
  add_gate st kind [ Rng.choose st.rng pis; pick_signal st ]

(* Datapath flavour: flip-flops grouped into words of eight sharing one
   load line, each bit an independent load-mux — register inference
   output. *)
let generate_datapath p st ~pis ~ffs =
  let word = 8 in
  let n_words = (Array.length ffs + word - 1) / word in
  let loads = Array.make (max 1 n_words) pis.(0) in
  for w = 0 to n_words - 1 do
    loads.(w) <- Rng.choose st.rng pis
  done;
  let main_gates = max 1 (p.num_gates - (4 * Array.length ffs)) in
  for _ = 1 to main_gates do
    add_random_gate st
  done;
  Array.iteri
    (fun i ff ->
      let d = add_load_mux_with st ~load:loads.(i / word) ~pis in
      Builder.add_gate st.builder ~output:ff Gate.Dff [ d ])
    ffs

(* Pipeline flavour: flip-flop ranks, each D combining the previous
   rank's outputs (rank 0 loads from the primary inputs); a fraction of
   the inter-rank gates get a primary input on a controlling side so the
   pipe can be flushed to known values. *)
let generate_pipeline p st ~pis ~ffs =
  let n = Array.length ffs in
  let stages = max 1 (min 4 n) in
  let rank i = i * stages / n in
  let ranks = Array.make stages [] in
  for i = n - 1 downto 0 do
    ranks.(rank i) <- ffs.(i) :: ranks.(rank i)
  done;
  let main_gates = max 1 (p.num_gates - (2 * n)) in
  for _ = 1 to main_gates do
    add_random_gate st
  done;
  Array.iteri
    (fun i ff ->
      let r = rank i in
      let d =
        if r = 0 then add_sync_gate st ~pis
        else begin
          let prev = Array.of_list ranks.(r - 1) in
          let a = Rng.choose st.rng prev in
          let b = Rng.choose st.rng prev in
          let kind =
            match Rng.int st.rng 3 with
            | 0 -> Gate.And
            | 1 -> Gate.Or
            | _ -> Gate.Xor
          in
          let g =
            if String.equal a b then add_gate st kind [ a; pick_signal st ]
            else add_gate st kind [ a; b ]
          in
          if Rng.float st.rng < p.sync_fraction *. 0.5 then begin
            let kind = if Rng.bool st.rng then Gate.And else Gate.Or in
            add_gate st kind [ Rng.choose st.rng pis; g ]
          end
          else g
        end
      in
      Builder.add_gate st.builder ~output:ff Gate.Dff [ d ])
    ffs

(* FSM flavour: every D is a two-term sum-of-products over (possibly
   inverted) state bits and a primary input, so next-state logic reads
   most of the state. Driving the term PIs to 0 still forces every D to
   a known value from all-X, keeping the state synchronizable. *)
let generate_fsm p st ~pis ~ffs =
  let inv_cache = Hashtbl.create 8 in
  let inverted s =
    match Hashtbl.find_opt inv_cache s with
    | Some g -> g
    | None ->
      let g = add_gate st Gate.Not [ s ] in
      Hashtbl.add inv_cache s g;
      g
  in
  let main_gates = max 1 (p.num_gates - (8 * Array.length ffs)) in
  for _ = 1 to main_gates do
    add_random_gate st
  done;
  Array.iter
    (fun ff ->
      let literal () =
        let s = Rng.choose st.rng ffs in
        if Rng.bool st.rng then s else inverted s
      in
      let term () =
        add_gate st Gate.And [ literal (); literal (); Rng.choose st.rng pis ]
      in
      let t1 = term () in
      let t2 = term () in
      let d = add_gate st Gate.Or [ t1; t2 ] in
      Builder.add_gate st.builder ~output:ff Gate.Dff [ d ])
    ffs

let generate p =
  if p.num_inputs < 1 || p.num_outputs < 1 then
    invalid_arg "Synth.generate: need at least one input and one output";
  let rng = Rng.create p.seed in
  let builder = Builder.create ~name:p.name in
  let st =
    { rng; builder; signals = Array.make 64 ""; n_signals = 0;
      used = Hashtbl.create 256; gate_counter = 0; pi_not = Hashtbl.create 8 }
  in
  let pis = Array.init p.num_inputs (fun i -> Printf.sprintf "I%d" i) in
  Array.iter
    (fun pi ->
      Builder.add_input builder pi;
      push st pi)
    pis;
  let ffs = Array.init p.num_ffs (fun i -> Printf.sprintf "F%d" i) in
  Array.iter (push st) ffs;
  (match p.style with
  | Random ->
    (* Reserve budget for the D-input structures created below: load-mux
       FFs take ~4 gates, sync FFs one. *)
    let n_mux =
      int_of_float (float_of_int p.num_ffs *. p.sync_fraction *. 0.6)
    in
    let n_sync =
      min (p.num_ffs - n_mux)
        (int_of_float (ceil (float_of_int p.num_ffs *. p.sync_fraction))
        - n_mux)
    in
    let reserved = (4 * n_mux) + n_sync in
    let main_gates = max 1 (p.num_gates - reserved) in
    for _ = 1 to main_gates do
      add_random_gate st
    done;
    Array.iteri
      (fun i ff ->
        let d =
          if i < n_mux then add_load_mux st ~pis
          else if i < n_mux + n_sync then add_sync_gate st ~pis
          else begin
            let s = pick_signal st in
            mark_used st s;
            s
          end
        in
        Builder.add_gate builder ~output:ff Gate.Dff [ d ])
      ffs
  | Datapath -> generate_datapath p st ~pis ~ffs
  | Pipeline -> generate_pipeline p st ~pis ~ffs
  | Fsm -> generate_fsm p st ~pis ~ffs);
  (* Primary outputs: every dangling signal must be observable, so the
     dangling set is partitioned across the POs and each partition is
     folded into a small collector tree. XOR dominates the collectors
     because it propagates any single fault effect regardless of the
     other tree inputs; a pure OR collector would mask almost
     everything. *)
  let dangling =
    Array.to_list (Array.sub st.signals 0 st.n_signals)
    |> List.filter (fun s ->
           (not (Hashtbl.mem st.used s)) && not (Array.exists (String.equal s) pis))
  in
  let collector_kind () =
    let r = Rng.int rng 10 in
    if r < 6 then Gate.Xor else if r < 8 then Gate.Or else Gate.And
  in
  let rec fold_tree = function
    | [] -> assert false
    | [ s ] -> s
    | signals ->
      let rec pair acc = function
        | a :: b :: rest -> pair (add_gate st (collector_kind ()) [ a; b ] :: acc) rest
        | [ a ] -> a :: acc
        | [] -> acc
      in
      fold_tree (List.rev (pair [] signals))
  in
  let outputs =
    if List.length dangling >= p.num_outputs then begin
      let arr = Array.of_list dangling in
      Rng.shuffle_in_place rng arr;
      let groups = Array.make p.num_outputs [] in
      Array.iteri (fun i s -> groups.(i mod p.num_outputs) <- s :: groups.(i mod p.num_outputs)) arr;
      Array.to_list (Array.map fold_tree groups)
    end
    else begin
      let extra = ref [] in
      while List.length dangling + List.length !extra < p.num_outputs do
        let s = pick_signal st in
        if (not (List.mem s dangling)) && not (List.mem s !extra) then
          extra := s :: !extra
      done;
      dangling @ !extra
    end
  in
  List.iter (fun s -> Builder.add_output builder s) outputs;
  Builder.finalize builder
