exception Corrupt of string
exception Mismatch of string

let () =
  Printexc.register_printer (function
    | Corrupt msg -> Some (Printf.sprintf "corrupt checkpoint: %s" msg)
    | Mismatch msg -> Some (Printf.sprintf "checkpoint mismatch: %s" msg)
    | _ -> None)

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt
let mismatch fmt = Printf.ksprintf (fun msg -> raise (Mismatch msg)) fmt

module Io = struct
  type writer = Buffer.t

  let writer () = Buffer.create 1024
  let contents = Buffer.contents

  let u8 w v =
    if v < 0 || v > 0xFF then invalid_arg "Checkpoint.Io.u8: out of range";
    Buffer.add_char w (Char.chr v)

  let i64 w v = Buffer.add_int64_le w v

  let int w v = i64 w (Int64.of_int v)

  let u32 w v =
    if v < 0 || v > 0xFFFF_FFFF then invalid_arg "Checkpoint.Io.u32: out of range";
    Buffer.add_int32_le w (Int32.of_int v)

  let bool w v = u8 w (if v then 1 else 0)

  let string w s =
    u32 w (String.length s);
    Buffer.add_string w s

  let list w f items =
    u32 w (List.length items);
    List.iter (f w) items

  let option w f = function
    | None -> u8 w 0
    | Some v ->
      u8 w 1;
      f w v

  type reader = { data : string; mutable pos : int }

  let reader data = { data; pos = 0 }

  let need r n =
    if n < 0 || r.pos + n > String.length r.data then
      corrupt "payload truncated at byte %d (needs %d more)" r.pos n

  let r_u8 r =
    need r 1;
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let r_i64 r =
    need r 8;
    let v = String.get_int64_le r.data r.pos in
    r.pos <- r.pos + 8;
    v

  let r_int r = Int64.to_int (r_i64 r)

  let r_u32 r =
    need r 4;
    let v = Int32.to_int (String.get_int32_le r.data r.pos) land 0xFFFF_FFFF in
    r.pos <- r.pos + 4;
    v

  let r_bool r =
    match r_u8 r with
    | 0 -> false
    | 1 -> true
    | v -> corrupt "invalid boolean byte %d" v

  let r_string r =
    let n = r_u32 r in
    need r n;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let r_list r f =
    let n = r_u32 r in
    List.init n (fun _ -> f r)

  let r_option r f =
    match r_u8 r with
    | 0 -> None
    | 1 -> Some (f r)
    | v -> corrupt "invalid option tag %d" v

  let at_end r = r.pos = String.length r.data

  let expect_end r =
    if not (at_end r) then
      corrupt "trailing garbage: %d unread bytes" (String.length r.data - r.pos)
end

(* Domain-type codecs shared by every snapshot payload. *)

let rng (w : Io.writer) t = Array.iter (Io.i64 w) (Bist_util.Rng.export t)

let r_rng r =
  let words = Array.init 4 (fun _ -> Io.r_i64 r) in
  match Bist_util.Rng.import words with
  | t -> t
  | exception Invalid_argument msg -> corrupt "%s" msg

let bitset w (set : Bist_util.Bitset.t) =
  Io.u32 w (Bist_util.Bitset.capacity set);
  Io.u32 w (Bist_util.Bitset.cardinal set);
  Bist_util.Bitset.iter (fun id -> Io.u32 w id) set

let r_bitset r =
  let capacity = Io.r_u32 r in
  let count = Io.r_u32 r in
  let set = Bist_util.Bitset.create capacity in
  for _ = 1 to count do
    let id = Io.r_u32 r in
    if id >= capacity then corrupt "bitset member %d exceeds capacity %d" id capacity;
    Bist_util.Bitset.add set id
  done;
  set

let tseq w (seq : Bist_logic.Tseq.t) =
  Io.u32 w (Bist_logic.Tseq.width seq);
  Io.u32 w (Bist_logic.Tseq.length seq);
  Bist_logic.Tseq.iter
    (fun v -> Buffer.add_string w (Bist_logic.Vector.to_string v))
    seq

let r_tseq r =
  let width = Io.r_u32 r in
  let length = Io.r_u32 r in
  Io.need r (width * length);
  let vector _ =
    let s = String.sub r.Io.data r.Io.pos width in
    r.Io.pos <- r.Io.pos + width;
    match Bist_logic.Vector.of_string s with
    | v -> v
    | exception Invalid_argument msg -> corrupt "bad vector: %s" msg
  in
  if length = 0 then Bist_logic.Tseq.empty width
  else Bist_logic.Tseq.of_vectors (Array.init length vector)

(* Container format:
     magic "BISTCKPT" | u32 version | kind | circuit | u32 fingerprint
     | payload | u32 crc32-of-everything-before
   All multibyte fields little-endian; strings length-prefixed. *)

let magic = "BISTCKPT"
let version = 1

type header = {
  kind : string;
  circuit : string;
  fingerprint : int32;
  payload : string;
}

let encode { kind; circuit; fingerprint; payload } =
  let w = Io.writer () in
  Buffer.add_string w magic;
  Io.u32 w version;
  Io.string w kind;
  Io.string w circuit;
  Io.u32 w (Int32.to_int fingerprint land 0xFFFF_FFFF);
  Io.string w payload;
  let body = Io.contents w in
  let crc = Crc32.string body in
  Io.u32 w (Int32.to_int crc land 0xFFFF_FFFF);
  Io.contents w

let decode data =
  let n = String.length data in
  if n < String.length magic + 8 then corrupt "file too short (%d bytes)" n;
  if String.sub data 0 (String.length magic) <> magic then
    corrupt "bad magic (not a checkpoint file)";
  let stored_crc =
    Int32.to_int (String.get_int32_le data (n - 4)) land 0xFFFF_FFFF
  in
  let computed =
    Int32.to_int (Crc32.update 0l data ~pos:0 ~len:(n - 4)) land 0xFFFF_FFFF
  in
  if stored_crc <> computed then
    corrupt "CRC mismatch (stored %08x, computed %08x) — truncated or bit-flipped"
      stored_crc computed;
  let r = Io.reader (String.sub data (String.length magic) (n - String.length magic - 4)) in
  let v = Io.r_u32 r in
  if v <> version then corrupt "unsupported version %d (this build reads %d)" v version;
  let kind = Io.r_string r in
  let circuit = Io.r_string r in
  let fingerprint = Int32.of_int (Io.r_u32 r) in
  let payload = Io.r_string r in
  Io.expect_end r;
  { kind; circuit; fingerprint; payload }

let save ~path header = Atomic_io.write_file ~path (encode header)

let load path =
  match Atomic_io.read_file ~path with
  | data -> decode data
  | exception Sys_error msg -> corrupt "%s" msg

let ensure ~kind ~circuit ~fingerprint header =
  if header.kind <> kind then
    mismatch "checkpoint is for a %S run, this is %S" header.kind kind;
  if header.circuit <> circuit then
    mismatch "checkpoint was taken on circuit %S, this run is on %S"
      header.circuit circuit;
  if header.fingerprint <> fingerprint then
    mismatch
      "circuit %S has changed since the checkpoint was taken (fingerprint %08lx, \
       expected %08lx)"
      circuit fingerprint header.fingerprint
