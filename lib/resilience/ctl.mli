(** The preemption control handle threaded through the pipeline.

    A [Ctl.t] bundles an optional wall-clock {!Deadline} and an optional
    {!Cancel} token. Every long-running phase takes [?ctl:Ctl.t]
    (default: no control, zero overhead) and calls {!poll} at its safe
    points — iteration boundaries where no partial mutation is in
    flight. When the control says stop, {!Preempted} unwinds to the
    nearest holder of resumable state, which converts it into a typed
    [Interrupted] exception carrying a snapshot (engine, compaction,
    campaign) or lets it propagate to the CLI (phases with nothing worth
    resuming).

    {2 The progress guarantee}

    A deadline only preempts after {!note_progress} has been called at
    least once, i.e. after one resumable step has been committed. A
    chain of checkpoint-resume-checkpoint cycles therefore always
    terminates: each attempt commits at least one new step, no matter
    how small the budget. Cancellation is immediate — a SIGTERM must
    stop the run even if it has not advanced. *)

type reason = Deadline_exceeded | Cancelled

exception Preempted of reason
(** Raised by {!check}/{!poll} at a safe point. Carries no state by
    design: state travels in each phase's own [Interrupted] exception. *)

val reason_name : reason -> string
(** ["deadline"] / ["cancelled"] — for messages and trace args. *)

type t

val create : ?deadline:Deadline.t -> ?cancel:Cancel.t -> unit -> t

val note_progress : t -> unit
(** Record that a resumable step was committed (atomic; any domain). *)

val progress : t -> int
(** Steps committed so far. *)

val stop_reason : t -> reason option
(** [Some Cancelled] as soon as the token is requested; [Some
    Deadline_exceeded] once the deadline passed {e and} progress was
    made; [None] otherwise. *)

val check : t -> unit
(** Raise {!Preempted} if {!stop_reason} is set. *)

val poll : t option -> unit
(** {!check} through the [?ctl] option; no-op on [None]. *)
