(** Cooperative cancellation tokens.

    A token is a single atomic flag: {!request} flips it (idempotent,
    safe from a signal handler or any domain), and workers observe it at
    their next poll. This is how SIGINT/SIGTERM reach the generation
    loops — the CLI's signal handler only calls {!request}; all the
    actual unwinding happens cooperatively at safe points, so no
    checkpoint is ever written from inside a signal handler and no
    half-updated engine state is ever serialized.

    Tokens cross {!Bist_parallel.Pool} domain boundaries freely: the
    fault-simulation shards poll the same token the main domain arms. *)

type t

val create : unit -> t
(** A fresh, un-requested token. *)

val request : t -> unit
(** Arm the token. Idempotent; async-signal-safe (a single atomic
    store). *)

val requested : t -> bool
(** Poll. A single atomic load. *)
