(** Versioned, CRC-32-checksummed snapshots of engine progress.

    A checkpoint file is a single atomic write ({!Atomic_io}): magic,
    format version, the producing phase's [kind] tag, the circuit's name
    and fingerprint (CRC-32 of its canonical [.bench] text), an opaque
    payload, and a trailing CRC-32 over everything before it. Loading
    verifies the checksum before parsing a byte of content, so a
    truncated, bit-flipped or foreign file is a typed {!Corrupt} error —
    never an exception escape or a silently wrong resume — and a
    checkpoint from a different circuit or phase is a typed {!Mismatch}.

    Payloads are produced with the {!Io} codec by the phase that owns
    the state (engine, compaction, campaign each expose
    [encode_snapshot]/[decode_snapshot]); this module stores them
    without interpreting them. *)

exception Corrupt of string
(** The file is not a readable checkpoint: truncation, checksum
    mismatch, unsupported version, malformed payload. *)

exception Mismatch of string
(** The file is a valid checkpoint for a different run: wrong phase
    kind, circuit name, or circuit fingerprint. *)

(** Length-prefixed little-endian binary codec for snapshot payloads.
    Readers bound-check every access and raise {!Corrupt} (never an
    out-of-bounds exception) on malformed input. *)
module Io : sig
  type writer

  val writer : unit -> writer
  val contents : writer -> string
  val u8 : writer -> int -> unit
  val u32 : writer -> int -> unit
  val i64 : writer -> int64 -> unit
  val int : writer -> int -> unit
  val bool : writer -> bool -> unit
  val string : writer -> string -> unit
  val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
  val option : writer -> (writer -> 'a -> unit) -> 'a option -> unit

  type reader = { data : string; mutable pos : int }

  val reader : string -> reader
  val need : reader -> int -> unit
  val r_u8 : reader -> int
  val r_u32 : reader -> int
  val r_i64 : reader -> int64
  val r_int : reader -> int
  val r_bool : reader -> bool
  val r_string : reader -> string
  val r_list : reader -> (reader -> 'a) -> 'a list
  val r_option : reader -> (reader -> 'a) -> 'a option
  val at_end : reader -> bool
  val expect_end : reader -> unit
end

(** {2 Shared domain-type codecs} *)

val rng : Io.writer -> Bist_util.Rng.t -> unit
val r_rng : Io.reader -> Bist_util.Rng.t

val bitset : Io.writer -> Bist_util.Bitset.t -> unit
val r_bitset : Io.reader -> Bist_util.Bitset.t

val tseq : Io.writer -> Bist_logic.Tseq.t -> unit
val r_tseq : Io.reader -> Bist_logic.Tseq.t

(** {2 The container} *)

type header = {
  kind : string;  (** Producing phase: ["tgen"], ["inject"], ... *)
  circuit : string;  (** Circuit name the run was on. *)
  fingerprint : int32;  (** {!Crc32.string} of the canonical bench text. *)
  payload : string;  (** Opaque phase-owned snapshot bytes. *)
}

val encode : header -> string
val decode : string -> header
(** Raises {!Corrupt}. *)

val save : path:string -> header -> unit
(** Atomic: temp file + fsync + rename ({!Atomic_io.write_file}). *)

val load : string -> header
(** Raises {!Corrupt} (including on an unreadable file). *)

val ensure : kind:string -> circuit:string -> fingerprint:int32 -> header -> unit
(** Validate a loaded header against the current run; raises
    {!Mismatch} naming the offending field. *)
