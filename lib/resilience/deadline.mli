(** Wall-clock budgets for long-running generation phases.

    A deadline is a fixed expiry instant; the pipeline polls {!expired}
    at safe points (round boundaries, trial boundaries, 63-fault
    simulation groups) and preempts cleanly instead of being killed
    mid-write. Polling is a clock read and a compare — cheap enough for
    inner loops — and is safe from any domain. *)

type t

val after : ?clock:(unit -> float) -> float -> t
(** [after seconds] expires that many seconds from now. [clock]
    (default [Unix.gettimeofday]) exists so tests can drive a
    deterministic clock and preempt at an exact poll count. Raises
    [Invalid_argument] on a non-positive budget. *)

val expired : t -> bool

val remaining : t -> float
(** Seconds left; [0.] once expired. *)
