(** From-scratch CRC-32 (IEEE 802.3, the zlib/PNG polynomial).

    Checkpoint files append this checksum over everything that precedes
    it, so a truncated or bit-flipped snapshot is rejected before any of
    its content is trusted. Circuit fingerprints use the same function
    over the canonical [.bench] text. *)

val string : string -> int32
(** CRC-32 of a whole string. [string "123456789" = 0xCBF43926l]. *)

val update : int32 -> string -> pos:int -> len:int -> int32
(** Incremental form: [update crc s ~pos ~len] extends [crc] with a
    substring. [string s = update 0l s ~pos:0 ~len:(String.length s)].
    Raises [Invalid_argument] on an out-of-bounds range. *)
