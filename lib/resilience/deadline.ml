type t = { clock : unit -> float; expires_at : float }

let after ?(clock = Unix.gettimeofday) seconds =
  if not (seconds > 0.0) then invalid_arg "Deadline.after: budget must be positive";
  { clock; expires_at = clock () +. seconds }

let expired t = t.clock () >= t.expires_at

let remaining t = Float.max 0.0 (t.expires_at -. t.clock ())
