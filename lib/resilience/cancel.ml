type t = bool Atomic.t

let create () = Atomic.make false

let request t = Atomic.set t true

let requested t = Atomic.get t
