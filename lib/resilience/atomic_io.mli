(** Atomic whole-file replacement (temp file + fsync + rename).

    Every artifact a run may be killed while writing — checkpoints,
    traces, the bench trajectory — goes through {!write_file}, so a file
    on disk is always either the previous complete version or the new
    complete version. *)

val write_file : path:string -> string -> unit
(** [write_file ~path content] atomically replaces [path] with
    [content]. The temp file ([path.tmp.<pid>]) lives in the target's
    directory so the rename never crosses filesystems; it is removed on
    failure. Raises [Unix.Unix_error] on I/O failure. *)

val read_file : path:string -> string
(** Read a whole file into a string (convenience counterpart). *)
