(* Crash-safe file replacement: write to a temp file in the same
   directory, fsync it, rename over the target, then fsync the directory
   so the rename itself survives a crash. Readers therefore only ever see
   the old content or the complete new content, never a prefix. *)

let fsync_dir dir =
  (* Best-effort: some filesystems refuse fsync on a directory fd; the
     rename is already atomic for readers, the directory sync only
     hardens against power loss. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

let write_file ~path content =
  let dir = Filename.dirname path in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (match
     let len = String.length content in
     let written = ref 0 in
     while !written < len do
       written :=
         !written + Unix.write_substring fd content !written (len - !written)
     done;
     Unix.fsync fd
   with
  | () -> Unix.close fd
  | exception e ->
    (try Unix.close fd with _ -> ());
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  (match Unix.rename tmp path with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  fsync_dir dir

let read_file ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
