type reason = Deadline_exceeded | Cancelled

let reason_name = function
  | Deadline_exceeded -> "deadline"
  | Cancelled -> "cancelled"

exception Preempted of reason

let () =
  Printexc.register_printer (function
    | Preempted r -> Some (Printf.sprintf "Ctl.Preempted (%s)" (reason_name r))
    | _ -> None)

type t = {
  deadline : Deadline.t option;
  cancel : Cancel.t option;
  progress : int Atomic.t;
}

let create ?deadline ?cancel () = { deadline; cancel; progress = Atomic.make 0 }

let note_progress t = Atomic.incr t.progress

let progress t = Atomic.get t.progress

(* Cancellation always wins and fires immediately; a deadline only fires
   once at least one safe point has been committed ([note_progress]), so
   a resumed run whose per-step cost exceeds the whole budget still
   advances by one step per attempt instead of livelocking on the same
   checkpoint. *)
let stop_reason t =
  match t.cancel with
  | Some c when Cancel.requested c -> Some Cancelled
  | _ -> (
    match t.deadline with
    | Some d when Atomic.get t.progress > 0 && Deadline.expired d ->
      Some Deadline_exceeded
    | _ -> None)

let check t =
  match stop_reason t with None -> () | Some r -> raise (Preempted r)

let poll = function None -> () | Some t -> check t
