type event = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  args : (string * string) list;
}

type t = {
  mutex : Mutex.t;
  mutable events : event list; (* newest first *)
  mutable count : int;
}

let create () = { mutex = Mutex.create (); events = []; count = 0 }

let add t ~name ~cat ~ts_us ~dur_us ~tid ~args =
  let e = { name; cat; ts_us; dur_us; tid; args } in
  Mutex.lock t.mutex;
  t.events <- e :: t.events;
  t.count <- t.count + 1;
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = t.count in
  Mutex.unlock t.mutex;
  n

let escape_json s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let event_json e =
  let args =
    match e.args with
    | [] -> ""
    | args ->
      let fields =
        args
        |> List.map (fun (k, v) ->
               Printf.sprintf "\"%s\": \"%s\"" (escape_json k) (escape_json v))
        |> String.concat ", "
      in
      Printf.sprintf ", \"args\": {%s}" fields
  in
  Printf.sprintf
    "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \
     \"dur\": %.3f, \"pid\": 0, \"tid\": %d%s}"
    (escape_json e.name) (escape_json e.cat) e.ts_us e.dur_us e.tid args

let to_json t =
  Mutex.lock t.mutex;
  let events = List.rev t.events in
  Mutex.unlock t.mutex;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf "  ";
      Buffer.add_string buf (event_json e))
    events;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf

(* Atomic (temp + rename): a run killed while flushing its trace must
   not leave a truncated, unparseable file where a previous good trace
   may have been — whatever is at [path] always passes `trace-check`. *)
let write_file t path =
  Bist_resilience.Atomic_io.write_file ~path (to_json t)
