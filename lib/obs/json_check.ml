type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_failure of int * string

let fail pos msg = raise (Parse_failure (pos, msg))

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st.pos (Printf.sprintf "expected %C, found %C" c d)
  | None -> fail st.pos (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos (Printf.sprintf "invalid literal (expected %s)" word)

let hex_digit pos c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | c -> fail pos (Printf.sprintf "invalid hex digit %C" c)

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail st.pos "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.src then
            fail st.pos "truncated \\u escape";
          let code = ref 0 in
          for _ = 1 to 4 do
            code := (!code * 16) + hex_digit st.pos st.src.[st.pos];
            advance st
          done;
          (* Validation, not transcoding: keep the code point as UTF-8
             without attempting surrogate-pair reassembly. *)
          let u =
            match Uchar.of_int !code with
            | u when Uchar.is_valid !code -> u
            | _ | (exception Invalid_argument _) -> Uchar.rep
          in
          Buffer.add_utf_8_uchar buf u
        | c -> fail (st.pos - 1) (Printf.sprintf "invalid escape \\%C" c)));
      go ()
    | Some c when Char.code c < 0x20 ->
      fail st.pos "unescaped control character in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let accept f =
    match peek st with Some c when f c -> advance st; true | _ -> false
  in
  let digits () =
    let any = ref false in
    while accept (function '0' .. '9' -> true | _ -> false) do
      any := true
    done;
    !any
  in
  ignore (accept (fun c -> c = '-') : bool);
  if not (digits ()) then fail st.pos "invalid number";
  if accept (fun c -> c = '.') && not (digits ()) then
    fail st.pos "digits expected after decimal point";
  if accept (function 'e' | 'E' -> true | _ -> false) then begin
    ignore (accept (function '+' | '-' -> true | _ -> false) : bool);
    if not (digits ()) then fail st.pos "digits expected in exponent"
  end;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Number f
  | None -> fail start (Printf.sprintf "invalid number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "value expected, found end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let key = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((key, v) :: acc)
        | Some '}' ->
          advance st;
          Obj (List.rev ((key, v) :: acc))
        | _ -> fail st.pos "expected ',' or '}' in object"
      in
      members []
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List (List.rev (v :: acc))
        | _ -> fail st.pos "expected ',' or ']' in array"
      in
      items []
    end
  | Some '"' -> String (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected character %C" c)

let parse src =
  let st = { src; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos < String.length src then
      Error (Printf.sprintf "offset %d: trailing content after JSON value" st.pos)
    else Ok v
  | exception Parse_failure (pos, msg) ->
    Error (Printf.sprintf "offset %d: %s" pos msg)

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
