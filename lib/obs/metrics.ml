let bucket_bounds =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0; infinity |]

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  bucket_counts : int array;
}

type t = {
  mutex : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr t ?(by = 1) name =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add t.counters name (ref by))

let set_gauge t name v =
  locked t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some r -> r := v
      | None -> Hashtbl.add t.gauges name (ref v))

let bucket_of v =
  let rec go i =
    if i >= Array.length bucket_bounds - 1 || v <= bucket_bounds.(i) then i
    else go (i + 1)
  in
  go 0

let observe t name v =
  locked t (fun () ->
      let h =
        match Hashtbl.find_opt t.hists name with
        | Some h -> h
        | None ->
          let h =
            {
              count = 0;
              sum = 0.0;
              min_v = infinity;
              max_v = neg_infinity;
              bucket_counts = Array.make (Array.length bucket_bounds) 0;
            }
          in
          Hashtbl.add t.hists name h;
          h
      in
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v;
      let b = bucket_of v in
      h.bucket_counts.(b) <- h.bucket_counts.(b) + 1)

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
}

let mean h = h.sum /. float_of_int h.count

let snapshot_hist (h : hist) : histogram =
  {
    count = h.count;
    sum = h.sum;
    min = h.min_v;
    max = h.max_v;
    buckets =
      List.init (Array.length bucket_bounds) (fun i ->
          (bucket_bounds.(i), h.bucket_counts.(i)));
  }

let counter t name =
  locked t (fun () -> Option.map ( ! ) (Hashtbl.find_opt t.counters name))

let gauge t name =
  locked t (fun () -> Option.map ( ! ) (Hashtbl.find_opt t.gauges name))

let histogram t name =
  locked t (fun () -> Option.map snapshot_hist (Hashtbl.find_opt t.hists name))

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = locked t (fun () -> sorted_bindings t.counters ( ! ))
let gauges t = locked t (fun () -> sorted_bindings t.gauges ( ! ))
let histograms t = locked t (fun () -> sorted_bindings t.hists snapshot_hist)

let render t =
  let module T = Bist_util.Ascii_table in
  let buf = Buffer.create 256 in
  let counters = counters t and gauges = gauges t and hists = histograms t in
  if counters <> [] then begin
    let tbl = T.create ~headers:[ ("counter", T.Left); ("value", T.Right) ] in
    List.iter (fun (k, v) -> T.add_row tbl [ k; string_of_int v ]) counters;
    Buffer.add_string buf (T.render tbl)
  end;
  if gauges <> [] then begin
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    let tbl = T.create ~headers:[ ("gauge", T.Left); ("value", T.Right) ] in
    List.iter (fun (k, v) -> T.add_row tbl [ k; Printf.sprintf "%g" v ]) gauges;
    Buffer.add_string buf (T.render tbl)
  end;
  if hists <> [] then begin
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    let tbl =
      T.create
        ~headers:
          [ ("histogram", T.Left); ("count", T.Right); ("sum", T.Right);
            ("mean", T.Right); ("min", T.Right); ("max", T.Right) ]
    in
    List.iter
      (fun (k, h) ->
        T.add_row tbl
          [ k; string_of_int h.count; Printf.sprintf "%.6g" h.sum;
            Printf.sprintf "%.6g" (mean h); Printf.sprintf "%.6g" h.min;
            Printf.sprintf "%.6g" h.max ])
      hists;
    Buffer.add_string buf (T.render tbl)
  end;
  Buffer.contents buf
