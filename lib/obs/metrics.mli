(** Monotonic counters, gauges and histograms.

    A registry keyed by metric name. All operations are O(1) amortized,
    protected by one mutex, and safe to call from worker domains.

    Histograms record count / sum / min / max plus decade buckets
    ([<= 1e-6], [<= 1e-5], ..., [<= 10], [> 10]) — coarse, but enough to
    tell a thousand 10 µs simulations from one 10 ms one, which is the
    question the per-phase summary exists to answer. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** Bump a counter (default [by:1]). Raises [Invalid_argument] on a
    negative increment — counters are monotonic. *)

val set_gauge : t -> string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : t -> string -> float -> unit
(** Record one sample into a histogram. *)

type histogram = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when empty. *)
  max : float;  (** [neg_infinity] when empty. *)
  buckets : (float * int) list;
      (** [(upper_bound, samples <= upper_bound)] per bucket, cumulative
          counts excluded — each sample lands in exactly one bucket. The
          last bucket's bound is [infinity]. *)
}

val mean : histogram -> float
(** [sum / count]; [nan] when empty. *)

val counter : t -> string -> int option
val gauge : t -> string -> float option
val histogram : t -> string -> histogram option

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val gauges : t -> (string * float) list
val histograms : t -> (string * histogram) list

val render : t -> string
(** Counters, gauges and histogram summaries as {!Bist_util.Ascii_table}
    tables; the empty string when nothing was recorded. *)
