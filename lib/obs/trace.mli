(** Chrome trace-event buffer.

    Collects complete-duration events (["ph": "X"]) and renders the JSON
    object format understood by [chrome://tracing] and Perfetto:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. Timestamps and
    durations are in microseconds, per the trace-event spec.

    The buffer is safe to append to from several domains at once; events
    from worker domains carry their [Domain.self ()] id as the [tid], so
    the viewer lays parallel shards out on separate tracks. *)

type t

val create : unit -> t

val add :
  t ->
  name:string ->
  cat:string ->
  ts_us:float ->
  dur_us:float ->
  tid:int ->
  args:(string * string) list ->
  unit
(** Append one complete event. [ts_us] is relative to the sink's start. *)

val length : t -> int
(** Number of events recorded so far. *)

val to_json : t -> string
(** The full trace document, events in the order they were recorded. *)

val write_file : t -> string -> unit
(** Atomic (temp file + rename, {!Bist_resilience.Atomic_io}): a killed
    run never leaves a truncated trace on disk. *)

val escape_json : string -> string
(** JSON string-literal escaping (quotes, backslashes, control
    characters), without the surrounding quotes. Exposed for tests. *)
