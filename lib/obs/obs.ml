type sink = {
  clock : unit -> float;
  start : float;
  trace : Trace.t option;
  metrics : Metrics.t;
  spans : Metrics.t; (* span durations, separate namespace from user metrics *)
}

type t = sink option

let null = None

let create ?(clock = Unix.gettimeofday) ?(trace = false) () =
  Some
    {
      clock;
      start = clock ();
      trace = (if trace then Some (Trace.create ()) else None);
      metrics = Metrics.create ();
      spans = Metrics.create ();
    }

let enabled t = Option.is_some t

let span t ?(cat = "bist") ?args name f =
  match t with
  | None -> f ()
  | Some s ->
    let t_in = s.clock () in
    let record error =
      let t_out = s.clock () in
      let dur = t_out -. t_in in
      Metrics.observe s.spans name dur;
      match s.trace with
      | None -> ()
      | Some trace ->
        let args = match args with None -> [] | Some f -> f () in
        let args = match error with None -> args | Some e -> ("error", e) :: args in
        Trace.add trace ~name ~cat
          ~ts_us:((t_in -. s.start) *. 1e6)
          ~dur_us:(dur *. 1e6)
          ~tid:(Domain.self () :> int)
          ~args
    in
    (match f () with
    | v ->
      record None;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      record (Some (Printexc.to_string e));
      Printexc.raise_with_backtrace e bt)

let count t ?by name =
  match t with None -> () | Some s -> Metrics.incr s.metrics ?by name

let gauge t name v =
  match t with None -> () | Some s -> Metrics.set_gauge s.metrics name v

let observe t name v =
  match t with None -> () | Some s -> Metrics.observe s.metrics name v

let metrics t = Option.map (fun s -> s.metrics) t

let span_seconds t =
  match t with
  | None -> []
  | Some s ->
    Metrics.histograms s.spans
    |> List.map (fun (name, h) -> (name, h.Metrics.sum))

let trace_events t =
  match t with
  | None | Some { trace = None; _ } -> 0
  | Some { trace = Some tr; _ } -> Trace.length tr

let empty_trace = "{\"traceEvents\": [\n\n], \"displayTimeUnit\": \"ms\"}\n"

let trace_json t =
  match t with
  | None | Some { trace = None; _ } -> empty_trace
  | Some { trace = Some tr; _ } -> Trace.to_json tr

let write_trace t path =
  match t with
  | None | Some { trace = None; _ } ->
    Bist_resilience.Atomic_io.write_file ~path empty_trace
  | Some { trace = Some tr; _ } -> Trace.write_file tr path

let summary t =
  match t with
  | None -> ""
  | Some s ->
    let module T = Bist_util.Ascii_table in
    let buf = Buffer.create 512 in
    let spans = Metrics.histograms s.spans in
    if spans <> [] then begin
      let busiest =
        List.fold_left (fun acc (_, h) -> Float.max acc h.Metrics.sum) 0.0 spans
      in
      let tbl =
        T.create
          ~headers:
            [ ("phase", T.Left); ("calls", T.Right); ("total s", T.Right);
              ("mean ms", T.Right); ("max ms", T.Right); ("rel", T.Right) ]
      in
      List.iter
        (fun (name, h) ->
          T.add_row tbl
            [ name;
              string_of_int h.Metrics.count;
              Printf.sprintf "%.4f" h.Metrics.sum;
              Printf.sprintf "%.3f" (1e3 *. Metrics.mean h);
              Printf.sprintf "%.3f" (1e3 *. h.Metrics.max);
              (if busiest > 0.0 then
                 Printf.sprintf "%.0f%%" (100.0 *. h.Metrics.sum /. busiest)
               else "-") ])
        spans;
      Buffer.add_string buf (T.render tbl)
    end;
    let rest = Metrics.render s.metrics in
    if rest <> "" then begin
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf rest
    end;
    Buffer.contents buf
