(** Minimal JSON parser, used to validate emitted trace documents.

    Implements RFC 8259 structure (objects, arrays, strings with escape
    sequences, numbers, [true]/[false]/[null]) with no external
    dependency. Built for validation — [make trace-smoke] and the
    well-formedness tests — not for speed; duplicate object keys are
    accepted and kept in order. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** The whole input must be one JSON value (plus whitespace); the error
    string carries the byte offset of the failure. *)

val parse_file : string -> (t, string) result

val member : string -> t -> t option
(** Object field lookup; [None] on a non-object or a missing key. *)
