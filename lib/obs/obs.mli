(** The observability sink threaded through the generation pipeline.

    A sink is either {!null} — every operation is a no-op behind a single
    enabled check, so instrumented hot paths cost one branch and stay
    bit-identical — or an enabled sink that aggregates {!Metrics} and,
    optionally, buffers a Chrome {!Trace}.

    Instrumented functions take [?obs:Obs.t] defaulting to {!null};
    callers that want visibility pass a sink created here and render it
    afterwards ({!summary}, {!write_trace}). Sinks are safe to share
    across the worker domains of a {!Bist_parallel.Pool}: span events
    record the recording domain's id as the trace [tid], which is how
    parallel shard utilisation becomes visible in the viewer. *)

type t

val null : t
(** The disabled sink: spans run their body directly, metrics calls do
    nothing, no memory is retained. *)

val create : ?clock:(unit -> float) -> ?trace:bool -> unit -> t
(** An enabled sink. [clock] (default [Unix.gettimeofday]) returns
    seconds and exists so tests can inject a deterministic clock;
    [trace] (default [false]) additionally buffers Chrome trace events
    for {!trace_json}/{!write_trace}. *)

val enabled : t -> bool

val span :
  t ->
  ?cat:string ->
  ?args:(unit -> (string * string) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [span t name f] times [f ()], records the duration under [name]
    (per-name count/total/max feed {!summary} and {!span_seconds}) and,
    when tracing, appends a complete trace event tagged with the current
    domain id. [args] is evaluated {e after} [f] returns, only on an
    enabled sink — so it can report results computed by the span body,
    and costs nothing when observability is off. If [f] raises, the span
    is recorded with an ["error"] arg and the exception is re-raised. *)

val count : t -> ?by:int -> string -> unit
val gauge : t -> string -> float -> unit
val observe : t -> string -> float -> unit
(** Metric forwarders; no-ops on {!null}. *)

val metrics : t -> Metrics.t option
(** The sink's metric registry; [None] for {!null}. *)

val span_seconds : t -> (string * float) list
(** Cumulative seconds per span name, sorted by name — the per-phase
    numbers appended to the bench trajectory records. Empty for {!null}. *)

val trace_events : t -> int
(** Number of buffered trace events (0 without tracing). *)

val trace_json : t -> string
(** The Chrome trace document; a valid empty trace for non-tracing
    sinks. *)

val write_trace : t -> string -> unit

val summary : t -> string
(** The per-phase summary: one row per span name (calls, total seconds,
    mean/max milliseconds, share of the busiest phase), then any
    counters, gauges and histograms recorded beside the spans. Empty for
    {!null}. *)
