(** The bounded admission queue: backpressure with typed refusals.

    The daemon admits at most [capacity] queued jobs, and at most
    [per_tenant] of them from any single tenant — one chatty tenant
    cannot occupy the whole queue and starve the rest. An offer that
    would exceed either bound is refused with a typed {!reason} that the
    server turns into a {!Protocol.Rejected} reply: the client learns
    {e immediately} why its job was not admitted, instead of a hang, a
    timeout, or a silent drop.

    Jobs that were already admitted and lost their worker re-enter
    through {!readmit}, which bypasses both bounds and queues at the
    front: a migrated job must not be refused by pressure that arrived
    after it, nor wait behind it. *)

type reason = Queue_full | Tenant_quota

type 'a t

val create : ?per_tenant:int -> capacity:int -> unit -> 'a t
(** [per_tenant] defaults to [capacity] (no per-tenant bound). Raises
    [Invalid_argument] if either bound is < 1. *)

val capacity : 'a t -> int
val length : 'a t -> int
val tenant_depth : 'a t -> string -> int

val offer : 'a t -> tenant:string -> 'a -> (unit, reason) result
(** Admit at the back, or refuse with the bound that would break
    ([Queue_full] wins when both would). *)

val readmit : 'a t -> tenant:string -> 'a -> unit
(** Re-queue a previously admitted job at the front, ignoring bounds. *)

val take : 'a t -> (string * 'a) option
(** Pop the front (tenant, job); [None] when empty. *)

val remove : 'a t -> ('a -> bool) -> unit
(** Drop every queued job matching the predicate (used when a job's
    deadline expires before it was ever dispatched). *)
