(** Job execution inside a [bistd] worker.

    A runner turns a {!Protocol.job_spec} into its canonical output
    text, checkpointing periodically so the job survives its worker: the
    run is cut into legs of [interval] seconds (a
    {!Bist_resilience.Deadline} per leg), and every leg boundary
    atomically persists the phase snapshot to the job's checkpoint file.
    A worker that is SIGKILLed mid-leg therefore loses at most one leg
    of work; whichever worker picks the job up next resumes from the
    file and — by the PR 5 round-boundary invariant — produces output
    bit-identical to an uninterrupted run.

    The output is a pure function of the spec: [tgen] output equals the
    file written by [bistgen tgen -o], [faultsim] output is the coverage
    summary line, [inject] output is the campaign summary table. That
    purity is what makes migration testable byte-for-byte. *)

exception Bad_job of string
(** The spec can never run: unknown circuit, malformed vectors, invalid
    parameters, an inline payload that does not parse. Deterministic —
    retrying is pointless, so the daemon fails the job permanently
    instead of burning its retry budget.

    Circuit resolution follows the {!Protocol.circuit_ref}: [Named]
    resolves registry / teaching / workload names without touching the
    filesystem; [Inline] parses the submitted netlist text. Payload
    parsing happens {e only} here — in the forked worker, inside its
    {!Sandbox} rlimits — never in the server process. A payload job's
    checkpoint fingerprint is the CRC of the raw submitted bytes (a
    named job keeps the canonical-bench CRC, staying interchangeable
    with CLI [--checkpoint] files), so a migrated payload job resumes
    bit-identically from whichever worker picks it up. *)

type outcome =
  | Finished of string  (** The job's canonical output text. *)
  | Preempted
      (** The cancel token fired (worker drain); the checkpoint file
          holds the latest snapshot for whoever resumes the job. *)

val run_job :
  ?obs:Bist_obs.Obs.t ->
  checkpoint:string ->
  interval:float ->
  cancel:Bist_resilience.Cancel.t ->
  Protocol.job_spec ->
  outcome
(** Execute the spec with periodic checkpoints every [interval] seconds.
    If [checkpoint] already exists it is validated (kind, circuit,
    fingerprint, parameter echo) and resumed from; a corrupt or
    mismatched file is deleted and the job restarts from scratch —
    losing work, never correctness. [faultsim] keeps no resumable state
    (a migrated simulation recomputes, deterministically). Raises
    {!Bad_job} on an unrunnable spec. *)

val run_once : ?obs:Bist_obs.Obs.t -> Protocol.job_spec -> string
(** The uninterrupted oracle: same output, no checkpointing, no
    preemption. The daemon smoke gate compares migrated jobs against
    this. Raises {!Bad_job}. *)
