type policy = {
  initial : float;
  multiplier : float;
  max_delay : float;
  budget : int;
}

let default = { initial = 0.05; multiplier = 2.0; max_delay = 2.0; budget = 3 }

let validate p =
  if not (Float.is_finite p.initial && p.initial > 0.0) then
    Result.Error (Printf.sprintf "backoff initial delay %g must be positive" p.initial)
  else if not (Float.is_finite p.multiplier && p.multiplier >= 1.0) then
    Result.Error (Printf.sprintf "backoff multiplier %g must be >= 1" p.multiplier)
  else if not (Float.is_finite p.max_delay && p.max_delay >= p.initial) then
    Result.Error
      (Printf.sprintf "backoff max delay %g must be >= the initial %g" p.max_delay
         p.initial)
  else if p.budget < 0 then
    Result.Error (Printf.sprintf "retry budget %d must be >= 0" p.budget)
  else Result.Ok p

let delay p ~attempt =
  if attempt < 1 then
    invalid_arg (Printf.sprintf "Backoff.delay: attempt %d < 1" attempt);
  if attempt > p.budget then None
  else begin
    (* Iterated multiplication with an early cap: float powers of a
       large attempt count must not overflow to infinity. *)
    let d = ref p.initial in
    let i = ref 1 in
    while !i < attempt && !d < p.max_delay do
      d := !d *. p.multiplier;
      incr i
    done;
    Some (Float.min !d p.max_delay)
  end
