(** Retry policy for crashed workers: exponential backoff under a hard
    retry budget.

    A job whose worker dies is not retried immediately — a job that
    crashes its worker deterministically (or a host under memory
    pressure killing everything it runs) would otherwise hot-loop
    through the worker slots and starve well-behaved jobs. Each retry
    waits [initial * multiplier^(attempt-1)] seconds, capped at
    [max_delay]; after [budget] failed attempts the job fails for good
    with a typed reason. Delays are deterministic — the daemon's tests
    drive them with a fake clock. *)

type policy = {
  initial : float;  (** Delay before the first retry, seconds. *)
  multiplier : float;  (** Growth factor per further failure. *)
  max_delay : float;  (** Delay ceiling, seconds. *)
  budget : int;  (** Max retries; the job runs at most [budget + 1] times. *)
}

val default : policy
(** 50 ms initial, doubling, 2 s cap, 3 retries. *)

val validate : policy -> (policy, string) result
(** Reject non-positive delays, a multiplier below 1, a negative
    budget. *)

val delay : policy -> attempt:int -> float option
(** [delay p ~attempt] is the wait before retry number [attempt]
    (1-based: [attempt] failures have happened), or [None] when the
    budget is exhausted. Raises [Invalid_argument] on [attempt < 1]. *)
