module Io = Bist_resilience.Checkpoint.Io
module Checkpoint = Bist_resilience.Checkpoint
module Cancel = Bist_resilience.Cancel
module Obs = Bist_obs.Obs

type config = {
  host : string;
  port : int;
  max_workers : int;
  queue_capacity : int;
  per_tenant : int option;
  checkpoint_interval : float;
  term_grace : float;
  backoff : Backoff.policy;
  spool : string;
  sandbox : Sandbox.limits;
  poison_threshold : int;
  verbose : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    max_workers = 2;
    queue_capacity = 16;
    per_tenant = None;
    checkpoint_interval = 0.25;
    term_grace = 5.0;
    backoff = Backoff.default;
    spool = "_build/bistd-spool";
    sandbox = Sandbox.default;
    (* Three crashes on three distinct workers: one below the default
       retry budget, so a poison job is caught by the quarantine gate —
       with its typed reply and operator release path — rather than
       bleeding into a generic budget-exhausted failure. *)
    poison_threshold = 3;
    verbose = false;
  }

(* ------------------------------------------------------------------ *)
(* Job and client bookkeeping                                          *)

type job_state =
  | Queued
  | Running of { pid : int }
  | Waiting_retry of { ready_at : float }
  | Done of { output : string }
  | Failed of { reason : string }
  | Quarantined of { reason : string }

type job = {
  id : int;
  tenant : string;
  spec : Protocol.job_spec;
  submitted : float;
  deadline_at : float option;  (** Absolute epoch seconds. *)
  mutable state : job_state;
  mutable attempts : int;  (** Dispatches that did not finish. *)
  mutable migrations : int;  (** Re-dispatches that resumed a checkpoint. *)
  mutable crashes : int;  (** Crashes on distinct workers (poison gate). *)
  mutable crashed_pids : int list;  (** The distinct workers in question. *)
  mutable deadline_fired : bool;
  mutable waiters : Unix.file_descr list;
}

let state_name = function
  | Queued -> "queued"
  | Running _ -> "running"
  | Waiting_retry _ -> "waiting_retry"
  | Done _ -> "done"
  | Failed _ -> "failed"
  | Quarantined _ -> "quarantined"

type client = {
  fd : Unix.file_descr;
  decoder : Frame.Decoder.t;
  mutable pending : string list;  (** Outbound chunks, front first. *)
  mutable sent : int;  (** Bytes of the head chunk already written. *)
  mutable close_after_flush : bool;
  mutable gone : bool;
}

type worker = {
  pid : int;
  pipe_r : Unix.file_descr;  (** EOF when the worker exits, however. *)
  job_id : int;
  mutable term_at : float option;  (** When SIGTERM was sent, for grace. *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  obs : Obs.t;
  clients : (Unix.file_descr, client) Hashtbl.t;
  jobs : (int, job) Hashtbl.t;
  queue : int Admission.t;
  workers : (int, worker) Hashtbl.t;  (** Keyed by pid. *)
  drain : Cancel.t;
  mutable draining : bool;
  mutable next_id : int;
  mutable manifest_dirty : bool;
}

let log t fmt =
  if t.cfg.verbose then
    Printf.ksprintf (fun m -> Printf.eprintf "bistd: %s\n%!" m) fmt
  else Printf.ksprintf ignore fmt

let spool_path t id ext = Filename.concat t.cfg.spool (Printf.sprintf "job-%d.%s" id ext)
let ckpt_path t id = spool_path t id "ckpt"
let out_path t id = spool_path t id "out"
let err_path t id = spool_path t id "err"
let pid_path t id = spool_path t id "pid"

let remove_quietly path = try Sys.remove path with Sys_error _ -> ()

let read_file_opt path =
  try Some (Bist_resilience.Atomic_io.read_file ~path) with
  | Sys_error _ -> None

(* ------------------------------------------------------------------ *)
(* The crash-safe job manifest                                         *)
(*                                                                     *)
(* Every admission-state change rewrites spool/manifest atomically: the *)
(* set of unfinished jobs (queued, running, waiting for retry) in       *)
(* submission order, the quarantined jobs, and the id counter. A daemon *)
(* that dies — even SIGKILL — re-admits exactly the unfinished jobs on  *)
(* restart (their checkpoints let them resume rather than restart), and *)
(* quarantined jobs come back quarantined: a poison payload must not    *)
(* escape its cell by crashing the daemon around it.                    *)
(*                                                                      *)
(* Container version 2 (the fingerprint below): v1 manifests predate    *)
(* payload circuit refs and quarantine state, so a v2 daemon refuses    *)
(* them via the checkpoint Mismatch — logged as a version mismatch —    *)
(* and starts with an empty queue instead of misreading old bytes.      *)

let manifest_kind = "bistd"
let manifest_circuit = "queue"
let manifest_fingerprint = Bist_resilience.Crc32.string "bistd-manifest/2"
let manifest_path t = Filename.concat t.cfg.spool "manifest"

let pending_jobs t =
  Hashtbl.fold
    (fun _ j acc ->
      match j.state with
      | Queued | Running _ | Waiting_retry _ -> j :: acc
      | Done _ | Failed _ | Quarantined _ -> acc)
    t.jobs []
  |> List.sort (fun a b -> compare a.id b.id)

let quarantined_jobs t =
  Hashtbl.fold
    (fun _ j acc ->
      match j.state with Quarantined { reason } -> (j, reason) :: acc | _ -> acc)
    t.jobs []
  |> List.sort (fun (a, _) (b, _) -> compare a.id b.id)

let write_manifest t =
  let w = Io.writer () in
  Io.u32 w t.next_id;
  Io.list w
    (fun w j ->
      Io.u32 w j.id;
      Io.string w j.tenant;
      Protocol.encode_spec w j.spec;
      Io.u32 w j.attempts;
      Io.u32 w j.migrations;
      Io.u32 w j.crashes;
      Io.option w (fun w f -> Io.i64 w (Int64.bits_of_float f)) j.deadline_at)
    (pending_jobs t);
  Io.list w
    (fun w (j, reason) ->
      Io.u32 w j.id;
      Io.string w j.tenant;
      Protocol.encode_spec w j.spec;
      Io.u32 w j.attempts;
      Io.u32 w j.crashes;
      Io.string w reason)
    (quarantined_jobs t);
  Checkpoint.save ~path:(manifest_path t)
    { Checkpoint.kind = manifest_kind; circuit = manifest_circuit;
      fingerprint = manifest_fingerprint; payload = Io.contents w };
  t.manifest_dirty <- false

let load_manifest t =
  let path = manifest_path t in
  if Sys.file_exists path then
    match
      let header = Checkpoint.load path in
      Checkpoint.ensure ~kind:manifest_kind ~circuit:manifest_circuit
        ~fingerprint:manifest_fingerprint header;
      let r = Io.reader header.Checkpoint.payload in
      let next_id = Io.r_u32 r in
      let entries =
        Io.r_list r (fun r ->
            let id = Io.r_u32 r in
            let tenant = Io.r_string r in
            let spec = Protocol.decode_spec r in
            let attempts = Io.r_u32 r in
            let migrations = Io.r_u32 r in
            let crashes = Io.r_u32 r in
            let deadline_at =
              Io.r_option r (fun r -> Int64.float_of_bits (Io.r_i64 r))
            in
            (id, tenant, spec, attempts, migrations, crashes, deadline_at))
      in
      let quarantined =
        Io.r_list r (fun r ->
            let id = Io.r_u32 r in
            let tenant = Io.r_string r in
            let spec = Protocol.decode_spec r in
            let attempts = Io.r_u32 r in
            let crashes = Io.r_u32 r in
            let reason = Io.r_string r in
            (id, tenant, spec, attempts, crashes, reason))
      in
      Io.expect_end r;
      (next_id, entries, quarantined)
    with
    | next_id, entries, quarantined ->
      t.next_id <- max t.next_id next_id;
      (* readmit pushes to the front; walk backwards so the queue ends up
         in submission order. *)
      List.iter
        (fun (id, tenant, spec, attempts, migrations, crashes, deadline_at) ->
          let job =
            { id; tenant; spec; submitted = Unix.gettimeofday ();
              deadline_at; state = Queued; attempts; migrations; crashes;
              crashed_pids = []; deadline_fired = false; waiters = [] }
          in
          Hashtbl.replace t.jobs id job;
          Admission.readmit t.queue ~tenant id;
          log t "recovered job %d (%s/%s, %d attempt(s))" id tenant
            (Protocol.spec_name spec) attempts)
        (List.rev entries);
      List.iter
        (fun (id, tenant, spec, attempts, crashes, reason) ->
          let job =
            { id; tenant; spec; submitted = Unix.gettimeofday ();
              deadline_at = None; state = Quarantined { reason };
              attempts; migrations = 0; crashes; crashed_pids = [];
              deadline_fired = false; waiters = [] }
          in
          Hashtbl.replace t.jobs id job;
          log t "recovered quarantined job %d (%s/%s): %s" id tenant
            (Protocol.spec_name spec) reason)
        quarantined
    | exception Checkpoint.Mismatch _ ->
      (* An older daemon's spool: refuse it loudly but distinctly — this
         is a version boundary, not damage. *)
      log t "manifest %s is from an incompatible daemon version; starting \
             with an empty queue" path;
      remove_quietly path
    | exception (Checkpoint.Corrupt _ | Frame.Protocol_error _) ->
      (* A damaged manifest means a fresh queue, not a dead daemon. *)
      log t "manifest %s is damaged; starting with an empty queue" path;
      remove_quietly path

(* ------------------------------------------------------------------ *)
(* Client IO (non-blocking, buffered)                                  *)

let client_metrics_tenant = "_protocol"

let drop_client t c =
  if not c.gone then begin
    c.gone <- true;
    Hashtbl.remove t.clients c.fd;
    Hashtbl.iter
      (fun _ j -> j.waiters <- List.filter (fun fd -> fd <> c.fd) j.waiters)
      t.jobs;
    (try Unix.close c.fd with Unix.Unix_error _ -> ())
  end

let rec flush_client t c =
  match c.pending with
  | [] -> if c.close_after_flush then drop_client t c
  | s :: rest -> (
    let len = String.length s - c.sent in
    match Unix.write_substring c.fd s c.sent len with
    | n when n = len ->
      c.pending <- rest;
      c.sent <- 0;
      flush_client t c
    | n -> c.sent <- c.sent + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      drop_client t c)

let send t c resp =
  if not c.gone then begin
    c.pending <- c.pending @ [ Frame.encode (Protocol.encode_response resp) ];
    flush_client t c
  end

(* ------------------------------------------------------------------ *)
(* Supervision: spawn, reap, retry, migrate                            *)

let job_metric t name job = Obs.count t.obs (name ^ "." ^ job.tenant)

let notify_waiters t job resp =
  List.iter
    (fun fd ->
      match Hashtbl.find_opt t.clients fd with
      | Some c -> send t c resp
      | None -> ())
    job.waiters;
  job.waiters <- []

let finish_job t job output =
  job.state <- Done { output };
  job_metric t "completed" job;
  Obs.observe t.obs ("latency_s." ^ job.tenant)
    (Unix.gettimeofday () -. job.submitted);
  notify_waiters t job (Protocol.Result { id = job.id; output });
  remove_quietly (ckpt_path t job.id);
  remove_quietly (err_path t job.id);
  t.manifest_dirty <- true;
  log t "job %d done (%s/%s)" job.id job.tenant (Protocol.spec_name job.spec)

let fail_job t job reason =
  job.state <- Failed { reason };
  job_metric t "failed" job;
  notify_waiters t job (Protocol.Failed { id = job.id; reason });
  remove_quietly (ckpt_path t job.id);
  t.manifest_dirty <- true;
  log t "job %d failed: %s" job.id reason

(* Fork one worker for a job. The child shares no descriptors with the
   event loop except the write end of its supervision pipe: EOF on the
   read end is the exit notification that cannot be missed, masked or
   delayed — it fires for a clean exit and for SIGKILL alike. *)
let spawn_worker t job =
  let migrated = Sys.file_exists (ckpt_path t job.id) in
  let pipe_r, pipe_w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (* Worker child: drop every inherited daemon descriptor, run the
       job, exit through _exit so no parent at_exit/buffer replays. *)
    (try Unix.close pipe_r with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) t.clients;
    Hashtbl.iter
      (fun _ w -> try Unix.close w.pipe_r with Unix.Unix_error _ -> ())
      t.workers;
    let cancel = Cancel.create () in
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> Cancel.request cancel));
    Sys.set_signal Sys.sigint Sys.Signal_ignore;
    (* Exit codes are the one channel the parent trusts, so nothing may
       escape with an accidental code (an uncaught OCaml exception exits
       2, which would masquerade as Bad_job). write_err is best-effort:
       losing the detail must not lose the verdict. *)
    let write_err msg =
      try Bist_resilience.Atomic_io.write_file ~path:(err_path t job.id) msg
      with _ -> ()
    in
    let code =
      try
        (* The rlimit cage goes up before a byte of the (possibly
           hostile) payload is parsed. The daemon process itself never
           runs under these limits — only this child. *)
        Sandbox.apply t.cfg.sandbox;
        match
          Runner.run_job ~checkpoint:(ckpt_path t job.id)
            ~interval:t.cfg.checkpoint_interval ~cancel job.spec
        with
        | Runner.Finished output -> (
          try
            Bist_resilience.Atomic_io.write_file ~path:(out_path t job.id)
              output;
            0
          with e ->
            write_err (Printexc.to_string e);
            1)
        | Runner.Preempted -> 3
        | exception Runner.Bad_job msg ->
          write_err msg;
          2
        | exception e ->
          write_err (Printexc.to_string e);
          1
      with e ->
        write_err (Printexc.to_string e);
        1
    in
    Unix._exit code
  | pid ->
    Unix.close pipe_w;
    job.state <- Running { pid };
    if migrated then begin
      job.migrations <- job.migrations + 1;
      job_metric t "migrations" job
    end;
    (* The pid file is the chaos harness's handle for killing a specific
       job's worker mid-run. *)
    Bist_resilience.Atomic_io.write_file ~path:(pid_path t job.id)
      (string_of_int pid);
    Hashtbl.replace t.workers pid { pid; pipe_r; job_id = job.id; term_at = None };
    t.manifest_dirty <- true;
    log t "job %d %s on worker %d%s" job.id
      (if migrated then "resumed" else "started")
      pid
      (if migrated then Printf.sprintf " (migration #%d)" job.migrations else "")

let dispatch t =
  let continue = ref true in
  while
    !continue && (not t.draining)
    && Hashtbl.length t.workers < t.cfg.max_workers
  do
    match Admission.take t.queue with
    | None -> continue := false
    | Some (_tenant, id) -> (
      match Hashtbl.find_opt t.jobs id with
      | Some job when job.state = Queued -> spawn_worker t job
      | _ -> () (* failed-while-queued (deadline); skip the stale entry *))
  done;
  Obs.gauge t.obs "queue_depth" (float_of_int (Admission.length t.queue));
  Obs.gauge t.obs "workers_busy" (float_of_int (Hashtbl.length t.workers))

let retry_or_fail t job ~why =
  job.attempts <- job.attempts + 1;
  job_metric t "retries" job;
  match Backoff.delay t.cfg.backoff ~attempt:job.attempts with
  | Some d ->
    job.state <- Waiting_retry { ready_at = Unix.gettimeofday () +. d };
    t.manifest_dirty <- true;
    log t "job %d worker died (%s); retry %d/%d in %.3fs" job.id why
      job.attempts t.cfg.backoff.Backoff.budget d
  | None ->
    fail_job t job
      (Printf.sprintf "worker failed %d time(s), retry budget exhausted (last: %s)"
         job.attempts why)

let quarantine_job t job ~why =
  let reason =
    Printf.sprintf "crashed %d distinct worker(s) (last: %s)" job.crashes why
  in
  job.state <- Quarantined { reason };
  job_metric t "quarantined" job;
  notify_waiters t job (Protocol.Quarantined { id = job.id; reason });
  (* The checkpoint stays: if an operator releases the job (a daemon bug
     was fixed, the limit was raised), it resumes rather than restarts.
     Only the quarantine verdict is permanent-until-released. *)
  t.manifest_dirty <- true;
  log t "job %d quarantined: %s" job.id reason

(* A worker crash — as opposed to a typed Bad_job or a drain park — may
   be the payload's doing or the machine's. The poison gate tells them
   apart by demanding the same job take down [poison_threshold] distinct
   workers: a flaky host or an unlucky OOM kills assorted pids across
   assorted jobs, while a poison payload deterministically kills every
   worker that touches it. *)
let crash t job ~pid ~why =
  if not (List.mem pid job.crashed_pids) then begin
    job.crashed_pids <- pid :: job.crashed_pids;
    job.crashes <- job.crashes + 1
  end;
  job_metric t "crashes" job;
  if job.crashes >= t.cfg.poison_threshold then quarantine_job t job ~why
  else retry_or_fail t job ~why

let reap_worker t w status =
  Hashtbl.remove t.workers w.pid;
  (try Unix.close w.pipe_r with Unix.Unix_error _ -> ());
  match Hashtbl.find_opt t.jobs w.job_id with
  | None -> ()
  | Some job ->
    remove_quietly (pid_path t job.id);
    (match status with
    | Unix.WEXITED 0 -> (
      match read_file_opt (out_path t job.id) with
      | Some output -> finish_job t job output
      | None -> crash t job ~pid:w.pid ~why:"exit 0 but no result file")
    | Unix.WEXITED 2 ->
      let detail =
        Option.value (read_file_opt (err_path t job.id)) ~default:"bad job"
      in
      fail_job t job detail
    | Unix.WEXITED 3 ->
      if t.draining then begin
        (* Drain: the worker checkpointed and parked the job; it goes
           back to the queue so the manifest re-admits it on restart. *)
        job.state <- Queued;
        Admission.readmit t.queue ~tenant:job.tenant job.id;
        t.manifest_dirty <- true;
        log t "job %d parked (drain), checkpoint on disk" job.id
      end
      else if job.deadline_fired then
        fail_job t job "deadline exceeded"
      else retry_or_fail t job ~why:"preempted outside drain"
    | Unix.WEXITED code ->
      crash t job ~pid:w.pid ~why:(Printf.sprintf "exit %d" code)
    | Unix.WSIGNALED sg ->
      let name =
        if sg = Sys.sigkill then "SIGKILL"
        else if sg = Sys.sigterm then "SIGTERM"
        else if sg = Sys.sigsegv then "SIGSEGV"
        else if sg = Sys.sigxcpu then "SIGXCPU (cpu rlimit)"
        else if sg = Sys.sigxfsz then "SIGXFSZ (file-size rlimit)"
        else Printf.sprintf "signal %d" sg
      in
      if job.deadline_fired && sg = Sys.sigkill then
        fail_job t job "deadline exceeded"
      else crash t job ~pid:w.pid ~why:("killed by " ^ name)
    | Unix.WSTOPPED _ -> () (* not requested; never delivered by waitpid *))

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

let submit t c ~tenant ~deadline spec =
  if t.draining then
    send t c
      (Protocol.Rejected
         { reason = Protocol.Draining; message = "daemon is shutting down" })
  else
    match Admission.offer t.queue ~tenant t.next_id with
    | Result.Error why ->
      let reason, message =
        match why with
        | Admission.Queue_full ->
          ( Protocol.Queue_full,
            Printf.sprintf "admission queue is full (%d job(s) queued)"
              (Admission.length t.queue) )
        | Admission.Tenant_quota ->
          ( Protocol.Tenant_quota,
            Printf.sprintf "tenant %S already holds %d queued job(s)" tenant
              (Admission.tenant_depth t.queue tenant) )
      in
      Obs.count t.obs ("rejected." ^ tenant);
      log t "rejected %s/%s: %s" tenant (Protocol.spec_name spec) message;
      send t c (Protocol.Rejected { reason; message })
    | Result.Ok () ->
      let id = t.next_id in
      t.next_id <- id + 1;
      let now = Unix.gettimeofday () in
      let job =
        { id; tenant; spec; submitted = now;
          deadline_at = Option.map (fun d -> now +. d) deadline;
          state = Queued; attempts = 0; migrations = 0; crashes = 0;
          crashed_pids = []; deadline_fired = false; waiters = [] }
      in
      Hashtbl.replace t.jobs id job;
      Obs.count t.obs ("admitted." ^ tenant);
      t.manifest_dirty <- true;
      log t "admitted job %d (%s/%s on %s%s)" id tenant
        (Protocol.spec_name spec)
        (Protocol.spec_circuit spec)
        (if Protocol.spec_is_payload spec then " [payload]" else "");
      send t c (Protocol.Accepted { id })

let handle_request t c req =
  match req with
  | Protocol.Ping { version } ->
    if version = Protocol.version then send t c Protocol.Pong
    else begin
      Obs.count t.obs ("version_mismatch." ^ client_metrics_tenant);
      log t "ping from protocol v%d client (this daemon speaks v%d)" version
        Protocol.version;
      send t c
        (Protocol.Unsupported_version
           { server = Protocol.version; client = version })
    end
  | Protocol.Stats -> send t c (Protocol.Stats_report (Obs.summary t.obs))
  | Protocol.Submit { tenant; deadline; spec } -> submit t c ~tenant ~deadline spec
  | Protocol.Status { id } -> (
    match Hashtbl.find_opt t.jobs id with
    | None ->
      send t c (Protocol.Error { message = Printf.sprintf "unknown job id %d" id })
    | Some job ->
      send t c
        (Protocol.Job_status
           { id; state = state_name job.state; attempts = job.attempts }))
  | Protocol.Wait { id } -> (
    match Hashtbl.find_opt t.jobs id with
    | None ->
      send t c (Protocol.Error { message = Printf.sprintf "unknown job id %d" id })
    | Some job -> (
      match job.state with
      | Done { output } -> send t c (Protocol.Result { id; output })
      | Failed { reason } -> send t c (Protocol.Failed { id; reason })
      | Quarantined { reason } -> send t c (Protocol.Quarantined { id; reason })
      | Queued | Running _ | Waiting_retry _ ->
        job.waiters <- c.fd :: job.waiters))
  | Protocol.Quarantine_list ->
    let entries =
      List.map
        (fun (j, reason) ->
          { Protocol.id = j.id; tenant = j.tenant;
            job = Protocol.spec_name j.spec;
            circuit = Protocol.spec_circuit j.spec; crashes = j.crashes;
            reason })
        (quarantined_jobs t)
    in
    send t c (Protocol.Quarantine_report entries)
  | Protocol.Quarantine_release { id } -> (
    match Hashtbl.find_opt t.jobs id with
    | Some ({ state = Quarantined _; _ } as job) ->
      (* Fresh crash budget, front of the queue (readmit bypasses the
         admission bounds — the job already paid for its slot once). *)
      job.crashes <- 0;
      job.crashed_pids <- [];
      job.attempts <- 0;
      job.state <- Queued;
      Admission.readmit t.queue ~tenant:job.tenant job.id;
      t.manifest_dirty <- true;
      job_metric t "released" job;
      log t "job %d released from quarantine" id;
      send t c (Protocol.Accepted { id })
    | Some job ->
      send t c
        (Protocol.Error
           { message =
               Printf.sprintf "job %d is %s, not quarantined" id
                 (state_name job.state) })
    | None ->
      send t c (Protocol.Error { message = Printf.sprintf "unknown job id %d" id }))
  | Protocol.Shutdown ->
    send t c Protocol.Shutting_down;
    Cancel.request t.drain

(* A protocol violation is that client's problem only: best-effort typed
   reply, close after flush, serve everyone else untouched. *)
let protocol_error t c msg =
  Obs.count t.obs ("protocol_errors." ^ client_metrics_tenant);
  log t "protocol error: %s" msg;
  send t c (Protocol.Error { message = msg });
  c.close_after_flush <- true;
  if c.pending = [] then drop_client t c

let client_readable t c =
  let buf = Bytes.create 4096 in
  let continue = ref true in
  while !continue && not c.gone do
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 ->
      continue := false;
      (match Frame.Decoder.finish c.decoder with
      | () -> ()
      | exception Frame.Protocol_error _ ->
        Obs.count t.obs ("protocol_errors." ^ client_metrics_tenant);
        log t "client closed mid-frame");
      drop_client t c
    | n -> (
      match
        Frame.Decoder.feed c.decoder (Bytes.sub_string buf 0 n);
        let rec drain_frames () =
          if not c.gone && not c.close_after_flush then
            match Frame.Decoder.next c.decoder with
            | None -> ()
            | Some payload ->
              handle_request t c (Protocol.decode_request payload);
              drain_frames ()
        in
        drain_frames ()
      with
      | () -> ()
      | exception Frame.Protocol_error msg ->
        continue := false;
        protocol_error t c msg)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      continue := false;
      drop_client t c
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* ------------------------------------------------------------------ *)
(* Timers: retries, deadlines, kill grace                              *)

let fire_timers t =
  let now = Unix.gettimeofday () in
  Hashtbl.iter
    (fun _ job ->
      (match job.state with
      | Waiting_retry { ready_at } when ready_at <= now ->
        job.state <- Queued;
        Admission.readmit t.queue ~tenant:job.tenant job.id;
        t.manifest_dirty <- true
      | _ -> ());
      match (job.deadline_at, job.state) with
      | Some at, Queued when at <= now ->
        Admission.remove t.queue (fun id -> id = job.id);
        fail_job t job "deadline exceeded before the job was dispatched"
      | Some at, Waiting_retry _ when at <= now ->
        fail_job t job "deadline exceeded"
      | Some at, Running { pid } when at <= now && not job.deadline_fired ->
        job.deadline_fired <- true;
        (match Hashtbl.find_opt t.workers pid with
        | Some w ->
          w.term_at <- Some now;
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          log t "job %d deadline fired; SIGTERM worker %d" job.id pid
        | None -> ())
      | _ -> ())
    t.jobs;
  (* A worker that ignored SIGTERM past the grace period is killed hard;
     its checkpoint (if any) still migrates the job. *)
  Hashtbl.iter
    (fun _ w ->
      match w.term_at with
      | Some at when now -. at > t.cfg.term_grace ->
        (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
        w.term_at <- Some infinity
      | _ -> ())
    t.workers

let next_timer_delay t =
  let now = Unix.gettimeofday () in
  let min_opt acc v = match acc with None -> Some v | Some a -> Some (Float.min a v) in
  let deadline_of job =
    match job.state with
    | Waiting_retry { ready_at } -> Some ready_at
    | Running _ | Queued -> job.deadline_at
    | Done _ | Failed _ | Quarantined _ -> None
  in
  let soonest =
    Hashtbl.fold
      (fun _ job acc ->
        match deadline_of job with None -> acc | Some at -> min_opt acc at)
      t.jobs None
  in
  let soonest =
    Hashtbl.fold
      (fun _ w acc ->
        match w.term_at with
        | Some at when at <> infinity -> min_opt acc (at +. t.cfg.term_grace)
        | _ -> acc)
      t.workers soonest
  in
  match soonest with
  | None -> 0.5
  | Some at -> Float.max 0.0 (Float.min 0.5 (at -. now))

(* ------------------------------------------------------------------ *)
(* Drain                                                               *)

let start_drain t =
  if not t.draining then begin
    t.draining <- true;
    log t "draining: %d worker(s), %d queued" (Hashtbl.length t.workers)
      (Admission.length t.queue);
    let now = Unix.gettimeofday () in
    Hashtbl.iter
      (fun _ w ->
        w.term_at <- Some now;
        try Unix.kill w.pid Sys.sigterm with Unix.Unix_error _ -> ())
      t.workers
  end

(* ------------------------------------------------------------------ *)
(* The event loop                                                      *)

let validate cfg =
  if cfg.max_workers < 1 then
    invalid_arg (Printf.sprintf "bistd: max_workers %d < 1" cfg.max_workers);
  if cfg.queue_capacity < 1 then
    invalid_arg (Printf.sprintf "bistd: queue_capacity %d < 1" cfg.queue_capacity);
  if not (Float.is_finite cfg.checkpoint_interval && cfg.checkpoint_interval > 0.0)
  then
    invalid_arg
      (Printf.sprintf "bistd: checkpoint_interval %g must be positive"
         cfg.checkpoint_interval);
  if not (Float.is_finite cfg.term_grace && cfg.term_grace > 0.0) then
    invalid_arg (Printf.sprintf "bistd: term_grace %g must be positive" cfg.term_grace);
  if cfg.poison_threshold < 1 then
    invalid_arg
      (Printf.sprintf "bistd: poison_threshold %d < 1" cfg.poison_threshold);
  (match Sandbox.validate cfg.sandbox with
  | Result.Ok _ -> ()
  | Result.Error msg -> invalid_arg ("bistd: " ^ msg));
  match Backoff.validate cfg.backoff with
  | Result.Ok _ -> ()
  | Result.Error msg -> invalid_arg ("bistd: " ^ msg)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let run ?on_ready cfg =
  validate cfg;
  mkdir_p cfg.spool;
  (* A dead client must cost a typed EPIPE, not a fatal SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> cfg.port
  in
  let t =
    {
      cfg;
      listen_fd;
      obs = Obs.create ();
      clients = Hashtbl.create 16;
      jobs = Hashtbl.create 64;
      queue = Admission.create ?per_tenant:cfg.per_tenant ~capacity:cfg.queue_capacity ();
      workers = Hashtbl.create 8;
      drain = Cancel.create ();
      draining = false;
      next_id = 1;
      manifest_dirty = true;
    }
  in
  load_manifest t;
  (* First signal: graceful drain. Second: force-quit, exit 130 —
     skipping at_exit so nothing can wedge the quit. *)
  let signals = ref 0 in
  let on_signal _ =
    incr signals;
    if !signals > 1 then Unix._exit 130 else Cancel.request t.drain
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  log t "worker sandbox: %s; poison threshold %d"
    (Sandbox.describe cfg.sandbox) cfg.poison_threshold;
  Printf.printf "bistd: listening on %s:%d\n%!" cfg.host port;
  Option.iter (fun f -> f ~port) on_ready;
  let finished = ref false in
  while not !finished do
    if Cancel.requested t.drain then start_drain t;
    fire_timers t;
    dispatch t;
    if t.manifest_dirty then write_manifest t;
    if t.draining && Hashtbl.length t.workers = 0 then finished := true
    else begin
      let reads =
        t.listen_fd
        :: Hashtbl.fold (fun fd _ acc -> fd :: acc) t.clients
             (Hashtbl.fold (fun _ w acc -> w.pipe_r :: acc) t.workers [])
      in
      let writes =
        Hashtbl.fold
          (fun fd c acc -> if c.pending <> [] then fd :: acc else acc)
          t.clients []
      in
      match Unix.select reads writes [] (next_timer_delay t) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, writable, _ ->
        List.iter
          (fun fd ->
            if fd = t.listen_fd then begin
              let accepting = ref true in
              while !accepting do
                match Unix.accept t.listen_fd with
                | cfd, _ ->
                  Unix.set_nonblock cfd;
                  Hashtbl.replace t.clients cfd
                    { fd = cfd; decoder = Frame.Decoder.create ();
                      pending = []; sent = 0; close_after_flush = false;
                      gone = false }
                | exception
                    Unix.Unix_error
                      ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                  accepting := false
              done
            end
            else
              match Hashtbl.find_opt t.clients fd with
              | Some c -> client_readable t c
              | None -> (
                (* Not a client: a worker pipe signalling exit. *)
                match
                  Hashtbl.fold
                    (fun _ w acc -> if w.pipe_r = fd then Some w else acc)
                    t.workers None
                with
                | Some w ->
                  let _, status = Unix.waitpid [] w.pid in
                  reap_worker t w status
                | None -> ()))
          readable;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt t.clients fd with
            | Some c ->
              flush_client t c;
              if c.close_after_flush && c.pending = [] then drop_client t c
            | None -> ())
          writable
    end
  done;
  write_manifest t;
  log t "drained; %d job(s) parked in %s" (List.length (pending_jobs t)) cfg.spool;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) t.clients;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())
