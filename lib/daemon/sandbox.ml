type resource = Address_space | Cpu_time | Open_files | File_size

let tag = function
  | Address_space -> 0
  | Cpu_time -> 1
  | Open_files -> 2
  | File_size -> 3

external getrlimit_stub : int -> int64 * int64 = "bistd_getrlimit"
external setrlimit_stub : int -> int64 -> int64 -> unit = "bistd_setrlimit"

let get r = getrlimit_stub (tag r)

let set r value =
  if value < 0L then ()
  else begin
    let _soft, hard = get r in
    (* Clamp to the inherited hard limit: lowering is always permitted,
       and asking for more than the jail already allows must not turn
       into an EPERM crash of the worker before its job even starts. *)
    let v = if hard < 0L then value else Int64.min value hard in
    setrlimit_stub (tag r) v v
  end

type limits = {
  address_space_mb : int option;
  cpu_seconds : int option;
  open_files : int option;
  file_size_mb : int option;
}

let none =
  { address_space_mb = None; cpu_seconds = None; open_files = None;
    file_size_mb = None }

let default =
  { address_space_mb = Some 2048; cpu_seconds = None; open_files = Some 256;
    file_size_mb = Some 1024 }

let validate l =
  let bad what v =
    Result.Error (Printf.sprintf "sandbox %s limit %d must be >= 1" what v)
  in
  match l with
  | { address_space_mb = Some v; _ } when v < 1 -> bad "address-space" v
  | { cpu_seconds = Some v; _ } when v < 1 -> bad "cpu" v
  | { open_files = Some v; _ } when v < 1 -> bad "open-files" v
  | { file_size_mb = Some v; _ } when v < 1 -> bad "file-size" v
  | l -> Result.Ok l

let mib = 1024 * 1024

let apply l =
  (match validate l with
  | Result.Ok _ -> ()
  | Result.Error msg -> invalid_arg ("Sandbox.apply: " ^ msg));
  let lim r = function
    | None -> ()
    | Some v -> set r (Int64.of_int v)
  in
  lim Address_space (Option.map (fun v -> v * mib) l.address_space_mb);
  lim Cpu_time l.cpu_seconds;
  lim Open_files l.open_files;
  lim File_size (Option.map (fun v -> v * mib) l.file_size_mb)

let describe l =
  let opt unit = function
    | None -> "unlimited"
    | Some v -> Printf.sprintf "%d%s" v unit
  in
  Printf.sprintf "as=%s cpu=%s nofile=%s fsize=%s"
    (opt "MiB" l.address_space_mb)
    (opt "s" l.cpu_seconds)
    (opt "" l.open_files)
    (opt "MiB" l.file_size_mb)
