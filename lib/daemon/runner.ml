module Checkpoint = Bist_resilience.Checkpoint
module Io = Checkpoint.Io
module Ctl = Bist_resilience.Ctl
module Cancel = Bist_resilience.Cancel
module Deadline = Bist_resilience.Deadline
module Campaign = Bist_inject.Campaign

exception Bad_job of string

type outcome = Finished of string | Preempted

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_job m)) fmt

(* A named job resolves known names only (registry, teaching,
   workloads — Loader.find_named, which never touches the filesystem). A
   job spec is data from the network, and letting it open arbitrary
   server-side file paths would be both a correctness hazard (client and
   server filesystems differ) and an information leak. A payload job
   parses the submitted bytes — and this function runs only in the
   forked worker, inside its Sandbox rlimits, never in the server
   process. *)
let resolve_circuit = function
  | Protocol.Named spec -> (
    match Bist_bench.Loader.find_named spec with
    | Some circuit -> circuit
    | None ->
      bad "unknown circuit %S (registry, teaching and workload names only)" spec)
  | Protocol.Inline { name; format; text } -> (
    if String.length text > Protocol.max_netlist_bytes then
      (* The protocol decoder already enforces this cap; keeping it here
         too means a worker handed bytes by any other path (a manifest
         edited on disk) still refuses deterministically. *)
      bad "netlist payload of %d bytes exceeds the %d-byte cap"
        (String.length text) Protocol.max_netlist_bytes;
    let fmt =
      match format with
      | Protocol.Bench -> Bist_bench.Loader.Bench
      | Protocol.Blif -> Bist_bench.Loader.Blif
    in
    match Bist_bench.Loader.parse_payload ~format:fmt ~name text with
    | circuit -> circuit
    | exception Bist_circuit.Bench_parser.Parse_error { line; message } ->
      bad "payload netlist %S line %d: %s" name line message
    | exception Bist_circuit.Blif_parser.Parse_error { line; message } ->
      bad "payload netlist %S line %d: %s" name line message)

(* A named job is fingerprinted by its canonical bench text, so daemon
   checkpoints stay interchangeable with CLI --checkpoint files. A
   payload job is fingerprinted by the raw payload bytes: the identity
   that migrates with the job is exactly the text the tenant submitted,
   and a migrated worker re-parsing the same bytes resumes
   bit-identically. *)
let fingerprint_of cref circuit =
  match cref with
  | Protocol.Named _ ->
    Bist_resilience.Crc32.string (Bist_circuit.Bench_writer.to_string circuit)
  | Protocol.Inline { text; _ } -> Bist_resilience.Crc32.string text

let remove_quietly path = try Sys.remove path with Sys_error _ -> ()

(* An existing checkpoint is an attempt to save work, never a
   prerequisite: anything wrong with it (damaged file, different
   circuit, different parameters) means "start from scratch", not "fail
   the job" — determinism makes the restart correct, just slower. *)
let load_checkpoint ~kind ~circuit ~fingerprint ~path decode =
  if not (Sys.file_exists path) then None
  else
    match
      let header = Checkpoint.load path in
      Checkpoint.ensure ~kind ~circuit ~fingerprint header;
      decode header.Checkpoint.payload
    with
    | state -> Some state
    | exception (Checkpoint.Corrupt _ | Checkpoint.Mismatch _) ->
      remove_quietly path;
      None

(* The leg loop shared by the resumable job kinds: run with a
   per-leg deadline, persist the snapshot at every preemption, stop only
   when the cancel token (worker drain / SIGTERM) fired. The deadline is
   progress-gated (Ctl), so every leg commits at least one step and the
   loop terminates for any interval. *)
let legs ~interval ~cancel ~save ~run resume0 =
  let rec go resume =
    let ctl = Ctl.create ~deadline:(Deadline.after interval) ~cancel () in
    match run ~ctl resume with
    | Result.Ok output -> Finished output
    | Result.Error snapshot ->
      save snapshot;
      if Cancel.requested cancel then Preempted else go (Some snapshot)
  in
  go resume0

(* tgen: the Bist_tgen.Run stage machine, same checkpoint payload as
   bistgen --checkpoint — a daemon job and a CLI run can even resume
   each other's files. *)

let run_tgen ~obs ~checkpoint ~interval ~cancel ~circuit:spec ~seed ~directed
    ~trials =
  let circuit = resolve_circuit spec in
  let name = Bist_circuit.Netlist.circuit_name circuit in
  let fingerprint = fingerprint_of spec circuit in
  let universe = Bist_fault.Universe.collapsed circuit in
  (* Daemon jobs keep the SAT tail off: the job protocol predates it
     and the defaults must stay bit-identical. *)
  let params =
    { Bist_tgen.Run.seed; directed; trials; sat_budget = 0; sat_frames = 8;
      sat_conflicts = Bist_sat.Satgen.default_conflicts }
  in
  let resume0 =
    load_checkpoint ~kind:"tgen" ~circuit:name ~fingerprint ~path:checkpoint
      (Bist_tgen.Run.decode_payload params)
  in
  let save stage =
    Checkpoint.save ~path:checkpoint
      { Checkpoint.kind = "tgen"; circuit = name; fingerprint;
        payload = Bist_tgen.Run.encode_payload params stage }
  in
  let run ~ctl resume =
    match Bist_tgen.Run.execute ~obs ~ctl ?resume params universe with
    | t0, _stats, _cstats ->
      remove_quietly checkpoint;
      Result.Ok (Bist_harness.Seq_io.to_string t0)
    | exception Bist_tgen.Run.Interrupted stage -> Result.Error stage
  in
  legs ~interval ~cancel ~save ~run resume0

(* inject: a single-circuit hardened campaign; the payload is the
   parameter echo plus the completed-trial list (Campaign's own codec). *)

let encode_inject_payload ~(config : Campaign.config) trials =
  let w = Io.writer () in
  Io.u32 w config.Campaign.seed;
  Io.u32 w config.Campaign.count;
  Io.u32 w config.Campaign.n;
  Campaign.encode_trials w trials;
  Io.contents w

let decode_inject_payload ~(config : Campaign.config) payload =
  let r = Io.reader payload in
  let echo what expected =
    let got = Io.r_u32 r in
    if got <> expected then
      raise
        (Checkpoint.Mismatch
           (Printf.sprintf "checkpoint was written with %s %d, this job uses %d"
              what got expected))
  in
  echo "seed" config.Campaign.seed;
  echo "count" config.Campaign.count;
  echo "n" config.Campaign.n;
  let trials = Campaign.decode_trials r in
  Io.expect_end r;
  trials

let run_inject ~obs ~checkpoint ~interval ~cancel ~circuit:spec ~seed ~count ~n =
  if count < 1 then bad "inject count %d must be >= 1" count;
  if n < 1 then bad "inject n %d must be >= 1" n;
  let circuit = resolve_circuit spec in
  let name = Bist_circuit.Netlist.circuit_name circuit in
  let fingerprint = fingerprint_of spec circuit in
  let config = { Campaign.default_config with seed; count; n } in
  let resume0 =
    load_checkpoint ~kind:"inject" ~circuit:name ~fingerprint ~path:checkpoint
      (decode_inject_payload ~config)
  in
  let save trials =
    Checkpoint.save ~path:checkpoint
      { Checkpoint.kind = "inject"; circuit = name; fingerprint;
        payload = encode_inject_payload ~config trials }
  in
  let run ~ctl resume =
    let resume = Option.value resume ~default:[] in
    match Campaign.run ~config ~obs ~ctl ~resume ~name circuit with
    | campaign ->
      remove_quietly checkpoint;
      Result.Ok (Bist_harness.Inject_report.summary [ campaign ])
    | exception Campaign.Interrupted trials -> Result.Error trials
  in
  legs ~interval ~cancel ~save ~run resume0

(* faultsim: deterministic and comparatively cheap; it keeps no
   resumable state, so a migrated simulation simply recomputes. Only the
   cancel token is polled — an interval deadline would preempt work we
   cannot resume. *)

let faultsim_output ~obs ~ctl ~circuit:spec ~vectors =
  let circuit = resolve_circuit spec in
  let universe = Bist_fault.Universe.collapsed circuit in
  let seq =
    try Bist_harness.Seq_io.parse vectors
    with Bist_harness.Seq_io.Parse_error { line; message } ->
      bad "vectors line %d: %s" line message
  in
  let tbl = Bist_fault.Fault_table.compute ~obs ?ctl universe seq in
  Printf.sprintf "detected %d / %d faults (coverage %.2f%%)\n"
    (Bist_fault.Fault_table.num_detected tbl)
    (Bist_fault.Universe.size universe)
    (100.0 *. Bist_fault.Fault_table.coverage tbl)

let run_job ?(obs = Bist_obs.Obs.null) ~checkpoint ~interval ~cancel spec =
  match spec with
  | Protocol.Tgen { circuit; seed; directed; trials } ->
    run_tgen ~obs ~checkpoint ~interval ~cancel ~circuit ~seed ~directed ~trials
  | Protocol.Inject { circuit; seed; count; n } ->
    run_inject ~obs ~checkpoint ~interval ~cancel ~circuit ~seed ~count ~n
  | Protocol.Faultsim { circuit; vectors } -> (
    let ctl = Ctl.create ~cancel () in
    try Finished (faultsim_output ~obs ~ctl:(Some ctl) ~circuit ~vectors)
    with Ctl.Preempted _ -> Preempted)

let run_once ?(obs = Bist_obs.Obs.null) spec =
  match spec with
  | Protocol.Tgen { circuit; seed; directed; trials } ->
    let circuit = resolve_circuit circuit in
    let universe = Bist_fault.Universe.collapsed circuit in
    (* Daemon jobs keep the SAT tail off: the job protocol predates it
     and the defaults must stay bit-identical. *)
  let params =
    { Bist_tgen.Run.seed; directed; trials; sat_budget = 0; sat_frames = 8;
      sat_conflicts = Bist_sat.Satgen.default_conflicts }
  in
    let t0, _, _ = Bist_tgen.Run.execute ~obs params universe in
    Bist_harness.Seq_io.to_string t0
  | Protocol.Inject { circuit; seed; count; n } ->
    if count < 1 then bad "inject count %d must be >= 1" count;
    if n < 1 then bad "inject n %d must be >= 1" n;
    let circuit = resolve_circuit circuit in
    let name = Bist_circuit.Netlist.circuit_name circuit in
    let config = { Campaign.default_config with seed; count; n } in
    Bist_harness.Inject_report.summary [ Campaign.run ~config ~obs ~name circuit ]
  | Protocol.Faultsim { circuit; vectors } ->
    faultsim_output ~obs ~ctl:None ~circuit ~vectors
