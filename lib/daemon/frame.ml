exception Protocol_error of string

let () =
  Printexc.register_printer (function
    | Protocol_error msg -> Some (Printf.sprintf "protocol error: %s" msg)
    | _ -> None)

let max_payload = 16 * 1024 * 1024

let bad fmt = Printf.ksprintf (fun msg -> raise (Protocol_error msg)) fmt

let encode payload =
  let n = String.length payload in
  if n > max_payload then
    bad "frame payload of %d bytes exceeds the %d-byte limit" n max_payload;
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

(* The length prefix is an unsigned 32-bit value; read it without sign
   surprises on any platform. *)
let length_of_prefix s pos =
  let v = Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF in
  if v > max_payload then
    bad "frame length prefix %d exceeds the %d-byte limit" v max_payload;
  v

module Decoder = struct
  type t = { buf : Buffer.t; mutable pos : int }

  let create () = { buf = Buffer.create 256; pos = 0 }
  let buffered t = Buffer.length t.buf - t.pos

  (* Drop consumed bytes once they dominate the buffer, so a long-lived
     connection doesn't grow without bound. *)
  let compact t =
    if t.pos > 4096 && t.pos * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.pos (buffered t) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  let peek_length t =
    if buffered t < 4 then None
    else begin
      (* Byte-wise: [Buffer.contents] would copy the whole buffer on
         every feed, quadratic against a byte-at-a-time slow client. *)
      let byte i = Char.code (Buffer.nth t.buf (t.pos + i)) in
      let v = byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24) in
      if v > max_payload then
        bad "frame length prefix %d exceeds the %d-byte limit" v max_payload;
      Some v
    end

  let feed t s =
    Buffer.add_string t.buf s;
    (* Validate an already-visible prefix eagerly: an oversized frame is
       rejected when its header arrives, not after megabytes of payload
       have been buffered. *)
    ignore (peek_length t : int option)

  let next t =
    match peek_length t with
    | None -> None
    | Some len ->
      if buffered t < 4 + len then None
      else begin
        let payload = Buffer.sub t.buf (t.pos + 4) len in
        t.pos <- t.pos + 4 + len;
        compact t;
        Some payload
      end

  let finish t =
    if buffered t > 0 then
      bad "connection closed mid-frame (%d stray byte(s))" (buffered t)
end

(* Blocking IO: loop over short reads/writes; EINTR restarts. *)

let rec write_all fd b pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd b pos len with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (pos + n) (len - n)
  end

let write_frame fd payload =
  let s = encode payload in
  write_all fd (Bytes.of_string s) 0 (String.length s)

let read_exactly fd n ~at_start =
  let b = Bytes.create n in
  let got = ref 0 in
  (try
     while !got < n do
       match Unix.read fd b !got (n - !got) with
       | 0 ->
         if !got = 0 && at_start then raise Exit
         else bad "connection closed mid-frame (wanted %d more byte(s))" (n - !got)
       | k -> got := !got + k
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     done
   with Exit -> ());
  if !got = 0 && at_start && n > 0 then None else Some (Bytes.to_string b)

let read_frame fd =
  match read_exactly fd 4 ~at_start:true with
  | None -> None
  | Some prefix ->
    let len = length_of_prefix prefix 0 in
    if len = 0 then Some ""
    else
      (match read_exactly fd len ~at_start:false with
      | Some payload -> Some payload
      | None -> assert false)
