/* setrlimit/getrlimit bindings for the bistd worker sandbox.
 *
 * The OCaml Unix library exposes neither call, and the daemon needs
 * them in the forked worker child: a job parsing attacker-controlled
 * netlist text must be able to blow up only itself.  Resources are
 * identified by a small tag matching Sandbox.resource; limits travel
 * as int64 with -1 encoding RLIM_INFINITY. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>

#include <sys/resource.h>
#include <errno.h>
#include <string.h>

static int resource_of_tag(int tag)
{
  switch (tag) {
  case 0: return RLIMIT_AS;
  case 1: return RLIMIT_CPU;
  case 2: return RLIMIT_NOFILE;
  case 3: return RLIMIT_FSIZE;
  default: return -1;
  }
}

static value limit_to_int64(rlim_t v)
{
  if (v == RLIM_INFINITY) return caml_copy_int64(-1);
  return caml_copy_int64((int64_t) v);
}

static rlim_t limit_of_int64(int64_t v)
{
  if (v < 0) return RLIM_INFINITY;
  return (rlim_t) v;
}

CAMLprim value bistd_getrlimit(value v_tag)
{
  CAMLparam1(v_tag);
  CAMLlocal3(pair, soft, hard);
  struct rlimit rl;
  int res = resource_of_tag(Int_val(v_tag));
  if (res < 0) caml_invalid_argument("Sandbox.get: unknown resource tag");
  if (getrlimit(res, &rl) != 0) caml_failwith(strerror(errno));
  soft = limit_to_int64(rl.rlim_cur);
  hard = limit_to_int64(rl.rlim_max);
  pair = caml_alloc_tuple(2);
  Store_field(pair, 0, soft);
  Store_field(pair, 1, hard);
  CAMLreturn(pair);
}

CAMLprim value bistd_setrlimit(value v_tag, value v_soft, value v_hard)
{
  CAMLparam3(v_tag, v_soft, v_hard);
  struct rlimit rl;
  int res = resource_of_tag(Int_val(v_tag));
  if (res < 0) caml_invalid_argument("Sandbox.set: unknown resource tag");
  rl.rlim_cur = limit_of_int64(Int64_val(v_soft));
  rl.rlim_max = limit_of_int64(Int64_val(v_hard));
  if (setrlimit(res, &rl) != 0) caml_failwith(strerror(errno));
  CAMLreturn(Val_unit);
}
