(** Worker-side resource jail for untrusted job payloads.

    A payload job ships attacker-controlled netlist bytes, and the
    daemon's defense in depth ends in the forked worker: the event loop
    never parses a payload, the worker does — after calling {!apply} so
    that a pathological SOP cover, a flattening blowup, or a plain
    parser bug exhausts {e its own} rlimits and dies, taking nothing but
    its job's current attempt with it. The supervisor sees an ordinary
    worker death (an [Out_of_memory] exit, a SIGXCPU kill) and the
    retry/quarantine machinery takes over.

    The four limits used (all [setrlimit], soft = hard, clamped to the
    inherited hard limit so {!apply} cannot fail with [EPERM]):

    - [RLIMIT_AS] — address space; new heap mappings beyond the cap
      fail, which OCaml surfaces as [Out_of_memory] (the minor-heap
      reservation made before the fork is unaffected).
    - [RLIMIT_CPU] — CPU seconds; exceeding it delivers SIGXCPU, whose
      default action kills the worker.
    - [RLIMIT_NOFILE] — new file descriptors beyond the cap fail.
    - [RLIMIT_FSIZE] — a runaway result/checkpoint write gets SIGXFSZ.

    Limits are applied {e after} [fork], in the child only: the daemon
    process itself is never constrained. *)

type resource =
  | Address_space  (** [RLIMIT_AS], bytes. *)
  | Cpu_time  (** [RLIMIT_CPU], seconds. *)
  | Open_files  (** [RLIMIT_NOFILE], descriptors. *)
  | File_size  (** [RLIMIT_FSIZE], bytes. *)

val get : resource -> int64 * int64
(** Current (soft, hard) limit; [-1L] means unlimited. Raises [Failure]
    only on an OS-level error. *)

val set : resource -> int64 -> unit
(** Set soft = hard = [min value hard] (so lowering always succeeds;
    raising past the inherited hard limit silently clamps instead of
    failing with [EPERM]). [-1L] means "leave unlimited". Raises
    [Failure] on an OS-level error. Irreversible for the calling
    process — only ever call this in a forked worker child (or a test
    child). *)

(** The per-worker policy, in operator-friendly units. [None] leaves
    that resource at the inherited limit. *)
type limits = {
  address_space_mb : int option;  (** [RLIMIT_AS], MiB. *)
  cpu_seconds : int option;  (** [RLIMIT_CPU], seconds. *)
  open_files : int option;  (** [RLIMIT_NOFILE], descriptors. *)
  file_size_mb : int option;  (** [RLIMIT_FSIZE], MiB. *)
}

val none : limits
(** No constraint on anything — the pre-sandbox worker behaviour. *)

val default : limits
(** The shipped worker policy: 2048 MiB address space (the OCaml 5
    runtime reserves ~300 MiB of address space up front; legitimate
    jobs on every registry circuit fit far below the cap), no CPU bound
    (legitimate generation budgets vary too much for a universal
    default), 256 descriptors, 1024 MiB file size. *)

val validate : limits -> (limits, string) result
(** Every present bound must be >= 1. *)

val apply : limits -> unit
(** Apply each present bound via {!set}. Raises [Failure] on an
    OS-level error and [Invalid_argument] on a bound < 1. Call only in
    a freshly forked worker child. *)

val describe : limits -> string
(** One line for logs: ["as=2048MiB cpu=unlimited nofile=256 fsize=1024MiB"]. *)
