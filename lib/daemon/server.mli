(** The [bistd] daemon: a crash-safe multi-tenant job server.

    One single-domain event loop ([select]) owns all protocol state —
    clients, the admission queue, the job table — and never runs a job
    itself: every admitted job executes in a {e forked worker process},
    which is what makes worker death a survivable, testable event rather
    than a daemon crash. The loop supervises workers over a pipe (EOF =
    exit, however violent), applies the {!Backoff} retry policy to
    crashes, migrates checkpointed jobs to fresh workers, enforces
    per-job deadlines, and persists a job manifest so even a killed
    {e daemon} resumes its queue on restart.

    Robustness contracts, each enforced by [make daemon-smoke] or the
    unit suite:
    - a SIGKILLed worker's job is re-admitted and resumed from its last
      checkpoint on another worker, and its result is bit-identical to
      an uninterrupted run;
    - a full queue answers [Submit] with a typed [Rejected] — clients
      never hang on admission and jobs are never silently dropped;
    - a malformed frame gets a typed [Error] reply (or a closed
      connection) and affects no one else; a slow client only ever
      blocks itself — all socket IO is non-blocking and buffered;
    - SIGTERM drains gracefully: workers checkpoint and park their jobs,
      the manifest is written, and a restarted daemon picks the queue
      back up. A second signal force-quits (exit 130).

    Untrusted-payload contracts (protocol v2):
    - the event loop {e never} parses an inline netlist payload; only a
      forked worker does, after jailing itself with {!Sandbox.apply}
      ([sandbox] below), so a hostile or merely enormous payload
      exhausts the worker's rlimits, not the daemon's;
    - a job that crashes [poison_threshold] {e distinct} workers is
      quarantined: typed [Quarantined] to every waiter, excluded from
      dispatch, persisted in the manifest (it survives daemon restarts),
      released only by an explicit [Quarantine_release] — which
      re-admits it at the front with a fresh crash budget, resuming from
      its kept checkpoint;
    - the manifest container is versioned: a spool written by an
      older daemon is refused with a distinct log line and an empty
      queue, never misread. *)

type config = {
  host : string;  (** Bind address (default loopback). *)
  port : int;  (** 0 picks an ephemeral port. *)
  max_workers : int;  (** Concurrent worker processes. *)
  queue_capacity : int;  (** Bounded admission queue depth. *)
  per_tenant : int option;  (** Per-tenant share of the queue. *)
  checkpoint_interval : float;  (** Seconds between job checkpoints. *)
  term_grace : float;
      (** Seconds a SIGTERMed worker gets to checkpoint before SIGKILL. *)
  backoff : Backoff.policy;
  spool : string;
      (** Directory for job checkpoints, results and the manifest;
          created if missing. *)
  sandbox : Sandbox.limits;
      (** Rlimits every forked worker applies to itself before touching
          its job (default {!Sandbox.default}). *)
  poison_threshold : int;
      (** Crashes on distinct workers before a job is quarantined
          (default 3 — one below the default retry budget's last
          attempt, so the typed quarantine verdict wins over a generic
          budget-exhausted failure). *)
  verbose : bool;  (** Log supervision events to stderr. *)
}

val default_config : config

val run : ?on_ready:(port:int -> unit) -> config -> unit
(** Bind, announce ([on_ready] and a ["bistd: listening on HOST:PORT"]
    line on stdout), serve until a graceful shutdown (SIGINT/SIGTERM or
    a [Shutdown] request), then drain and return. Raises
    [Invalid_argument] on a nonsensical config and [Unix.Unix_error] if
    the bind fails. *)
