(** Typed request/response messages of the [bistd] wire protocol.

    Messages travel one per {!Frame}; the first payload byte is the
    message kind, the rest is a {!Bist_resilience.Checkpoint.Io} body.
    Decoding is bounds-checked end to end: any malformed payload — a
    garbage kind byte, a truncated body, trailing junk — raises
    {!Frame.Protocol_error}, never anything else. That single-exception
    contract is what the seeded-mutation fuzz suite enforces and what
    lets the daemon answer garbage with a typed [Error] reply instead of
    crashing.

    The protocol is strict request/response over a connection: a client
    sends one request frame and reads reply frames. Every request gets
    exactly one reply, except [Wait], whose reply is deferred until the
    awaited job completes. *)

type job_spec =
  | Tgen of { circuit : string; seed : int; directed : int; trials : int }
      (** Generate + compact [T0]; the result payload is the sequence
          text, byte-identical to [bistgen tgen -o FILE]. *)
  | Faultsim of { circuit : string; vectors : string }
      (** Fault-simulate the sequence (text form, one vector per line);
          the result payload is the coverage summary line. *)
  | Inject of { circuit : string; seed : int; count : int; n : int }
      (** Run a hardened fault-injection campaign; the result payload is
          the campaign summary table. *)

val spec_name : job_spec -> string
(** ["tgen"] / ["faultsim"] / ["inject"]. *)

val spec_circuit : job_spec -> string

type request =
  | Ping
  | Submit of { tenant : string; deadline : float option; spec : job_spec }
      (** [deadline] is a per-job wall-clock budget in seconds. *)
  | Status of { id : int }
  | Wait of { id : int }
  | Stats  (** Per-tenant metrics summary. *)
  | Shutdown  (** Graceful drain: running jobs checkpoint and park. *)

type reject_reason =
  | Queue_full  (** The bounded admission queue is at capacity. *)
  | Tenant_quota  (** This tenant already holds its queue share. *)
  | Draining  (** The daemon is shutting down. *)

val reject_reason_name : reject_reason -> string

type response =
  | Pong
  | Accepted of { id : int }
  | Rejected of { reason : reject_reason; message : string }
      (** Typed backpressure: the job was {e not} admitted, and the
          client is told exactly why instead of hanging or being
          silently dropped. *)
  | Job_status of { id : int; state : string; attempts : int }
  | Result of { id : int; output : string }
  | Failed of { id : int; reason : string }
  | Stats_report of string
  | Shutting_down
  | Error of { message : string }
      (** Protocol-level failure (malformed frame, unknown job id). *)

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response
(** Decoders raise {!Frame.Protocol_error} on any malformed payload. *)

val encode_spec : Bist_resilience.Checkpoint.Io.writer -> job_spec -> unit
val decode_spec : Bist_resilience.Checkpoint.Io.reader -> job_spec
(** The bare job-spec codec, reused by the daemon's crash-safe job
    manifest. [decode_spec] raises {!Frame.Protocol_error} on a garbage
    kind and {!Bist_resilience.Checkpoint.Corrupt} on truncation (the
    manifest reader converts both into "start with an empty queue"). *)
