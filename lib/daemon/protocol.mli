(** Typed request/response messages of the [bistd] wire protocol.

    Messages travel one per {!Frame}; the first payload byte is the
    message kind, the rest is a {!Bist_resilience.Checkpoint.Io} body.
    Decoding is bounds-checked end to end: any malformed payload — a
    garbage kind byte, a truncated body, trailing junk, an inline
    netlist whose length prefix exceeds {!max_netlist_bytes} — raises
    {!Frame.Protocol_error}, never anything else. That single-exception
    contract is what the seeded-mutation fuzz suite enforces and what
    lets the daemon answer garbage with a typed [Error] reply instead of
    crashing.

    {b Versioning.} This is protocol {!version} 2. The version is
    negotiated on [Ping]: a client states the version it speaks, and a
    server that does not speak it answers with the typed
    [Unsupported_version] instead of [Pong]. A v1 [Ping] (the PR 6 wire
    form, which carried no body) decodes as [Ping {version = 1}], so
    old clients reach the typed reply rather than a protocol error.
    Version 2 added the version field itself, inline netlist payloads
    ({!circuit_ref}), and the quarantine requests/responses.

    The protocol is strict request/response over a connection: a client
    sends one request frame and reads reply frames. Every request gets
    exactly one reply, except [Wait], whose reply is deferred until the
    awaited job completes. *)

val version : int
(** The protocol generation this build speaks (2). *)

val max_netlist_bytes : int
(** Byte cap on an inline netlist payload (4 MiB — far above any real
    netlist this system targets, far below the 16 MiB frame cap). The
    cap is enforced on the {e declared length prefix} during decoding,
    before the payload bytes are copied anywhere. *)

val max_name_bytes : int
(** Byte cap on names arriving from the network (circuit and tenant
    names feed logs, metrics keys and spool state). *)

type netlist_format = Bench | Blif

val format_name : netlist_format -> string
(** ["bench"] / ["blif"]. *)

(** How a job names the circuit it runs on. The daemon {e never} parses
    an inline payload: the bytes are carried opaquely through the queue
    and the spool manifest, and only the forked worker — inside its
    {!Sandbox} rlimits — hands them to a parser. *)
type circuit_ref =
  | Named of string
      (** A registry / teaching / workload circuit name, resolved
          server-side without touching the filesystem (the PR 6
          names-only posture). *)
  | Inline of { name : string; format : netlist_format; text : string }
      (** Untrusted netlist text shipped in the job spec. [name] labels
          the circuit in reports and checkpoints (for a file payload,
          its basename). *)

val ref_name : circuit_ref -> string
val ref_is_payload : circuit_ref -> bool

type job_spec =
  | Tgen of { circuit : circuit_ref; seed : int; directed : int; trials : int }
      (** Generate + compact [T0]; the result payload is the sequence
          text, byte-identical to [bistgen tgen -o FILE]. *)
  | Faultsim of { circuit : circuit_ref; vectors : string }
      (** Fault-simulate the sequence (text form, one vector per line);
          the result payload is the coverage summary line. *)
  | Inject of { circuit : circuit_ref; seed : int; count : int; n : int }
      (** Run a hardened fault-injection campaign; the result payload is
          the campaign summary table. *)

val spec_name : job_spec -> string
(** ["tgen"] / ["faultsim"] / ["inject"]. *)

val spec_circuit_ref : job_spec -> circuit_ref
val spec_circuit : job_spec -> string
val spec_is_payload : job_spec -> bool

type request =
  | Ping of { version : int }
      (** Liveness + version negotiation: [Pong] iff the server speaks
          [version], typed [Unsupported_version] otherwise. *)
  | Submit of { tenant : string; deadline : float option; spec : job_spec }
      (** [deadline] is a per-job wall-clock budget in seconds. *)
  | Status of { id : int }
  | Wait of { id : int }
  | Stats  (** Per-tenant metrics summary. *)
  | Shutdown  (** Graceful drain: running jobs checkpoint and park. *)
  | Quarantine_list  (** Enumerate quarantined jobs. *)
  | Quarantine_release of { id : int }
      (** Operator action: re-admit a quarantined job at the front of
          the queue with a fresh crash budget. *)

type reject_reason =
  | Queue_full  (** The bounded admission queue is at capacity. *)
  | Tenant_quota  (** This tenant already holds its queue share. *)
  | Draining  (** The daemon is shutting down. *)

val reject_reason_name : reject_reason -> string

type quarantine_entry = {
  id : int;
  tenant : string;
  job : string;  (** Job kind name: ["tgen"], ... *)
  circuit : string;
  crashes : int;  (** Distinct-worker crashes that tripped the gate. *)
  reason : string;
}

type response =
  | Pong
  | Unsupported_version of { server : int; client : int }
      (** The version handshake failed; the connection stays usable but
          the client should not proceed. *)
  | Accepted of { id : int }
  | Rejected of { reason : reject_reason; message : string }
      (** Typed backpressure: the job was {e not} admitted, and the
          client is told exactly why instead of hanging or being
          silently dropped. *)
  | Job_status of { id : int; state : string; attempts : int }
  | Result of { id : int; output : string }
  | Failed of { id : int; reason : string }
  | Quarantined of { id : int; reason : string }
      (** The job crashed workers deterministically and was moved to the
          spool-persisted quarantine; it will not run again until an
          operator releases it. *)
  | Quarantine_report of quarantine_entry list
  | Stats_report of string
  | Shutting_down
  | Error of { message : string }
      (** Protocol-level failure (malformed frame, unknown job id). *)

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response
(** Decoders raise {!Frame.Protocol_error} on any malformed payload. *)

val encode_spec : Bist_resilience.Checkpoint.Io.writer -> job_spec -> unit
val decode_spec : Bist_resilience.Checkpoint.Io.reader -> job_spec
(** The bare job-spec codec, reused by the daemon's crash-safe job
    manifest. [decode_spec] raises {!Frame.Protocol_error} on a garbage
    kind or an over-cap payload and
    {!Bist_resilience.Checkpoint.Corrupt} on truncation (the manifest
    reader converts both into "start with an empty queue"). *)
