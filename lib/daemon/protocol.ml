module Io = Bist_resilience.Checkpoint.Io

let version = 2
let max_netlist_bytes = 4 * 1024 * 1024
let max_name_bytes = 4096

type netlist_format = Bench | Blif

let format_name = function Bench -> "bench" | Blif -> "blif"

type circuit_ref =
  | Named of string
  | Inline of { name : string; format : netlist_format; text : string }

let ref_name = function Named s -> s | Inline { name; _ } -> name
let ref_is_payload = function Named _ -> false | Inline _ -> true

type job_spec =
  | Tgen of { circuit : circuit_ref; seed : int; directed : int; trials : int }
  | Faultsim of { circuit : circuit_ref; vectors : string }
  | Inject of { circuit : circuit_ref; seed : int; count : int; n : int }

let spec_name = function
  | Tgen _ -> "tgen"
  | Faultsim _ -> "faultsim"
  | Inject _ -> "inject"

let spec_circuit_ref = function
  | Tgen { circuit; _ } | Faultsim { circuit; _ } | Inject { circuit; _ } ->
    circuit

let spec_circuit spec = ref_name (spec_circuit_ref spec)
let spec_is_payload spec = ref_is_payload (spec_circuit_ref spec)

type request =
  | Ping of { version : int }
  | Submit of { tenant : string; deadline : float option; spec : job_spec }
  | Status of { id : int }
  | Wait of { id : int }
  | Stats
  | Shutdown
  | Quarantine_list
  | Quarantine_release of { id : int }

type reject_reason = Queue_full | Tenant_quota | Draining

let reject_reason_name = function
  | Queue_full -> "queue_full"
  | Tenant_quota -> "tenant_quota"
  | Draining -> "draining"

type quarantine_entry = {
  id : int;
  tenant : string;
  job : string;
  circuit : string;
  crashes : int;
  reason : string;
}

type response =
  | Pong
  | Unsupported_version of { server : int; client : int }
  | Accepted of { id : int }
  | Rejected of { reason : reject_reason; message : string }
  | Job_status of { id : int; state : string; attempts : int }
  | Result of { id : int; output : string }
  | Failed of { id : int; reason : string }
  | Quarantined of { id : int; reason : string }
  | Quarantine_report of quarantine_entry list
  | Stats_report of string
  | Shutting_down
  | Error of { message : string }

let bad fmt = Printf.ksprintf (fun m -> raise (Frame.Protocol_error m)) fmt

(* Every decoder runs under this wrapper: the Io readers raise
   Checkpoint.Corrupt on truncation / malformed bytes, which is this
   layer's Protocol_error. Nothing else may escape. *)
let decoding f payload =
  try
    let r = Io.reader payload in
    if Io.at_end r then bad "empty frame";
    let kind = Io.r_u8 r in
    let v = f kind r in
    Io.expect_end r;
    v
  with Bist_resilience.Checkpoint.Corrupt msg -> bad "%s" msg

let w_float w f = Io.i64 w (Int64.bits_of_float f)
let r_float r = Int64.float_of_bits (Io.r_i64 r)

(* A string read whose declared length is checked against a cap before
   a byte of it is consumed (or allocated): an inline netlist payload
   above the size cap is rejected by its length prefix alone, whatever
   the enclosing frame managed to smuggle in. *)
let r_capped_string ~cap ~what r =
  let n = Io.r_u32 r in
  if n > cap then bad "%s of %d bytes exceeds the %d-byte cap" what n cap;
  Io.need r n;
  let s = String.sub r.Io.data r.Io.pos n in
  r.Io.pos <- r.Io.pos + n;
  s

(* circuit references *)

let format_tag = function Bench -> 0 | Blif -> 1

let format_of_tag = function
  | 0 -> Bench
  | 1 -> Blif
  | t -> bad "unknown netlist format tag %d" t

let encode_ref w = function
  | Named name ->
    Io.u8 w 0;
    Io.string w name
  | Inline { name; format; text } ->
    Io.u8 w 1;
    Io.string w name;
    Io.u8 w (format_tag format);
    Io.string w text

let decode_ref r =
  match Io.r_u8 r with
  | 0 -> Named (r_capped_string ~cap:max_name_bytes ~what:"circuit name" r)
  | 1 ->
    let name = r_capped_string ~cap:max_name_bytes ~what:"circuit name" r in
    let format = format_of_tag (Io.r_u8 r) in
    let text =
      r_capped_string ~cap:max_netlist_bytes ~what:"inline netlist payload" r
    in
    Inline { name; format; text }
  | t -> bad "unknown circuit reference tag %d" t

(* job_spec *)

let encode_spec w = function
  | Tgen { circuit; seed; directed; trials } ->
    Io.u8 w 0;
    encode_ref w circuit;
    Io.u32 w seed;
    Io.u32 w directed;
    Io.u32 w trials
  | Faultsim { circuit; vectors } ->
    Io.u8 w 1;
    encode_ref w circuit;
    Io.string w vectors
  | Inject { circuit; seed; count; n } ->
    Io.u8 w 2;
    encode_ref w circuit;
    Io.u32 w seed;
    Io.u32 w count;
    Io.u32 w n

let decode_spec r =
  match Io.r_u8 r with
  | 0 ->
    let circuit = decode_ref r in
    let seed = Io.r_u32 r in
    let directed = Io.r_u32 r in
    let trials = Io.r_u32 r in
    Tgen { circuit; seed; directed; trials }
  | 1 ->
    let circuit = decode_ref r in
    let vectors = Io.r_string r in
    Faultsim { circuit; vectors }
  | 2 ->
    let circuit = decode_ref r in
    let seed = Io.r_u32 r in
    let count = Io.r_u32 r in
    let n = Io.r_u32 r in
    Inject { circuit; seed; count; n }
  | k -> bad "unknown job kind %d" k

(* requests *)

let encode_request req =
  let w = Io.writer () in
  (match req with
  | Ping { version } ->
    Io.u8 w 0;
    Io.u32 w version
  | Submit { tenant; deadline; spec } ->
    Io.u8 w 1;
    Io.string w tenant;
    Io.option w w_float deadline;
    encode_spec w spec
  | Status { id } ->
    Io.u8 w 2;
    Io.u32 w id
  | Wait { id } ->
    Io.u8 w 3;
    Io.u32 w id
  | Stats -> Io.u8 w 4
  | Shutdown -> Io.u8 w 5
  | Quarantine_list -> Io.u8 w 6
  | Quarantine_release { id } ->
    Io.u8 w 7;
    Io.u32 w id);
  Io.contents w

let decode_request =
  decoding (fun kind r ->
      match kind with
      | 0 ->
        (* A v1 Ping has no body; its absence *is* the version claim.
           This is the one legacy form still decoded, so an old client
           reaches the typed Unsupported_version reply instead of a
           protocol error. *)
        let version = if Io.at_end r then 1 else Io.r_u32 r in
        Ping { version }
      | 1 ->
        let tenant = r_capped_string ~cap:max_name_bytes ~what:"tenant name" r in
        let deadline = Io.r_option r r_float in
        let spec = decode_spec r in
        (match deadline with
        | Some d when not (Float.is_finite d && d > 0.0) ->
          bad "submit deadline %g is not a positive finite number" d
        | _ -> ());
        Submit { tenant; deadline; spec }
      | 2 -> Status { id = Io.r_u32 r }
      | 3 -> Wait { id = Io.r_u32 r }
      | 4 -> Stats
      | 5 -> Shutdown
      | 6 -> Quarantine_list
      | 7 -> Quarantine_release { id = Io.r_u32 r }
      | k -> bad "unknown request kind %d" k)

(* responses *)

let reason_tag = function Queue_full -> 0 | Tenant_quota -> 1 | Draining -> 2

let reason_of_tag = function
  | 0 -> Queue_full
  | 1 -> Tenant_quota
  | 2 -> Draining
  | t -> bad "unknown reject reason tag %d" t

let encode_entry w { id; tenant; job; circuit; crashes; reason } =
  Io.u32 w id;
  Io.string w tenant;
  Io.string w job;
  Io.string w circuit;
  Io.u32 w crashes;
  Io.string w reason

let decode_entry r =
  let id = Io.r_u32 r in
  let tenant = Io.r_string r in
  let job = Io.r_string r in
  let circuit = Io.r_string r in
  let crashes = Io.r_u32 r in
  let reason = Io.r_string r in
  { id; tenant; job; circuit; crashes; reason }

let encode_response resp =
  let w = Io.writer () in
  (match resp with
  | Pong -> Io.u8 w 0
  | Accepted { id } ->
    Io.u8 w 1;
    Io.u32 w id
  | Rejected { reason; message } ->
    Io.u8 w 2;
    Io.u8 w (reason_tag reason);
    Io.string w message
  | Job_status { id; state; attempts } ->
    Io.u8 w 3;
    Io.u32 w id;
    Io.string w state;
    Io.u32 w attempts
  | Result { id; output } ->
    Io.u8 w 4;
    Io.u32 w id;
    Io.string w output
  | Failed { id; reason } ->
    Io.u8 w 5;
    Io.u32 w id;
    Io.string w reason
  | Stats_report s ->
    Io.u8 w 6;
    Io.string w s
  | Shutting_down -> Io.u8 w 7
  | Error { message } ->
    Io.u8 w 8;
    Io.string w message
  | Unsupported_version { server; client } ->
    Io.u8 w 9;
    Io.u32 w server;
    Io.u32 w client
  | Quarantined { id; reason } ->
    Io.u8 w 10;
    Io.u32 w id;
    Io.string w reason
  | Quarantine_report entries ->
    Io.u8 w 11;
    Io.list w encode_entry entries);
  Io.contents w

let decode_response =
  decoding (fun kind r ->
      match kind with
      | 0 -> Pong
      | 1 -> Accepted { id = Io.r_u32 r }
      | 2 ->
        let reason = reason_of_tag (Io.r_u8 r) in
        let message = Io.r_string r in
        Rejected { reason; message }
      | 3 ->
        let id = Io.r_u32 r in
        let state = Io.r_string r in
        let attempts = Io.r_u32 r in
        Job_status { id; state; attempts }
      | 4 ->
        let id = Io.r_u32 r in
        let output = Io.r_string r in
        Result { id; output }
      | 5 ->
        let id = Io.r_u32 r in
        let reason = Io.r_string r in
        Failed { id; reason }
      | 6 -> Stats_report (Io.r_string r)
      | 7 -> Shutting_down
      | 8 -> Error { message = Io.r_string r }
      | 9 ->
        let server = Io.r_u32 r in
        let client = Io.r_u32 r in
        Unsupported_version { server; client }
      | 10 ->
        let id = Io.r_u32 r in
        let reason = Io.r_string r in
        Quarantined { id; reason }
      | 11 -> Quarantine_report (Io.r_list r decode_entry)
      | k -> bad "unknown response kind %d" k)
