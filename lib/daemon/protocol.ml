module Io = Bist_resilience.Checkpoint.Io

type job_spec =
  | Tgen of { circuit : string; seed : int; directed : int; trials : int }
  | Faultsim of { circuit : string; vectors : string }
  | Inject of { circuit : string; seed : int; count : int; n : int }

let spec_name = function
  | Tgen _ -> "tgen"
  | Faultsim _ -> "faultsim"
  | Inject _ -> "inject"

let spec_circuit = function
  | Tgen { circuit; _ } | Faultsim { circuit; _ } | Inject { circuit; _ } ->
    circuit

type request =
  | Ping
  | Submit of { tenant : string; deadline : float option; spec : job_spec }
  | Status of { id : int }
  | Wait of { id : int }
  | Stats
  | Shutdown

type reject_reason = Queue_full | Tenant_quota | Draining

let reject_reason_name = function
  | Queue_full -> "queue_full"
  | Tenant_quota -> "tenant_quota"
  | Draining -> "draining"

type response =
  | Pong
  | Accepted of { id : int }
  | Rejected of { reason : reject_reason; message : string }
  | Job_status of { id : int; state : string; attempts : int }
  | Result of { id : int; output : string }
  | Failed of { id : int; reason : string }
  | Stats_report of string
  | Shutting_down
  | Error of { message : string }

let bad fmt = Printf.ksprintf (fun m -> raise (Frame.Protocol_error m)) fmt

(* Every decoder runs under this wrapper: the Io readers raise
   Checkpoint.Corrupt on truncation / malformed bytes, which is this
   layer's Protocol_error. Nothing else may escape. *)
let decoding f payload =
  try
    let r = Io.reader payload in
    if Io.at_end r then bad "empty frame";
    let kind = Io.r_u8 r in
    let v = f kind r in
    Io.expect_end r;
    v
  with Bist_resilience.Checkpoint.Corrupt msg -> bad "%s" msg

let w_float w f = Io.i64 w (Int64.bits_of_float f)
let r_float r = Int64.float_of_bits (Io.r_i64 r)

(* job_spec *)

let encode_spec w = function
  | Tgen { circuit; seed; directed; trials } ->
    Io.u8 w 0;
    Io.string w circuit;
    Io.u32 w seed;
    Io.u32 w directed;
    Io.u32 w trials
  | Faultsim { circuit; vectors } ->
    Io.u8 w 1;
    Io.string w circuit;
    Io.string w vectors
  | Inject { circuit; seed; count; n } ->
    Io.u8 w 2;
    Io.string w circuit;
    Io.u32 w seed;
    Io.u32 w count;
    Io.u32 w n

let decode_spec r =
  match Io.r_u8 r with
  | 0 ->
    let circuit = Io.r_string r in
    let seed = Io.r_u32 r in
    let directed = Io.r_u32 r in
    let trials = Io.r_u32 r in
    Tgen { circuit; seed; directed; trials }
  | 1 ->
    let circuit = Io.r_string r in
    let vectors = Io.r_string r in
    Faultsim { circuit; vectors }
  | 2 ->
    let circuit = Io.r_string r in
    let seed = Io.r_u32 r in
    let count = Io.r_u32 r in
    let n = Io.r_u32 r in
    Inject { circuit; seed; count; n }
  | k -> bad "unknown job kind %d" k

(* requests *)

let encode_request req =
  let w = Io.writer () in
  (match req with
  | Ping -> Io.u8 w 0
  | Submit { tenant; deadline; spec } ->
    Io.u8 w 1;
    Io.string w tenant;
    Io.option w w_float deadline;
    encode_spec w spec
  | Status { id } ->
    Io.u8 w 2;
    Io.u32 w id
  | Wait { id } ->
    Io.u8 w 3;
    Io.u32 w id
  | Stats -> Io.u8 w 4
  | Shutdown -> Io.u8 w 5);
  Io.contents w

let decode_request =
  decoding (fun kind r ->
      match kind with
      | 0 -> Ping
      | 1 ->
        let tenant = Io.r_string r in
        let deadline = Io.r_option r r_float in
        let spec = decode_spec r in
        (match deadline with
        | Some d when not (Float.is_finite d && d > 0.0) ->
          bad "submit deadline %g is not a positive finite number" d
        | _ -> ());
        Submit { tenant; deadline; spec }
      | 2 -> Status { id = Io.r_u32 r }
      | 3 -> Wait { id = Io.r_u32 r }
      | 4 -> Stats
      | 5 -> Shutdown
      | k -> bad "unknown request kind %d" k)

(* responses *)

let reason_tag = function Queue_full -> 0 | Tenant_quota -> 1 | Draining -> 2

let reason_of_tag = function
  | 0 -> Queue_full
  | 1 -> Tenant_quota
  | 2 -> Draining
  | t -> bad "unknown reject reason tag %d" t

let encode_response resp =
  let w = Io.writer () in
  (match resp with
  | Pong -> Io.u8 w 0
  | Accepted { id } ->
    Io.u8 w 1;
    Io.u32 w id
  | Rejected { reason; message } ->
    Io.u8 w 2;
    Io.u8 w (reason_tag reason);
    Io.string w message
  | Job_status { id; state; attempts } ->
    Io.u8 w 3;
    Io.u32 w id;
    Io.string w state;
    Io.u32 w attempts
  | Result { id; output } ->
    Io.u8 w 4;
    Io.u32 w id;
    Io.string w output
  | Failed { id; reason } ->
    Io.u8 w 5;
    Io.u32 w id;
    Io.string w reason
  | Stats_report s ->
    Io.u8 w 6;
    Io.string w s
  | Shutting_down -> Io.u8 w 7
  | Error { message } ->
    Io.u8 w 8;
    Io.string w message);
  Io.contents w

let decode_response =
  decoding (fun kind r ->
      match kind with
      | 0 -> Pong
      | 1 -> Accepted { id = Io.r_u32 r }
      | 2 ->
        let reason = reason_of_tag (Io.r_u8 r) in
        let message = Io.r_string r in
        Rejected { reason; message }
      | 3 ->
        let id = Io.r_u32 r in
        let state = Io.r_string r in
        let attempts = Io.r_u32 r in
        Job_status { id; state; attempts }
      | 4 ->
        let id = Io.r_u32 r in
        let output = Io.r_string r in
        Result { id; output }
      | 5 ->
        let id = Io.r_u32 r in
        let reason = Io.r_string r in
        Failed { id; reason }
      | 6 -> Stats_report (Io.r_string r)
      | 7 -> Shutting_down
      | 8 -> Error { message = Io.r_string r }
      | k -> bad "unknown response kind %d" k)
