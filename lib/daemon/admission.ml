type reason = Queue_full | Tenant_quota

type 'a t = {
  cap : int;
  per_tenant : int;
  mutable items : (string * 'a) list;  (** Front first. *)
  counts : (string, int) Hashtbl.t;
}

let create ?per_tenant ~capacity () =
  let per_tenant = Option.value per_tenant ~default:capacity in
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Admission.create: capacity %d < 1" capacity);
  if per_tenant < 1 then
    invalid_arg (Printf.sprintf "Admission.create: per_tenant %d < 1" per_tenant);
  { cap = capacity; per_tenant; items = []; counts = Hashtbl.create 8 }

let capacity t = t.cap
let length t = List.length t.items

let tenant_depth t tenant =
  Option.value (Hashtbl.find_opt t.counts tenant) ~default:0

let bump t tenant by =
  let n = tenant_depth t tenant + by in
  if n <= 0 then Hashtbl.remove t.counts tenant
  else Hashtbl.replace t.counts tenant n

let offer t ~tenant job =
  if length t >= t.cap then Result.Error Queue_full
  else if tenant_depth t tenant >= t.per_tenant then Result.Error Tenant_quota
  else begin
    t.items <- t.items @ [ (tenant, job) ];
    bump t tenant 1;
    Result.Ok ()
  end

let readmit t ~tenant job =
  t.items <- (tenant, job) :: t.items;
  bump t tenant 1

let remove t pred =
  let keep, drop = List.partition (fun (_, job) -> not (pred job)) t.items in
  t.items <- keep;
  List.iter (fun (tenant, _) -> bump t tenant (-1)) drop

let take t =
  match t.items with
  | [] -> None
  | ((tenant, _) as hd) :: rest ->
    t.items <- rest;
    bump t tenant (-1);
    Some hd
