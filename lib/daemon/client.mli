(** Blocking [bistd] client used by the CLI and the tests.

    One connection, strict request/response: {!request} writes a single
    frame and reads a single reply frame; {!submit_and_wait} pipelines
    the [Submit]/[Wait] pair so the job cannot complete between them.
    Any malformed reply raises {!Frame.Protocol_error}; a server that
    closes the connection mid-exchange raises it too (a daemon crash
    must surface as a typed error, not a hang or [End_of_file]). *)

type t

val connect : host:string -> port:int -> t
(** Raises [Unix.Unix_error] if the daemon is not reachable. *)

val close : t -> unit

val request : t -> Protocol.request -> Protocol.response
(** One round-trip. Raises {!Frame.Protocol_error} on a malformed or
    truncated reply. *)

val handshake : t -> (int, int * int) result
(** Ping with this build's {!Protocol.version}: [Ok version] if the
    daemon speaks it, [Error (server, client)] from the daemon's typed
    [Unsupported_version] refusal. *)

val submit_and_wait :
  t ->
  tenant:string ->
  ?deadline:float ->
  Protocol.job_spec ->
  (int * Protocol.response, Protocol.reject_reason * string) result
(** Submit, then wait for the terminal reply ([Result], [Failed] or
    [Quarantined]) of the accepted job; [Error] carries a typed
    admission rejection. The returned [int] is the job id. *)

val with_connection : host:string -> port:int -> (t -> 'a) -> 'a
(** Connect, run, always close. *)
