type t = { fd : Unix.file_descr }

let connect ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let read_reply t =
  match Frame.read_frame t.fd with
  | Some payload -> Protocol.decode_response payload
  | None ->
    raise (Frame.Protocol_error "daemon closed the connection mid-exchange")

let request t req =
  Frame.write_frame t.fd (Protocol.encode_request req);
  read_reply t

let handshake t =
  match request t (Protocol.Ping { version = Protocol.version }) with
  | Protocol.Pong -> Result.Ok Protocol.version
  | Protocol.Unsupported_version { server; client } ->
    Result.Error (server, client)
  | _ -> raise (Frame.Protocol_error "unexpected reply to Ping")

let submit_and_wait t ~tenant ?deadline spec =
  match request t (Protocol.Submit { tenant; deadline; spec }) with
  | Protocol.Rejected { reason; message } -> Result.Error (reason, message)
  | Protocol.Accepted { id } ->
    (* Wait goes out immediately on the same connection: the daemon
       defers the reply until the job is terminal, so there is no window
       in which the result could be missed. *)
    Frame.write_frame t.fd (Protocol.encode_request (Protocol.Wait { id }));
    Result.Ok (id, read_reply t)
  | other ->
    raise
      (Frame.Protocol_error
         (Printf.sprintf "unexpected reply to Submit: %s"
            (match other with
            | Protocol.Pong -> "Pong"
            | Protocol.Error { message } -> "Error: " ^ message
            | _ -> "wrong response kind")))

let with_connection ~host ~port f =
  let t = connect ~host ~port in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
