(** Length-prefixed framing for the [bistd] wire protocol.

    A frame is a 4-byte little-endian payload length followed by the
    payload bytes. The codec enforces the same discipline as the
    {!Bist_resilience.Checkpoint.Io} readers: every malformed input — a
    length prefix above {!max_payload}, a connection that ends mid-frame
    — is the typed {!Protocol_error}, never an [Invalid_argument], an
    out-of-bounds access or a silent short read. The daemon turns a
    {!Protocol_error} into a typed error reply (or a closed connection)
    and keeps serving everyone else; anything else escaping this module
    would be a crash. *)

exception Protocol_error of string
(** The only exception this module raises on malformed input. *)

val max_payload : int
(** Upper bound on a frame payload (16 MiB). A length prefix above it is
    rejected before any allocation, so a garbage prefix like
    [0xFFFFFFFF] cannot become a memory bomb. *)

val encode : string -> string
(** [encode payload] is the wire form: 4-byte LE length, then the
    payload. Raises {!Protocol_error} if the payload exceeds
    {!max_payload}. *)

(** Incremental decoder for the daemon's non-blocking reads: bytes
    arrive in arbitrary slices (a slow client may deliver one byte at a
    time) and complete frames are surfaced as they form. *)
module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> string -> unit
  (** Append received bytes. Raises {!Protocol_error} as soon as a
      length prefix above {!max_payload} is visible — before waiting for
      (or buffering) the oversized payload. *)

  val next : t -> string option
  (** The next complete payload, or [None] until more bytes arrive. *)

  val buffered : t -> int
  (** Bytes fed but not yet returned by {!next}. *)

  val finish : t -> unit
  (** Declare end-of-stream. Raises {!Protocol_error} if a partial frame
      is pending — a truncated frame is a protocol violation, not a
      silent drop. *)
end

(** {2 Blocking helpers}

    The client side (and tests) speak frames over a blocking socket. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one complete frame, looping over short writes. *)

val read_frame : Unix.file_descr -> string option
(** Read one complete frame; [None] on a clean EOF at a frame boundary.
    Raises {!Protocol_error} on EOF mid-frame or a bad length prefix. *)
