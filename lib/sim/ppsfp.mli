(** PPSFP: parallel-pattern single-fault-propagation packed fault kernel.

    Same 63-lane packed semantics as {!Packed_sim} — lane 0 is the
    fault-free machine, lanes 1..62 are faulty machines selected by force
    masks — but built for throughput when many 62-fault groups are
    simulated over the same sequence:

    - the {e good machine} is simulated once per sequence into a shared
      {!trace}; every group pass reads good values out of the trace
      instead of recomputing them;
    - gates are evaluated {e event-driven} over a levelized flat-array
      program: a gate runs only when a fanin's packed word actually
      differs from the fault-free broadcast, so quiescent levels cost
      nothing;
    - when measured activity says most of the circuit is live anyway, the
      step switches to a {e compiled} full sweep (the {!Packed_sim}
      regime) and back once activity decays — the hybrid is
      self-tuning per group;
    - {!drop_lanes} retires detected faults mid-sequence: their forces
      are masked out and their flip-flop lanes snap back to the good
      machine, so a detected fault stops generating events.

    Every step produces bit-identical planes to {!Packed_sim} on the same
    forces and inputs; the differential-oracle suite enforces this. *)

type t

val create : Bist_circuit.Netlist.t -> t
(** Compile the levelized program. All lanes reset, no forces. *)

val circuit : t -> Bist_circuit.Netlist.t

type trace
(** Fault-free machine values for every node at every simulated time
    step, grown lazily as steps are requested. Immutable once a step is
    materialized, so a trace may be shared by many simulator instances
    over the same circuit — but only within one domain: growth is not
    synchronized. *)

val trace : t -> Bist_logic.Tseq.t -> trace
(** A fresh (empty) trace of [seq] for this simulator's circuit. *)

val trace_length : trace -> int
(** Steps materialized so far. *)

val add_output_force :
  t -> Bist_circuit.Netlist.node -> mask:int -> Bist_logic.Ternary.t -> unit

val add_pin_force :
  t ->
  gate:Bist_circuit.Netlist.node ->
  pin:int ->
  mask:int ->
  Bist_logic.Ternary.t ->
  unit

val clear_forces : t -> unit

val reset : t -> unit
(** Every flip-flop of every lane back to X; re-arms event mode. Forces
    stay installed. *)

val step : t -> trace -> int -> unit
(** [step t trace u] applies time step [u] of the trace's sequence to all
    lanes and advances the flip-flop state. Steps must be applied in
    order from 0 after a {!reset}. Raises [Invalid_argument] if the trace
    belongs to a different circuit or [u] is out of range. *)

val po_diff_lanes : t -> int
(** Detection mask of the most recent {!step}: lanes (other than 0) where
    some primary output carried the binary complement of the fault-free
    binary value. *)

val drop_lanes : t -> int -> unit
(** Retire the given lanes (a mask, lane 0 ignored): all their forces are
    removed and their flip-flop state is overwritten with the fault-free
    machine's, so the lanes become quiescent copies of lane 0 from the
    next step on. Detection times already read are unaffected; the
    remaining lanes are bit-for-bit unaffected (lanes are independent). *)

val evaluations : t -> int
(** Cumulative gate evaluations — the activity measure benchmarks and
    tests use to see the event core actually skipping work. *)

val full_steps : t -> int
(** Steps executed in compiled full-sweep mode since creation. *)

val event_steps : t -> int
(** Steps executed in event-driven mode since creation. *)
