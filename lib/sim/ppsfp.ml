module T = Bist_logic.Ternary
module Tseq = Bist_logic.Tseq
module Netlist = Bist_circuit.Netlist
module Gate = Bist_circuit.Gate

(* The kernel works on the same two-plane packed encoding as Packed_sim:
   ones/zeros ints, one lane per bit, lane 0 = fault-free machine. The
   difference is what gets evaluated. The fault-free machine is simulated
   once per sequence into a byte-per-node-per-step trace; a group pass
   then evaluates a gate only when one of its fanins' packed words
   actually differs from the fault-free broadcast (or the gate carries a
   force). A node without a current-step value stamp implicitly holds the
   broadcast of its trace byte.

   "Differs from fault-free" is checked against lane 0 of the word
   itself: lane 0 is never forced, so a word is clean iff every lane
   equals lane 0, i.e. [ones = -(ones land 1) && zeros = -(zeros land 1)].

   Trace bytes encode a ternary value in two bits: bit 0 = one-plane,
   bit 1 = zero-plane (1 = One, 2 = Zero, 0 = X). Broadcasting a byte to
   a packed plane is [-(code land 1)] / [-((code lsr 1) land 1)]. *)

let kind_code = function
  | Gate.Buf -> 0
  | Gate.Not -> 1
  | Gate.And -> 2
  | Gate.Nand -> 3
  | Gate.Or -> 4
  | Gate.Nor -> 5
  | Gate.Xor -> 6
  | Gate.Xnor -> 7
  | Gate.Const0 -> 8
  | Gate.Const1 -> 9
  | Gate.Input -> -1
  | Gate.Dff -> -2

type t = {
  circuit : Netlist.t;
  n : int;
  (* flat program, indexed by node *)
  nkind : int array;
  nfan_off : int array;
  nfan_len : int array;
  nfan : int array; (* CSR fanins of every node *)
  nfo_off : int array;
  nfo_len : int array;
  nfo : int array; (* CSR combinational consumers of every node *)
  level_of : int array;
  max_level : int;
  topo : int array; (* combinational nodes, level order *)
  pis : int array;
  pos : int array;
  dff_nodes : int array;
  dff_d : int array; (* D driver per flip-flop *)
  (* per-step packed planes; valid only where [vstamp = step_id] *)
  ones : int array;
  zeros : int array;
  vstamp : int array;
  state_ones : int array;
  state_zeros : int array;
  ff_dirty : bool array; (* state differs from the fault-free machine *)
  (* level buckets of scheduled gates; [sstamp] deduplicates per step *)
  buckets : int array array;
  bucket_len : int array;
  sstamp : int array;
  (* forces *)
  out_f1 : int array;
  out_f0 : int array;
  pin_f1 : int array array;
  pin_f0 : int array array;
  mutable out_forced_nodes : int list;
  mutable out_forced_pis : int list;
  mutable out_forced_comb : int list;
  mutable out_forced_ffs : int list; (* flip-flop indices *)
  ff_forced : bool array;
  mutable pin_forced_comb : int list;
  mutable pin_forced_dffs : int list;
  (* step-local registers *)
  mutable step_id : int;
  mutable trd : Bytes.t; (* current trace data *)
  mutable tr_base : int; (* offset of the current step in [trd] *)
  mutable diff_lanes : int;
  mutable acc_o : int;
  mutable acc_z : int;
  mutable rd_o : int;
  mutable rd_z : int;
  (* hybrid mode control *)
  mutable full_mode : bool;
  mutable activity : float; (* EWMA of evaluated-gate fraction *)
  mutable evals : int;
  mutable n_full_steps : int;
  mutable n_event_steps : int;
}

let create circuit =
  let n = Netlist.size circuit in
  let levels = Bist_circuit.Stats.levels circuit in
  let max_level = Array.fold_left max 0 levels in
  let csr fanins_of =
    let off = Array.make n 0 in
    let len = Array.make n 0 in
    let total = ref 0 in
    for node = 0 to n - 1 do
      len.(node) <- Array.length (fanins_of node);
      total := !total + len.(node)
    done;
    let dat = Array.make (max 1 !total) 0 in
    let pos = ref 0 in
    for node = 0 to n - 1 do
      off.(node) <- !pos;
      Array.iter
        (fun d ->
          dat.(!pos) <- d;
          incr pos)
        (fanins_of node)
    done;
    (off, len, dat)
  in
  let nfan_off, nfan_len, nfan = csr (fun node -> Netlist.fanins circuit node) in
  let comb node = Gate.is_combinational (Netlist.kind circuit node) in
  let nfo_off, nfo_len, nfo =
    csr (fun node ->
        Array.of_list
          (List.filter comb (Array.to_list (Netlist.fanouts circuit node))))
  in
  (* Sort the topological order by level so the full sweep and the event
     sweep agree on evaluation order (both are valid topological orders;
     values are order-independent, this is just cache-friendlier). *)
  let topo = Array.copy (Netlist.topo_order circuit) in
  let cmp a b = compare (levels.(a), a) (levels.(b), b) in
  Array.sort cmp topo;
  let per_level = Array.make (max_level + 1) 0 in
  Array.iter (fun g -> per_level.(levels.(g)) <- per_level.(levels.(g)) + 1) topo;
  let dffs = Netlist.dffs circuit in
  {
    circuit;
    n;
    nkind = Array.init n (fun node -> kind_code (Netlist.kind circuit node));
    nfan_off;
    nfan_len;
    nfan;
    nfo_off;
    nfo_len;
    nfo;
    level_of = levels;
    max_level;
    topo;
    pis = Netlist.inputs circuit;
    pos = Netlist.outputs circuit;
    dff_nodes = Array.copy dffs;
    dff_d = Array.map (fun f -> (Netlist.fanins circuit f).(0)) dffs;
    ones = Array.make n 0;
    zeros = Array.make n 0;
    vstamp = Array.make n (-1);
    state_ones = Array.make (Array.length dffs) 0;
    state_zeros = Array.make (Array.length dffs) 0;
    ff_dirty = Array.make (Array.length dffs) false;
    buckets = Array.map (fun c -> Array.make (max 1 c) 0) per_level;
    bucket_len = Array.make (max_level + 1) 0;
    sstamp = Array.make n (-1);
    out_f1 = Array.make n 0;
    out_f0 = Array.make n 0;
    pin_f1 = Array.make n [||];
    pin_f0 = Array.make n [||];
    out_forced_nodes = [];
    out_forced_pis = [];
    out_forced_comb = [];
    out_forced_ffs = [];
    ff_forced = Array.make (Array.length dffs) false;
    pin_forced_comb = [];
    pin_forced_dffs = [];
    step_id = 0;
    trd = Bytes.empty;
    tr_base = 0;
    diff_lanes = 0;
    acc_o = 0;
    acc_z = 0;
    rd_o = 0;
    rd_z = 0;
    full_mode = false;
    activity = 0.0;
    evals = 0;
    n_full_steps = 0;
    n_event_steps = 0;
  }

let circuit t = t.circuit
let evaluations t = t.evals
let full_steps t = t.n_full_steps
let event_steps t = t.n_event_steps
let po_diff_lanes t = t.diff_lanes

(* --- the fault-free trace ------------------------------------------- *)

type trace = {
  tr_circuit : Netlist.t;
  seq : Tseq.t;
  tr_n : int;
  mutable data : Bytes.t; (* [upto * tr_n] materialized bytes *)
  mutable upto : int;
  g_state : int array; (* per-flip-flop present-state code *)
  g_topo : int array;
  g_kind : int array;
  g_off : int array;
  g_len : int array;
  g_fan : int array;
  g_pis : int array;
  g_dffs : int array;
  g_dff_d : int array;
}

let trace t seq = {
  tr_circuit = t.circuit;
  seq;
  tr_n = t.n;
  data = Bytes.make (t.n * min (max 1 (Tseq.length seq)) 64) '\000';
  upto = 0;
  g_state = Array.make (Array.length t.dff_nodes) 0;
  g_topo = t.topo;
  g_kind = t.nkind;
  g_off = t.nfan_off;
  g_len = t.nfan_len;
  g_fan = t.nfan;
  g_pis = t.pis;
  g_dffs = t.dff_nodes;
  g_dff_d = t.dff_d;
}

let trace_length tr = tr.upto

(* Scalar ternary evaluation over 2-bit codes, with exactly the packed
   kernel's bitwise formulas applied to 1-bit planes — so the trace and
   lane 0 of a packed pass can never disagree. *)
let trace_step tr =
  let u = tr.upto in
  let n = tr.tr_n in
  if Bytes.length tr.data < (u + 1) * n then begin
    let grown =
      Bytes.make (max ((u + 1) * n) (min (2 * Bytes.length tr.data) (Tseq.length tr.seq * n))) '\000'
    in
    Bytes.blit tr.data 0 grown 0 (u * n);
    tr.data <- grown
  end;
  let base = u * n in
  let data = tr.data in
  let put node c = Bytes.unsafe_set data (base + node) (Char.unsafe_chr c) in
  let code node = Char.code (Bytes.unsafe_get data (base + node)) in
  let vec = Tseq.get tr.seq u in
  Array.iteri
    (fun i node ->
      put node
        (match Bist_logic.Vector.get vec i with
        | T.One -> 1
        | T.Zero -> 2
        | T.X -> 0))
    tr.g_pis;
  Array.iteri (fun i node -> put node tr.g_state.(i)) tr.g_dffs;
  let topo = tr.g_topo in
  for i = 0 to Array.length topo - 1 do
    let node = Array.unsafe_get topo i in
    let kind = Array.unsafe_get tr.g_kind node in
    let off = Array.unsafe_get tr.g_off node in
    let len = Array.unsafe_get tr.g_len node in
    let o = ref 0 and z = ref 0 in
    (match kind with
    | 2 | 3 ->
      o := 1;
      for j = off to off + len - 1 do
        let c = code (Array.unsafe_get tr.g_fan j) in
        o := !o land (c land 1);
        z := !z lor ((c lsr 1) land 1)
      done
    | 4 | 5 ->
      z := 1;
      for j = off to off + len - 1 do
        let c = code (Array.unsafe_get tr.g_fan j) in
        o := !o lor (c land 1);
        z := !z land ((c lsr 1) land 1)
      done
    | 6 | 7 ->
      z := 1;
      for j = off to off + len - 1 do
        let c = code (Array.unsafe_get tr.g_fan j) in
        let io = c land 1 and iz = (c lsr 1) land 1 in
        let no = (!o land iz) lor (!z land io) in
        z := (!o land io) lor (!z land iz);
        o := no
      done
    | 0 | 1 ->
      let c = code (Array.unsafe_get tr.g_fan off) in
      o := c land 1;
      z := (c lsr 1) land 1
    | 8 -> z := 1
    | _ -> o := 1);
    let o, z = if kind land 1 = 1 && kind < 8 && kind >= 0 then (!z, !o) else (!o, !z) in
    put node (o lor (z lsl 1))
  done;
  Array.iteri (fun i d -> tr.g_state.(i) <- code d) tr.g_dff_d;
  tr.upto <- u + 1

let trace_ensure tr u =
  if u >= Tseq.length tr.seq then
    invalid_arg "Ppsfp.step: time step beyond the sequence";
  while tr.upto <= u do
    trace_step tr
  done

(* --- forces ---------------------------------------------------------- *)

let check_mask mask =
  if mask land 1 <> 0 then
    invalid_arg "Ppsfp: lane 0 is reserved for the fault-free machine"

let ff_index t node =
  let rec go i =
    if i >= Array.length t.dff_nodes then invalid_arg "Ppsfp: not a flip-flop"
    else if t.dff_nodes.(i) = node then i
    else go (i + 1)
  in
  go 0

let add_output_force t node ~mask stuck =
  check_mask mask;
  if t.out_f1.(node) lor t.out_f0.(node) = 0 then begin
    t.out_forced_nodes <- node :: t.out_forced_nodes;
    match t.nkind.(node) with
    | -1 -> t.out_forced_pis <- node :: t.out_forced_pis
    | -2 ->
      let i = ff_index t node in
      t.ff_forced.(i) <- true;
      t.out_forced_ffs <- i :: t.out_forced_ffs
    | _ -> t.out_forced_comb <- node :: t.out_forced_comb
  end;
  match stuck with
  | T.One -> t.out_f1.(node) <- t.out_f1.(node) lor mask
  | T.Zero -> t.out_f0.(node) <- t.out_f0.(node) lor mask
  | T.X -> invalid_arg "Ppsfp.add_output_force: X"

let add_pin_force t ~gate ~pin ~mask stuck =
  check_mask mask;
  let arity = t.nfan_len.(gate) in
  if pin < 0 || pin >= arity then invalid_arg "Ppsfp.add_pin_force: pin out of range";
  if Array.length t.pin_f1.(gate) = 0 then begin
    t.pin_f1.(gate) <- Array.make arity 0;
    t.pin_f0.(gate) <- Array.make arity 0;
    if t.nkind.(gate) = -2 then t.pin_forced_dffs <- gate :: t.pin_forced_dffs
    else t.pin_forced_comb <- gate :: t.pin_forced_comb
  end;
  match stuck with
  | T.One -> t.pin_f1.(gate).(pin) <- t.pin_f1.(gate).(pin) lor mask
  | T.Zero -> t.pin_f0.(gate).(pin) <- t.pin_f0.(gate).(pin) lor mask
  | T.X -> invalid_arg "Ppsfp.add_pin_force: X"

let clear_forces t =
  List.iter
    (fun node ->
      t.out_f1.(node) <- 0;
      t.out_f0.(node) <- 0)
    t.out_forced_nodes;
  List.iter (fun i -> t.ff_forced.(i) <- false) t.out_forced_ffs;
  let clear_pins g =
    t.pin_f1.(g) <- [||];
    t.pin_f0.(g) <- [||]
  in
  List.iter clear_pins t.pin_forced_comb;
  List.iter clear_pins t.pin_forced_dffs;
  t.out_forced_nodes <- [];
  t.out_forced_pis <- [];
  t.out_forced_comb <- [];
  t.out_forced_ffs <- [];
  t.pin_forced_comb <- [];
  t.pin_forced_dffs <- []

let reset t =
  Array.fill t.state_ones 0 (Array.length t.state_ones) 0;
  Array.fill t.state_zeros 0 (Array.length t.state_zeros) 0;
  Array.fill t.ff_dirty 0 (Array.length t.ff_dirty) false;
  t.diff_lanes <- 0;
  t.full_mode <- false;
  t.activity <- 0.0

let drop_lanes t mask =
  let mask = mask land lnot 1 in
  if mask <> 0 then begin
    let keep = lnot mask in
    List.iter
      (fun node ->
        t.out_f1.(node) <- t.out_f1.(node) land keep;
        t.out_f0.(node) <- t.out_f0.(node) land keep)
      t.out_forced_nodes;
    let drop_pins g =
      let f1 = t.pin_f1.(g) and f0 = t.pin_f0.(g) in
      for j = 0 to Array.length f1 - 1 do
        f1.(j) <- f1.(j) land keep;
        f0.(j) <- f0.(j) land keep
      done
    in
    List.iter drop_pins t.pin_forced_comb;
    List.iter drop_pins t.pin_forced_dffs;
    (* Snap the dropped lanes' flip-flop state back to the fault-free
       machine (lane 0): the lanes become quiescent copies and stop
       generating events. *)
    for i = 0 to Array.length t.state_ones - 1 do
      let so = t.state_ones.(i) and sz = t.state_zeros.(i) in
      let so = (so land keep) lor (-(so land 1) land mask) in
      let sz = (sz land keep) lor (-(sz land 1) land mask) in
      t.state_ones.(i) <- so;
      t.state_zeros.(i) <- sz;
      t.ff_dirty.(i) <- so <> -(so land 1) || sz <> -(sz land 1)
    done
  end

(* --- the packed step ------------------------------------------------- *)

(* Fanin read: a node stamped this step has explicit planes; any other
   node is the broadcast of its fault-free trace byte. *)
let read t d =
  if Array.unsafe_get t.vstamp d = t.step_id then begin
    t.rd_o <- Array.unsafe_get t.ones d;
    t.rd_z <- Array.unsafe_get t.zeros d
  end
  else begin
    let c = Char.code (Bytes.unsafe_get t.trd (t.tr_base + d)) in
    t.rd_o <- -(c land 1);
    t.rd_z <- -((c lsr 1) land 1)
  end

let full = -1

let acc_plain t kind off len =
  match kind with
  | 2 | 3 ->
    let o = ref full and z = ref 0 in
    for i = off to off + len - 1 do
      read t (Array.unsafe_get t.nfan i);
      o := !o land t.rd_o;
      z := !z lor t.rd_z
    done;
    t.acc_o <- !o;
    t.acc_z <- !z
  | 4 | 5 ->
    let o = ref 0 and z = ref full in
    for i = off to off + len - 1 do
      read t (Array.unsafe_get t.nfan i);
      o := !o lor t.rd_o;
      z := !z land t.rd_z
    done;
    t.acc_o <- !o;
    t.acc_z <- !z
  | 6 | 7 ->
    let o = ref 0 and z = ref full in
    for i = off to off + len - 1 do
      read t (Array.unsafe_get t.nfan i);
      let io = t.rd_o and iz = t.rd_z in
      let no = (!o land iz) lor (!z land io) in
      z := (!o land io) lor (!z land iz);
      o := no
    done;
    t.acc_o <- !o;
    t.acc_z <- !z
  | 0 | 1 ->
    read t (Array.unsafe_get t.nfan off);
    t.acc_o <- t.rd_o;
    t.acc_z <- t.rd_z
  | 8 ->
    t.acc_o <- 0;
    t.acc_z <- full
  | _ ->
    t.acc_o <- full;
    t.acc_z <- 0

let acc_forced t kind off len pf1 pf0 =
  let pin j =
    read t (Array.unsafe_get t.nfan (off + j));
    let f1 = Array.unsafe_get pf1 j and f0 = Array.unsafe_get pf0 j in
    let keep = lnot (f1 lor f0) in
    t.rd_o <- (t.rd_o land keep) lor f1;
    t.rd_z <- (t.rd_z land keep) lor f0
  in
  match kind with
  | 2 | 3 ->
    let o = ref full and z = ref 0 in
    for j = 0 to len - 1 do
      pin j;
      o := !o land t.rd_o;
      z := !z lor t.rd_z
    done;
    t.acc_o <- !o;
    t.acc_z <- !z
  | 4 | 5 ->
    let o = ref 0 and z = ref full in
    for j = 0 to len - 1 do
      pin j;
      o := !o lor t.rd_o;
      z := !z land t.rd_z
    done;
    t.acc_o <- !o;
    t.acc_z <- !z
  | 6 | 7 ->
    let o = ref 0 and z = ref full in
    for j = 0 to len - 1 do
      pin j;
      let io = t.rd_o and iz = t.rd_z in
      let no = (!o land iz) lor (!z land io) in
      z := (!o land io) lor (!z land iz);
      o := no
    done;
    t.acc_o <- !o;
    t.acc_z <- !z
  | 0 | 1 ->
    pin 0;
    t.acc_o <- t.rd_o;
    t.acc_z <- t.rd_z
  | 8 ->
    t.acc_o <- 0;
    t.acc_z <- full
  | _ ->
    t.acc_o <- full;
    t.acc_z <- 0

(* Evaluate one combinational node; returns true iff its packed word
   differs from the fault-free broadcast (some lane deviates). *)
let eval_node t node =
  let kind = Array.unsafe_get t.nkind node in
  let off = Array.unsafe_get t.nfan_off node in
  let len = Array.unsafe_get t.nfan_len node in
  let pf1 = Array.unsafe_get t.pin_f1 node in
  if Array.length pf1 = 0 then acc_plain t kind off len
  else acc_forced t kind off len pf1 (Array.unsafe_get t.pin_f0 node);
  let o, z =
    if kind land 1 = 1 && kind < 8 then (t.acc_z, t.acc_o) else (t.acc_o, t.acc_z)
  in
  let f1 = Array.unsafe_get t.out_f1 node and f0 = Array.unsafe_get t.out_f0 node in
  let o, z =
    if f1 lor f0 <> 0 then begin
      let keep = lnot (f1 lor f0) in
      ((o land keep) lor f1, (z land keep) lor f0)
    end
    else (o, z)
  in
  Array.unsafe_set t.ones node o;
  Array.unsafe_set t.zeros node z;
  Array.unsafe_set t.vstamp node t.step_id;
  t.evals <- t.evals + 1;
  o <> -(o land 1) || z <> -(z land 1)

let schedule t node =
  if Array.unsafe_get t.sstamp node <> t.step_id then begin
    Array.unsafe_set t.sstamp node t.step_id;
    let lv = Array.unsafe_get t.level_of node in
    let b = Array.unsafe_get t.buckets lv in
    let len = Array.unsafe_get t.bucket_len lv in
    Array.unsafe_set b len node;
    Array.unsafe_set t.bucket_len lv (len + 1)
  end

let propagate t node =
  let off = Array.unsafe_get t.nfo_off node in
  let len = Array.unsafe_get t.nfo_len node in
  for i = off to off + len - 1 do
    schedule t (Array.unsafe_get t.nfo i)
  done

(* Materialize a source node's planes from [o]/[z], apply its output
   force, and propagate if it deviates from the fault-free machine. *)
let seed_source t node o z =
  let f1 = t.out_f1.(node) and f0 = t.out_f0.(node) in
  let o, z =
    if f1 lor f0 <> 0 then begin
      let keep = lnot (f1 lor f0) in
      ((o land keep) lor f1, (z land keep) lor f0)
    end
    else (o, z)
  in
  t.ones.(node) <- o;
  t.zeros.(node) <- z;
  t.vstamp.(node) <- t.step_id;
  if o <> -(o land 1) || z <> -(z land 1) then propagate t node

let detect t =
  let diff = ref 0 in
  let pos = t.pos in
  for i = 0 to Array.length pos - 1 do
    let p = Array.unsafe_get pos i in
    if Array.unsafe_get t.vstamp p = t.step_id then begin
      let o = Array.unsafe_get t.ones p and z = Array.unsafe_get t.zeros p in
      if o land 1 <> 0 then diff := !diff lor z
      else if z land 1 <> 0 then diff := !diff lor o
    end
  done;
  t.diff_lanes <- !diff land lnot 1

let clock t =
  let dffs = t.dff_nodes in
  for i = 0 to Array.length dffs - 1 do
    let fnode = Array.unsafe_get dffs i in
    read t (Array.unsafe_get t.dff_d i);
    let o = ref t.rd_o and z = ref t.rd_z in
    if Array.length t.pin_f1.(fnode) <> 0 then begin
      let f1 = t.pin_f1.(fnode).(0) and f0 = t.pin_f0.(fnode).(0) in
      let keep = lnot (f1 lor f0) in
      o := (!o land keep) lor f1;
      z := (!z land keep) lor f0
    end;
    t.state_ones.(i) <- !o;
    t.state_zeros.(i) <- !z;
    t.ff_dirty.(i) <- !o <> -(!o land 1) || !z <> -(!z land 1)
  done

let step_event t =
  let data = t.trd and base = t.tr_base in
  List.iter
    (fun p ->
      let c = Char.code (Bytes.unsafe_get data (base + p)) in
      seed_source t p (-(c land 1)) (-((c lsr 1) land 1)))
    t.out_forced_pis;
  for i = 0 to Array.length t.dff_nodes - 1 do
    if t.ff_dirty.(i) || t.ff_forced.(i) then
      seed_source t t.dff_nodes.(i) t.state_ones.(i) t.state_zeros.(i)
  done;
  List.iter (fun g -> schedule t g) t.out_forced_comb;
  List.iter (fun g -> schedule t g) t.pin_forced_comb;
  for lv = 0 to t.max_level do
    let len = Array.unsafe_get t.bucket_len lv in
    if len > 0 then begin
      Array.unsafe_set t.bucket_len lv 0;
      let b = Array.unsafe_get t.buckets lv in
      for i = 0 to len - 1 do
        let node = Array.unsafe_get b i in
        if eval_node t node then propagate t node
      done
    end
  done

let step_full t =
  let data = t.trd and base = t.tr_base in
  Array.iter
    (fun p ->
      let c = Char.code (Bytes.unsafe_get data (base + p)) in
      let o = -(c land 1) and z = -((c lsr 1) land 1) in
      let f1 = t.out_f1.(p) and f0 = t.out_f0.(p) in
      let o, z =
        if f1 lor f0 <> 0 then begin
          let keep = lnot (f1 lor f0) in
          ((o land keep) lor f1, (z land keep) lor f0)
        end
        else (o, z)
      in
      t.ones.(p) <- o;
      t.zeros.(p) <- z;
      t.vstamp.(p) <- t.step_id)
    t.pis;
  Array.iteri
    (fun i node ->
      let o = t.state_ones.(i) and z = t.state_zeros.(i) in
      let f1 = t.out_f1.(node) and f0 = t.out_f0.(node) in
      let o, z =
        if f1 lor f0 <> 0 then begin
          let keep = lnot (f1 lor f0) in
          ((o land keep) lor f1, (z land keep) lor f0)
        end
        else (o, z)
      in
      t.ones.(node) <- o;
      t.zeros.(node) <- z;
      t.vstamp.(node) <- t.step_id)
    t.dff_nodes;
  let dirty = ref 0 in
  let topo = t.topo in
  for i = 0 to Array.length topo - 1 do
    if eval_node t (Array.unsafe_get topo i) then incr dirty
  done;
  !dirty

(* Hybrid control: EWMA of per-step activity, with hysteresis so the
   mode doesn't flap. Mode changes never change values — both modes
   compute identical planes — only which gates get visited. *)
let to_full = 0.55
let to_event = 0.25

let step t tr u =
  if not (tr.tr_circuit == t.circuit) then
    invalid_arg "Ppsfp.step: trace belongs to a different circuit";
  trace_ensure tr u;
  t.trd <- tr.data;
  t.tr_base <- u * t.n;
  t.step_id <- t.step_id + 1;
  let gates = max 1 (Array.length t.topo) in
  let act =
    if t.full_mode then begin
      t.n_full_steps <- t.n_full_steps + 1;
      let dirty = step_full t in
      float_of_int dirty /. float_of_int gates
    end
    else begin
      t.n_event_steps <- t.n_event_steps + 1;
      let before = t.evals in
      step_event t;
      float_of_int (t.evals - before) /. float_of_int gates
    end
  in
  t.activity <- (0.7 *. t.activity) +. (0.3 *. act);
  if t.full_mode then begin
    if t.activity < to_event then t.full_mode <- false
  end
  else if t.activity > to_full then t.full_mode <- true;
  detect t;
  clock t
