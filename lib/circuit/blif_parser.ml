exception Parse_error of { line : int; message : string }

let () =
  Printexc.register_printer (function
    | Parse_error { line; message } ->
      Some (Printf.sprintf "BLIF parse error at line %d: %s" line message)
    | _ -> None)

let error line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Lexing: physical lines -> logical lines.  '#' starts a comment; a   *)
(* trailing '\' (after comment stripping) continues the statement on   *)
(* the next line.  A logical line keeps the number of its first        *)
(* physical line so errors point where the statement started.          *)

type logical = { line : int; tokens : string list }

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let tokenize s =
  String.split_on_char ' ' (String.map (function '\t' | '\r' -> ' ' | c -> c) s)
  |> List.filter (fun t -> t <> "")

let logical_lines text =
  let lines = String.split_on_char '\n' text in
  let out = ref [] in
  let pending = Buffer.create 80 in
  let pending_start = ref 0 in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let s = strip_comment raw in
      let continued =
        String.length s > 0 && s.[String.length s - 1] = '\\'
      in
      let s = if continued then String.sub s 0 (String.length s - 1) else s in
      if Buffer.length pending = 0 then pending_start := lineno;
      Buffer.add_string pending s;
      Buffer.add_char pending ' ';
      if not continued then begin
        (match tokenize (Buffer.contents pending) with
        | [] -> ()
        | tokens -> out := { line = !pending_start; tokens } :: !out);
        Buffer.clear pending
      end)
    lines;
  (* A file ending in '\': the started statement still counts. *)
  (match tokenize (Buffer.contents pending) with
  | [] -> ()
  | tokens -> out := { line = !pending_start; tokens } :: !out);
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Grouping: logical lines -> models holding uninterpreted statements. *)

type stmt =
  | Names of {
      line : int;
      inputs : string list;
      output : string;
      rows : (int * string * char) list; (* row line, pattern, value *)
    }
  | Latch of { line : int; input : string; output : string }
  | Subckt of {
      line : int;
      kw : string; (* ".subckt" or ".gate" *)
      callee : string;
      bindings : (string * string) list;
    }

type model = {
  mline : int;
  mname : string option;
  mutable inputs_rev : (int * string) list;
  mutable outputs_rev : (int * string) list;
  mutable stmts_rev : stmt list;
}

let latch_types = [ "fe"; "re"; "ah"; "al"; "as" ]

let parse_latch line operands =
  let check_type ty =
    if ty <> "re" then
      error line
        "unsupported latch type %S (only rising-edge 're' latches map onto \
         the DFF model)"
        ty
  in
  let check_init v =
    match v with
    | "2" | "3" -> () (* don't-care / unknown: exactly our all-X reset *)
    | "0" | "1" ->
      error line
        "unsupported latch initial value %s (simulation starts from the \
         all-X state and cannot honour a defined reset value; use 2 or 3, \
         or re-synthesize without latch init)"
        v
    | v -> error line "malformed latch initial value %S" v
  in
  match operands with
  | [ input; output ] -> (input, output)
  | [ input; output; x ] ->
    if List.mem x latch_types then
      error line "latch type %S needs a control signal" x
    else check_init x;
    (input, output)
  | [ input; output; ty; _control ] ->
    check_type ty;
    (input, output)
  | [ input; output; ty; _control; init ] ->
    check_type ty;
    check_init init;
    (input, output)
  | _ -> error line ".latch takes 2 to 5 operands"

let parse_binding line kw tok =
  match String.index_opt tok '=' with
  | None -> error line "%s operand %S is not of the form formal=actual" kw tok
  | Some i ->
    let formal = String.sub tok 0 i in
    let actual = String.sub tok (i + 1) (String.length tok - i - 1) in
    if formal = "" || actual = "" then
      error line "%s operand %S is not of the form formal=actual" kw tok;
    (formal, actual)

let is_cover_row tokens =
  match tokens with
  | [ v ] | [ _; v ] ->
    String.length v = 1
    && (v = "0" || v = "1")
    && List.for_all
         (fun t -> String.for_all (fun c -> c = '0' || c = '1' || c = '-') t)
         tokens
  | _ -> false

let group_models lls =
  let models = ref [] in
  let current = ref None in
  let cover = ref None in (* (line, inputs, output, rows_rev) while in a .names *)
  let flush_cover () =
    match !cover with
    | None -> ()
    | Some (line, inputs, output, rows_rev) ->
      let m = Option.get !current in
      m.stmts_rev <-
        Names { line; inputs; output; rows = List.rev rows_rev } :: m.stmts_rev;
      cover := None
  in
  let need_model line directive =
    match !current with
    | Some m -> m
    | None -> error line "%s before any .model" directive
  in
  List.iter
    (fun { line; tokens } ->
      match tokens with
      | [] -> ()
      | kw :: operands when String.length kw > 0 && kw.[0] = '.' -> begin
        flush_cover ();
        match kw with
        | ".model" ->
          (match !current with
          | Some m -> models := m :: !models
          | None -> ());
          let mname =
            match operands with
            | [] -> None
            | [ name ] -> Some name
            | _ -> error line ".model takes at most one name"
          in
          current :=
            Some
              { mline = line; mname; inputs_rev = []; outputs_rev = [];
                stmts_rev = [] }
        | ".inputs" ->
          let m = need_model line kw in
          List.iter
            (fun s -> m.inputs_rev <- (line, s) :: m.inputs_rev)
            operands
        | ".outputs" ->
          let m = need_model line kw in
          List.iter
            (fun s -> m.outputs_rev <- (line, s) :: m.outputs_rev)
            operands
        | ".names" ->
          let m = need_model line kw in
          ignore m;
          (match List.rev operands with
          | output :: inputs_rev ->
            cover := Some (line, List.rev inputs_rev, output, [])
          | [] -> error line ".names needs at least an output signal")
        | ".latch" ->
          let m = need_model line kw in
          let input, output = parse_latch line operands in
          m.stmts_rev <- Latch { line; input; output } :: m.stmts_rev
        | ".subckt" | ".gate" ->
          let m = need_model line kw in
          (match operands with
          | callee :: binds when binds <> [] ->
            let bindings = List.map (parse_binding line kw) binds in
            m.stmts_rev <- Subckt { line; kw; callee; bindings } :: m.stmts_rev
          | _ -> error line "%s needs a cell name and at least one binding" kw)
        | ".end" ->
          (match !current with
          | Some m ->
            models := m :: !models;
            current := None
          | None -> error line ".end without a matching .model")
        | ".clock" -> () (* clocking is implicit in the DFF model *)
        | _ -> error line "unsupported BLIF construct %s" kw
      end
      | tokens -> begin
        match !cover with
        | Some (nline, inputs, output, rows_rev) when is_cover_row tokens ->
          let pattern, value =
            match tokens with
            | [ v ] -> ("", v.[0])
            | [ p; v ] -> (p, v.[0])
            | _ -> assert false
          in
          if String.length pattern <> List.length inputs then
            error line
              "cover row has %d input columns but .names listed %d inputs"
              (String.length pattern) (List.length inputs);
          cover := Some (nline, inputs, output, (line, pattern, value) :: rows_rev)
        | Some _ -> error line "malformed cover row"
        | None ->
          if !current = None then error line "expected .model"
          else error line "unexpected line (cover rows must follow a .names)"
      end)
    lls;
  flush_cover ();
  (match !current with
  | Some m -> models := m :: !models
  | None -> ());
  List.rev !models

(* ------------------------------------------------------------------ *)
(* The library cell table: the Yosys internal cells plus a few plain   *)
(* aliases, each described by its formal ports.                       *)

type cell =
  | Prim of Gate.kind * string list * string (* input formals, output formal *)
  | Andnot (* Y = A & ~B *)
  | Ornot (* Y = A | ~B *)
  | Mux (* Y = S ? B : A *)
  | Dff_cell of { data : string; q : string; clock : string option }

let cells =
  [
    ("$_BUF_", Prim (Gate.Buf, [ "A" ], "Y"));
    ("$_NOT_", Prim (Gate.Not, [ "A" ], "Y"));
    ("$_AND_", Prim (Gate.And, [ "A"; "B" ], "Y"));
    ("$_NAND_", Prim (Gate.Nand, [ "A"; "B" ], "Y"));
    ("$_OR_", Prim (Gate.Or, [ "A"; "B" ], "Y"));
    ("$_NOR_", Prim (Gate.Nor, [ "A"; "B" ], "Y"));
    ("$_XOR_", Prim (Gate.Xor, [ "A"; "B" ], "Y"));
    ("$_XNOR_", Prim (Gate.Xnor, [ "A"; "B" ], "Y"));
    ("$_ANDNOT_", Andnot);
    ("$_ORNOT_", Ornot);
    ("$_MUX_", Mux);
    ("$_DFF_P_", Dff_cell { data = "D"; q = "Q"; clock = Some "C" });
    ("$_FF_", Dff_cell { data = "D"; q = "Q"; clock = None });
    ("BUF", Prim (Gate.Buf, [ "A" ], "Y"));
    ("BUFF", Prim (Gate.Buf, [ "A" ], "Y"));
    ("NOT", Prim (Gate.Not, [ "A" ], "Y"));
    ("INV", Prim (Gate.Not, [ "A" ], "Y"));
    ("AND2", Prim (Gate.And, [ "A"; "B" ], "Y"));
    ("NAND2", Prim (Gate.Nand, [ "A"; "B" ], "Y"));
    ("OR2", Prim (Gate.Or, [ "A"; "B" ], "Y"));
    ("NOR2", Prim (Gate.Nor, [ "A"; "B" ], "Y"));
    ("XOR2", Prim (Gate.Xor, [ "A"; "B" ], "Y"));
    ("XNOR2", Prim (Gate.Xnor, [ "A"; "B" ], "Y"));
    ("MUX2", Mux);
    ("DFF", Dff_cell { data = "D"; q = "Q"; clock = Some "C" });
  ]

let find_cell name = List.assoc_opt name cells

let cell_input_formals = function
  | Prim (_, ins, _) -> ins
  | Andnot | Ornot -> [ "A"; "B" ]
  | Mux -> [ "A"; "B"; "S" ]
  | Dff_cell { data; _ } -> [ data ]

let cell_output_formal = function
  | Prim (_, _, out) -> out
  | Andnot | Ornot | Mux -> "Y"
  | Dff_cell { q; _ } -> q

let cell_ignored_formals = function
  | Dff_cell { clock = Some c; _ } -> [ c ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Elaboration.  Two passes over the (flattened) instance tree with    *)
(* identical traversal order: pass A claims every defined signal name, *)
(* pass B emits gates — so fresh intermediate names (cover and cell    *)
(* decompositions) can be checked against signals defined anywhere,    *)
(* including later in the file or in a later instance.                 *)

type st = {
  builder : Builder.t;
  models : (string, model) Hashtbl.t;
  claimed : (string, int) Hashtbl.t; (* final signal name -> def line *)
  mutable uses_rev : (string * int * string) list;
  counters : (string, int ref) Hashtbl.t; (* per-model instance counter *)
}

let claim st line name =
  (match Hashtbl.find_opt st.claimed name with
  | Some first ->
    error line "signal %S already defined at line %d" name first
  | None -> ());
  Hashtbl.add st.claimed name line

let use st line context signal =
  st.uses_rev <- (signal, line, context) :: st.uses_rev

let fresh st line base =
  let rec go k =
    let candidate = Printf.sprintf "%s$t%d" base k in
    if Hashtbl.mem st.claimed candidate then go (k + 1)
    else begin
      Hashtbl.add st.claimed candidate line;
      candidate
    end
  in
  go 0

let add_gate st line ~output kind fanins =
  (try Builder.add_gate st.builder ~output kind fanins
   with Failure message -> error line "%s" message);
  List.iter (use st line (Printf.sprintf "gate %S" output)) fanins

let instance_index st model_name =
  match Hashtbl.find_opt st.counters model_name with
  | Some r ->
    incr r;
    !r - 1
  | None ->
    Hashtbl.add st.counters model_name (ref 1);
    0

let binding_map line kw callee ~input_formals ~output_formal ~ignored bindings =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (formal, actual) ->
      if Hashtbl.mem seen formal then
        error line "%s %s binds port %S twice" kw callee formal;
      Hashtbl.add seen formal actual;
      if
        (not (List.mem formal input_formals))
        && formal <> output_formal
        && not (List.mem formal ignored)
      then error line "%s %s has no port %S" kw callee formal)
    bindings;
  let input actual_of formal =
    match Hashtbl.find_opt seen formal with
    | Some actual -> actual_of actual
    | None -> error line "%s %s: missing binding for input %S" kw callee formal
  in
  let output () =
    match Hashtbl.find_opt seen output_formal with
    | Some actual -> Some actual
    | None -> None
  in
  (input, output)

(* Cover classification.  The canonical forms (what Blif_writer emits,
   and what Yosys emits for simple gates) map onto single primitives so
   a round trip preserves structure; everything else falls back to a
   sum-of-products decomposition with fresh intermediate nodes. *)

let all_char c p = String.for_all (fun x -> x = c) p

let one_hot_positions c rows =
  (* Every row has exactly one [c], rest '-'; together they hit each
     column exactly once.  Returns true iff the rows form that shape. *)
  let n = String.length (List.hd rows) in
  if List.length rows <> n then false
  else begin
    let hit = Array.make n false in
    List.for_all
      (fun p ->
        let pos = ref None and ok = ref true in
        String.iteri
          (fun i x ->
            if x = c then begin
              if !pos <> None then ok := false;
              pos := Some i
            end
            else if x <> '-' then ok := false)
          p;
        match (!ok, !pos) with
        | true, Some i when not hit.(i) ->
          hit.(i) <- true;
          true
        | _ -> false)
      rows
  end

let parity_of p =
  let ones = ref 0 in
  String.iter (fun c -> if c = '1' then incr ones) p;
  !ones land 1

let is_parity rows =
  (* All rows are full minterms, distinct, 2^(n-1) of them, constant
     parity: the cover of an XOR (odd) or XNOR (even). *)
  let n = String.length (List.hd rows) in
  if n < 2 || n > 16 then None
  else if List.exists (fun p -> String.contains p '-') rows then None
  else if List.length rows <> 1 lsl (n - 1) then None
  else begin
    let tbl = Hashtbl.create 64 in
    let distinct = List.for_all (fun p ->
        if Hashtbl.mem tbl p then false
        else begin Hashtbl.add tbl p (); true end) rows
    in
    if not distinct then None
    else
      match rows with
      | [] -> None
      | first :: rest ->
        let par = parity_of first in
        if List.for_all (fun p -> parity_of p = par) rest then Some par
        else None
  end

type lit = { signal : string; positive : bool }

let row_literals xs pattern =
  let lits = ref [] in
  String.iteri
    (fun i c ->
      match c with
      | '1' -> lits := { signal = List.nth xs i; positive = true } :: !lits
      | '0' -> lits := { signal = List.nth xs i; positive = false } :: !lits
      | _ -> ())
    pattern;
  List.rev !lits

let emit_cover st ~line xs output rows =
  let n = List.length xs in
  (* Uniform output value: BLIF defines a cover as ON-set or OFF-set. *)
  let value =
    match rows with
    | [] -> '1' (* irrelevant: empty cover is constant 0 *)
    | (_, _, v) :: rest ->
      List.iter
        (fun (rline, _, v') ->
          if v' <> v then
            error rline "cover mixes output values 0 and 1")
        rest;
      v
  in
  let patterns = List.map (fun (_, p, _) -> p) rows in
  let gate kind fanins = add_gate st line ~output kind fanins in
  match (patterns, value) with
  | [], _ -> gate Gate.Const0 []
  | _ when n = 0 ->
    (* Constant covers: any '1' row makes it 1; a '0' row covers the
       whole (empty) input space with 0. *)
    if value = '1' then gate Gate.Const1 [] else gate Gate.Const0 []
  | _ when List.exists (all_char '-') patterns ->
    (* A row of dashes covers everything: the cover is constant. *)
    if value = '1' then gate Gate.Const1 [] else gate Gate.Const0 []
  | [ p ], v when all_char '1' p ->
    if n = 1 then gate (if v = '1' then Gate.Buf else Gate.Not) xs
    else gate (if v = '1' then Gate.And else Gate.Nand) xs
  | [ p ], v when all_char '0' p ->
    if n = 1 then gate (if v = '1' then Gate.Not else Gate.Buf) xs
    else gate (if v = '1' then Gate.Nor else Gate.Or) xs
  | _, v when n >= 2 && one_hot_positions '1' patterns ->
    gate (if v = '1' then Gate.Or else Gate.Nor) xs
  | _, v when n >= 2 && one_hot_positions '0' patterns ->
    gate (if v = '1' then Gate.Nand else Gate.And) xs
  | _, v when is_parity patterns <> None -> begin
    match (Option.get (is_parity patterns), v) with
    | 1, '1' | 0, '0' -> gate Gate.Xor xs
    | _ -> gate Gate.Xnor xs
  end
  | _, v ->
    (* Sum-of-products fallback: NOT nodes for negative literals (shared
       within the cover), an AND per multi-literal row, an OR across
       rows; an OFF-set cover folds the final complement into the last
       gate (NOR / NAND / NOT). *)
    let not_cache = Hashtbl.create 8 in
    let negated signal =
      match Hashtbl.find_opt not_cache signal with
      | Some g -> g
      | None ->
        let g = fresh st line output in
        add_gate st line ~output:g Gate.Not [ signal ];
        Hashtbl.add not_cache signal g;
        g
    in
    let terms =
      List.map
        (fun (_, p, _) ->
          let lits = row_literals xs p in
          match lits with
          | [] -> assert false (* all-dash handled above *)
          | lits -> lits)
        rows
    in
    let term_signal lits =
      match lits with
      | [ { signal; positive = true } ] -> signal
      | [ { signal; positive = false } ] -> negated signal
      | lits ->
        let fanins =
          List.map
            (fun l -> if l.positive then l.signal else negated l.signal)
            lits
        in
        let g = fresh st line output in
        add_gate st line ~output:g Gate.And fanins;
        g
    in
    (match (terms, v) with
    | [ [ { signal; positive } ] ], '1' ->
      gate (if positive then Gate.Buf else Gate.Not) [ signal ]
    | [ [ { signal; positive } ] ], _ ->
      gate (if positive then Gate.Not else Gate.Buf) [ signal ]
    | [ lits ], '1' ->
      gate Gate.And
        (List.map
           (fun l -> if l.positive then l.signal else negated l.signal)
           lits)
    | [ lits ], _ ->
      gate Gate.Nand
        (List.map
           (fun l -> if l.positive then l.signal else negated l.signal)
           lits)
    | terms, '1' -> gate Gate.Or (List.map term_signal terms)
    | terms, _ -> gate Gate.Nor (List.map term_signal terms))

(* Pass A/B over one model instance.  [rename] maps the model's own
   signal names to final netlist names; for the top model it is the
   identity.  [stack] carries the model names being elaborated for
   recursion detection. *)

let rec walk st ~emit ~stack ~rename (m : model) =
  List.iter
    (fun stmt ->
      match stmt with
      | Names { line; inputs; output; rows } ->
        if emit then
          emit_cover st ~line (List.map (rename line) inputs)
            (rename line output) rows
        else claim st line (rename line output)
      | Latch { line; input; output } ->
        if emit then
          add_gate st line ~output:(rename line output) Gate.Dff
            [ rename line input ]
        else claim st line (rename line output)
      | Subckt { line; kw; callee; bindings } -> begin
        match find_cell callee with
        | Some cell ->
          elaborate_cell st ~emit ~rename line kw callee cell bindings
        | None ->
          if kw = ".gate" then
            error line "unknown library gate %S" callee
          else begin
            match Hashtbl.find_opt st.models callee with
            | None -> error line "unknown cell or model %S" callee
            | Some sub ->
              if List.mem callee stack then
                error line "recursive instantiation of model %S" callee;
              elaborate_model_instance st ~emit ~stack ~rename line callee sub
                bindings
          end
      end)
    (List.rev m.stmts_rev)

and elaborate_cell st ~emit ~rename line kw callee cell bindings =
  let input_formals = cell_input_formals cell in
  let output_formal = cell_output_formal cell in
  let ignored = cell_ignored_formals cell in
  let input, output =
    binding_map line kw callee ~input_formals ~output_formal ~ignored bindings
  in
  let actual_of a = rename line a in
  let out =
    match output () with
    | Some actual -> rename line actual
    | None ->
      error line "%s %s: missing binding for output %S" kw callee output_formal
  in
  if not emit then claim st line out
  else begin
    match cell with
    | Prim (kind, formals, _) ->
      add_gate st line ~output:out kind
        (List.map (fun f -> input actual_of f) formals)
    | Andnot ->
      let a = input actual_of "A" and b = input actual_of "B" in
      let nb = fresh st line out in
      add_gate st line ~output:nb Gate.Not [ b ];
      add_gate st line ~output:out Gate.And [ a; nb ]
    | Ornot ->
      let a = input actual_of "A" and b = input actual_of "B" in
      let nb = fresh st line out in
      add_gate st line ~output:nb Gate.Not [ b ];
      add_gate st line ~output:out Gate.Or [ a; nb ]
    | Mux ->
      (* Y = (A & ~S) | (B & S) *)
      let a = input actual_of "A"
      and b = input actual_of "B"
      and s = input actual_of "S" in
      let ns = fresh st line out in
      add_gate st line ~output:ns Gate.Not [ s ];
      let t0 = fresh st line out in
      add_gate st line ~output:t0 Gate.And [ a; ns ];
      let t1 = fresh st line out in
      add_gate st line ~output:t1 Gate.And [ b; s ];
      add_gate st line ~output:out Gate.Or [ t0; t1 ]
    | Dff_cell { data; _ } ->
      add_gate st line ~output:out Gate.Dff [ input actual_of data ]
  end

and elaborate_model_instance st ~emit ~stack ~rename line callee sub bindings =
  let sub_inputs = List.rev_map snd sub.inputs_rev in
  let sub_outputs = List.rev_map snd sub.outputs_rev in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (formal, actual) ->
      if Hashtbl.mem seen formal then
        error line ".subckt %s binds port %S twice" callee formal;
      Hashtbl.add seen formal actual;
      if
        (not (List.mem formal sub_inputs))
        && not (List.mem formal sub_outputs)
      then error line "model %S has no port %S" callee formal)
    bindings;
  List.iter
    (fun formal ->
      if not (Hashtbl.mem seen formal) then
        error line ".subckt %s: missing binding for input %S" callee formal)
    sub_inputs;
  let k = instance_index st callee in
  let prefix = Printf.sprintf "%s$%d." callee k in
  let inner_rename iline signal =
    if List.mem signal sub_inputs then begin
      (* Input formal: stands for the outer actual. *)
      rename iline (Hashtbl.find seen signal)
    end
    else
      match Hashtbl.find_opt seen signal with
      | Some actual when List.mem signal sub_outputs -> rename iline actual
      | _ -> prefix ^ signal
  in
  walk st ~emit ~stack:(callee :: stack) ~rename:inner_rename sub;
  (* A model output that is also a model input is a feed-through: the
     binding must still be driven, so emit a BUF from the input's
     actual. *)
  List.iter
    (fun formal ->
      if List.mem formal sub_inputs then
        match Hashtbl.find_opt seen formal with
        | Some actual ->
          let out = rename line actual in
          if emit then
            add_gate st line ~output:out Gate.Buf
              [ rename line (Hashtbl.find seen formal) ]
          else claim st line out
        | None -> ())
    sub_outputs

let parse_string ~name text =
  let models = group_models (logical_lines text) in
  match models with
  | [] -> error 0 "no .model in file"
  | top :: _ ->
    let models_tbl = Hashtbl.create 8 in
    List.iter
      (fun m ->
        match m.mname with
        | None -> ()
        | Some n ->
          (match Hashtbl.find_opt models_tbl n with
          | Some (prev : model) ->
            error m.mline "model %S already defined at line %d" n prev.mline
          | None -> ());
          Hashtbl.add models_tbl n m)
      models;
    let builder = Builder.create ~name in
    let claimed = Hashtbl.create 256 in
    let run emit =
      let st =
        { builder;
          models = models_tbl;
          claimed;
          uses_rev = [];
          counters = Hashtbl.create 8 }
      in
      let identity line s = ignore line; s in
      (* Top-level primary inputs. *)
      List.iter
        (fun (line, s) ->
          if emit then begin
            (try Builder.add_input builder s
             with Failure message -> error line "%s" message)
          end
          else claim st line s)
        (List.rev top.inputs_rev);
      let stack = match top.mname with Some n -> [ n ] | None -> [] in
      walk st ~emit ~stack ~rename:identity top;
      if emit then
        List.iter
          (fun (line, s) ->
            use st line ".outputs" s;
            Builder.add_output builder s)
          (List.rev top.outputs_rev);
      st
    in
    (* Pass A claims every defined name (also catching duplicate
       drivers with both line numbers); pass B repeats the identical
       traversal on the now-complete claim table and emits gates, so
       fresh intermediate names are checked against signals defined
       anywhere in the file — including later statements and later
       instances. *)
    let (_ : st) = run false in
    let stB = run true in
    List.iter
      (fun (signal, lineno, context) ->
        if not (Hashtbl.mem stB.claimed signal) then
          error lineno "%s references undefined signal %S" context signal)
      (List.rev stB.uses_rev);
    (try Builder.finalize builder
     with Failure message -> error 0 "%s" message)

let parse_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let base = Filename.remove_extension (Filename.basename path) in
  parse_string ~name:base text
