exception Invalid_name of { name : string; reason : string }

let () =
  Printexc.register_printer (function
    | Invalid_name { name; reason } ->
      Some (Printf.sprintf "name %S cannot be serialized: %s" name reason)
    | _ -> None)

type format = Bench | Blif

let is_space c = c = ' ' || c = '\t' || c = '\r' || c = '\n'

(* Per-character legality; positional rules (BLIF's leading '.' and
   trailing '\') are checked separately in [ok] and repaired separately
   in [mangle]. *)
let char_ok fmt c =
  match fmt with
  | Bench ->
    (match c with
     | '(' | ')' | ',' | '=' | '#' -> false
     | c -> not (is_space c))
  | Blif -> c <> '#' && not (is_space c)

let all_chars_ok fmt s = not (String.exists (fun c -> not (char_ok fmt c)) s)

let ok fmt s =
  s <> ""
  && all_chars_ok fmt s
  &&
  match fmt with
  | Bench -> true
  | Blif -> s.[0] <> '.' && s.[String.length s - 1] <> '\\'

(* The reason strings double as user-facing diagnostics, so they name
   the offending character rather than just "invalid". *)
let reason fmt s =
  if s = "" then "empty name"
  else
    match String.to_seq s |> Seq.find (fun c -> not (char_ok fmt c)) with
    | Some c -> Printf.sprintf "contains %C" c
    | None ->
      if s.[0] = '.' then "starts with '.'" else "ends with '\\'"

type plan = {
  emitted : string array;
  renamed : (Netlist.node * string * string) list;
}

let mangle fmt s =
  if s = "" then "_"
  else begin
    let b = Bytes.of_string s in
    for i = 0 to Bytes.length b - 1 do
      if not (char_ok fmt (Bytes.get b i)) then Bytes.set b i '_'
    done;
    (match fmt with
    | Bench -> ()
    | Blif ->
      if Bytes.get b 0 = '.' then Bytes.set b 0 '_';
      if Bytes.get b (Bytes.length b - 1) = '\\' then
        Bytes.set b (Bytes.length b - 1) '_');
    Bytes.to_string b
  end

let plan fmt c =
  let n = Netlist.size c in
  let taken = Hashtbl.create (2 * n) in
  for i = 0 to n - 1 do
    let name = Netlist.name c i in
    if ok fmt name then Hashtbl.replace taken name ()
  done;
  let emitted = Array.make n "" in
  let renamed = ref [] in
  for i = 0 to n - 1 do
    let name = Netlist.name c i in
    if ok fmt name then emitted.(i) <- name
    else begin
      let base = mangle fmt name in
      let fresh =
        if not (Hashtbl.mem taken base) then base
        else begin
          let k = ref 2 in
          while Hashtbl.mem taken (Printf.sprintf "%s_%d" base !k) do
            incr k
          done;
          Printf.sprintf "%s_%d" base !k
        end
      in
      Hashtbl.replace taken fresh ();
      emitted.(i) <- fresh;
      renamed := (i, fresh, name) :: !renamed
    end
  done;
  { emitted; renamed = List.rev !renamed }

let out_name p n = p.emitted.(n)
let renamed p = p.renamed

let check_strict fmt c =
  let n = Netlist.size c in
  for i = 0 to n - 1 do
    let name = Netlist.name c i in
    if not (ok fmt name) then
      raise (Invalid_name { name; reason = reason fmt name })
  done

let sanitize_token = mangle

let comment_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if Char.code c < 0x20 || c = '\x7f' then
        Buffer.add_string b (String.escaped (String.make 1 c))
      else Buffer.add_char b c)
    s;
  Buffer.contents b
