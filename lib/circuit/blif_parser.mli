(** Parser for the Berkeley Logic Interchange Format (BLIF) — the
    netlist format synthesis flows (Yosys, SIS, ABC) actually emit — onto
    the same {!Netlist} every other frontend produces, so a synthesized
    design drops into generation, lint and injection unmodified.

    Accepted constructs:
    {v
    .model <name>            # one or more models; the first is the top
    .inputs  a b c ...       # repeatable, appended
    .outputs x y ...
    .names a b ... f         # single-output cover; rows on the lines
    11- 1                    #   below, [01-]* then the output value
    .latch d q [<type> <ctl>] [<init>]
    .subckt <model-or-cell> formal=actual ...
    .gate <cell> formal=actual ...
    .end
    v}
    Lines ending in [\\] continue on the next line; [#] starts a
    comment; [.clock] is accepted and ignored.

    - Every [.names] cover is decomposed onto the gate primitives.
      Covers matching a primitive exactly (the forms {!Blif_writer}
      emits: single all-1 / all-0 rows, one-hot rows, parity rows,
      constant covers) map to that single AND / NAND / OR / NOR / NOT /
      BUF / XOR / XNOR / CONST gate; anything else becomes a
      sum-of-products tree of fresh AND / OR / NOT nodes named
      [<output>$t<k>] (collision-checked against every signal in the
      design).
    - [.latch] maps to a DFF. Only rising-edge latches are supported:
      an explicit type other than [re] is a typed error, as is an
      initial value of [0] or [1] (the simulator starts from the all-X
      state and cannot honour a defined reset value; [2] = don't-care,
      [3] = unknown and an absent init are accepted). The control
      (clock) operand is recorded syntactically but not required to be
      a defined signal.
    - [.subckt]/[.gate] instances resolve first against the library
      cell table (the Yosys internal cells [$_BUF_], [$_NOT_],
      [$_AND_], [$_NAND_], [$_OR_], [$_NOR_], [$_XOR_], [$_XNOR_],
      [$_ANDNOT_], [$_ORNOT_], [$_AOI3_]-free [$_MUX_], the flip-flops
      [$_DFF_P_] / [$_FF_], plus the plain aliases BUF, INV/NOT, AND2,
      NAND2, OR2, NOR2, XOR2, XNOR2, MUX2, DFF), then against the other
      [.model]s of the same file, which are flattened structurally with
      instance-prefixed internal names ([<model>$<k>.<signal>]).
      Recursive model instantiation is a typed error.

    The top model's [.inputs]/[.outputs] become the primary ports; the
    circuit label comes from the [name] argument (for {!parse_file},
    the basename without extension), matching {!Bench_parser}. *)

exception Parse_error of { line : int; message : string }
(** Same discipline as {!Bench_parser.Parse_error}: malformed input
    raises this and nothing else, with the offending line number, or
    line 0 for whole-netlist rejections (a combinational loop, an empty
    model). *)

val parse_string : name:string -> string -> Netlist.t

val parse_file : string -> Netlist.t
(** Reads the file; the circuit name is the basename without
    extension. *)
