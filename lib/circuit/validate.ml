type report = {
  dangling : Netlist.node list;
  unobservable : Netlist.node list;
  uncontrollable_ffs : Netlist.node list;
  maybe_uninitializable_ffs : Netlist.node list;
}

let dangling c =
  let out = ref [] in
  for n = Netlist.size c - 1 downto 0 do
    if Netlist.fanout_count c n = 0 then out := n :: !out
  done;
  !out

(* Backward reachability from the primary outputs over fanin edges
   (crossing flip-flops: a node observed only through state is still
   observable, one or more clocks later). *)
let unobservable c =
  let reachable = Array.make (Netlist.size c) false in
  let rec visit n =
    if not reachable.(n) then begin
      reachable.(n) <- true;
      Array.iter visit (Netlist.fanins c n)
    end
  in
  Array.iter visit (Netlist.outputs c);
  let out = ref [] in
  for n = Netlist.size c - 1 downto 0 do
    if not reachable.(n) then out := n :: !out
  done;
  !out

(* Forward reachability from the primary inputs. A flip-flop outside it
   can never be influenced from outside the chip. *)
let uncontrollable_ffs c =
  let reached = Array.make (Netlist.size c) false in
  let rec visit n =
    if not reached.(n) then begin
      reached.(n) <- true;
      Array.iter visit (Netlist.fanouts c n)
    end
  in
  Array.iter visit (Netlist.inputs c);
  Array.to_list (Netlist.dffs c)
  |> List.filter (fun ff -> not reached.(ff))

(* Achievable-value fixpoint. For every node, compute the set of binary
   values (a 2-bit mask: bit 0 = "0 achievable", bit 1 = "1 achievable")
   that some primary-input assignment can drive onto it, treating
   flip-flops as sources whose achievable set comes from their D input in
   the previous iteration (i.e. one more clock of preparation). The
   propagation is optimistic — it ignores that reconvergent paths may
   need contradictory PI values — so an empty final set is a reliable
   "this flip-flop can never leave X" signal, while a non-empty set is
   only a hint. *)
let achievable_rounds c =
  let n = Netlist.size c in
  let can = Array.make n 0 in
  Array.iter (fun pi -> can.(pi) <- 0b11) (Netlist.inputs c);
  let has0 m = m land 0b01 <> 0 and has1 m = m land 0b10 <> 0 in
  let swap m = ((m land 1) lsl 1) lor (m lsr 1) in
  let eval node =
    let fanins = Netlist.fanins c node in
    let fold_all f = Array.for_all (fun d -> f can.(d)) fanins in
    let fold_any f = Array.exists (fun d -> f can.(d)) fanins in
    match Netlist.kind c node with
    | Gate.Input | Gate.Dff -> can.(node)
    | Gate.Const0 -> 0b01
    | Gate.Const1 -> 0b10
    | Gate.Buf -> can.(fanins.(0))
    | Gate.Not -> swap can.(fanins.(0))
    | Gate.And ->
      (if fold_any has0 then 0b01 else 0) lor (if fold_all has1 then 0b10 else 0)
    | Gate.Nand ->
      swap ((if fold_any has0 then 0b01 else 0) lor (if fold_all has1 then 0b10 else 0))
    | Gate.Or ->
      (if fold_any has1 then 0b10 else 0) lor (if fold_all has0 then 0b01 else 0)
    | Gate.Nor ->
      swap ((if fold_any has1 then 0b10 else 0) lor (if fold_all has0 then 0b01 else 0))
    | Gate.Xor | Gate.Xnor ->
      (* Parity: achievable results of folding the fanin sets. *)
      let acc = ref 0b01 (* empty fold = 0 *) in
      Array.iter
        (fun d ->
          let m = can.(d) in
          let next = ref 0 in
          if has0 !acc && has0 m then next := !next lor 0b01;
          if has1 !acc && has1 m then next := !next lor 0b01;
          if has0 !acc && has1 m then next := !next lor 0b10;
          if has1 !acc && has0 m then next := !next lor 0b10;
          acc := !next)
        fanins;
      if Netlist.kind c node = Gate.Xnor then swap !acc else !acc
  in
  let dffs = Netlist.dffs c in
  let rounds = Array.make (Array.length dffs) (-1) in
  let changed = ref true in
  let round = ref 0 in
  while !changed do
    changed := false;
    Array.iter
      (fun node ->
        let v = eval node in
        if v <> can.(node) then begin
          can.(node) <- v;
          changed := true
        end)
      (Netlist.topo_order c);
    (* Two-phase flip-flop update: every D set is read against the state
       of the previous round, so [rounds] counts exact synchronous clock
       rounds even when one flip-flop directly feeds another. *)
    let next = Array.map (fun ff -> can.(ff) lor can.((Netlist.fanins c ff).(0))) dffs in
    Array.iteri
      (fun i ff ->
        if next.(i) <> can.(ff) then begin
          can.(ff) <- next.(i);
          changed := true
        end;
        if rounds.(i) = -1 && can.(ff) <> 0 then rounds.(i) <- !round)
      dffs;
    incr round
  done;
  (can, rounds)

let achievable c = fst (achievable_rounds c)

let maybe_uninitializable_ffs c =
  let can = achievable c in
  Array.to_list (Netlist.dffs c) |> List.filter (fun ff -> can.(ff) = 0)

let check c =
  {
    dangling = dangling c;
    unobservable = unobservable c;
    uncontrollable_ffs = uncontrollable_ffs c;
    maybe_uninitializable_ffs = maybe_uninitializable_ffs c;
  }

let is_clean r =
  r.dangling = [] && r.unobservable = [] && r.uncontrollable_ffs = []
  && r.maybe_uninitializable_ffs = []

let pp c fmt r =
  let section title nodes =
    match nodes with
    | [] -> ()
    | _ ->
      Format.fprintf fmt "%s (%d): %s@." title (List.length nodes)
        (String.concat " " (List.map (Netlist.name c) nodes))
  in
  if is_clean r then Format.fprintf fmt "no structural findings@."
  else begin
    section "dangling nodes" r.dangling;
    section "unobservable nodes" r.unobservable;
    section "uncontrollable flip-flops" r.uncontrollable_ffs;
    section "possibly uninitializable flip-flops" r.maybe_uninitializable_ffs
  end
