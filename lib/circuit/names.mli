(** Netlist-name hygiene shared by the serializers.

    {!Netlist} accepts arbitrary strings as node names (the programmatic
    {!Builder} never restricts them, and the BLIF frontend produces
    whatever a synthesis tool emitted), but each on-disk format only
    round-trips a subset: [.bench] names cannot contain whitespace,
    parentheses, commas, ['='] or ['#']; BLIF tokens cannot contain
    whitespace or ['#'] (comment start), end in ['\\'] (line
    continuation) or start with ['.'] (directive prefix). A writer
    facing a name outside its format either renames it (the default,
    via {!plan}) or refuses with the typed {!Invalid_name} (the strict
    path). *)

exception Invalid_name of { name : string; reason : string }
(** Raised by the strict writer paths for the first name the target
    format cannot represent. *)

type format = Bench | Blif

val ok : format -> string -> bool
(** Whether the format can round-trip this name verbatim. *)

type plan
(** A deterministic, collision-free renaming of the nodes whose names a
    format cannot represent. Nodes with representable names keep them
    verbatim. *)

val plan : format -> Netlist.t -> plan
(** Invalid names are mangled by replacing each offending character with
    ['_'] (an empty name becomes ["_"]); a mangled name that collides
    with a kept original or an earlier rename gets a ["_2"], ["_3"], ...
    suffix. The result depends only on the circuit, never on ambient
    state. *)

val out_name : plan -> Netlist.node -> string
(** The name to emit for this node. *)

val renamed : plan -> (Netlist.node * string * string) list
(** [(node, emitted, original)] for every renamed node, in node order —
    what the writers record in header comments so the original names
    survive in the artifact. *)

val check_strict : format -> Netlist.t -> unit
(** Raise {!Invalid_name} on the first (lowest-numbered) node whose name
    the format cannot represent; return silently otherwise. *)

val comment_escape : string -> string
(** Make a string safe for a single-line [#] comment: control characters
    (newlines included) are rendered as OCaml-style escapes. *)

val sanitize_token : format -> string -> string
(** The mangling step of {!plan} alone (no collision handling): replace
    each character the format cannot represent with ['_'], repair BLIF's
    positional rules, map the empty string to ["_"]. A valid name passes
    through unchanged. Used for free-standing tokens such as the BLIF
    [.model] name, which live outside the node namespace. *)
