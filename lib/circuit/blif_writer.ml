let chunks k xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = k then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

(* Minterm patterns of a given popcount parity, in counting order: the
   canonical cover Blif_parser recognizes as XOR (odd) / XNOR (even). *)
let parity_rows buf n want_parity =
  for m = 0 to (1 lsl n) - 1 do
    let ones = ref 0 in
    for i = 0 to n - 1 do
      if m land (1 lsl i) <> 0 then incr ones
    done;
    if !ones land 1 = want_parity then begin
      for i = 0 to n - 1 do
        Buffer.add_char buf (if m land (1 lsl i) <> 0 then '1' else '0')
      done;
      Buffer.add_string buf " 1\n"
    end
  done

let max_parity_arity = 16

let to_string ?(strict = false) c =
  if strict then Names.check_strict Names.Blif c;
  let plan = Names.plan Names.Blif c in
  let name = Names.out_name plan in
  let taken = Hashtbl.create (2 * Netlist.size c) in
  for n = 0 to Netlist.size c - 1 do
    Hashtbl.replace taken (name n) ()
  done;
  let fresh base =
    let rec go k =
      let candidate = Printf.sprintf "%s$x%d" base k in
      if Hashtbl.mem taken candidate then go (k + 1)
      else begin
        Hashtbl.replace taken candidate ();
        candidate
      end
    in
    go 0
  in
  let buf = Buffer.create 4096 in
  let header_name s =
    let s =
      match String.index_opt s '\n' with
      | Some i -> String.sub s 0 i
      | None -> s
    in
    Names.comment_escape s
  in
  Buffer.add_string buf
    (Printf.sprintf "# %s\n" (header_name (Netlist.circuit_name c)));
  Buffer.add_string buf
    (Printf.sprintf "# %d inputs, %d outputs, %d flip-flops, %d gates\n"
       (Netlist.num_inputs c) (Netlist.num_outputs c) (Netlist.num_dffs c)
       (Netlist.num_gates c));
  List.iter
    (fun (_, emitted, original) ->
      Buffer.add_string buf
        (Printf.sprintf "# renamed: %s was \"%s\"\n" emitted
           (Names.comment_escape original)))
    (Names.renamed plan);
  Buffer.add_string buf
    (Printf.sprintf ".model %s\n"
       (Names.sanitize_token Names.Blif (Netlist.circuit_name c)));
  let port directive nodes =
    List.iter
      (fun group ->
        Buffer.add_string buf directive;
        List.iter
          (fun n ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (name n))
          group;
        Buffer.add_char buf '\n')
      (chunks 10 (Array.to_list nodes))
  in
  port ".inputs" (Netlist.inputs c);
  port ".outputs" (Netlist.outputs c);
  let names_header fanin_names out =
    Buffer.add_string buf ".names";
    List.iter
      (fun f ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf f)
      fanin_names;
    Buffer.add_char buf ' ';
    Buffer.add_string buf out;
    Buffer.add_char buf '\n'
  in
  let row pattern value =
    if pattern <> "" then begin
      Buffer.add_string buf pattern;
      Buffer.add_char buf ' '
    end;
    Buffer.add_char buf value;
    Buffer.add_char buf '\n'
  in
  (* One canonical cover per gate kind — exactly the forms the parser
     maps back to a single primitive. *)
  let emit_simple kind fanin_names out =
    let n = List.length fanin_names in
    names_header fanin_names out;
    match (kind : Gate.kind) with
    | Gate.And -> row (String.make n '1') '1'
    | Gate.Nand -> row (String.make n '1') '0'
    | Gate.Or ->
      List.iteri
        (fun i _ ->
          let p = Bytes.make n '-' in
          Bytes.set p i '1';
          row (Bytes.to_string p) '1')
        fanin_names
    | Gate.Nor ->
      List.iteri
        (fun i _ ->
          let p = Bytes.make n '-' in
          Bytes.set p i '1';
          row (Bytes.to_string p) '0')
        fanin_names
    | Gate.Not -> row "0" '1'
    | Gate.Buf -> row "1" '1'
    | Gate.Xor -> parity_rows buf n 1
    | Gate.Xnor -> parity_rows buf n 0
    | Gate.Const0 -> ()
    | Gate.Const1 -> row "" '1'
    | Gate.Input | Gate.Dff -> assert false
  in
  let emit_parity_chain kind fanin_names out =
    (* Arity beyond the parser's parity-recognition bound: a chain of
       2-input gates through fresh nodes (re-parses as this chain). *)
    match fanin_names with
    | a :: b :: rest ->
      let final_kind = (kind : Gate.kind) in
      let rec go acc = function
        | [] -> assert false
        | [ last ] -> emit_simple final_kind [ acc; last ] out
        | x :: rest ->
          let t = fresh out in
          emit_simple Gate.Xor [ acc; x ] t;
          go t rest
      in
      let t0 = fresh out in
      emit_simple Gate.Xor [ a; b ] t0;
      go t0 rest
    | _ -> assert false
  in
  for n = 0 to Netlist.size c - 1 do
    let kind = Netlist.kind c n in
    match kind with
    | Gate.Input -> ()
    | Gate.Dff ->
      let d = name (Netlist.fanins c n).(0) in
      Buffer.add_string buf (Printf.sprintf ".latch %s %s 2\n" d (name n))
    | Gate.Xor | Gate.Xnor
      when Array.length (Netlist.fanins c n) > max_parity_arity ->
      emit_parity_chain kind
        (Netlist.fanins c n |> Array.to_list |> List.map name)
        (name n)
    | kind ->
      emit_simple kind
        (Netlist.fanins c n |> Array.to_list |> List.map name)
        (name n)
  done;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let to_file ?strict c path =
  Bist_resilience.Atomic_io.write_file ~path (to_string ?strict c)
