(** Serialization to BLIF, the inverse of {!Blif_parser}.

    Every gate is emitted as the canonical cover {!Blif_parser}
    recognizes back to the same primitive: AND / NAND as a single all-1
    row, OR / NOR as one-hot rows, NOT / BUF as their one-input covers,
    XOR / XNOR as the full parity cover (for arities up to 16 — wider
    parity gates are decomposed into a chain of 2-input gates through
    fresh [<output>$x<k>] nodes, which re-parses as that chain), CONST
    covers as empty / bare-[1] [.names], and DFFs as [.latch d q 2]
    (don't-care initial value: the netlist model starts from all-X).

    Round-trip guarantee: for a circuit whose parity gates have arity
    at most 16, [Blif_parser.parse_string ~name (to_string c)]
    reproduces [c] up to the name sanitization below — same kinds,
    fanins and port order — and serializations are stable across the
    round trip.

    Names outside the BLIF token grammar (whitespace, ['#'], leading
    ['.'], trailing ['\\']) are renamed through {!Names.plan} exactly as
    {!Bench_writer} does for [.bench], with each rename recorded in a
    [# renamed:] header comment; [~strict:true] raises
    {!Names.Invalid_name} instead. *)

val to_string : ?strict:bool -> Netlist.t -> string
(** [strict] defaults to [false] (sanitize). *)

val to_file : ?strict:bool -> Netlist.t -> string -> unit
(** Writes atomically via {!Bist_resilience.Atomic_io}, like
    {!Bench_writer.to_file}. *)
