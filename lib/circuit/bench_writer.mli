(** Serialization back to the ISCAS-89 [.bench] format.

    The [.bench] grammar cannot represent every name a {!Netlist} can
    carry (synthesis tools emit names with ['$'], ['\\'], ['['], ... —
    all fine — but a name containing whitespace, parentheses, commas,
    ['='] or ['#'] would re-parse as different tokens or not at all).
    By default the writer keeps every representable name verbatim and
    renames the rest through the deterministic, collision-free pass of
    {!Names.plan}, recording each rename as a [# renamed:] header
    comment so the original survives in the artifact. With [~strict:true]
    the writer refuses instead, raising {!Names.Invalid_name} on the
    first unrepresentable name.

    Round-trip guarantee: [parse_string (to_string c)] always succeeds
    and reproduces [c] up to that renaming (same kinds, fanins and port
    order; names equal wherever they were representable). The netlist
    content (all non-comment lines) is stable across the round trip,
    and the full text is a fixpoint from the first reparse on — only
    the [# renamed:] comments, which a reparse cannot carry, distinguish
    the first serialization. For a circuit whose names are all
    representable, [to_string (parse_string (to_string c)) = to_string
    c] exactly. *)

val to_string : ?strict:bool -> Netlist.t -> string
(** [strict] defaults to [false] (sanitize). *)

val to_file : ?strict:bool -> Netlist.t -> string -> unit
(** Writes atomically (via {!Bist_resilience.Atomic_io}): a crash
    mid-write leaves either the previous complete file or the new one,
    never a truncated [.bench] that silently parses as a different
    circuit. *)
