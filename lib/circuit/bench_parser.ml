exception Parse_error of { line : int; message : string }

let error line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let is_name_char c =
  match c with
  | ' ' | '\t' | '\r' | '\n' | '(' | ')' | ',' | '=' | '#' -> false
  | _ -> true

(* A tiny hand-rolled scanner per line: the format is simple enough that a
   lexer generator would be heavier than the grammar itself. *)
type token = Name of string | Lparen | Rparen | Comma | Equals

let tokenize lineno s =
  let tokens = ref [] in
  let n = String.length s in
  let i = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < n do
    match s.[!i] with
    | '#' -> stop := true
    | ' ' | '\t' | '\r' -> incr i
    | '(' -> tokens := Lparen :: !tokens; incr i
    | ')' -> tokens := Rparen :: !tokens; incr i
    | ',' -> tokens := Comma :: !tokens; incr i
    | '=' -> tokens := Equals :: !tokens; incr i
    | c when is_name_char c ->
      let start = !i in
      while !i < n && is_name_char s.[!i] do incr i done;
      tokens := Name (String.sub s start (!i - start)) :: !tokens
    | c -> error lineno "unexpected character %C" c
  done;
  List.rev !tokens

let parse_args lineno tokens =
  (* tokens are what follows a KIND name: ( a , b , ... ) *)
  match tokens with
  | Lparen :: rest ->
    let rec args acc = function
      | Name a :: Comma :: rest -> args (a :: acc) rest
      | Name a :: Rparen :: [] -> List.rev (a :: acc)
      | Rparen :: [] when acc = [] -> []
      | _ -> error lineno "malformed argument list"
    in
    args [] rest
  | _ -> error lineno "expected '('"

(* Definition and use sites are tracked here, not in [Builder], so that a
   duplicate definition or a dangling reference is reported as a
   [Parse_error] carrying the offending line — [Builder]'s own checks
   only back-stop programmatic construction. *)
type state = {
  builder : Builder.t;
  def_lines : (string, int) Hashtbl.t;
  mutable uses_rev : (string * int * string) list; (* signal, line, context *)
}

let define st lineno signal =
  (match Hashtbl.find_opt st.def_lines signal with
   | Some first ->
     error lineno "signal %S already defined at line %d" signal first
   | None -> ());
  Hashtbl.add st.def_lines signal lineno

let use st lineno context signal = st.uses_rev <- (signal, lineno, context) :: st.uses_rev

let parse_line st lineno line =
  match tokenize lineno line with
  | [] -> ()
  | Name kw :: rest when String.uppercase_ascii kw = "INPUT" ->
    (match parse_args lineno rest with
     | [ name ] ->
       define st lineno name;
       Builder.add_input st.builder name
     | _ -> error lineno "INPUT takes exactly one signal")
  | Name kw :: rest when String.uppercase_ascii kw = "OUTPUT" ->
    (match parse_args lineno rest with
     | [ name ] ->
       use st lineno "OUTPUT" name;
       Builder.add_output st.builder name
     | _ -> error lineno "OUTPUT takes exactly one signal")
  | Name out :: Equals :: Name kindname :: rest ->
    (match Gate.kind_of_name kindname with
     | None -> error lineno "unknown gate kind %S" kindname
     | Some Gate.Input -> error lineno "INPUT cannot appear on the right-hand side"
     | Some kind ->
       let args =
         match kind with
         | Gate.Const0 | Gate.Const1 when rest = [] -> []
         | _ -> parse_args lineno rest
       in
       if not (Gate.arity_ok kind (List.length args)) then
         error lineno "%s takes a different number of arguments" (Gate.kind_name kind);
       define st lineno out;
       List.iter (use st lineno (Printf.sprintf "gate %S" out)) args;
       Builder.add_gate st.builder ~output:out kind args)
  | _ -> error lineno "malformed statement"

let parse_string ~name text =
  let st =
    { builder = Builder.create ~name; def_lines = Hashtbl.create 64; uses_rev = [] }
  in
  let lines = String.split_on_char '\n' text in
  (* [Builder] reports its own invariant violations as [Failure] —
     correct for programmatic construction, but from the parser every
     rejection of input text must be a [Parse_error]: callers (and the
     fuzz gate) rely on malformed text never raising anything else. *)
  List.iteri
    (fun i line ->
      try parse_line st (i + 1) line
      with Failure message -> error (i + 1) "%s" message)
    lines;
  List.iter
    (fun (signal, lineno, context) ->
      if not (Hashtbl.mem st.def_lines signal) then
        error lineno "%s references undefined signal %S" context signal)
    (List.rev st.uses_rev);
  try Builder.finalize st.builder
  with Failure message ->
    (* Whole-netlist properties (a combinational loop, no outputs, ...)
       have no single offending line; 0 marks "the file as a whole". *)
    error 0 "%s" message

let parse_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let base = Filename.remove_extension (Filename.basename path) in
  parse_string ~name:base text
