(** Parser for the ISCAS-89 [.bench] netlist format.

    The accepted grammar, one statement per line:
    {v
    # comment
    INPUT(name)
    OUTPUT(name)
    name = KIND(arg1, arg2, ...)
    v}
    Keywords are case-insensitive; whitespace is free; signal names may
    contain any characters except whitespace, parentheses, commas and
    ['=']. *)

exception Parse_error of { line : int; message : string }

val parse_string : name:string -> string -> Netlist.t
(** [parse_string ~name text] parses a whole file's contents. Malformed
    input raises {!Parse_error} and nothing else — netlist-level
    rejections (a combinational loop, an empty netlist) are reported
    with line 0, meaning "the file as a whole". The
    [name] labels the circuit in reports.
    Raises {!Parse_error} — with the offending line number — on a syntax
    error, a duplicate signal definition, an unknown gate kind, or a
    reference to an undefined signal (dangling fanin or OUTPUT). *)

val parse_file : string -> Netlist.t
(** Reads the file; the circuit name is the basename without extension. *)
