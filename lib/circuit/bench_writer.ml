(* The circuit name lands in a '# ...' header comment; a name containing
   a newline would inject arbitrary lines into the emitted file, so it is
   truncated at the first newline (and stripped of other control
   characters) before interpolation. *)
let header_name s =
  let s =
    match String.index_opt s '\n' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  Names.comment_escape s

let to_string ?(strict = false) c =
  if strict then Names.check_strict Names.Bench c;
  let plan = Names.plan Names.Bench c in
  let name = Names.out_name plan in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "# %s\n" (header_name (Netlist.circuit_name c)));
  Buffer.add_string buf
    (Printf.sprintf "# %d inputs, %d outputs, %d flip-flops, %d gates\n"
       (Netlist.num_inputs c) (Netlist.num_outputs c) (Netlist.num_dffs c)
       (Netlist.num_gates c));
  List.iter
    (fun (_, emitted, original) ->
      Buffer.add_string buf
        (Printf.sprintf "# renamed: %s was \"%s\"\n" emitted
           (Names.comment_escape original)))
    (Names.renamed plan);
  Array.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (name n)))
    (Netlist.inputs c);
  Array.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (name n)))
    (Netlist.outputs c);
  for n = 0 to Netlist.size c - 1 do
    let kind = Netlist.kind c n in
    if kind <> Gate.Input then begin
      let args =
        Netlist.fanins c n |> Array.to_list |> List.map name
        |> String.concat ", "
      in
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n" (name n) (Gate.kind_name kind) args)
    end
  done;
  Buffer.contents buf

let to_file ?strict c path =
  Bist_resilience.Atomic_io.write_file ~path (to_string ?strict c)
