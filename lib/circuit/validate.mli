(** Structural diagnostics beyond the hard errors of netlist
    construction.

    Construction ({!Netlist.unsafe_make} via {!Builder} or the parser)
    already rejects broken circuits — duplicate names, dangling
    references, arity violations, combinational loops. This module
    reports the {e soft} problems that make a circuit a poor test-
    generation subject:

    - dangling nodes (no fanout and not a primary output) — faults on
      them are trivially undetectable;
    - unobservable nodes — no path to any primary output;
    - uncontrollable flip-flops — flip-flops whose D cone reaches no
      primary input, so their value can never be set from outside;
    - potentially uninitializable flip-flops — computed by an
      achievable-value fixpoint: for every node, the set of binary values
      some primary-input assignment can drive onto it, with flip-flops
      acting as sources fed by their D set from the previous iteration.
      The propagation is optimistic (it ignores that reconvergent paths
      may need contradictory PI values), so an {e empty} final set is a
      reliable "this flip-flop can never leave X under three-valued
      simulation" verdict, while a non-empty set is only a hint. *)

type report = {
  dangling : Netlist.node list;
  unobservable : Netlist.node list;
  uncontrollable_ffs : Netlist.node list;
  maybe_uninitializable_ffs : Netlist.node list;
}

val check : Netlist.t -> report

val achievable : Netlist.t -> int array
(** The achievable-value fixpoint described above, exposed for the static
    analyzers: per node, a 2-bit mask (bit 0 = "some input sequence can
    drive a 0 onto this node", bit 1 = same for 1). The propagation is
    optimistic, so the mask {e over-approximates} the truly achievable
    set: a value absent from the mask is provably unachievable, a value
    present is only plausible. An all-zero mask means the node can never
    carry a binary value under three-valued simulation. *)

val achievable_rounds : Netlist.t -> int array * int array
(** [(masks, rounds)] where [masks] is {!achievable} and [rounds.(i)] is
    the synchronous clock round at which flip-flop [(Netlist.dffs c).(i)]
    first acquired a non-empty achievable set (0 = reachable from the
    all-X state in one clock), or [-1] if it never does. *)

val is_clean : report -> bool
(** No findings in any category. *)

val pp : Netlist.t -> Format.formatter -> report -> unit
(** Human-readable summary with node names. *)
