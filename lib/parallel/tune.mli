(** Shard-granularity auto-tuning and the sequential/parallel crossover.

    Sharding a fault-simulation call over a {!Pool} costs real dispatch
    overhead (queue mutex traffic, domain wake-ups, cache-cold worker
    state). Whether that overhead pays for itself depends on how much
    work the call actually carries, so the decision is made from a
    measured cost model rather than a fixed rule:

    - every {e sequential} {!Shard.detections} execution records its
      wall time against its declared work [units] (for fault simulation,
      faults × sequence length), maintaining an EWMA of nanoseconds per
      unit — the same quantity the ["fsim.shard"] Obs span reports;
    - a call is sharded only when each prospective shard would carry at
      least {!val-min_shard_seconds} of estimated work, and never into
      more shards than that bound allows — so small circuits skip the
      pool entirely and large ones get chunks coarse enough to amortize
      dispatch;
    - on a host with a single core ([cores = 1]) sharding can never win,
      so it is skipped outright unless explicitly forced.

    The [BIST_SHARD_MIN] environment variable overrides the cost model
    with a fixed minimum number of units per shard; [BIST_SHARD_MIN=0]
    forces sharding whenever a multi-worker pool is present — that is
    how the smoke scripts and tests exercise the parallel machinery on
    single-core hosts. Crossing the crossover in either direction never
    changes results, only scheduling: the sharded and sequential paths
    are bit-identical by {!Shard}'s contract. *)

type t

val create :
  ?cores:int -> ?min_shard_seconds:float -> ?min_units:int -> unit -> t
(** [cores] defaults to [Domain.recommended_domain_count ()].
    [min_shard_seconds] defaults to {!val-min_shard_seconds}.
    [min_units], when given, bypasses the cost model and [cores] check
    with a fixed minimum-units-per-shard ([0] forces maximal sharding) —
    the programmatic equivalent of [BIST_SHARD_MIN]. *)

val shared : unit -> t
(** The process-wide instance used by default in {!Shard.detections},
    created lazily; honours [BIST_SHARD_MIN] (invalid values warn once
    on stderr and are ignored). *)

val min_shard_seconds : float
(** Default minimum estimated work per shard (0.5 ms): pool dispatch
    costs tens of microseconds per call, so shards this coarse keep the
    overhead in the low percents. *)

val record : t -> units:int -> seconds:float -> unit
(** Fold one measured sequential execution into the EWMA cost model.
    Non-positive [units] or [seconds] are ignored. *)

val ns_per_unit : t -> float
(** Current cost estimate; [0.] until the first {!record}. *)

val chunks : t -> jobs:int -> units:int -> int
(** How many shards a call carrying [units] of work should split into on
    a [jobs]-wide pool. [1] means run sequentially. Never exceeds
    [jobs]. *)
