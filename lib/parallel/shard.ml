module Bitset = Bist_util.Bitset

type piece = { ids : int array; det_time : int array }

let partition ~chunks arr =
  let n = Array.length arr in
  let chunks = max 1 (min chunks n) in
  if n = 0 then [||]
  else begin
    let base = n / chunks and rem = n mod chunks in
    Array.init chunks (fun i ->
        let start = (i * base) + min i rem in
        let len = base + if i < rem then 1 else 0 in
        Array.sub arr start len)
  end

let merge ~size pieces =
  let det_time = Array.make size (-1) in
  let detected = Bitset.create size in
  Array.iter
    (fun { ids; det_time = local } ->
      if Array.length ids <> Array.length local then
        invalid_arg "Shard.merge: ids/det_time length mismatch";
      Array.iteri
        (fun j id ->
          if local.(j) >= 0 then begin
            det_time.(id) <- local.(j);
            Bitset.add detected id
          end)
        ids)
    pieces;
  (det_time, detected)

let detections ?pool ~size ~f ids =
  let pieces =
    match pool with
    | Some p when Pool.jobs p > 1 && Array.length ids > 1 ->
      let chunks = partition ~chunks:(Pool.jobs p) ids in
      Pool.map_chunks p (fun chunk -> { ids = chunk; det_time = f chunk }) chunks
    | _ -> [| { ids; det_time = f ids } |]
  in
  merge ~size pieces
