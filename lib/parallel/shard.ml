module Bitset = Bist_util.Bitset

type piece = { ids : int array; det_time : int array }

let partition ~chunks arr =
  let n = Array.length arr in
  let chunks = max 1 (min chunks n) in
  if n = 0 then [||]
  else begin
    let base = n / chunks and rem = n mod chunks in
    Array.init chunks (fun i ->
        let start = (i * base) + min i rem in
        let len = base + if i < rem then 1 else 0 in
        Array.sub arr start len)
  end

let merge ~size pieces =
  let det_time = Array.make size (-1) in
  let detected = Bitset.create size in
  Array.iter
    (fun { ids; det_time = local } ->
      if Array.length ids <> Array.length local then
        invalid_arg "Shard.merge: ids/det_time length mismatch";
      Array.iteri
        (fun j id ->
          if local.(j) >= 0 then begin
            det_time.(id) <- local.(j);
            Bitset.add detected id
          end)
        ids)
    pieces;
  (det_time, detected)

let detections ?pool ?tune ?units ~size ~f ids =
  let n = Array.length ids in
  let units = match units with Some u -> u | None -> n in
  let tune = match tune with Some t -> t | None -> Tune.shared () in
  let want =
    match pool with
    | Some p when Pool.jobs p > 1 && n > 1 ->
      min n (Tune.chunks tune ~jobs:(Pool.jobs p) ~units)
    | _ -> 1
  in
  let pieces =
    match pool with
    | Some p when want > 1 ->
      (* Defensive: [partition] never produces empty slices, but a
         filtered id set upstream must not turn into zero-work shards
         paying dispatch for nothing. *)
      let slices =
        Array.of_list
          (List.filter
             (fun c -> Array.length c > 0)
             (Array.to_list (partition ~chunks:want ids)))
      in
      Pool.map_chunks p (fun chunk -> { ids = chunk; det_time = f chunk }) slices
    | _ ->
      (* Sequential executions feed the cost model; parallel wall time
         would under-count per-unit work and is not recorded. *)
      let t0 = Unix.gettimeofday () in
      let det = f ids in
      Tune.record tune ~units ~seconds:(Unix.gettimeofday () -. t0);
      [| { ids; det_time = det } |]
  in
  merge ~size pieces
