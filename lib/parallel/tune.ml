type t = {
  cores : int;
  min_shard_seconds : float;
  min_units : int option; (* fixed override: None = use the cost model *)
  mutable ns_per_unit : float; (* EWMA; 0. until the first record *)
}

let min_shard_seconds = 0.0005

(* Prior for the very first call, before any measurement exists: the
   packed kernels run a fault-step in the tens of nanoseconds, so 25
   ns/unit errs toward sharding slightly too early, which the EWMA then
   corrects. *)
let default_ns_per_unit = 25.0

let create ?cores ?(min_shard_seconds = min_shard_seconds) ?min_units () =
  let cores =
    match cores with Some c -> max 1 c | None -> Domain.recommended_domain_count ()
  in
  { cores; min_shard_seconds; min_units; ns_per_unit = 0. }

let warned = ref false

let env_min_units () =
  match Sys.getenv_opt "BIST_SHARD_MIN" with
  | None | Some "" -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some m when m >= 0 -> Some m
    | _ ->
      if not !warned then begin
        warned := true;
        Printf.eprintf
          "warning: BIST_SHARD_MIN=%S is not a non-negative integer; ignoring\n%!" s
      end;
      None)

let shared_instance = lazy (create ?min_units:(env_min_units ()) ())
let shared () = Lazy.force shared_instance

let record t ~units ~seconds =
  if units > 0 && seconds > 0. then begin
    let ns = seconds *. 1e9 /. float_of_int units in
    t.ns_per_unit <-
      (if t.ns_per_unit > 0. then (0.7 *. t.ns_per_unit) +. (0.3 *. ns) else ns)
  end

let ns_per_unit t = t.ns_per_unit

let chunks t ~jobs ~units =
  if jobs <= 1 || units <= 0 then 1
  else
    match t.min_units with
    | Some 0 -> jobs
    | Some m -> min jobs (max 1 (units / m))
    | None ->
      if t.cores <= 1 then 1
      else begin
        let npu = if t.ns_per_unit > 0. then t.ns_per_unit else default_ns_per_unit in
        let per_shard = max 1 (int_of_float (t.min_shard_seconds *. 1e9 /. npu)) in
        (* Below twice the floor the only split would be into shards
           finer than the floor — stay sequential. *)
        if units < 2 * per_shard then 1 else min jobs (units / per_shard)
      end
