module Rng = Bist_util.Rng

type t = {
  width : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = max 1 (min (Domain.recommended_domain_count ()) 8)

let jobs t = t.width

(* Workers block on [nonempty] and run closures from the queue until the
   pool is stopped. Closures never raise: [map_chunks] wraps the user
   function and stores its exception instead. *)
let worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if t.stopped then Mutex.unlock t.mutex
    else
      match Queue.take_opt t.queue with
      | Some task ->
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        next ()
      | None ->
        Condition.wait t.nonempty t.mutex;
        next ()
  in
  next ()

let shutdown t =
  if t.workers <> [] then begin
    Mutex.lock t.mutex;
    t.stopped <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let create ?jobs () =
  let width =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let t =
    {
      width;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopped = false;
      workers = [];
    }
  in
  if width > 1 then begin
    t.workers <- List.init (width - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
    (* Leaked pools must not leave domains blocked in [Condition.wait]
       when the main domain returns. *)
    at_exit (fun () -> shutdown t)
  end;
  t

(* Cumulative pool tasks ever enqueued, so tests can pin the dispatch
   cost of a call pattern as a hard number. *)
let dispatched = Atomic.make 0

let dispatched_tasks () = Atomic.get dispatched

let map_chunks t f arr =
  let n = Array.length arr in
  if t.workers = [] || n <= 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    (* First-index exception, so a multi-failure batch re-raises
       deterministically. Protected by [t.mutex]. *)
    let error = ref None in
    (* Batch-pull dispatch: instead of one queue task per chunk (n mutex
       round-trips), enqueue one puller per participating worker; every
       puller — the caller included — claims chunk indices from a shared
       atomic cursor until the batch is exhausted. Dispatch cost is
       O(width), independent of the chunk count. *)
    let next = Atomic.make 0 in
    let pull () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          try results.(i) <- Some (f arr.(i))
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock t.mutex;
            (match !error with
            | Some (j, _, _) when j < i -> ()
            | _ -> error := Some (i, e, bt));
            Mutex.unlock t.mutex
      done
    in
    let active = ref 0 in
    let all_done = Condition.create () in
    let task () =
      pull ();
      Mutex.lock t.mutex;
      decr active;
      if !active = 0 then Condition.broadcast all_done;
      Mutex.unlock t.mutex
    in
    (* No point waking more workers than there are chunks beyond the
       caller's own share. *)
    let helpers = min (List.length t.workers) (n - 1) in
    Mutex.lock t.mutex;
    active := helpers;
    for _ = 1 to helpers do
      Queue.add task t.queue
    done;
    ignore (Atomic.fetch_and_add dispatched helpers);
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (* The caller is a worker too. *)
    pull ();
    Mutex.lock t.mutex;
    while !active > 0 do
      Condition.wait all_done t.mutex
    done;
    Mutex.unlock t.mutex;
    match !error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> Array.map (function Some v -> v | None -> assert false) results
  end

let map_chunks_rng t ~rng f arr =
  (* Children are split in input order before any task is dispatched, so
     the streams each chunk sees do not depend on the pool width or on
     scheduling, and no domain ever touches the parent generator. *)
  let jobs = Array.map (fun x -> (Rng.split rng, x)) arr in
  map_chunks t (fun (child, x) -> f child x) jobs

let max_jobs = 64

let warn fmt = Printf.eprintf ("warning: " ^^ fmt ^^ "\n%!")

(* Misconfiguration must be loud and bounded: a typo in BIST_JOBS (or a
   script passing -1) used to silently fall back to sequential, and a
   huge value would spawn a domain per unit of it. One warning line, then
   either sequential or a clamped pool. *)
let jobs_of_env_string s =
  match int_of_string_opt (String.trim s) with
  | None ->
    warn "BIST_JOBS=%S is not an integer; running sequentially" s;
    None
  | Some j when j <= 0 ->
    warn "BIST_JOBS=%d is not a positive worker count; running sequentially" j;
    None
  | Some 1 -> None
  | Some j when j > max_jobs ->
    warn "BIST_JOBS=%d exceeds the maximum of %d; clamping" j max_jobs;
    Some max_jobs
  | Some j -> Some j

let validate_jobs ~source j =
  if j < 0 then begin
    warn "%s=%d is negative; using the automatic width" source j;
    0
  end
  else if j > max_jobs then begin
    warn "%s=%d exceeds the maximum of %d; clamping" source j max_jobs;
    max_jobs
  end
  else j

let env_pool =
  lazy
    (match Sys.getenv_opt "BIST_JOBS" with
    | None -> None
    | Some s -> Option.map (fun j -> create ~jobs:j ()) (jobs_of_env_string s))

let from_env () = Lazy.force env_pool
