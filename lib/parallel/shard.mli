(** Deterministic sharding of a fault universe over a {!Pool}.

    The parallel fault simulator partitions the (canonically ordered)
    fault-id array into contiguous chunks, runs one fully independent
    simulation per chunk — each worker builds its own simulator instance,
    so no mutable simulation state is shared between domains — and merges
    the per-chunk detection times back into universe order.

    Because chunks are disjoint slices of the canonical id order and a
    fault's detection time does not depend on which other faults share
    its simulation pass, the merged result is {e bit-identical} for every
    chunk count, including 1. That invariant is the contract the property
    tests pin down, and it is what lets [BIST_JOBS] be applied to any
    existing workload without changing its output. *)

type piece = {
  ids : int array;  (** Chunk fault ids, a slice of the canonical order. *)
  det_time : int array;
      (** Chunk-local first-detection times aligned with [ids];
          [-1] = undetected. *)
}

val partition : chunks:int -> 'a array -> 'a array array
(** Split into at most [chunks] contiguous slices whose lengths differ by
    at most one, preserving order; never returns an empty slice, so fewer
    (possibly zero) slices come back when the input is shorter than
    [chunks]. [chunks] is clamped to at least 1. *)

val merge : size:int -> piece array -> int array * Bist_util.Bitset.t
(** Scatter chunk-local detection times into a universe-sized
    [det_time] array (default [-1]) and the matching detected set.
    Pieces must hold disjoint ids below [size]; aligned [ids]/[det_time]
    lengths are enforced. *)

val detections :
  ?pool:Pool.t ->
  ?tune:Tune.t ->
  ?units:int ->
  size:int ->
  f:(int array -> int array) ->
  int array ->
  int array * Bist_util.Bitset.t
(** [detections ?pool ~size ~f ids] runs [f] over chunks of [ids] —
    [f chunk] must return chunk-local detection times aligned with
    [chunk] — and merges. Without a pool, or with a sequential one, [f]
    runs once on the whole of [ids].

    With a multi-worker pool the chunk count comes from [tune]
    (default {!Tune.shared}): calls whose declared work [units]
    (default: the id count; fault simulation passes faults × sequence
    length) fall below the measured crossover run sequentially, larger
    calls are split into shards coarse enough to amortize pool dispatch,
    and empty shards are never dispatched. Sequential executions are
    timed into the tune's cost model. The result is bit-identical on
    both sides of every such decision. *)
