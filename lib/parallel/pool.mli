(** A small fixed-size domain pool.

    [create ~jobs] spawns [jobs - 1] long-lived worker domains; the
    calling domain is the remaining worker, so [jobs] is the true
    parallel width. With [jobs = 1] (and by default on hosts where
    [Domain.recommended_domain_count () = 1]) no domains are spawned and
    every [map_chunks] runs sequentially in the caller — the fallback
    path is the plain [Array.map] it replaces.

    The pool is built for the fault-simulation sharding pattern: one
    caller at a time submits a batch of coarse chunks and blocks until
    all of them finish. Submitting from several domains concurrently is
    not supported. A pool is reusable across any number of successive
    [map_chunks] calls, including after one of them raised. *)

type t

val create : ?jobs:int -> unit -> t
(** [jobs] defaults to {!default_jobs}[ ()] and is clamped to at least 1.
    An explicit [jobs > 1] is honoured even on a single-core host (the
    domains then time-slice), so the parallel path stays testable
    everywhere. *)

val default_jobs : unit -> int
(** [min (Domain.recommended_domain_count ()) 8] — the CLI default for
    [--jobs]. *)

val jobs : t -> int
(** The parallel width the pool was created with (1 = sequential). *)

val map_chunks : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_chunks t f chunks] applies [f] to every element, distributing
    elements over the pool's domains, and returns the results in input
    order. The caller participates in the work, then blocks until every
    element is done. If one or more applications raise, every element
    still runs to completion and the exception of the {e lowest} input
    index is re-raised in the caller — deterministic regardless of
    scheduling.

    Dispatch is amortized: one pool task is enqueued per participating
    worker — [min (jobs - 1) (n - 1)] tasks for [n] chunks, never one
    per chunk — and workers claim chunk indices from a shared atomic
    cursor. A sequential call ([jobs = 1] or [n <= 1]) enqueues
    nothing. *)

val dispatched_tasks : unit -> int
(** Cumulative count of pool tasks ever enqueued by {!map_chunks} across
    all pools, for tests that pin dispatch cost. *)

val map_chunks_rng :
  t -> rng:Bist_util.Rng.t -> (Bist_util.Rng.t -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map_chunks} for chunk work that needs randomness: the parent
    [rng] is {!Bist_util.Rng.split} once per chunk, {e in input order,
    before any domain starts}, and each application receives its own
    child generator. The parent is never touched by a worker domain, and
    the result is therefore identical for every pool width. This is the
    only sanctioned way to hand an [Rng] to pool work — sharing one
    generator across domains is a data race. *)

val from_env : unit -> t option
(** The process-wide pool configured by the [BIST_JOBS] environment
    variable, created lazily on first use: [Some pool] when
    [2 <= BIST_JOBS <= ]{!max_jobs}, [None] when unset or [1]. Invalid
    values are never silently misread: a non-integer, zero or negative
    setting warns once on stderr and runs sequentially, and a value
    above {!max_jobs} warns and is clamped ({!jobs_of_env_string}). This
    is the default pool of {!Bist_fault.Fsim.run} and friends, so
    exporting [BIST_JOBS=2] routes an unmodified program — including the
    test suite — through the parallel path. *)

val max_jobs : int
(** Upper bound on a configured worker count (64): above it, extra
    domains only add scheduling overhead, and a garbled setting like
    [BIST_JOBS=2000] must not spawn 2000 domains. *)

val jobs_of_env_string : string -> int option
(** The [BIST_JOBS] validation rule, exposed for the CLIs and tests:
    [None] means run sequentially (unset-like, [1], or rejected with a
    stderr warning), [Some j] is a validated width in
    [2 .. ]{!max_jobs}. *)

val validate_jobs : source:string -> int -> int
(** Validate a [--jobs] CLI value where [0] means "auto": negative
    values warn and fall back to [0], values above {!max_jobs} warn and
    clamp; anything in range passes through. [source] names the flag in
    the warning line. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; a shut-down pool keeps
    working sequentially. Pools also shut themselves down [at_exit]. *)
