module Rng = Bist_util.Rng
module Tseq = Bist_logic.Tseq
module Vector = Bist_logic.Vector
module Injector = Bist_hw.Injector

(* Faults are generated to be *effective*: each one, if undefended, would
   actually change at least one applied vector or the reported signature.
   A fault that lands on an address bit above the memory depth, or drives
   a cell to the value it already holds, is a no-op the campaign could
   only score as noise — targeting the live word range and negating the
   actual stored bit keeps every sample meaningful. *)

let longest sequences =
  List.fold_left
    (fun acc s -> if Tseq.length s > Tseq.length acc then s else acc)
    (List.hd sequences) sequences

let bit_as_bool v i =
  match Vector.get v i with Bist_logic.Ternary.One -> true | _ -> false

let addr_bits_in_range ~depth =
  let rec go b acc = if 1 lsl b >= depth then acc else go (b + 1) (b :: acc) in
  go 0 []

let random_fault rng ~word_bits ~sequences ~misr_width =
  let s = longest sequences in
  let len = Tseq.length s in
  let word = Rng.int rng len in
  let bit = Rng.int rng word_bits in
  let n_kinds = 6 in
  let rec pick () =
    match Rng.int rng n_kinds with
    | 0 -> Injector.Mem_flip { word; bit; phase = `Load }
    | 1 -> Injector.Mem_flip { word; bit; phase = `Stored }
    | 2 ->
      (* Stuck at the negation of the loaded bit, so the fault is live. *)
      let value = not (bit_as_bool (Tseq.get s word) bit) in
      Injector.Mem_stuck { word; bit; value }
    | 3 -> (
      match addr_bits_in_range ~depth:len with
      | [] -> pick () (* single-word memory: no live address bit exists *)
      | bits ->
        let b = List.nth bits (Rng.int rng (List.length bits)) in
        Injector.Addr_stuck { bit = b; value = Rng.bool rng })
    | 4 ->
      if Rng.bool rng then
        Injector.Early_termination { dropped = 1 + Rng.int rng len }
      else Injector.Late_termination { extra = 1 + Rng.int rng len }
    | 5 -> Injector.Misr_corrupt { mask = 1 + Rng.int rng ((1 lsl misr_width) - 1) }
    | _ -> assert false
  in
  pick ()

let faults rng ~count ~word_bits ~sequences ~misr_width =
  if count < 1 then invalid_arg "Fault_gen.faults: count must be >= 1";
  if sequences = [] then invalid_arg "Fault_gen.faults: no sequences";
  List.init count (fun _ -> random_fault rng ~word_bits ~sequences ~misr_width)

let is_permanent = function
  | Injector.Mem_stuck _ | Injector.Addr_stuck _ -> true
  | Injector.Mem_flip _ | Injector.Early_termination _
  | Injector.Late_termination _ | Injector.Misr_corrupt _ -> false

(* Random sequences whose words are pairwise distinct, so a diverted
   address can never read back the very vector it displaced. *)
let distinct_word_sequence rng ~width ~length =
  if length > 1 lsl min width 20 then
    invalid_arg "Fault_gen.distinct_word_sequence: length > 2^width";
  let seen = Hashtbl.create 16 in
  let rec fresh () =
    let v = Vector.random_binary rng width in
    let key = Vector.to_string v in
    if Hashtbl.mem seen key then fresh ()
    else begin
      Hashtbl.add seen key ();
      v
    end
  in
  Tseq.of_vectors (Array.init length (fun _ -> fresh ()))
