(** Seeded fault-injection campaigns over the BIST hardware session.

    A campaign generates [count] effective faults (see {!Fault_gen}),
    runs one session per fault under a chosen {!Bist_hw.Session.defense},
    and audits every run against a clean golden run of the same session:
    did the hardware apply exactly the intended expanded test, and does
    the report say so?

    Outcomes:
    - {b Corrected}: the applied test matches the golden run and the
      session flagged the fault (ECC correction, reload, or recovery) —
      the defense both saw and outran it.
    - {b Detected}: the session exhausted its reload budget and reported
      the sequence degraded — the fault is permanent, coverage is
      partial, and the report says so. No silent damage.
    - {b Benign}: the applied test matches and nothing fired — the fault
      had no observable effect (rare, by construction of {!Fault_gen}).
    - {b Escaped}: the applied test differs from the golden run but the
      report claims success. The failure mode campaigns exist to count.

    The paper's acceptance bar for the hardened defense is zero escapes;
    disabling the parity code makes memory faults escape, which the
    campaign makes measurable. *)

type config = {
  seed : int;
  count : int;  (** Number of faults injected (one session each). *)
  defense : Bist_hw.Session.defense;
  n : int;  (** Expansion parameter of the sessions. *)
  seq_length : int;  (** Stored subsequence length (clamped to 2^inputs). *)
  num_sequences : int;
}

val default_config : config
(** seed 1999, 200 faults, {!Bist_hw.Session.hardened}, n = 2, two stored
    sequences of 8 vectors. *)

type outcome = Corrected | Detected | Benign | Escaped

val outcome_name : outcome -> string

type trial = {
  fault : Bist_hw.Injector.fault;
  outcome : outcome;
  attempts : int;  (** Max load attempts over the session's sequences. *)
  detections : int;  (** Total defense firings across the session. *)
  degraded : bool;
}

type t = {
  circuit_name : string;
  config : config;
  sync_found : bool;  (** Whether a synchronizing prefix was applied. *)
  trials : trial list;
  corrected : int;
  detected : int;
  benign : int;
  escaped : int;
}

exception Interrupted of trial list
(** Raised out of {!run} when [ctl] demands a stop, carrying the trials
    completed so far (in canonical fault order). Pass them back via
    [?resume] to continue; everything else about a campaign is a
    deterministic function of the config. *)

val run :
  ?config:config ->
  ?obs:Bist_obs.Obs.t ->
  ?pool:Bist_parallel.Pool.t ->
  ?ctl:Bist_resilience.Ctl.t ->
  ?resume:trial list ->
  name:string ->
  Bist_circuit.Netlist.t ->
  t
(** Deterministic for a given [config.seed], with or without a [pool]:
    the faults are drawn before any trial runs, trials are independent
    sessions, and parallel trial chunks are merged back in canonical
    order. Default sequential.

    [ctl] (default: none) is polled between waves of trials (one trial
    per wave sequentially, [2 * jobs] per wave on a pool); a demanded
    stop raises {!Interrupted}, and each completed wave notes progress.
    [resume] (default [[]]) skips trials already run; the resumed trials
    are validated against the configuration's fault list and a
    disagreement raises {!Bist_resilience.Checkpoint.Mismatch}. The
    final campaign is identical to an uninterrupted run's.

    [obs] records a ["campaign.golden"] span for the clean oracle run
    and one ["campaign.trials"] span per trial chunk, tagged with the
    executing domain, plus a ["campaign.trials"] counter. *)

val rebuild :
  name:string -> config:config -> sync_found:bool -> trial list -> t
(** Reassemble a completed campaign from its trial list without re-running
    anything — used when loading a multi-circuit checkpoint whose earlier
    circuits already finished. *)

val encode_trials : Bist_resilience.Checkpoint.Io.writer -> trial list -> unit
val decode_trials : Bist_resilience.Checkpoint.Io.reader -> trial list
(** Raises {!Bist_resilience.Checkpoint.Corrupt} on malformed input. *)

val by_kind : t -> (string * (int * int * int * int)) list
(** Outcome counts [(corrected, detected, benign, escaped)] per fault
    kind, for the kinds that occurred. *)
