(** Seeded generation of effective hardware faults for a campaign.

    Every generated fault is targeted at live state: memory faults land
    inside the longest stored sequence, a stuck cell is driven to the
    negation of the bit it will hold, address faults only toggle bits
    below the memory's address width, and termination glitches drop or
    add at least one cycle. An undefended session therefore applies a
    visibly wrong test for (almost) every sample, which is what makes
    detection-rate numbers meaningful. *)

val random_fault :
  Bist_util.Rng.t ->
  word_bits:int ->
  sequences:Bist_logic.Tseq.t list ->
  misr_width:int ->
  Bist_hw.Injector.fault

val faults :
  Bist_util.Rng.t ->
  count:int ->
  word_bits:int ->
  sequences:Bist_logic.Tseq.t list ->
  misr_width:int ->
  Bist_hw.Injector.fault list
(** [count] independent draws from {!random_fault}. Raises
    [Invalid_argument] if [count < 1] or [sequences] is empty. *)

val is_permanent : Bist_hw.Injector.fault -> bool
(** Stuck-at faults fire on every access and cannot be outrun by a
    reload; the transient kinds fire once. *)

val distinct_word_sequence :
  Bist_util.Rng.t -> width:int -> length:int -> Bist_logic.Tseq.t
(** A random binary sequence with pairwise-distinct words, so an
    address-counter fault always changes the vector actually applied.
    Raises [Invalid_argument] when [length > 2^width]. *)
