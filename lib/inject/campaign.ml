module Rng = Bist_util.Rng
module Tseq = Bist_logic.Tseq
module Netlist = Bist_circuit.Netlist
module Injector = Bist_hw.Injector
module Session = Bist_hw.Session
module Misr = Bist_hw.Misr
module Ctl = Bist_resilience.Ctl
module Checkpoint = Bist_resilience.Checkpoint

type config = {
  seed : int;
  count : int;
  defense : Session.defense;
  n : int;
  seq_length : int;
  num_sequences : int;
}

let default_config =
  {
    seed = 1999;
    count = 200;
    defense = Session.hardened;
    n = 2;
    seq_length = 8;
    num_sequences = 2;
  }

type outcome = Corrected | Detected | Benign | Escaped

let outcome_name = function
  | Corrected -> "corrected"
  | Detected -> "detected"
  | Benign -> "benign"
  | Escaped -> "escaped"

type trial = {
  fault : Injector.fault;
  outcome : outcome;
  attempts : int;
  detections : int;
  degraded : bool;
}

type t = {
  circuit_name : string;
  config : config;
  sync_found : bool;
  trials : trial list;
  corrected : int;
  detected : int;
  benign : int;
  escaped : int;
}

(* A trial is *faithful* when the injected session applied exactly the
   test the clean session applied: same expanded streams, same lengths,
   and — when the clean signature is X-free — the same signature. The
   clean run is the oracle; the session's own verdicts are what is being
   audited against it. *)
let faithful ~golden (report : Session.report) =
  List.length report.per_sequence = List.length golden.Session.per_sequence
  && List.for_all2
       (fun (g : Session.sequence_report) (t : Session.sequence_report) ->
         t.applied_length = g.applied_length
         && (match (g.applied, t.applied) with
            | Some ga, Some ta -> Tseq.equal ga ta
            | _ -> false)
         && ((not g.signature_valid) || (t.signature_valid && t.signature = g.signature)))
       golden.Session.per_sequence report.per_sequence

let flagged (report : Session.report) =
  report.total_reloads > 0
  || List.exists
       (fun (s : Session.sequence_report) ->
         s.detections <> [] || s.corrections > 0
         || match s.status with Session.Clean -> false | _ -> true)
       report.per_sequence

let classify ~golden (report : Session.report) fault =
  let degraded = not report.Session.complete in
  let outcome =
    if degraded then Detected
    else if faithful ~golden report then
      if flagged report then Corrected else Benign
    else if flagged report then
      (* The session claims recovery but applied the wrong test: the
         recovery path itself failed, which is still an escape. *)
      Escaped
    else Escaped
  in
  {
    fault;
    outcome;
    attempts =
      List.fold_left
        (fun acc (s : Session.sequence_report) -> max acc s.attempts)
        0 report.per_sequence;
    detections =
      List.fold_left
        (fun acc (s : Session.sequence_report) -> acc + List.length s.detections)
        0 report.per_sequence;
    degraded;
  }

exception Interrupted of trial list

let () =
  Printexc.register_printer (function
    | Interrupted trials ->
      Some
        (Printf.sprintf "Campaign.Interrupted (%d trials completed)"
           (List.length trials))
    | _ -> None)

let finish ~name ~config ~sync_found trials =
  let count o = List.length (List.filter (fun t -> t.outcome = o) trials) in
  {
    circuit_name = name;
    config;
    sync_found;
    trials;
    corrected = count Corrected;
    detected = count Detected;
    benign = count Benign;
    escaped = count Escaped;
  }

let rebuild = finish

let run ?(config = default_config) ?(obs = Bist_obs.Obs.null) ?pool ?ctl
    ?(resume = []) ~name circuit =
  let module Obs = Bist_obs.Obs in
  let rng = Rng.create config.seed in
  let num_inputs = Netlist.num_inputs circuit in
  let seq_length = min config.seq_length (1 lsl min num_inputs 10) in
  let sequences =
    List.init config.num_sequences (fun _ ->
        Fault_gen.distinct_word_sequence rng ~width:num_inputs ~length:seq_length)
  in
  let sync =
    Bist_hw.Sync.find_sequence ~rng:(Rng.split rng) circuit
  in
  let misr_width = Misr.reg_width (Misr.create ~width:(Netlist.num_outputs circuit)) in
  let golden =
    Obs.span obs ~cat:"campaign" "campaign.golden"
      ~args:(fun () -> [ ("circuit", name) ])
      (fun () ->
        Session.run_exn ?sync ~defense:config.defense ~capture:true ~n:config.n
          circuit sequences)
  in
  let faults =
    Fault_gen.faults rng ~count:config.count ~word_bits:num_inputs ~sequences
      ~misr_width
  in
  (* Trials are independent sessions against immutable inputs (circuit,
     sequences, golden report); the fault list is drawn from [rng] before
     any of them runs, so no generator crosses a domain boundary and the
     chunked parallel run reproduces the sequential trial list exactly. *)
  let trial fault =
    let injector = Injector.create fault in
    let report =
      Session.run_exn ?sync ~defense:config.defense ~injector ~capture:true
        ~n:config.n circuit sequences
    in
    classify ~golden report fault
  in
  (* Each chunk runs inside one span on whichever domain picks it up, so
     the trace shows campaign trials interleaving across domains. *)
  let trial_chunk chunk =
    Obs.span obs ~cat:"campaign" "campaign.trials"
      ~args:(fun () ->
        [ ("circuit", name); ("trials", string_of_int (Array.length chunk)) ])
      (fun () -> Array.map trial chunk)
  in
  (* Resumed trials must be a prefix of this configuration's fault list —
     anything else means the snapshot came from a different config. *)
  let done_n = List.length resume in
  if done_n > List.length faults then
    raise
      (Checkpoint.Mismatch
         (Printf.sprintf
            "campaign snapshot holds %d trials, the configuration generates \
             only %d faults"
            done_n (List.length faults)));
  List.iteri
    (fun i (t : trial) ->
      if t.fault <> List.nth faults i then
        raise
          (Checkpoint.Mismatch
             (Printf.sprintf
                "campaign snapshot trial %d was injected with a different \
                 fault than this configuration draws — wrong seed or config"
                i)))
    resume;
  let remaining =
    Array.of_list (List.filteri (fun i _ -> i >= done_n) faults)
  in
  (* Trials run in waves; the boundary between waves is the safe point.
     Each wave is chunked over the pool exactly like the full fault list
     used to be, and since trials are independent and the fault list is
     fixed up front, the wave size changes neither the trial list nor
     its order — only how often preemption can land. *)
  let wave_size =
    match pool with
    | Some p when Bist_parallel.Pool.jobs p > 1 ->
      2 * Bist_parallel.Pool.jobs p
    | _ -> 1
  in
  let completed = ref resume in
  let pos = ref 0 in
  while !pos < Array.length remaining do
    (match ctl with
    | Some c when Ctl.stop_reason c <> None -> raise (Interrupted !completed)
    | _ -> ());
    let len = min wave_size (Array.length remaining - !pos) in
    let wave = Array.sub remaining !pos len in
    let results =
      match pool with
      | Some p when Bist_parallel.Pool.jobs p > 1 && len > 1 ->
        Bist_parallel.Shard.partition ~chunks:(Bist_parallel.Pool.jobs p) wave
        |> Bist_parallel.Pool.map_chunks p trial_chunk
        |> Array.to_list
        |> List.concat_map Array.to_list
      | _ -> Array.to_list (trial_chunk wave)
    in
    completed := !completed @ results;
    (match ctl with None -> () | Some c -> Ctl.note_progress c);
    pos := !pos + len
  done;
  let trials = !completed in
  Obs.count obs ~by:(List.length trials) "campaign.trials";
  finish ~name ~config ~sync_found:(sync <> None) trials

(* Trial-list codec — the campaign section of an ["inject"] checkpoint. *)

module Io = Checkpoint.Io

let encode_fault w (f : Injector.fault) =
  match f with
  | Injector.Mem_flip { word; bit; phase } ->
    Io.u8 w 0;
    Io.u32 w word;
    Io.u32 w bit;
    Io.bool w (phase = `Load)
  | Injector.Mem_stuck { word; bit; value } ->
    Io.u8 w 1;
    Io.u32 w word;
    Io.u32 w bit;
    Io.bool w value
  | Injector.Addr_stuck { bit; value } ->
    Io.u8 w 2;
    Io.u32 w bit;
    Io.bool w value
  | Injector.Early_termination { dropped } ->
    Io.u8 w 3;
    Io.u32 w dropped
  | Injector.Late_termination { extra } ->
    Io.u8 w 4;
    Io.u32 w extra
  | Injector.Misr_corrupt { mask } ->
    Io.u8 w 5;
    Io.int w mask

let decode_fault r : Injector.fault =
  match Io.r_u8 r with
  | 0 ->
    let word = Io.r_u32 r in
    let bit = Io.r_u32 r in
    let phase = if Io.r_bool r then `Load else `Stored in
    Injector.Mem_flip { word; bit; phase }
  | 1 ->
    let word = Io.r_u32 r in
    let bit = Io.r_u32 r in
    let value = Io.r_bool r in
    Injector.Mem_stuck { word; bit; value }
  | 2 ->
    let bit = Io.r_u32 r in
    let value = Io.r_bool r in
    Injector.Addr_stuck { bit; value }
  | 3 -> Injector.Early_termination { dropped = Io.r_u32 r }
  | 4 -> Injector.Late_termination { extra = Io.r_u32 r }
  | 5 -> Injector.Misr_corrupt { mask = Io.r_int r }
  | tag ->
    raise (Checkpoint.Corrupt (Printf.sprintf "unknown fault tag %d" tag))

let encode_outcome w o =
  Io.u8 w
    (match o with Corrected -> 0 | Detected -> 1 | Benign -> 2 | Escaped -> 3)

let decode_outcome r =
  match Io.r_u8 r with
  | 0 -> Corrected
  | 1 -> Detected
  | 2 -> Benign
  | 3 -> Escaped
  | tag ->
    raise (Checkpoint.Corrupt (Printf.sprintf "unknown outcome tag %d" tag))

let encode_trial w t =
  encode_fault w t.fault;
  encode_outcome w t.outcome;
  Io.u32 w t.attempts;
  Io.u32 w t.detections;
  Io.bool w t.degraded

let decode_trial r =
  let fault = decode_fault r in
  let outcome = decode_outcome r in
  let attempts = Io.r_u32 r in
  let detections = Io.r_u32 r in
  let degraded = Io.r_bool r in
  { fault; outcome; attempts; detections; degraded }

let encode_trials w trials = Io.list w encode_trial trials
let decode_trials r = Io.r_list r decode_trial

let kinds = [ "mem-flip"; "mem-stuck"; "addr-stuck"; "early-term"; "late-term"; "misr-corrupt" ]

let by_kind t =
  List.filter_map
    (fun kind ->
      let ts = List.filter (fun tr -> Injector.kind_name tr.fault = kind) t.trials in
      if ts = [] then None
      else
        let c o = List.length (List.filter (fun tr -> tr.outcome = o) ts) in
        Some (kind, (c Corrected, c Detected, c Benign, c Escaped)))
    kinds
