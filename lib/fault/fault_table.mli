(** Detection-time bookkeeping over a reference sequence.

    This captures the data Procedure 1 needs about [T0]: the set [F] of
    detected faults and, for each, the first time unit [udet(f)] where it
    is detected — and it reproduces the layout of the paper's Table 2. *)

type t

val compute :
  ?obs:Bist_obs.Obs.t ->
  ?pool:Bist_parallel.Pool.t ->
  ?tune:Bist_parallel.Tune.t ->
  ?ctl:Bist_resilience.Ctl.t ->
  Universe.t ->
  Bist_logic.Tseq.t ->
  t
(** Simulate the sequence once and record first detection times. [pool]
    shards the simulation over domains with bit-identical results (see
    {!Fsim.run}); the default is sequential unless [BIST_JOBS] is set.
    [obs] wraps the run in a ["fault_table.compute"] span and records
    the per-shard spans of {!Fsim.run}. [ctl] is forwarded to
    {!Fsim.run} and may raise {!Bist_resilience.Ctl.Preempted}. [tune]
    overrides the sharding crossover policy (see
    {!Bist_parallel.Tune}). *)

val universe : t -> Universe.t
val sequence : t -> Bist_logic.Tseq.t

val udet : t -> int -> int option
(** First detection time of a fault id, if detected. *)

val detected : t -> Bist_util.Bitset.t
(** Fresh copy of the detected set [F]. *)

val num_detected : t -> int

val coverage : t -> float

val detected_at : t -> int -> int list
(** Fault ids first detected at the given time unit. *)

val argmax_udet : t -> targets:Bist_util.Bitset.t -> int option
(** The target fault with the highest [udet] (Procedure 1, step 2).
    Ties break toward the lowest fault id; targets that [t] never
    detects are ignored. *)

val render : t -> string
(** Table-2-style listing: time unit, vector, faults first detected. *)
