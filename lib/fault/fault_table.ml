module Tseq = Bist_logic.Tseq
module Bitset = Bist_util.Bitset

type t = {
  universe : Universe.t;
  seq : Tseq.t;
  det_time : int array;
  detected : Bitset.t;
}

let compute ?(obs = Bist_obs.Obs.null) ?pool ?tune ?ctl universe seq =
  Bist_obs.Obs.span obs ~cat:"fsim" "fault_table.compute"
    ~args:(fun () ->
      [ ("circuit",
         Bist_circuit.Netlist.circuit_name (Universe.circuit universe));
        ("faults", string_of_int (Universe.size universe));
        ("seq_len", string_of_int (Tseq.length seq)) ])
    (fun () ->
      let outcome = Fsim.run ~obs ?pool ?tune ?ctl universe seq in
      {
        universe;
        seq;
        det_time = outcome.Fsim.det_time;
        detected = outcome.Fsim.detected;
      })

let universe t = t.universe
let sequence t = t.seq

let udet t id = if t.det_time.(id) >= 0 then Some t.det_time.(id) else None

let detected t = Bitset.copy t.detected

let num_detected t = Bitset.cardinal t.detected

let coverage t =
  float_of_int (num_detected t) /. float_of_int (Universe.size t.universe)

let detected_at t u =
  Universe.fold
    (fun id _ acc -> if t.det_time.(id) = u then id :: acc else acc)
    t.universe []
  |> List.rev

let argmax_udet t ~targets =
  Bitset.fold
    (fun id best ->
      if t.det_time.(id) < 0 then best
      else
        match best with
        | None -> Some id
        | Some b -> if t.det_time.(id) > t.det_time.(b) then Some id else best)
    targets None

let render t =
  let c = Universe.circuit t.universe in
  let table =
    Bist_util.Ascii_table.create
      ~headers:
        [ ("u", Bist_util.Ascii_table.Right);
          ("T0[u]", Bist_util.Ascii_table.Left);
          ("detected faults", Bist_util.Ascii_table.Left) ]
  in
  for u = 0 to Tseq.length t.seq - 1 do
    let faults =
      detected_at t u
      |> List.map (fun id -> Fault.name c (Universe.get t.universe id))
      |> String.concat " "
    in
    Bist_util.Ascii_table.add_row table
      [ string_of_int u; Bist_logic.Vector.to_string (Tseq.get t.seq u); faults ]
  done;
  Bist_util.Ascii_table.render table
