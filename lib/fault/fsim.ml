module Tseq = Bist_logic.Tseq
module Bitset = Bist_util.Bitset
module Packed_sim = Bist_sim.Packed_sim
module Ppsfp = Bist_sim.Ppsfp
module Obs = Bist_obs.Obs

type outcome = {
  universe : Universe.t;
  det_time : int array;
  detected : Bitset.t;
}

type impl = Impl_ppsfp | Impl_packed

let impl_warned = ref false

let impl_of_env () =
  match Sys.getenv_opt "BIST_FSIM" with
  | None | Some "" | Some "ppsfp" -> Impl_ppsfp
  | Some "packed" -> Impl_packed
  | Some other ->
    if not !impl_warned then begin
      impl_warned := true;
      Printf.eprintf "bist: ignoring BIST_FSIM=%S (expected \"ppsfp\" or \"packed\")\n%!"
        other
    end;
    Impl_ppsfp

let faults_per_pass = 62 (* 63 lanes minus the fault-free lane 0 *)

let install sim fault ~lane =
  let mask = 1 lsl lane in
  match (fault : Fault.t) with
  | { site = Fault.Output n; stuck } -> Packed_sim.add_output_force sim n ~mask stuck
  | { site = Fault.Pin { gate; pin }; stuck } ->
    Packed_sim.add_pin_force sim ~gate ~pin ~mask stuck

(* One sequential pass over a slice of the universe, writing detection
   times positionally ([det_local.(i)] belongs to fault [ids.(i)]). The
   simulator instance is created here, inside the worker, so parallel
   shards never share mutable simulation state. A fault's detection time
   does not depend on which other faults share its 63-lane pass, so any
   slicing of the canonical id order yields the same times. *)
let run_ids_packed ?ctl ~stop_when_all_detected universe seq ids =
  let circuit = Universe.circuit universe in
  let k = Array.length ids in
  let det_local = Array.make k (-1) in
  let sim = Packed_sim.create circuit in
  let n_groups = (k + faults_per_pass - 1) / faults_per_pass in
  for g = 0 to n_groups - 1 do
    (* Safe point between 63-fault groups: nothing partial is committed,
       a preempted shard just raises out through the pool. *)
    Bist_resilience.Ctl.poll ctl;
    let base = g * faults_per_pass in
    let group_size = min faults_per_pass (k - base) in
    Packed_sim.clear_forces sim;
    Packed_sim.reset sim;
    for j = 0 to group_size - 1 do
      install sim (Universe.get universe ids.(base + j)) ~lane:(j + 1)
    done;
    (* [live] = lanes of not-yet-detected faults in this group. *)
    let live = ref (((1 lsl group_size) - 1) lsl 1) in
    let u = ref 0 in
    let len = Tseq.length seq in
    while !u < len && (not stop_when_all_detected || !live <> 0) do
      Packed_sim.step sim (Tseq.get seq !u);
      let newly = Packed_sim.po_diff_lanes sim land !live in
      if newly <> 0 then begin
        for j = 0 to group_size - 1 do
          if newly land (1 lsl (j + 1)) <> 0 then det_local.(base + j) <- !u
        done;
        live := !live land lnot newly
      end;
      incr u
    done
  done;
  det_local

let install_ppsfp sim fault ~lane =
  let mask = 1 lsl lane in
  match (fault : Fault.t) with
  | { site = Fault.Output n; stuck } -> Ppsfp.add_output_force sim n ~mask stuck
  | { site = Fault.Pin { gate; pin }; stuck } ->
    Ppsfp.add_pin_force sim ~gate ~pin ~mask stuck

(* The PPSFP pass. Same positional contract as [run_ids_packed] and
   bit-identical detection times: the fault-free machine comes from a
   per-worker trace (lane 0 of the packed pass is the same machine, so
   values cannot disagree), a detected fault's lanes are dropped on the
   spot (its detection time is already fixed, and lanes are independent
   bitwise, so the remaining lanes are unaffected), and a group ends as
   soon as all its lanes have been detected — which never changes any
   recorded time, so [stop_when_all_detected] has nothing left to do
   here. *)
let run_ids_ppsfp ?ctl universe seq ids =
  let circuit = Universe.circuit universe in
  let k = Array.length ids in
  let det_local = Array.make k (-1) in
  let sim = Ppsfp.create circuit in
  let tr = Ppsfp.trace sim seq in
  let len = Tseq.length seq in
  let n_groups = (k + faults_per_pass - 1) / faults_per_pass in
  for g = 0 to n_groups - 1 do
    Bist_resilience.Ctl.poll ctl;
    let base = g * faults_per_pass in
    let group_size = min faults_per_pass (k - base) in
    Ppsfp.clear_forces sim;
    Ppsfp.reset sim;
    for j = 0 to group_size - 1 do
      install_ppsfp sim (Universe.get universe ids.(base + j)) ~lane:(j + 1)
    done;
    let live = ref (((1 lsl group_size) - 1) lsl 1) in
    let u = ref 0 in
    while !u < len && !live <> 0 do
      Ppsfp.step sim tr !u;
      let newly = Ppsfp.po_diff_lanes sim land !live in
      if newly <> 0 then begin
        for j = 0 to group_size - 1 do
          if newly land (1 lsl (j + 1)) <> 0 then det_local.(base + j) <- !u
        done;
        live := !live land lnot newly;
        Ppsfp.drop_lanes sim newly
      end;
      incr u
    done
  done;
  det_local

let run_ids ?ctl ~stop_when_all_detected universe seq ids =
  match impl_of_env () with
  | Impl_ppsfp -> run_ids_ppsfp ?ctl universe seq ids
  | Impl_packed -> run_ids_packed ?ctl ~stop_when_all_detected universe seq ids

let run ?(obs = Obs.null) ?pool ?tune ?ctl ?targets
    ?(stop_when_all_detected = false) universe seq =
  let n_faults = Universe.size universe in
  let target_ids =
    match targets with
    | None -> Array.init n_faults (fun i -> i)
    | Some set -> Array.of_list (Bitset.elements set)
  in
  let pool =
    match pool with Some _ -> pool | None -> Bist_parallel.Pool.from_env ()
  in
  (* The shard closure runs on the pool's worker domains, so each span
     lands on its own trace track (tid = domain id): parallel shard
     utilisation is readable straight off the timeline. *)
  let f ids =
    Obs.span obs ~cat:"fsim" "fsim.shard"
      ~args:(fun () ->
        [ ("faults", string_of_int (Array.length ids));
          ("seq_len", string_of_int (Tseq.length seq)) ])
      (fun () -> run_ids ?ctl ~stop_when_all_detected universe seq ids)
  in
  let det_time, detected =
    Bist_parallel.Shard.detections ?pool ?tune
      ~units:(Array.length target_ids * max 1 (Tseq.length seq))
      ~size:n_faults ~f target_ids
  in
  { universe; det_time; detected }

let coverage outcome =
  float_of_int (Bitset.cardinal outcome.detected)
  /. float_of_int (Universe.size outcome.universe)

type single = { sim : Packed_sim.t }

let single circuit fault =
  let sim = Packed_sim.create circuit in
  install sim fault ~lane:1;
  { sim }

let single_detection_time s seq =
  Packed_sim.reset s.sim;
  let len = Tseq.length seq in
  let rec go u =
    if u >= len then None
    else begin
      Packed_sim.step s.sim (Tseq.get seq u);
      if Packed_sim.po_diff_lanes s.sim <> 0 then Some u else go (u + 1)
    end
  in
  go 0

let single_detects s seq = Option.is_some (single_detection_time s seq)

let detects circuit fault seq = single_detects (single circuit fault) seq
