(** Stuck-at fault simulation for synchronous sequential circuits.

    Semantics, matching the paper: both the fault-free and every faulty
    machine start each sequence in the all-unspecified state; a fault is
    detected at time unit [u] when some primary output carries a binary
    value in the fault-free machine and the opposite binary value in the
    faulty machine at time [u].

    The engine packs the fault-free machine into lane 0 of a packed word
    and up to 63 faulty machines into the remaining lanes, so one pass
    over the sequence simulates 63 faults. The default kernel is the
    event-driven {!Bist_sim.Ppsfp} core (shared fault-free trace, fault
    dropping, quiescent levels skipped); exporting [BIST_FSIM=packed]
    selects the original full-sweep {!Bist_sim.Packed_sim} kernel
    instead. Both produce bit-identical outcomes — the differential
    test suite enforces it — so the variable is purely an escape hatch
    and an A/B lever for benchmarks. *)

type outcome = {
  universe : Universe.t;
  det_time : int array;
      (** [det_time.(i)] is the first detection time of fault [i], or [-1]
          when undetected (or not a target). *)
  detected : Bist_util.Bitset.t;  (** Fault ids detected at least once. *)
}

val run :
  ?obs:Bist_obs.Obs.t ->
  ?pool:Bist_parallel.Pool.t ->
  ?tune:Bist_parallel.Tune.t ->
  ?ctl:Bist_resilience.Ctl.t ->
  ?targets:Bist_util.Bitset.t ->
  ?stop_when_all_detected:bool ->
  Universe.t ->
  Bist_logic.Tseq.t ->
  outcome
(** Simulate every target fault (default: all faults of the universe)
    under the sequence. With [stop_when_all_detected] (default [false]) a
    63-fault group stops early once all its targets are detected — use it
    when only the detected {e set} matters, not detection times.

    With [pool] (default: {!Bist_parallel.Pool.from_env}, i.e.
    sequential unless [BIST_JOBS >= 2] is exported) the target faults are
    sharded over the pool's domains, one independent simulator per shard;
    the outcome is bit-identical to the sequential one for every pool
    width ({!Bist_parallel.Shard}).

    [obs] (default {!Bist_obs.Obs.null}, a no-op) records one
    ["fsim.shard"] span per shard, tagged with the executing domain's id
    and the shard's fault count.

    [ctl] (default: none) is polled between 63-fault groups inside every
    shard — including on worker domains — and raises
    {!Bist_resilience.Ctl.Preempted} at that safe point. The caller that
    owns resumable state (engine round, compaction trial) catches it and
    re-raises its own snapshot-carrying [Interrupted]; nothing in this
    module is left partially mutated. *)

val coverage : outcome -> float
(** Detected targets / universe size. *)

(** {2 Single-fault fast path}

    Procedure 2 simulates one fault under many candidate sequences; this
    path reuses the compiled simulator across calls. *)

type single

val single : Bist_circuit.Netlist.t -> Fault.t -> single

val single_detects : single -> Bist_logic.Tseq.t -> bool
(** Early-exits at the first detection. *)

val single_detection_time : single -> Bist_logic.Tseq.t -> int option

val detects : Bist_circuit.Netlist.t -> Fault.t -> Bist_logic.Tseq.t -> bool
(** One-shot convenience wrapper around {!single}. *)
