module Tseq = Bist_logic.Tseq
module Vector = Bist_logic.Vector
module T = Bist_logic.Ternary
module Rng = Bist_util.Rng
module Packed_sim = Bist_sim.Packed_sim
module Netlist = Bist_circuit.Netlist

type config = {
  population : int;
  generations : int;
  segment_length : int;
  mutation_rate : float;
}

let default_config =
  { population = 8; generations = 12; segment_length = 32; mutation_rate = 0.05 }

type outcome = {
  segment : Tseq.t option;
  evaluations : int;
  best_fitness : int;
}

let detected_bonus = 1_000_000

(* The line whose fault-free value decides excitation: the stem for an
   output fault, the driving stem for a branch fault. *)
let excitation_node (fault : Bist_fault.Fault.t) circuit =
  match fault.Bist_fault.Fault.site with
  | Bist_fault.Fault.Output n -> n
  | Bist_fault.Fault.Pin { gate; pin } -> (Netlist.fanins circuit gate).(pin)

(* Fitness of [segment] applied after the snapshot state. *)
let fitness sim ~snapshot ~site ~stuck segment =
  Packed_sim.restore_state sim snapshot;
  let excitations = ref 0 in
  let max_state_div = ref 0 in
  let detected_at = ref (-1) in
  let len = Tseq.length segment in
  let u = ref 0 in
  while !detected_at < 0 && !u < len do
    Packed_sim.step sim (Tseq.get segment !u);
    if Packed_sim.po_diff_lanes sim land 0b10 <> 0 then detected_at := !u;
    let good = Bist_logic.Packed.get (Packed_sim.node_value sim site) 0 in
    if T.is_binary good && not (T.equal good stuck) then incr excitations;
    let div = Packed_sim.state_diff_count sim ~lane:1 in
    if div > !max_state_div then max_state_div := div;
    incr u
  done;
  (if !detected_at >= 0 then detected_bonus - !detected_at else 0)
  + (100 * !max_state_div) + !excitations

let random_segment rng ~width ~length =
  Tseq.of_vectors (Array.init length (fun _ -> Vector.random_binary rng width))

let mutate rng ~rate segment =
  let width = Tseq.width segment in
  let vecs = Tseq.to_array segment in
  let mutated =
    Array.map
      (fun v ->
        let flipped = ref v in
        for i = 0 to width - 1 do
          if Rng.bernoulli rng rate then
            flipped := Vector.set !flipped i (T.not_ (Vector.get !flipped i))
        done;
        !flipped)
      vecs
  in
  Tseq.of_vectors mutated

let crossover rng a b =
  let len = min (Tseq.length a) (Tseq.length b) in
  if len < 2 then a
  else begin
    let cut = 1 + Rng.int rng (len - 1) in
    Tseq.concat (Tseq.sub a ~lo:0 ~hi:(cut - 1)) (Tseq.sub b ~lo:cut ~hi:(len - 1))
  end

let search ?(config = default_config) ~rng ~prefix circuit fault =
  let width = Netlist.num_inputs circuit in
  let sim = Packed_sim.create circuit in
  (match (fault : Bist_fault.Fault.t) with
   | { site = Bist_fault.Fault.Output n; stuck } ->
     Packed_sim.add_output_force sim n ~mask:0b10 stuck
   | { site = Bist_fault.Fault.Pin { gate; pin }; stuck } ->
     Packed_sim.add_pin_force sim ~gate ~pin ~mask:0b10 stuck);
  Packed_sim.reset sim;
  Tseq.iter (fun v -> Packed_sim.step sim v) prefix;
  let snapshot = Packed_sim.save_state sim in
  let site = excitation_node fault circuit in
  let stuck = fault.Bist_fault.Fault.stuck in
  let evaluations = ref 0 in
  let eval segment =
    incr evaluations;
    fitness sim ~snapshot ~site ~stuck segment
  in
  let population =
    ref
      (Array.init config.population (fun _ ->
           let s = random_segment rng ~width ~length:config.segment_length in
           (eval s, s)))
  in
  let best () =
    Array.fold_left (fun acc (f, s) -> match acc with
        | Some (bf, _) when bf >= f -> acc
        | _ -> Some (f, s))
      None !population
    |> Option.get
  in
  let generation = ref 0 in
  while !generation < config.generations && fst (best ()) < detected_bonus do
    incr generation;
    let sorted =
      Array.of_list
        (List.sort (fun (a, _) (b, _) -> Int.compare b a) (Array.to_list !population))
    in
    let elite = Array.sub sorted 0 (max 1 (config.population / 4)) in
    let next =
      Array.init config.population (fun i ->
          if i < Array.length elite then elite.(i)
          else begin
            let parent_a = snd (Rng.choose rng elite) in
            let child =
              match Rng.int rng 3 with
              | 0 -> mutate rng ~rate:config.mutation_rate parent_a
              | 1 -> crossover rng parent_a (snd (Rng.choose rng sorted))
              | _ -> random_segment rng ~width ~length:config.segment_length
            in
            (eval child, child)
          end)
    in
    population := next
  done;
  let best_fitness, best_segment = best () in
  {
    segment = (if best_fitness >= detected_bonus - Tseq.length best_segment then Some best_segment else None);
    evaluations = !evaluations;
    best_fitness;
  }

let order_hardest_first scoap universe ids =
  let cost = Array.map (fun id ->
      Bist_analyze.Scoap.fault_cost scoap (Bist_fault.Universe.get universe id)) ids
  in
  let keyed = Array.mapi (fun i id -> (cost.(i), id)) ids in
  Array.sort
    (fun (ca, ia) (cb, ib) -> if ca <> cb then compare cb ca else compare ia ib)
    keyed;
  Array.iteri (fun i (_, id) -> ids.(i) <- id) keyed
