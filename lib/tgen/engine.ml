module Tseq = Bist_logic.Tseq
module Vector = Bist_logic.Vector
module Bitset = Bist_util.Bitset
module Rng = Bist_util.Rng
module Universe = Bist_fault.Universe
module Fsim = Bist_fault.Fsim
module Obs = Bist_obs.Obs

type config = {
  segment_length : int;
  candidates_per_round : int;
  patience : int;
  max_length : int;
  hold_options : int list;
  weighted_p : float list;
  sample_cap : int;
  directed_budget : int;
  prescreen : bool;
}

let default_config circuit =
  let ffs = Bist_circuit.Netlist.num_dffs circuit in
  let nodes = Bist_circuit.Netlist.size circuit in
  let big = nodes >= 2000 in
  {
    segment_length = max 24 (min 80 (3 * ffs));
    candidates_per_round = (if big then 5 else 8);
    patience = (if big then 6 else 10);
    max_length = 1200;
    hold_options = [ 1; 1; 2; 4; 8 ];
    weighted_p = [ 0.2; 0.35; 0.5; 0.5; 0.65; 0.8 ];
    sample_cap = 1500;
    directed_budget = 0;
    prescreen = true;
  }

type stats = {
  rounds : int;
  segments_accepted : int;
  detected : int;
  total_faults : int;
  statically_untestable : int;
}

let random_segment rng ~width ~length ~p_one ~hold =
  let distinct = (length + hold - 1) / hold in
  let vectors = Array.init distinct (fun _ -> Vector.random_weighted rng width ~p_one) in
  Tseq.of_vectors (Array.init length (fun i -> vectors.(i / hold)))

let candidate config rng ~width =
  let p_one =
    List.nth config.weighted_p (Rng.int rng (List.length config.weighted_p))
  in
  let hold =
    List.nth config.hold_options (Rng.int rng (List.length config.hold_options))
  in
  random_segment rng ~width ~length:config.segment_length ~p_one ~hold

(* Evenly-spaced fault sample: classic fault sampling keeps candidate
   scoring cheap when many faults remain. *)
let sample_targets remaining cap =
  let total = Bitset.cardinal remaining in
  if total <= cap then remaining
  else begin
    let sample = Bitset.create (Bitset.capacity remaining) in
    let stride = total / cap in
    let i = ref 0 in
    Bitset.iter
      (fun id ->
        if !i mod stride = 0 then Bitset.add sample id;
        incr i)
      remaining;
    sample
  end

let generate ?config ?(obs = Obs.null) ?pool ~rng universe =
  let circuit = Universe.circuit universe in
  let config = Option.value config ~default:(default_config circuit) in
  let width = Bist_circuit.Netlist.num_inputs circuit in
  (* Faults the static prover marks untestable never enter the remaining
     set: Procedure 1 would otherwise burn its patience budget chasing
     faults no sequence can detect. Sound — the prover has no false
     positives — and invisible in the final coverage numbers, which come
     from a full fault simulation at the end. *)
  let untestable =
    if config.prescreen then
      Obs.span obs ~cat:"engine" "engine.prescreen" (fun () ->
          (Bist_analyze.Untestable.prescreen_universe universe)
            .Bist_analyze.Untestable.untestable)
    else Bitset.create (Universe.size universe)
  in
  let remaining = Bitset.create (Universe.size universe) in
  Bitset.fill remaining;
  Bitset.diff_into remaining untestable;
  let t0 = ref (Tseq.empty width) in
  let rounds = ref 0 in
  let accepted = ref 0 in
  (* One greedy phase: propose candidates, score them on (a sample of)
     the remaining faults, keep the best, update the remaining set with a
     full re-simulation of the accepted segment. [embed] controls whether
     candidates are scored standalone (cheap) or appended to T0 (catches
     faults that need more warm-up than one segment; sound either way by
     ternary monotonicity). *)
  let phase ~embed ~patience ~candidates_per_round =
    let round () =
      incr rounds;
      let eval_targets = sample_targets remaining config.sample_cap in
      let best = ref None in
      for _ = 1 to candidates_per_round do
        let seg = candidate config rng ~width in
        let scored = if embed then Tseq.concat !t0 seg else seg in
        let outcome =
          Fsim.run ~obs ?pool ~targets:eval_targets ~stop_when_all_detected:true
            universe scored
        in
        let gain = Bitset.cardinal outcome.Fsim.detected in
        match !best with
        | Some (best_gain, _) when best_gain >= gain -> ()
        | _ -> if gain > 0 then best := Some (gain, seg)
      done;
      match !best with
      | None -> None
      | Some (gain, seg) ->
        incr accepted;
        let full = Tseq.concat !t0 seg in
        let scored = if embed then full else seg in
        let outcome =
          Fsim.run ~obs ?pool ~targets:remaining ~stop_when_all_detected:true
            universe scored
        in
        t0 := full;
        Bitset.diff_into remaining outcome.Fsim.detected;
        Some gain
    in
    let fruitless = ref 0 in
    while
      !fruitless < patience
      && Tseq.length !t0 < config.max_length
      && not (Bitset.is_empty remaining)
    do
      let this_round = !rounds + 1 in
      let outcome =
        Obs.span obs ~cat:"engine" "engine.round"
          ~args:(fun () ->
            [ ("round", string_of_int this_round);
              ("embed", string_of_bool embed);
              ("remaining", string_of_int (Bitset.cardinal remaining)) ])
          round
      in
      match outcome with
      | None -> incr fruitless
      | Some _ -> fruitless := 0
    done
  in
  Obs.span obs ~cat:"engine" "engine.selection"
    ~args:(fun () -> [ ("embed", "false") ])
    (fun () ->
      phase ~embed:false ~patience:config.patience
        ~candidates_per_round:config.candidates_per_round);
  (* Re-baseline against the concatenated T0 (embedding can only add
     detections), then refine with embedded scoring. *)
  let embedded =
    Obs.span obs ~cat:"engine" "engine.rebaseline" (fun () ->
        Fsim.run ~obs ?pool ~stop_when_all_detected:true universe !t0)
  in
  Bitset.clear remaining;
  Bitset.fill remaining;
  Bitset.diff_into remaining untestable;
  Bitset.diff_into remaining embedded.Fsim.detected;
  Obs.span obs ~cat:"engine" "engine.selection"
    ~args:(fun () -> [ ("embed", "true") ])
    (fun () ->
      phase ~embed:true
        ~patience:(max 4 (config.patience / 2))
        ~candidates_per_round:(max 3 (config.candidates_per_round / 2)));
  (* Directed tail: attack a few of the surviving faults one by one with
     the genetic search, seeding each attempt after the full current T0. *)
  if config.directed_budget > 0 then
    Obs.span obs ~cat:"engine" "engine.directed"
      ~args:(fun () ->
        [ ("budget", string_of_int config.directed_budget);
          ("remaining", string_of_int (Bitset.cardinal remaining)) ])
      (fun () ->
        let attempts = ref 0 in
        let target_ids = Array.of_list (Bitset.elements remaining) in
        (* Hardest targets first: SCOAP-expensive faults benefit most from
           the genetic search, and the easy stragglers are often swept up
           for free by the segments it produces. *)
        let scoap = Bist_analyze.Scoap.compute circuit in
        Directed.order_hardest_first scoap universe target_ids;
        Array.iter
          (fun id ->
            if
              !attempts < config.directed_budget
              && Bitset.mem remaining id
              && Tseq.length !t0 < config.max_length
            then begin
              incr attempts;
              let fault = Universe.get universe id in
              let outcome = Directed.search ~rng ~prefix:!t0 circuit fault in
              match outcome.Directed.segment with
              | None -> ()
              | Some seg ->
                incr accepted;
                let full = Tseq.concat !t0 seg in
                let detected =
                  (Fsim.run ~obs ?pool ~targets:remaining
                     ~stop_when_all_detected:true universe full)
                    .Fsim.detected
                in
                t0 := full;
                Bitset.diff_into remaining detected
            end)
          target_ids);
  let final =
    Obs.span obs ~cat:"engine" "engine.final_fsim" (fun () ->
        Fsim.run ~obs ?pool universe !t0)
  in
  Obs.count obs ~by:!rounds "engine.rounds";
  Obs.count obs ~by:!accepted "engine.segments_accepted";
  Obs.gauge obs "engine.t0_length" (float_of_int (Tseq.length !t0));
  ( !t0,
    {
      rounds = !rounds;
      segments_accepted = !accepted;
      detected = Bitset.cardinal final.Fsim.detected;
      total_faults = Universe.size universe;
      statically_untestable = Bitset.cardinal untestable;
    } )
