module Tseq = Bist_logic.Tseq
module Vector = Bist_logic.Vector
module Bitset = Bist_util.Bitset
module Rng = Bist_util.Rng
module Universe = Bist_fault.Universe
module Fsim = Bist_fault.Fsim
module Obs = Bist_obs.Obs
module Ctl = Bist_resilience.Ctl
module Checkpoint = Bist_resilience.Checkpoint

type config = {
  segment_length : int;
  candidates_per_round : int;
  patience : int;
  max_length : int;
  hold_options : int list;
  weighted_p : float list;
  sample_cap : int;
  directed_budget : int;
  prescreen : bool;
  sat_budget : int;
  sat_frames : int;
  sat_conflicts : int;
}

let default_config circuit =
  let ffs = Bist_circuit.Netlist.num_dffs circuit in
  let nodes = Bist_circuit.Netlist.size circuit in
  let big = nodes >= 2000 in
  {
    segment_length = max 24 (min 80 (3 * ffs));
    candidates_per_round = (if big then 5 else 8);
    patience = (if big then 6 else 10);
    max_length = 1200;
    hold_options = [ 1; 1; 2; 4; 8 ];
    weighted_p = [ 0.2; 0.35; 0.5; 0.5; 0.65; 0.8 ];
    sample_cap = 1500;
    directed_budget = 0;
    prescreen = true;
    sat_budget = 0;
    sat_frames = 8;
    sat_conflicts = Bist_sat.Satgen.default_conflicts;
  }

type stats = {
  rounds : int;
  segments_accepted : int;
  detected : int;
  total_faults : int;
  statically_untestable : int;
  sat_proved : int;
  sat_tests : int;
}

(* The resumable position inside [generate]. Every tag is a state from
   which the rest of the run is a deterministic function of the snapshot
   fields: resuming here and never having been interrupted produce the
   same bits. *)
type phase =
  | Standalone
  | Rebaseline
  | Embedded
  | Directed_tail of { ids : int array; next : int; attempts : int }
  | Sat_tail of { ids : int array; next : int; proved : int; tests : int }
  | Finalize

type snapshot = {
  phase : phase;
  t0 : Tseq.t;
  remaining : Bitset.t;
  untestable : Bitset.t;
  rounds : int;
  accepted : int;
  fruitless : int;
  rng : Rng.t;
}

exception Interrupted of snapshot

let () =
  Printexc.register_printer (function
    | Interrupted s ->
      Some
        (Printf.sprintf
           "Engine.Interrupted (T0 at %d vectors, %d faults remaining)"
           (Tseq.length s.t0)
           (Bitset.cardinal s.remaining))
    | _ -> None)

let random_segment rng ~width ~length ~p_one ~hold =
  let distinct = (length + hold - 1) / hold in
  let vectors = Array.init distinct (fun _ -> Vector.random_weighted rng width ~p_one) in
  Tseq.of_vectors (Array.init length (fun i -> vectors.(i / hold)))

let candidate config rng ~width =
  let p_one =
    List.nth config.weighted_p (Rng.int rng (List.length config.weighted_p))
  in
  let hold =
    List.nth config.hold_options (Rng.int rng (List.length config.hold_options))
  in
  random_segment rng ~width ~length:config.segment_length ~p_one ~hold

(* Evenly-spaced fault sample: classic fault sampling keeps candidate
   scoring cheap when many faults remain. *)
let sample_targets remaining cap =
  let total = Bitset.cardinal remaining in
  if total <= cap then remaining
  else begin
    let sample = Bitset.create (Bitset.capacity remaining) in
    let stride = total / cap in
    let i = ref 0 in
    Bitset.iter
      (fun id ->
        if !i mod stride = 0 then Bitset.add sample id;
        incr i)
      remaining;
    sample
  end

let rank_directed = 3
let rank_sat = 4

let phase_rank = function
  | Standalone -> 0
  | Rebaseline -> 1
  | Embedded -> 2
  | Directed_tail _ -> rank_directed
  | Sat_tail _ -> rank_sat
  | Finalize -> 5

let generate ?config ?(obs = Obs.null) ?pool ?ctl ?resume ~rng universe =
  let circuit = Universe.circuit universe in
  let config = Option.value config ~default:(default_config circuit) in
  let width = Bist_circuit.Netlist.num_inputs circuit in
  (match resume with
  | Some s ->
    if Bitset.capacity s.remaining <> Universe.size universe then
      raise
        (Checkpoint.Mismatch
           (Printf.sprintf
              "snapshot holds %d faults, universe has %d — wrong circuit or \
               fault model"
              (Bitset.capacity s.remaining)
              (Universe.size universe)));
    if Tseq.width s.t0 <> width then
      raise
        (Checkpoint.Mismatch
           (Printf.sprintf "snapshot T0 is %d inputs wide, circuit has %d"
              (Tseq.width s.t0) width))
  | None -> ());
  (* Faults the static prover marks untestable never enter the remaining
     set: Procedure 1 would otherwise burn its patience budget chasing
     faults no sequence can detect. Sound — the prover has no false
     positives — and invisible in the final coverage numbers, which come
     from a full fault simulation at the end. On resume both sets come
     from the snapshot; the prescreen is not re-run. *)
  let untestable =
    match resume with
    | Some s -> Bitset.copy s.untestable
    | None ->
      if config.prescreen then
        Obs.span obs ~cat:"engine" "engine.prescreen" (fun () ->
            (Bist_analyze.Untestable.prescreen_universe universe)
              .Bist_analyze.Untestable.untestable)
      else Bitset.create (Universe.size universe)
  in
  let remaining =
    match resume with
    | Some s -> Bitset.copy s.remaining
    | None ->
      let remaining = Bitset.create (Universe.size universe) in
      Bitset.fill remaining;
      Bitset.diff_into remaining untestable;
      remaining
  in
  let rng = match resume with Some s -> Rng.copy s.rng | None -> rng in
  let t0 = ref (match resume with Some s -> s.t0 | None -> Tseq.empty width) in
  let rounds = ref (match resume with Some s -> s.rounds | None -> 0) in
  let accepted = ref (match resume with Some s -> s.accepted | None -> 0) in
  let start_phase = match resume with Some s -> s.phase | None -> Standalone in
  let start_rank = phase_rank start_phase in
  let initial_fruitless =
    match resume with Some s -> s.fruitless | None -> 0
  in
  let snapshot ~phase ~fruitless ~rng:r =
    {
      phase;
      t0 = !t0;
      remaining = Bitset.copy remaining;
      untestable = Bitset.copy untestable;
      rounds = !rounds;
      accepted = !accepted;
      fruitless;
      rng = Rng.copy r;
    }
  in
  let interrupt ~phase ~fruitless ~rng:r =
    raise (Interrupted (snapshot ~phase ~fruitless ~rng:r))
  in
  (* Poll at a safe point where [make_snap ()] describes the exact
     current state; deadline overruns and cancellations both land here. *)
  let poll_or_interrupt ~phase ~fruitless =
    match ctl with
    | None -> ()
    | Some c ->
      if Ctl.stop_reason c <> None then interrupt ~phase ~fruitless ~rng
  in
  let committed () =
    match ctl with None -> () | Some c -> Ctl.note_progress c
  in
  (* One greedy phase: propose candidates, score them on (a sample of)
     the remaining faults, keep the best, update the remaining set with a
     full re-simulation of the accepted segment. [embed] controls whether
     candidates are scored standalone (cheap) or appended to T0 (catches
     faults that need more warm-up than one segment; sound either way by
     ternary monotonicity). *)
  let phase_loop ~tag ~embed ~patience ~candidates_per_round ~fruitless0 =
    let round () =
      incr rounds;
      let eval_targets = sample_targets remaining config.sample_cap in
      let best = ref None in
      for _ = 1 to candidates_per_round do
        let seg = candidate config rng ~width in
        let scored = if embed then Tseq.concat !t0 seg else seg in
        let outcome =
          Fsim.run ~obs ?pool ?ctl ~targets:eval_targets
            ~stop_when_all_detected:true universe scored
        in
        let gain = Bitset.cardinal outcome.Fsim.detected in
        match !best with
        | Some (best_gain, _) when best_gain >= gain -> ()
        | _ -> if gain > 0 then best := Some (gain, seg)
      done;
      match !best with
      | None -> None
      | Some (gain, seg) ->
        incr accepted;
        let full = Tseq.concat !t0 seg in
        let scored = if embed then full else seg in
        let outcome =
          Fsim.run ~obs ?pool ?ctl ~targets:remaining
            ~stop_when_all_detected:true universe scored
        in
        t0 := full;
        Bitset.diff_into remaining outcome.Fsim.detected;
        Some gain
    in
    let fruitless = ref fruitless0 in
    while
      !fruitless < patience
      && Tseq.length !t0 < config.max_length
      && not (Bitset.is_empty remaining)
    do
      poll_or_interrupt ~phase:tag ~fruitless:!fruitless;
      (* A round mutates [t0]/[remaining] only after its last fault
         simulation, so a [Preempted] escaping mid-round leaves them at
         their round-entry values; restoring the counters and the
         round-entry rng makes the snapshot exactly the round boundary,
         and the resumed run replays the round bit-identically. *)
      let rng_entry = Rng.copy rng in
      let rounds_entry = !rounds and accepted_entry = !accepted in
      let this_round = !rounds + 1 in
      match
        Obs.span obs ~cat:"engine" "engine.round"
          ~args:(fun () ->
            [ ("round", string_of_int this_round);
              ("embed", string_of_bool embed);
              ("remaining", string_of_int (Bitset.cardinal remaining)) ])
          round
      with
      | None ->
        incr fruitless;
        committed ()
      | Some _ ->
        fruitless := 0;
        committed ()
      | exception Ctl.Preempted _ ->
        rounds := rounds_entry;
        accepted := accepted_entry;
        interrupt ~phase:tag ~fruitless:!fruitless ~rng:rng_entry
    done
  in
  if start_rank <= phase_rank Standalone then
    Obs.span obs ~cat:"engine" "engine.selection"
      ~args:(fun () -> [ ("embed", "false") ])
      (fun () ->
        phase_loop ~tag:Standalone ~embed:false ~patience:config.patience
          ~candidates_per_round:config.candidates_per_round
          ~fruitless0:(if start_phase = Standalone then initial_fruitless else 0));
  (* Re-baseline against the concatenated T0 (embedding can only add
     detections), then refine with embedded scoring. *)
  if start_rank <= phase_rank Rebaseline then begin
    poll_or_interrupt ~phase:Rebaseline ~fruitless:0;
    match
      Obs.span obs ~cat:"engine" "engine.rebaseline" (fun () ->
          Fsim.run ~obs ?pool ?ctl ~stop_when_all_detected:true universe !t0)
    with
    | embedded ->
      Bitset.clear remaining;
      Bitset.fill remaining;
      Bitset.diff_into remaining untestable;
      Bitset.diff_into remaining embedded.Fsim.detected;
      committed ()
    | exception Ctl.Preempted _ -> interrupt ~phase:Rebaseline ~fruitless:0 ~rng
  end;
  if start_rank <= phase_rank Embedded then
    Obs.span obs ~cat:"engine" "engine.selection"
      ~args:(fun () -> [ ("embed", "true") ])
      (fun () ->
        phase_loop ~tag:Embedded ~embed:true
          ~patience:(max 4 (config.patience / 2))
          ~candidates_per_round:(max 3 (config.candidates_per_round / 2))
          ~fruitless0:(if start_phase = Embedded then initial_fruitless else 0));
  (* Directed tail: attack a few of the surviving faults one by one with
     the genetic search, seeding each attempt after the full current T0. *)
  if config.directed_budget > 0 && start_rank <= rank_directed then
    Obs.span obs ~cat:"engine" "engine.directed"
      ~args:(fun () ->
        [ ("budget", string_of_int config.directed_budget);
          ("remaining", string_of_int (Bitset.cardinal remaining)) ])
      (fun () ->
        let target_ids, next0, attempts0 =
          match start_phase with
          | Directed_tail { ids; next; attempts } -> (ids, next, attempts)
          | _ ->
            let target_ids = Array.of_list (Bitset.elements remaining) in
            (* Hardest targets first: SCOAP-expensive faults benefit most
               from the genetic search, and the easy stragglers are often
               swept up for free by the segments it produces. *)
            let scoap = Bist_analyze.Scoap.compute circuit in
            Directed.order_hardest_first scoap universe target_ids;
            (target_ids, 0, 0)
        in
        let attempts = ref attempts0 in
        let i = ref next0 in
        while !i < Array.length target_ids do
          let directed_at next =
            Directed_tail { ids = target_ids; next; attempts = !attempts }
          in
          poll_or_interrupt ~phase:(directed_at !i) ~fruitless:0;
          let id = target_ids.(!i) in
          if
            !attempts < config.directed_budget
            && Bitset.mem remaining id
            && Tseq.length !t0 < config.max_length
          then begin
            let rng_entry = Rng.copy rng in
            let attempts_entry = !attempts and accepted_entry = !accepted in
            try
              incr attempts;
              let fault = Universe.get universe id in
              let outcome = Directed.search ~rng ~prefix:!t0 circuit fault in
              (match outcome.Directed.segment with
              | None -> ()
              | Some seg ->
                incr accepted;
                let full = Tseq.concat !t0 seg in
                let detected =
                  (Fsim.run ~obs ?pool ?ctl ~targets:remaining
                     ~stop_when_all_detected:true universe full)
                    .Fsim.detected
                in
                t0 := full;
                Bitset.diff_into remaining detected);
              committed ()
            with Ctl.Preempted _ ->
              attempts := attempts_entry;
              accepted := accepted_entry;
              interrupt
                ~phase:
                  (Directed_tail
                     { ids = target_ids; next = !i; attempts = attempts_entry })
                ~fruitless:0 ~rng:rng_entry
          end;
          incr i
        done);
  (* SAT tail: bounded-exact queries on whatever survived every search
     phase. An UNSAT answer removes the fault from [remaining] — no
     sequence of length <= sat_frames detects it, and in practice those
     faults never fall to search either. A model is decoded into an
     input sequence, validated against the fault simulator inside
     {!Bist_sat.Satgen}, and appended to T0: by ternary monotonicity a
     sequence that detects from the all-X state still detects embedded
     after T0 (the same argument the standalone phase rests on). The
     solver is deterministic and consumes no rng, so preempting between
     faults and resuming stays bit-identical. *)
  let sat_proved = ref 0 and sat_tests = ref 0 in
  (match start_phase with
  | Sat_tail { proved; tests; _ } ->
    sat_proved := proved;
    sat_tests := tests
  | _ -> ());
  if config.sat_budget > 0 && start_rank <= rank_sat then
    Obs.span obs ~cat:"engine" "engine.sat_tail"
      ~args:(fun () ->
        [ ("budget", string_of_int config.sat_budget);
          ("frames", string_of_int config.sat_frames);
          ("remaining", string_of_int (Bitset.cardinal remaining)) ])
      (fun () ->
        let target_ids, next0 =
          match start_phase with
          | Sat_tail { ids; next; _ } -> (ids, next)
          | _ ->
            (* Fault-id order: deterministic and independent of the
               search history that produced the survivors. *)
            let ids = Array.of_list (Bitset.elements remaining) in
            let n = min config.sat_budget (Array.length ids) in
            (Array.sub ids 0 n, 0)
        in
        let view =
          lazy (Bist_sat.Cnf.view ~frames:config.sat_frames circuit)
        in
        let i = ref next0 in
        while !i < Array.length target_ids do
          let sat_at next =
            Sat_tail
              { ids = target_ids; next; proved = !sat_proved;
                tests = !sat_tests }
          in
          poll_or_interrupt ~phase:(sat_at !i) ~fruitless:0;
          let id = target_ids.(!i) in
          (* Unlike the search phases, the SAT tail ignores
             [max_length]: the greedy budget being spent is exactly the
             situation the tail exists for, proofs do not grow [T0] at
             all, and the overshoot from appended tests is bounded by
             [sat_budget * sat_frames] vectors. *)
          if Bitset.mem remaining id then begin
            let proved_entry = !sat_proved
            and tests_entry = !sat_tests
            and accepted_entry = !accepted in
            try
              let fault = Universe.get universe id in
              (match
                 Bist_sat.Satgen.solve_fault ~obs ?ctl
                   ~max_conflicts:config.sat_conflicts (Lazy.force view)
                   fault
               with
              | Bist_sat.Satgen.Unreachable | Bist_sat.Satgen.Blocked ->
                incr sat_proved;
                Bitset.remove remaining id
              | Bist_sat.Satgen.Test seg ->
                incr sat_tests;
                incr accepted;
                let full = Tseq.concat !t0 seg in
                let detected =
                  (Fsim.run ~obs ?pool ?ctl ~targets:remaining
                     ~stop_when_all_detected:true universe full)
                    .Fsim.detected
                in
                t0 := full;
                Bitset.diff_into remaining detected
              | Bist_sat.Satgen.Unknown -> ());
              committed ()
            with Ctl.Preempted _ ->
              sat_proved := proved_entry;
              sat_tests := tests_entry;
              accepted := accepted_entry;
              interrupt ~phase:(sat_at !i) ~fruitless:0 ~rng
          end;
          incr i
        done);
  poll_or_interrupt ~phase:Finalize ~fruitless:0;
  let final =
    match
      Obs.span obs ~cat:"engine" "engine.final_fsim" (fun () ->
          Fsim.run ~obs ?pool ?ctl universe !t0)
    with
    | final -> final
    | exception Ctl.Preempted _ -> interrupt ~phase:Finalize ~fruitless:0 ~rng
  in
  Obs.count obs ~by:!rounds "engine.rounds";
  Obs.count obs ~by:!accepted "engine.segments_accepted";
  Obs.gauge obs "engine.t0_length" (float_of_int (Tseq.length !t0));
  ( !t0,
    {
      rounds = !rounds;
      segments_accepted = !accepted;
      detected = Bitset.cardinal final.Fsim.detected;
      total_faults = Universe.size universe;
      statically_untestable = Bitset.cardinal untestable;
      sat_proved = !sat_proved;
      sat_tests = !sat_tests;
    } )

(* Snapshot codec — the [tgen] checkpoint payload section owned by the
   engine. Decoding validates tags and index bounds; anything off raises
   {!Checkpoint.Corrupt} via the bounded reader. *)

module Io = Checkpoint.Io

let encode_snapshot w s =
  (match s.phase with
  | Standalone -> Io.u8 w 0
  | Rebaseline -> Io.u8 w 1
  | Embedded -> Io.u8 w 2
  | Directed_tail { ids; next; attempts } ->
    Io.u8 w 3;
    Io.u32 w (Array.length ids);
    Array.iter (Io.u32 w) ids;
    Io.u32 w next;
    Io.u32 w attempts
  | Finalize -> Io.u8 w 4
  | Sat_tail { ids; next; proved; tests } ->
    Io.u8 w 5;
    Io.u32 w (Array.length ids);
    Array.iter (Io.u32 w) ids;
    Io.u32 w next;
    Io.u32 w proved;
    Io.u32 w tests);
  Checkpoint.tseq w s.t0;
  Checkpoint.bitset w s.remaining;
  Checkpoint.bitset w s.untestable;
  Io.u32 w s.rounds;
  Io.u32 w s.accepted;
  Io.u32 w s.fruitless;
  Checkpoint.rng w s.rng

let decode_snapshot r =
  let phase =
    match Io.r_u8 r with
    | 0 -> Standalone
    | 1 -> Rebaseline
    | 2 -> Embedded
    | 3 ->
      let n = Io.r_u32 r in
      let ids = Array.init n (fun _ -> Io.r_u32 r) in
      let next = Io.r_u32 r in
      let attempts = Io.r_u32 r in
      if next > n then
        raise
          (Checkpoint.Corrupt
             (Printf.sprintf "directed cursor %d past %d targets" next n));
      Directed_tail { ids; next; attempts }
    | 4 -> Finalize
    | 5 ->
      let n = Io.r_u32 r in
      let ids = Array.init n (fun _ -> Io.r_u32 r) in
      let next = Io.r_u32 r in
      let proved = Io.r_u32 r in
      let tests = Io.r_u32 r in
      if next > n then
        raise
          (Checkpoint.Corrupt
             (Printf.sprintf "sat cursor %d past %d targets" next n));
      Sat_tail { ids; next; proved; tests }
    | tag ->
      raise (Checkpoint.Corrupt (Printf.sprintf "unknown engine phase tag %d" tag))
  in
  let t0 = Checkpoint.r_tseq r in
  let remaining = Checkpoint.r_bitset r in
  let untestable = Checkpoint.r_bitset r in
  let rounds = Io.r_u32 r in
  let accepted = Io.r_u32 r in
  let fruitless = Io.r_u32 r in
  let rng = Checkpoint.r_rng r in
  { phase; t0; remaining; untestable; rounds; accepted; fruitless; rng }

let snapshot_equal a b =
  let phase_equal =
    match (a.phase, b.phase) with
    | Standalone, Standalone | Rebaseline, Rebaseline | Embedded, Embedded
    | Finalize, Finalize ->
      true
    | Directed_tail x, Directed_tail y ->
      x.ids = y.ids && x.next = y.next && x.attempts = y.attempts
    | Sat_tail x, Sat_tail y ->
      x.ids = y.ids && x.next = y.next && x.proved = y.proved
      && x.tests = y.tests
    | _ -> false
  in
  phase_equal && Tseq.equal a.t0 b.t0
  && Bitset.equal a.remaining b.remaining
  && Bitset.equal a.untestable b.untestable
  && a.rounds = b.rounds && a.accepted = b.accepted && a.fruitless = b.fruitless
  && Rng.export a.rng = Rng.export b.rng
