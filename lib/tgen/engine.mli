(** Deterministic test-sequence generation — the [T0] substrate.

    The paper takes [T0] from STRATEGATE (a GA-based sequential ATPG we
    do not have); this engine is the documented substitute. It grows [T0]
    segment by segment with fault-simulation feedback: each round proposes
    several candidate segments (plain random, weighted random with biased
    one-probability, and hold-mode segments that repeat each vector
    several times, after Nachman et al. [3]), keeps the candidate that
    detects the most still-undetected faults, and stops after a run of
    fruitless rounds.

    Because three-valued gate functions are monotone in the information
    order, a fault detected by a segment simulated from the all-X state is
    also detected when the segment runs embedded in the concatenated
    [T0] — so coverage only grows as segments are appended. *)

type config = {
  segment_length : int;  (** Vectors per candidate segment. *)
  candidates_per_round : int;
  patience : int;  (** Fruitless rounds tolerated before stopping. *)
  max_length : int;
      (** Hard cap on the length of [T0] during the search phases. The
          SAT tail is exempt: it targets exactly the faults the search
          abandoned after this budget ran out, and its overshoot is
          bounded by [sat_budget * sat_frames] vectors. *)
  hold_options : int list;  (** Hold factors sampled for hold-mode candidates. *)
  weighted_p : float list;  (** One-probabilities sampled for weighted candidates. *)
  sample_cap : int;
      (** When more than this many faults remain, candidates are scored
          against an evenly-spaced sample of that size (classic fault
          sampling); the accepted segment is then re-simulated against
          the full remaining set. *)
  directed_budget : int;
      (** Number of still-undetected faults to attack with the
          genetic {!Directed} search after the random phases (0 disables
          the phase, the default — it is the expensive, high-yield
          tail). Targets are attacked hardest-first by SCOAP cost
          ({!Directed.order_hardest_first}). *)
  prescreen : bool;
      (** Run the {!Bist_analyze.Untestable} prover first and exclude
          provably untestable faults from the generation targets (on by
          default). Final coverage is unaffected — those faults were
          undetectable — but the patience budget stops being spent on
          them. *)
  sat_budget : int;
      (** Number of surviving faults to hand to the bounded-exact SAT
          back end ({!Bist_sat.Satgen}) after every search phase has
          given up (0 disables the phase, the default). An UNSAT answer
          within [sat_frames] time frames retires the fault; a model is
          decoded into an input sequence, validated against the fault
          simulator, and appended to [T0]. *)
  sat_frames : int;  (** Time-frame bound of the SAT unrolling. *)
  sat_conflicts : int;
      (** Per-solve conflict budget before a fault is left to the final
          coverage numbers. *)
}

val default_config : Bist_circuit.Netlist.t -> config
(** Scales the segment length with the circuit's sequential depth. *)

type stats = {
  rounds : int;
  segments_accepted : int;
  detected : int;  (** Faults the final [T0] detects. *)
  total_faults : int;
  statically_untestable : int;
      (** Faults the prescreen proved untestable (0 when disabled). *)
  sat_proved : int;
      (** Faults the SAT tail proved untestable within [sat_frames]
          time frames (0 when the phase is disabled). *)
  sat_tests : int;
      (** SAT-derived, simulator-validated sequences appended to [T0]
          for faults every search phase had aborted on. *)
}

(** {2 Preemption and resume}

    Generation can be interrupted at {e safe points} — boundaries where
    the whole run state is a handful of values — and later resumed from a
    snapshot of that state. The headline invariant, pinned by the test
    suite: a run that is preempted any number of times and resumed from
    each snapshot produces the same [T0] and the same statistics,
    bit for bit, as one uninterrupted run with the same seed. *)

type phase =
  | Standalone  (** Greedy rounds, candidates scored from the all-X state. *)
  | Rebaseline  (** About to re-simulate the concatenated [T0]. *)
  | Embedded  (** Greedy rounds, candidates scored appended to [T0]. *)
  | Directed_tail of { ids : int array; next : int; attempts : int }
      (** Between directed attempts: [ids] is the hardest-first target
          order fixed when the phase began (it cannot be recomputed —
          [remaining] has shrunk since), [next] indexes the next target,
          [attempts] counts search attempts spent so far. *)
  | Sat_tail of { ids : int array; next : int; proved : int; tests : int }
      (** Between SAT queries: [ids] is the fault-id-ordered target
          slice fixed when the phase began, [next] indexes the next
          target, [proved]/[tests] snapshot the phase counters (the
          solver consumes no rng, so resuming here is bit-identical). *)
  | Finalize  (** About to run the final coverage simulation. *)

type snapshot = {
  phase : phase;
  t0 : Bist_logic.Tseq.t;
  remaining : Bist_util.Bitset.t;
  untestable : Bist_util.Bitset.t;
  rounds : int;
  accepted : int;
  fruitless : int;  (** Fruitless-round streak inside the current phase. *)
  rng : Bist_util.Rng.t;
}
(** Everything [generate] needs to continue from a safe point. The
    bitsets and rng are private copies — mutating them does not disturb a
    snapshot already taken. *)

exception Interrupted of snapshot
(** Raised out of {!generate} when [ctl] demands a stop. The carried
    snapshot describes the last committed safe point; serialize it with
    {!encode_snapshot} and pass it back via [?resume] to continue. *)

val generate :
  ?config:config ->
  ?obs:Bist_obs.Obs.t ->
  ?pool:Bist_parallel.Pool.t ->
  ?ctl:Bist_resilience.Ctl.t ->
  ?resume:snapshot ->
  rng:Bist_util.Rng.t ->
  Bist_fault.Universe.t ->
  Bist_logic.Tseq.t * stats
(** [pool] parallelizes every fault simulation inside the generation loop
    (candidate scoring, re-baselining, the final coverage pass) without
    changing the result: the sharded simulator is bit-identical to the
    sequential one, and the [rng] stream is consumed only by the calling
    domain. Defaults to sequential unless [BIST_JOBS] is exported.

    [ctl] (default: none) is polled at every safe point — round
    boundaries, directed-attempt boundaries, the phase transitions — and
    forwarded to the inner fault simulations so even a long simulation
    responds promptly; a mid-simulation {!Bist_resilience.Ctl.Preempted}
    is caught here and rewound to the enclosing boundary. When a stop is
    demanded, {!Interrupted} is raised with the boundary snapshot.
    Each committed safe point calls {!Bist_resilience.Ctl.note_progress},
    so deadline-preempted runs always advance before stopping.

    [resume] (default: none) continues from a snapshot instead of
    starting fresh; [rng] is then ignored in favor of the snapshot's rng.
    The snapshot must come from the same circuit and fault universe —
    a size or width disagreement raises
    {!Bist_resilience.Checkpoint.Mismatch} (callers should additionally
    fingerprint the circuit, see [bin/bistgen]).

    [obs] (default {!Bist_obs.Obs.null}, one branch of overhead) records
    ["engine.prescreen"], two ["engine.selection"] spans (standalone and
    embedded scoring) with one ["engine.round"] span per greedy round
    nested inside, ["engine.rebaseline"], ["engine.directed"],
    ["engine.sat_tail"] (with one ["sat.fault"] span per query) and
    ["engine.final_fsim"], plus per-shard fault-simulation spans, the
    ["engine.rounds"] / ["engine.segments_accepted"] counters and the
    ["engine.t0_length"] gauge. The generated sequence is identical with
    or without a sink: observability never touches the [rng] stream. *)

val encode_snapshot : Bist_resilience.Checkpoint.Io.writer -> snapshot -> unit
(** Append the snapshot's binary form; the engine section of a ["tgen"]
    checkpoint payload. *)

val decode_snapshot : Bist_resilience.Checkpoint.Io.reader -> snapshot
(** Inverse of {!encode_snapshot}. Raises
    {!Bist_resilience.Checkpoint.Corrupt} on a malformed section (bad
    phase tag, out-of-range cursor, truncation). *)

val snapshot_equal : snapshot -> snapshot -> bool
(** Structural equality, for codec round-trip tests. *)
