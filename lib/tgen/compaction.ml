module Tseq = Bist_logic.Tseq
module Bitset = Bist_util.Bitset
module Fsim = Bist_fault.Fsim
module Obs = Bist_obs.Obs
module Ctl = Bist_resilience.Ctl
module Checkpoint = Bist_resilience.Checkpoint

type stats = {
  trials : int;
  accepted : int;
  initial_length : int;
  final_length : int;
}

type snapshot = {
  seq : Tseq.t;
  must_detect : Bitset.t option;
  block : int;
  start : int;
  trials : int;
  accepted : int;
  initial_length : int;
}

exception Interrupted of snapshot

let () =
  Printexc.register_printer (function
    | Interrupted s ->
      Some
        (Printf.sprintf
           "Compaction.Interrupted (%d of %d vectors, %d trials)"
           (Tseq.length s.seq) s.initial_length s.trials)
    | _ -> None)

let detected_set ?obs ?pool ?ctl ?targets universe seq =
  (Fsim.run ?obs ?pool ?ctl ?targets ~stop_when_all_detected:true universe seq)
    .Fsim.detected

(* Evenly-spaced sample of a fault set; a candidate that loses any
   sampled fault can be rejected without the full re-simulation. *)
let sample_of set cap =
  let total = Bitset.cardinal set in
  if total <= cap then set
  else begin
    let sample = Bitset.create (Bitset.capacity set) in
    let stride = total / cap in
    let i = ref 0 in
    Bitset.iter
      (fun id ->
        if !i mod stride = 0 then Bitset.add sample id;
        incr i)
      set;
    sample
  end

let remove_block seq ~start ~len =
  let n = Tseq.length seq in
  let stop = min n (start + len) in
  if start = 0 then
    if stop >= n then Tseq.empty (Tseq.width seq) else Tseq.sub seq ~lo:stop ~hi:(n - 1)
  else if stop >= n then Tseq.sub seq ~lo:0 ~hi:(start - 1)
  else Tseq.concat (Tseq.sub seq ~lo:0 ~hi:(start - 1)) (Tseq.sub seq ~lo:stop ~hi:(n - 1))

let compact ?initial_block ?(max_trials = max_int) ?(obs = Obs.null) ?pool ?ctl
    ?resume universe seq =
  let initial_length, current, trials, accepted =
    match resume with
    | Some s -> (s.initial_length, ref s.seq, ref s.trials, ref s.accepted)
    | None -> (Tseq.length seq, ref seq, ref 0, ref 0)
  in
  let committed () =
    match ctl with None -> () | Some c -> Ctl.note_progress c
  in
  (* Before the baseline simulation has committed, the snapshot is just
     the input sequence ([must_detect = None]); block and cursor are
     recomputed on resume exactly as on a fresh start. *)
  let pre_baseline_snapshot () =
    {
      seq = !current;
      must_detect = None;
      block = 0;
      start = 0;
      trials = !trials;
      accepted = !accepted;
      initial_length;
    }
  in
  let must_detect =
    match resume with
    | Some { must_detect = Some md; _ } -> Bitset.copy md
    | _ -> (
      (match ctl with
      | Some c when Ctl.stop_reason c <> None ->
        raise (Interrupted (pre_baseline_snapshot ()))
      | _ -> ());
      match
        Obs.span obs ~cat:"compaction" "compaction.baseline" (fun () ->
            detected_set ~obs ?pool ?ctl universe !current)
      with
      | md ->
        committed ();
        md
      | exception Ctl.Preempted _ ->
        raise (Interrupted (pre_baseline_snapshot ())))
  in
  let must_sample = sample_of must_detect 800 in
  let block = ref 0 and start = ref 0 in
  (match resume with
  | Some ({ must_detect = Some _; _ } as s) ->
    block := s.block;
    start := s.start
  | _ ->
    block :=
      (match initial_block with
      | Some b -> max 1 b
      | None -> max 1 (initial_length / 8));
    start := Tseq.length !current - !block);
  let trial_snapshot () =
    {
      seq = !current;
      must_detect = Some (Bitset.copy must_detect);
      block = !block;
      start = !start;
      trials = !trials;
      accepted = !accepted;
      initial_length;
    }
  in
  let keeps_coverage candidate =
    (* Two-stage check: the cheap sampled rejection filter first, the
       full target set only when the sample survives. *)
    Bitset.subset must_sample
      (detected_set ~obs ?pool ?ctl ~targets:must_sample universe candidate)
    && Bitset.subset must_detect
         (detected_set ~obs ?pool ?ctl ~targets:must_detect universe candidate)
  in
  while !block >= 1 && !trials < max_trials do
    (* Back-to-front scan at the current granularity: one span per pass,
       whose args report what the pass achieved (evaluated at exit). *)
    let pass_block = !block in
    let pass_trials = !trials and pass_accepted = !accepted in
    Obs.span obs ~cat:"compaction" "compaction.pass"
      ~args:(fun () ->
        [ ("block", string_of_int pass_block);
          ("trials", string_of_int (!trials - pass_trials));
          ("accepted", string_of_int (!accepted - pass_accepted));
          ("length", string_of_int (Tseq.length !current)) ])
      (fun () ->
        while !start >= 0 && !trials < max_trials do
          (match ctl with
          | Some c when Ctl.stop_reason c <> None ->
            raise (Interrupted (trial_snapshot ()))
          | _ -> ());
          (* A trial mutates [current] only after its simulations, so a
             [Preempted] escaping mid-trial rewinds to the trial entry by
             restoring the counter. *)
          let trials_entry = !trials in
          (try
             let candidate = remove_block !current ~start:!start ~len:!block in
             incr trials;
             if Tseq.length candidate > 0 && keeps_coverage candidate then begin
               incr accepted;
               current := candidate
             end;
             committed ()
           with Ctl.Preempted _ ->
             trials := trials_entry;
             raise (Interrupted (trial_snapshot ())));
          start := !start - !block
        done);
    block := (if !block = 1 then 0 else !block / 2);
    if !block >= 1 then start := Tseq.length !current - !block
  done;
  Obs.count obs ~by:!trials "compaction.trials";
  Obs.count obs ~by:!accepted "compaction.accepted";
  ( !current,
    {
      trials = !trials;
      accepted = !accepted;
      initial_length;
      final_length = Tseq.length !current;
    } )

(* Snapshot codec — the compaction section of a ["tgen"] checkpoint. *)

module Io = Checkpoint.Io

let encode_snapshot w s =
  Checkpoint.tseq w s.seq;
  Io.option w Checkpoint.bitset s.must_detect;
  Io.u32 w s.block;
  Io.u32 w s.start;
  Io.u32 w s.trials;
  Io.u32 w s.accepted;
  Io.u32 w s.initial_length

let decode_snapshot r =
  let seq = Checkpoint.r_tseq r in
  let must_detect = Io.r_option r Checkpoint.r_bitset in
  let block = Io.r_u32 r in
  let start = Io.r_u32 r in
  let trials = Io.r_u32 r in
  let accepted = Io.r_u32 r in
  let initial_length = Io.r_u32 r in
  { seq; must_detect; block; start; trials; accepted; initial_length }

let snapshot_equal a b =
  Tseq.equal a.seq b.seq
  && (match (a.must_detect, b.must_detect) with
     | None, None -> true
     | Some x, Some y -> Bitset.equal x y
     | _ -> false)
  && a.block = b.block && a.start = b.start && a.trials = b.trials
  && a.accepted = b.accepted && a.initial_length = b.initial_length
