module Tseq = Bist_logic.Tseq
module Bitset = Bist_util.Bitset
module Fsim = Bist_fault.Fsim
module Obs = Bist_obs.Obs

type stats = {
  trials : int;
  accepted : int;
  initial_length : int;
  final_length : int;
}

let detected_set ?obs ?pool ?targets universe seq =
  (Fsim.run ?obs ?pool ?targets ~stop_when_all_detected:true universe seq)
    .Fsim.detected

(* Evenly-spaced sample of a fault set; a candidate that loses any
   sampled fault can be rejected without the full re-simulation. *)
let sample_of set cap =
  let total = Bitset.cardinal set in
  if total <= cap then set
  else begin
    let sample = Bitset.create (Bitset.capacity set) in
    let stride = total / cap in
    let i = ref 0 in
    Bitset.iter
      (fun id ->
        if !i mod stride = 0 then Bitset.add sample id;
        incr i)
      set;
    sample
  end

let remove_block seq ~start ~len =
  let n = Tseq.length seq in
  let stop = min n (start + len) in
  if start = 0 then
    if stop >= n then Tseq.empty (Tseq.width seq) else Tseq.sub seq ~lo:stop ~hi:(n - 1)
  else if stop >= n then Tseq.sub seq ~lo:0 ~hi:(start - 1)
  else Tseq.concat (Tseq.sub seq ~lo:0 ~hi:(start - 1)) (Tseq.sub seq ~lo:stop ~hi:(n - 1))

let compact ?initial_block ?(max_trials = max_int) ?(obs = Obs.null) ?pool
    universe seq =
  let initial_length = Tseq.length seq in
  let must_detect =
    Obs.span obs ~cat:"compaction" "compaction.baseline" (fun () ->
        detected_set ~obs ?pool universe seq)
  in
  let must_sample = sample_of must_detect 800 in
  let trials = ref 0 in
  let accepted = ref 0 in
  let current = ref seq in
  let block = ref (match initial_block with
    | Some b -> max 1 b
    | None -> max 1 (initial_length / 8))
  in
  let keeps_coverage candidate =
    (* Two-stage check: the cheap sampled rejection filter first, the
       full target set only when the sample survives. *)
    Bitset.subset must_sample
      (detected_set ~obs ?pool ~targets:must_sample universe candidate)
    && Bitset.subset must_detect
         (detected_set ~obs ?pool ~targets:must_detect universe candidate)
  in
  while !block >= 1 && !trials < max_trials do
    (* Back-to-front scan at the current granularity: one span per pass,
       whose args report what the pass achieved (evaluated at exit). *)
    let pass_block = !block in
    let pass_trials = !trials and pass_accepted = !accepted in
    Obs.span obs ~cat:"compaction" "compaction.pass"
      ~args:(fun () ->
        [ ("block", string_of_int pass_block);
          ("trials", string_of_int (!trials - pass_trials));
          ("accepted", string_of_int (!accepted - pass_accepted));
          ("length", string_of_int (Tseq.length !current)) ])
      (fun () ->
        let start = ref (Tseq.length !current - !block) in
        while !start >= 0 && !trials < max_trials do
          let candidate = remove_block !current ~start:!start ~len:!block in
          incr trials;
          if Tseq.length candidate > 0 && keeps_coverage candidate then begin
            incr accepted;
            current := candidate
          end;
          start := !start - !block
        done);
    block := if !block = 1 then 0 else !block / 2
  done;
  Obs.count obs ~by:!trials "compaction.trials";
  Obs.count obs ~by:!accepted "compaction.accepted";
  ( !current,
    {
      trials = !trials;
      accepted = !accepted;
      initial_length;
      final_length = Tseq.length !current;
    } )
