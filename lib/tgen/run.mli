(** The whole [tgen] pipeline — generation then static compaction — as
    one resumable, checkpointable unit.

    [bin/bistgen tgen] and the [bistd] daemon worker both run exactly
    this module, so a job migrated between daemon workers and a
    [--resume]d CLI run share one checkpoint format and one resume
    semantics: the PR 5 round-boundary invariant (an interrupted-then-
    resumed run is bit-identical to an uninterrupted one) holds for both
    by construction, not by parallel maintenance of two codecs.

    A checkpoint payload is a parameter echo ([params]: seed, directed
    budget, SAT knobs, compaction trial budget — resuming with different
    knobs is a typed {!Bist_resilience.Checkpoint.Mismatch}) followed by
    a stage tag and that stage's snapshot. *)

type params = {
  seed : int;  (** Engine rng seed. *)
  directed : int;  (** Directed-search budget ([--directed]). *)
  trials : int;  (** Static-compaction trial budget ([--compact-trials]). *)
  sat_budget : int;  (** SAT-tail fault budget ([--sat-budget], 0 = off). *)
  sat_frames : int;  (** SAT time-frame bound ([--sat-frames]). *)
  sat_conflicts : int;  (** Per-solve conflict budget ([--sat-conflicts]). *)
}

type stage =
  | Generating of Engine.snapshot
      (** Preempted inside {!Engine.generate}. *)
  | Compacting of Engine.stats * Compaction.snapshot
      (** Generation finished (with these stats); preempted inside
          {!Compaction.compact}. *)

exception Interrupted of stage
(** Raised out of {!execute} when [ctl] demands a stop, carrying the
    stage snapshot to serialize with {!encode_payload}. *)

val encode_payload : params -> stage -> string
(** The ["tgen"] checkpoint payload bytes ({!Bist_resilience.Checkpoint}
    stores them opaquely). *)

val decode_payload : params -> string -> stage
(** Inverse of {!encode_payload}, validating the parameter echo against
    this run's [params]. Raises {!Bist_resilience.Checkpoint.Mismatch}
    on a parameter disagreement and
    {!Bist_resilience.Checkpoint.Corrupt} on malformed bytes. *)

val execute :
  ?obs:Bist_obs.Obs.t ->
  ?pool:Bist_parallel.Pool.t ->
  ?ctl:Bist_resilience.Ctl.t ->
  ?resume:stage ->
  params ->
  Bist_fault.Universe.t ->
  Bist_logic.Tseq.t * Engine.stats * Compaction.stats
(** Generate [T0] with {!Engine.generate} (config =
    {!Engine.default_config} of the universe's circuit with [params]'
    directed and SAT budgets) and compact it with {!Compaction.compact}. The
    result is a deterministic function of [params] and the circuit, for
    every pool width and any interleaving of preemptions. *)
