(** Directed test generation for individual hard faults.

    STRATEGATE [11], the paper's T0 source, steers a genetic search by
    dynamic state traversal; this module is the corresponding extension
    of our substitute engine. For one target fault it evolves a
    population of input segments appended to an already-simulated prefix,
    guided by a fitness made of

    - detection (dominant term),
    - the number of time units that {e excite} the fault site (fault-free
      value opposite to the stuck value), and
    - the widest state divergence reached between the faulty and
      fault-free machines (a propagation-progress measure).

    The prefix's machine state is snapshot once and restored per
    candidate, so each evaluation costs only the segment length. *)

type config = {
  population : int;
  generations : int;
  segment_length : int;
  mutation_rate : float;  (** Per-bit flip probability when mutating. *)
}

val default_config : config
(** 8 individuals, 12 generations, 32-vector segments, 0.05. *)

type outcome = {
  segment : Bist_logic.Tseq.t option;
      (** A segment whose concatenation to the prefix detects the fault,
          if the search succeeded. *)
  evaluations : int;
  best_fitness : int;
}

val search :
  ?config:config ->
  rng:Bist_util.Rng.t ->
  prefix:Bist_logic.Tseq.t ->
  Bist_circuit.Netlist.t ->
  Bist_fault.Fault.t ->
  outcome

val order_hardest_first :
  Bist_analyze.Scoap.t -> Bist_fault.Universe.t -> int array -> unit
(** Sort fault ids in place, most expensive {!Bist_analyze.Scoap.fault_cost}
    first (ties by ascending id, so the order is deterministic). The
    directed phase attacks targets in this order: hard faults profit
    most from the genetic search, while easy stragglers tend to fall
    out of the produced segments for free. *)
