module Checkpoint = Bist_resilience.Checkpoint
module Io = Checkpoint.Io

type params = {
  seed : int;
  directed : int;
  trials : int;
  sat_budget : int;
  sat_frames : int;
  sat_conflicts : int;
}

type stage =
  | Generating of Engine.snapshot
  | Compacting of Engine.stats * Compaction.snapshot

exception Interrupted of stage

let encode_payload p stage =
  let w = Io.writer () in
  Io.u32 w p.seed;
  Io.u32 w p.directed;
  Io.u32 w p.trials;
  Io.u32 w p.sat_budget;
  Io.u32 w p.sat_frames;
  Io.u32 w p.sat_conflicts;
  (match stage with
  | Generating s ->
    Io.u8 w 0;
    Engine.encode_snapshot w s
  | Compacting (stats, cs) ->
    Io.u8 w 1;
    Io.u32 w stats.Engine.rounds;
    Io.u32 w stats.segments_accepted;
    Io.u32 w stats.detected;
    Io.u32 w stats.total_faults;
    Io.u32 w stats.statically_untestable;
    Io.u32 w stats.sat_proved;
    Io.u32 w stats.sat_tests;
    Compaction.encode_snapshot w cs);
  Io.contents w

let decode_payload p payload =
  let r = Io.reader payload in
  let echo what expected =
    let got = Io.r_u32 r in
    if got <> expected then
      raise
        (Checkpoint.Mismatch
           (Printf.sprintf
              "checkpoint was written with %s %d, this run uses %d — \
               re-invoke with the original parameters"
              what got expected))
  in
  echo "--seed" p.seed;
  echo "--directed" p.directed;
  echo "--compact-trials" p.trials;
  echo "--sat-budget" p.sat_budget;
  echo "--sat-frames" p.sat_frames;
  echo "--sat-conflicts" p.sat_conflicts;
  let stage =
    match Io.r_u8 r with
    | 0 -> Generating (Engine.decode_snapshot r)
    | 1 ->
      let rounds = Io.r_u32 r in
      let segments_accepted = Io.r_u32 r in
      let detected = Io.r_u32 r in
      let total_faults = Io.r_u32 r in
      let statically_untestable = Io.r_u32 r in
      let sat_proved = Io.r_u32 r in
      let sat_tests = Io.r_u32 r in
      let stats =
        { Engine.rounds; segments_accepted; detected; total_faults;
          statically_untestable; sat_proved; sat_tests }
      in
      Compacting (stats, Compaction.decode_snapshot r)
    | tag ->
      raise (Checkpoint.Corrupt (Printf.sprintf "unknown tgen stage tag %d" tag))
  in
  Io.expect_end r;
  stage

let execute ?(obs = Bist_obs.Obs.null) ?pool ?ctl ?resume p universe =
  let circuit = Bist_fault.Universe.circuit universe in
  let config =
    {
      (Engine.default_config circuit) with
      Engine.directed_budget = p.directed;
      sat_budget = p.sat_budget;
      sat_frames = p.sat_frames;
      sat_conflicts = p.sat_conflicts;
    }
  in
  let rng = Bist_util.Rng.create p.seed in
  let t0, stats =
    match resume with
    | Some (Compacting (stats, cs)) -> (cs.Compaction.seq, stats)
    | (None | Some (Generating _)) as r -> (
      let engine_resume =
        match r with Some (Generating s) -> Some s | _ -> None
      in
      try Engine.generate ~config ~obs ?pool ?ctl ?resume:engine_resume ~rng universe
      with Engine.Interrupted s -> raise (Interrupted (Generating s)))
  in
  let compact_resume =
    match resume with Some (Compacting (_, cs)) -> Some cs | _ -> None
  in
  let t0, cstats =
    try
      Compaction.compact ~max_trials:p.trials ~obs ?pool ?ctl
        ?resume:compact_resume universe t0
    with Compaction.Interrupted cs -> raise (Interrupted (Compacting (stats, cs)))
  in
  (t0, stats, cstats)
