(** Static compaction of [T0] by block omission.

    The paper compacts STRATEGATE sequences with vector-restoration-based
    static compaction [12]; this is the documented substitute. It removes
    blocks of consecutive vectors, halving the block size from
    [initial_block] down to 1, re-simulating after each trial and keeping
    an omission only when every originally-detected fault stays detected.
    Scanning runs back-to-front because later vectors are more often
    redundant once earlier vectors have synchronized the circuit.

    The result never detects fewer faults than the input sequence, and
    its detected set is a superset of the input's. *)

type stats = {
  trials : int;
  accepted : int;
  initial_length : int;
  final_length : int;
}

type snapshot = {
  seq : Bist_logic.Tseq.t;  (** Current (partially compacted) sequence. *)
  must_detect : Bist_util.Bitset.t option;
      (** The baseline detected set; [None] when preempted before the
          baseline simulation committed (resume recomputes it). *)
  block : int;  (** Current block granularity. *)
  start : int;  (** Next omission start position (back-to-front). *)
  trials : int;
  accepted : int;
  initial_length : int;
}
(** State at a trial boundary; resuming here replays the remaining trials
    exactly as the uninterrupted run would (compaction consumes no
    randomness, so the whole scan is a function of this record). *)

exception Interrupted of snapshot
(** Raised out of {!compact} when [ctl] demands a stop, carrying the last
    committed trial boundary. *)

val compact :
  ?initial_block:int ->
  ?max_trials:int ->
  ?obs:Bist_obs.Obs.t ->
  ?pool:Bist_parallel.Pool.t ->
  ?ctl:Bist_resilience.Ctl.t ->
  ?resume:snapshot ->
  Bist_fault.Universe.t ->
  Bist_logic.Tseq.t ->
  Bist_logic.Tseq.t * stats
(** [initial_block] defaults to 1/8 of the sequence length;
    [max_trials] (default unlimited) bounds the number of re-simulations
    for large circuits. [pool] parallelizes the per-trial re-simulations
    without changing which omissions are accepted (sharded simulation is
    bit-identical); default sequential unless [BIST_JOBS] is exported.

    [ctl] (default: none) is polled at every trial boundary and forwarded
    to the inner fault simulations; a stop raises {!Interrupted} with the
    boundary snapshot, and each committed trial notes progress
    ({!Bist_resilience.Ctl.note_progress}). [resume] (default: none)
    continues from a snapshot; the [seq] argument is then ignored in
    favor of the snapshot's sequence, and the final [stats] count trials
    across all the resumed legs.

    [obs] records a ["compaction.baseline"] span for the initial
    must-detect simulation and one ["compaction.pass"] span per block
    granularity, whose args (evaluated when the pass ends) report the
    block size, trials, accepted omissions and resulting length. *)

val encode_snapshot : Bist_resilience.Checkpoint.Io.writer -> snapshot -> unit
val decode_snapshot : Bist_resilience.Checkpoint.Io.reader -> snapshot
(** Raises {!Bist_resilience.Checkpoint.Corrupt} on malformed input. *)

val snapshot_equal : snapshot -> snapshot -> bool
(** Structural equality, for codec round-trip tests. *)
