(** Static compaction of [T0] by block omission.

    The paper compacts STRATEGATE sequences with vector-restoration-based
    static compaction [12]; this is the documented substitute. It removes
    blocks of consecutive vectors, halving the block size from
    [initial_block] down to 1, re-simulating after each trial and keeping
    an omission only when every originally-detected fault stays detected.
    Scanning runs back-to-front because later vectors are more often
    redundant once earlier vectors have synchronized the circuit.

    The result never detects fewer faults than the input sequence, and
    its detected set is a superset of the input's. *)

type stats = {
  trials : int;
  accepted : int;
  initial_length : int;
  final_length : int;
}

val compact :
  ?initial_block:int ->
  ?max_trials:int ->
  ?obs:Bist_obs.Obs.t ->
  ?pool:Bist_parallel.Pool.t ->
  Bist_fault.Universe.t ->
  Bist_logic.Tseq.t ->
  Bist_logic.Tseq.t * stats
(** [initial_block] defaults to 1/8 of the sequence length;
    [max_trials] (default unlimited) bounds the number of re-simulations
    for large circuits. [pool] parallelizes the per-trial re-simulations
    without changing which omissions are accepted (sharded simulation is
    bit-identical); default sequential unless [BIST_JOBS] is exported.

    [obs] records a ["compaction.baseline"] span for the initial
    must-detect simulation and one ["compaction.pass"] span per block
    granularity, whose args (evaluated when the pass ends) report the
    block size, trials, accepted omissions and resulting length. *)
