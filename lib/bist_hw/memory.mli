(** The on-chip test memory.

    A word array of [word_bits] (one bit per circuit primary input) by
    [depth] words. Sequences are loaded at tester speed through
    {!load_sequence}, which also accounts the load cycles — the quantity
    the paper's "tot len" column measures.

    The memory can optionally carry a per-word check code (see {!Ecc}):
    check bits are generated from the incoming data as a word is written
    and verified on every {!read_checked}, which is how the session
    detects (parity) or transparently repairs (SEC Hamming) corrupted
    cells. {!corrupt} is the fault-injection surface — it flips stored
    data without touching the check bits, exactly like a cell upset. *)

type t

val create : ?ecc:Ecc.scheme -> word_bits:int -> depth:int -> unit -> t
(** [ecc] defaults to {!Ecc.No_ecc}. *)

val depth : t -> int
val word_bits : t -> int
val ecc : t -> Ecc.scheme

val load_sequence :
  ?corrupt:(word:int -> Bist_logic.Vector.t -> Bist_logic.Vector.t) ->
  t ->
  Bist_logic.Tseq.t ->
  (unit, Error.t) result
(** Load a sequence into addresses [0 .. length-1], overwriting the whole
    memory: [used_words] is reset before writing and every word above the
    new length is cleared to all-X, so a failed or partial reload can
    never silently expose vectors of the previous subsequence. Returns
    [Error] (and leaves the memory invalidated, [used_words = 0]) if the
    sequence does not fit or widths differ. Increments the load-cycle
    counter by the sequence length on success. [corrupt] is applied to
    each word as it is stored (after check-bit generation). *)

val load_sequence_exn :
  ?corrupt:(word:int -> Bist_logic.Vector.t -> Bist_logic.Vector.t) ->
  t ->
  Bist_logic.Tseq.t ->
  unit
(** {!load_sequence}, raising {!Error.Error} on failure. *)

val used_words : t -> int
(** Number of words occupied by the currently loaded sequence. *)

val read : t -> int -> Bist_logic.Vector.t
(** Raw word at an address, [0 <= addr < used_words], no ECC check.
    Raises [Invalid_argument] out of range. *)

val read_checked : t -> attempt:int -> int -> (Bist_logic.Vector.t, Error.t) result
(** {!read} through the ECC decoder: a clean or corrected word on [Ok]
    (corrections are counted), [Parity_violation] when the code flags an
    uncorrectable word. [attempt] tags the error for the session report. *)

val raw_word : t -> int -> Bist_logic.Vector.t
(** Stored cell content at any address in [0 <= addr < depth], bypassing
    both the [used_words] fence and the ECC decoder (model inspection). *)

val corrupt : t -> word:int -> (Bist_logic.Vector.t -> Bist_logic.Vector.t) -> unit
(** Fault-injection surface: rewrite a stored cell in place, leaving the
    check bits untouched. *)

val corrections : t -> int
(** ECC decoder corrections performed since {!create}. *)

val total_load_cycles : t -> int
(** Tester cycles spent loading since {!create}. *)
