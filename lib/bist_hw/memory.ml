module Vector = Bist_logic.Vector
module Tseq = Bist_logic.Tseq

type t = {
  word_bits : int;
  depth : int;
  ecc : Ecc.scheme;
  words : Vector.t array;
  checks : int array;
  mutable used : int;
  mutable load_cycles : int;
  mutable corrections : int;
}

let create ?(ecc = Ecc.No_ecc) ~word_bits ~depth () =
  if word_bits < 1 || depth < 1 then invalid_arg "Memory.create";
  let xword = Vector.create word_bits Bist_logic.Ternary.X in
  {
    word_bits;
    depth;
    ecc;
    words = Array.make depth xword;
    checks = Array.make depth (Ecc.encode ecc xword);
    used = 0;
    load_cycles = 0;
    corrections = 0;
  }

let depth t = t.depth
let word_bits t = t.word_bits
let ecc t = t.ecc

let load_sequence ?corrupt t seq =
  let len = Tseq.length seq in
  if Tseq.width seq <> t.word_bits then begin
    (* A rejected load leaves no stale sequence behind: a session that
       ignored the error must not silently re-apply the previous one. *)
    t.used <- 0;
    Error (Error.Width_mismatch { expected = t.word_bits; got = Tseq.width seq })
  end
  else if len > t.depth then begin
    t.used <- 0;
    Error (Error.Sequence_too_long { length = len; depth = t.depth })
  end
  else begin
    t.used <- 0;
    for i = 0 to len - 1 do
      let word = Tseq.get seq i in
      (* Check bits come from the incoming tester data; corruption (the
         injector's cell faults) hits the stored copy only. *)
      t.checks.(i) <- Ecc.encode t.ecc word;
      t.words.(i) <- (match corrupt with None -> word | Some f -> f ~word:i word)
    done;
    let xword = Vector.create t.word_bits Bist_logic.Ternary.X in
    let xcheck = Ecc.encode t.ecc xword in
    for i = len to t.depth - 1 do
      t.words.(i) <- xword;
      t.checks.(i) <- xcheck
    done;
    t.used <- len;
    t.load_cycles <- t.load_cycles + len;
    Ok ()
  end

let load_sequence_exn ?corrupt t seq = Error.ok_exn (load_sequence ?corrupt t seq)

let used_words t = t.used

let read t addr =
  if addr < 0 || addr >= t.used then invalid_arg "Memory.read: address out of range";
  t.words.(addr)

let read_checked t ~attempt addr =
  if addr < 0 || addr >= t.used then
    Error (Error.Address_out_of_range { addr; used = t.used })
  else
    match Ecc.verify t.ecc t.words.(addr) t.checks.(addr) with
    | Ecc.Clean -> Ok t.words.(addr)
    | Ecc.Corrected word ->
      t.corrections <- t.corrections + 1;
      Ok word
    | Ecc.Uncorrectable -> Error (Error.Parity_violation { word = addr; attempt })

let raw_word t addr =
  if addr < 0 || addr >= t.depth then invalid_arg "Memory.raw_word";
  t.words.(addr)

let corrupt t ~word f =
  if word < 0 || word >= t.depth then invalid_arg "Memory.corrupt";
  t.words.(word) <- f t.words.(word)

let corrections t = t.corrections
let total_load_cycles t = t.load_cycles
