(** First-order area model of the on-chip test hardware.

    The paper argues the scheme's hardware is small and independent of
    the circuit under test: a memory sized to the longest stored
    sequence, an up/down address counter, a sweep counter, and per-input
    complement/shift multiplexers. This model counts memory bits and
    equivalent 2-input-gate cost so the examples can compare
    configurations; the constants are conventional textbook figures, not
    a technology library.

    When the memory carries a check code (see {!Ecc}), the extra storage
    and the encode/decode logic are counted separately, so the paper's
    area comparison stays honest for a hardened configuration. *)

type t = {
  memory_bits : int;  (** [max_seq_len * num_inputs], data bits only. *)
  ecc_bits : int;  (** Check bits stored alongside ([0] without ECC). *)
  address_counter_bits : int;
  sweep_counter_bits : int;
  mux_count : int;  (** One complement mux + one shift mux per input. *)
  inverter_count : int;
  control_gate_estimate : int;  (** FSM decode logic, gate equivalents. *)
  ecc_gate_estimate : int;  (** Encoder + decoder/corrector logic. *)
  gate_equivalents : int;  (** Everything except the memory, in 2-input
                               gate equivalents (flip-flop = 6), ECC
                               logic included. *)
}

val estimate : ?ecc:Ecc.scheme -> num_inputs:int -> max_seq_len:int -> n:int -> unit -> t
(** [ecc] defaults to {!Ecc.No_ecc}, which reproduces the paper's bare
    configuration. *)

val storage_for_full_t0 : num_inputs:int -> t0_len:int -> int
(** Memory bits needed by the load-everything baseline, for comparison. *)

val pp : Format.formatter -> t -> unit
