type t =
  | No_sequences
  | Empty_sequence
  | Width_mismatch of { expected : int; got : int }
  | Sequence_too_long of { length : int; depth : int }
  | Address_out_of_range of { addr : int; used : int }
  | Parity_violation of { word : int; attempt : int }
  | Signature_mismatch of { expected : int; got : int; attempt : int }
  | Cycle_count_mismatch of { expected : int; got : int; attempt : int }

exception Error of t

let to_string = function
  | No_sequences -> "no stored sequences to apply"
  | Empty_sequence -> "empty stored sequence"
  | Width_mismatch { expected; got } ->
    Printf.sprintf "word width mismatch: expected %d bits, got %d" expected got
  | Sequence_too_long { length; depth } ->
    Printf.sprintf "sequence of %d words does not fit a %d-word memory" length depth
  | Address_out_of_range { addr; used } ->
    Printf.sprintf "memory address %d out of range (%d words in use)" addr used
  | Parity_violation { word; attempt } ->
    Printf.sprintf "parity violation in memory word %d (attempt %d)" word attempt
  | Signature_mismatch { expected; got; attempt } ->
    Printf.sprintf "signature mismatch: reference %08x, got %08x (attempt %d)"
      expected got attempt
  | Cycle_count_mismatch { expected; got; attempt } ->
    Printf.sprintf "cycle-count mismatch: expected %d at-speed cycles, got %d (attempt %d)"
      expected got attempt

let pp fmt e = Format.pp_print_string fmt (to_string e)
let raise_exn e = raise (Error e)
let ok_exn = function Ok v -> v | Error e -> raise_exn e

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Bist_hw.Error: " ^ to_string e)
    | _ -> None)
