module Vector = Bist_logic.Vector
module T = Bist_logic.Ternary

type scheme = No_ecc | Parity | Hamming_sec

let scheme_name = function
  | No_ecc -> "none"
  | Parity -> "parity"
  | Hamming_sec -> "hamming-sec"

let rec hamming_r m r = if 1 lsl r >= m + r + 1 then r else hamming_r m (r + 1)

let check_bits scheme ~data_bits =
  if data_bits < 1 then invalid_arg "Ecc.check_bits";
  match scheme with
  | No_ecc -> 0
  | Parity -> 1
  | Hamming_sec -> hamming_r data_bits 2

let is_pow2 x = x > 0 && x land (x - 1) = 0

(* 1-based Hamming position of each data bit: the i-th index that is not
   a power of two (powers of two hold the check bits). *)
let data_positions m =
  let arr = Array.make m 0 in
  let pos = ref 1 in
  let i = ref 0 in
  while !i < m do
    if not (is_pow2 !pos) then begin
      arr.(!i) <- !pos;
      incr i
    end;
    incr pos
  done;
  arr

let bit_one v i = Vector.get v i = T.One

let parity_of v =
  let acc = ref 0 in
  for i = 0 to Vector.width v - 1 do
    if bit_one v i then acc := !acc lxor 1
  done;
  !acc

(* XOR of the positions of all 1 data bits: bit j of the result is check
   bit j of the classic SEC layout (X counts as 0). *)
let hamming_code v =
  let positions = data_positions (Vector.width v) in
  let acc = ref 0 in
  for i = 0 to Vector.width v - 1 do
    if bit_one v i then acc := !acc lxor positions.(i)
  done;
  !acc

let encode scheme v =
  match scheme with
  | No_ecc -> 0
  | Parity -> parity_of v
  | Hamming_sec -> hamming_code v

type verdict = Clean | Corrected of Bist_logic.Vector.t | Uncorrectable

let flip v i =
  match Vector.get v i with
  | T.One -> Some (Vector.set v i T.Zero)
  | T.Zero -> Some (Vector.set v i T.One)
  | T.X -> None

let verify scheme v stored =
  match scheme with
  | No_ecc -> Clean
  | Parity -> if parity_of v = stored land 1 then Clean else Uncorrectable
  | Hamming_sec ->
    let m = Vector.width v in
    let r = hamming_r m 2 in
    let syndrome = hamming_code v lxor stored in
    if syndrome = 0 then Clean
    else if is_pow2 syndrome && syndrome < 1 lsl r then
      (* A check bit itself flipped; the data is intact. *)
      Corrected v
    else begin
      let positions = data_positions m in
      let target = ref (-1) in
      for i = 0 to m - 1 do
        if positions.(i) = syndrome then target := i
      done;
      match !target with
      | -1 -> Uncorrectable (* syndrome outside the code word: multi-bit *)
      | i -> (match flip v i with Some v' -> Corrected v' | None -> Uncorrectable)
    end
