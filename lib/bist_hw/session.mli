(** A complete BIST session over the hardware model: for each stored
    subsequence, load the memory at tester speed, then run the expansion
    controller at functional speed, apply the emitted vectors to the
    circuit under test, and compact the responses in a MISR.

    The session is also where the self-checking policy lives. A
    {!defense} names which mechanisms are armed:

    - {b ECC} on the memory (per-word parity or SEC Hamming) flags — or
      transparently repairs — corrupted cells on every read.
    - {b Cycle check}: the emitted cycle count must equal the nominal
      [8·n·L], catching terminal-count glitches in the controller.
    - {b Signature check}: a software golden signature is computed by
      re-expanding the (ECC-checked) memory readback and simulating the
      circuit, catching faults in the expansion datapath, the address
      counter and the MISR itself.

    On a detection the session reloads the subsequence and retries, up to
    [max_reloads] times; a transient fault is outrun this way, a
    permanent one exhausts the budget and the sequence is reported
    {!Degraded} — the session completes with a structured
    partial-coverage report instead of raising. *)

type defense = {
  ecc : Ecc.scheme;
  signature_check : bool;
  cycle_check : bool;
  max_reloads : int;
}

val undefended : defense
(** Nothing armed: the paper's bare hardware. Faults escape silently. *)

val default_defense : defense
(** Parity + cycle check, up to 3 reloads. Cheap and catches the
    high-probability faults (memory upsets, termination glitches). *)

val hardened : defense
(** [default_defense] plus the golden-signature cross-check. *)

type status =
  | Clean  (** First attempt, no detections, no ECC corrections. *)
  | Recovered
      (** Applied faithfully after at least one reload or ECC
          correction. *)
  | Degraded of Error.t
      (** Reload budget exhausted; the sequence was not applied. The
          payload is the last detection. *)

type sequence_report = {
  stored_length : int;
  applied_length : int;  (** Expanded cycles applied ([0] if degraded). *)
  signature : int;
  signature_valid : bool;  (** [false] if X-contaminated or degraded. *)
  status : status;
  attempts : int;  (** Load attempts consumed ([1] = no reload). *)
  corrections : int;  (** ECC single-bit corrections during this sequence. *)
  detections : Error.t list;  (** Every defense firing, in order. *)
  applied : Bist_logic.Tseq.t option;
      (** The expanded stream as actually applied, when [~capture:true]. *)
}

type report = {
  circuit_name : string;
  n : int;
  memory_words : int;  (** Memory depth required = longest stored sequence. *)
  memory_bits : int;
  total_load_cycles : int;  (** Tester cycles (the "tot len" cost),
                                including reloads. *)
  total_at_speed_cycles : int;  (** Applied test length ("test len"),
                                    including synchronization cycles. *)
  sync_cycles_per_sequence : int;  (** 0 when no synchronizing prefix. *)
  total_reloads : int;
  complete : bool;  (** No sequence ended {!Degraded}. *)
  defense : defense;
  per_sequence : sequence_report list;
  area : Area.t;
}

val run :
  ?sync:Bist_logic.Tseq.t ->
  ?defense:defense ->
  ?injector:Injector.t ->
  ?capture:bool ->
  n:int ->
  Bist_circuit.Netlist.t ->
  Bist_logic.Tseq.t list ->
  (report, Error.t) result
(** Run the full session. [Error] only on invalid inputs ([No_sequences],
    [Empty_sequence], [Width_mismatch]) — runtime fault detections are
    handled by the retry policy and end up inside the report, never here.
    [sync] is a synchronizing prefix (see {!Sync}) applied — and counted —
    before each expanded sequence. [defense] defaults to
    {!default_defense}; [injector] defaults to {!Injector.none};
    [capture] (default [false]) records each applied expanded stream in
    the report. Raises [Invalid_argument] if [n < 1]. *)

val run_exn :
  ?sync:Bist_logic.Tseq.t ->
  ?defense:defense ->
  ?injector:Injector.t ->
  ?capture:bool ->
  n:int ->
  Bist_circuit.Netlist.t ->
  Bist_logic.Tseq.t list ->
  report
(** {!run}, raising {!Error.Error} on invalid inputs. *)

val pp_report : Format.formatter -> report -> unit
