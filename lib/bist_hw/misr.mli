(** Multiple-input signature register for output-response compaction.

    The paper applies each expanded sequence from the unknown state, so
    early output responses may be X; compacting an X would make the whole
    signature unknown. The register therefore tracks contamination: the
    signature is only {e valid} if no X was ever compacted, and the
    session layer reports validity alongside the value. A fault-free
    signature computed with the same discipline is the comparison
    reference. *)

type t

val create : width:int -> t
(** [width] = number of circuit primary outputs; the register uses
    [max 2 width] stages internally. *)

val compact : t -> Bist_logic.Vector.t -> unit
(** Fold one PO response into the signature. An X response marks the
    signature contaminated. *)

val signature : t -> int
(** Current register value. *)

val contaminated : t -> bool

val reg_width : t -> int
(** Number of register stages ([min 32 (max 2 width)]). *)

val corrupt : t -> mask:int -> unit
(** Fault-injection surface: XOR the register with [mask] (masked to the
    register width), modelling a transient upset of the signature
    flip-flops. *)

val reset : t -> unit
