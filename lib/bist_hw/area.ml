type t = {
  memory_bits : int;
  ecc_bits : int;
  address_counter_bits : int;
  sweep_counter_bits : int;
  mux_count : int;
  inverter_count : int;
  control_gate_estimate : int;
  ecc_gate_estimate : int;
  gate_equivalents : int;
}

let estimate ?(ecc = Ecc.No_ecc) ~num_inputs ~max_seq_len ~n () =
  if num_inputs < 1 || max_seq_len < 1 || n < 1 then invalid_arg "Area.estimate";
  let address_counter_bits = Bist_util.Bits.width_for max_seq_len in
  let sweep_counter_bits = Bist_util.Bits.width_for (8 * n) in
  let mux_count = 2 * num_inputs in
  let inverter_count = num_inputs in
  (* Decode of the sweep quarter plus the terminal-count comparators. *)
  let control_gate_estimate = 12 + (2 * address_counter_bits) + (2 * sweep_counter_bits) in
  let check_bits = Ecc.check_bits ecc ~data_bits:num_inputs in
  let ecc_gate_estimate =
    match ecc with
    | Ecc.No_ecc -> 0
    (* Parity: XOR tree at the write port plus one at the read port and
       the final comparator. *)
    | Ecc.Parity -> (2 * (num_inputs - 1)) + 1
    (* Hamming SEC: one parity tree per check bit (~m/2 XORs each) on
       each port, a syndrome decoder, and the corrector XORs. *)
    | Ecc.Hamming_sec ->
      (2 * check_bits * (num_inputs / 2)) + (num_inputs + check_bits) + num_inputs
  in
  let ff_cost = 6 (* 2-input-gate equivalents per flip-flop *) in
  let mux_cost = 3 in
  let gate_equivalents =
    ((address_counter_bits + sweep_counter_bits) * ff_cost)
    + (mux_count * mux_cost) + inverter_count + control_gate_estimate
    + ecc_gate_estimate
  in
  {
    memory_bits = max_seq_len * num_inputs;
    ecc_bits = max_seq_len * check_bits;
    address_counter_bits;
    sweep_counter_bits;
    mux_count;
    inverter_count;
    control_gate_estimate;
    ecc_gate_estimate;
    gate_equivalents;
  }

let storage_for_full_t0 ~num_inputs ~t0_len = num_inputs * t0_len

let pp fmt t =
  Format.fprintf fmt
    "memory %d bits; addr ctr %d b; sweep ctr %d b; %d muxes; %d inverters; ~%d gate eq."
    t.memory_bits t.address_counter_bits t.sweep_counter_bits t.mux_count
    t.inverter_count t.gate_equivalents;
  if t.ecc_bits > 0 then
    Format.fprintf fmt " (incl. ecc: %d check bits, ~%d gates)" t.ecc_bits
      t.ecc_gate_estimate
