(** Per-word error-detecting/correcting codes for the test memory.

    The subsequence memory is the one circuit-dependent-sized block of the
    scheme's hardware, so it is also the natural place for soft errors and
    manufacturing defects to corrupt the stored test. Each word can carry
    either a single parity bit (detection only — the session recovers by
    reloading) or a SEC Hamming code (single-bit errors corrected on the
    fly, no reload needed).

    Codes are computed over the binary content of a word; an [X] lane
    counts as 0, which is deterministic because injected faults only
    toggle binary lanes. *)

type scheme = No_ecc | Parity | Hamming_sec

val scheme_name : scheme -> string

val check_bits : scheme -> data_bits:int -> int
(** Check bits stored per word: 0, 1, or the minimal [r] with
    [2^r >= data_bits + r + 1]. *)

val encode : scheme -> Bist_logic.Vector.t -> int
(** The check word for a data word, computed at load time from the
    incoming tester data (before any corruption of the cells). *)

type verdict =
  | Clean
  | Corrected of Bist_logic.Vector.t
      (** Single-bit error corrected by the decoder; the returned word is
          the corrected value (the cell itself is left as is). *)
  | Uncorrectable

val verify : scheme -> Bist_logic.Vector.t -> int -> verdict
(** [verify scheme word check] re-derives the code from [word] and
    compares with the stored [check]. *)
