module Tseq = Bist_logic.Tseq
module Vector = Bist_logic.Vector

type defense = {
  ecc : Ecc.scheme;
  signature_check : bool;
  cycle_check : bool;
  max_reloads : int;
}

let undefended =
  { ecc = Ecc.No_ecc; signature_check = false; cycle_check = false; max_reloads = 0 }

let default_defense =
  { ecc = Ecc.Parity; signature_check = false; cycle_check = true; max_reloads = 3 }

let hardened =
  { ecc = Ecc.Parity; signature_check = true; cycle_check = true; max_reloads = 3 }

type status = Clean | Recovered | Degraded of Error.t

type sequence_report = {
  stored_length : int;
  applied_length : int;
  signature : int;
  signature_valid : bool;
  status : status;
  attempts : int;
  corrections : int;
  detections : Error.t list;
  applied : Tseq.t option;
}

type report = {
  circuit_name : string;
  n : int;
  memory_words : int;
  memory_bits : int;
  total_load_cycles : int;
  total_at_speed_cycles : int;
  sync_cycles_per_sequence : int;
  total_reloads : int;
  complete : bool;
  defense : defense;
  per_sequence : sequence_report list;
  area : Area.t;
}

let ( let* ) = Result.bind

let validate_inputs ~num_inputs sequences =
  if sequences = [] then Error Error.No_sequences
  else
    List.fold_left
      (fun acc seq ->
        let* () = acc in
        if Tseq.length seq = 0 then Error Error.Empty_sequence
        else if Tseq.width seq <> num_inputs then
          Error (Error.Width_mismatch { expected = num_inputs; got = Tseq.width seq })
        else Ok ())
      (Ok ()) sequences

let run ?sync ?(defense = default_defense) ?(injector = Injector.none)
    ?(capture = false) ~n circuit sequences =
  if n < 1 then invalid_arg "Session.run: n must be >= 1";
  let num_inputs = Bist_circuit.Netlist.num_inputs circuit in
  let num_outputs = Bist_circuit.Netlist.num_outputs circuit in
  let* () = validate_inputs ~num_inputs sequences in
  let depth =
    List.fold_left (fun acc s -> max acc (Tseq.length s)) 0 sequences
  in
  let memory = Memory.create ~ecc:defense.ecc ~word_bits:num_inputs ~depth () in
  let misr = Misr.create ~width:num_outputs in
  let at_speed = ref 0 in
  let total_reloads = ref 0 in
  let sync_cycles = match sync with None -> 0 | Some s -> Tseq.length s in
  let apply_sync ~count sim =
    match sync with
    | None -> ()
    | Some s ->
      Tseq.iter
        (fun v ->
          ignore (Bist_sim.Seq_sim.step sim v : Vector.t);
          if count then incr at_speed)
        s
  in
  (* The golden-signature reference: re-expand the memory content in
     software and compact the simulated responses in a software MISR,
     under the same synchronization discipline. The readback goes through
     the ECC decoder like every other memory read — so memory integrity
     is the code's job, and this check owns the expansion datapath, the
     address counter, the terminal count and the MISR itself. *)
  let software_signature ~attempt () =
    let used = Memory.used_words memory in
    let rec readback i acc =
      if i = used then Ok (List.rev acc)
      else
        let* word = Memory.read_checked memory ~attempt i in
        readback (i + 1) (word :: acc)
    in
    let* words = readback 0 [] in
    let stored = Tseq.of_vectors (Array.of_list words) in
    let sim = Bist_sim.Seq_sim.create circuit in
    apply_sync ~count:false sim;
    let reference = Misr.create ~width:num_outputs in
    Tseq.iter
      (fun v -> Misr.compact reference (Bist_sim.Seq_sim.step sim v))
      (Bist_core.Ops.expand ~n stored);
    Ok (Misr.signature reference, not (Misr.contaminated reference))
  in
  let apply_one seq =
    let detections = ref [] in
    let base_corrections = Memory.corrections memory in
    let rec attempt k =
      if k > 1 then incr total_reloads;
      (match
         Memory.load_sequence memory seq
           ~corrupt:(fun ~word v -> Injector.on_load_word injector ~word v)
       with
       | Ok () -> ()
       | Error e -> Error.raise_exn e (* unreachable: inputs pre-validated *));
      Injector.on_stored injector memory;
      let captured = ref [] in
      let outcome =
        let* reference =
          if defense.signature_check then
            let* r = software_signature ~attempt:k () in
            Ok (Some r)
          else Ok None
        in
        let controller = Controller.start ~injector memory ~n in
        let sim = Bist_sim.Seq_sim.create circuit in
        apply_sync ~count:true sim;
        Misr.reset misr;
        captured := [];
        let* () =
          let rec loop () =
            if Controller.finished controller then Ok ()
            else
              let* vec = Controller.step_checked controller ~attempt:k in
              if capture then captured := vec :: !captured;
              Misr.compact misr (Bist_sim.Seq_sim.step sim vec);
              incr at_speed;
              loop ()
          in
          loop ()
        in
        Injector.on_final_misr injector misr;
        let emitted = Controller.emitted controller in
        let* () =
          if defense.cycle_check && emitted <> Controller.total_cycles controller then
            Error
              (Error.Cycle_count_mismatch
                 { expected = Controller.total_cycles controller;
                   got = emitted;
                   attempt = k })
          else Ok ()
        in
        let* () =
          match reference with
          | Some (ref_sig, true) when Misr.signature misr <> ref_sig ->
            Error
              (Error.Signature_mismatch
                 { expected = ref_sig; got = Misr.signature misr; attempt = k })
          | _ -> Ok ()
        in
        Ok emitted
      in
      match outcome with
      | Ok emitted ->
        let corrections = Memory.corrections memory - base_corrections in
        let status =
          if k = 1 && !detections = [] && corrections = 0 then Clean else Recovered
        in
        {
          stored_length = Tseq.length seq;
          applied_length = emitted;
          signature = Misr.signature misr;
          signature_valid = not (Misr.contaminated misr);
          status;
          attempts = k;
          corrections;
          detections = List.rev !detections;
          applied =
            (if capture then
               Some
                 (match !captured with
                  | [] -> Tseq.empty num_inputs
                  | vs -> Tseq.of_vectors (Array.of_list (List.rev vs)))
             else None);
        }
      | Error e ->
        detections := e :: !detections;
        if k > defense.max_reloads then
          (* Graceful degradation: the sequence could not be applied
             faithfully; report the failure instead of raising and let
             the session continue with the remaining sequences. *)
          {
            stored_length = Tseq.length seq;
            applied_length = 0;
            signature = Misr.signature misr;
            signature_valid = false;
            status = Degraded e;
            attempts = k;
            corrections = Memory.corrections memory - base_corrections;
            detections = List.rev !detections;
            applied = None;
          }
        else attempt (k + 1)
    in
    attempt 1
  in
  let per_sequence = List.map apply_one sequences in
  Ok
    {
      circuit_name = Bist_circuit.Netlist.circuit_name circuit;
      n;
      memory_words = depth;
      memory_bits = depth * num_inputs;
      total_load_cycles = Memory.total_load_cycles memory;
      total_at_speed_cycles = !at_speed;
      sync_cycles_per_sequence = sync_cycles;
      total_reloads = !total_reloads;
      complete =
        List.for_all
          (fun s -> match s.status with Degraded _ -> false | _ -> true)
          per_sequence;
      defense;
      per_sequence;
      area = Area.estimate ~ecc:defense.ecc ~num_inputs ~max_seq_len:depth ~n ();
    }

let run_exn ?sync ?defense ?injector ?capture ~n circuit sequences =
  Error.ok_exn (run ?sync ?defense ?injector ?capture ~n circuit sequences)

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%s (n=%d): memory %d words (%d bits), load %d cycles, at-speed %d cycles@,%a@,defense: ecc %s, signature-check %b, cycle-check %b, max-reloads %d; %d reloads; %s@,%d sequences:@,"
    r.circuit_name r.n r.memory_words r.memory_bits r.total_load_cycles
    r.total_at_speed_cycles Area.pp r.area
    (Ecc.scheme_name r.defense.ecc)
    r.defense.signature_check r.defense.cycle_check r.defense.max_reloads
    r.total_reloads
    (if r.complete then "complete" else "PARTIAL")
    (List.length r.per_sequence);
  List.iteri
    (fun i s ->
      Format.fprintf fmt "  #%d: stored %d, applied %d, signature %08x%s%s@," i
        s.stored_length s.applied_length s.signature
        (if s.signature_valid then "" else " (X-contaminated)")
        (match s.status with
         | Clean -> ""
         | Recovered ->
           Printf.sprintf " [recovered: %d attempts, %d corrections]" s.attempts
             s.corrections
         | Degraded e -> Printf.sprintf " [DEGRADED: %s]" (Error.to_string e)))
    r.per_sequence;
  Format.fprintf fmt "@]"
