(** Deterministic fault injection into the hardware model.

    The paper assumes the BIST machinery itself is fault-free; this module
    drops that assumption. An injector arms exactly one fault and is
    threaded through {!Session.run}, which hands it the hook points the
    real defect mechanisms correspond to: memory cells as words are
    written and after a load completes, the address counter on every
    read, the terminal-count comparator at controller start, and the MISR
    register at the end of a sequence.

    Transient faults ([Mem_flip], [Early_termination], [Late_termination],
    [Misr_corrupt]) fire once at their first opportunity and never again —
    in particular not on a recovery reload, which is what makes the
    session's retry policy effective against them. Permanent faults
    ([Mem_stuck], [Addr_stuck]) apply at every opportunity, so recovery by
    reload fails and the session must degrade gracefully instead. *)

type fault =
  | Mem_flip of { word : int; bit : int; phase : [ `Load | `Stored ] }
      (** One-shot bit flip of a stored cell, either as the word is
          written ([`Load]) or once the load completes ([`Stored]). Both
          strike after check-bit generation, as a cell upset does. *)
  | Mem_stuck of { word : int; bit : int; value : bool }  (** Permanent. *)
  | Addr_stuck of { bit : int; value : bool }
      (** Permanent stuck bit of the memory address counter. *)
  | Early_termination of { dropped : int }
  | Late_termination of { extra : int }
  | Misr_corrupt of { mask : int }

type t

val none : t
(** Inert injector; every hook is the identity. *)

val create : fault -> t
(** A fresh injector with the fault armed (transient faults not yet
    fired). *)

val fault : t -> fault option

val kind_name : fault -> string
(** Short slug for campaign tables: ["mem-flip"], ["addr-stuck"], ... *)

val fault_to_string : fault -> string

(** {2 Hook points (called by the hardware model)} *)

val on_load_word : t -> word:int -> Bist_logic.Vector.t -> Bist_logic.Vector.t
(** Corrupt a word as it is written into the memory. *)

val on_stored : t -> Memory.t -> unit
(** Strike the stored content after a load completed. *)

val on_address : t -> int -> int
(** Apply address-counter stuck bits to a nominal address. *)

val adjust_total_cycles : t -> int -> int
(** Glitch the terminal count at controller start. *)

val on_final_misr : t -> Misr.t -> unit
(** Corrupt the signature register at the end of a sequence. *)
