type t = {
  po_width : int;
  reg_width : int;
  poly_mask : int;
  mutable state : int;
  mutable contaminated : bool;
}

let create ~width =
  if width < 1 then invalid_arg "Misr.create";
  let reg_width = min 32 (max 2 width) in
  {
    po_width = width;
    reg_width;
    poly_mask =
      List.fold_left
        (fun acc tap -> acc lor (1 lsl (tap - 1)))
        (1 lsl (reg_width - 1))
        (Lfsr.taps_for reg_width);
    state = 0;
    contaminated = false;
  }

let compact t vec =
  if Bist_logic.Vector.width vec <> t.po_width then
    invalid_arg "Misr.compact: response width mismatch";
  let inject = ref 0 in
  for i = 0 to t.po_width - 1 do
    match Bist_logic.Vector.get vec i with
    | Bist_logic.Ternary.One -> inject := !inject lxor (1 lsl (i mod t.reg_width))
    | Bist_logic.Ternary.Zero -> ()
    | Bist_logic.Ternary.X -> t.contaminated <- true
  done;
  let out = t.state land 1 in
  let shifted = t.state lsr 1 in
  let fed = if out = 1 then shifted lxor t.poly_mask else shifted in
  t.state <- fed lxor !inject

let signature t = t.state
let contaminated t = t.contaminated
let reg_width t = t.reg_width

let corrupt t ~mask =
  t.state <- t.state lxor (mask land ((1 lsl t.reg_width) - 1))

let reset t =
  t.state <- 0;
  t.contaminated <- false
