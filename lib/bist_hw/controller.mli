(** The on-chip expansion controller.

    A small FSM drives the memory address counter and the two output
    multiplexers to emit the expanded sequence [Sexp] cycle by cycle.
    With [S] of length [L] stored, the controller performs [8·n] memory
    sweeps of [L] cycles each:

    {v
    sweeps 0..n-1     : up,   plain            (S^n)
    sweeps n..2n-1    : up,   complemented     (~S^n)
    sweeps 2n..3n-1   : up,   shifted          (S^n << 1)
    sweeps 3n..4n-1   : up,   shifted+compl.   (~S^n << 1)
    sweeps 4n..5n-1   : down, shifted+compl.
    sweeps 5n..6n-1   : down, shifted
    sweeps 6n..7n-1   : down, complemented
    sweeps 7n..8n-1   : down, plain
    v}

    which is exactly [Ops.expand ~n] (tested as an equivalence property).
    The hardware needed — an up/down address counter, a sweep counter,
    one inverter + mux per memory output and a rotate-by-one mux — is
    independent of the circuit under test, as the paper observes.

    An optional {!Injector} models defects in this machinery: stuck
    address-counter bits divert every read (the diverted address wraps
    into the stored range, as a physical counter's would), and
    terminal-count glitches stop the FSM early or let it overrun. The
    nominal {!total_cycles} is unaffected — comparing it against
    {!emitted} is the session's cycle-count defense. *)

type t

val start : ?injector:Injector.t -> Memory.t -> n:int -> t
(** Begin a session over the sequence currently loaded in the memory. *)

val total_cycles : t -> int
(** Nominal [8 · n · used_words]. *)

val emitted : t -> int
(** Cycles emitted so far (equals [total_cycles] after a clean run). *)

val finished : t -> bool

val step : t -> Bist_logic.Vector.t
(** Emit the next vector of [Sexp] and advance, reading the memory raw
    (no ECC check). Raises [Invalid_argument] when {!finished}. *)

val step_checked : t -> attempt:int -> (Bist_logic.Vector.t, Error.t) result
(** {!step} through the ECC decoder: [Error] (without advancing) when the
    memory flags an uncorrectable word. *)

val emit_all : t -> Bist_logic.Tseq.t
(** Run the controller to completion from its current position. *)
