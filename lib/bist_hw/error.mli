(** Structured errors of the hardware model.

    Misuse of the session (empty inputs, width mismatches) and runtime
    integrity violations caught by the defenses (parity, golden-signature
    cross-check, cycle-count comparator) are all values of one type, so a
    session can report them, retry on them, or surface them in a partial
    report instead of aborting the program. The [_exn] wrappers of the
    [Result]-returning entry points raise {!Error}. *)

type t =
  | No_sequences  (** {!Session.run} called with an empty sequence list. *)
  | Empty_sequence  (** A stored sequence of length 0. *)
  | Width_mismatch of { expected : int; got : int }
  | Sequence_too_long of { length : int; depth : int }
  | Address_out_of_range of { addr : int; used : int }
  | Parity_violation of { word : int; attempt : int }
      (** The memory ECC flagged an uncorrectable word on read. *)
  | Signature_mismatch of { expected : int; got : int; attempt : int }
      (** The hardware signature disagreed with the software reference
          recomputed from the stored memory content. *)
  | Cycle_count_mismatch of { expected : int; got : int; attempt : int }
      (** The controller did not apply exactly [8nL] cycles. *)

exception Error of t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val raise_exn : t -> 'a
(** Raise {!Error}. *)

val ok_exn : ('a, t) result -> 'a
(** Unwrap, raising {!Error} on [Error]. *)
