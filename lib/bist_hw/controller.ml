module Vector = Bist_logic.Vector

type t = {
  memory : Memory.t;
  injector : Injector.t;
  n : int;
  length : int;
  nominal : int; (* 8 · n · length *)
  target : int; (* nominal, unless a termination glitch was injected *)
  mutable sweep : int; (* 0 .. 8n-1 (beyond on an injected overrun) *)
  mutable offset : int; (* 0 .. length-1, position within the sweep *)
  mutable emitted : int;
}

let start ?(injector = Injector.none) memory ~n =
  if n < 1 then invalid_arg "Controller.start: n must be >= 1";
  let length = Memory.used_words memory in
  if length = 0 then invalid_arg "Controller.start: memory is empty";
  let nominal = 8 * n * length in
  let target = Injector.adjust_total_cycles injector nominal in
  { memory; injector; n; length; nominal; target; sweep = 0; offset = 0; emitted = 0 }

let total_cycles t = t.nominal
let emitted t = t.emitted
let finished t = t.emitted >= t.target

(* Decode the sweep index into direction / complement / shift controls.
   The quarter wraps modulo 8 so an injected overrun keeps emitting the
   periodic pattern instead of walking off the FSM. *)
let controls t =
  let quarter = t.sweep / t.n mod 8 in
  match quarter with
  | 0 -> (`Up, false, false)
  | 1 -> (`Up, true, false)
  | 2 -> (`Up, false, true)
  | 3 -> (`Up, true, true)
  | 4 -> (`Down, true, true)
  | 5 -> (`Down, false, true)
  | 6 -> (`Down, true, false)
  | 7 -> (`Down, false, false)
  | _ -> assert false

let step_with t read =
  if finished t then invalid_arg "Controller.step: already finished";
  let dir, comp, shift = controls t in
  let addr = match dir with `Up -> t.offset | `Down -> t.length - 1 - t.offset in
  let addr = Injector.on_address t.injector addr mod t.length in
  match read t.memory addr with
  | Error _ as e -> e
  | Ok word ->
    let word = if shift then Vector.shift_left_circular word else word in
    let word = if comp then Vector.complement word else word in
    t.offset <- t.offset + 1;
    if t.offset = t.length then begin
      t.offset <- 0;
      t.sweep <- t.sweep + 1
    end;
    t.emitted <- t.emitted + 1;
    Ok word

let step t =
  match step_with t (fun m a -> Ok (Memory.read m a)) with
  | Ok word -> word
  | Error _ -> assert false (* the raw read never returns Error *)

let step_checked t ~attempt = step_with t (fun m a -> Memory.read_checked m ~attempt a)

let emit_all t =
  let remaining = t.target - t.emitted in
  if remaining <= 0 then Bist_logic.Tseq.empty (Memory.word_bits t.memory)
  else Bist_logic.Tseq.of_vectors (Array.init remaining (fun _ -> step t))
