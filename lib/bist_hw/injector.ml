module Vector = Bist_logic.Vector
module T = Bist_logic.Ternary

type fault =
  | Mem_flip of { word : int; bit : int; phase : [ `Load | `Stored ] }
  | Mem_stuck of { word : int; bit : int; value : bool }
  | Addr_stuck of { bit : int; value : bool }
  | Early_termination of { dropped : int }
  | Late_termination of { extra : int }
  | Misr_corrupt of { mask : int }

type t = { fault : fault option; mutable fired : bool }

let none = { fault = None; fired = true }
let create fault = { fault = Some fault; fired = false }
let fault t = t.fault

let kind_name = function
  | Mem_flip _ -> "mem-flip"
  | Mem_stuck _ -> "mem-stuck"
  | Addr_stuck _ -> "addr-stuck"
  | Early_termination _ -> "early-term"
  | Late_termination _ -> "late-term"
  | Misr_corrupt _ -> "misr-corrupt"

let fault_to_string = function
  | Mem_flip { word; bit; phase } ->
    Printf.sprintf "transient flip of memory word %d bit %d (%s)" word bit
      (match phase with `Load -> "during load" | `Stored -> "after load")
  | Mem_stuck { word; bit; value } ->
    Printf.sprintf "memory cell word %d bit %d stuck at %d" word bit
      (if value then 1 else 0)
  | Addr_stuck { bit; value } ->
    Printf.sprintf "address counter bit %d stuck at %d" bit (if value then 1 else 0)
  | Early_termination { dropped } ->
    Printf.sprintf "controller terminates %d cycles early" dropped
  | Late_termination { extra } ->
    Printf.sprintf "controller overruns by %d cycles" extra
  | Misr_corrupt { mask } -> Printf.sprintf "MISR register corrupted by mask %x" mask

let flip v i =
  match Vector.get v i with
  | T.One -> Vector.set v i T.Zero
  | T.Zero -> Vector.set v i T.One
  | T.X -> v

let on_load_word t ~word v =
  match t.fault with
  | Some (Mem_flip { word = w; bit; phase = `Load }) when (not t.fired) && w = word ->
    t.fired <- true;
    flip v bit
  | Some (Mem_stuck { word = w; bit; value }) when w = word ->
    Vector.set v bit (if value then T.One else T.Zero)
  | _ -> v

let on_stored t memory =
  match t.fault with
  | Some (Mem_flip { word; bit; phase = `Stored })
    when (not t.fired) && word < Memory.used_words memory ->
    t.fired <- true;
    Memory.corrupt memory ~word (fun v -> flip v bit)
  | _ -> ()

let on_address t addr =
  match t.fault with
  | Some (Addr_stuck { bit; value }) ->
    if value then addr lor (1 lsl bit) else addr land lnot (1 lsl bit)
  | _ -> addr

let adjust_total_cycles t nominal =
  match t.fault with
  | Some (Early_termination { dropped }) when not t.fired ->
    t.fired <- true;
    max 0 (nominal - dropped)
  | Some (Late_termination { extra }) when not t.fired ->
    t.fired <- true;
    nominal + extra
  | _ -> nominal

let on_final_misr t misr =
  match t.fault with
  | Some (Misr_corrupt { mask }) when not t.fired ->
    t.fired <- true;
    Misr.corrupt misr ~mask
  | _ -> ()
