(** End-to-end driver: T0 in, stored-sequence set out, with the metrics
    reported in the paper's Tables 3-5. *)

type summary = { count : int; total_length : int; max_length : int }
(** [|S|], total and maximum stored length. *)

type run = {
  circuit_name : string;
  n : int;  (** Repetitions used by the expansion. *)
  t0_length : int;
  total_faults : int;  (** Universe size ("tot" in Table 3). *)
  detected_by_t0 : int;  (** |F| ("det" in Table 3). *)
  before : summary;  (** After Procedure 1, before compaction. *)
  after : summary;  (** After static compaction. *)
  sequences : Bist_logic.Tseq.t list;  (** The compacted set S. *)
  expanded_total_length : int;
      (** Total at-speed test length: 8·n·(after total) for the full
          operator set ("test len" in Table 5). *)
  proc1_seconds : float;
  compaction_seconds : float;
  simulate_t0_seconds : float;  (** Fault-simulating T0 once — the paper's
                                    normalization unit for Table 4. *)
  coverage_verified : bool;
      (** Whether the compacted expansions re-detect every fault of F. *)
}

val execute :
  ?strategy:Procedure2.strategy ->
  ?operators:Ops.operator list ->
  ?passes:Postprocess.pass list ->
  ?fault_order:[ `Max_udet | `Min_udet | `Random ] ->
  ?verify:bool ->
  ?obs:Bist_obs.Obs.t ->
  seed:int ->
  n:int ->
  t0:Bist_logic.Tseq.t ->
  Bist_fault.Universe.t ->
  run
(** Run Procedure 1 then static compaction. [verify] (default [true])
    re-simulates the final set to check coverage against [T0]. [obs]
    wraps the driver phases in ["scheme.simulate_t0"], ["scheme.proc1"],
    ["scheme.compaction"] and ["scheme.verify"] spans, with the
    per-target, per-pass and per-shard spans of the callees nested
    inside. *)

val better : run -> run -> run
(** The paper's best-[n] rule: smaller maximum stored length, then
    smaller total stored length, then lower run time. *)

val best_n :
  ?strategy:Procedure2.strategy ->
  ?ns:int list ->
  ?obs:Bist_obs.Obs.t ->
  seed:int ->
  t0:Bist_logic.Tseq.t ->
  Bist_fault.Universe.t ->
  run
(** Run {!execute} for every [n] in [ns] (default [\[2; 4; 8; 16\]], the
    paper's sweep) and keep the best. *)

val summary_of_sequences : Bist_logic.Tseq.t list -> summary

val ratio_total : run -> float
(** [after.total_length / t0_length] (Table 5, "tot len /"). *)

val ratio_max : run -> float
(** [after.max_length / t0_length] (Table 5, "max len /"). *)
