module Tseq = Bist_logic.Tseq
module Rng = Bist_util.Rng
module Fsim = Bist_fault.Fsim
module Obs = Bist_obs.Obs

exception Undetected of { fault : string; udet : int }

let () =
  Printexc.register_printer (function
    | Undetected { fault; udet } ->
      Some
        (Printf.sprintf
           "Procedure2.find: T0[0, %d] does not detect fault %s — udet is not \
            this fault's detection time"
           udet fault)
    | _ -> None)

type strategy = {
  widen : [ `Linear | `Geometric ];
  omission : [ `Restart | `Single_pass | `None ];
  max_omission_trials : int;
}

let paper_strategy =
  { widen = `Linear; omission = `Restart; max_omission_trials = max_int }

let fast_strategy =
  { widen = `Geometric; omission = `Single_pass; max_omission_trials = 2000 }

type outcome = {
  subsequence : Tseq.t;
  ustart : int;
  window_length : int;
  simulations : int;
  simulated_time_units : int;
}

let find ?(strategy = paper_strategy) ?(operators = Ops.all_operators)
    ?(obs = Obs.null) ?ctl ~rng ~n ~t0 ~udet circuit fault =
  if udet < 0 || udet >= Tseq.length t0 then invalid_arg "Procedure2.find: udet out of range";
  let fault_name = Bist_fault.Fault.name circuit fault in
  let sims = ref 0 in
  let time_units = ref 0 in
  let single = Fsim.single circuit fault in
  let detects seq =
    (* Every widen step and omission trial funnels through here, so one
       poll covers both loops at simulation granularity. *)
    Bist_resilience.Ctl.poll ctl;
    let exp = Ops.expand_with ~operators ~n seq in
    incr sims;
    time_units := !time_units + Tseq.length exp;
    Fsim.single_detects single exp
  in
  let window_of ustart = Tseq.sub t0 ~lo:ustart ~hi:udet in
  let give_up () =
    (* A typed error naming the target: when a caller hands [find] a
       [udet] that is not this fault's detection time, the report must
       say which fault broke the run, not just that something did. *)
    Obs.count obs "proc2.undetected";
    raise (Undetected { fault = fault_name; udet })
  in
  (* Phase 1: widen the window until the expansion detects the fault. *)
  let ustart, window =
    Obs.span obs ~cat:"proc2" "proc2.widen"
      ~args:(fun () ->
        [ ("fault", fault_name); ("udet", string_of_int udet);
          ("sims", string_of_int !sims) ])
      (fun () ->
        match strategy.widen with
        | `Linear ->
          let rec widen ustart =
            let candidate = window_of ustart in
            if detects candidate then (ustart, candidate)
            else if ustart = 0 then give_up ()
            else widen (ustart - 1)
          in
          widen udet
        | `Geometric ->
          let rec widen size =
            let ustart = max 0 (udet - size + 1) in
            let candidate = window_of ustart in
            if detects candidate then (ustart, candidate)
            else if ustart = 0 then give_up ()
            else widen (2 * size)
          in
          widen 1)
  in
  let window_length = udet - ustart + 1 in
  (* Phase 2: vector omission (steps 4-9 of the paper's Procedure 2).
     [`Restart] rescans from a fresh random order after every accepted
     omission; [`Single_pass] visits each position once. *)
  let seq = ref window in
  let trials = ref 0 in
  let budget () = !trials < strategy.max_omission_trials in
  let try_omit u =
    if Tseq.length !seq > 1 && u < Tseq.length !seq then begin
      incr trials;
      let candidate = Tseq.omit !seq u in
      if detects candidate then begin
        seq := candidate;
        true
      end
      else false
    end
    else false
  in
  Obs.span obs ~cat:"proc2" "proc2.omit"
    ~args:(fun () ->
      [ ("fault", fault_name); ("trials", string_of_int !trials);
        ("kept", string_of_int (Tseq.length !seq));
        ("window", string_of_int window_length) ])
    (fun () ->
      match strategy.omission with
      | `None -> ()
      | `Single_pass ->
        (* Scan positions once, highest first, so accepted omissions never
           shift a position that is still to be visited. *)
        let len = Tseq.length !seq in
        for u = len - 1 downto 0 do
          if budget () then ignore (try_omit u : bool)
        done
      | `Restart ->
        let continue = ref true in
        while !continue && budget () do
          let order = Rng.permutation rng (Tseq.length !seq) in
          let accepted = ref false in
          let i = ref 0 in
          while (not !accepted) && !i < Array.length order && budget () do
            if try_omit order.(!i) then accepted := true;
            incr i
          done;
          if not !accepted then continue := false
        done);
  {
    subsequence = !seq;
    ustart;
    window_length;
    simulations = !sims;
    simulated_time_units = !time_units;
  }
