(** Static compaction of the stored-sequence set (Section 3.2).

    Sequences are re-simulated in several orders; in each pass the
    simulation starts from the full target fault set, every sequence
    drops the faults its expansion detects, and a sequence that detects
    nothing new at its turn is removed. The paper's four passes:

    + by increasing stored length,
    + by decreasing stored length,
    + in reverse generation order,
    + by decreasing number of faults detected in the previous pass. *)

type pass =
  | Increasing_length
  | Decreasing_length
  | Reverse_generation
  | Decreasing_prev_detections

val default_passes : pass list

val pass_name : pass -> string
(** Stable snake_case name, used by the trace spans and reports. *)

type outcome = {
  kept : Bist_logic.Tseq.t list;  (** Survivors, in generation order. *)
  dropped : int;
  simulated_time_units : int;
}

val run :
  ?passes:pass list ->
  ?operators:Ops.operator list ->
  ?obs:Bist_obs.Obs.t ->
  n:int ->
  targets:Bist_util.Bitset.t ->
  Bist_fault.Universe.t ->
  Bist_logic.Tseq.t list ->
  outcome
(** [run ~n ~targets universe seqs] compacts [seqs] (given in generation
    order) while preserving coverage of [targets]. [obs] records one
    ["postprocess.pass"] span per pass, tagged with the ordering rule and
    the number of sequences still active when the pass finished. *)
