module Tseq = Bist_logic.Tseq
module Bitset = Bist_util.Bitset
module Universe = Bist_fault.Universe
module Fsim = Bist_fault.Fsim

type summary = { count : int; total_length : int; max_length : int }

type run = {
  circuit_name : string;
  n : int;
  t0_length : int;
  total_faults : int;
  detected_by_t0 : int;
  before : summary;
  after : summary;
  sequences : Tseq.t list;
  expanded_total_length : int;
  proc1_seconds : float;
  compaction_seconds : float;
  simulate_t0_seconds : float;
  coverage_verified : bool;
}

let summary_of_sequences seqs =
  {
    count = List.length seqs;
    total_length = Procedure1.total_length seqs;
    max_length = Procedure1.max_length seqs;
  }

let timed f =
  let start = Sys.time () in
  let result = f () in
  (result, Sys.time () -. start)

(* Coverage check: the union of faults detected by the compacted
   expansions must include every fault T0 detects. *)
let verify_coverage ~operators ~n universe targets seqs =
  let remaining = Bitset.copy targets in
  List.iter
    (fun seq ->
      if not (Bitset.is_empty remaining) then begin
        let exp = Ops.expand_with ~operators ~n seq in
        let outcome =
          Fsim.run ~targets:remaining ~stop_when_all_detected:true universe exp
        in
        Bitset.diff_into remaining outcome.Fsim.detected
      end)
    seqs;
  Bitset.is_empty remaining

let execute ?(strategy = Procedure2.paper_strategy)
    ?(operators = Ops.all_operators) ?(passes = Postprocess.default_passes)
    ?(fault_order = `Max_udet) ?(verify = true) ?(obs = Bist_obs.Obs.null)
    ~seed ~n ~t0 universe =
  let rng = Bist_util.Rng.create seed in
  let span name f = Bist_obs.Obs.span obs ~cat:"scheme" name f in
  let _, simulate_t0_seconds =
    timed (fun () ->
        span "scheme.simulate_t0" (fun () ->
            Bist_fault.Fault_table.compute ~obs universe t0))
  in
  let proc1, proc1_seconds =
    timed (fun () ->
        span "scheme.proc1" (fun () ->
            Procedure1.run ~strategy ~operators ~fault_order ~obs ~rng ~n ~t0
              universe))
  in
  let before_seqs = Procedure1.sequences proc1 in
  let targets = proc1.Procedure1.t0_detected in
  let post, compaction_seconds =
    timed (fun () ->
        span "scheme.compaction" (fun () ->
            Postprocess.run ~passes ~operators ~obs ~n ~targets universe
              before_seqs))
  in
  let after_seqs = post.Postprocess.kept in
  let after = summary_of_sequences after_seqs in
  let coverage_verified =
    (not verify)
    || span "scheme.verify" (fun () ->
           verify_coverage ~operators ~n universe targets after_seqs)
  in
  {
    circuit_name = Bist_circuit.Netlist.circuit_name (Universe.circuit universe);
    n;
    t0_length = Tseq.length t0;
    total_faults = Universe.size universe;
    detected_by_t0 = Bitset.cardinal targets;
    before = summary_of_sequences before_seqs;
    after;
    sequences = after_seqs;
    expanded_total_length =
      Ops.expansion_factor ~operators ~n * after.total_length;
    proc1_seconds;
    compaction_seconds;
    simulate_t0_seconds;
    coverage_verified;
  }

let better a b =
  if a.after.max_length <> b.after.max_length then
    if a.after.max_length < b.after.max_length then a else b
  else if a.after.total_length <> b.after.total_length then
    if a.after.total_length < b.after.total_length then a else b
  else if a.proc1_seconds +. a.compaction_seconds
          <= b.proc1_seconds +. b.compaction_seconds
  then a
  else b

let best_n ?(strategy = Procedure2.paper_strategy) ?(ns = [ 2; 4; 8; 16 ])
    ?(obs = Bist_obs.Obs.null) ~seed ~t0 universe =
  match ns with
  | [] -> invalid_arg "Scheme.best_n: empty n list"
  | n0 :: rest ->
    let first = execute ~strategy ~obs ~seed ~n:n0 ~t0 universe in
    List.fold_left
      (fun best n -> better best (execute ~strategy ~obs ~seed ~n ~t0 universe))
      first rest

let ratio_total run =
  float_of_int run.after.total_length /. float_of_int run.t0_length

let ratio_max run =
  float_of_int run.after.max_length /. float_of_int run.t0_length
