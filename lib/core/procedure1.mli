(** Procedure 1: select the set of stored sequences S.

    Starting from the faults [F] detected by [T0] (with their first
    detection times), repeatedly pick the yet-uncovered fault with the
    highest [udet], derive a stored sequence for it with {!Procedure2},
    and drop from the target set every fault detected by the new
    sequence's expansion. Terminates because each iteration covers at
    least its own target fault. *)

type selected = {
  seq : Bist_logic.Tseq.t;
  target_fault : int;  (** Universe id of the fault that seeded it. *)
  newly_detected : Bist_util.Bitset.t;
      (** Targets dropped when this sequence was added. *)
  proc2 : Procedure2.outcome;
}

type result = {
  selected : selected list;  (** In generation order. *)
  t0_detected : Bist_util.Bitset.t;  (** [F]: the coverage to reproduce. *)
  total_simulated_time_units : int;
}

exception Undetected_target of { fault_id : int; fault : string; udet : int }
(** {!Procedure2.Undetected} enriched with the universe fault id: the
    fault table claimed [T0] detects [fault_id] at [udet], but Procedure
    2 could not reproduce the detection. Indicates an internal
    inconsistency; the error names the fault so the failing run is
    diagnosable. *)

val run :
  ?strategy:Procedure2.strategy ->
  ?operators:Ops.operator list ->
  ?fault_order:[ `Max_udet | `Min_udet | `Random ] ->
  ?obs:Bist_obs.Obs.t ->
  ?ctl:Bist_resilience.Ctl.t ->
  rng:Bist_util.Rng.t ->
  n:int ->
  t0:Bist_logic.Tseq.t ->
  Bist_fault.Universe.t ->
  result
(** [fault_order] (default [`Max_udet], the paper's rule) exists for the
    ablation study. [obs] records one ["proc1.target"] span per selected
    sequence (tagged with the target fault and its [udet]) around the
    Procedure-2 spans, plus the fault-simulation shard spans.

    [ctl] (default: none) is polled between targets and forwarded to the
    fault-table pass and {!Procedure2.find}; a demanded stop raises
    {!Bist_resilience.Ctl.Preempted}. Procedure 1 itself is cheap (the
    expensive [T0] generation checkpoints upstream), so it carries no
    resumable snapshot — a preempted selection restarts. *)

val sequences : result -> Bist_logic.Tseq.t list

val total_length : Bist_logic.Tseq.t list -> int
val max_length : Bist_logic.Tseq.t list -> int
