module Tseq = Bist_logic.Tseq
module Bitset = Bist_util.Bitset
module Rng = Bist_util.Rng
module Fsim = Bist_fault.Fsim
module Fault_table = Bist_fault.Fault_table
module Universe = Bist_fault.Universe
module Obs = Bist_obs.Obs

exception Undetected_target of { fault_id : int; fault : string; udet : int }

let () =
  Printexc.register_printer (function
    | Undetected_target { fault_id; fault; udet } ->
      Some
        (Printf.sprintf
           "Procedure1.run: target fault %s (id %d) was not re-detected by \
            T0[0, %d] — the fault table and Procedure 2 disagree"
           fault fault_id udet)
    | _ -> None)

type selected = {
  seq : Tseq.t;
  target_fault : int;
  newly_detected : Bitset.t;
  proc2 : Procedure2.outcome;
}

type result = {
  selected : selected list;
  t0_detected : Bitset.t;
  total_simulated_time_units : int;
}

let pick_target ~fault_order ~rng table targets =
  match fault_order with
  | `Max_udet -> Fault_table.argmax_udet table ~targets
  | `Min_udet ->
    Bitset.fold
      (fun id best ->
        match (Fault_table.udet table id, best) with
        | None, _ -> best
        | Some _, None -> Some id
        | Some u, Some b ->
          let ub = Option.get (Fault_table.udet table b) in
          if u < ub then Some id else best)
      targets None
  | `Random ->
    let ids = Array.of_list (Bitset.elements targets) in
    if Array.length ids = 0 then None else Some (Rng.choose rng ids)

let run ?(strategy = Procedure2.paper_strategy) ?(operators = Ops.all_operators)
    ?(fault_order = `Max_udet) ?(obs = Obs.null) ?ctl ~rng ~n ~t0 universe =
  let circuit = Universe.circuit universe in
  let table = Fault_table.compute ~obs ?ctl universe t0 in
  let t0_detected = Fault_table.detected table in
  let targets = Bitset.copy t0_detected in
  let time_units = ref 0 in
  let selected = ref [] in
  let continue = ref true in
  while !continue do
    (* Safe point between targets: the scheme built so far is complete
       and nothing about the next target has been committed. *)
    Bist_resilience.Ctl.poll ctl;
    match pick_target ~fault_order ~rng table targets with
    | None -> continue := false
    | Some fid ->
      let fault = Universe.get universe fid in
      let udet =
        match Fault_table.udet table fid with
        | Some u -> u
        | None -> assert false (* targets only hold faults T0 detects *)
      in
      Obs.span obs ~cat:"proc1" "proc1.target"
        ~args:(fun () ->
          [ ("fault", Bist_fault.Fault.name circuit fault);
            ("fault_id", string_of_int fid); ("udet", string_of_int udet);
            ("remaining", string_of_int (Bitset.cardinal targets)) ])
        (fun () ->
          let proc2 =
            try
              Procedure2.find ~strategy ~operators ~obs ?ctl ~rng ~n ~t0 ~udet
                circuit fault
            with Procedure2.Undetected { fault; udet } ->
              (* Enrich with the universe id: the table said T0 detects
                 this fault at [udet], so this is an internal
                 inconsistency worth naming precisely. *)
              raise (Undetected_target { fault_id = fid; fault; udet })
          in
          let exp = Ops.expand_with ~operators ~n proc2.Procedure2.subsequence in
          time_units :=
            !time_units + (Tseq.length exp * ((Bitset.cardinal targets + 61) / 62));
          let outcome =
            Fsim.run ~obs ~targets ~stop_when_all_detected:true universe exp
          in
          let newly = outcome.Fsim.detected in
          (* Procedure 2 guarantees the expansion detects its seeding fault. *)
          assert (Bitset.mem newly fid);
          Bitset.diff_into targets newly;
          time_units := !time_units + proc2.Procedure2.simulated_time_units;
          selected :=
            { seq = proc2.Procedure2.subsequence; target_fault = fid;
              newly_detected = newly; proc2 }
            :: !selected)
  done;
  Obs.count obs ~by:(List.length !selected) "proc1.sequences";
  {
    selected = List.rev !selected;
    t0_detected;
    total_simulated_time_units = !time_units;
  }

let sequences result = List.map (fun s -> s.seq) result.selected

let total_length seqs = List.fold_left (fun acc s -> acc + Tseq.length s) 0 seqs

let max_length seqs = List.fold_left (fun acc s -> max acc (Tseq.length s)) 0 seqs
