module Tseq = Bist_logic.Tseq
module Bitset = Bist_util.Bitset
module Fsim = Bist_fault.Fsim

type pass =
  | Increasing_length
  | Decreasing_length
  | Reverse_generation
  | Decreasing_prev_detections

let pass_name = function
  | Increasing_length -> "increasing_length"
  | Decreasing_length -> "decreasing_length"
  | Reverse_generation -> "reverse_generation"
  | Decreasing_prev_detections -> "decreasing_prev_detections"

let default_passes =
  [ Increasing_length; Decreasing_length; Reverse_generation; Decreasing_prev_detections ]

type item = {
  seq : Tseq.t;
  gen_index : int;
  mutable active : bool;
  mutable prev_detections : int;
}

type outcome = {
  kept : Tseq.t list;
  dropped : int;
  simulated_time_units : int;
}

(* All orderings are stable with generation order as the tiebreak, so a
   fixed input yields a fixed result. *)
let order_for pass items =
  let active = List.filter (fun it -> it.active) items in
  let by key =
    List.stable_sort
      (fun a b ->
        let c = Int.compare (key a) (key b) in
        if c <> 0 then c else Int.compare a.gen_index b.gen_index)
      active
  in
  match pass with
  | Increasing_length -> by (fun it -> Tseq.length it.seq)
  | Decreasing_length -> by (fun it -> -Tseq.length it.seq)
  | Reverse_generation -> by (fun it -> -it.gen_index)
  | Decreasing_prev_detections -> by (fun it -> -it.prev_detections)

let run ?(passes = default_passes) ?(operators = Ops.all_operators)
    ?(obs = Bist_obs.Obs.null) ~n ~targets universe seqs =
  let items = List.mapi (fun i seq -> { seq; gen_index = i; active = true; prev_detections = 0 }) seqs in
  let time_units = ref 0 in
  let run_pass pass =
    let remaining = Bitset.copy targets in
    let simulate it =
      let exp = Ops.expand_with ~operators ~n it.seq in
      time_units :=
        !time_units + (Tseq.length exp * ((Bitset.cardinal remaining + 61) / 62));
      let outcome =
        Fsim.run ~obs ~targets:remaining ~stop_when_all_detected:true universe
          exp
      in
      let detected = outcome.Fsim.detected in
      let count = Bitset.cardinal detected in
      if count = 0 then it.active <- false
      else begin
        Bitset.diff_into remaining detected;
        it.prev_detections <- count
      end
    in
    Bist_obs.Obs.span obs ~cat:"compaction" "postprocess.pass"
      ~args:(fun () ->
        [ ("order", pass_name pass);
          ("active",
           string_of_int
             (List.length (List.filter (fun it -> it.active) items))) ])
      (fun () -> List.iter simulate (order_for pass items))
  in
  List.iter run_pass passes;
  let kept =
    List.filter_map (fun it -> if it.active then Some it.seq else None) items
  in
  {
    kept;
    dropped = List.length seqs - List.length kept;
    simulated_time_units = !time_units;
  }
