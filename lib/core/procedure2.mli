(** Procedure 2: derive a short stored sequence for one target fault.

    Given the deterministic sequence [T0] and a fault [f] first detected
    by [T0] at time [udet(f)], the procedure

    + grows a window [T' = T0\[ustart, udet(f)\]], decreasing [ustart]
      from [udet(f)], until the expanded sequence [T'exp] detects [f]
      (guaranteed to succeed by [ustart = 0] because [T'] is a prefix of
      [T'exp]);
    + greedily omits vectors of [T'] in random order, keeping an omission
      whenever [T'exp] still detects [f], restarting the scan after every
      accepted omission, until no vector can be omitted. *)

type strategy = {
  widen : [ `Linear | `Geometric ];
      (** How [ustart] descends in phase 1. [`Linear] is the paper's
          one-step rule; [`Geometric] doubles the window instead
          (1, 2, 4, ... time units, then the guaranteed [ustart = 0]),
          trading a slightly looser window for exponentially fewer
          simulations on large circuits. *)
  omission : [ `Restart | `Single_pass | `None ];
      (** [`Restart] is the paper's rule (rescan after every accepted
          omission); [`Single_pass] scans each vector once; [`None]
          skips phase 2. *)
  max_omission_trials : int;  (** Budget on phase-2 simulations. *)
}

val paper_strategy : strategy
(** [`Linear], [`Restart], unbounded — exactly Procedure 2. *)

val fast_strategy : strategy
(** [`Geometric], [`Single_pass], 2000 trials — for circuits where the
    exact rule is too slow; used by the harness above ~1500 nodes. *)

type outcome = {
  subsequence : Bist_logic.Tseq.t;  (** The final [T'], ready to store. *)
  ustart : int;  (** Window start found in the first phase. *)
  window_length : int;  (** [udet - ustart + 1], before omission. *)
  simulations : int;  (** Fault simulations performed (both phases). *)
  simulated_time_units : int;
      (** Total expanded vectors fed to the simulator — the
          implementation-independent cost measure. *)
}

exception Undetected of { fault : string; udet : int }
(** Raised when even [T0\[0, udet\]] fails to detect the target fault,
    i.e. the caller's [udet] was not this fault's detection time.
    [fault] is the human-readable {!Bist_fault.Fault.name}, so the error
    names the fault that broke the run instead of a bare [Failure]. A
    printer is registered with [Printexc]; {!Procedure1.run} re-raises it
    enriched with the universe fault id. *)

val find :
  ?strategy:strategy ->
  ?operators:Ops.operator list ->
  ?obs:Bist_obs.Obs.t ->
  ?ctl:Bist_resilience.Ctl.t ->
  rng:Bist_util.Rng.t ->
  n:int ->
  t0:Bist_logic.Tseq.t ->
  udet:int ->
  Bist_circuit.Netlist.t ->
  Bist_fault.Fault.t ->
  outcome
(** [find ~rng ~n ~t0 ~udet circuit fault]. [strategy] defaults to
    {!paper_strategy}; [operators] (default all) selects the expansion
    pipeline. Raises [Invalid_argument] if [udet] is out of range,
    {!Undetected} if even [T0\[0, udet\]] fails to detect the fault.

    [obs] records a ["proc2.widen"] span (window growth, phase 1) and a
    ["proc2.omit"] span (vector omission, phase 2) per call, each tagged
    with the fault name, plus a ["proc2.undetected"] counter when the
    typed error fires.

    [ctl] (default: none) is polled before every single-fault simulation
    in both phases; a demanded stop raises
    {!Bist_resilience.Ctl.Preempted} without leaving partial state. *)
