(** Shared CNF view of a netlist: dual-rail Tseitin encoding with
    k-frame time-frame expansion from the all-X reset state.

    The encoding mirrors {!Bist_sim.Packed_sim}'s two planes exactly —
    each line at each frame is a pair of rails [(one, zero)], both
    false meaning X — so SAT/UNSAT verdicts agree with
    {!Bist_fault.Fsim} on every input sequence of length [<= frames].
    Primary inputs are constrained binary, which is complete by
    ternary monotonicity (an X in a detecting sequence can always be
    specified without losing the detection).

    A view encodes the fault-free machine once; {!encode_fault} then
    emits one fault's faulty-cone copy plus two selector literals
    through a caller-supplied {!sink}, feeding either a fresh solver
    ({!load}) or the DIMACS exporter ({!Dimacs}). *)

type view

val view : frames:int -> Bist_circuit.Netlist.t -> view
(** Encode the fault-free machine for [frames] time frames. Raises
    [Invalid_argument] when [frames < 1]. *)

val circuit : view -> Bist_circuit.Netlist.t
val frames : view -> int

val base_vars : view -> int
(** Variables [0 .. base_vars - 1] are used by the fault-free
    encoding (variable 0 is the constant-true variable); per-fault
    variables must be allocated from [base_vars] up. *)

val iter_good_clauses : view -> (int array -> unit) -> unit
(** The fault-free clauses, starting with the constant-true unit.
    Clause arrays must not be mutated. *)

val num_good_clauses : view -> int

val pi_one_lit : view -> frame:int -> pi:int -> int
(** The one-rail literal of primary input [pi] (index into
    [Netlist.inputs]) at [frame] — true in a model iff the decoded
    input bit is 1. *)

val good_rails : view -> frame:int -> Bist_circuit.Netlist.node -> int * int
(** Fault-free [(one, zero)] rail literals of a node at a frame. *)

type sink = { fresh : unit -> int; emit : int array -> unit }
(** Clause receiver for {!encode_fault}: [fresh] allocates the next
    variable id, [emit] takes ownership of nothing (arrays are not
    retained by the encoder but must not be mutated by the sink). *)

type query = {
  excite : int;
      (** Assuming this literal asks: can the fault site's fault-free
          driver take the opposite of the stuck value within the
          bound? UNSAT proves the fault unexcitable in [frames]
          frames. *)
  detect : int;
      (** Assuming this literal asks: does some sequence of length
          [<= frames] detect the fault? A model decodes to a test via
          {!pi_one_lit}; UNSAT proves no such test exists. *)
}

val encode_fault : view -> sink -> Bist_fault.Fault.t -> query
(** Emit the faulty-machine cone copy, excitation and detection
    selectors for one fault. Deterministic: the same view and fault
    produce the same clauses and selector literals. *)

val load : view -> Bist_fault.Fault.t -> Solver.t * query
(** A fresh solver loaded with the view plus one fault's clauses. A
    new solver per fault keeps verdicts independent of query history,
    which the checkpoint/resume bit-identity invariant relies on. *)
