(* Shared CNF view of a netlist: a Tseitin encoding of the fault-free
   machine unrolled for [frames] time frames from the all-X reset
   state, in the dual-rail representation that mirrors
   [Bist_sim.Packed_sim]'s two planes.

   Every circuit line at every frame is a pair of rails [(one, zero)]:
   [one] true means the line is binary 1, [zero] true means binary 0,
   both false means X. Primary inputs are constrained to be binary
   ((p|q)(~p|~q)) — complete by ternary monotonicity: any detecting
   sequence with X inputs stays detecting under every binary
   completion, so restricting the search to binary inputs loses
   nothing. Flip-flops carry both rails false at frame 0 (the all-X
   reset) and alias their D driver's rails of the previous frame
   afterwards. Gates are rail-monotone AND/OR networks:

     AND   o1 = /\ a1_i        o0 = \/ a0_i
     OR    o1 = \/ a1_i        o0 = /\ a0_i
     XOR   left fold of  r1 = (p1&a0)|(p0&a1), r0 = (p1&a1)|(p0&a0)
     BUF/NOT/CONST/NAND/NOR/XNOR by aliasing/swapping the above

   exactly the plane equations of the packed simulator, so SAT/UNSAT
   verdicts agree with [Bist_fault.Fsim] on every sequence of length
   <= frames.

   The fault-free clauses are encoded once per view; per-fault clauses
   (the faulty cone copy, excitation and detection selectors) are
   emitted through a caller-supplied sink so the same encoding feeds
   both a fresh solver (deterministic, history-independent verdicts)
   and the DIMACS exporter. *)

module Netlist = Bist_circuit.Netlist
module Gate = Bist_circuit.Gate
module T = Bist_logic.Ternary

let const_true = Solver.lit_of_var 0
let const_false = Solver.neg const_true

type view = {
  circuit : Netlist.t;
  frames : int;
  base_vars : int;
  good : int array array; (* fault-free clauses, [|const_true|] first *)
  lit1 : int array array; (* lit1.(f).(n): one-rail literal of node n *)
  lit0 : int array array;
}

(* Clause sink: [fresh] allocates the next variable, [emit] receives
   each clause (the array is not retained by the encoder). *)
type sink = { fresh : unit -> int; emit : int array -> unit }

(* [define_and sink lits] returns a literal equivalent to the
   conjunction of [lits], simplifying constants and trivial cases. *)
let define_and sink lits =
  let lits = List.filter (fun l -> l <> const_true) lits in
  if List.mem const_false lits then const_false
  else
    match lits with
    | [] -> const_true
    | [ l ] -> l
    | _ ->
      let r = Solver.lit_of_var (sink.fresh ()) in
      List.iter (fun l -> sink.emit [| Solver.neg r; l |]) lits;
      sink.emit
        (Array.of_list (r :: List.map Solver.neg lits));
      r

let define_or sink lits =
  Solver.neg (define_and sink (List.map Solver.neg lits))

(* One XOR fold step over rail pairs, as in the simulator's plane
   fold: [(p1,p0) * (a1,a0) -> (r1,r0)]. *)
let xor_fold sink (p1, p0) (a1, a0) =
  let r1 = define_or sink [ define_and sink [ p1; a0 ]; define_and sink [ p0; a1 ] ] in
  let r0 = define_or sink [ define_and sink [ p1; a1 ]; define_and sink [ p0; a0 ] ] in
  (r1, r0)

(* Rails of a combinational gate from its fanin rails. [fan] is the
   array of fanin rail pairs in pin order. *)
let encode_gate sink kind fan =
  match (kind : Gate.kind) with
  | Gate.Buf -> fan.(0)
  | Gate.Not ->
    let o, z = fan.(0) in
    (z, o)
  | Gate.Const0 -> (const_false, const_true)
  | Gate.Const1 -> (const_true, const_false)
  | Gate.And | Gate.Nand ->
    let o1 = define_and sink (Array.to_list (Array.map fst fan)) in
    let o0 = define_or sink (Array.to_list (Array.map snd fan)) in
    if kind = Gate.Nand then (o0, o1) else (o1, o0)
  | Gate.Or | Gate.Nor ->
    let o1 = define_or sink (Array.to_list (Array.map fst fan)) in
    let o0 = define_and sink (Array.to_list (Array.map snd fan)) in
    if kind = Gate.Nor then (o0, o1) else (o1, o0)
  | Gate.Xor | Gate.Xnor ->
    (* The simulator folds from the constant-0 accumulator, whose first
       step yields the first fanin's rails unchanged. *)
    let acc = ref fan.(0) in
    for i = 1 to Array.length fan - 1 do
      acc := xor_fold sink !acc fan.(i)
    done;
    let o, z = !acc in
    if kind = Gate.Xnor then (z, o) else (o, z)
  | Gate.Input | Gate.Dff -> invalid_arg "Cnf.encode_gate: not combinational"

let view ~frames circuit =
  if frames < 1 then invalid_arg "Cnf.view: frames must be >= 1";
  let n = Netlist.size circuit in
  let counter = ref 1 (* var 0 is the constant-true variable *) in
  let clauses = ref [ [| const_true |] ] in
  let sink =
    {
      fresh =
        (fun () ->
          let v = !counter in
          incr counter;
          v);
      emit = (fun c -> clauses := c :: !clauses);
    }
  in
  let lit1 = Array.make_matrix frames n const_false in
  let lit0 = Array.make_matrix frames n const_false in
  for f = 0 to frames - 1 do
    Array.iter
      (fun pi ->
        let p = Solver.lit_of_var (sink.fresh ()) in
        let q = Solver.lit_of_var (sink.fresh ()) in
        sink.emit [| p; q |];
        sink.emit [| Solver.neg p; Solver.neg q |];
        lit1.(f).(pi) <- p;
        lit0.(f).(pi) <- q)
      (Netlist.inputs circuit);
    Array.iter
      (fun d ->
        if f = 0 then begin
          (* all-X reset: both rails false *)
          lit1.(f).(d) <- const_false;
          lit0.(f).(d) <- const_false
        end
        else begin
          let drv = (Netlist.fanins circuit d).(0) in
          lit1.(f).(d) <- lit1.(f - 1).(drv);
          lit0.(f).(d) <- lit0.(f - 1).(drv)
        end)
      (Netlist.dffs circuit);
    Array.iter
      (fun g ->
        let fan =
          Array.map
            (fun a -> (lit1.(f).(a), lit0.(f).(a)))
            (Netlist.fanins circuit g)
        in
        let o, z = encode_gate sink (Netlist.kind circuit g) fan in
        lit1.(f).(g) <- o;
        lit0.(f).(g) <- z)
      (Netlist.topo_order circuit)
  done;
  {
    circuit;
    frames;
    base_vars = !counter;
    good = Array.of_list (List.rev !clauses);
    lit1;
    lit0;
  }

let circuit v = v.circuit
let frames v = v.frames
let base_vars v = v.base_vars
let iter_good_clauses v f = Array.iter f v.good
let num_good_clauses v = Array.length v.good

let pi_one_lit v ~frame ~pi =
  v.lit1.(frame).((Netlist.inputs v.circuit).(pi))

let good_rails v ~frame node = (v.lit1.(frame).(node), v.lit0.(frame).(node))

(* Static forward cone of a fault site: the site node plus everything
   reachable through fanouts, crossing flip-flops (a DFF lists its D
   driver as a fanin, so [Netlist.fanouts] already includes the
   sequential edge). *)
let cone circuit start =
  let in_cone = Array.make (Netlist.size circuit) false in
  let rec visit n =
    if not in_cone.(n) then begin
      in_cone.(n) <- true;
      Array.iter visit (Netlist.fanouts circuit n)
    end
  in
  visit start;
  in_cone

let rails_of_stuck stuck =
  match (stuck : T.t) with
  | T.One -> (const_true, const_false)
  | T.Zero -> (const_false, const_true)
  | T.X -> invalid_arg "Cnf: stuck-at-X"

type query = { excite : int; detect : int }

let encode_fault v sink (fault : Bist_fault.Fault.t) =
  let c = v.circuit in
  let k = v.frames in
  let site_node =
    match fault.site with
    | Bist_fault.Fault.Output n -> n
    | Bist_fault.Fault.Pin { gate; _ } -> gate
  in
  let in_cone = cone c site_node in
  let stuck_rails = rails_of_stuck fault.stuck in
  (* Faulty rails, defaulting to the fault-free ones outside the cone. *)
  let fl1 = Array.map Array.copy v.lit1 in
  let fl0 = Array.map Array.copy v.lit0 in
  let set f n (o, z) =
    fl1.(f).(n) <- o;
    fl0.(f).(n) <- z
  in
  for f = 0 to k - 1 do
    Array.iter
      (fun pi ->
        if fault.site = Bist_fault.Fault.Output pi then
          set f pi stuck_rails)
      (Netlist.inputs c);
    Array.iter
      (fun d ->
        if fault.site = Bist_fault.Fault.Output d then set f d stuck_rails
        else if fault.site = Bist_fault.Fault.Pin { gate = d; pin = 0 } then begin
          (* The D-pin force applies at clocking time: the reset X of
             frame 0 is unaffected, every later frame holds the stuck
             value. *)
          if f > 0 then set f d stuck_rails
        end
        else if in_cone.(d) && f > 0 then begin
          let drv = (Netlist.fanins c d).(0) in
          set f d (fl1.(f - 1).(drv), fl0.(f - 1).(drv))
        end)
      (Netlist.dffs c);
    Array.iter
      (fun g ->
        if fault.site = Bist_fault.Fault.Output g then set f g stuck_rails
        else if in_cone.(g) then begin
          let fanins = Netlist.fanins c g in
          let fan =
            Array.mapi
              (fun pin a ->
                if fault.site = Bist_fault.Fault.Pin { gate = g; pin } then
                  stuck_rails
                else (fl1.(f).(a), fl0.(f).(a)))
              fanins
          in
          (* If no fanin rail differs from the fault-free copy the gate
             is (this frame) unaffected: alias instead of re-encoding. *)
          let same =
            Array.for_all2
              (fun (o, z) a -> o = v.lit1.(f).(a) && z = v.lit0.(f).(a))
              fan fanins
          in
          if not same then set f g (encode_gate sink (Netlist.kind c g) fan)
        end)
      (Netlist.topo_order c)
  done;
  (* Excitation selector: the fault site's fault-free driver takes the
     opposite of the stuck value at some frame. *)
  let driver =
    match fault.site with
    | Bist_fault.Fault.Output n -> n
    | Bist_fault.Fault.Pin { gate; pin } -> (Netlist.fanins c gate).(pin)
  in
  let excite_rail f =
    match fault.stuck with
    | T.Zero -> v.lit1.(f).(driver)
    | T.One -> v.lit0.(f).(driver)
    | T.X -> assert false
  in
  let excite = Solver.lit_of_var (sink.fresh ()) in
  let erails = List.init k excite_rail in
  if not (List.mem const_true erails) then
    sink.emit
      (Array.of_list
         (Solver.neg excite :: List.filter (fun l -> l <> const_false) erails));
  (* Detection selector: at some frame some primary output is binary in
     the fault-free machine and the opposite binary value in the faulty
     machine — [Packed_sim]'s diff mask, literally. *)
  let ts = ref [] in
  for f = 0 to k - 1 do
    Array.iter
      (fun po ->
        let g1 = v.lit1.(f).(po) and g0 = v.lit0.(f).(po) in
        let y1 = fl1.(f).(po) and y0 = fl0.(f).(po) in
        if not (y1 = g1 && y0 = g0) then begin
          let t1 = define_and sink [ g1; y0 ] in
          if t1 <> const_false then ts := t1 :: !ts;
          let t0 = define_and sink [ g0; y1 ] in
          if t0 <> const_false then ts := t0 :: !ts
        end)
      (Netlist.outputs c)
  done;
  let detect = Solver.lit_of_var (sink.fresh ()) in
  if not (List.mem const_true !ts) then
    sink.emit (Array.of_list (Solver.neg detect :: !ts));
  { excite; detect }

(* Convenience: a fresh solver loaded with the fault-free view plus one
   fault's clauses. A new solver per fault keeps verdicts deterministic
   and independent of query history (checkpoint/resume relies on
   this). *)
let load v fault =
  let s = Solver.create () in
  Solver.ensure_vars s (base_vars v);
  iter_good_clauses v (fun c -> Solver.add_clause s c);
  let sink =
    { fresh = (fun () -> Solver.new_var s); emit = (fun c -> Solver.add_clause s c) }
  in
  let q = encode_fault v sink fault in
  (s, q)
