(** SAT-backed fault queries: bounded-exact untestability proofs and
    model-derived tests for the hard-fault tail.

    All verdicts are relative to the view's frame bound [k]:
    [Unreachable]/[Blocked] are {e proofs} that no input sequence of
    length [<= k] excites/detects the fault (and hence unconditional
    proofs whenever the circuit needs fewer than [k] frames), while
    [Test] carries a sequence already validated — and trimmed to its
    first detection — against {!Bist_fault.Fsim}. *)

type verdict =
  | Unreachable  (** no sequence of length [<= frames] excites the fault *)
  | Blocked  (** excitable, but no sequence of length [<= frames] detects it *)
  | Test of Bist_logic.Tseq.t  (** a simulator-validated detecting sequence *)
  | Unknown  (** conflict budget exhausted before a verdict *)

val verdict_name : verdict -> string

val default_conflicts : int
(** Default per-solve conflict budget (two solves per fault). *)

exception
  Encoding_mismatch of {
    circuit : string;
    fault : string;
    frames : int;
  }
(** A SAT model whose decoded sequence the simulator rejects — an
    encoder/simulator divergence. Never expected; raised loudly
    instead of silently dropping coverage. *)

val solve_fault :
  ?obs:Bist_obs.Obs.t ->
  ?ctl:Bist_resilience.Ctl.t ->
  ?max_conflicts:int ->
  Cnf.view ->
  Bist_fault.Fault.t ->
  verdict
(** Deterministic (fresh solver per fault, independent of query
    history). [?ctl] is polled inside the solver's conflict loop and
    may raise {!Bist_resilience.Ctl.Preempted}; [?obs] records one
    ["sat.fault"] span per query. *)
