(* SAT-backed fault queries: bounded-exact untestability proofs and
   model-derived tests.

   For one fault the protocol is two incremental solves on one
   freshly-loaded solver (see [Cnf.load] for why fresh-per-fault):
   first under the excitation selector — UNSAT proves the site
   unreachable within the bound — then under the detection selector —
   UNSAT proves propagation blocked, a model decodes into an input
   sequence. Every decoded test is validated (and trimmed to its first
   detection) against the packed fault simulator before being
   returned; a model that fails simulation would mean the encoding and
   the simulator disagree, which [Error_kind] surfaces loudly instead
   of silently dropping coverage. *)

module Tseq = Bist_logic.Tseq
module Vector = Bist_logic.Vector
module T = Bist_logic.Ternary
module Netlist = Bist_circuit.Netlist
module Obs = Bist_obs.Obs

type verdict =
  | Unreachable  (** no sequence of length [<= frames] excites the fault *)
  | Blocked  (** excitable, but no sequence of length [<= frames] detects it *)
  | Test of Tseq.t  (** a simulator-validated detecting sequence *)
  | Unknown  (** conflict budget exhausted before a verdict *)

let verdict_name = function
  | Unreachable -> "unreachable"
  | Blocked -> "blocked"
  | Test _ -> "test"
  | Unknown -> "unknown"

let default_conflicts = 20_000

exception
  Encoding_mismatch of {
    circuit : string;
    fault : string;
    frames : int;
  }
(* A SAT model whose decoded sequence the simulator rejects: an
   encoder/simulator divergence, never expected. *)

let () =
  Printexc.register_printer (function
    | Encoding_mismatch { circuit; fault; frames } ->
      Some
        (Printf.sprintf
           "Satgen.Encoding_mismatch: SAT model for %s fault %s (%d frames) \
            failed fault-simulation validation"
           circuit fault frames)
    | _ -> None)

let decode_model view solver =
  let circuit = Cnf.circuit view in
  let k = Cnf.frames view in
  let w = Netlist.num_inputs circuit in
  Tseq.of_vectors
    (Array.init k (fun f ->
         Vector.init w (fun pi ->
             if Solver.model_lit solver (Cnf.pi_one_lit view ~frame:f ~pi) then
               T.One
             else T.Zero)))

(* Validate against the simulator and trim to the first detection. *)
let validate_and_trim view fault seq =
  let circuit = Cnf.circuit view in
  match
    Bist_fault.Fsim.single_detection_time
      (Bist_fault.Fsim.single circuit fault)
      seq
  with
  | Some u -> Tseq.sub seq ~lo:0 ~hi:u
  | None ->
    raise
      (Encoding_mismatch
         {
           circuit = Netlist.circuit_name circuit;
           fault = Bist_fault.Fault.name circuit fault;
           frames = Cnf.frames view;
         })

let solve_fault ?(obs = Obs.null) ?ctl ?(max_conflicts = default_conflicts)
    view fault =
  let result = ref Unknown in
  Obs.span obs ~cat:"sat" "sat.fault"
    ~args:(fun () ->
      [
        ("fault", Bist_fault.Fault.name (Cnf.circuit view) fault);
        ("frames", string_of_int (Cnf.frames view));
        ("verdict", verdict_name !result);
      ])
    (fun () ->
      let solver, q = Cnf.load view fault in
      (match
         Solver.solve ?ctl ~assumptions:[| q.Cnf.excite |] ~max_conflicts
           solver
       with
      | Solver.Unsat -> result := Unreachable
      | Solver.Unknown -> result := Unknown
      | Solver.Sat -> (
        match
          Solver.solve ?ctl ~assumptions:[| q.Cnf.detect |] ~max_conflicts
            solver
        with
        | Solver.Unsat -> result := Blocked
        | Solver.Unknown -> result := Unknown
        | Solver.Sat ->
          result :=
            Test (validate_and_trim view fault (decode_model view solver))));
      !result)
