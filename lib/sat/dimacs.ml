(* DIMACS CNF export of a per-fault encoding, so the time-frame
   expansion can be cross-checked against external solvers, plus the
   small parser used by the round-trip test.

   Solver literals map to DIMACS as [var + 1] with a sign (DIMACS
   variables are 1-based and signed); the constant-true variable 0
   becomes DIMACS variable 1, pinned by its unit clause. The header
   comments name circuit, fault, frame bound and the two selector
   literals, and the selectors are exported as unit clauses is NOT
   done — instead they are left free and named, so an external solver
   can assume either query. *)

module Netlist = Bist_circuit.Netlist

let lit_to_dimacs l =
  let v = Solver.var_of_lit l + 1 in
  if Solver.pos l then v else -v

let dimacs_to_lit d =
  let v = abs d - 1 in
  let l = Solver.lit_of_var v in
  if d > 0 then l else Solver.neg l

type export = {
  nvars : int;
  clauses : int array list; (* solver-encoded, emission order *)
  query : Cnf.query;
}

let export view fault =
  let clauses = ref [] in
  let nvars = ref (Cnf.base_vars view) in
  Cnf.iter_good_clauses view (fun c -> clauses := c :: !clauses);
  let sink =
    {
      Cnf.fresh =
        (fun () ->
          let v = !nvars in
          incr nvars;
          v);
      emit = (fun c -> clauses := c :: !clauses);
    }
  in
  let query = Cnf.encode_fault view sink fault in
  { nvars = !nvars; clauses = List.rev !clauses; query }

let to_buffer buf view fault =
  let e = export view fault in
  let circuit = Cnf.circuit view in
  Printf.bprintf buf "c circuit %s fault %s frames %d\n"
    (Netlist.circuit_name circuit)
    (Bist_fault.Fault.name circuit fault)
    (Cnf.frames view);
  Printf.bprintf buf "c assume %d to ask excitation, %d to ask detection\n"
    (lit_to_dimacs e.query.Cnf.excite)
    (lit_to_dimacs e.query.Cnf.detect);
  Printf.bprintf buf "p cnf %d %d\n" e.nvars (List.length e.clauses);
  List.iter
    (fun c ->
      Array.iter (fun l -> Printf.bprintf buf "%d " (lit_to_dimacs l)) c;
      Buffer.add_string buf "0\n")
    e.clauses;
  e.query

let to_string view fault =
  let buf = Buffer.create 4096 in
  ignore (to_buffer buf view fault);
  Buffer.contents buf

type parsed = { p_nvars : int; p_clauses : int array list }

exception Parse_error of string

let parse text =
  let nvars = ref (-1) in
  let nclauses = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; v; c ] -> (
          match (int_of_string_opt v, int_of_string_opt c) with
          | Some v, Some c ->
            nvars := v;
            nclauses := c
          | _ -> raise (Parse_error ("bad problem line: " ^ line)))
        | _ -> raise (Parse_error ("bad problem line: " ^ line))
      end
      else begin
        if !nvars < 0 then raise (Parse_error "clause before problem line");
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None -> raise (Parse_error ("bad literal: " ^ tok))
               | Some 0 ->
                 clauses := Array.of_list (List.rev !current) :: !clauses;
                 current := []
               | Some d ->
                 if abs d > !nvars then
                   raise (Parse_error ("literal out of range: " ^ tok));
                 current := dimacs_to_lit d :: !current)
      end)
    lines;
  if !current <> [] then raise (Parse_error "unterminated clause");
  let clauses = List.rev !clauses in
  if !nclauses >= 0 && List.length clauses <> !nclauses then
    raise
      (Parse_error
         (Printf.sprintf "clause count mismatch: header %d, found %d"
            !nclauses (List.length clauses)));
  { p_nvars = !nvars; p_clauses = clauses }
