(* A from-scratch CDCL SAT solver in the MiniSat lineage: two watched
   literals, first-UIP conflict analysis with clause learning and
   self-subsumption minimization, VSIDS-style decaying variable
   activities with phase saving, Luby restarts, learnt-clause database
   reduction, and incremental solving under assumptions so one
   instance can answer a sequence of related queries (excitation, then
   detection, of the same fault).

   Literals are ints: variable [v] yields the positive literal [2*v]
   and the negative literal [2*v+1]; [l lxor 1] negates. Clauses are
   plain int arrays held in a growable table; watch lists hold clause
   ids. When the learnt set outgrows a geometric limit, the
   lowest-activity half (excluding binaries and clauses locked as
   reasons) is dropped and ids are compacted — without this,
   propagation drowns in dead learnt clauses long before a 20k-conflict
   budget runs out on circuit-sized instances. *)

type result = Sat | Unsat | Unknown

let lit_of_var v = v lsl 1
let neg l = l lxor 1
let var_of_lit l = l lsr 1
let pos l = l land 1 = 0

(* lbool per literal, derived from per-var assignment:
   assign.(v) = 0 undefined, 1 true, 2 false. *)
let l_undef = 0
let l_true = 1
let l_false = 2

module Vec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 16 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let a = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 a 0 v.n;
      v.a <- a
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let get v i = v.a.(i)
  let set v i x = v.a.(i) <- x
  let size v = v.n
  let clear v = v.n <- 0
  let shrink v n = v.n <- n
end

type t = {
  (* Clause table: [lits.(c)] is clause [c]'s literal array, with a
     parallel learnt flag and activity (meaningful for learnt only). *)
  mutable lits : int array array;
  mutable is_learnt : Bytes.t;
  mutable cla_act : float array;
  mutable n_clauses : int;
  mutable n_learnt : int;
  mutable cla_inc : float;
  mutable reduce_limit : int;
  (* Per-variable state, arrays of capacity [cap]. *)
  mutable cap : int;
  mutable nvars : int;
  mutable assign : Bytes.t; (* lbool *)
  mutable level : int array;
  mutable reason : int array; (* clause id or -1 *)
  mutable activity : float array;
  mutable polarity : Bytes.t; (* saved phase: 1 = last assigned true *)
  mutable seen : Bytes.t;
  (* Watch lists, indexed by literal (capacity 2*cap): the clauses in
     which that literal is one of the two watched positions. *)
  mutable watches : Vec.t array;
  (* Assignment trail. *)
  mutable trail : int array; (* literals, in assignment order *)
  mutable trail_n : int;
  trail_lim : Vec.t; (* trail size at each decision level *)
  mutable qhead : int;
  (* Branching heap: max-activity variable order. *)
  mutable heap : int array;
  mutable heap_n : int;
  mutable heap_pos : int array; (* var -> index in heap, or -1 *)
  mutable var_inc : float;
  (* Status *)
  mutable ok : bool; (* false once a top-level conflict is derived *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
}

let create () =
  let cap = 16 in
  {
    lits = Array.make 64 [||];
    is_learnt = Bytes.make 64 '\000';
    cla_act = Array.make 64 0.0;
    n_clauses = 0;
    n_learnt = 0;
    cla_inc = 1.0;
    reduce_limit = 2048;
    cap;
    nvars = 0;
    assign = Bytes.make cap '\000';
    level = Array.make cap 0;
    reason = Array.make cap (-1);
    activity = Array.make cap 0.0;
    polarity = Bytes.make cap '\000';
    seen = Bytes.make cap '\000';
    watches = Array.init (2 * cap) (fun _ -> Vec.create ());
    trail = Array.make cap 0;
    trail_n = 0;
    trail_lim = Vec.create ();
    qhead = 0;
    heap = Array.make cap 0;
    heap_n = 0;
    heap_pos = Array.make cap (-1);
    var_inc = 1.0;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
  }

let num_vars t = t.nvars
let num_clauses t = t.n_clauses
let num_conflicts t = t.conflicts
let num_decisions t = t.decisions
let num_propagations t = t.propagations

let value_var t v = Char.code (Bytes.unsafe_get t.assign v)

let value_lit t l =
  let x = value_var t (var_of_lit l) in
  if x = l_undef then l_undef
  else if pos l then x
  else 3 - x (* swaps true/false *)

(* Heap of variables ordered by activity (max at the root). *)

let heap_less t a b = t.activity.(a) > t.activity.(b)

let heap_up t i0 =
  let x = t.heap.(i0) in
  let i = ref i0 in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    heap_less t x t.heap.(p)
  do
    let p = (!i - 1) / 2 in
    t.heap.(!i) <- t.heap.(p);
    t.heap_pos.(t.heap.(!i)) <- !i;
    i := p
  done;
  t.heap.(!i) <- x;
  t.heap_pos.(x) <- !i

let heap_down t i0 =
  let x = t.heap.(i0) in
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= t.heap_n then continue := false
    else begin
      let c =
        if l + 1 < t.heap_n && heap_less t t.heap.(l + 1) t.heap.(l) then l + 1
        else l
      in
      if heap_less t t.heap.(c) x then begin
        t.heap.(!i) <- t.heap.(c);
        t.heap_pos.(t.heap.(!i)) <- !i;
        i := c
      end
      else continue := false
    end
  done;
  t.heap.(!i) <- x;
  t.heap_pos.(x) <- !i

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    t.heap.(t.heap_n) <- v;
    t.heap_pos.(v) <- t.heap_n;
    t.heap_n <- t.heap_n + 1;
    heap_up t t.heap_pos.(v)
  end

let heap_pop t =
  let x = t.heap.(0) in
  t.heap_pos.(x) <- -1;
  t.heap_n <- t.heap_n - 1;
  if t.heap_n > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_n);
    t.heap_pos.(t.heap.(0)) <- 0;
    heap_down t 0
  end;
  x

let grow t =
  let cap = 2 * t.cap in
  let assign = Bytes.make cap '\000' in
  Bytes.blit t.assign 0 assign 0 t.cap;
  let polarity = Bytes.make cap '\000' in
  Bytes.blit t.polarity 0 polarity 0 t.cap;
  let seen = Bytes.make cap '\000' in
  Bytes.blit t.seen 0 seen 0 t.cap;
  let copy_int a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 t.cap;
    b
  in
  let copy_float a =
    let b = Array.make cap 0.0 in
    Array.blit a 0 b 0 t.cap;
    b
  in
  let watches = Array.init (2 * cap) (fun _ -> Vec.create ()) in
  Array.blit t.watches 0 watches 0 (2 * t.cap);
  t.assign <- assign;
  t.polarity <- polarity;
  t.seen <- seen;
  t.level <- copy_int t.level 0;
  t.reason <- copy_int t.reason (-1);
  t.activity <- copy_float t.activity;
  t.heap <- copy_int t.heap 0;
  t.heap_pos <- copy_int t.heap_pos (-1);
  t.trail <- copy_int t.trail 0;
  t.watches <- watches;
  t.cap <- cap

let new_var t =
  if t.nvars = t.cap then grow t;
  let v = t.nvars in
  t.nvars <- v + 1;
  heap_insert t v;
  v

let ensure_vars t n = while t.nvars < n do ignore (new_var t) done

let decision_level t = Vec.size t.trail_lim

let enqueue t l reason =
  let v = var_of_lit l in
  Bytes.unsafe_set t.assign v (Char.chr (if pos l then l_true else l_false));
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  Bytes.unsafe_set t.polarity v (if pos l then '\001' else '\000');
  t.trail.(t.trail_n) <- l;
  t.trail_n <- t.trail_n + 1

(* Propagate everything on the trail. Returns the id of a conflicting
   clause, or -1. *)
let propagate t =
  let confl = ref (-1) in
  while !confl < 0 && t.qhead < t.trail_n do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.propagations <- t.propagations + 1;
    (* [p] just became true: visit clauses watching [neg p], which are
       stored under index [p] ([watches.(neg w)] holds the clauses
       watching literal [w]). *)
    let false_lit = neg p in
    let ws = t.watches.(p) in
    let j = ref 0 in
    let i = ref 0 in
    let n = Vec.size ws in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      let cl = t.lits.(c) in
      (* Put the false literal at position 1. *)
      if Array.unsafe_get cl 0 = false_lit then begin
        cl.(0) <- cl.(1);
        cl.(1) <- false_lit
      end;
      let first = Array.unsafe_get cl 0 in
      if value_lit t first = l_true then begin
        (* Satisfied: keep the watch. *)
        Vec.set ws !j c;
        incr j
      end
      else begin
        (* Look for a new literal to watch. *)
        let len = Array.length cl in
        let k = ref 2 in
        while !k < len && value_lit t (Array.unsafe_get cl !k) = l_false do
          incr k
        done;
        if !k < len then begin
          (* Move the watch to cl.(k). *)
          cl.(1) <- cl.(!k);
          cl.(!k) <- false_lit;
          Vec.push t.watches.(neg cl.(1)) c
        end
        else begin
          (* Unit or conflicting. *)
          Vec.set ws !j c;
          incr j;
          if value_lit t first = l_false then begin
            confl := c;
            (* Copy the remaining watches back and stop. *)
            while !i < n do
              Vec.set ws !j (Vec.get ws !i);
              incr j;
              incr i
            done;
            t.qhead <- t.trail_n
          end
          else enqueue t first c
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !confl

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

let var_decay = 1.0 /. 0.95

let cla_bump t c =
  if Bytes.get t.is_learnt c = '\001' then begin
    t.cla_act.(c) <- t.cla_act.(c) +. t.cla_inc;
    if t.cla_act.(c) > 1e20 then begin
      for i = 0 to t.n_clauses - 1 do
        t.cla_act.(i) <- t.cla_act.(i) *. 1e-20
      done;
      t.cla_inc <- t.cla_inc *. 1e-20
    end
  end

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    for i = t.trail_n - 1 downto bound do
      let v = var_of_lit t.trail.(i) in
      Bytes.unsafe_set t.assign v '\000';
      t.reason.(v) <- -1;
      heap_insert t v
    done;
    t.trail_n <- bound;
    t.qhead <- bound;
    Vec.shrink t.trail_lim lvl
  end

(* First-UIP conflict analysis. Fills [out] with the learnt clause
   (asserting literal first) and returns the backtrack level. *)
let analyze t confl out =
  Vec.clear out;
  Vec.push out 0 (* placeholder for the asserting literal *);
  let to_clear = Vec.create () in
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (t.trail_n - 1) in
  let confl = ref confl in
  let current = decision_level t in
  let continue = ref true in
  while !continue do
    cla_bump t !confl;
    let cl = t.lits.(!confl) in
    let start = if !p < 0 then 0 else 1 in
    for k = start to Array.length cl - 1 do
      let q = cl.(k) in
      let v = var_of_lit q in
      if Bytes.get t.seen v = '\000' && t.level.(v) > 0 then begin
        Bytes.set t.seen v '\001';
        Vec.push to_clear v;
        var_bump t v;
        if t.level.(v) >= current then incr counter
        else Vec.push out q
      end
    done;
    (* Select the next literal to resolve on. *)
    while Bytes.get t.seen (var_of_lit t.trail.(!index)) = '\000' do
      decr index
    done;
    p := t.trail.(!index);
    decr index;
    decr counter;
    if !counter = 0 then continue := false
    else confl := t.reason.(var_of_lit !p)
  done;
  Vec.set out 0 (neg !p);
  (* Self-subsumption minimization: drop a literal whose reason clause
     is entirely made of seen literals (it is implied by the rest). *)
  let redundant q =
    let v = var_of_lit q in
    let r = t.reason.(v) in
    r >= 0
    && Array.for_all
         (fun l ->
           let u = var_of_lit l in
           u = v || Bytes.get t.seen u = '\001' || t.level.(u) = 0)
         t.lits.(r)
  in
  let j = ref 1 in
  for i = 1 to Vec.size out - 1 do
    let q = Vec.get out i in
    if not (redundant q) then begin
      Vec.set out !j q;
      incr j
    end
  done;
  Vec.shrink out !j;
  (* Backtrack level: highest level among the non-asserting literals;
     swap that literal into position 1 so it is watched. *)
  let bt = ref 0 in
  if Vec.size out > 1 then begin
    let max_i = ref 1 in
    for i = 1 to Vec.size out - 1 do
      if t.level.(var_of_lit (Vec.get out i))
         > t.level.(var_of_lit (Vec.get out !max_i))
      then max_i := i
    done;
    let tmp = Vec.get out 1 in
    Vec.set out 1 (Vec.get out !max_i);
    Vec.set out !max_i tmp;
    bt := t.level.(var_of_lit (Vec.get out 1))
  end;
  for i = 0 to Vec.size to_clear - 1 do
    Bytes.set t.seen (Vec.get to_clear i) '\000'
  done;
  !bt

let push_clause t ~learnt cl =
  if t.n_clauses = Array.length t.lits then begin
    let n = t.n_clauses in
    let a = Array.make (2 * n) [||] in
    Array.blit t.lits 0 a 0 n;
    t.lits <- a;
    let fl = Bytes.make (2 * n) '\000' in
    Bytes.blit t.is_learnt 0 fl 0 n;
    t.is_learnt <- fl;
    let act = Array.make (2 * n) 0.0 in
    Array.blit t.cla_act 0 act 0 n;
    t.cla_act <- act
  end;
  let c = t.n_clauses in
  t.lits.(c) <- cl;
  Bytes.set t.is_learnt c (if learnt then '\001' else '\000');
  t.cla_act.(c) <- 0.0;
  if learnt then t.n_learnt <- t.n_learnt + 1;
  t.n_clauses <- c + 1;
  Vec.push t.watches.(neg cl.(0)) c;
  Vec.push t.watches.(neg cl.(1)) c;
  c

(* Drop the lowest-activity half of the deletable learnt clauses
   (keeping binaries and clauses locked as the reason of a current
   assignment), compact the clause table and rebuild watches. *)
let reduce_db t =
  let locked c =
    let first = t.lits.(c).(0) in
    value_lit t first = l_true && t.reason.(var_of_lit first) = c
  in
  let cands = ref [] in
  for c = 0 to t.n_clauses - 1 do
    if
      Bytes.get t.is_learnt c = '\001'
      && Array.length t.lits.(c) > 2
      && not (locked c)
    then cands := c :: !cands
  done;
  let cands = Array.of_list !cands in
  Array.sort (fun a b -> compare t.cla_act.(a) t.cla_act.(b)) cands;
  let delete = Array.make t.n_clauses false in
  for i = 0 to (Array.length cands / 2) - 1 do
    delete.(cands.(i)) <- true
  done;
  let map = Array.make t.n_clauses (-1) in
  let j = ref 0 in
  for c = 0 to t.n_clauses - 1 do
    if not delete.(c) then begin
      map.(c) <- !j;
      t.lits.(!j) <- t.lits.(c);
      t.cla_act.(!j) <- t.cla_act.(c);
      Bytes.set t.is_learnt !j (Bytes.get t.is_learnt c);
      incr j
    end
    else t.n_learnt <- t.n_learnt - 1
  done;
  for c = !j to t.n_clauses - 1 do
    t.lits.(c) <- [||]
  done;
  t.n_clauses <- !j;
  for i = 0 to t.trail_n - 1 do
    let v = var_of_lit t.trail.(i) in
    if t.reason.(v) >= 0 then t.reason.(v) <- map.(t.reason.(v))
  done;
  for l = 0 to (2 * t.cap) - 1 do
    Vec.clear t.watches.(l)
  done;
  for c = 0 to t.n_clauses - 1 do
    let cl = t.lits.(c) in
    Vec.push t.watches.(neg cl.(0)) c;
    Vec.push t.watches.(neg cl.(1)) c
  done

(* Add a problem clause. Must be called with the solver at decision
   level 0 (construction time, or between solves). Performs the level-0
   simplifications: drop satisfied clauses, drop false literals, detect
   tautologies and duplicates. *)
let add_clause t lits =
  if t.ok then begin
    (* Invalidate any model left from a previous [Sat] answer. *)
    cancel_until t 0;
    let n = Array.length lits in
    let buf = Array.make n 0 in
    let m = ref 0 in
    let tauto = ref false in
    let sat = ref false in
    for i = 0 to n - 1 do
      let l = lits.(i) in
      ensure_vars t (var_of_lit l + 1);
      match value_lit t l with
      | x when x = l_true -> sat := true
      | x when x = l_false -> ()
      | _ ->
        let dup = ref false in
        for j = 0 to !m - 1 do
          if buf.(j) = l then dup := true
          else if buf.(j) = neg l then tauto := true
        done;
        if not !dup then begin
          buf.(!m) <- l;
          incr m
        end
    done;
    if not (!sat || !tauto) then
      if !m = 0 then t.ok <- false
      else if !m = 1 then begin
        enqueue t buf.(0) (-1);
        if propagate t >= 0 then t.ok <- false
      end
      else ignore (push_clause t ~learnt:false (Array.sub buf 0 !m))
  end

let add_clause_l t lits = add_clause t (Array.of_list lits)

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i + 1 do
    incr k
  done;
  let i = ref i and k = ref (!k - 1) in
  while (1 lsl !k) - 1 <> !i + 1 && !k > 0 do
    i := !i - ((1 lsl !k) - 1);
    (* Recompute the subtree size for the remainder. *)
    k := 0;
    while (1 lsl (!k + 1)) - 1 < !i + 1 do
      incr k
    done
  done;
  1 lsl !k

let restart_base = 64

exception Done of result

let solve ?ctl ?(assumptions = [||]) ?(max_conflicts = max_int) t =
  if not t.ok then Unsat
  else begin
    cancel_until t 0;
    t.qhead <- min t.qhead t.trail_n;
    let learnt = Vec.create () in
    let n_assumed = Array.length assumptions in
    Array.iter (fun l -> ensure_vars t (var_of_lit l + 1)) assumptions;
    let start_conflicts = t.conflicts in
    let restarts = ref 0 in
    let next_restart = ref (restart_base * luby 0) in
    try
      if propagate t >= 0 then begin
        t.ok <- false;
        raise (Done Unsat)
      end;
      while true do
        let confl = propagate t in
        if confl >= 0 then begin
          t.conflicts <- t.conflicts + 1;
          if t.conflicts land 255 = 0 then Bist_resilience.Ctl.poll ctl;
          (* A conflict while only assumptions (or nothing) have been
             decided refutes the assumptions themselves. *)
          if decision_level t <= n_assumed then begin
            if decision_level t = 0 then t.ok <- false;
            raise (Done Unsat)
          end;
          if t.conflicts - start_conflicts >= max_conflicts then
            raise (Done Unknown);
          let bt = analyze t confl learnt in
          (* Never backtrack below the assumption levels: replaying the
             learnt clause there is handled by the decision loop. *)
          cancel_until t (max bt (min n_assumed (decision_level t - 1)));
          if Vec.size learnt = 1 && decision_level t = 0 then begin
            enqueue t (Vec.get learnt 0) (-1)
          end
          else begin
            let cl = Array.sub learnt.Vec.a 0 (Vec.size learnt) in
            if Array.length cl = 1 then
              (* Asserting unit above level 0 (assumptions active). *)
              enqueue t cl.(0) (-1)
            else begin
              let c = push_clause t ~learnt:true cl in
              cla_bump t c;
              enqueue t cl.(0) c
            end
          end;
          t.var_inc <- t.var_inc *. var_decay;
          t.cla_inc <- t.cla_inc *. 1.001
        end
        else if decision_level t < n_assumed then begin
          (* Re-establish the next assumption as a pseudo-decision. *)
          let p = assumptions.(decision_level t) in
          match value_lit t p with
          | x when x = l_false -> raise (Done Unsat)
          | x ->
            Vec.push t.trail_lim t.trail_n;
            if x = l_undef then enqueue t p (-1)
        end
        else if t.conflicts - start_conflicts >= !next_restart then begin
          incr restarts;
          next_restart :=
            (t.conflicts - start_conflicts) + (restart_base * luby !restarts);
          cancel_until t n_assumed
        end
        else begin
          if t.n_learnt >= t.reduce_limit then begin
            reduce_db t;
            t.reduce_limit <- t.reduce_limit + (t.reduce_limit / 2)
          end;
          (* Decide: highest-activity unassigned variable, saved phase. *)
          let v = ref (-1) in
          while !v < 0 && t.heap_n > 0 do
            let x = heap_pop t in
            if value_var t x = l_undef then v := x
          done;
          if !v < 0 then raise (Done Sat)
          else begin
            t.decisions <- t.decisions + 1;
            Vec.push t.trail_lim t.trail_n;
            let l =
              if Bytes.get t.polarity !v = '\001' then lit_of_var !v
              else neg (lit_of_var !v)
            in
            enqueue t l (-1)
          end
        end
      done;
      assert false
    with Done r ->
      (match r with
      | Sat -> () (* keep the trail so the model can be read *)
      | Unsat | Unknown -> cancel_until t 0);
      r
  end

(* Model access: valid after [solve] returned [Sat] and before the next
   [add_clause]/[solve]. Unassigned variables (possible when clauses
   were satisfied before their variables were decided — not with this
   solver, which assigns every variable, but keep the API honest)
   read as [false]. *)
let model_value t v = if v < t.nvars then value_var t v = l_true else false

let model_lit t l =
  let x = value_lit t l in
  x = l_true

(* Iterate the problem (non-learnt) clauses, for export and debug.
   Level-0 units are not stored as clauses and are not visited. *)
let iter_problem_clauses t f =
  for c = 0 to t.n_clauses - 1 do
    if Bytes.get t.is_learnt c = '\000' then f t.lits.(c)
  done
