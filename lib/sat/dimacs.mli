(** DIMACS CNF export of per-fault time-frame encodings, for
    cross-checking against external solvers, and the small parser used
    by the round-trip test.

    Solver literals map to DIMACS as [var + 1] with a sign; the
    constant-true variable 0 becomes DIMACS variable 1, pinned by its
    unit clause. The excitation/detection selectors are left free and
    named in a comment header so an external solver can assume either
    query. *)

type export = {
  nvars : int;
  clauses : int array list;  (** solver-encoded, emission order *)
  query : Cnf.query;
}

val export : Cnf.view -> Bist_fault.Fault.t -> export
(** The full clause set (fault-free view + fault cone + selectors) in
    solver literal encoding. *)

val to_buffer : Buffer.t -> Cnf.view -> Bist_fault.Fault.t -> Cnf.query
(** Append the DIMACS document (comment header naming circuit, fault
    and frames; problem line; clauses) and return the selector
    query. *)

val to_string : Cnf.view -> Bist_fault.Fault.t -> string

val lit_to_dimacs : int -> int
val dimacs_to_lit : int -> int

type parsed = { p_nvars : int; p_clauses : int array list }

exception Parse_error of string

val parse : string -> parsed
(** Parse a DIMACS document back into solver literal encoding.
    Raises {!Parse_error} on malformed input (bad problem line,
    unterminated clause, literal out of range, count mismatch). *)
