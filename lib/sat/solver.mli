(** From-scratch CDCL SAT solver (MiniSat lineage).

    Two watched literals, first-UIP conflict analysis with clause
    learning and self-subsumption minimization, VSIDS-style decaying
    activities with phase saving, Luby restarts, and incremental
    solving under assumptions. Built for the per-fault time-frame
    queries of {!Bist_sat.Cnf}/{!Bist_sat.Satgen}: instances are small
    (tens of thousands of variables), solves are budget-bounded, and a
    fresh solver is loaded per fault so verdicts are deterministic and
    independent of query history.

    {2 Literals}

    Variables are dense ints from [0]. Variable [v] yields the
    positive literal [lit_of_var v = 2*v] and its negation
    [neg (lit_of_var v) = 2*v+1]; [neg] is an involution. *)

type result = Sat | Unsat | Unknown

type t

val create : unit -> t

val lit_of_var : int -> int
val neg : int -> int
val var_of_lit : int -> int
val pos : int -> bool
(** [pos l] is [true] iff [l] is the positive literal of its variable. *)

val new_var : t -> int
(** Allocate the next variable and return it. *)

val ensure_vars : t -> int -> unit
(** [ensure_vars t n] allocates variables until [num_vars t >= n]. *)

val add_clause : t -> int array -> unit
(** Add a problem clause (call at decision level 0, i.e. at
    construction time or between solves). Satisfied clauses and false
    literals are simplified away; deriving the empty clause makes the
    solver permanently [Unsat]. The array is not retained. *)

val add_clause_l : t -> int list -> unit

val solve :
  ?ctl:Bist_resilience.Ctl.t ->
  ?assumptions:int array ->
  ?max_conflicts:int ->
  t ->
  result
(** Solve the clause set under the given assumption literals.

    [Unsat] under assumptions means the clause set has no model
    extending the assumptions (the solver itself may still be
    satisfiable). [Unknown] is returned when [max_conflicts] is
    exhausted. [?ctl] is polled every 256 conflicts and may raise
    {!Bist_resilience.Ctl.Preempted}. Solving is deterministic: the
    same clause-addition and solve sequence yields the same result and
    model. *)

val model_value : t -> int -> bool
(** Value of a variable in the model. Only meaningful after {!solve}
    returned [Sat], before the next [add_clause]/[solve]. *)

val model_lit : t -> int -> bool
(** Value of a literal in the model. *)

val num_vars : t -> int
val num_clauses : t -> int
val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int

val iter_problem_clauses : t -> (int array -> unit) -> unit
(** Iterate the stored problem (non-learnt) clauses. Clauses
    simplified to level-0 units are not stored and are not visited. *)
