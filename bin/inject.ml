(* inject: fault-injection campaigns against the BIST hardware session.
   Each campaign injects seeded faults into the memory / controller /
   MISR model and audits the session's self-checking against a clean
   golden run: every fault must be corrected, or detected and reported —
   never silently escape. *)

open Cmdliner
module Campaign = Bist_inject.Campaign
module Session = Bist_hw.Session
module Ctl = Bist_resilience.Ctl
module Checkpoint = Bist_resilience.Checkpoint
module Ckio = Bist_resilience.Checkpoint.Io

exception
  Preempted_run of { reason : Ctl.reason; checkpoint : string option }

let defense_of_name = function
  | "hardened" -> Ok Session.hardened
  | "default" -> Ok Session.default_defense
  | "undefended" -> Ok Session.undefended
  | "no-parity" -> Ok { Session.hardened with ecc = Bist_hw.Ecc.No_ecc }
  | "hamming" -> Ok { Session.hardened with ecc = Bist_hw.Ecc.Hamming_sec }
  | s ->
    Error
      (Printf.sprintf
         "unknown defense %S (expected hardened, default, undefended, no-parity, hamming)"
         s)

(* Campaigns iterate over registry entries; circuits resolved from
   files or other loader names are wrapped as unscaled ad-hoc entries so
   one campaign loop serves both. *)
let entry_of_spec spec =
  match Bist_bench.Registry.find spec with
  | Some entry -> entry
  | None -> (
    match Bist_bench.Loader.resolve spec with
    | circuit ->
      let name = Bist_circuit.Netlist.circuit_name circuit in
      { Bist_bench.Registry.name; paper_name = name;
        circuit = (fun () -> circuit); scaled = false }
    | exception Bist_bench.Loader.Usage_error message ->
      Printf.eprintf "error: %s\n" message;
      exit 2)

let resolve_circuits specs =
  match specs with
  | [] -> [ Bist_bench.Registry.s27 ]
  | [ "all" ] -> Bist_bench.Registry.all ()
  | specs -> List.map entry_of_spec specs

let pool_of_jobs jobs =
  let jobs = Bist_parallel.Pool.validate_jobs ~source:"--jobs" jobs in
  let jobs = if jobs = 0 then Bist_parallel.Pool.default_jobs () else jobs in
  if jobs <= 1 then None else Some (Bist_parallel.Pool.create ~jobs ())

let make_ctl ~deadline ~checkpoint =
  match (deadline, checkpoint) with
  | None, None -> None
  | _ ->
    (match deadline with
    | Some s when s <= 0.0 ->
      Printf.eprintf "error: --deadline must be positive (got %g)\n" s;
      exit 2
    | _ -> ());
    let cancel = Bist_resilience.Cancel.create () in
    let deadline = Option.map Bist_resilience.Deadline.after deadline in
    if checkpoint <> None then begin
      (* First signal: cooperative preemption (checkpoint at the next
         wave boundary, exit 3). Second: the user means now — force-quit
         with the conventional 130, skipping at_exit. *)
      let signals = ref 0 in
      let handler =
        Sys.Signal_handle
          (fun _ ->
            incr signals;
            if !signals > 1 then Unix._exit 130
            else Bist_resilience.Cancel.request cancel)
      in
      Sys.set_signal Sys.sigint handler;
      Sys.set_signal Sys.sigterm handler
    end;
    Some (Ctl.create ?deadline ~cancel ())

(* The inject checkpoint covers the whole multi-circuit invocation: a
   parameter echo (seed, count, defense name, n, the circuit list — a
   resume must re-request the same campaign set), the finished campaigns
   as (name, sync_found, trials) triples, and the in-flight circuit's
   completed trials. The header's circuit field is the joined name list
   and the fingerprint hashes every circuit's canonical bench text. *)

let encode_inject_payload ~config ~defense_name ~names ~completed ~current =
  let w = Ckio.writer () in
  Ckio.u32 w config.Campaign.seed;
  Ckio.u32 w config.Campaign.count;
  Ckio.string w defense_name;
  Ckio.u32 w config.Campaign.n;
  Ckio.list w Ckio.string names;
  Ckio.list w
    (fun w (c : Campaign.t) ->
      Ckio.string w c.circuit_name;
      Ckio.bool w c.sync_found;
      Campaign.encode_trials w c.trials)
    completed;
  Campaign.encode_trials w current;
  Ckio.contents w

let decode_inject_payload ~config ~defense_name ~names payload =
  let r = Ckio.reader payload in
  let echo_int what expected =
    let got = Ckio.r_u32 r in
    if got <> expected then
      raise
        (Checkpoint.Mismatch
           (Printf.sprintf
              "checkpoint was written with %s %d, this run uses %d — \
               re-invoke with the original parameters"
              what got expected))
  in
  echo_int "--seed" config.Campaign.seed;
  echo_int "--count" config.Campaign.count;
  let got_defense = Ckio.r_string r in
  if got_defense <> defense_name then
    raise
      (Checkpoint.Mismatch
         (Printf.sprintf "checkpoint was written with --defense %s, this run \
                          uses %s" got_defense defense_name));
  echo_int "--n" config.Campaign.n;
  let got_names = Ckio.r_list r Ckio.r_string in
  if got_names <> names then
    raise
      (Checkpoint.Mismatch
         (Printf.sprintf "checkpoint covers circuits [%s], this run requests \
                          [%s]"
            (String.concat ", " got_names)
            (String.concat ", " names)));
  let completed =
    Ckio.r_list r (fun r ->
        let name = Ckio.r_string r in
        let sync_found = Ckio.r_bool r in
        let trials = Campaign.decode_trials r in
        Campaign.rebuild ~name ~config ~sync_found trials)
  in
  let current = Campaign.decode_trials r in
  Ckio.expect_end r;
  if List.length completed > List.length names then
    raise
      (Checkpoint.Corrupt "checkpoint lists more finished campaigns than \
                           circuits");
  (completed, current)

let run_campaigns ~config ~defense_name ~obs ?pool ~ctl ~checkpoint ~resume
    entries =
  let circuits =
    List.map
      (fun (e : Bist_bench.Registry.entry) -> (e.name, e.circuit ()))
      entries
  in
  let names = List.map fst circuits in
  let joined = String.concat "," names in
  let fingerprint =
    Bist_resilience.Crc32.string
      (String.concat "\n"
         (List.map
            (fun (_, c) -> Bist_circuit.Bench_writer.to_string c)
            circuits))
  in
  let completed0, current0 =
    match resume with
    | None -> ([], [])
    | Some path ->
      Bist_obs.Obs.span obs ~cat:"checkpoint" "checkpoint.load"
        ~args:(fun () -> [ ("path", path) ])
        (fun () ->
          let header = Checkpoint.load path in
          Checkpoint.ensure ~kind:"inject" ~circuit:joined ~fingerprint header;
          decode_inject_payload ~config ~defense_name ~names
            header.Checkpoint.payload)
  in
  let preempt ~completed ~current =
    (match checkpoint with
    | None -> ()
    | Some path ->
      Bist_obs.Obs.span obs ~cat:"checkpoint" "checkpoint.save"
        ~args:(fun () -> [ ("path", path) ])
        (fun () ->
          Checkpoint.save ~path
            { Checkpoint.kind = "inject"; circuit = joined; fingerprint;
              payload =
                encode_inject_payload ~config ~defense_name ~names ~completed
                  ~current }));
    raise
      (Preempted_run
         { reason =
             (match ctl with
             | Some c -> Option.value (Ctl.stop_reason c) ~default:Ctl.Cancelled
             | None -> Ctl.Cancelled);
           checkpoint })
  in
  let done_campaigns = ref completed0 in
  let skip = List.length completed0 in
  let pending = List.filteri (fun i _ -> i >= skip) circuits in
  List.iteri
    (fun i (name, circuit) ->
      let resume_trials = if i = 0 then current0 else [] in
      match
        Campaign.run ~config ~obs ?pool ?ctl ~resume:resume_trials ~name
          circuit
      with
      | c -> done_campaigns := !done_campaigns @ [ c ]
      | exception Campaign.Interrupted trials ->
        preempt ~completed:!done_campaigns ~current:trials)
    pending;
  (match checkpoint with
  | Some path when Sys.file_exists path -> Sys.remove path
  | _ -> ());
  !done_campaigns

let with_obs ~trace ~stats f =
  if trace = None && not stats then f Bist_obs.Obs.null
  else begin
    let obs = Bist_obs.Obs.create ~trace:(trace <> None) () in
    let result = f obs in
    (match trace with
    | Some path ->
      Bist_obs.Obs.write_trace obs path;
      Printf.eprintf "wrote %s (%d trace events)\n" path
        (Bist_obs.Obs.trace_events obs)
    | None -> ());
    if stats then prerr_string (Bist_obs.Obs.summary obs);
    result
  end

let print_campaigns ~verbose campaigns =
  print_string (Bist_harness.Inject_report.summary campaigns);
  List.iter
    (fun (c : Campaign.t) ->
      if verbose then begin
        Printf.printf "\n%s by fault kind:\n" c.circuit_name;
        print_string (Bist_harness.Inject_report.breakdown c)
      end;
      List.iter
        (fun e -> Printf.printf "  escape [%s]: %s\n" c.circuit_name e)
        (Bist_harness.Inject_report.escapes c))
    campaigns

(* The smoke campaign is the acceptance gate wired into `make smoke`:
   the hardened s27 campaign must end with zero escapes and zero benign
   samples, and the same campaign without the parity code must produce
   escapes — proving the defense is load-bearing, not decorative. *)
let smoke seed count =
  let entry = Bist_bench.Registry.s27 in
  let circuit = entry.circuit () in
  let config = { Campaign.default_config with seed; count } in
  let hardened = Campaign.run ~config ~name:entry.name circuit in
  let no_parity =
    Campaign.run
      ~config:
        { config with defense = { Session.hardened with ecc = Bist_hw.Ecc.No_ecc } }
      ~name:(entry.name ^ " (no parity)") circuit
  in
  print_string (Bist_harness.Inject_report.summary [ hardened; no_parity ]);
  print_newline ();
  print_string (Bist_harness.Inject_report.breakdown hardened);
  let ok =
    hardened.escaped = 0 && hardened.benign = 0
    && hardened.corrected + hardened.detected = count
    && no_parity.escaped > 0
  in
  if ok then begin
    Printf.printf
      "\nsmoke: PASS — %d/%d faults corrected or detected, 0 escapes; \
       disabling parity escapes %d\n"
      (hardened.corrected + hardened.detected)
      count no_parity.escaped;
    0
  end
  else begin
    Printf.printf
      "\nsmoke: FAIL — corrected %d, detected %d, benign %d, escaped %d of %d \
       (no-parity escapes %d, expected > 0)\n"
      hardened.corrected hardened.detected hardened.benign hardened.escaped count
      no_parity.escaped;
    1
  end

let main circuits seed count defense n smoke_flag verbose jobs trace stats
    deadline checkpoint resume =
  if count < 1 then begin
    Printf.eprintf "error: --count must be >= 1 (got %d)\n" count;
    exit 2
  end;
  if n < 1 then begin
    Printf.eprintf "error: --n must be >= 1 (got %d)\n" n;
    exit 2
  end;
  match defense_of_name defense with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    2
  | Ok defense_cfg ->
    if smoke_flag then smoke seed count
    else begin
      let config =
        { Campaign.default_config with seed; count; defense = defense_cfg; n }
      in
      let pool = pool_of_jobs jobs in
      let ctl = make_ctl ~deadline ~checkpoint in
      let campaigns =
        with_obs ~trace ~stats (fun obs ->
            run_campaigns ~config ~defense_name:defense ~obs ?pool ~ctl
              ~checkpoint ~resume (resolve_circuits circuits))
      in
      print_campaigns ~verbose campaigns;
      let escaped = List.exists (fun (c : Campaign.t) -> c.escaped > 0) campaigns in
      if escaped then 1 else 0
    end

let circuits_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"CIRCUIT"
        ~doc:
          "Circuits to campaign over: registry names, teaching/workload \
           circuits or .bench/.blif files (default s27; \"all\" for the full \
           registry suite).")

let seed_arg =
  Arg.(value & opt int Campaign.default_config.seed
       & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed (campaigns are deterministic).")

let count_arg =
  Arg.(value & opt int Campaign.default_config.count
       & info [ "count" ] ~docv:"K" ~doc:"Number of faults injected per campaign.")

let defense_arg =
  Arg.(value & opt string "hardened"
       & info [ "defense" ] ~docv:"NAME"
           ~doc:"Defense configuration: hardened, default, undefended, no-parity, hamming.")

let n_arg =
  Arg.(value & opt int Campaign.default_config.n
       & info [ "n" ] ~docv:"N" ~doc:"Expansion repetition count.")

let smoke_arg =
  Arg.(value & flag
       & info [ "smoke" ]
           ~doc:"Run the seeded s27 acceptance campaign (hardened vs no-parity) and exit non-zero on any escape.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the per-fault-kind breakdown.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the campaign trials (0 = auto: min(cores, 8); 1 \
           = sequential). Campaign results are identical for every value.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file of the campaigns (load it in \
           chrome://tracing or Perfetto).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print the per-phase timing summary to stderr.")

let deadline_arg =
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget in seconds. When it runs out the campaigns \
           stop at the next trial-wave boundary, write a checkpoint if \
           $(b,--checkpoint) is set, and exit with code 3.")

let checkpoint_arg =
  Arg.(
    value & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Where to write the resumable snapshot if the run is preempted \
           (deadline, SIGINT or SIGTERM). Written atomically; deleted on \
           successful completion. Not used by --smoke.")

let resume_arg =
  Arg.(
    value & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume from a checkpoint written by an earlier preempted run \
           with the same parameters and circuit list. The campaign \
           results are identical to an uninterrupted run's.")

let () =
  let info =
    Cmd.info "inject" ~version:"1.0.0"
      ~doc:"Fault-injection campaigns and self-checking audit for the BIST hardware session"
  in
  let cmd =
    Cmd.v info
      Term.(
        const main $ circuits_arg $ seed_arg $ count_arg $ defense_arg $ n_arg
        $ smoke_arg $ verbose_arg $ jobs_arg $ trace_arg $ stats_arg
        $ deadline_arg $ checkpoint_arg $ resume_arg)
  in
  match Cmd.eval' ~catch:false ~term_err:2 cmd with
  | code -> exit code
  | exception Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 2
  | exception
      (( Bist_harness.Seq_io.Parse_error _
       | Bist_circuit.Bench_parser.Parse_error _
       | Bist_circuit.Blif_parser.Parse_error _
       | Checkpoint.Corrupt _ | Checkpoint.Mismatch _ ) as e) ->
    Printf.eprintf "error: %s\n" (Printexc.to_string e);
    exit 2
  | exception Preempted_run { reason; checkpoint } ->
    (match checkpoint with
    | Some path ->
      Printf.eprintf
        "preempted (%s): checkpoint written to %s — resume with --resume %s\n"
        (Ctl.reason_name reason) path path
    | None ->
      Printf.eprintf
        "preempted (%s): no --checkpoint path was given, progress discarded\n"
        (Ctl.reason_name reason));
    exit 3
  | exception Ctl.Preempted reason ->
    Printf.eprintf "preempted (%s)\n" (Ctl.reason_name reason);
    exit 3
