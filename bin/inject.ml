(* inject: fault-injection campaigns against the BIST hardware session.
   Each campaign injects seeded faults into the memory / controller /
   MISR model and audits the session's self-checking against a clean
   golden run: every fault must be corrected, or detected and reported —
   never silently escape. *)

open Cmdliner
module Campaign = Bist_inject.Campaign
module Session = Bist_hw.Session

let defense_of_name = function
  | "hardened" -> Ok Session.hardened
  | "default" -> Ok Session.default_defense
  | "undefended" -> Ok Session.undefended
  | "no-parity" -> Ok { Session.hardened with ecc = Bist_hw.Ecc.No_ecc }
  | "hamming" -> Ok { Session.hardened with ecc = Bist_hw.Ecc.Hamming_sec }
  | s ->
    Error
      (Printf.sprintf
         "unknown defense %S (expected hardened, default, undefended, no-parity, hamming)"
         s)

let resolve_circuits specs =
  match specs with
  | [] -> [ Bist_bench.Registry.s27 ]
  | [ "all" ] -> Bist_bench.Registry.all ()
  | specs ->
    List.map
      (fun spec ->
        match Bist_bench.Registry.find spec with
        | Some entry -> entry
        | None ->
          Printf.eprintf "error: unknown circuit %S (try s27, x298, ..., or all)\n" spec;
          exit 2)
      specs

let pool_of_jobs jobs =
  let jobs = Bist_parallel.Pool.validate_jobs ~source:"--jobs" jobs in
  let jobs = if jobs = 0 then Bist_parallel.Pool.default_jobs () else jobs in
  if jobs <= 1 then None else Some (Bist_parallel.Pool.create ~jobs ())

let run_campaign ~config ~obs ?pool (entry : Bist_bench.Registry.entry) =
  Campaign.run ~config ~obs ?pool ~name:entry.name (entry.circuit ())

let with_obs ~trace ~stats f =
  if trace = None && not stats then f Bist_obs.Obs.null
  else begin
    let obs = Bist_obs.Obs.create ~trace:(trace <> None) () in
    let result = f obs in
    (match trace with
    | Some path ->
      Bist_obs.Obs.write_trace obs path;
      Printf.eprintf "wrote %s (%d trace events)\n" path
        (Bist_obs.Obs.trace_events obs)
    | None -> ());
    if stats then prerr_string (Bist_obs.Obs.summary obs);
    result
  end

let print_campaigns ~verbose campaigns =
  print_string (Bist_harness.Inject_report.summary campaigns);
  List.iter
    (fun (c : Campaign.t) ->
      if verbose then begin
        Printf.printf "\n%s by fault kind:\n" c.circuit_name;
        print_string (Bist_harness.Inject_report.breakdown c)
      end;
      List.iter
        (fun e -> Printf.printf "  escape [%s]: %s\n" c.circuit_name e)
        (Bist_harness.Inject_report.escapes c))
    campaigns

(* The smoke campaign is the acceptance gate wired into `make smoke`:
   the hardened s27 campaign must end with zero escapes and zero benign
   samples, and the same campaign without the parity code must produce
   escapes — proving the defense is load-bearing, not decorative. *)
let smoke seed count =
  let entry = Bist_bench.Registry.s27 in
  let circuit = entry.circuit () in
  let config = { Campaign.default_config with seed; count } in
  let hardened = Campaign.run ~config ~name:entry.name circuit in
  let no_parity =
    Campaign.run
      ~config:
        { config with defense = { Session.hardened with ecc = Bist_hw.Ecc.No_ecc } }
      ~name:(entry.name ^ " (no parity)") circuit
  in
  print_string (Bist_harness.Inject_report.summary [ hardened; no_parity ]);
  print_newline ();
  print_string (Bist_harness.Inject_report.breakdown hardened);
  let ok =
    hardened.escaped = 0 && hardened.benign = 0
    && hardened.corrected + hardened.detected = count
    && no_parity.escaped > 0
  in
  if ok then begin
    Printf.printf
      "\nsmoke: PASS — %d/%d faults corrected or detected, 0 escapes; \
       disabling parity escapes %d\n"
      (hardened.corrected + hardened.detected)
      count no_parity.escaped;
    0
  end
  else begin
    Printf.printf
      "\nsmoke: FAIL — corrected %d, detected %d, benign %d, escaped %d of %d \
       (no-parity escapes %d, expected > 0)\n"
      hardened.corrected hardened.detected hardened.benign hardened.escaped count
      no_parity.escaped;
    1
  end

let main circuits seed count defense n smoke_flag verbose jobs trace stats =
  if count < 1 then begin
    Printf.eprintf "error: --count must be >= 1 (got %d)\n" count;
    exit 2
  end;
  if n < 1 then begin
    Printf.eprintf "error: --n must be >= 1 (got %d)\n" n;
    exit 2
  end;
  match defense_of_name defense with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    2
  | Ok defense ->
    if smoke_flag then smoke seed count
    else begin
      let config = { Campaign.default_config with seed; count; defense; n } in
      let pool = pool_of_jobs jobs in
      let campaigns =
        with_obs ~trace ~stats (fun obs ->
            List.map (run_campaign ~config ~obs ?pool) (resolve_circuits circuits))
      in
      print_campaigns ~verbose campaigns;
      let escaped = List.exists (fun (c : Campaign.t) -> c.escaped > 0) campaigns in
      if escaped then 1 else 0
    end

let circuits_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"CIRCUIT"
        ~doc:"Registry circuits to campaign over (default s27; \"all\" for the full suite).")

let seed_arg =
  Arg.(value & opt int Campaign.default_config.seed
       & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed (campaigns are deterministic).")

let count_arg =
  Arg.(value & opt int Campaign.default_config.count
       & info [ "count" ] ~docv:"K" ~doc:"Number of faults injected per campaign.")

let defense_arg =
  Arg.(value & opt string "hardened"
       & info [ "defense" ] ~docv:"NAME"
           ~doc:"Defense configuration: hardened, default, undefended, no-parity, hamming.")

let n_arg =
  Arg.(value & opt int Campaign.default_config.n
       & info [ "n" ] ~docv:"N" ~doc:"Expansion repetition count.")

let smoke_arg =
  Arg.(value & flag
       & info [ "smoke" ]
           ~doc:"Run the seeded s27 acceptance campaign (hardened vs no-parity) and exit non-zero on any escape.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the per-fault-kind breakdown.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the campaign trials (0 = auto: min(cores, 8); 1 \
           = sequential). Campaign results are identical for every value.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file of the campaigns (load it in \
           chrome://tracing or Perfetto).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print the per-phase timing summary to stderr.")

let () =
  let info =
    Cmd.info "inject" ~version:"1.0.0"
      ~doc:"Fault-injection campaigns and self-checking audit for the BIST hardware session"
  in
  let cmd =
    Cmd.v info
      Term.(
        const main $ circuits_arg $ seed_arg $ count_arg $ defense_arg $ n_arg
        $ smoke_arg $ verbose_arg $ jobs_arg $ trace_arg $ stats_arg)
  in
  match Cmd.eval' ~catch:false cmd with
  | code -> exit code
  | exception Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 2
  | exception (Bist_harness.Seq_io.Parse_error _ as e) ->
    Printf.eprintf "error: %s\n" (Printexc.to_string e);
    exit 2
