(* lint: static-analysis gate over netlists. With no arguments, lints
   every registry circuit — the CI configuration. Exit status: 0 when no
   error findings and the warning total stays within --max-warnings,
   1 otherwise, 2 on usage errors. *)

open Cmdliner
module Lint = Bist_analyze.Lint
module Untestable = Bist_analyze.Untestable

(* A circuit that fails to parse (or to validate structurally) still
   yields a report — with a single error finding — so one bad file in a
   batch doesn't mask the results of the others. *)
let report_of ?sat spec =
  let broken category message =
    {
      Lint.circuit = Filename.remove_extension (Filename.basename spec);
      findings = [ { Lint.severity = Lint.Error; category; message; nodes = [] } ];
    }
  in
  if Sys.file_exists spec then
    match Bist_bench.Loader.load_file spec with
    | circuit -> Lint.run ?sat circuit
    | exception Bist_circuit.Bench_parser.Parse_error { line; message }
    | exception Bist_circuit.Blif_parser.Parse_error { line; message } ->
      broken "parse-error" (Printf.sprintf "line %d: %s" line message)
    | exception Failure message -> broken "invalid-netlist" message
    | exception Bist_bench.Loader.Usage_error message ->
      Printf.eprintf "error: %s\n" message;
      exit 2
  else
    match Bist_bench.Loader.find_named spec with
    | Some circuit -> Lint.run ?sat circuit
    | None ->
      Printf.eprintf
        "error: %S is neither a file nor a known circuit (try s27, x298, \
         counter3, ...)\n"
        spec;
      exit 2

let run specs json max_warnings quiet sat sat_frames sat_conflicts sat_cap =
  let sat =
    if not sat then None
    else
      Some
        {
          Untestable.default_exact_config with
          Untestable.frames = sat_frames;
          max_conflicts = sat_conflicts;
          sat_cap;
        }
  in
  let reports =
    match specs with
    | [] ->
      List.map
        (fun (e : Bist_bench.Registry.entry) -> Lint.run ?sat (e.circuit ()))
        (Bist_bench.Registry.all ())
    | specs -> List.map (report_of ?sat) specs
  in
  if json then
    print_endline
      ("[" ^ String.concat "," (List.map Lint.to_json reports) ^ "]")
  else
    List.iter
      (fun r ->
        let visible =
          if quiet then
            { r with Lint.findings =
                List.filter (fun f -> f.Lint.severity <> Lint.Info) r.Lint.findings }
          else r
        in
        Format.printf "%a" Lint.pp visible)
      reports;
  let errors = List.fold_left (fun acc r -> acc + Lint.errors r) 0 reports in
  let warnings = List.fold_left (fun acc r -> acc + Lint.warnings r) 0 reports in
  if errors > 0 then begin
    Printf.eprintf "lint: %d error finding(s)\n" errors;
    exit 1
  end;
  if warnings > max_warnings then begin
    Printf.eprintf "lint: %d warning(s) exceed the budget of %d\n" warnings
      max_warnings;
    exit 1
  end

let specs_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"CIRCUIT"
        ~doc:
          "Registry names (s27, x298, ...), teaching or workload circuits, \
           or .bench / .blif files. Default: every registry circuit.")

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON array of reports.")

let max_warnings_arg =
  Arg.(
    value & opt int 0
    & info [ "max-warnings" ] ~docv:"N"
        ~doc:"Fail (exit 1) when the warning total exceeds $(docv).")

let quiet_flag =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Hide info-level findings.")

let sat_flag =
  Arg.(
    value & flag
    & info [ "sat" ]
        ~doc:
          "Run the SAT-based exact untestability pass: proofs become exact \
           up to the frame bound and an unresolved residue is a warning.")

let sat_frames_arg =
  Arg.(
    value & opt int Untestable.default_exact_config.Untestable.frames
    & info [ "sat-frames" ] ~docv:"K"
        ~doc:"Time-frame bound of the SAT unrolling.")

let sat_conflicts_arg =
  Arg.(
    value & opt int Untestable.default_exact_config.Untestable.max_conflicts
    & info [ "sat-conflicts" ] ~docv:"N"
        ~doc:"Per-solve conflict budget before a fault is left unknown.")

let sat_cap_arg =
  Arg.(
    value & opt int (-1)
    & info [ "sat-cap" ] ~docv:"N"
        ~doc:
          "Limit the SAT pass to the first $(docv) undischarged faults \
           (negative: no cap).")

let () =
  let info =
    Cmd.info "lint" ~version:"1.0.0"
      ~doc:"Static testability analysis and structural diagnostics for netlists"
  in
  (* ~term_err:2 aligns usage errors with the repo-wide exit contract:
     0 clean, 1 findings/over budget, 2 usage. *)
  exit
    (Cmd.eval ~term_err:2
       (Cmd.v info
          Term.(
            const run $ specs_arg $ json_flag $ max_warnings_arg $ quiet_flag
            $ sat_flag $ sat_frames_arg $ sat_conflicts_arg $ sat_cap_arg)))
