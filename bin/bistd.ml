(* bistd: the crash-safe multi-tenant generation daemon and its client.
   `serve` runs the daemon; `submit`, `ping`, `stats`, `shutdown` and
   `quarantine` talk to it; `chaos` is the fault-injection harness for
   the daemon itself — truncated frames, garbage frames, pathologically
   slow clients, hostile netlist payloads — and asserts the daemon keeps
   serving through all of them. *)

open Cmdliner
module Server = Bist_daemon.Server
module Client = Bist_daemon.Client
module Protocol = Bist_daemon.Protocol
module Sandbox = Bist_daemon.Sandbox
module Frame = Bist_daemon.Frame

let err fmt = Printf.ksprintf (fun m -> Printf.eprintf "error: %s\n" m) fmt

(* ---------------------------------------------------------------- serve *)

let serve host port workers queue per_tenant interval grace spool port_file
    worker_mem worker_cpu worker_nofile worker_fsize poison verbose =
  if workers < 1 then begin
    err "--workers must be >= 1 (got %d)" workers;
    exit 2
  end;
  if queue < 1 then begin
    err "--queue must be >= 1 (got %d)" queue;
    exit 2
  end;
  if interval <= 0.0 then begin
    err "--interval must be positive (got %g)" interval;
    exit 2
  end;
  if poison < 1 then begin
    err "--poison must be >= 1 (got %d)" poison;
    exit 2
  end;
  (* 0 = leave that resource at the inherited limit. *)
  let opt v = if v = 0 then None else if v > 0 then Some v else (
    err "worker limits must be >= 0 (got %d)" v;
    exit 2)
  in
  let sandbox =
    { Sandbox.address_space_mb = opt worker_mem; cpu_seconds = opt worker_cpu;
      open_files = opt worker_nofile; file_size_mb = opt worker_fsize }
  in
  let cfg =
    { Server.default_config with
      host; port; max_workers = workers; queue_capacity = queue;
      per_tenant; checkpoint_interval = interval; term_grace = grace;
      spool; sandbox; poison_threshold = poison; verbose }
  in
  let on_ready ~port =
    match port_file with
    | None -> ()
    | Some path ->
      Bist_resilience.Atomic_io.write_file ~path (string_of_int port)
  in
  Server.run ~on_ready cfg;
  0

(* --------------------------------------------------------------- client *)

let with_client host port f =
  match Client.with_connection ~host ~port f with
  | code -> code
  | exception Unix.Unix_error (e, _, _) ->
    err "cannot reach bistd at %s:%d: %s" host port (Unix.error_message e);
    1
  | exception Frame.Protocol_error msg ->
    err "protocol: %s" msg;
    1

(* --payload FILE ships the netlist text itself instead of a server-side
   name: the daemon carries the bytes opaquely and only the sandboxed
   worker parses them. The format travels explicitly (picked here from
   the file extension) because the server never inspects the text. *)
let circuit_ref_of_args circuit payload =
  match payload with
  | None -> Protocol.Named circuit
  | Some path ->
    let format =
      match String.lowercase_ascii (Filename.extension path) with
      | ".bench" -> Protocol.Bench
      | ".blif" -> Protocol.Blif
      | ext ->
        err "--payload %S has unsupported extension %S (supported: %s)" path
          ext
          (String.concat ", " Bist_bench.Loader.supported_extensions);
        exit 2
    in
    let text =
      match Bist_resilience.Atomic_io.read_file ~path with
      | text -> text
      | exception Sys_error msg ->
        err "%s" msg;
        exit 2
    in
    if String.length text > Protocol.max_netlist_bytes then begin
      err "--payload %S is %d bytes; the daemon accepts at most %d" path
        (String.length text) Protocol.max_netlist_bytes;
      exit 2
    end;
    Protocol.Inline { name = Filename.basename path; format; text }

let spec_of_args job circuit payload seed directed trials vectors_file count n =
  let circuit = circuit_ref_of_args circuit payload in
  match job with
  | "tgen" -> Protocol.Tgen { circuit; seed; directed; trials }
  | "inject" -> Protocol.Inject { circuit; seed; count; n }
  | "faultsim" -> (
    match vectors_file with
    | None ->
      err "faultsim needs --vectors FILE";
      exit 2
    | Some path -> (
      match Bist_resilience.Atomic_io.read_file ~path with
      | vectors -> Protocol.Faultsim { circuit; vectors }
      | exception Sys_error msg ->
        err "%s" msg;
        exit 2))
  | other ->
    err "unknown job kind %S (expected tgen, faultsim or inject)" other;
    exit 2

let submit host port job circuit payload seed directed trials vectors_file
    count n tenant deadline wait output =
  let spec =
    spec_of_args job circuit payload seed directed trials vectors_file count n
  in
  (match deadline with
  | Some d when d <= 0.0 ->
    err "--deadline must be positive (got %g)" d;
    exit 2
  | _ -> ());
  with_client host port (fun c ->
      if wait then
        match Client.submit_and_wait c ~tenant ?deadline spec with
        | Result.Error (reason, message) ->
          err "rejected (%s): %s" (Protocol.reject_reason_name reason) message;
          1
        | Result.Ok (id, Protocol.Result { output = text; _ }) ->
          (match output with
          | None -> print_string text
          | Some path ->
            Bist_resilience.Atomic_io.write_file ~path text;
            Printf.eprintf "job %d done, wrote %s\n" id path);
          0
        | Result.Ok (id, Protocol.Failed { reason; _ }) ->
          err "job %d failed: %s" id reason;
          1
        | Result.Ok (id, Protocol.Quarantined { reason; _ }) ->
          err "job %d quarantined: %s" id reason;
          1
        | Result.Ok (_, _) ->
          err "protocol: unexpected reply to Wait";
          1
      else
        match Client.request c (Protocol.Submit { tenant; deadline; spec }) with
        | Protocol.Accepted { id } ->
          Printf.printf "accepted job %d\n" id;
          0
        | Protocol.Rejected { reason; message } ->
          err "rejected (%s): %s" (Protocol.reject_reason_name reason) message;
          1
        | _ ->
          err "protocol: unexpected reply to Submit";
          1)

let ping host port =
  with_client host port (fun c ->
      match Client.handshake c with
      | Result.Ok version ->
        Printf.printf "pong (protocol v%d)\n" version;
        0
      | Result.Error (server, client) ->
        err "daemon speaks protocol v%d, this client speaks v%d" server client;
        1)

(* ----------------------------------------------------------- quarantine *)

let quarantine_list host port =
  with_client host port (fun c ->
      match Client.request c Protocol.Quarantine_list with
      | Protocol.Quarantine_report [] ->
        print_endline "quarantine empty";
        0
      | Protocol.Quarantine_report entries ->
        List.iter
          (fun e ->
            Printf.printf "job %d tenant=%s kind=%s circuit=%s crashes=%d: %s\n"
              e.Protocol.id e.Protocol.tenant e.Protocol.job e.Protocol.circuit
              e.Protocol.crashes e.Protocol.reason)
          entries;
        0
      | _ ->
        err "protocol: unexpected reply to Quarantine_list";
        1)

let quarantine_release host port id =
  with_client host port (fun c ->
      match Client.request c (Protocol.Quarantine_release { id }) with
      | Protocol.Accepted { id } ->
        Printf.printf "released job %d\n" id;
        0
      | Protocol.Error { message } ->
        err "%s" message;
        1
      | _ ->
        err "protocol: unexpected reply to Quarantine_release";
        1)

let quarantine host port action id =
  match (action, id) with
  | "list", None -> quarantine_list host port
  | "release", Some id -> quarantine_release host port id
  | "release", None ->
    err "quarantine release needs a job id";
    exit 2
  | "list", Some _ ->
    err "quarantine list takes no job id";
    exit 2
  | other, _ ->
    err "unknown quarantine action %S (expected list or release)" other;
    exit 2

let stats host port =
  with_client host port (fun c ->
      match Client.request c Protocol.Stats with
      | Protocol.Stats_report report ->
        print_string report;
        0
      | _ ->
        err "protocol: unexpected reply to Stats";
        1)

let shutdown host port =
  with_client host port (fun c ->
      match Client.request c Protocol.Shutdown with
      | Protocol.Shutting_down ->
        print_endline "draining";
        0
      | _ ->
        err "protocol: unexpected reply to Shutdown";
        1)

(* ---------------------------------------------------------------- chaos *)

(* Each chaos mode opens a raw socket and misbehaves on purpose, then
   proves the daemon survived by completing a fresh Ping round-trip.
   Exit 0 = the daemon tolerated the abuse; 1 = it did not. *)

let raw_connect host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  fd

let write_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

let chaos_truncate host port =
  (* Half a frame, then a hard close: the decoder must flag the
     truncation and the daemon must drop only this client. *)
  let fd = raw_connect host port in
  let frame =
    Frame.encode
      (Protocol.encode_request (Protocol.Ping { version = Protocol.version }))
  in
  write_all fd (String.sub frame 0 (String.length frame - 2));
  Unix.close fd

let chaos_garbage host port =
  (* A plausible length prefix fronting random bytes: every payload must
     come back as a typed Error reply, never a crash or a hang. *)
  let rng = Bist_util.Rng.create 0xC4A05 in
  for _ = 1 to 16 do
    let fd = raw_connect host port in
    let len = 1 + Bist_util.Rng.int rng 64 in
    let body =
      String.init len (fun _ -> Char.chr (Bist_util.Rng.int rng 256))
    in
    write_all fd (Frame.encode body);
    (match Frame.read_frame fd with
    | Some reply -> (
      match Protocol.decode_response reply with
      | Protocol.Error _ -> ()
      | _ -> failwith "chaos: garbage frame got a non-Error reply")
    | None -> () (* daemon may close a hopeless client; also fine *)
    | exception Frame.Protocol_error _ -> ());
    Unix.close fd
  done

let chaos_slow host port =
  (* A valid Ping delivered one byte at a time with delays: the daemon
     must neither time us out incorrectly nor stall anyone else. *)
  let fd = raw_connect host port in
  let frame =
    Frame.encode
      (Protocol.encode_request (Protocol.Ping { version = Protocol.version }))
  in
  String.iter
    (fun ch ->
      write_all fd (String.make 1 ch);
      Unix.sleepf 0.01)
    frame;
  (match Frame.read_frame fd with
  | Some reply -> (
    match Protocol.decode_response reply with
    | Protocol.Pong -> ()
    | _ -> failwith "chaos: slow ping got a non-Pong reply")
  | None -> failwith "chaos: daemon closed on a slow but valid client");
  Unix.close fd

let chaos_payload_bomb host port =
  (* Three hostile payload shapes, each of which must yield a typed
     rejection at the layer built to catch it — and touch no one else.

     An over-cap payload dies in the protocol decoder (the declared
     length prefix alone condemns it): typed Error, connection closed. *)
  let submit_spec text format =
    Protocol.Tgen
      { circuit = Protocol.Inline { name = "bomb"; format; text };
        seed = 1; directed = 0; trials = 1 }
  in
  let oversized = String.make (Protocol.max_netlist_bytes + 1) 'x' in
  Client.with_connection ~host ~port (fun c ->
      match
        Client.request c
          (Protocol.Submit
             { tenant = "chaos"; deadline = None;
               spec = submit_spec oversized Protocol.Bench })
      with
      | Protocol.Error _ -> ()
      | _ -> failwith "chaos: oversized payload got a non-Error reply"
      | exception Frame.Protocol_error _ ->
        (* The daemon may close the hopeless client before the reply is
           readable; survival is checked by the post-condition Ping. *)
        ());
  (* Garbage that fits the cap is admitted — the server does not parse
     payloads — and must come back as the worker's typed Bad_job. *)
  let expect_failed what text format =
    Client.with_connection ~host ~port (fun c ->
        match
          Client.submit_and_wait c ~tenant:"chaos" (submit_spec text format)
        with
        | Result.Ok (_, Protocol.Failed _) -> ()
        | Result.Ok (_, _) ->
          failwith (Printf.sprintf "chaos: %s payload did not fail typedly" what)
        | Result.Error _ ->
          failwith
            (Printf.sprintf "chaos: %s payload rejected at admission" what))
  in
  expect_failed "garbage" "THIS IS NOT(A, NETLIST" Protocol.Bench;
  (* Mutually recursive .subckt models: elaboration must refuse the
     cycle (typed parse error), not recurse forever in the worker. *)
  expect_failed "recursive-subckt"
    (String.concat "\n"
       [ ".model a"; ".inputs x"; ".outputs y"; ".subckt b x=x y=y"; ".end";
         ".model b"; ".inputs x"; ".outputs y"; ".subckt a x=x y=y"; ".end";
         "" ])
    Protocol.Blif

let chaos host port mode =
  match
    (match mode with
    | "truncate" -> chaos_truncate host port
    | "garbage" -> chaos_garbage host port
    | "slow" -> chaos_slow host port
    | "payload-bomb" -> chaos_payload_bomb host port
    | "all" ->
      chaos_truncate host port;
      chaos_garbage host port;
      chaos_slow host port;
      chaos_payload_bomb host port
    | other ->
      err
        "unknown chaos mode %S (expected truncate, garbage, slow, \
         payload-bomb, all)"
        other;
      exit 2);
    (* The post-condition of every mode: the daemon still answers. *)
    Client.with_connection ~host ~port (fun c ->
        Client.request c (Protocol.Ping { version = Protocol.version }))
  with
  | Protocol.Pong ->
    Printf.printf "chaos %s: daemon survived\n" mode;
    0
  | _ ->
    err "chaos %s: daemon replied, but not with Pong" mode;
    1
  | exception Failure msg ->
    err "%s" msg;
    1
  | exception Unix.Unix_error (e, _, _) ->
    err "chaos %s: daemon unreachable afterwards: %s" mode
      (Unix.error_message e);
    1
  | exception Frame.Protocol_error msg ->
    err "chaos %s: %s" mode msg;
    1

(* ------------------------------------------------------------ cmdliner *)

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"ADDR" ~doc:"Daemon bind/connect address.")

let port_arg ~default =
  Arg.(value & opt int default
       & info [ "port" ] ~docv:"PORT" ~doc:"Daemon TCP port (serve: 0 picks an ephemeral one).")

let serve_cmd =
  let workers =
    Arg.(value & opt int Server.default_config.Server.max_workers
         & info [ "workers" ] ~docv:"N" ~doc:"Concurrent worker processes.")
  and queue =
    Arg.(value & opt int Server.default_config.Server.queue_capacity
         & info [ "queue" ] ~docv:"N" ~doc:"Bounded admission queue capacity.")
  and per_tenant =
    Arg.(value & opt (some int) None
         & info [ "per-tenant" ] ~docv:"N"
             ~doc:"Per-tenant queue quota (default: no quota).")
  and interval =
    Arg.(value & opt float Server.default_config.Server.checkpoint_interval
         & info [ "interval" ] ~docv:"SECS"
             ~doc:"Seconds between job checkpoints (the migration granule).")
  and grace =
    Arg.(value & opt float Server.default_config.Server.term_grace
         & info [ "grace" ] ~docv:"SECS"
             ~doc:"Seconds a SIGTERMed worker gets to checkpoint before SIGKILL.")
  and spool =
    Arg.(value & opt string Server.default_config.Server.spool
         & info [ "spool" ] ~docv:"DIR"
             ~doc:"Spool directory for checkpoints, results and the job manifest.")
  and port_file =
    Arg.(value & opt (some string) None
         & info [ "port-file" ] ~docv:"FILE"
             ~doc:"Write the bound port here once listening (for scripts using --port 0).")
  and worker_mem =
    Arg.(value & opt int 2048
         & info [ "worker-mem" ] ~docv:"MIB"
             ~doc:"Worker RLIMIT_AS in MiB (0 = inherited limit).")
  and worker_cpu =
    Arg.(value & opt int 0
         & info [ "worker-cpu" ] ~docv:"SECS"
             ~doc:"Worker RLIMIT_CPU in seconds (0 = inherited limit).")
  and worker_nofile =
    Arg.(value & opt int 256
         & info [ "worker-nofile" ] ~docv:"N"
             ~doc:"Worker RLIMIT_NOFILE (0 = inherited limit).")
  and worker_fsize =
    Arg.(value & opt int 1024
         & info [ "worker-fsize" ] ~docv:"MIB"
             ~doc:"Worker RLIMIT_FSIZE in MiB (0 = inherited limit).")
  and poison =
    Arg.(value & opt int Server.default_config.Server.poison_threshold
         & info [ "poison" ] ~docv:"N"
             ~doc:"Crashes on distinct workers before a job is quarantined.")
  and verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ] ~doc:"Log supervision events to stderr.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the daemon until SIGTERM/SIGINT or a shutdown request (second signal force-quits with exit 130)")
    Term.(
      const serve $ host_arg $ port_arg ~default:0 $ workers $ queue
      $ per_tenant $ interval $ grace $ spool $ port_file $ worker_mem
      $ worker_cpu $ worker_nofile $ worker_fsize $ poison $ verbose)

let submit_cmd =
  let job =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"KIND" ~doc:"Job kind: tgen, faultsim or inject.")
  and circuit =
    Arg.(value & pos 1 string "s27"
         & info [] ~docv:"CIRCUIT"
             ~doc:"Registry, teaching or workload circuit name (ignored with $(b,--payload)).")
  and payload =
    Arg.(value & opt (some string) None
         & info [ "payload" ] ~docv:"FILE"
             ~doc:"Ship this .bench/.blif file's text as the job's circuit; \
                   only the daemon's sandboxed worker parses it.")
  and seed =
    Arg.(value & opt int 1999 & info [ "seed" ] ~docv:"SEED" ~doc:"Job seed.")
  and directed =
    Arg.(value & opt int 30
         & info [ "directed" ] ~docv:"N" ~doc:"tgen: directed search budget.")
  and trials =
    Arg.(value & opt int 200
         & info [ "trials" ] ~docv:"N" ~doc:"tgen: compaction trial budget.")
  and vectors =
    Arg.(value & opt (some string) None
         & info [ "vectors" ] ~docv:"FILE"
             ~doc:"faultsim: sequence file (one vector per line).")
  and count =
    Arg.(value & opt int 200
         & info [ "count" ] ~docv:"K" ~doc:"inject: faults per campaign.")
  and n =
    Arg.(value & opt int 2
         & info [ "n" ] ~docv:"N" ~doc:"inject: expansion repetition count.")
  and tenant =
    Arg.(value & opt string "default"
         & info [ "tenant" ] ~docv:"NAME" ~doc:"Tenant the job is accounted to.")
  and deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECS" ~doc:"Per-job wall-clock budget.")
  and wait =
    Arg.(value & flag
         & info [ "wait" ] ~doc:"Block until the job finishes and print its result.")
  and output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"With --wait: write the result here instead of stdout.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a job; exits 1 with the typed reason if the daemon rejects it")
    Term.(
      const submit $ host_arg $ port_arg ~default:7427 $ job $ circuit
      $ payload $ seed $ directed $ trials $ vectors $ count $ n $ tenant
      $ deadline $ wait $ output)

let ping_cmd =
  Cmd.v (Cmd.info "ping" ~doc:"Round-trip liveness check")
    Term.(const ping $ host_arg $ port_arg ~default:7427)

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"Print the daemon's per-tenant metrics summary")
    Term.(const stats $ host_arg $ port_arg ~default:7427)

let shutdown_cmd =
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:"Ask the daemon to drain: running jobs checkpoint and park")
    Term.(const shutdown $ host_arg $ port_arg ~default:7427)

let quarantine_cmd =
  let action =
    Arg.(value & pos 0 string "list"
         & info [] ~docv:"ACTION" ~doc:"list or release.")
  and id =
    Arg.(value & pos 1 (some int) None
         & info [] ~docv:"ID" ~doc:"Job id (release only).")
  in
  Cmd.v
    (Cmd.info "quarantine"
       ~doc:"Inspect or release poison jobs the daemon has quarantined")
    Term.(const quarantine $ host_arg $ port_arg ~default:7427 $ action $ id)

let chaos_cmd =
  let mode =
    Arg.(value & pos 0 string "all"
         & info [] ~docv:"MODE"
             ~doc:"Abuse to inflict: truncate, garbage, slow, payload-bomb, or all.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Fault-injection harness for the daemon itself; exits 0 iff it survives")
    Term.(const chaos $ host_arg $ port_arg ~default:7427 $ mode)

let () =
  let info =
    Cmd.info "bistd" ~version:"1.0.0"
      ~doc:"Crash-safe multi-tenant BIST generation daemon"
  in
  let group =
    Cmd.group info
      [ serve_cmd; submit_cmd; ping_cmd; stats_cmd; shutdown_cmd;
        quarantine_cmd; chaos_cmd ]
  in
  match Cmd.eval' ~catch:false ~term_err:2 group with
  | code -> exit code
  | exception Unix.Unix_error (e, fn, arg) ->
    err "%s: %s %s" fn (Unix.error_message e) arg;
    exit 1
  | exception Invalid_argument msg ->
    err "%s" msg;
    exit 2
