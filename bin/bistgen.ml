(* bistgen: command-line front end to the subsequence-expansion BIST
   library. Circuits are named registry entries (s27, x298, ...) or paths
   to .bench / .blif files; sequences are text files, one vector per
   line. *)

open Cmdliner

let resolve_circuit = Bist_bench.Loader.resolve

let circuit_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"CIRCUIT"
        ~doc:
          "Registry name (s27, x298, ...), teaching or workload circuit, or \
           a .bench / .blif file.")

let seed_arg =
  Arg.(value & opt int 2026 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let n_arg =
  Arg.(
    value & opt int 4
    & info [ "n" ] ~docv:"N" ~doc:"Repetition count of the expansion (Sexp = 8nL).")

let universe_of circuit = Bist_fault.Universe.collapsed circuit

(* --jobs 0 (the printed default) means "auto": min(cores, 8). A width
   of 1 yields no pool, i.e. the sequential path. *)
let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for fault simulation (0 = auto: min(cores, 8); 1 = \
           sequential). Results are bit-identical for every value.")

let pool_of_jobs jobs =
  let jobs = Bist_parallel.Pool.validate_jobs ~source:"--jobs" jobs in
  let jobs = if jobs = 0 then Bist_parallel.Pool.default_jobs () else jobs in
  if jobs <= 1 then None else Some (Bist_parallel.Pool.create ~jobs ())

(* Observability: --trace buffers Chrome trace events, --stats prints the
   per-phase summary. Without either flag the sink is Obs.null and the
   instrumented hot paths cost one branch. *)

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file of the run (load it in \
           chrome://tracing or Perfetto).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print the per-phase timing summary to stderr.")

let with_obs ~trace ~stats f =
  if trace = None && not stats then f Bist_obs.Obs.null
  else begin
    let obs = Bist_obs.Obs.create ~trace:(trace <> None) () in
    let finish () =
      (match trace with
      | Some path ->
        Bist_obs.Obs.write_trace obs path;
        Format.eprintf "wrote %s (%d trace events)@." path
          (Bist_obs.Obs.trace_events obs)
      | None -> ());
      if stats then prerr_string (Bist_obs.Obs.summary obs)
    in
    match f obs with
    | v ->
      finish ();
      v
    | exception e ->
      (* The trace up to the failure is often exactly what's needed to
         debug it; flush before re-raising. *)
      finish ();
      raise e
  end

(* Preemption and checkpointing: --deadline bounds the wall-clock budget,
   --checkpoint names where a preempted run serializes its progress,
   --resume continues from such a file. SIGINT/SIGTERM are converted into
   a cooperative cancellation when a checkpoint path is armed, so an
   interrupted run exits 3 with a resumable file instead of dying. *)

module Ctl = Bist_resilience.Ctl
module Checkpoint = Bist_resilience.Checkpoint
module Ckio = Bist_resilience.Checkpoint.Io

exception
  Preempted_run of { reason : Ctl.reason; checkpoint : string option }

let deadline_arg =
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget in seconds. When it runs out the command \
           stops at the next safe point, writes a checkpoint if \
           $(b,--checkpoint) is set, and exits with code 3.")

let checkpoint_arg =
  Arg.(
    value & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Where to write the resumable snapshot if the run is preempted \
           (deadline, SIGINT or SIGTERM). Written atomically; deleted on \
           successful completion.")

let resume_arg =
  Arg.(
    value & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume from a checkpoint written by an earlier preempted run \
           of the same command on the same circuit with the same \
           parameters. The final result is bit-identical to an \
           uninterrupted run.")

let make_ctl ~deadline ~checkpoint =
  match (deadline, checkpoint) with
  | None, None -> None
  | _ ->
    (match deadline with
    | Some s when s <= 0.0 ->
      Printf.eprintf "error: --deadline must be positive (got %g)\n" s;
      exit 2
    | _ -> ());
    let cancel = Bist_resilience.Cancel.create () in
    let deadline = Option.map Bist_resilience.Deadline.after deadline in
    (* Cancel.request is a single atomic store — async-signal-safe. The
       handler is installed only when preemption is armed, so plain runs
       keep the default die-on-signal behaviour. A second signal while
       the graceful cancel + checkpoint write is still in flight is a
       force-quit: exit 130 immediately (Unix._exit skips at_exit, so a
       wedged domain join cannot swallow the quit; the checkpoint stays
       consistent because Atomic_io only ever renames complete files). *)
    if checkpoint <> None then begin
      let signals = ref 0 in
      let handler =
        Sys.Signal_handle
          (fun _ ->
            incr signals;
            if !signals > 1 then Unix._exit 130
            else Bist_resilience.Cancel.request cancel)
      in
      Sys.set_signal Sys.sigint handler;
      Sys.set_signal Sys.sigterm handler
    end;
    Some (Ctl.create ?deadline ~cancel ())

let fingerprint_of circuit =
  Bist_resilience.Crc32.string (Bist_circuit.Bench_writer.to_string circuit)

let stop_reason_of ctl =
  match ctl with
  | Some c -> Option.value (Ctl.stop_reason c) ~default:Ctl.Cancelled
  | None -> Ctl.Cancelled

(* stats *)

let stats_cmd =
  let run spec =
    let circuit = resolve_circuit spec in
    Format.printf "%a@." Bist_circuit.Stats.pp (Bist_circuit.Stats.of_netlist circuit);
    let full = Bist_fault.Universe.full circuit in
    let collapsed = universe_of circuit in
    Format.printf "faults: %d uncollapsed, %d collapsed@."
      (Bist_fault.Universe.size full)
      (Bist_fault.Universe.size collapsed)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Circuit and fault-list statistics")
    Term.(const run $ circuit_arg)

(* lint *)

let lint_cmd =
  let run spec =
    let circuit = resolve_circuit spec in
    let report = Bist_analyze.Lint.run circuit in
    Format.printf "%a" Bist_analyze.Lint.pp report;
    if Bist_analyze.Lint.errors report > 0 || Bist_analyze.Lint.warnings report > 0
    then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis: structural diagnostics, provably untestable \
          faults, S-graph initialization risks and SCOAP testability \
          (see also the standalone lint executable for batch/JSON use)")
    Term.(const run $ circuit_arg)

(* faultsim *)

let seq_arg name doc =
  Arg.(required & opt (some string) None & info [ name ] ~docv:"FILE" ~doc)

let faultsim_cmd =
  let run spec seq_file table jobs trace stats =
    let circuit = resolve_circuit spec in
    let universe = universe_of circuit in
    let seq = Bist_harness.Seq_io.load seq_file in
    let tbl =
      with_obs ~trace ~stats (fun obs ->
          Bist_fault.Fault_table.compute ~obs ?pool:(pool_of_jobs jobs) universe
            seq)
    in
    Format.printf "detected %d / %d faults (coverage %.2f%%)@."
      (Bist_fault.Fault_table.num_detected tbl)
      (Bist_fault.Universe.size universe)
      (100.0 *. Bist_fault.Fault_table.coverage tbl);
    if table then print_string (Bist_fault.Fault_table.render tbl)
  in
  let table_flag =
    Arg.(value & flag & info [ "table" ] ~doc:"Print the per-time-unit detection table.")
  in
  Cmd.v (Cmd.info "faultsim" ~doc:"Fault-simulate a sequence")
    Term.(const run $ circuit_arg $ seq_arg "seq" "Sequence file." $ table_flag
          $ jobs_arg $ trace_arg $ stats_arg)

(* tgen *)

(* The tgen checkpoint payload codec and the generate-then-compact stage
   machine live in Bist_tgen.Run, shared verbatim with the bistd daemon
   worker — one format, one resume semantics. *)

let tgen_cmd =
  let run spec seed out trials directed sat_budget sat_frames sat_conflicts
      jobs trace stats_flag deadline checkpoint resume =
    let circuit = resolve_circuit spec in
    let name = Bist_circuit.Netlist.circuit_name circuit in
    let fingerprint = fingerprint_of circuit in
    let universe = universe_of circuit in
    let params =
      { Bist_tgen.Run.seed; directed; trials; sat_budget; sat_frames;
        sat_conflicts }
    in
    let pool = pool_of_jobs jobs in
    let ctl = make_ctl ~deadline ~checkpoint in
    let t0, stats, cstats =
      with_obs ~trace ~stats:stats_flag (fun obs ->
          let resumed =
            match resume with
            | None -> None
            | Some path ->
              Bist_obs.Obs.span obs ~cat:"checkpoint" "checkpoint.load"
                ~args:(fun () -> [ ("path", path) ])
                (fun () ->
                  let header = Checkpoint.load path in
                  Checkpoint.ensure ~kind:"tgen" ~circuit:name ~fingerprint
                    header;
                  Some
                    (Bist_tgen.Run.decode_payload params
                       header.Checkpoint.payload))
          in
          (* On preemption: serialize the stage we were in (if a path was
             given), then unwind through with_obs so a --trace of the
             truncated run is still flushed; main exits 3. *)
          match
            Bist_tgen.Run.execute ~obs ?pool ?ctl ?resume:resumed params
              universe
          with
          | t0, stats, cstats ->
            (* A finished run must not leave a stale checkpoint behind — a
               later --resume against it would silently redo work. *)
            (match checkpoint with
            | Some path when Sys.file_exists path -> Sys.remove path
            | _ -> ());
            (t0, stats, cstats)
          | exception Bist_tgen.Run.Interrupted stage ->
            (match checkpoint with
            | None -> ()
            | Some path ->
              Bist_obs.Obs.span obs ~cat:"checkpoint" "checkpoint.save"
                ~args:(fun () -> [ ("path", path) ])
                (fun () ->
                  Checkpoint.save ~path
                    { Checkpoint.kind = "tgen"; circuit = name; fingerprint;
                      payload = Bist_tgen.Run.encode_payload params stage }));
            raise (Preempted_run { reason = stop_reason_of ctl; checkpoint }))
    in
    Format.printf
      "T0: %d vectors (raw %d), detects %d / %d faults (%.2f%%)@."
      (Bist_logic.Tseq.length t0) cstats.Bist_tgen.Compaction.initial_length
      stats.Bist_tgen.Engine.detected stats.total_faults
      (100.0 *. float_of_int stats.detected /. float_of_int stats.total_faults);
    if sat_budget > 0 then
      Format.printf
        "SAT tail: %d fault(s) proved untestable within %d frames, %d \
         SAT-derived test(s) appended@."
        stats.Bist_tgen.Engine.sat_proved sat_frames
        stats.Bist_tgen.Engine.sat_tests;
    match out with
    | Some path ->
      Bist_harness.Seq_io.save t0 path;
      Format.printf "wrote %s@." path
    | None -> print_string (Bist_harness.Seq_io.to_string t0)
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let trials_arg =
    Arg.(value & opt int 150 & info [ "compact-trials" ] ~doc:"Static-compaction trial budget.")
  in
  let directed_arg =
    Arg.(value & opt int 0
         & info [ "directed" ] ~docv:"K"
             ~doc:"Attack up to K surviving faults with the genetic directed search.")
  in
  let sat_budget_arg =
    Arg.(value & opt int 0
         & info [ "sat-budget" ] ~docv:"K"
             ~doc:"Hand up to K faults that survived every search phase to \
                   the bounded-exact SAT back end: UNSAT retires the fault, \
                   a model becomes a validated test appended to T0 (0 = off).")
  in
  let sat_frames_arg =
    Arg.(value & opt int 8
         & info [ "sat-frames" ] ~docv:"F"
             ~doc:"Time-frame bound of the SAT unrolling.")
  in
  let sat_conflicts_arg =
    Arg.(value & opt int Bist_sat.Satgen.default_conflicts
         & info [ "sat-conflicts" ] ~docv:"N"
             ~doc:"Per-solve conflict budget before a SAT query gives up.")
  in
  Cmd.v (Cmd.info "tgen" ~doc:"Generate and compact a deterministic sequence T0")
    Term.(const run $ circuit_arg $ seed_arg $ out_arg $ trials_arg $ directed_arg
          $ sat_budget_arg $ sat_frames_arg $ sat_conflicts_arg
          $ jobs_arg $ trace_arg $ stats_arg $ deadline_arg $ checkpoint_arg
          $ resume_arg)

(* dimacs / satgen: direct access to the SAT view of a circuit — the
   same encoder the lint --sat pass and the tgen SAT tail run on. *)

let find_fault universe circuit name =
  let n = Bist_fault.Universe.size universe in
  let rec go id =
    if id >= n then begin
      Printf.eprintf
        "error: no collapsed fault named %S (names are as lint prints \
         them, e.g. G5/0 or G7.in1/1)\n"
        name;
      exit 2
    end
    else
      let f = Bist_fault.Universe.get universe id in
      if Bist_fault.Fault.name circuit f = name then f else go (id + 1)
  in
  go 0

let fault_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "fault" ] ~docv:"NAME"
        ~doc:"Collapsed fault name, as printed by lint (e.g. G5/0, G7.in1/1).")

let frames_arg =
  Arg.(
    value & opt int 8
    & info [ "frames" ] ~docv:"F"
        ~doc:"Time frames unrolled from the all-X reset state.")

let dimacs_cmd =
  let run spec fault_name frames out =
    let circuit = resolve_circuit spec in
    let universe = universe_of circuit in
    let fault = find_fault universe circuit fault_name in
    let view = Bist_sat.Cnf.view ~frames circuit in
    let text = Bist_sat.Dimacs.to_string view fault in
    match out with
    | Some path ->
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
          output_string oc text);
      Format.printf "wrote %s@." path
    | None -> print_string text
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output .cnf file.")
  in
  Cmd.v
    (Cmd.info "dimacs"
       ~doc:
         "Export the time-frame-expanded CNF of one fault's detection \
          query in DIMACS format (the header comments name the circuit, \
          fault, frame bound and the excitation/detection assumption \
          literals)")
    Term.(const run $ circuit_arg $ fault_arg $ frames_arg $ out_arg)

let satgen_cmd =
  let run spec fault_name frames conflicts out =
    let circuit = resolve_circuit spec in
    let universe = universe_of circuit in
    let fault = find_fault universe circuit fault_name in
    let view = Bist_sat.Cnf.view ~frames circuit in
    match
      Bist_sat.Satgen.solve_fault ~max_conflicts:conflicts view fault
    with
    | Bist_sat.Satgen.Unreachable ->
      Format.printf
        "%s: proved untestable (unreachable: no sequence of length <= %d \
         excites the fault site)@."
        fault_name frames
    | Bist_sat.Satgen.Blocked ->
      Format.printf
        "%s: proved untestable (blocked: no sequence of length <= %d \
         propagates the effect to an output)@."
        fault_name frames
    | Bist_sat.Satgen.Unknown ->
      Format.printf
        "%s: unknown within %d frames / %d conflicts (raise --frames or \
         --conflicts)@."
        fault_name frames conflicts;
      exit 1
    | Bist_sat.Satgen.Test seq ->
      Format.printf "%s: testable — %d-vector test (simulator-validated)@."
        fault_name (Bist_logic.Tseq.length seq);
      (match out with
      | Some path ->
        Bist_harness.Seq_io.save seq path;
        Format.printf "wrote %s@." path
      | None -> print_string (Bist_harness.Seq_io.to_string seq))
  in
  let conflicts_arg =
    Arg.(value & opt int Bist_sat.Satgen.default_conflicts
         & info [ "conflicts" ] ~docv:"N" ~doc:"Conflict budget per solve.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output sequence file.")
  in
  Cmd.v
    (Cmd.info "satgen"
       ~doc:
         "Decide one fault exactly (up to the frame bound): prove it \
          untestable or emit a simulator-validated detecting sequence")
    Term.(const run $ circuit_arg $ fault_arg $ frames_arg $ conflicts_arg
          $ out_arg)

(* expand *)

let expand_cmd =
  let run seq_file n =
    let seq = Bist_harness.Seq_io.load seq_file in
    print_string (Bist_harness.Seq_io.to_string (Bist_core.Ops.expand ~n seq))
  in
  Cmd.v (Cmd.info "expand" ~doc:"Print the expanded sequence Sexp (length 8nL)")
    Term.(const run $ seq_arg "seq" "Stored sequence file." $ n_arg)

(* select *)

let select_cmd =
  let run spec t0_file n seed fast out trace stats =
    let circuit = resolve_circuit spec in
    let universe = universe_of circuit in
    let t0 = Bist_harness.Seq_io.load t0_file in
    let strategy =
      if fast then Bist_core.Procedure2.fast_strategy
      else Bist_core.Procedure2.paper_strategy
    in
    let run_result =
      with_obs ~trace ~stats (fun obs ->
          match n with
          | Some n ->
            Bist_core.Scheme.execute ~strategy ~seed ~n ~t0 ~obs universe
          | None -> Bist_core.Scheme.best_n ~strategy ~seed ~t0 ~obs universe)
    in
    let b = run_result in
    Format.printf
      "n=%d: before |S|=%d tot=%d max=%d; after |S|=%d tot=%d max=%d; coverage %s@."
      b.Bist_core.Scheme.n b.before.count b.before.total_length
      b.before.max_length b.after.count b.after.total_length b.after.max_length
      (if b.coverage_verified then "preserved" else "NOT PRESERVED");
    match out with
    | Some path ->
      Bist_harness.Seq_io.save_set b.sequences path;
      Format.printf "wrote %s@." path
    | None -> List.iter (fun s -> print_string (Bist_harness.Seq_io.to_string s ^ "--\n")) b.sequences
  in
  let n_opt =
    Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N"
           ~doc:"Repetition count; omit to sweep {2,4,8,16} and keep the best.")
  in
  let fast_flag =
    Arg.(value & flag & info [ "fast" ] ~doc:"Use the fast Procedure-2 strategy.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output set file.")
  in
  Cmd.v (Cmd.info "select" ~doc:"Run Procedure 1 + static compaction on T0")
    Term.(const run $ circuit_arg $ seq_arg "t0" "Deterministic sequence T0."
          $ n_opt $ seed_arg $ fast_flag $ out_arg $ trace_arg $ stats_arg)

(* trace-check *)

let trace_check_cmd =
  let run path =
    match Bist_obs.Json_check.parse_file path with
    | Error message ->
      Printf.eprintf "error: %s: %s\n" path message;
      exit 1
    | Ok json ->
      (match Bist_obs.Json_check.member "traceEvents" json with
      | Some (Bist_obs.Json_check.List events) ->
        Format.printf "%s: valid trace-event JSON (%d events)@." path
          (List.length events)
      | Some _ ->
        Printf.eprintf "error: %s: \"traceEvents\" is not an array\n" path;
        exit 1
      | None ->
        Printf.eprintf "error: %s: missing \"traceEvents\" member\n" path;
        exit 1)
  in
  let path_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Trace JSON file written by --trace.")
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:"Validate a --trace output file (JSON syntax + traceEvents array)")
    Term.(const run $ path_arg)

(* session *)

let session_cmd =
  let run spec set_file n =
    let circuit = resolve_circuit spec in
    let set = Bist_harness.Seq_io.load_set set_file in
    let report = Bist_hw.Session.run_exn ~n circuit set in
    Format.printf "%a@." Bist_hw.Session.pp_report report
  in
  Cmd.v (Cmd.info "session" ~doc:"Simulate the on-chip BIST session (memory, controller, MISR)")
    Term.(const run $ circuit_arg $ seq_arg "set" "Stored-sequence set file." $ n_arg)

(* baseline *)

let baseline_cmd =
  let run spec t0_file block =
    let circuit = resolve_circuit spec in
    let universe = universe_of circuit in
    let t0 = Bist_harness.Seq_io.load t0_file in
    let fl = Bist_baselines.Full_load.evaluate universe ~t0 in
    Format.printf "full-load: memory %d words, load %d cycles, coverage %.2f%%@."
      fl.Bist_baselines.Full_load.memory_words fl.load_cycles (100.0 *. fl.coverage);
    let pt = Bist_baselines.Partition.evaluate universe ~t0 ~block in
    Format.printf
      "partition(block=%d): %d blocks, total loaded %d, max block %d, coverage %s@."
      block pt.Bist_baselines.Partition.num_blocks pt.total_loaded
      pt.max_block_length
      (if pt.coverage_preserved then "preserved" else "LOST");
    let cycles = 8 * 4 * Bist_logic.Tseq.length t0 in
    List.iter
      (fun hold ->
        let r = Bist_baselines.Lfsr_bist.evaluate universe ~cycles ~hold in
        Format.printf "lfsr(hold=%d, %d cycles): coverage %.2f%%@." hold cycles
          (100.0 *. r.Bist_baselines.Lfsr_bist.coverage))
      [ 1; 4 ]
  in
  let block_arg =
    Arg.(value & opt int 32 & info [ "block" ] ~docv:"B" ~doc:"Partition block size.")
  in
  Cmd.v (Cmd.info "baseline" ~doc:"Evaluate the Section-1 baselines on T0")
    Term.(const run $ circuit_arg $ seq_arg "t0" "Deterministic sequence T0." $ block_arg)

(* optimize *)

let optimize_cmd =
  let run spec out =
    let circuit = resolve_circuit spec in
    let optimized = Bist_circuit.Opt.cleanup circuit in
    Format.eprintf "%d gates -> %d gates@."
      (Bist_circuit.Netlist.num_gates circuit)
      (Bist_circuit.Netlist.num_gates optimized);
    let text = Bist_circuit.Bench_writer.to_string optimized in
    match out with
    | Some path ->
      Bist_circuit.Bench_writer.to_file optimized path;
      Format.printf "wrote %s@." path
    | None -> print_string text
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output .bench file.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Constant propagation + unobservable-logic sweep (behaviour-preserving)")
    Term.(const run $ circuit_arg $ out_arg)

(* convert *)

let convert_cmd =
  let run spec strict out =
    let circuit = resolve_circuit spec in
    match String.lowercase_ascii (Filename.extension out) with
    | ".bench" ->
      Bist_circuit.Bench_writer.to_file ~strict circuit out;
      Format.printf "wrote %s@." out
    | ".blif" ->
      Bist_circuit.Blif_writer.to_file ~strict circuit out;
      Format.printf "wrote %s@." out
    | _ ->
      Printf.eprintf
        "error: output %S must end in .bench or .blif (the extension picks \
         the format)\n"
        out;
      exit 2
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Refuse (instead of renaming) signal names the output format \
             cannot represent.")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Output file; its extension (.bench or .blif) picks the format.")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Re-serialize a circuit as .bench or .blif (sanitizing names by default)")
    Term.(const run $ circuit_arg $ strict_arg $ out_arg)

(* vcd *)

let vcd_cmd =
  let run spec seq_file out =
    let circuit = resolve_circuit spec in
    let seq = Bist_harness.Seq_io.load seq_file in
    Bist_sim.Vcd.dump_file circuit seq out;
    Format.printf "wrote %s (%d timesteps)@." out (Bist_logic.Tseq.length seq)
  in
  let out_arg =
    Arg.(value & opt string "trace.vcd" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output .vcd file.")
  in
  Cmd.v (Cmd.info "vcd" ~doc:"Dump a fault-free simulation trace as a VCD waveform")
    Term.(const run $ circuit_arg $ seq_arg "seq" "Sequence to simulate." $ out_arg)

(* verilog *)

let verilog_cmd =
  let run width depth n out =
    let text =
      Bist_hw.Verilog.emit
        { Bist_hw.Verilog.module_name = "bist_expander"; width; depth; n }
    in
    match out with
    | Some path ->
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc text);
      Format.printf "wrote %s@." path
    | None -> print_string text
  in
  let width_arg =
    Arg.(required & opt (some int) None & info [ "width" ] ~docv:"M" ~doc:"Circuit primary inputs.")
  in
  let depth_arg =
    Arg.(required & opt (some int) None & info [ "depth" ] ~docv:"D" ~doc:"Memory words (longest stored sequence).")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output .v file.")
  in
  Cmd.v
    (Cmd.info "verilog" ~doc:"Emit synthesizable RTL for the on-chip expansion hardware")
    Term.(const run $ width_arg $ depth_arg $ n_arg $ out_arg)

(* figure1 *)

let figure1_cmd =
  let run spec t0_file n seed =
    let circuit = resolve_circuit spec in
    let universe = universe_of circuit in
    let t0 =
      match t0_file with
      | Some f -> Bist_harness.Seq_io.load f
      | None when Bist_circuit.Netlist.circuit_name circuit = "s27" ->
        Bist_bench.S27.t0 ()
      | None ->
        Printf.eprintf "error: --t0 is required for circuits other than s27\n";
        exit 2
    in
    print_string (Bist_harness.Figure1.render ~seed ~n ~t0 universe)
  in
  let t0_opt =
    Arg.(value & opt (some string) None & info [ "t0" ] ~docv:"FILE" ~doc:"T0 file (defaults to the paper's for s27).")
  in
  Cmd.v (Cmd.info "figure1" ~doc:"Render Figure 1 (subsequence windows over T0)")
    Term.(const run $ circuit_arg $ t0_opt $ n_arg $ seed_arg)

let () =
  let info =
    Cmd.info "bistgen" ~version:"1.0.0"
      ~doc:"Built-in test sequence generation by loading and expansion of test subsequences"
  in
  let group =
    Cmd.group info
      [ stats_cmd; lint_cmd; optimize_cmd; convert_cmd; faultsim_cmd;
        tgen_cmd; dimacs_cmd; satgen_cmd; expand_cmd; select_cmd;
        session_cmd; baseline_cmd; vcd_cmd; verilog_cmd; figure1_cmd;
        trace_check_cmd ]
  in
  (* ~catch:false so typed domain errors reach us instead of cmdliner's
     backtrace printer; each has a registered printer with the context
     (file/line, fault name) a user needs. *)
  match Cmd.eval ~catch:false ~term_err:2 group with
  | code -> exit code
  | exception Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 2
  | exception
      (( Bist_harness.Seq_io.Parse_error _
       | Bist_circuit.Bench_parser.Parse_error _
       | Bist_circuit.Blif_parser.Parse_error _
       | Bist_circuit.Names.Invalid_name _
       | Bist_bench.Loader.Usage_error _
       | Bist_core.Procedure2.Undetected _
       | Bist_core.Procedure1.Undetected_target _
       | Checkpoint.Corrupt _ | Checkpoint.Mismatch _ ) as e) ->
    Printf.eprintf "error: %s\n" (Printexc.to_string e);
    exit 2
  | exception Preempted_run { reason; checkpoint } ->
    (match checkpoint with
    | Some path ->
      Printf.eprintf
        "preempted (%s): checkpoint written to %s — resume with --resume %s\n"
        (Ctl.reason_name reason) path path
    | None ->
      Printf.eprintf
        "preempted (%s): no --checkpoint path was given, progress discarded\n"
        (Ctl.reason_name reason));
    exit 3
  | exception Ctl.Preempted reason ->
    (* A phase without resumable state (faultsim, select) was preempted;
       there is nothing to write, but the exit code still says why. *)
    Printf.eprintf "preempted (%s): this phase keeps no resumable state\n"
      (Ctl.reason_name reason);
    exit 3
