(* Regenerate the paper's tables and Figure 1 over the evaluation suite.
   Usage: tables [circuit ...] — with no arguments, the full suite. *)

let () =
  let circuits =
    match Array.to_list Sys.argv with
    | _ :: [] -> None
    | _ :: names -> Some names
    | [] -> None
  in
  let results =
    Bist_harness.Experiment.run_suite ?circuits
      ~progress:(fun line -> Printf.eprintf "%s\n%!" line)
      ()
  in
  print_string (Bist_harness.Tables.table3 results);
  print_newline ();
  print_string (Bist_harness.Tables.table4 results);
  print_newline ();
  print_string (Bist_harness.Tables.table5 results);
  print_newline ();
  print_string (Bist_harness.Tables.comparison results);
  print_newline ();
  print_string (Bist_harness.Tables.prescreen_table results);
  print_newline ();
  print_string (Bist_harness.Figure1.render_s27 ())
