#!/usr/bin/env bash
# blif-smoke: end-to-end gate for the BLIF frontend (DESIGN.md
# section 14).
#
# Four checks, all deterministic:
#   1. Every checked-in examples/*.blif parses (`bistgen stats`), so the
#      corpus — Yosys cell soup, multi-.model flattening, cover
#      decomposition — stays live as the parser evolves.
#   2. The Yosys-flavoured s27_yosys.blif runs the real pipeline
#      unmodified: lint (within the global warning budget) and a short
#      tgen with nonzero coverage.
#   3. Format equivalence: one registry circuit is converted to both
#      .bench and .blif, the same generated sequence is fault-simulated
#      against each, and the per-time-unit detection tables must be
#      byte-identical — the BLIF round trip may rename nothing and
#      reorder nothing that the fault machinery can observe.
#   4. Check 3's tables are reproduced bit-for-bit with BIST_JOBS=2
#      (the sharded parallel path, DESIGN.md section 8).
#
# Run from the repo root (the Makefile does): ./scripts/blif_smoke.sh

set -u

BISTGEN=_build/default/bin/bistgen.exe
LINT=_build/default/bin/lint.exe

say()  { printf 'blif-smoke: %s\n' "$*"; }
fail() { printf 'blif-smoke: FAIL: %s\n' "$*" >&2; exit 1; }

dune build bin/bistgen.exe bin/lint.exe || fail "build failed"
[ -x "$BISTGEN" ] || fail "missing $BISTGEN"
[ -x "$LINT" ]    || fail "missing $LINT"

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# --- 1. the whole corpus parses --------------------------------------

n=0
for f in examples/*.blif; do
  out=$("$BISTGEN" stats "$f" 2>&1) || fail "stats $f exited nonzero: $out"
  n=$((n + 1))
done
[ "$n" -ge 4 ] || fail "expected >= 4 corpus files, found $n"
say "corpus: $n .blif files parse"

# --- 2. a Yosys-style netlist runs lint + tgen unmodified ------------

out=$("$LINT" examples/s27_yosys.blif --quiet --max-warnings 8 2>&1); st=$?
[ $st -eq 0 ] || fail "lint s27_yosys.blif exited $st: $out"

out=$("$BISTGEN" tgen examples/s27_yosys.blif --compact-trials 20 \
        --directed 4 -o "$work/t0.seq" 2>&1); st=$?
[ $st -eq 0 ] || fail "tgen s27_yosys.blif exited $st: $out"
grep -Eq 'detects [1-9][0-9]* / ' <<<"$out" \
  || fail "tgen reported zero coverage: $out"
say "s27_yosys.blif: lint clean, tgen covers faults"

# --- 3. .bench and .blif forms of one circuit are fault-equivalent ---

"$BISTGEN" convert s27 -o "$work/s27.bench" || fail "convert to .bench failed"
"$BISTGEN" convert s27 -o "$work/s27.blif"  || fail "convert to .blif failed"
"$BISTGEN" tgen "$work/s27.bench" --compact-trials 20 -o "$work/s27.seq" \
  >/dev/null 2>&1 || fail "tgen on converted .bench failed"

table_of() { # $1 = circuit file, $2 = output table
  "$BISTGEN" faultsim "$1" --seq "$work/s27.seq" --table >"$2" \
    || fail "faultsim $1 failed"
}

table_of "$work/s27.bench" "$work/table.bench"
table_of "$work/s27.blif"  "$work/table.blif"
cmp -s "$work/table.bench" "$work/table.blif" \
  || fail ".bench vs .blif fault tables differ (sequential)"
say "fault tables identical across formats (sequential)"

# --- 4. and bit-identical again under the parallel path --------------

BIST_JOBS=2 table_of "$work/s27.bench" "$work/table.bench.p"
BIST_JOBS=2 table_of "$work/s27.blif"  "$work/table.blif.p"
cmp -s "$work/table.bench.p" "$work/table.blif.p" \
  || fail ".bench vs .blif fault tables differ (BIST_JOBS=2)"
cmp -s "$work/table.bench" "$work/table.bench.p" \
  || fail "sequential vs parallel fault tables differ"
say "fault tables identical across formats (BIST_JOBS=2)"

say "PASS"
