#!/usr/bin/env bash
# daemon-smoke: end-to-end gate for the bistd robustness contracts
# (DESIGN.md §11).
#
#  1. Migration bit-identity: a job whose worker is SIGKILLed mid-run is
#     resumed from its checkpoint on a fresh worker and its result is
#     byte-identical to an uninterrupted run's.
#  2. Typed backpressure: with the queue full, Submit is answered with a
#     typed Rejected (exit 1 + reason on stderr), never a hang or drop.
#  3. Chaos: truncated frames, garbage frames and a pathologically slow
#     client leave the daemon serving everyone else.
#  4. Daemon crash-safety: a SIGTERMed daemon parks its jobs (checkpoint
#     + manifest) and exits 0; a restart on the same spool recovers and
#     finishes them, still bit-identical.
#
# Run from the repo root (the Makefile does): ./scripts/daemon_smoke.sh

set -u

BISTD=_build/default/bin/bistd.exe

say()  { printf 'daemon-smoke: %s\n' "$*"; }
fail() { printf 'daemon-smoke: FAIL: %s\n' "$*" >&2; exit 1; }

dune build bin/bistd.exe || fail "build failed"
[ -x "$BISTD" ] || fail "missing $BISTD"

work=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT

# Long enough to SIGKILL mid-run (~3.5s), checkpointed every 100ms.
job=(tgen x1488 --seed 7 --trials 2000)

start_daemon() { # extra serve args...
  "$BISTD" serve --port 0 --port-file "$work/port" --spool "$work/spool" \
    --interval 0.1 -v "$@" >> "$work/daemon.log" 2>&1 &
  daemon_pid=$!
  for _ in $(seq 1 50); do
    [ -s "$work/port" ] && break
    sleep 0.1
  done
  [ -s "$work/port" ] || fail "daemon did not announce a port"
  port=$(cat "$work/port")
  rm -f "$work/port"
}

# --- reference: an uninterrupted run ---------------------------------

start_daemon --workers 1
"$BISTD" submit "${job[@]}" --port "$port" --wait -o "$work/ref.seq" \
  2>/dev/null || fail "reference job failed"
"$BISTD" shutdown --port "$port" >/dev/null || fail "shutdown refused"
wait "$daemon_pid" || fail "reference daemon exited non-zero"
daemon_pid=""
[ -s "$work/ref.seq" ] || fail "reference produced no output"
rm -rf "$work/spool"
say "reference run complete"

# --- 1. SIGKILL a worker mid-job: migration must be bit-identical ----

start_daemon --workers 1
"$BISTD" submit "${job[@]}" --port "$port" --wait -o "$work/mig.seq" \
  > "$work/mig.client" 2>&1 &
client=$!
pidfile="$work/spool/job-1.pid"
for _ in $(seq 1 50); do
  [ -s "$pidfile" ] && break
  sleep 0.1
done
[ -s "$pidfile" ] || fail "worker pid file never appeared"
sleep 0.5   # let a few checkpoint legs land
kill -9 "$(cat "$pidfile")" 2>/dev/null || fail "could not SIGKILL the worker"
wait "$client" || fail "migrated job failed: $(cat "$work/mig.client")"
cmp -s "$work/ref.seq" "$work/mig.seq" \
  || fail "migrated result differs from the uninterrupted run"
"$BISTD" stats --port "$port" | grep -q "migrations.default *1" \
  || fail "stats do not record the migration"
say "SIGKILLed worker: job migrated, result bit-identical"

# --- 2. full queue answers with a typed rejection --------------------

# workers=1 is busy only briefly now; saturate the queue instead with a
# fresh long job plus queue-capacity more, then one over.
"$BISTD" shutdown --port "$port" >/dev/null; wait "$daemon_pid"; daemon_pid=""
rm -rf "$work/spool"
start_daemon --workers 1 --queue 1
"$BISTD" submit "${job[@]}" --port "$port" >/dev/null || fail "submit 1 refused"
sleep 0.3   # let it dispatch so the queue is empty again
"$BISTD" submit "${job[@]}" --port "$port" >/dev/null || fail "submit 2 refused"
"$BISTD" submit "${job[@]}" --port "$port" > "$work/rej.out" 2>&1
st=$?
[ "$st" -eq 1 ] || fail "overflow submit exited $st (expected 1)"
grep -q "queue_full" "$work/rej.out" \
  || fail "rejection lacks the typed reason: $(cat "$work/rej.out")"
say "full queue: typed queue-full rejection"

# --- 3. chaos: the daemon survives hostile clients -------------------

"$BISTD" chaos all --port "$port" >/dev/null \
  || fail "daemon did not survive chaos (truncate/garbage/slow)"
"$BISTD" stats --port "$port" | grep -q "protocol_errors" \
  || fail "protocol errors were not counted"
say "chaos truncate/garbage/slow: daemon survived, errors typed + counted"

# --- 4. SIGTERM the daemon mid-job: park, restart, recover -----------

# Jobs 1+2 from the backpressure step are still in flight on this spool.
kill -TERM "$daemon_pid"
wait "$daemon_pid" || fail "draining daemon exited non-zero"
daemon_pid=""
[ -f "$work/spool/manifest" ] || fail "drain left no manifest"
start_daemon --workers 1
grep -q "recovered job" "$work/daemon.log" \
  || fail "restarted daemon recovered nothing"
for _ in $(seq 1 200); do
  [ -f "$work/spool/job-1.out" ] && [ -f "$work/spool/job-2.out" ] && break
  sleep 0.1
done
[ -f "$work/spool/job-1.out" ] || fail "recovered job 1 never finished"
[ -f "$work/spool/job-2.out" ] || fail "recovered job 2 never finished"
cmp -s "$work/ref.seq" "$work/spool/job-1.out" \
  || fail "recovered job 1 differs from the uninterrupted run"
cmp -s "$work/ref.seq" "$work/spool/job-2.out" \
  || fail "recovered job 2 differs from the uninterrupted run"
"$BISTD" shutdown --port "$port" >/dev/null
wait "$daemon_pid"; daemon_pid=""
say "SIGTERMed daemon: jobs parked, recovered on restart, bit-identical"

say "PASS"
