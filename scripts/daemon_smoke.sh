#!/usr/bin/env bash
# daemon-smoke: end-to-end gate for the bistd robustness contracts
# (DESIGN.md §11).
#
#  1. Migration bit-identity: a job whose worker is SIGKILLed mid-run is
#     resumed from its checkpoint on a fresh worker and its result is
#     byte-identical to an uninterrupted run's.
#  2. Typed backpressure: with the queue full, Submit is answered with a
#     typed Rejected (exit 1 + reason on stderr), never a hang or drop.
#  3. Chaos: truncated frames, garbage frames and a pathologically slow
#     client leave the daemon serving everyone else.
#  4. Daemon crash-safety: a SIGTERMed daemon parks its jobs (checkpoint
#     + manifest) and exits 0; a restart on the same spool recovers and
#     finishes them, still bit-identical.
#  5. Untrusted payload jobs (protocol v2): a .blif payload job — the
#     daemon never parses it, only the sandboxed worker does — whose
#     worker is SIGKILLed mid-run resumes and produces output
#     byte-identical to a local bistgen run on the same file.
#  6. Payload bombs: oversized, garbage and recursive-.subckt payloads
#     all get typed rejections and the daemon keeps serving.
#  7. Poison-job quarantine: a job that crashes 3 distinct workers
#     (RLIMIT_CPU kills) is quarantined with a typed reply while a
#     co-tenant job completes untouched; the quarantine survives a
#     daemon restart, and an operator release lets the job resume from
#     its kept checkpoint to a bit-identical result.
#
# Run from the repo root (the Makefile does): ./scripts/daemon_smoke.sh

set -u

BISTD=_build/default/bin/bistd.exe
BISTGEN=_build/default/bin/bistgen.exe

say()  { printf 'daemon-smoke: %s\n' "$*"; }
fail() { printf 'daemon-smoke: FAIL: %s\n' "$*" >&2; exit 1; }

dune build bin/bistd.exe bin/bistgen.exe || fail "build failed"
[ -x "$BISTD" ] || fail "missing $BISTD"
[ -x "$BISTGEN" ] || fail "missing $BISTGEN"

work=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT

# Long enough to SIGKILL mid-run (~3.5s), checkpointed every 100ms.
job=(tgen x1488 --seed 7 --trials 2000)

start_daemon() { # extra serve args...
  "$BISTD" serve --port 0 --port-file "$work/port" --spool "$work/spool" \
    --interval 0.1 -v "$@" >> "$work/daemon.log" 2>&1 &
  daemon_pid=$!
  for _ in $(seq 1 50); do
    [ -s "$work/port" ] && break
    sleep 0.1
  done
  [ -s "$work/port" ] || fail "daemon did not announce a port"
  port=$(cat "$work/port")
  rm -f "$work/port"
}

# --- reference: an uninterrupted run ---------------------------------

start_daemon --workers 1
"$BISTD" submit "${job[@]}" --port "$port" --wait -o "$work/ref.seq" \
  2>/dev/null || fail "reference job failed"
"$BISTD" shutdown --port "$port" >/dev/null || fail "shutdown refused"
wait "$daemon_pid" || fail "reference daemon exited non-zero"
daemon_pid=""
[ -s "$work/ref.seq" ] || fail "reference produced no output"
rm -rf "$work/spool"
say "reference run complete"

# --- 1. SIGKILL a worker mid-job: migration must be bit-identical ----

start_daemon --workers 1
"$BISTD" submit "${job[@]}" --port "$port" --wait -o "$work/mig.seq" \
  > "$work/mig.client" 2>&1 &
client=$!
pidfile="$work/spool/job-1.pid"
for _ in $(seq 1 50); do
  [ -s "$pidfile" ] && break
  sleep 0.1
done
[ -s "$pidfile" ] || fail "worker pid file never appeared"
sleep 0.5   # let a few checkpoint legs land
kill -9 "$(cat "$pidfile")" 2>/dev/null || fail "could not SIGKILL the worker"
wait "$client" || fail "migrated job failed: $(cat "$work/mig.client")"
cmp -s "$work/ref.seq" "$work/mig.seq" \
  || fail "migrated result differs from the uninterrupted run"
"$BISTD" stats --port "$port" | grep -q "migrations.default *1" \
  || fail "stats do not record the migration"
say "SIGKILLed worker: job migrated, result bit-identical"

# --- 2. full queue answers with a typed rejection --------------------

# workers=1 is busy only briefly now; saturate the queue instead with a
# fresh long job plus queue-capacity more, then one over.
"$BISTD" shutdown --port "$port" >/dev/null; wait "$daemon_pid"; daemon_pid=""
rm -rf "$work/spool"
start_daemon --workers 1 --queue 1
"$BISTD" submit "${job[@]}" --port "$port" >/dev/null || fail "submit 1 refused"
sleep 0.3   # let it dispatch so the queue is empty again
"$BISTD" submit "${job[@]}" --port "$port" >/dev/null || fail "submit 2 refused"
"$BISTD" submit "${job[@]}" --port "$port" > "$work/rej.out" 2>&1
st=$?
[ "$st" -eq 1 ] || fail "overflow submit exited $st (expected 1)"
grep -q "queue_full" "$work/rej.out" \
  || fail "rejection lacks the typed reason: $(cat "$work/rej.out")"
say "full queue: typed queue-full rejection"

# --- 3. chaos: the daemon survives hostile clients -------------------

# The payload-bomb mode needs queue headroom, so it gets its own leg (6)
# on an idle daemon; here the queue is deliberately saturated.
for mode in truncate garbage slow; do
  "$BISTD" chaos "$mode" --port "$port" >/dev/null \
    || fail "daemon did not survive chaos $mode"
done
"$BISTD" stats --port "$port" | grep -q "protocol_errors" \
  || fail "protocol errors were not counted"
say "chaos truncate/garbage/slow: daemon survived, errors typed + counted"

# --- 4. SIGTERM the daemon mid-job: park, restart, recover -----------

# Jobs 1+2 from the backpressure step are still in flight on this spool.
kill -TERM "$daemon_pid"
wait "$daemon_pid" || fail "draining daemon exited non-zero"
daemon_pid=""
[ -f "$work/spool/manifest" ] || fail "drain left no manifest"
start_daemon --workers 1
grep -q "recovered job" "$work/daemon.log" \
  || fail "restarted daemon recovered nothing"
for _ in $(seq 1 200); do
  [ -f "$work/spool/job-1.out" ] && [ -f "$work/spool/job-2.out" ] && break
  sleep 0.1
done
[ -f "$work/spool/job-1.out" ] || fail "recovered job 1 never finished"
[ -f "$work/spool/job-2.out" ] || fail "recovered job 2 never finished"
cmp -s "$work/ref.seq" "$work/spool/job-1.out" \
  || fail "recovered job 1 differs from the uninterrupted run"
cmp -s "$work/ref.seq" "$work/spool/job-2.out" \
  || fail "recovered job 2 differs from the uninterrupted run"
"$BISTD" shutdown --port "$port" >/dev/null
wait "$daemon_pid"; daemon_pid=""
say "SIGTERMed daemon: jobs parked, recovered on restart, bit-identical"

# --- 5. payload job (protocol v2): migration stays bit-identical -----

# The daemon never parses the payload; only the sandboxed worker does.
# Reference comes from a local bistgen run on the very same file, with
# the daemon's tgen parameters spelled out (submit defaults directed=30).
rm -rf "$work/spool"
"$BISTGEN" convert x1488 -o "$work/x1488.blif" >/dev/null \
  || fail "could not synthesize the .blif payload"
"$BISTGEN" tgen "$work/x1488.blif" --seed 7 --compact-trials 2000 \
  --directed 30 -o "$work/pref.seq" >/dev/null \
  || fail "local reference run on the payload failed"
start_daemon --workers 1
"$BISTD" ping --port "$port" | grep -q "protocol v2" \
  || fail "handshake did not negotiate protocol v2"
"$BISTD" submit tgen --payload "$work/x1488.blif" --seed 7 --trials 2000 \
  --port "$port" --wait -o "$work/pmig.seq" > "$work/pmig.client" 2>&1 &
client=$!
pidfile="$work/spool/job-1.pid"
for _ in $(seq 1 50); do
  [ -s "$pidfile" ] && break
  sleep 0.1
done
[ -s "$pidfile" ] || fail "payload worker pid file never appeared"
sleep 0.5
kill -9 "$(cat "$pidfile")" 2>/dev/null || fail "could not SIGKILL the payload worker"
wait "$client" || fail "migrated payload job failed: $(cat "$work/pmig.client")"
cmp -s "$work/pref.seq" "$work/pmig.seq" \
  || fail "migrated payload result differs from the local bistgen run"
say "payload .blif job: SIGKILLed worker migrated, bit-identical to local run"

# --- 6. payload bombs: typed rejections, daemon keeps serving --------

# Oversized, garbage and recursive-.subckt payloads; the mode's own
# postcondition is a successful Ping on the same daemon.
"$BISTD" chaos payload-bomb --port "$port" >/dev/null \
  || fail "daemon did not survive the payload bombs"
"$BISTD" shutdown --port "$port" >/dev/null
wait "$daemon_pid"; daemon_pid=""
say "payload bombs: typed rejections, daemon kept serving"

# --- 7. poison job: quarantine, restart, release, finish -------------

# Under a 1s CPU rlimit a directed-300 run (~6s CPU) dies with SIGXCPU
# on every attempt; after 3 distinct crashed workers the job must be
# quarantined (typed reply, co-tenant unharmed), survive a restart, and
# on release resume from its kept checkpoint to a bit-identical result.
rm -rf "$work/spool"
"$BISTGEN" tgen "$work/x1488.blif" --seed 7 --compact-trials 2000 \
  --directed 300 -o "$work/pref3.seq" >/dev/null \
  || fail "local reference run for the poison job failed"
start_daemon --workers 2 --worker-cpu 1
"$BISTD" submit tgen --payload "$work/x1488.blif" --seed 7 --trials 2000 \
  --directed 300 --port "$port" --wait > "$work/poison.client" 2>&1 &
poison=$!
"$BISTD" submit tgen s27 --seed 7 --trials 50 --port "$port" --wait \
  > "$work/cotenant.seq" 2> "$work/cotenant.err" \
  || fail "co-tenant job failed alongside the poison job: $(cat "$work/cotenant.err")"
[ -s "$work/cotenant.seq" ] || fail "co-tenant job produced no output"
if wait "$poison"; then fail "poison job unexpectedly succeeded"; fi
grep -q "quarantined" "$work/poison.client" \
  || fail "poison client got no typed quarantine reply: $(cat "$work/poison.client")"
"$BISTD" quarantine list --port "$port" > "$work/quar.out" \
  || fail "quarantine list failed"
grep -q "^job 1 .*crashes=3" "$work/quar.out" \
  || fail "quarantine list does not show job 1: $(cat "$work/quar.out")"
kill -TERM "$daemon_pid"
wait "$daemon_pid" || fail "daemon with a quarantined job did not drain cleanly"
daemon_pid=""
start_daemon --workers 1   # no CPU limit: the released job must finish
"$BISTD" quarantine list --port "$port" | grep -q "^job 1 " \
  || fail "quarantine did not survive the restart"
"$BISTD" quarantine release 1 --port "$port" | grep -q "released job 1" \
  || fail "quarantine release refused"
for _ in $(seq 1 200); do
  [ -f "$work/spool/job-1.out" ] && break
  sleep 0.1
done
[ -f "$work/spool/job-1.out" ] || fail "released job never finished"
cmp -s "$work/pref3.seq" "$work/spool/job-1.out" \
  || fail "released job's result differs from the local bistgen run"
"$BISTD" shutdown --port "$port" >/dev/null
wait "$daemon_pid"; daemon_pid=""
say "poison job: quarantined after 3 crashes, survived restart, released, bit-identical"

say "PASS"
