#!/usr/bin/env bash
# sat-smoke: end-to-end gate for the SAT-backed exact untestability
# layer (DESIGN.md section 12).
#
# Three checks, all deterministic:
#   1. s27 --sat: every collapsed fault is refuted by a concrete test —
#      s27 has no untestable faults and the exact pass must say so with
#      zero warnings.
#   2. x298 --sat: the known untestable set is proved (139 faults at
#      frame bound 6; the structural prover alone finds none of them),
#      the rest are refuted, nothing is left unknown, and at least one
#      refutation came from a SAT-derived, simulator-validated test.
#   3. The bounded-frame semantics on the boundary fault N6/0: proved
#      propagation-blocked within 4 frames, testable with a validated
#      6-vector sequence at 6 frames — and that sequence, fault-simulated
#      end to end, detects faults the short-bound proof says it cannot.
#
# Run from the repo root (the Makefile does): ./scripts/sat_smoke.sh

set -u

BISTGEN=_build/default/bin/bistgen.exe
LINT=_build/default/bin/lint.exe

say()  { printf 'sat-smoke: %s\n' "$*"; }
fail() { printf 'sat-smoke: FAIL: %s\n' "$*" >&2; exit 1; }

dune build bin/bistgen.exe bin/lint.exe || fail "build failed"
[ -x "$BISTGEN" ] || fail "missing $BISTGEN"
[ -x "$LINT" ]    || fail "missing $LINT"

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# --- 1. s27: exact pass, clean verdict -------------------------------

out=$("$LINT" s27 --sat --sat-frames 6 2>&1); st=$?
[ $st -eq 0 ] || fail "lint s27 --sat exited $st (expected 0): $out"
grep -q "32 of 32 collapsed faults refuted" <<<"$out" \
  || fail "s27: expected all 32 faults refuted, got: $out"
grep -q "untestable-faults" <<<"$out" \
  && fail "s27: spurious untestable finding: $out"
say "s27: all 32 faults refuted, no untestable findings"

# --- 2. x298: the known untestable set, proved exactly ---------------

out=$("$LINT" x298 --sat --sat-frames 6 --max-warnings 1 2>&1); st=$?
[ $st -eq 0 ] || fail "lint x298 --sat exited $st (expected 0): $out"
grep -q "139 faults proved untestable" <<<"$out" \
  || fail "x298: expected 139 proved untestable at 6 frames: $out"
grep -q "24 SAT-unreachable, 115 SAT-blocked" <<<"$out" \
  || fail "x298: wrong proof split: $out"
grep -q "351 of 490 collapsed faults refuted" <<<"$out" \
  || fail "x298: expected 351 refuted: $out"
grep -qE "\([1-9][0-9]* via SAT-derived tests\)" <<<"$out" \
  || fail "x298: expected at least one SAT-derived test: $out"
grep -q "unknown-testability" <<<"$out" \
  && fail "x298: unknown residue should be empty at 6 frames: $out"
say "x298: 139 proved (24 unreachable + 115 blocked), 351 refuted, 0 unknown"

# --- 3. the frame-bound boundary, generate-and-verify ----------------
#
# N6/0 sits exactly on the bound: no 4-frame sequence propagates it, a
# 6-frame one does. satgen validates its model against the fault
# simulator internally; the faultsim re-run closes the loop externally.

out=$("$BISTGEN" satgen x298 --fault N6/0 --frames 4 2>&1); st=$?
[ $st -eq 0 ] || fail "satgen N6/0 at 4 frames exited $st: $out"
grep -q "proved untestable (blocked" <<<"$out" \
  || fail "N6/0 at 4 frames: expected a blocked proof: $out"

out=$("$BISTGEN" satgen x298 --fault N6/0 --frames 6 -o "$work/n6.seq" 2>&1); st=$?
[ $st -eq 0 ] || fail "satgen N6/0 at 6 frames exited $st: $out"
grep -q "testable — 6-vector test (simulator-validated)" <<<"$out" \
  || fail "N6/0 at 6 frames: expected a validated 6-vector test: $out"

out=$("$BISTGEN" faultsim x298 --seq "$work/n6.seq" 2>&1) \
  || fail "faultsim of the SAT-derived sequence failed: $out"
grep -qE "detected [1-9][0-9]* / 490 faults" <<<"$out" \
  || fail "SAT-derived sequence detects nothing: $out"
say "N6/0: blocked within 4 frames, SAT test at 6 frames verified by faultsim"

say "PASS"
