#!/usr/bin/env bash
# interrupt-smoke: end-to-end gate for the headline resilience invariant.
#
# An interrupted-then-resumed run must produce a bit-identical result to
# an uninterrupted one, whether the preemption came from --deadline or
# from SIGTERM; a damaged or mismatched checkpoint must be a clean exit
# 2, never a crash or a silently wrong resume.
#
# Run from the repo root (the Makefile does): ./scripts/interrupt_smoke.sh

set -u

BISTGEN=_build/default/bin/bistgen.exe
INJECT=_build/default/bin/inject.exe

say()  { printf 'interrupt-smoke: %s\n' "$*"; }
fail() { printf 'interrupt-smoke: FAIL: %s\n' "$*" >&2; exit 1; }

dune build bin/bistgen.exe bin/inject.exe || fail "build failed"
[ -x "$BISTGEN" ] || fail "missing $BISTGEN"
[ -x "$INJECT" ]  || fail "missing $INJECT"

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# --- tgen: deadline preemption loop ----------------------------------
#
# The deadline is progress-gated: it only fires once at least one round
# has committed, so even a microscopic budget is guaranteed to make
# forward progress each leg and the resume loop must terminate.

tgen_deadline_loop() {
  local circuit=$1 deadline=$2
  local ref="$work/$circuit.ref" out="$work/$circuit.seq" ckpt="$work/$circuit.ckpt"
  local legs=0 preempts=0 st resume=()

  "$BISTGEN" tgen "$circuit" --seed 7 -j 1 -o "$ref" >/dev/null 2>&1 \
    || fail "$circuit: reference run failed"

  while :; do
    legs=$((legs + 1))
    [ "$legs" -le 500 ] || fail "$circuit: resume loop did not converge"
    "$BISTGEN" tgen "$circuit" --seed 7 -j 1 -o "$out" \
      --deadline "$deadline" --checkpoint "$ckpt" ${resume[@]+"${resume[@]}"} \
      >/dev/null 2>&1
    st=$?
    case $st in
      0) break ;;
      3)
        preempts=$((preempts + 1))
        [ -f "$ckpt" ] || fail "$circuit: exit 3 but no checkpoint written"
        resume=(--resume "$ckpt")
        ;;
      *) fail "$circuit: unexpected exit $st on leg $legs" ;;
    esac
  done

  [ "$preempts" -ge 1 ] || fail "$circuit: deadline never preempted (deadline too long?)"
  [ ! -f "$ckpt" ] || fail "$circuit: checkpoint not removed after success"
  cmp -s "$ref" "$out" || fail "$circuit: resumed result differs from uninterrupted run"
  say "tgen $circuit: bit-identical after $preempts deadline preemption(s), $legs legs"
}

tgen_deadline_loop s27  0.0001
tgen_deadline_loop x344 0.05

# --- PPSFP core: parallel deadline preemption, cross-kernel resume ---
#
# The fault simulator's internal representation must be invisible to
# checkpoint/resume: payloads carry engine-round state, not simulator
# state. The first leg runs under the old packed kernel and gets
# preempted; every resume leg runs under the default PPSFP kernel with
# the parallel path forced on (BIST_SHARD_MIN=0 shards even on a 1-core
# host). The final output must be cmp-identical to the uninterrupted
# sequential reference from the loop above — one assertion covering
# interrupt/resume, kernel migration, and --jobs width at once.

ppsfp_circuit=x344
ref="$work/$ppsfp_circuit.ref"   # written by the deadline loop above
out="$work/ppsfp.seq"
ckpt="$work/ppsfp.ckpt"
legs=0 preempts=0 resume=()
while :; do
  legs=$((legs + 1))
  [ "$legs" -le 500 ] || fail "ppsfp: resume loop did not converge"
  if [ "$preempts" -eq 0 ]; then kernel=packed; else kernel=ppsfp; fi
  BIST_SHARD_MIN=0 BIST_FSIM=$kernel \
    "$BISTGEN" tgen "$ppsfp_circuit" --seed 7 -j 2 -o "$out" \
    --deadline 0.05 --checkpoint "$ckpt" ${resume[@]+"${resume[@]}"} \
    >/dev/null 2>&1
  st=$?
  case $st in
    0) break ;;
    3)
      preempts=$((preempts + 1))
      [ -f "$ckpt" ] || fail "ppsfp: exit 3 but no checkpoint written"
      resume=(--resume "$ckpt")
      ;;
    *) fail "ppsfp: unexpected exit $st on leg $legs" ;;
  esac
done
[ "$preempts" -ge 1 ] || fail "ppsfp: deadline never preempted"
[ ! -f "$ckpt" ] || fail "ppsfp: checkpoint not removed after success"
cmp -s "$ref" "$out" \
  || fail "ppsfp: parallel interrupted run differs from sequential reference"
say "tgen $ppsfp_circuit (ppsfp, -j 2, sharding forced): bit-identical after $preempts preemption(s), packed-kernel checkpoint resumed"

# --- tgen: SIGTERM preemption ----------------------------------------

sigterm_circuit=x344
ref="$work/$sigterm_circuit.ref"   # written by the deadline loop above
out="$work/sigterm.seq"
ckpt="$work/sigterm.ckpt"

killed=0
for delay in 0.10 0.05 0.02; do
  rm -f "$ckpt" "$out"
  "$BISTGEN" tgen "$sigterm_circuit" --seed 7 -j 1 -o "$out" \
    --checkpoint "$ckpt" >/dev/null 2>&1 &
  pid=$!
  sleep "$delay"
  kill -TERM "$pid" 2>/dev/null
  wait "$pid"
  st=$?
  if [ "$st" -eq 3 ]; then killed=1; break; fi
  # The run finished before the signal landed; retry with a shorter delay.
  [ "$st" -eq 0 ] || fail "SIGTERM leg exited $st (expected 0 or 3)"
done
[ "$killed" -eq 1 ] || fail "could not preempt $sigterm_circuit with SIGTERM"
[ -f "$ckpt" ] || fail "SIGTERM: exit 3 but no checkpoint written"

# A checkpoint interrupted mid-write would fail the CRC; keep a copy for
# the corruption check below, then resume to completion.
cp "$ckpt" "$work/valid.ckpt"
legs=0
while :; do
  legs=$((legs + 1))
  [ "$legs" -le 500 ] || fail "SIGTERM resume loop did not converge"
  "$BISTGEN" tgen "$sigterm_circuit" --seed 7 -j 1 -o "$out" \
    --checkpoint "$ckpt" --resume "$ckpt" >/dev/null 2>&1 && break
  st=$?
  [ "$st" -eq 3 ] || fail "SIGTERM resume: unexpected exit $st"
done
cmp -s "$ref" "$out" || fail "SIGTERM: resumed result differs from uninterrupted run"
say "tgen $sigterm_circuit: bit-identical after SIGTERM (resumed in $legs leg(s))"

# --- damaged / mismatched checkpoints are typed failures -------------

truncated="$work/truncated.ckpt"
head -c 40 "$work/valid.ckpt" > "$truncated"
"$BISTGEN" tgen "$sigterm_circuit" --seed 7 -j 1 -o "$work/x.seq" \
  --resume "$truncated" >/dev/null 2>&1
[ $? -eq 2 ] || fail "truncated checkpoint: expected exit 2"

"$BISTGEN" tgen s27 --seed 7 -j 1 -o "$work/x.seq" \
  --resume "$work/valid.ckpt" >/dev/null 2>&1
[ $? -eq 2 ] || fail "wrong-circuit checkpoint: expected exit 2"
say "damaged and mismatched checkpoints exit 2"

# --- inject: deadline preemption loop --------------------------------
#
# The campaign may legitimately exit 1 (escapes found); determinism means
# the resumed run's report AND exit code equal the uninterrupted run's.

inj_args=(s27 x298 --count 120 --seed 5 -j 1)
inj_ref="$work/inject.ref"
"$INJECT" "${inj_args[@]}" > "$inj_ref" 2>/dev/null
inj_ref_st=$?
[ "$inj_ref_st" -eq 0 ] || [ "$inj_ref_st" -eq 1 ] \
  || fail "inject reference exited $inj_ref_st"

ckpt="$work/inject.ckpt"
out="$work/inject.out"
legs=0 preempts=0 resume=()
while :; do
  legs=$((legs + 1))
  [ "$legs" -le 500 ] || fail "inject resume loop did not converge"
  "$INJECT" "${inj_args[@]}" --deadline 0.05 --checkpoint "$ckpt" \
    ${resume[@]+"${resume[@]}"} > "$out" 2>/dev/null
  st=$?
  case $st in
    3)
      preempts=$((preempts + 1))
      [ -f "$ckpt" ] || fail "inject: exit 3 but no checkpoint written"
      resume=(--resume "$ckpt")
      ;;
    *) break ;;
  esac
done
[ "$st" -eq "$inj_ref_st" ] || fail "inject: final exit $st, reference exited $inj_ref_st"
[ "$preempts" -ge 1 ] || fail "inject: deadline never preempted"
[ ! -f "$ckpt" ] || fail "inject: checkpoint not removed after completion"
cmp -s "$inj_ref" "$out" || fail "inject: resumed report differs from uninterrupted run"
say "inject s27+x298: identical report after $preempts deadline preemption(s)"

# --- double signal is a force-quit (exit 130) ------------------------
#
# One signal asks for a cooperative checkpoint-and-exit-3; a second
# means "now" and must exit 130 immediately, bistgen and inject alike.
# SIGTERM then SIGINT back-to-back: both feed the same counting handler,
# and unlike a repeated SIGTERM the pair cannot coalesce in the kernel,
# so the second is already pending before the cooperative exit can run.

double_signal() {
  local label=$1; shift
  local st=0 killed=0 delay pid
  for delay in 0.30 0.15 0.05; do
    "$@" >/dev/null 2>&1 &
    pid=$!
    sleep "$delay"
    kill -TERM "$pid" 2>/dev/null
    kill -INT "$pid" 2>/dev/null
    wait "$pid"
    st=$?
    if [ "$st" -eq 130 ]; then killed=1; break; fi
    # Finished (0/1) before the signals landed; retry with a shorter
    # delay. Exit 3 would mean the force-quit lost to the cooperative
    # path even with both signals pending — a real regression.
    case $st in 0|1) ;; *) fail "$label: double signal exited $st" ;; esac
  done
  [ "$killed" -eq 1 ] || fail "$label: double signal never forced exit 130"
  say "$label: double signal force-quits with exit 130"
}

double_signal "bistgen" "$BISTGEN" tgen x1488 --seed 7 -j 1 \
  --compact-trials 5000 -o "$work/ds.seq" --checkpoint "$work/ds.ckpt"
double_signal "inject" "$INJECT" x1488 --count 4000 --seed 5 -j 1 \
  --checkpoint "$work/ds-inject.ckpt"

say "PASS"
