bin/tables.ml: Array Bist_harness Printf Sys
