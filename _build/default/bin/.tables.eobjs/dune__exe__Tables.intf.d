bin/tables.mli:
