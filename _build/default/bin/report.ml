(* Regenerate EXPERIMENTS.md from a full suite run.
   Usage: report [OUTPUT.md] [circuit ...] *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let output, circuits =
    match args with
    | [] -> ("EXPERIMENTS.md", None)
    | out :: rest when Filename.check_suffix out ".md" ->
      (out, if rest = [] then None else Some rest)
    | names -> ("EXPERIMENTS.md", Some names)
  in
  let results =
    Bist_harness.Experiment.run_suite ?circuits
      ~progress:(fun line -> Printf.eprintf "%s\n%!" line)
      ()
  in
  let robustness =
    match circuits with
    | Some _ -> "" (* partial runs skip the appendix *)
    | None ->
      Printf.eprintf "[robustness] re-running x298/x344/x382 under 3 seeds...\n%!";
      let rows =
        List.map
          (fun name ->
            Bist_harness.Experiment.robustness
              (Option.get (Bist_bench.Registry.find name)))
          [ "x298"; "x344"; "x382" ]
      in
      "\n" ^ Bist_harness.Markdown.robustness_md rows
  in
  let oc = open_out_bin output in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Bist_harness.Markdown.experiments_md results);
      output_string oc robustness);
  Printf.printf "wrote %s\n" output
