bin/report.ml: Array Bist_bench Bist_harness Filename Fun List Option Printf Sys
