bin/report.mli:
