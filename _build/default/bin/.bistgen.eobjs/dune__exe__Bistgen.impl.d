bin/bistgen.ml: Arg Bist_baselines Bist_bench Bist_circuit Bist_core Bist_fault Bist_harness Bist_hw Bist_logic Bist_sim Bist_tgen Bist_util Cmd Cmdliner Format Fun List Printf Sys Term
