bin/bistgen.mli:
