(* Quickstart: the whole scheme on one page.

   Parse a circuit, take a deterministic test sequence T0, derive the
   stored-sequence set S, and check that the expanded sequences preserve
   T0's fault coverage. Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A circuit: s27, the ISCAS-89 benchmark the paper uses as its
     worked example (4 inputs, 3 flip-flops, 1 output). *)
  let circuit = Bist_bench.S27.circuit () in
  Format.printf "circuit: %a@." Bist_circuit.Stats.pp
    (Bist_circuit.Stats.of_netlist circuit);

  (* 2. The fault universe: collapsed single stuck-at faults. *)
  let universe = Bist_fault.Universe.collapsed circuit in
  Format.printf "fault universe: %d collapsed faults@."
    (Bist_fault.Universe.size universe);

  (* 3. A deterministic test sequence T0 — here the paper's own. *)
  let t0 = Bist_bench.S27.t0 () in
  let table = Bist_fault.Fault_table.compute universe t0 in
  Format.printf "T0: %d vectors, detects %d faults@."
    (Bist_logic.Tseq.length t0)
    (Bist_fault.Fault_table.num_detected table);

  (* 4. Sequence expansion (Table 1 of the paper): a stored sequence S of
     length L expands on-chip into Sexp of length 8nL. *)
  let s = Bist_bench.S27.table1_s () in
  let sexp = Bist_core.Ops.expand ~n:2 s in
  Format.printf "@.Table 1 example: S = (%s), n = 2:@."
    (String.concat ", " (Bist_logic.Tseq.to_strings s));
  Format.printf "Sexp (%d vectors) = %s@."
    (Bist_logic.Tseq.length sexp)
    (String.concat " " (Bist_logic.Tseq.to_strings sexp));

  (* 5. The full scheme: Procedure 1 + static compaction, sweeping n. *)
  let run = Bist_core.Scheme.best_n ~seed:7 ~t0 universe in
  Format.printf
    "@.best n = %d: %d stored sequences, total %d vectors (%.0f%% of T0), \
     longest %d (%.0f%% of T0)@."
    run.Bist_core.Scheme.n run.after.count run.after.total_length
    (100.0 *. Bist_core.Scheme.ratio_total run)
    run.after.max_length
    (100.0 *. Bist_core.Scheme.ratio_max run);
  Format.printf "at-speed test length: %d vectors; coverage preserved: %b@."
    run.expanded_total_length run.coverage_verified;
  List.iteri
    (fun i s ->
      Format.printf "  S%d = (%s)@." (i + 1)
        (String.concat ", " (Bist_logic.Tseq.to_strings s)))
    run.sequences
