(* Scenario: diagnosing a testability problem before wasting ATPG time.

   A circuit with an X-locked state loop silently caps fault coverage:
   no input sequence can ever initialize the loop under three-valued
   simulation, so every fault needing it is undetectable. The structural
   linter finds this statically; this example shows the lint report, the
   corroborating fault-simulation evidence, and the failing synchronizing-
   sequence search — then the fixed circuit passing all three. *)

let broken_text =
  "# accumulator without a reset\n\
   INPUT(d)\n\
   OUTPUT(p)\n\
   q = DFF(nx)\n\
   nx = XOR(q, d)\n\
   p = BUF(q)\n\
   orphan = NOT(d)\n"

let fixed_text =
  "# accumulator with a synchronous clear\n\
   INPUT(d)\n\
   INPUT(clr)\n\
   OUTPUT(p)\n\
   OUTPUT(dbg)\n\
   q = DFF(nx)\n\
   nclr = NOT(clr)\n\
   x = XOR(q, d)\n\
   nx = AND(x, nclr)\n\
   p = BUF(q)\n\
   dbg = NOT(d)\n"

let examine name text =
  let circuit = Bist_circuit.Bench_parser.parse_string ~name text in
  Format.printf "=== %s ===@." name;
  let report = Bist_circuit.Validate.check circuit in
  Format.printf "%a" (Bist_circuit.Validate.pp circuit) report;

  (* Corroborate with dynamics: coverage ceiling under heavy random test. *)
  let universe = Bist_fault.Universe.collapsed circuit in
  let rng = Bist_util.Rng.create 7 in
  let seq =
    Bist_logic.Tseq.random_binary rng
      ~width:(Bist_circuit.Netlist.num_inputs circuit)
      ~length:500
  in
  let outcome = Bist_fault.Fsim.run ~stop_when_all_detected:true universe seq in
  Format.printf "random 500-vector coverage: %d / %d faults@."
    (Bist_util.Bitset.cardinal outcome.Bist_fault.Fsim.detected)
    (Bist_fault.Universe.size universe);

  (* And with the synchronizing-sequence search. *)
  let rng = Bist_util.Rng.create 7 in
  (match Bist_hw.Sync.find_sequence ~attempts:16 ~max_length:32 ~rng circuit with
   | None -> Format.printf "synchronizing sequence: none found (as predicted)@."
   | Some s ->
     Format.printf "synchronizing sequence: %s@."
       (String.concat " " (Bist_logic.Tseq.to_strings s)));
  Format.printf "@."

let () =
  examine "broken" broken_text;
  examine "fixed" fixed_text
