examples/s27_walkthrough.ml: Bist_bench Bist_core Bist_fault Bist_harness Bist_logic Bist_util Format List Option String
