examples/memory_sizing.mli:
