examples/atspeed_session.ml: Bist_bench Bist_circuit Bist_core Bist_fault Bist_hw Bist_logic Bist_util Format List String
