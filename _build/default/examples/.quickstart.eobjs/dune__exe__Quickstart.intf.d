examples/quickstart.mli:
