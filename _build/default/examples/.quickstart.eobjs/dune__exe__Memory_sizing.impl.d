examples/memory_sizing.ml: Bist_bench Bist_circuit Bist_core Bist_fault Bist_hw Bist_logic Bist_tgen Bist_util Format List Option Printf
