examples/diagnose.ml: Bist_circuit Bist_fault Bist_hw Bist_logic Bist_util Format String
