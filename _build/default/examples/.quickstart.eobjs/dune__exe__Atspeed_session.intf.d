examples/atspeed_session.mli:
