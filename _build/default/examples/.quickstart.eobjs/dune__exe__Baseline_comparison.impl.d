examples/baseline_comparison.ml: Bist_baselines Bist_bench Bist_core Bist_fault Bist_logic Bist_tgen Bist_util Format List Option Printf
