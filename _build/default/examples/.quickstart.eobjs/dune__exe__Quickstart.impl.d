examples/quickstart.ml: Bist_bench Bist_circuit Bist_core Bist_fault Bist_logic Format List String
