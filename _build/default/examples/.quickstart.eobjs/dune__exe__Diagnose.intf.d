examples/diagnose.mli:
