(* The paper's Section 3.1 walkthrough, reproduced step by step on s27.

   The paper prints (Table 2) a 10-vector sequence T0 and the time unit
   at which each of s27's 32 faults is first detected, then runs
   Procedure 2 for the fault with the latest detection time (f10,
   udet = 9) with n = 1, finding the window T0[6,9] and compacting it to
   the stored sequence (1001, 0000). This example replays each step and
   prints the same artifacts. *)

module Tseq = Bist_logic.Tseq

let show seq = String.concat ", " (Tseq.to_strings seq)

let () =
  let circuit = Bist_bench.S27.circuit () in
  let universe = Bist_fault.Universe.collapsed circuit in
  let t0 = Bist_bench.S27.t0 () in

  (* Table 2: detection times under T0. The paper's counts per time unit
     are 9, 4, 1, 11, 2, 3, 2 at u = 1, 2, 4, 5, 6, 8, 9. *)
  let table = Bist_fault.Fault_table.compute universe t0 in
  Format.printf "Table 2 (detection times under T0):@.%s@."
    (Bist_fault.Fault_table.render table);
  Format.printf "total detected: %d of %d@.@."
    (Bist_fault.Fault_table.num_detected table)
    (Bist_fault.Universe.size universe);

  (* Procedure 2 for the latest-detected fault, n = 1. *)
  let targets = Bist_fault.Fault_table.detected table in
  let fid =
    match Bist_fault.Fault_table.argmax_udet table ~targets with
    | Some id -> id
    | None -> assert false
  in
  let fault = Bist_fault.Universe.get universe fid in
  let udet = Option.get (Bist_fault.Fault_table.udet table fid) in
  Format.printf "target fault (the paper's f10 role): %s, udet = %d@."
    (Bist_fault.Fault.name circuit fault)
    udet;
  let rng = Bist_util.Rng.create 42 in
  let outcome = Bist_core.Procedure2.find ~rng ~n:1 ~t0 ~udet circuit fault in
  Format.printf
    "Procedure 2: window T0[%d,%d] (the paper finds T0[6,9]), after \
     omission: (%s)@.@."
    outcome.Bist_core.Procedure2.ustart udet
    (show outcome.subsequence);

  (* Procedure 1 end to end with n = 1: the paper derives 3 sequences,
     the first covering 26 of the 32 faults. *)
  let rng = Bist_util.Rng.create 42 in
  let result = Bist_core.Procedure1.run ~rng ~n:1 ~t0 universe in
  Format.printf "Procedure 1 (n = 1) selected %d sequences:@."
    (List.length result.Bist_core.Procedure1.selected);
  List.iteri
    (fun i (sel : Bist_core.Procedure1.selected) ->
      Format.printf "  S%d = (%s), seeded by %s, newly covers %d faults@."
        (i + 1) (show sel.seq)
        (Bist_fault.Fault.name circuit (Bist_fault.Universe.get universe sel.target_fault))
        (Bist_util.Bitset.cardinal sel.newly_detected))
    result.selected;

  (* Static compaction of S (Section 3.2). *)
  let post =
    Bist_core.Postprocess.run ~n:1 ~targets:result.t0_detected universe
      (Bist_core.Procedure1.sequences result)
  in
  Format.printf "after static compaction: %d sequences (%d dropped)@."
    (List.length post.Bist_core.Postprocess.kept)
    post.dropped;

  (* Figure 1 for this run. *)
  Format.printf "@.%s" (Bist_harness.Figure1.render_s27 ())
