(* Scenario: the paper's Section-1 comparison, measured.

   On one circuit, contrast the four ways of generating at-speed tests:
   pure LFSR BIST, LFSR with the hold option [3] (no guarantee of
   coverage), partitioning T0 into separately-loaded blocks, storing all
   of T0, and the paper's subsequence-expansion scheme (both guarantee
   T0's coverage). *)

let () =
  let entry = Option.get (Bist_bench.Registry.find "x298") in
  let circuit = entry.circuit () in
  let universe = Bist_fault.Universe.collapsed circuit in
  let total = Bist_fault.Universe.size universe in

  let rng = Bist_util.Rng.create 99 in
  let t0_raw, _ = Bist_tgen.Engine.generate ~rng universe in
  let t0, _ = Bist_tgen.Compaction.compact ~max_trials:200 universe t0_raw in
  let t0_len = Bist_logic.Tseq.length t0 in
  let t0_detected =
    (Bist_fault.Fsim.run ~stop_when_all_detected:true universe t0)
      .Bist_fault.Fsim.detected
    |> Bist_util.Bitset.cardinal
  in
  Format.printf "%s: %d faults; T0 has %d vectors and detects %d@.@."
    entry.name total t0_len t0_detected;

  let pct d = 100.0 *. float_of_int d /. float_of_int total in

  (* LFSR baselines at the same at-speed budget the scheme will use. *)
  let run = Bist_core.Scheme.best_n ~seed:5 ~t0 universe in
  let budget = max run.Bist_core.Scheme.expanded_total_length (8 * t0_len) in
  List.iter
    (fun hold ->
      let r = Bist_baselines.Lfsr_bist.evaluate universe ~cycles:budget ~hold in
      Format.printf
        "LFSR BIST%-12s: %6d at-speed cycles, no loading, detects %4d (%.1f%%)@."
        (if hold = 1 then "" else Printf.sprintf " (hold=%d)" hold)
        budget r.Bist_baselines.Lfsr_bist.detected
        (pct r.detected))
    [ 1; 2; 4 ];

  (* Full load of T0. *)
  let fl = Bist_baselines.Full_load.evaluate universe ~t0 in
  Format.printf
    "full load of T0      : %6d at-speed cycles, load %d, memory %d words, detects %4d (%.1f%%)@."
    fl.Bist_baselines.Full_load.at_speed_cycles fl.load_cycles fl.memory_words
    fl.detected (pct fl.detected);

  (* Partitioned loading. *)
  List.iter
    (fun block ->
      let p = Bist_baselines.Partition.evaluate universe ~t0 ~block in
      Format.printf
        "partition (B=%3d)    : load %d (>=|T0|), max block %d, coverage preserved: %b@."
        block p.Bist_baselines.Partition.total_loaded p.max_block_length
        p.coverage_preserved)
    [ 16; 32 ];

  (* Encoded storage of T0 ([5]): smaller memory, but the decoder cannot
     sustain one vector per functional clock. *)
  let _, enc = Bist_baselines.Encoding.encode t0 in
  Format.printf
    "encoded T0 storage   : %d bits vs %d raw (%.0f%%), ~%.1f decode cycles/vector (not at-speed)@."
    enc.Bist_baselines.Encoding.encoded_bits enc.raw_bits
    (100.0 *. enc.compression_ratio)
    enc.decode_cycles_per_vector;

  (* The paper's scheme. *)
  Format.printf
    "subsequence expansion: %6d at-speed cycles, load %d (%.0f%% of |T0|), \
     memory %d words (%.0f%%), coverage preserved: %b@."
    run.expanded_total_length run.after.total_length
    (100.0 *. Bist_core.Scheme.ratio_total run)
    run.after.max_length
    (100.0 *. Bist_core.Scheme.ratio_max run)
    run.coverage_verified
