(** Netlist cleanup passes.

    Real netlists (and our synthetic ones) contain logic that only wastes
    test-generation effort: constants feeding gates, buffer chains, logic
    observable from no output. These classic passes remove it while
    preserving the circuit's three-valued sequential behaviour exactly —
    the test suite checks optimized and original circuits cycle-for-cycle
    on random sequences.

    Flip-flop outputs are never treated as constants (their first-cycle
    value is X even when their D input is constant), so the passes are
    sound for test generation. *)

val constant_propagate : Netlist.t -> Netlist.t
(** Propagate [Const0]/[Const1] gates: gates with a controlling constant
    input become constants; non-controlling constant inputs are dropped
    (an XOR input of 1 toggles the gate's inversion); single-input
    leftovers become BUF/NOT; buffers are bypassed. Primary outputs and
    flip-flops are preserved (a constant PO becomes a constant gate). *)

val sweep_unobservable : Netlist.t -> Netlist.t
(** Remove every node with no path to a primary output (crossing
    flip-flops). Primary inputs are kept even when useless, so the
    interface is unchanged. *)

val cleanup : Netlist.t -> Netlist.t
(** {!constant_propagate} followed by {!sweep_unobservable}. *)
