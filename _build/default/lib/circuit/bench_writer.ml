let to_string c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Netlist.circuit_name c));
  Buffer.add_string buf
    (Printf.sprintf "# %d inputs, %d outputs, %d flip-flops, %d gates\n"
       (Netlist.num_inputs c) (Netlist.num_outputs c) (Netlist.num_dffs c)
       (Netlist.num_gates c));
  Array.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Netlist.name c n)))
    (Netlist.inputs c);
  Array.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (Netlist.name c n)))
    (Netlist.outputs c);
  for n = 0 to Netlist.size c - 1 do
    let kind = Netlist.kind c n in
    if kind <> Gate.Input then begin
      let args =
        Netlist.fanins c n |> Array.to_list
        |> List.map (Netlist.name c)
        |> String.concat ", "
      in
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n" (Netlist.name c n) (Gate.kind_name kind) args)
    end
  done;
  Buffer.contents buf

let to_file c path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string c))
