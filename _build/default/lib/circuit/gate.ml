type kind =
  | Input
  | Dff
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Const0
  | Const1

let kind_name = function
  | Input -> "INPUT"
  | Dff -> "DFF"
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Const0 -> "CONST0"
  | Const1 -> "CONST1"

let kind_of_name s =
  match String.uppercase_ascii s with
  | "INPUT" -> Some Input
  | "DFF" -> Some Dff
  | "BUF" | "BUFF" -> Some Buf
  | "NOT" | "INV" -> Some Not
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "CONST0" -> Some Const0
  | "CONST1" -> Some Const1
  | _ -> None

let arity_ok kind n =
  match kind with
  | Input | Const0 | Const1 -> n = 0
  | Dff | Buf | Not -> n = 1
  | And | Nand | Or | Nor | Xor | Xnor -> n >= 2

let is_combinational = function
  | Input | Dff -> false
  | Buf | Not | And | Nand | Or | Nor | Xor | Xnor | Const0 | Const1 -> true

let check kind inputs =
  if not (arity_ok kind (Array.length inputs)) then
    invalid_arg
      (Printf.sprintf "Gate.eval: %s with %d fanins" (kind_name kind) (Array.length inputs))

let fold_binop op seed inputs =
  let acc = ref seed in
  for i = 0 to Array.length inputs - 1 do
    acc := op !acc inputs.(i)
  done;
  !acc

let eval kind inputs =
  check kind inputs;
  let module T = Bist_logic.Ternary in
  match kind with
  | Input | Dff -> invalid_arg "Gate.eval: not combinational"
  | Const0 -> T.Zero
  | Const1 -> T.One
  | Buf -> inputs.(0)
  | Not -> T.not_ inputs.(0)
  | And -> fold_binop T.and_ T.One inputs
  | Nand -> T.not_ (fold_binop T.and_ T.One inputs)
  | Or -> fold_binop T.or_ T.Zero inputs
  | Nor -> T.not_ (fold_binop T.or_ T.Zero inputs)
  | Xor -> fold_binop T.xor T.Zero inputs
  | Xnor -> T.not_ (fold_binop T.xor T.Zero inputs)

let eval_packed kind inputs =
  check kind inputs;
  let module P = Bist_logic.Packed in
  match kind with
  | Input | Dff -> invalid_arg "Gate.eval_packed: not combinational"
  | Const0 -> P.all Bist_logic.Ternary.Zero
  | Const1 -> P.all Bist_logic.Ternary.One
  | Buf -> inputs.(0)
  | Not -> P.not_ inputs.(0)
  | And -> fold_binop P.and_ (P.all Bist_logic.Ternary.One) inputs
  | Nand -> P.not_ (fold_binop P.and_ (P.all Bist_logic.Ternary.One) inputs)
  | Or -> fold_binop P.or_ (P.all Bist_logic.Ternary.Zero) inputs
  | Nor -> P.not_ (fold_binop P.or_ (P.all Bist_logic.Ternary.Zero) inputs)
  | Xor -> fold_binop P.xor (P.all Bist_logic.Ternary.Zero) inputs
  | Xnor -> P.not_ (fold_binop P.xor (P.all Bist_logic.Ternary.Zero) inputs)

let controlling_value = function
  | And | Nand -> Some Bist_logic.Ternary.Zero
  | Or | Nor -> Some Bist_logic.Ternary.One
  | Input | Dff | Buf | Not | Xor | Xnor | Const0 | Const1 -> None

let inversion = function
  | Not | Nand | Nor | Xnor -> true
  | Input | Dff | Buf | And | Or | Xor | Const0 | Const1 -> false
