(** Structural circuit statistics for reports and the synthetic-benchmark
    calibration. *)

type t = {
  name : string;
  num_inputs : int;
  num_outputs : int;
  num_dffs : int;
  num_gates : int;
  max_level : int;  (** Longest combinational path, in gates. *)
  max_fanin : int;
  max_fanout : int;
}

val of_netlist : Netlist.t -> t

val levels : Netlist.t -> int array
(** Per-node combinational depth: 0 for PIs/DFF outputs, otherwise
    [1 + max (levels of fanins)]. *)

val pp : Format.formatter -> t -> unit
