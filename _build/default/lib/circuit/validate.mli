(** Structural diagnostics beyond the hard errors of netlist
    construction.

    Construction ({!Netlist.unsafe_make} via {!Builder} or the parser)
    already rejects broken circuits — duplicate names, dangling
    references, arity violations, combinational loops. This module
    reports the {e soft} problems that make a circuit a poor test-
    generation subject:

    - dangling nodes (no fanout and not a primary output) — faults on
      them are trivially undetectable;
    - unobservable nodes — no path to any primary output;
    - uncontrollable flip-flops — flip-flops whose D cone reaches no
      primary input, so their value can never be set from outside;
    - potentially uninitializable flip-flops — computed by an
      achievable-value fixpoint: for every node, the set of binary values
      some primary-input assignment can drive onto it, with flip-flops
      acting as sources fed by their D set from the previous iteration.
      The propagation is optimistic (it ignores that reconvergent paths
      may need contradictory PI values), so an {e empty} final set is a
      reliable "this flip-flop can never leave X under three-valued
      simulation" verdict, while a non-empty set is only a hint. *)

type report = {
  dangling : Netlist.node list;
  unobservable : Netlist.node list;
  uncontrollable_ffs : Netlist.node list;
  maybe_uninitializable_ffs : Netlist.node list;
}

val check : Netlist.t -> report

val is_clean : report -> bool
(** No findings in any category. *)

val pp : Netlist.t -> Format.formatter -> report -> unit
(** Human-readable summary with node names. *)
