(** Flattened gate-level netlists.

    Nodes are densely numbered; each node is a named gate with an ordered
    fanin list. A netlist is immutable once built (use {!Builder} or the
    {!Bench_parser}); construction computes fanouts and a topological
    order of the combinational nodes, and rejects structurally invalid
    circuits (see {!Validate}). *)

type node = int
(** Dense node identifier, [0 <= node < size]. *)

type t

val size : t -> int
(** Total node count, including primary inputs and flip-flops. *)

val name : t -> node -> string
val kind : t -> node -> Gate.kind
val fanins : t -> node -> node array
(** Ordered fanins. Do not mutate. *)

val fanouts : t -> node -> node array
(** Nodes that list this node among their fanins (each consumer appears
    once per distinct consumer). Do not mutate. *)

val fanout_count : t -> node -> int
(** Number of fanin {e pins} this node drives (a consumer using the node
    twice counts twice), plus one if the node is a primary output. *)

val inputs : t -> node array
(** Primary inputs, in declaration order. Do not mutate. *)

val outputs : t -> node array
(** Primary outputs, in declaration order. Do not mutate. *)

val dffs : t -> node array
(** Flip-flops, in declaration order. Do not mutate. *)

val topo_order : t -> node array
(** All combinational nodes, ordered so every node appears after its
    combinational fanins (PIs and DFF outputs are sources and are not
    listed). Do not mutate. *)

val num_inputs : t -> int
val num_outputs : t -> int
val num_dffs : t -> int
val num_gates : t -> int
(** Combinational gates only. *)

val find : t -> string -> node option
val find_exn : t -> string -> node
(** Raises [Not_found]. *)

val is_output : t -> node -> bool

val circuit_name : t -> string
(** A label for reports ("s27", "x1423", ...). *)

(**/**)

val unsafe_make :
  circuit_name:string ->
  names:string array ->
  kinds:Gate.kind array ->
  fanins:node array array ->
  inputs:node array ->
  outputs:node array ->
  t
(** Internal constructor used by {!Builder}; validates and levelizes.
    Raises [Failure] with a diagnostic on an invalid netlist. *)
