module T = Bist_logic.Ternary

(* Per-node resolution after constant propagation. *)
type resolution =
  | Const of T.t (* Zero or One *)
  | Alias of Netlist.node (* behaves exactly like that node *)
  | Gate_def of Gate.kind * Netlist.node list

(* Resolve aliases down to a representative (a kept node or a constant). *)
let rec chase resolutions node =
  match resolutions.(node) with
  | Alias target -> chase resolutions target
  | Const _ | Gate_def _ -> node

let constant_propagate c =
  let n = Netlist.size c in
  let resolutions =
    Array.init n (fun node ->
        Gate_def (Netlist.kind c node, Array.to_list (Netlist.fanins c node)))
  in
  let const_of node =
    match resolutions.(chase resolutions node) with
    | Const v -> Some v
    | Alias _ | Gate_def _ -> None
  in
  (* One pass in topological order suffices: fanins are resolved before
     their consumers. PIs and DFFs stay as they are. *)
  let resolve node =
    let kind = Netlist.kind c node in
    let fanins = Array.to_list (Netlist.fanins c node) in
    let inverted = Gate.inversion kind in
    let finish_variadic ~zero_dominates kept =
      (* [kept] are the non-constant fanins of an AND/OR-family gate whose
         dominating constant was absent and whose identity constants were
         dropped. An empty fold yields the identity (1 for AND, 0 for OR),
         then the gate's inversion applies. *)
      match kept with
      | [] -> Const (T.of_bool (if zero_dominates then inverted else not inverted))
      | [ single ] -> if inverted then Gate_def (Gate.Not, [ single ]) else Alias single
      | several -> Gate_def (kind, several)
    in
    match kind with
    | Gate.Input | Gate.Dff -> resolutions.(node)
    | Gate.Const0 -> Const T.Zero
    | Gate.Const1 -> Const T.One
    | Gate.Buf ->
      (match const_of (List.nth fanins 0) with
       | Some v -> Const v
       | None -> Alias (chase resolutions (List.nth fanins 0)))
    | Gate.Not ->
      (match const_of (List.nth fanins 0) with
       | Some v -> Const (T.not_ v)
       | None -> Gate_def (Gate.Not, [ chase resolutions (List.nth fanins 0) ]))
    | Gate.And | Gate.Nand ->
      let consts, vars = List.partition (fun d -> const_of d <> None) fanins in
      if List.exists (fun d -> const_of d = Some T.Zero) consts then
        Const (if inverted then T.One else T.Zero)
      else finish_variadic ~zero_dominates:false (List.map (chase resolutions) vars)
    | Gate.Or | Gate.Nor ->
      let consts, vars = List.partition (fun d -> const_of d <> None) fanins in
      if List.exists (fun d -> const_of d = Some T.One) consts then
        Const (if inverted then T.Zero else T.One)
      else finish_variadic ~zero_dominates:true (List.map (chase resolutions) vars)
    | Gate.Xor | Gate.Xnor ->
      (* Fold the constant inputs into the output inversion. *)
      let parity = ref (kind = Gate.Xnor) in
      let vars =
        List.filter_map
          (fun d ->
            match const_of d with
            | Some T.One -> parity := not !parity; None
            | Some T.Zero -> None
            | Some T.X -> assert false
            | None -> Some (chase resolutions d))
          fanins
      in
      (match vars with
       | [] -> Const (T.of_bool !parity)
       | [ single ] ->
         if !parity then Gate_def (Gate.Not, [ single ]) else Alias single
       | several -> Gate_def ((if !parity then Gate.Xnor else Gate.Xor), several))
  in
  Array.iter (fun node -> resolutions.(node) <- resolve node) (Netlist.topo_order c);
  (* Rebuild. Kept nodes: PIs, DFFs, and gates still defined as gates.
     Constants materialize as CONST gates on demand; aliases vanish. *)
  let builder = Builder.create ~name:(Netlist.circuit_name c) in
  let const_names = Hashtbl.create 2 in
  let const_name v =
    match Hashtbl.find_opt const_names v with
    | Some name -> name
    | None ->
      let name = if T.equal v T.Zero then "_const0" else "_const1" in
      Builder.add_gate builder ~output:name
        (if T.equal v T.Zero then Gate.Const0 else Gate.Const1)
        [];
      Hashtbl.add const_names v name;
      name
  in
  let ref_name node =
    let node = chase resolutions node in
    match resolutions.(node) with
    | Const v -> const_name v
    | Alias _ -> assert false
    | Gate_def _ -> Netlist.name c node
  in
  Array.iter (fun pi -> Builder.add_input builder (Netlist.name c pi)) (Netlist.inputs c);
  for node = 0 to n - 1 do
    match Netlist.kind c node with
    | Gate.Input -> ()
    | Gate.Dff ->
      Builder.add_gate builder ~output:(Netlist.name c node) Gate.Dff
        [ ref_name (Netlist.fanins c node).(0) ]
    | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
    | Gate.Xor | Gate.Xnor | Gate.Const0 | Gate.Const1 ->
      (match resolutions.(node) with
       | Const _ | Alias _ -> () (* vanished; consumers reference through ref_name *)
       | Gate_def (kind, fanins) ->
         Builder.add_gate builder ~output:(Netlist.name c node) kind
           (List.map ref_name fanins))
  done;
  Array.iter
    (fun po -> Builder.add_output builder (ref_name po))
    (Netlist.outputs c);
  Builder.finalize builder

let sweep_unobservable c =
  let keep = Array.make (Netlist.size c) false in
  let rec visit node =
    if not keep.(node) then begin
      keep.(node) <- true;
      Array.iter visit (Netlist.fanins c node)
    end
  in
  Array.iter visit (Netlist.outputs c);
  Array.iter (fun pi -> keep.(pi) <- true) (Netlist.inputs c);
  let builder = Builder.create ~name:(Netlist.circuit_name c) in
  Array.iter (fun pi -> Builder.add_input builder (Netlist.name c pi)) (Netlist.inputs c);
  for node = 0 to Netlist.size c - 1 do
    if keep.(node) && Netlist.kind c node <> Gate.Input then
      Builder.add_gate builder ~output:(Netlist.name c node) (Netlist.kind c node)
        (Array.to_list (Array.map (Netlist.name c) (Netlist.fanins c node)))
  done;
  Array.iter (fun po -> Builder.add_output builder (Netlist.name c po)) (Netlist.outputs c);
  Builder.finalize builder

let cleanup c = sweep_unobservable (constant_propagate c)
