type def = { kind : Gate.kind; fanin_names : string list }

type t = {
  name : string;
  mutable inputs_rev : string list;
  mutable outputs_rev : string list;
  defs : (string, def) Hashtbl.t;
  mutable order_rev : string list; (* definition order, for stable numbering *)
}

let create ~name =
  { name; inputs_rev = []; outputs_rev = []; defs = Hashtbl.create 64; order_rev = [] }

let fail fmt = Printf.ksprintf failwith fmt

let define t signal def =
  if Hashtbl.mem t.defs signal then fail "Builder: signal %S defined twice" signal;
  Hashtbl.add t.defs signal def;
  t.order_rev <- signal :: t.order_rev

let add_input t signal =
  define t signal { kind = Gate.Input; fanin_names = [] };
  t.inputs_rev <- signal :: t.inputs_rev

let add_output t signal = t.outputs_rev <- signal :: t.outputs_rev

let add_gate t ~output kind fanin_names =
  if kind = Gate.Input then fail "Builder: use add_input for primary inputs";
  define t output { kind; fanin_names }

let finalize t =
  let order = Array.of_list (List.rev t.order_rev) in
  let n = Array.length order in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i s -> Hashtbl.add index s i) order;
  let resolve context s =
    match Hashtbl.find_opt index s with
    | Some i -> i
    | None -> fail "Builder: %s references undefined signal %S" context s
  in
  let kinds = Array.make n Gate.Input in
  let fanins = Array.make n [||] in
  Array.iteri
    (fun i signal ->
      let def = Hashtbl.find t.defs signal in
      kinds.(i) <- def.kind;
      fanins.(i) <- Array.of_list (List.map (resolve signal) def.fanin_names))
    order;
  let inputs = Array.of_list (List.rev_map (resolve "PI list") t.inputs_rev) in
  let outputs =
    Array.of_list (List.rev t.outputs_rev |> List.map (resolve "PO list"))
  in
  Netlist.unsafe_make ~circuit_name:t.name ~names:order ~kinds ~fanins ~inputs
    ~outputs
