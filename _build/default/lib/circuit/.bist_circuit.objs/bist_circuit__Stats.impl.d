lib/circuit/stats.ml: Array Format Gate Netlist
