lib/circuit/opt.ml: Array Bist_logic Builder Gate Hashtbl List Netlist
