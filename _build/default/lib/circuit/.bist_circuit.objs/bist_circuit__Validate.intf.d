lib/circuit/validate.mli: Format Netlist
