lib/circuit/bench_parser.ml: Builder Filename Fun Gate List Printf String
