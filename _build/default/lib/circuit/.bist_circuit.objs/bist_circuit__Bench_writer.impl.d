lib/circuit/bench_writer.ml: Array Buffer Fun Gate List Netlist Printf String
