lib/circuit/validate.ml: Array Format Gate List Netlist String
