lib/circuit/gate.mli: Bist_logic
