lib/circuit/stats.mli: Format Netlist
