lib/circuit/gate.ml: Array Bist_logic Printf String
