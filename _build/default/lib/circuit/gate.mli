(** Gate-level primitives of the ISCAS-89 netlist format.

    [Input] nodes are primary inputs; [Dff] nodes are D flip-flops whose
    single fanin is sampled at each clock edge. All other kinds are
    combinational with the usual semantics. *)

type kind =
  | Input
  | Dff
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Const0
  | Const1

val kind_name : kind -> string
(** Upper-case ISCAS-89 keyword ("AND", "DFF", ...). [Input] renders as
    "INPUT". *)

val kind_of_name : string -> kind option
(** Case-insensitive; accepts both "BUF" and "BUFF". *)

val arity_ok : kind -> int -> bool
(** Whether a gate of this kind may have the given number of fanins. *)

val is_combinational : kind -> bool
(** False exactly for [Input] and [Dff]. *)

val eval : kind -> Bist_logic.Ternary.t array -> Bist_logic.Ternary.t
(** Combinational evaluation over scalar ternary values. Raises
    [Invalid_argument] for [Input]/[Dff] or an arity violation. *)

val eval_packed : kind -> Bist_logic.Packed.t array -> Bist_logic.Packed.t
(** Same, over 64-lane packed words. *)

val controlling_value : kind -> Bist_logic.Ternary.t option
(** The input value that forces the output regardless of other inputs
    (0 for AND/NAND, 1 for OR/NOR); [None] for the other kinds. *)

val inversion : kind -> bool
(** Whether the gate inverts its controlled/parity result (NOT, NAND,
    NOR, XNOR). *)
