(** Programmatic netlist construction.

    Names may be used before they are defined (forward references are
    resolved at {!finalize}), matching the free ordering of [.bench]
    files. *)

type t

val create : name:string -> t
(** Start an empty netlist labelled [name]. *)

val add_input : t -> string -> unit
(** Declare a primary input. *)

val add_output : t -> string -> unit
(** Declare a primary output (the named signal must be defined somewhere
    before {!finalize}). *)

val add_gate : t -> output:string -> Gate.kind -> string list -> unit
(** [add_gate t ~output kind fanins] defines signal [output] as a gate.
    Raises [Failure] on redefinition or if [kind] is [Input]. *)

val finalize : t -> Netlist.t
(** Resolve references, validate, and levelize.
    Raises [Failure] with a diagnostic on an invalid circuit. *)
