type node = int

type t = {
  circuit_name : string;
  names : string array;
  kinds : Gate.kind array;
  fanins : node array array;
  fanouts : node array array;
  pin_fanout_counts : int array;
  inputs : node array;
  outputs : node array;
  dffs : node array;
  topo : node array;
  index : (string, node) Hashtbl.t;
}

let size t = Array.length t.names
let name t n = t.names.(n)
let kind t n = t.kinds.(n)
let fanins t n = t.fanins.(n)
let fanouts t n = t.fanouts.(n)
let fanout_count t n = t.pin_fanout_counts.(n)
let inputs t = t.inputs
let outputs t = t.outputs
let dffs t = t.dffs
let topo_order t = t.topo
let num_inputs t = Array.length t.inputs
let num_outputs t = Array.length t.outputs
let num_dffs t = Array.length t.dffs
let num_gates t = Array.length t.topo
let circuit_name t = t.circuit_name

let find t name = Hashtbl.find_opt t.index name

let find_exn t name =
  match find t name with Some n -> n | None -> raise Not_found

let is_output t n = Array.exists (fun o -> o = n) t.outputs

let fail fmt = Printf.ksprintf failwith fmt

(* Kahn's algorithm restricted to combinational nodes: PIs and DFFs are
   sources, so an edge from a DFF output breaks the sequential loop. *)
let levelize ~kinds ~(fanins : node array array) ~fanouts =
  let n = Array.length kinds in
  let pending = Array.make n 0 in
  let order = Array.make n 0 in
  let count = ref 0 in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if Gate.is_combinational kinds.(v) then begin
      let comb_fanins = ref 0 in
      Array.iter
        (fun u -> if Gate.is_combinational kinds.(u) then incr comb_fanins)
        fanins.(v);
      pending.(v) <- !comb_fanins;
      if !comb_fanins = 0 then Queue.add v queue
    end
  done;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!count) <- v;
    incr count;
    Array.iter
      (fun w ->
        if Gate.is_combinational kinds.(w) then begin
          (* A consumer may use v on several pins; decrement once per pin. *)
          Array.iter
            (fun u ->
              if u = v then begin
                pending.(w) <- pending.(w) - 1;
                if pending.(w) = 0 then Queue.add w queue
              end)
            fanins.(w)
        end)
      fanouts.(v)
  done;
  let total_comb =
    Array.fold_left (fun acc k -> if Gate.is_combinational k then acc + 1 else acc) 0 kinds
  in
  if !count <> total_comb then fail "Netlist: combinational loop detected";
  Array.sub order 0 !count

let unsafe_make ~circuit_name ~names ~kinds ~fanins ~inputs ~outputs =
  let n = Array.length names in
  if Array.length kinds <> n || Array.length fanins <> n then
    fail "Netlist: array length mismatch";
  let index = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i name ->
      if Hashtbl.mem index name then fail "Netlist: duplicate node name %S" name;
      Hashtbl.add index name i)
    names;
  Array.iteri
    (fun i fi ->
      if not (Gate.arity_ok kinds.(i) (Array.length fi)) then
        fail "Netlist: node %S (%s) has %d fanins" names.(i)
          (Gate.kind_name kinds.(i)) (Array.length fi);
      Array.iter
        (fun u ->
          if u < 0 || u >= n then fail "Netlist: node %S has dangling fanin" names.(i))
        fi)
    fanins;
  Array.iter
    (fun o -> if o < 0 || o >= n then fail "Netlist: dangling primary output")
    outputs;
  Array.iter
    (fun i ->
      if kinds.(i) <> Gate.Input then fail "Netlist: PI list contains non-INPUT node")
    inputs;
  let dffs =
    Array.of_list
      (List.filter (fun i -> kinds.(i) = Gate.Dff) (List.init n (fun i -> i)))
  in
  (* Fanouts: distinct consumers, plus pin-accurate counts for fault
     collapsing decisions. *)
  let consumer_lists = Array.make n [] in
  let pin_counts = Array.make n 0 in
  for v = n - 1 downto 0 do
    let seen = Hashtbl.create 4 in
    Array.iter
      (fun u ->
        pin_counts.(u) <- pin_counts.(u) + 1;
        if not (Hashtbl.mem seen u) then begin
          Hashtbl.add seen u ();
          consumer_lists.(u) <- v :: consumer_lists.(u)
        end)
      fanins.(v)
  done;
  Array.iter (fun o -> pin_counts.(o) <- pin_counts.(o) + 1) outputs;
  let fanouts = Array.map Array.of_list consumer_lists in
  let topo = levelize ~kinds ~fanins ~fanouts in
  {
    circuit_name;
    names;
    kinds;
    fanins;
    fanouts;
    pin_fanout_counts = pin_counts;
    inputs;
    outputs;
    dffs;
    topo;
    index;
  }
