type t = {
  name : string;
  num_inputs : int;
  num_outputs : int;
  num_dffs : int;
  num_gates : int;
  max_level : int;
  max_fanin : int;
  max_fanout : int;
}

let levels c =
  let lv = Array.make (Netlist.size c) 0 in
  Array.iter
    (fun n ->
      let best = ref 0 in
      Array.iter
        (fun u ->
          let l = if Gate.is_combinational (Netlist.kind c u) then lv.(u) else 0 in
          if l > !best then best := l)
        (Netlist.fanins c n);
      lv.(n) <- !best + 1)
    (Netlist.topo_order c);
  lv

let of_netlist c =
  let lv = levels c in
  let max_level = Array.fold_left max 0 lv in
  let max_fanin = ref 0 and max_fanout = ref 0 in
  for n = 0 to Netlist.size c - 1 do
    max_fanin := max !max_fanin (Array.length (Netlist.fanins c n));
    max_fanout := max !max_fanout (Netlist.fanout_count c n)
  done;
  {
    name = Netlist.circuit_name c;
    num_inputs = Netlist.num_inputs c;
    num_outputs = Netlist.num_outputs c;
    num_dffs = Netlist.num_dffs c;
    num_gates = Netlist.num_gates c;
    max_level;
    max_fanin = !max_fanin;
    max_fanout = !max_fanout;
  }

let pp fmt t =
  Format.fprintf fmt
    "%s: %d PIs, %d POs, %d FFs, %d gates, depth %d, max fanin %d, max fanout %d"
    t.name t.num_inputs t.num_outputs t.num_dffs t.num_gates t.max_level
    t.max_fanin t.max_fanout
