(** Serialization back to the ISCAS-89 [.bench] format.

    [parse_string (to_string c)] reproduces a netlist structurally equal
    to [c] (same names, kinds, fanins and port order). *)

val to_string : Netlist.t -> string

val to_file : Netlist.t -> string -> unit
