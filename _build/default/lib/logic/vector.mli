(** Input vectors: one three-valued value per circuit primary input.

    Bit 0 is the leftmost character of the textual form and is treated as
    the most-significant position, matching the paper's convention for the
    circular shift ("the multiplexer on output [i] is driven from output
    [i] and output [(i+1) mod m]"). Vectors are immutable. *)

type t

val create : int -> Ternary.t -> t
(** [create width v] is a vector of [width] copies of [v]. *)

val init : int -> (int -> Ternary.t) -> t
(** [init width f] sets position [i] to [f i]. *)

val width : t -> int

val get : t -> int -> Ternary.t
val set : t -> int -> Ternary.t -> t

val of_string : string -> t
(** Parse ['0'], ['1'], ['x'] characters, leftmost first. *)

val to_string : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int

val complement : t -> t
(** Lane-wise logical complement; X stays X. *)

val shift_left_circular : t -> t
(** The paper's [S << 1] applied to a single vector: position [i] takes
    the old value of position [(i+1) mod width]. *)

val random_binary : Bist_util.Rng.t -> int -> t
(** Uniformly random fully-specified vector. *)

val random_weighted : Bist_util.Rng.t -> int -> p_one:float -> t
(** Random fully-specified vector where each bit is 1 with probability
    [p_one]. *)

val is_fully_specified : t -> bool

val pp : Format.formatter -> t -> unit
