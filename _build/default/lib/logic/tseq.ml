type t = { width : int; vecs : Vector.t array }

let empty width =
  if width < 0 then invalid_arg "Tseq.empty";
  { width; vecs = [||] }

let of_vectors vecs =
  if Array.length vecs = 0 then invalid_arg "Tseq.of_vectors: empty (use Tseq.empty)";
  let width = Vector.width vecs.(0) in
  Array.iter
    (fun v -> if Vector.width v <> width then invalid_arg "Tseq.of_vectors: width mismatch")
    vecs;
  { width; vecs = Array.copy vecs }

let of_strings = function
  | [] -> invalid_arg "Tseq.of_strings: empty"
  | strings -> of_vectors (Array.of_list (List.map Vector.of_string strings))

let to_strings t = Array.to_list (Array.map Vector.to_string t.vecs)

let length t = Array.length t.vecs
let width t = t.width
let get t i = t.vecs.(i)

let append t v =
  if Vector.width v <> t.width then invalid_arg "Tseq.append: width mismatch";
  { t with vecs = Array.append t.vecs [| v |] }

let concat a b =
  if a.width <> b.width then invalid_arg "Tseq.concat: width mismatch";
  { width = a.width; vecs = Array.append a.vecs b.vecs }

let sub t ~lo ~hi =
  if lo < 0 || hi >= length t || lo > hi then invalid_arg "Tseq.sub: bad range";
  { t with vecs = Array.sub t.vecs lo (hi - lo + 1) }

let omit t u =
  if u < 0 || u >= length t then invalid_arg "Tseq.omit: bad index";
  let n = length t in
  { t with vecs = Array.init (n - 1) (fun i -> if i < u then t.vecs.(i) else t.vecs.(i + 1)) }

let repeat t n =
  if n < 1 then invalid_arg "Tseq.repeat: n must be >= 1";
  { t with vecs = Array.concat (List.init n (fun _ -> t.vecs)) }

let map f t = { t with vecs = Array.map f t.vecs }

let complement t = map Vector.complement t
let shift_left_circular t = map Vector.shift_left_circular t

let reverse t =
  let n = length t in
  { t with vecs = Array.init n (fun i -> t.vecs.(n - 1 - i)) }

let equal a b =
  a.width = b.width
  && Array.length a.vecs = Array.length b.vecs
  && Array.for_all2 Vector.equal a.vecs b.vecs

let iter f t = Array.iter f t.vecs
let iteri f t = Array.iteri f t.vecs
let fold_left f init t = Array.fold_left f init t.vecs
let to_array t = Array.copy t.vecs

let random_binary rng ~width ~length =
  { width; vecs = Array.init length (fun _ -> Vector.random_binary rng width) }

let pp fmt t =
  Array.iteri
    (fun i v ->
      if i > 0 then Format.pp_print_newline fmt ();
      Vector.pp fmt v)
    t.vecs
