(** Three-valued logic.

    Sequential test generation must model the unknown power-up state of
    flip-flops, so every signal carries one of three values: logic 0,
    logic 1, or X (unknown). The operators below implement the standard
    pessimistic (Kleene) extension of the Boolean connectives: a result is
    binary only when it is binary for every consistent assignment of the
    X inputs. *)

type t = Zero | One | X

val equal : t -> t -> bool
val compare : t -> t -> int

val is_binary : t -> bool
(** True for [Zero] and [One]; false for [X]. *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val nand : t -> t -> t
val nor : t -> t -> t
val xor : t -> t -> t
val xnor : t -> t -> t

val of_bool : bool -> t

val to_bool_exn : t -> bool
(** Raises [Invalid_argument] on [X]. *)

val of_char : char -> t
(** ['0'], ['1'], ['x'] or ['X']. Raises [Invalid_argument] otherwise. *)

val to_char : t -> char
(** ['0'], ['1'] or ['x']. *)

val conflicts : t -> t -> bool
(** [conflicts a b] is true when [a] and [b] are distinct binary values —
    the detection condition at a primary output. *)

val pp : Format.formatter -> t -> unit
