let lanes = 63

type t = { ones : int; zeros : int }

let all_x = { ones = 0; zeros = 0 }

let full = -1 (* all 63 bits set *)

let all = function
  | Ternary.Zero -> { ones = 0; zeros = full }
  | Ternary.One -> { ones = full; zeros = 0 }
  | Ternary.X -> all_x

let make ~ones ~zeros =
  if ones land zeros <> 0 then invalid_arg "Packed.make: ones and zeros overlap";
  { ones; zeros }

let check_lane i = if i < 0 || i >= lanes then invalid_arg "Packed: lane out of range"

let get w i =
  check_lane i;
  if w.ones land (1 lsl i) <> 0 then Ternary.One
  else if w.zeros land (1 lsl i) <> 0 then Ternary.Zero
  else Ternary.X

let set w i v =
  check_lane i;
  let m = 1 lsl i in
  let keep = lnot m in
  match v with
  | Ternary.One -> { ones = w.ones land keep lor m; zeros = w.zeros land keep }
  | Ternary.Zero -> { ones = w.ones land keep; zeros = w.zeros land keep lor m }
  | Ternary.X -> { ones = w.ones land keep; zeros = w.zeros land keep }

let equal a b = a.ones = b.ones && a.zeros = b.zeros

let not_ w = { ones = w.zeros; zeros = w.ones }

let and_ a b = { ones = a.ones land b.ones; zeros = a.zeros lor b.zeros }
let or_ a b = { ones = a.ones lor b.ones; zeros = a.zeros land b.zeros }
let nand a b = not_ (and_ a b)
let nor a b = not_ (or_ a b)

let xor a b =
  {
    ones = (a.ones land b.zeros) lor (a.zeros land b.ones);
    zeros = (a.ones land b.ones) lor (a.zeros land b.zeros);
  }

let xnor a b = not_ (xor a b)

let force w ~mask v =
  let keep = lnot mask in
  let ones = w.ones land keep in
  let zeros = w.zeros land keep in
  match v with
  | Ternary.One -> { ones = ones lor mask; zeros }
  | Ternary.Zero -> { ones; zeros = zeros lor mask }
  | Ternary.X -> { ones; zeros }

let diff_mask good faulty =
  (good.ones land faulty.zeros) lor (good.zeros land faulty.ones)

let binary_mask w = w.ones lor w.zeros

let pp fmt w =
  for i = 0 to lanes - 1 do
    Format.pp_print_char fmt (Ternary.to_char (get w i))
  done
