lib/logic/packed.mli: Format Ternary
