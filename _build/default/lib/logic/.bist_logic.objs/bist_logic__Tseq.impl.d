lib/logic/tseq.ml: Array Format List Vector
