lib/logic/vector.ml: Array Bist_util Format Int String Ternary
