lib/logic/packed.ml: Format Ternary
