lib/logic/tseq.mli: Bist_util Format Vector
