lib/logic/ternary.ml: Format Int Printf
