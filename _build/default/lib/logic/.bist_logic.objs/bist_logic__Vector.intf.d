lib/logic/vector.mli: Bist_util Format Ternary
