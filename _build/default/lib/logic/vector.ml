type t = Ternary.t array

let create width v =
  if width < 0 then invalid_arg "Vector.create";
  Array.make width v

let init width f =
  if width < 0 then invalid_arg "Vector.init";
  Array.init width f

let width = Array.length

let get (t : t) i = t.(i)

let set t i v =
  let t' = Array.copy t in
  t'.(i) <- v;
  t'

let of_string s = Array.init (String.length s) (fun i -> Ternary.of_char s.[i])

let to_string t = String.init (Array.length t) (fun i -> Ternary.to_char t.(i))

let equal a b = Array.length a = Array.length b && Array.for_all2 Ternary.equal a b

let compare a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length a then 0
      else
        let c = Ternary.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let complement t = Array.map Ternary.not_ t

let shift_left_circular t =
  let m = Array.length t in
  if m = 0 then t else Array.init m (fun i -> t.((i + 1) mod m))

let random_binary rng width =
  Array.init width (fun _ -> Ternary.of_bool (Bist_util.Rng.bool rng))

let random_weighted rng width ~p_one =
  Array.init width (fun _ -> Ternary.of_bool (Bist_util.Rng.bernoulli rng p_one))

let is_fully_specified t = Array.for_all Ternary.is_binary t

let pp fmt t = Format.pp_print_string fmt (to_string t)
