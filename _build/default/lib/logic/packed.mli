(** Bit-parallel three-valued words.

    A [Packed.t] holds up to 63 independent three-valued signals ("lanes")
    in two native machine words: bit [i] of [ones] is set when lane [i]
    carries logic 1, bit [i] of [zeros] when it carries logic 0, and
    neither when it carries X. The invariant [ones land zeros = 0] holds
    for every value built through this interface. Native [int]s (63 bits
    on a 64-bit platform) are used instead of [int64] because they are
    unboxed — this kernel dominates fault-simulation time.

    The parallel fault simulator runs the fault-free machine in lane 0 and
    up to 62 faulty machines in the remaining lanes, evaluating every gate
    for all machines with a constant number of word operations. *)

val lanes : int
(** 63. *)

type t = private { ones : int; zeros : int }

val all_x : t
(** Every lane X. *)

val all : Ternary.t -> t
(** Every lane the given value. *)

val make : ones:int -> zeros:int -> t
(** Raises [Invalid_argument] if [ones land zeros <> 0]. *)

val get : t -> int -> Ternary.t
(** Value of lane [i], [0 <= i < lanes]. *)

val set : t -> int -> Ternary.t -> t
(** Functional update of lane [i]. *)

val equal : t -> t -> bool

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val nand : t -> t -> t
val nor : t -> t -> t
val xor : t -> t -> t
val xnor : t -> t -> t

val force : t -> mask:int -> Ternary.t -> t
(** [force w ~mask v] replaces the lanes selected by [mask] with [v] —
    the fault-insertion primitive. *)

val diff_mask : t -> t -> int
(** [diff_mask good faulty] has bit [i] set when lane [i] holds opposite
    binary values in the two words — the per-lane detection condition. *)

val binary_mask : t -> int
(** Bits of lanes holding a binary (non-X) value. *)

val pp : Format.formatter -> t -> unit
(** Lanes [0..lanes-1], lane 0 first. *)
