(** Test sequences: a finite sequence of input vectors applied at
    consecutive time units, all of the same width.

    This is the object the whole scheme manipulates: the deterministic
    sequence [T0], the stored subsequences [S], and the expanded sequences
    [Sexp] are all values of this type. Structural operations here are
    purely combinational on the data; the paper-specific expansion
    composition lives in [Bist_core.Ops]. *)

type t

val empty : int -> t
(** [empty width] is the zero-length sequence for a [width]-input circuit. *)

val of_vectors : Vector.t array -> t
(** Raises [Invalid_argument] if the vectors disagree on width (empty
    arrays are not representable this way — use {!empty}). *)

val of_strings : string list -> t
(** Parse one vector per string. *)

val to_strings : t -> string list

val length : t -> int
val width : t -> int
val get : t -> int -> Vector.t

val append : t -> Vector.t -> t
val concat : t -> t -> t

val sub : t -> lo:int -> hi:int -> t
(** [sub t ~lo ~hi] is the subsequence [T\[lo, hi\]] of the paper:
    time units [lo] through [hi] inclusive. Raises [Invalid_argument] on
    an invalid range. *)

val omit : t -> int -> t
(** [omit t u] removes the vector at time unit [u]. *)

val repeat : t -> int -> t
(** [repeat t n] is [t^n]; [n >= 1]. *)

val complement : t -> t
(** Complement every vector. *)

val shift_left_circular : t -> t
(** Circularly shift every vector left by one position. *)

val reverse : t -> t
(** Reverse the order of the vectors ([rS] in the paper). *)

val equal : t -> t -> bool

val iter : (Vector.t -> unit) -> t -> unit
val iteri : (int -> Vector.t -> unit) -> t -> unit
val fold_left : ('a -> Vector.t -> 'a) -> 'a -> t -> 'a
val to_array : t -> Vector.t array
(** A fresh copy of the underlying vectors. *)

val random_binary : Bist_util.Rng.t -> width:int -> length:int -> t

val pp : Format.formatter -> t -> unit
(** One vector per line. *)
