type t = Zero | One | X

let equal a b =
  match a, b with
  | Zero, Zero | One, One | X, X -> true
  | Zero, (One | X) | One, (Zero | X) | X, (Zero | One) -> false

let to_int = function Zero -> 0 | One -> 1 | X -> 2

let compare a b = Int.compare (to_int a) (to_int b)

let is_binary = function Zero | One -> true | X -> false

let not_ = function Zero -> One | One -> Zero | X -> X

let and_ a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | X, (One | X) | One, X -> X

let or_ a b =
  match a, b with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | X, (Zero | X) | Zero, X -> X

let nand a b = not_ (and_ a b)
let nor a b = not_ (or_ a b)

let xor a b =
  match a, b with
  | X, _ | _, X -> X
  | Zero, Zero | One, One -> Zero
  | Zero, One | One, Zero -> One

let xnor a b = not_ (xor a b)

let of_bool b = if b then One else Zero

let to_bool_exn = function
  | Zero -> false
  | One -> true
  | X -> invalid_arg "Ternary.to_bool_exn: X"

let of_char = function
  | '0' -> Zero
  | '1' -> One
  | 'x' | 'X' -> X
  | c -> invalid_arg (Printf.sprintf "Ternary.of_char: %C" c)

let to_char = function Zero -> '0' | One -> '1' | X -> 'x'

let conflicts a b =
  match a, b with
  | Zero, One | One, Zero -> true
  | Zero, (Zero | X) | One, (One | X) | X, (Zero | One | X) -> false

let pp fmt t = Format.pp_print_char fmt (to_char t)
