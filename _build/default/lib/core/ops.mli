(** The sequence manipulations of Section 2 and their composition.

    The full expansion of a stored sequence [S] with [n] repetitions is

    {v
    S'exp   = S^n                         (repetition)
    S''exp  = S'exp . complement(S'exp)   (complementation)
    S'''exp = S''exp . (S''exp << 1)      (circular left shift)
    Sexp    = S'''exp . reverse(S'''exp)  (reversal)
    v}

    so [length Sexp = 8 * n * length S]. Partial operator sets (for the
    ablation benchmarks) apply the same pipeline with stages disabled;
    every variant leaves [S] itself as a prefix of the result, which is
    what guarantees that an expanded sequence detects at least the faults
    its seed detects. *)

type operator = Repeat | Complement | Shift | Reverse

val all_operators : operator list
(** The paper's pipeline, in order. *)

val expand : n:int -> Bist_logic.Tseq.t -> Bist_logic.Tseq.t
(** Full expansion; [n >= 1]. *)

val expand_with : operators:operator list -> n:int -> Bist_logic.Tseq.t -> Bist_logic.Tseq.t
(** Expansion with a subset of stages. [Repeat] uses the given [n]; the
    listed operators are applied in the fixed pipeline order regardless
    of list order. *)

val expansion_factor : operators:operator list -> n:int -> int
(** Length multiplier of {!expand_with}: 8·n for the full set. *)

val expanded_length : n:int -> int -> int
(** [expanded_length ~n len = 8 * n * len]. *)
