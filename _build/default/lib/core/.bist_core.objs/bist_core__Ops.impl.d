lib/core/ops.ml: Bist_logic List
