lib/core/postprocess.mli: Bist_fault Bist_logic Bist_util Ops
