lib/core/procedure2.ml: Array Bist_fault Bist_logic Bist_util Ops
