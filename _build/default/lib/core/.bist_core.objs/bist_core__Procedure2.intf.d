lib/core/procedure2.mli: Bist_circuit Bist_fault Bist_logic Bist_util Ops
