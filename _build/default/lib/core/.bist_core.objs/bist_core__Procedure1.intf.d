lib/core/procedure1.mli: Bist_fault Bist_logic Bist_util Ops Procedure2
