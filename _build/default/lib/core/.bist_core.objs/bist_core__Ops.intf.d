lib/core/ops.mli: Bist_logic
