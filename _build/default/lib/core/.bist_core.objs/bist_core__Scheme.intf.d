lib/core/scheme.mli: Bist_fault Bist_logic Ops Postprocess Procedure2
