lib/core/scheme.ml: Bist_circuit Bist_fault Bist_logic Bist_util List Ops Postprocess Procedure1 Procedure2 Sys
