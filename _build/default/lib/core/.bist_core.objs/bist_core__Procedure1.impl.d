lib/core/procedure1.ml: Array Bist_fault Bist_logic Bist_util List Ops Option Procedure2
