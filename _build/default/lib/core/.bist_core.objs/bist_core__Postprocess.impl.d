lib/core/postprocess.ml: Bist_fault Bist_logic Bist_util Int List Ops
