module Tseq = Bist_logic.Tseq

type operator = Repeat | Complement | Shift | Reverse

let all_operators = [ Repeat; Complement; Shift; Reverse ]

let expand_with ~operators ~n seq =
  if n < 1 then invalid_arg "Ops.expand_with: n must be >= 1";
  let has op = List.mem op operators in
  let s = if has Repeat then Tseq.repeat seq n else seq in
  let s = if has Complement then Tseq.concat s (Tseq.complement s) else s in
  let s = if has Shift then Tseq.concat s (Tseq.shift_left_circular s) else s in
  if has Reverse then Tseq.concat s (Tseq.reverse s) else s

let expand ~n seq = expand_with ~operators:all_operators ~n seq

let expansion_factor ~operators ~n =
  let has op = List.mem op operators in
  (if has Repeat then n else 1)
  * (if has Complement then 2 else 1)
  * (if has Shift then 2 else 1)
  * if has Reverse then 2 else 1

let expanded_length ~n len = 8 * n * len
