(** Structural equivalence collapsing of stuck-at faults.

    Two faults are structurally equivalent when every test for one is a
    test for the other. The rules applied, per gate:

    - BUF: input s-a-v ≡ output s-a-v;
    - NOT: input s-a-v ≡ output s-a-(not v);
    - AND: any input s-a-0 ≡ output s-a-0 (dually NAND → output s-a-1,
      OR → output s-a-1, NOR → output s-a-0);
    - a pin on a non-branching line is the same line as its driver's
      output.

    DFF input and output faults are deliberately {e not} merged: under
    pessimistic three-valued simulation the output fault (which also
    forces the unknown initial state) dominates the input fault, and
    collapsing dominated faults would change coverage accounting.

    Collapsing is computed by union-find over the full universe; the
    representative of a class is its first fault in {!Universe.full}
    order. *)

val representatives : Bist_circuit.Netlist.t -> Fault.t list
(** One fault per equivalence class, in full-universe order. *)

val classes : Bist_circuit.Netlist.t -> Fault.t list list
(** The full partition, for inspection and tests. Classes appear in
    representative order; members in full-universe order. *)
