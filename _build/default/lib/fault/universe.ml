module Netlist = Bist_circuit.Netlist

type t = {
  circuit : Netlist.t;
  faults : Fault.t array;
  index : (Fault.t, int) Hashtbl.t;
}

let of_faults circuit faults =
  let index = Hashtbl.create 256 in
  let keep =
    List.filter
      (fun f ->
        if Hashtbl.mem index f then false
        else begin
          Hashtbl.add index f (Hashtbl.length index);
          true
        end)
      faults
  in
  { circuit; faults = Array.of_list keep; index }

let full c = of_faults c (Fault.full_list c)

let collapsed c = of_faults c (Collapse.representatives c)

let circuit t = t.circuit
let size t = Array.length t.faults
let get t i = t.faults.(i)
let id_of t f = Hashtbl.find_opt t.index f
let iter f t = Array.iteri f t.faults
let fold f t init =
  let acc = ref init in
  Array.iteri (fun i fault -> acc := f i fault !acc) t.faults;
  !acc
let to_list t = Array.to_list t.faults
