module T = Bist_logic.Ternary

type site =
  | Output of Bist_circuit.Netlist.node
  | Pin of { gate : Bist_circuit.Netlist.node; pin : int }

type t = { site : site; stuck : T.t }

let stuck_at site stuck =
  if not (T.is_binary stuck) then invalid_arg "Fault.stuck_at: stuck value must be binary";
  { site; stuck }

let output_stuck node v = stuck_at (Output node) v
let pin_stuck ~gate ~pin v = stuck_at (Pin { gate; pin }) v

let full_list c =
  let module Netlist = Bist_circuit.Netlist in
  let faults = ref [] in
  let push f = faults := f :: !faults in
  for n = Netlist.size c - 1 downto 0 do
    Array.iteri
      (fun pin driver ->
        if Netlist.fanout_count c driver > 1 then begin
          push (pin_stuck ~gate:n ~pin T.One);
          push (pin_stuck ~gate:n ~pin T.Zero)
        end)
      (Netlist.fanins c n);
    push (output_stuck n T.One);
    push (output_stuck n T.Zero)
  done;
  !faults

let site_key = function
  | Output n -> (n, -1)
  | Pin { gate; pin } -> (gate, pin)

let equal a b = site_key a.site = site_key b.site && T.equal a.stuck b.stuck

let compare a b =
  let c = Stdlib.compare (site_key a.site) (site_key b.site) in
  if c <> 0 then c else T.compare a.stuck b.stuck

let hash t = Hashtbl.hash (site_key t.site, T.to_char t.stuck)

let name c t =
  let v = match t.stuck with T.Zero -> '0' | T.One -> '1' | T.X -> 'x' in
  match t.site with
  | Output n -> Printf.sprintf "%s/%c" (Bist_circuit.Netlist.name c n) v
  | Pin { gate; pin } ->
    Printf.sprintf "%s.in%d/%c" (Bist_circuit.Netlist.name c gate) pin v

let pp c fmt t = Format.pp_print_string fmt (name c t)
