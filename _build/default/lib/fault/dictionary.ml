module Bitset = Bist_util.Bitset

type t = {
  universe : Universe.t;
  num_sequences : int;
  syndromes : int array; (* bit k set = sequence k detects the fault *)
}

let build universe sequences =
  let n = Universe.size universe in
  if List.length sequences > 62 then
    invalid_arg "Dictionary.build: at most 62 sequences";
  let syndromes = Array.make n 0 in
  List.iteri
    (fun k seq ->
      let outcome = Fsim.run ~stop_when_all_detected:true universe seq in
      Bitset.iter
        (fun id -> syndromes.(id) <- syndromes.(id) lor (1 lsl k))
        outcome.Fsim.detected)
    sequences;
  { universe; num_sequences = List.length sequences; syndromes }

let num_sequences t = t.num_sequences

let syndrome t id =
  List.init t.num_sequences (fun k -> t.syndromes.(id) land (1 lsl k) <> 0)

let candidates t ~observed =
  if List.length observed <> t.num_sequences then
    invalid_arg "Dictionary.candidates: syndrome length mismatch";
  let target =
    List.fold_left
      (fun (acc, k) fail -> ((if fail then acc lor (1 lsl k) else acc), k + 1))
      (0, 0) observed
    |> fst
  in
  let out = ref [] in
  for id = Universe.size t.universe - 1 downto 0 do
    if t.syndromes.(id) = target then out := id :: !out
  done;
  !out

let distinguishable_classes t =
  let groups = Hashtbl.create 64 in
  Array.iteri
    (fun id syn ->
      if syn <> 0 then
        Hashtbl.replace groups syn
          (id :: Option.value ~default:[] (Hashtbl.find_opt groups syn)))
    t.syndromes;
  Hashtbl.fold (fun _ ids acc -> List.rev ids :: acc) groups []
  |> List.sort compare

let resolution t =
  let detected =
    Array.fold_left (fun acc syn -> if syn <> 0 then acc + 1 else acc) 0 t.syndromes
  in
  if detected = 0 then 0.0
  else float_of_int (List.length (distinguishable_classes t)) /. float_of_int detected
