(** Single stuck-at faults.

    A fault pins one circuit line to a constant. Lines are either a node's
    output (the {e stem}, seen by all consumers) or one fanin pin of one
    gate (a {e fanout branch}, seen by that consumer only). *)

type site =
  | Output of Bist_circuit.Netlist.node
  | Pin of { gate : Bist_circuit.Netlist.node; pin : int }

type t = private { site : site; stuck : Bist_logic.Ternary.t }

val stuck_at : site -> Bist_logic.Ternary.t -> t
(** Raises [Invalid_argument] if the stuck value is [X]. *)

val output_stuck : Bist_circuit.Netlist.node -> Bist_logic.Ternary.t -> t
val pin_stuck : gate:Bist_circuit.Netlist.node -> pin:int -> Bist_logic.Ternary.t -> t

val full_list : Bist_circuit.Netlist.t -> t list
(** Two faults per line of the circuit: every node output, plus every
    gate input pin whose driver branches. This is the shared source for
    {!Universe.full} and {!Collapse}. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val name : Bist_circuit.Netlist.t -> t -> string
(** Human-readable, e.g. ["G10/0"] for a stem fault or ["G8.in1/1"] for a
    branch fault. *)

val pp : Bist_circuit.Netlist.t -> Format.formatter -> t -> unit
