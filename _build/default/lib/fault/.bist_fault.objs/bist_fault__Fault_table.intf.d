lib/fault/fault_table.mli: Bist_logic Bist_util Universe
