lib/fault/fsim.ml: Array Bist_logic Bist_sim Bist_util Fault Option Universe
