lib/fault/fault.ml: Array Bist_circuit Bist_logic Format Hashtbl Printf Stdlib
