lib/fault/dictionary.mli: Bist_logic Universe
