lib/fault/universe.mli: Bist_circuit Fault
