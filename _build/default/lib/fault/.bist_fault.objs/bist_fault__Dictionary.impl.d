lib/fault/dictionary.ml: Array Bist_util Fsim Hashtbl List Option Universe
