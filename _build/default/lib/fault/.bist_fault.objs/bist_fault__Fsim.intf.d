lib/fault/fsim.mli: Bist_circuit Bist_logic Bist_util Fault Universe
