lib/fault/collapse.mli: Bist_circuit Fault
