lib/fault/universe.ml: Array Bist_circuit Collapse Fault Hashtbl List
