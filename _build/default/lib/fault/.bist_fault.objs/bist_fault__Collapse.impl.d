lib/fault/collapse.ml: Array Bist_circuit Bist_logic Fault Hashtbl List Option
