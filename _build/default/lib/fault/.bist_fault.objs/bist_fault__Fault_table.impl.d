lib/fault/fault_table.ml: Array Bist_logic Bist_util Fault Fsim List String Universe
