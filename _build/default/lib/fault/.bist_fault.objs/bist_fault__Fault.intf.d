lib/fault/fault.mli: Bist_circuit Bist_logic Format
