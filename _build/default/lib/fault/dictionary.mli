(** Pass/fail fault dictionaries for diagnosis.

    In the BIST session each stored sequence yields one signature, so the
    tester observes a pass/fail bit per sequence. A fault dictionary maps
    every modeled fault to its expected pass/fail syndrome over the
    expanded sequences; comparing an observed syndrome against it yields
    the candidate faults — the classic dictionary-based diagnosis that
    complements a signature-only BIST scheme.

    Syndromes are computed by fault simulation of each expanded sequence
    from the all-unknown state, exactly like the coverage runs. *)

type t

val build : Universe.t -> Bist_logic.Tseq.t list -> t
(** [build universe expanded_sequences] simulates every fault under every
    sequence. The sequences are the {e expanded} ones (apply
    [Bist_core.Ops.expand] before calling if you hold stored seeds). *)

val num_sequences : t -> int

val syndrome : t -> int -> bool list
(** [syndrome t fault_id] — element [k] is [true] when sequence [k]
    detects the fault (its signature would fail). *)

val candidates : t -> observed:bool list -> int list
(** Fault ids whose syndrome equals the observed pass/fail pattern,
    ascending. Raises [Invalid_argument] on a length mismatch. *)

val distinguishable_classes : t -> int list list
(** Partition of the detected faults into groups sharing a syndrome —
    the diagnosis resolution of the sequence set. Undetected faults
    (all-pass syndrome) are excluded. *)

val resolution : t -> float
(** Number of syndrome classes / number of detected faults; 1.0 means
    full diagnosability down to syndrome equivalence. *)
