(** Dense, indexed fault lists.

    The {e full} universe holds two faults per line: every node output,
    plus every gate input pin whose driving node branches (drives more
    than one pin). Pins of non-branching drivers are the same line as the
    driver's output, so they carry no separate fault.

    The {e collapsed} universe keeps one representative per structural
    equivalence class (see {!Collapse}); it is what the paper's "total
    faults" column counts. *)

type t

val full : Bist_circuit.Netlist.t -> t
val collapsed : Bist_circuit.Netlist.t -> t

val of_faults : Bist_circuit.Netlist.t -> Fault.t list -> t
(** Deduplicates; order of first occurrence. *)

val circuit : t -> Bist_circuit.Netlist.t
val size : t -> int
val get : t -> int -> Fault.t
val id_of : t -> Fault.t -> int option
val iter : (int -> Fault.t -> unit) -> t -> unit
val fold : (int -> Fault.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Fault.t list
