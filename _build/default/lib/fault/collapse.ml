module Netlist = Bist_circuit.Netlist
module Gate = Bist_circuit.Gate
module T = Bist_logic.Ternary

(* Classic union-find with path compression; class representative is the
   member with the smallest full-universe id. *)
module Uf = struct
  let create n = Array.init n (fun i -> i)

  let rec find t i = if t.(i) = i then i else begin
    t.(i) <- find t t.(i);
    t.(i)
  end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then
      if ra < rb then t.(rb) <- ra else t.(ra) <- rb
end

let build_index faults =
  let index = Hashtbl.create 256 in
  List.iteri (fun i f -> if not (Hashtbl.mem index f) then Hashtbl.add index f i) faults;
  index

(* The fault id representing the line feeding pin [pin] of gate [g]: the
   branch fault if the line branches, otherwise the driver's stem fault. *)
let line_fault c index g pin stuck =
  let driver = (Netlist.fanins c g).(pin) in
  let fault =
    if Netlist.fanout_count c driver > 1 then Fault.pin_stuck ~gate:g ~pin stuck
    else Fault.output_stuck driver stuck
  in
  Hashtbl.find index fault

let out_fault index n stuck = Hashtbl.find index (Fault.output_stuck n stuck)

let partition c =
  let faults = Fault.full_list c in
  let index = build_index faults in
  let n_faults = Hashtbl.length index in
  let uf = Uf.create n_faults in
  for g = 0 to Netlist.size c - 1 do
    let fanins = Netlist.fanins c g in
    let arity = Array.length fanins in
    let unite_all_pins in_v out_v =
      for pin = 0 to arity - 1 do
        Uf.union uf (line_fault c index g pin in_v) (out_fault index g out_v)
      done
    in
    match Netlist.kind c g with
    | Gate.Buf ->
      Uf.union uf (line_fault c index g 0 T.Zero) (out_fault index g T.Zero);
      Uf.union uf (line_fault c index g 0 T.One) (out_fault index g T.One)
    | Gate.Not ->
      Uf.union uf (line_fault c index g 0 T.Zero) (out_fault index g T.One);
      Uf.union uf (line_fault c index g 0 T.One) (out_fault index g T.Zero)
    | Gate.And -> unite_all_pins T.Zero T.Zero
    | Gate.Nand -> unite_all_pins T.Zero T.One
    | Gate.Or -> unite_all_pins T.One T.One
    | Gate.Nor -> unite_all_pins T.One T.Zero
    (* DFF input/output faults are only *dominated*, not equivalent, under
       pessimistic 3-valued simulation (the output fault forces the state at
       time 0, the input fault cannot), so DFFs are left uncollapsed. *)
    | Gate.Input | Gate.Dff | Gate.Xor | Gate.Xnor | Gate.Const0 | Gate.Const1 -> ()
  done;
  let fault_arr = Array.of_list faults in
  (fault_arr, Array.init n_faults (fun i -> Uf.find uf i))

let representatives c =
  let faults, root = partition c in
  let keep = ref [] in
  Array.iteri (fun i f -> if root.(i) = i then keep := f :: !keep) faults;
  List.rev !keep

let classes c =
  let faults, root = partition c in
  let members = Hashtbl.create 64 in
  Array.iteri
    (fun i f ->
      let r = root.(i) in
      Hashtbl.replace members r (f :: Option.value ~default:[] (Hashtbl.find_opt members r)))
    faults;
  let out = ref [] in
  Array.iteri
    (fun i _ ->
      match Hashtbl.find_opt members i with
      | Some ms -> out := List.rev ms :: !out
      | None -> ())
    faults;
  List.rev !out
