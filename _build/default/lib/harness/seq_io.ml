module Tseq = Bist_logic.Tseq

let strip line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.trim line

let parse_lines lines =
  let vectors =
    List.filter_map
      (fun (lineno, line) ->
        let line = strip line in
        if line = "" then None
        else
          match Bist_logic.Vector.of_string line with
          | v -> Some v
          | exception Invalid_argument msg ->
            failwith (Printf.sprintf "line %d: %s" lineno msg))
      lines
  in
  match vectors with
  | [] -> failwith "sequence file contains no vectors"
  | vs -> Tseq.of_vectors (Array.of_list vs)

let numbered text =
  List.mapi (fun i line -> (i + 1, line)) (String.split_on_char '\n' text)

let parse text = parse_lines (numbered text)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path = parse (read_file path)

let to_string seq = String.concat "\n" (Tseq.to_strings seq) ^ "\n"

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let save seq path = write_file path (to_string seq)

let save_set seqs path =
  write_file path (String.concat "--\n" (List.map to_string seqs))

let load_set path =
  let text = read_file path in
  let chunks = ref [] in
  let current = ref [] in
  let lineno = ref 0 in
  let flush_chunk () =
    if !current <> [] then begin
      chunks := parse_lines (List.rev !current) :: !chunks;
      current := []
    end
  in
  List.iter
    (fun line ->
      incr lineno;
      if strip line = "--" then flush_chunk ()
      else current := (!lineno, line) :: !current)
    (String.split_on_char '\n' text);
  flush_chunk ();
  List.rev !chunks
