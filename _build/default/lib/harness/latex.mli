(** LaTeX export of the result tables.

    Emits [tabular] environments matching the paper's table layouts, for
    dropping measured results straight into a writeup. Numbers are
    rendered exactly as in the ASCII tables. *)

val table3 : Experiment.circuit_result list -> string
val table5 : Experiment.circuit_result list -> string

val comparison : Experiment.circuit_result list -> string
(** The measured-vs-paper table. *)
