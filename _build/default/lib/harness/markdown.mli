(** EXPERIMENTS.md generation.

    Renders the full measured-vs-paper record from one suite run:
    Tables 3-5, the comparison table, Figure 1, per-circuit pipeline
    details, and the standing caveats (synthetic circuits, T0 substitute,
    scaled x35932). [bin/report.exe] writes the file; committing its
    output keeps the repository's EXPERIMENTS.md reproducible. *)

val experiments_md : Experiment.circuit_result list -> string

val robustness_md : Experiment.robustness list -> string
(** The seed-robustness appendix; [bin/report.exe] appends it for a few
    small circuits. *)
