module Tseq = Bist_logic.Tseq

let render ?(seed = 11) ?(n = 4) ~t0 universe =
  let rng = Bist_util.Rng.create seed in
  let result = Bist_core.Procedure1.run ~rng ~n ~t0 universe in
  let len = Tseq.length t0 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "Figure 1: subsequences selected from T0 (length %d, n = %d)\n" len n);
  let axis = Bytes.make len '-' in
  Buffer.add_string buf (Printf.sprintf "T0  |%s|\n" (Bytes.to_string axis));
  List.iteri
    (fun i (sel : Bist_core.Procedure1.selected) ->
      let o = sel.proc2 in
      let udet = o.Bist_core.Procedure2.ustart + o.window_length - 1 in
      let line = Bytes.make len ' ' in
      for u = o.Bist_core.Procedure2.ustart to udet do
        Bytes.set line u '='
      done;
      Buffer.add_string buf
        (Printf.sprintf "S%-3d|%s| window [%d,%d], stored %d vectors\n" (i + 1)
           (Bytes.to_string line) o.Bist_core.Procedure2.ustart udet
           (Tseq.length sel.seq)))
    result.Bist_core.Procedure1.selected;
  Buffer.contents buf

let render_s27 () =
  let circuit = Bist_bench.S27.circuit () in
  let universe = Bist_fault.Universe.collapsed circuit in
  render ~seed:11 ~n:1 ~t0:(Bist_bench.S27.t0 ()) universe
