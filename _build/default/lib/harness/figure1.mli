(** ASCII rendering of the paper's Figure 1.

    Figure 1 shows subsequences [S1, S2, S3] drawn from their positions
    inside [T0]. This module re-runs Procedure 1 on a circuit and draws
    each selected window [T0\[ustart, udet\]] as a bar over the time axis
    of [T0], annotated with the stored length that survives vector
    omission. *)

val render :
  ?seed:int ->
  ?n:int ->
  t0:Bist_logic.Tseq.t ->
  Bist_fault.Universe.t ->
  string

val render_s27 : unit -> string
(** The figure for s27 with the paper's own T0 and n = 1, matching the
    Section 3.1 walkthrough. *)
