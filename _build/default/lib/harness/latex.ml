module Scheme = Bist_core.Scheme

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '_' -> "\\_"
         | '%' -> "\\%"
         | '&' -> "\\&"
         | '#' -> "\\#"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let tabular ~caption ~columns ~header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "\\begin{table}\n\\centering\n";
  Buffer.add_string buf (Printf.sprintf "\\caption{%s}\n" caption);
  Buffer.add_string buf (Printf.sprintf "\\begin{tabular}{%s}\n\\hline\n" columns);
  Buffer.add_string buf (String.concat " & " (List.map escape header) ^ " \\\\\n\\hline\n");
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat " & " (List.map escape row) ^ " \\\\\n"))
    rows;
  Buffer.add_string buf "\\hline\n\\end{tabular}\n\\end{table}\n";
  Buffer.contents buf

let fi = string_of_int
let ff2 v = Printf.sprintf "%.2f" v

let table3 results =
  tabular ~caption:"Experimental results (Table 3)" ~columns:"l rrr r rrr rrr"
    ~header:
      [ "circuit"; "tot"; "det"; "len"; "n"; "|S|"; "tot len"; "max len";
        "|S|'"; "tot len'"; "max len'" ]
    (List.map
       (fun (r : Experiment.circuit_result) ->
         let b = r.best in
         [ r.name; fi b.total_faults; fi b.detected_by_t0; fi b.t0_length;
           fi b.n; fi b.before.count; fi b.before.total_length;
           fi b.before.max_length; fi b.after.count; fi b.after.total_length;
           fi b.after.max_length ])
       results)

let table5 results =
  let avg_tot, avg_max = Tables.averages results in
  tabular ~caption:"Comparison with $T_0$ (Table 5)" ~columns:"l rr rrrr r"
    ~header:
      [ "circuit"; "len"; "n"; "tot len"; "/T0"; "max len"; "/T0"; "test len" ]
    (List.map
       (fun (r : Experiment.circuit_result) ->
         let b = r.best in
         [ r.name; fi b.t0_length; fi b.n; fi b.after.total_length;
           ff2 (Scheme.ratio_total b); fi b.after.max_length;
           ff2 (Scheme.ratio_max b); fi b.expanded_total_length ])
       results
    @ [ [ "average"; ""; ""; ""; ff2 avg_tot; ""; ff2 avg_max; "" ] ])

let comparison results =
  let avg_tot, avg_max = Tables.averages results in
  tabular ~caption:"Measured vs paper (headline ratios)" ~columns:"ll rr rr"
    ~header:
      [ "circuit"; "paper"; "tot/T0 paper"; "tot/T0 ours"; "max/T0 paper";
        "max/T0 ours" ]
    (List.filter_map
       (fun (r : Experiment.circuit_result) ->
         match Paper_data.find r.paper_name with
         | None -> None
         | Some p ->
           Some
             [ r.name; p.circuit;
               ff2 (float_of_int p.after_total /. float_of_int p.t0_length);
               ff2 (Scheme.ratio_total r.best);
               ff2 (float_of_int p.after_max /. float_of_int p.t0_length);
               ff2 (Scheme.ratio_max r.best) ])
       results
    @ [ [ "average"; ""; ff2 Paper_data.avg_ratio_total; ff2 avg_tot;
          ff2 Paper_data.avg_ratio_max; ff2 avg_max ] ])
