(** Plain-text test sequence files.

    One vector per line over the alphabet [0], [1], [x]; [#] starts a
    comment; blank lines are ignored. This is the interchange format of
    the [bistgen] command-line tool. *)

val parse : string -> Bist_logic.Tseq.t
(** Parse file contents. Raises [Failure] with a line diagnostic. *)

val load : string -> Bist_logic.Tseq.t
(** Read a file. *)

val to_string : Bist_logic.Tseq.t -> string

val save : Bist_logic.Tseq.t -> string -> unit

val save_set : Bist_logic.Tseq.t list -> string -> unit
(** Write a stored-sequence set: sequences separated by [--] lines. *)

val load_set : string -> Bist_logic.Tseq.t list
