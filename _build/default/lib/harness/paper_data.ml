type row = {
  circuit : string;
  total_faults : int;
  detected : int;
  t0_length : int;
  n : int;
  before_count : int;
  before_total : int;
  before_max : int;
  after_count : int;
  after_total : int;
  after_max : int;
  proc1_norm_time : float;
  comp_norm_time : float;
}

(* Tables 3 and 4 of the paper, verbatim. *)
let rows =
  [
    { circuit = "s298"; total_faults = 308; detected = 265; t0_length = 117;
      n = 16; before_count = 7; before_total = 42; before_max = 17;
      after_count = 4; after_total = 27; after_max = 17;
      proc1_norm_time = 30.62; comp_norm_time = 64.59 };
    { circuit = "s344"; total_faults = 342; detected = 329; t0_length = 57;
      n = 8; before_count = 7; before_total = 19; before_max = 6;
      after_count = 5; after_total = 14; after_max = 6;
      proc1_norm_time = 10.99; comp_norm_time = 19.16 };
    { circuit = "s382"; total_faults = 399; detected = 364; t0_length = 516;
      n = 16; before_count = 9; before_total = 337; before_max = 94;
      after_count = 5; after_total = 272; after_max = 94;
      proc1_norm_time = 308.27; comp_norm_time = 137.66 };
    { circuit = "s400"; total_faults = 421; detected = 380; t0_length = 611;
      n = 16; before_count = 6; before_total = 261; before_max = 100;
      after_count = 5; after_total = 259; after_max = 100;
      proc1_norm_time = 224.93; comp_norm_time = 147.31 };
    { circuit = "s526"; total_faults = 555; detected = 454; t0_length = 1006;
      n = 16; before_count = 12; before_total = 717; before_max = 122;
      after_count = 9; after_total = 637; after_max = 122;
      proc1_norm_time = 328.57; comp_norm_time = 93.67 };
    { circuit = "s641"; total_faults = 467; detected = 404; t0_length = 101;
      n = 16; before_count = 20; before_total = 42; before_max = 8;
      after_count = 13; after_total = 29; after_max = 8;
      proc1_norm_time = 43.76; comp_norm_time = 62.44 };
    { circuit = "s820"; total_faults = 850; detected = 814; t0_length = 491;
      n = 4; before_count = 54; before_total = 534; before_max = 15;
      after_count = 45; after_total = 454; after_max = 15;
      proc1_norm_time = 83.03; comp_norm_time = 71.49 };
    { circuit = "s1196"; total_faults = 1242; detected = 1239; t0_length = 238;
      n = 4; before_count = 110; before_total = 152; before_max = 2;
      after_count = 100; after_total = 137; after_max = 2;
      proc1_norm_time = 13.27; comp_norm_time = 47.14 };
    { circuit = "s1423"; total_faults = 1515; detected = 1414; t0_length = 1024;
      n = 8; before_count = 24; before_total = 464; before_max = 82;
      after_count = 21; after_total = 422; after_max = 82;
      proc1_norm_time = 103.10; comp_norm_time = 56.45 };
    { circuit = "s1488"; total_faults = 1486; detected = 1444; t0_length = 455;
      n = 8; before_count = 19; before_total = 254; before_max = 44;
      after_count = 15; after_total = 220; after_max = 44;
      proc1_norm_time = 41.16; comp_norm_time = 77.17 };
    { circuit = "s5378"; total_faults = 4603; detected = 3639; t0_length = 646;
      n = 8; before_count = 43; before_total = 348; before_max = 29;
      after_count = 38; after_total = 326; after_max = 29;
      proc1_norm_time = 9.46; comp_norm_time = 20.74 };
    { circuit = "s35932"; total_faults = 39094; detected = 35100; t0_length = 257;
      n = 8; before_count = 20; before_total = 406; before_max = 32;
      after_count = 6; after_total = 77; after_max = 32;
      proc1_norm_time = 6.71; comp_norm_time = 16.08 };
  ]

let find name =
  let name =
    if String.length name > 0 && name.[0] = 'x' then "s" ^ String.sub name 1 (String.length name - 1)
    else name
  in
  List.find_opt (fun r -> r.circuit = name) rows

let avg_ratio_total = 0.46
let avg_ratio_max = 0.10
