(** The ablation study of DESIGN.md section 5, as data.

    Each variant switches off or replaces one design choice of the scheme
    — Procedure 1's fault ordering, Procedure 2's omission phase and
    strategy, the expansion operator set, the postprocessing passes — and
    reports the resulting stored-set quality. Coverage of [F] must hold
    for every variant (the operators always keep the stored seed as a
    prefix of the expansion), so the interesting columns are the sizes. *)

type variant = {
  label : string;
  operators : Bist_core.Ops.operator list;
  strategy : Bist_core.Procedure2.strategy;
  fault_order : [ `Max_udet | `Min_udet | `Random ];
  passes : Bist_core.Postprocess.pass list;
}

val variants : variant list
(** The paper's configuration first, then one change at a time. *)

type row = {
  variant : variant;
  count : int;
  total_length : int;
  max_length : int;
  covers : bool;  (** Whether the compacted set still covers [F]. *)
}

val run :
  ?seed:int ->
  n:int ->
  t0:Bist_logic.Tseq.t ->
  Bist_fault.Universe.t ->
  row list

val render : row list -> string
