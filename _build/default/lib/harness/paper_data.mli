(** The numbers published in the paper's Tables 3-5, for side-by-side
    comparison in EXPERIMENTS.md and the table printers. *)

type row = {
  circuit : string;
  total_faults : int;
  detected : int;
  t0_length : int;
  n : int;
  before_count : int;  (** |S| before static compaction. *)
  before_total : int;
  before_max : int;
  after_count : int;
  after_total : int;
  after_max : int;
  proc1_norm_time : float;  (** Table 4, normalized by simulate-T0 time. *)
  comp_norm_time : float;
}

val rows : row list
(** All twelve circuits of Table 3, in the paper's order. *)

val find : string -> row option
(** By ISCAS name ("s298") or stand-in name ("x298"). *)

val avg_ratio_total : float
(** 0.46 — the paper's average of (after total / |T0|). *)

val avg_ratio_max : float
(** 0.10 — the paper's average of (after max / |T0|). *)
