module Ops = Bist_core.Ops
module Procedure1 = Bist_core.Procedure1
module Procedure2 = Bist_core.Procedure2
module Postprocess = Bist_core.Postprocess
module Bitset = Bist_util.Bitset
module Fsim = Bist_fault.Fsim

type variant = {
  label : string;
  operators : Ops.operator list;
  strategy : Procedure2.strategy;
  fault_order : [ `Max_udet | `Min_udet | `Random ];
  passes : Postprocess.pass list;
}

let paper =
  {
    label = "paper (all ops, max-udet, restart)";
    operators = Ops.all_operators;
    strategy = Procedure2.paper_strategy;
    fault_order = `Max_udet;
    passes = Postprocess.default_passes;
  }

let variants =
  [
    paper;
    { paper with label = "fault order: min udet"; fault_order = `Min_udet };
    { paper with label = "fault order: random"; fault_order = `Random };
    { paper with label = "no vector omission";
      strategy = { Procedure2.paper_strategy with omission = `None } };
    { paper with label = "fast strategy (geometric, 1 pass)";
      strategy = Procedure2.fast_strategy };
    { paper with label = "operators: repeat only"; operators = [ Ops.Repeat ] };
    { paper with label = "operators: repeat+complement";
      operators = [ Ops.Repeat; Ops.Complement ] };
    { paper with label = "operators: no shift";
      operators = [ Ops.Repeat; Ops.Complement; Ops.Reverse ] };
    { paper with label = "compaction: single pass";
      passes = [ Postprocess.Reverse_generation ] };
    { paper with label = "compaction: none"; passes = [] };
  ]

type row = {
  variant : variant;
  count : int;
  total_length : int;
  max_length : int;
  covers : bool;
}

let covers universe ~operators ~n sequences targets =
  let remaining = Bitset.copy targets in
  List.iter
    (fun s ->
      if not (Bitset.is_empty remaining) then begin
        let exp = Ops.expand_with ~operators ~n s in
        let o =
          Fsim.run ~targets:remaining ~stop_when_all_detected:true universe exp
        in
        Bitset.diff_into remaining o.Fsim.detected
      end)
    sequences;
  Bitset.is_empty remaining

let run ?(seed = 5) ~n ~t0 universe =
  List.map
    (fun v ->
      let rng = Bist_util.Rng.create seed in
      let r =
        Procedure1.run ~strategy:v.strategy ~operators:v.operators
          ~fault_order:v.fault_order ~rng ~n ~t0 universe
      in
      let post =
        Postprocess.run ~passes:v.passes ~operators:v.operators ~n
          ~targets:r.Procedure1.t0_detected universe
          (Procedure1.sequences r)
      in
      let kept = post.Postprocess.kept in
      {
        variant = v;
        count = List.length kept;
        total_length = Procedure1.total_length kept;
        max_length = Procedure1.max_length kept;
        covers =
          covers universe ~operators:v.operators ~n kept
            r.Procedure1.t0_detected;
      })
    variants

let render rows =
  let module At = Bist_util.Ascii_table in
  let table =
    At.create
      ~headers:
        [ ("variant", At.Left); ("|S|", At.Right); ("tot len", At.Right);
          ("max len", At.Right); ("covers F", At.Right) ]
  in
  List.iter
    (fun r ->
      At.add_row table
        [ r.variant.label; string_of_int r.count; string_of_int r.total_length;
          string_of_int r.max_length; string_of_bool r.covers ])
    rows;
  At.render table
