lib/harness/latex.mli: Experiment
