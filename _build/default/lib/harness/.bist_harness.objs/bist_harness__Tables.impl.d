lib/harness/tables.ml: Bist_core Bist_util Experiment List Paper_data Printf
