lib/harness/tables.mli: Experiment
