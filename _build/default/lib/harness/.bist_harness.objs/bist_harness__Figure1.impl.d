lib/harness/figure1.ml: Bist_bench Bist_core Bist_fault Bist_logic Bist_util Buffer Bytes List Printf
