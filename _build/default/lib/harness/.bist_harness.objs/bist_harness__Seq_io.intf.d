lib/harness/seq_io.mli: Bist_logic
