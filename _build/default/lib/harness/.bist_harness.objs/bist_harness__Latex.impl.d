lib/harness/latex.ml: Bist_core Buffer Experiment List Paper_data Printf String Tables
