lib/harness/figure1.mli: Bist_fault Bist_logic
