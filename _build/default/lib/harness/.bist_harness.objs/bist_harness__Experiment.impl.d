lib/harness/experiment.ml: Bist_bench Bist_circuit Bist_core Bist_fault Bist_logic Bist_tgen Bist_util Float List Printf
