lib/harness/markdown.mli: Experiment
