lib/harness/ablation.mli: Bist_core Bist_fault Bist_logic
