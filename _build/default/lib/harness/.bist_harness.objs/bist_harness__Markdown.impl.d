lib/harness/markdown.ml: Bist_circuit Bist_core Bist_tgen Bist_util Buffer Experiment Figure1 List Paper_data Printf String Tables
