lib/harness/experiment.mli: Bist_bench Bist_circuit Bist_core Bist_logic Bist_tgen
