lib/harness/ablation.ml: Bist_core Bist_fault Bist_util List
