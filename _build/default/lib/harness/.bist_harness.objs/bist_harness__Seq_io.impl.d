lib/harness/seq_io.ml: Array Bist_logic Fun List Printf String
