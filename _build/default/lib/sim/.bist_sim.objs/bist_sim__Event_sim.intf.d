lib/sim/event_sim.mli: Bist_circuit Bist_logic
