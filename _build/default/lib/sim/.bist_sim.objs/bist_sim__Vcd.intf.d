lib/sim/vcd.mli: Bist_circuit Bist_logic
