lib/sim/vcd.ml: Array Bist_circuit Bist_logic Buffer Char Fun Printf Seq_sim
