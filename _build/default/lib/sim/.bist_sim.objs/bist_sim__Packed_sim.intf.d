lib/sim/packed_sim.mli: Bist_circuit Bist_logic
