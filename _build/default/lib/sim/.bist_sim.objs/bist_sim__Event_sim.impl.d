lib/sim/event_sim.ml: Array Bist_circuit Bist_logic List
