lib/sim/seq_sim.ml: Array Bist_circuit Bist_logic
