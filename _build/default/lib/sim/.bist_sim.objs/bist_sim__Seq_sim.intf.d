lib/sim/seq_sim.mli: Bist_circuit Bist_logic
