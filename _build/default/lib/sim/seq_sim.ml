module T = Bist_logic.Ternary
module Netlist = Bist_circuit.Netlist
module Gate = Bist_circuit.Gate

type t = {
  circuit : Netlist.t;
  values : T.t array; (* per-node value during the current step *)
  state : T.t array; (* per-FF present state, dffs order *)
  scratch : T.t array array; (* per-fanin-arity scratch buffers *)
}

let max_fanin c =
  let m = ref 1 in
  for n = 0 to Netlist.size c - 1 do
    m := max !m (Array.length (Netlist.fanins c n))
  done;
  !m

let create circuit =
  {
    circuit;
    values = Array.make (Netlist.size circuit) T.X;
    state = Array.make (Netlist.num_dffs circuit) T.X;
    scratch = Array.init (max_fanin circuit + 1) (fun k -> Array.make k T.X);
  }

let circuit t = t.circuit

let reset t = Array.fill t.state 0 (Array.length t.state) T.X

let step t vec =
  let c = t.circuit in
  if Bist_logic.Vector.width vec <> Netlist.num_inputs c then
    invalid_arg "Seq_sim.step: vector width mismatch";
  Array.iteri (fun i n -> t.values.(n) <- Bist_logic.Vector.get vec i) (Netlist.inputs c);
  Array.iteri (fun i n -> t.values.(n) <- t.state.(i)) (Netlist.dffs c);
  Array.iter
    (fun n ->
      let fanins = Netlist.fanins c n in
      let k = Array.length fanins in
      let buf = t.scratch.(k) in
      for i = 0 to k - 1 do
        buf.(i) <- t.values.(fanins.(i))
      done;
      t.values.(n) <- Gate.eval (Netlist.kind c n) buf)
    (Netlist.topo_order c);
  let response =
    Bist_logic.Vector.init (Netlist.num_outputs c) (fun i ->
        t.values.((Netlist.outputs c).(i)))
  in
  Array.iteri
    (fun i n -> t.state.(i) <- t.values.((Netlist.fanins c n).(0)))
    (Netlist.dffs c);
  response

let node_value t n = t.values.(n)

let ff_state t = Array.copy t.state

let run circuit seq =
  let sim = create circuit in
  Array.init (Bist_logic.Tseq.length seq) (fun u ->
      step sim (Bist_logic.Tseq.get seq u))
