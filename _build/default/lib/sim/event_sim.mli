(** Event-driven three-valued sequential simulation.

    Functionally identical to {!Seq_sim} (the test suite checks them
    against each other on random circuits), but gates are re-evaluated
    only when a fanin actually changed — the classic EDA trade-off that
    wins when activity per cycle is low, e.g. long hold-mode sequences
    where the same vector is applied repeatedly.

    Events propagate level by level, so each gate is evaluated at most
    once per cycle. *)

type t

val create : Bist_circuit.Netlist.t -> t
val circuit : t -> Bist_circuit.Netlist.t

val reset : t -> unit
(** Flip-flops back to X; the next step re-evaluates everything. *)

val step : t -> Bist_logic.Vector.t -> Bist_logic.Vector.t
(** Same contract as {!Seq_sim.step}. *)

val run : Bist_circuit.Netlist.t -> Bist_logic.Tseq.t -> Bist_logic.Vector.t array

val evaluations : t -> int
(** Gate evaluations performed since creation — the activity measure the
    benchmarks report. *)
