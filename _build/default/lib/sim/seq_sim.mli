(** Fault-free three-valued sequential simulation.

    The simulator is levelized: each {!step} applies one input vector,
    evaluates every combinational gate once in topological order, reads
    the primary outputs, and then clocks every flip-flop (new state :=
    the value its fanin had this cycle). A freshly created or {!reset}
    simulator has every flip-flop at X — the paper's "all-unspecified
    state". *)

type t

val create : Bist_circuit.Netlist.t -> t
(** Allocate a simulator in the reset (all-X) state. *)

val circuit : t -> Bist_circuit.Netlist.t

val reset : t -> unit
(** Return every flip-flop to X. *)

val step : t -> Bist_logic.Vector.t -> Bist_logic.Vector.t
(** Apply one input vector (width = number of PIs) and return the primary
    output values of the same cycle. Advances the flip-flop state. *)

val node_value : t -> Bist_circuit.Netlist.node -> Bist_logic.Ternary.t
(** Value a node had during the most recent {!step}. Flip-flop nodes
    report their {e present-state} output during that step. *)

val ff_state : t -> Bist_logic.Ternary.t array
(** Current flip-flop state, in [Netlist.dffs] order (the state that will
    feed the {e next} step). Fresh array. *)

val run : Bist_circuit.Netlist.t -> Bist_logic.Tseq.t -> Bist_logic.Vector.t array
(** Simulate a whole sequence from the reset state; element [u] is the PO
    response at time unit [u]. *)
