module T = Bist_logic.Ternary
module P = Bist_logic.Packed
module Netlist = Bist_circuit.Netlist
module Gate = Bist_circuit.Gate

(* Forces are compiled into per-node masks: [f1]/[f0] select lanes pinned
   to 1/0. Applying them to a plane pair is branch-free:
     ones  := (ones  land lnot (f1 lor f0)) lor f1
     zeros := (zeros land lnot (f1 lor f0)) lor f0

   The evaluation loop is the performance kernel of the library: it uses
   unsafe array accesses (indices come from the compiled program, which
   is validated at construction) and accumulates into mutable fields of
   [t] instead of ref cells to keep the loop allocation-free. *)

type t = {
  circuit : Netlist.t;
  ones : int array; (* per-node one-plane, current step *)
  zeros : int array;
  state_ones : int array; (* per-FF present state, dffs order *)
  state_zeros : int array;
  out_f1 : int array; (* per-node output-force masks *)
  out_f0 : int array;
  mutable pin_forced_gates : int list; (* gates with at least one pin force *)
  pin_f1 : int array array; (* per-gate per-pin masks; [||] when none *)
  pin_f0 : int array array;
  mutable diff_lanes : int; (* detection mask of the last step *)
  mutable acc_o : int; (* loop accumulators, see header comment *)
  mutable acc_z : int;
  (* encoded combinational program, see [kind_code]: CSR layout keeps the
     evaluation loop on contiguous ints. *)
  prog_node : int array;
  prog_kind : int array;
  prog_off : int array; (* start of each gate's fanins in [prog_fan] *)
  prog_len : int array;
  prog_fan : int array;
  prog_fanins : int array array; (* per-gate view, for the forced path *)
}

let kind_code = function
  | Gate.Buf -> 0
  | Gate.Not -> 1
  | Gate.And -> 2
  | Gate.Nand -> 3
  | Gate.Or -> 4
  | Gate.Nor -> 5
  | Gate.Xor -> 6
  | Gate.Xnor -> 7
  | Gate.Const0 -> 8
  | Gate.Const1 -> 9
  | Gate.Input | Gate.Dff -> invalid_arg "Packed_sim: not combinational"

let create circuit =
  let n = Netlist.size circuit in
  let topo = Netlist.topo_order circuit in
  let fanins = Array.map (fun g -> Netlist.fanins circuit g) topo in
  let total_fan = Array.fold_left (fun acc f -> acc + Array.length f) 0 fanins in
  let prog_off = Array.make (Array.length topo) 0 in
  let prog_len = Array.make (Array.length topo) 0 in
  let prog_fan = Array.make (max 1 total_fan) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun i f ->
      prog_off.(i) <- !pos;
      prog_len.(i) <- Array.length f;
      Array.iter
        (fun d ->
          prog_fan.(!pos) <- d;
          incr pos)
        f)
    fanins;
  {
    circuit;
    ones = Array.make n 0;
    zeros = Array.make n 0;
    state_ones = Array.make (Netlist.num_dffs circuit) 0;
    state_zeros = Array.make (Netlist.num_dffs circuit) 0;
    out_f1 = Array.make n 0;
    out_f0 = Array.make n 0;
    pin_forced_gates = [];
    pin_f1 = Array.make n [||];
    pin_f0 = Array.make n [||];
    diff_lanes = 0;
    acc_o = 0;
    acc_z = 0;
    prog_node = Array.copy topo;
    prog_kind = Array.map (fun g -> kind_code (Netlist.kind circuit g)) topo;
    prog_off;
    prog_len;
    prog_fan;
    prog_fanins = fanins;
  }

let circuit t = t.circuit

let check_mask mask =
  if mask land 1 <> 0 then
    invalid_arg "Packed_sim: lane 0 is reserved for the fault-free machine"

let add_output_force t node ~mask stuck =
  check_mask mask;
  match stuck with
  | T.One -> t.out_f1.(node) <- t.out_f1.(node) lor mask
  | T.Zero -> t.out_f0.(node) <- t.out_f0.(node) lor mask
  | T.X -> invalid_arg "Packed_sim.add_output_force: X"

let add_pin_force t ~gate ~pin ~mask stuck =
  check_mask mask;
  let arity = Array.length (Netlist.fanins t.circuit gate) in
  if pin < 0 || pin >= arity then invalid_arg "Packed_sim.add_pin_force: pin out of range";
  if Array.length t.pin_f1.(gate) = 0 then begin
    t.pin_f1.(gate) <- Array.make arity 0;
    t.pin_f0.(gate) <- Array.make arity 0;
    t.pin_forced_gates <- gate :: t.pin_forced_gates
  end;
  (match stuck with
   | T.One -> t.pin_f1.(gate).(pin) <- t.pin_f1.(gate).(pin) lor mask
   | T.Zero -> t.pin_f0.(gate).(pin) <- t.pin_f0.(gate).(pin) lor mask
   | T.X -> invalid_arg "Packed_sim.add_pin_force: X")

let clear_forces t =
  Array.fill t.out_f1 0 (Array.length t.out_f1) 0;
  Array.fill t.out_f0 0 (Array.length t.out_f0) 0;
  List.iter
    (fun g ->
      t.pin_f1.(g) <- [||];
      t.pin_f0.(g) <- [||])
    t.pin_forced_gates;
  t.pin_forced_gates <- []

let reset t =
  Array.fill t.state_ones 0 (Array.length t.state_ones) 0;
  Array.fill t.state_zeros 0 (Array.length t.state_zeros) 0

let full = -1

(* Fanin accumulation for a gate with no pin forces, into acc_o/acc_z.
   [off]/[k] index the CSR fanin table; the two-input case (the vast
   majority of gates) is unrolled. *)
let accumulate_plain t kind off k =
  let ones = t.ones and zeros = t.zeros in
  let fan = t.prog_fan in
  match kind with
  | 2 | 3 ->
    (* AND / NAND *)
    if k = 2 then begin
      let a = Array.unsafe_get fan off and b = Array.unsafe_get fan (off + 1) in
      t.acc_o <- Array.unsafe_get ones a land Array.unsafe_get ones b;
      t.acc_z <- Array.unsafe_get zeros a lor Array.unsafe_get zeros b
    end
    else begin
      let o = ref full and z = ref 0 in
      for i = off to off + k - 1 do
        let d = Array.unsafe_get fan i in
        o := !o land Array.unsafe_get ones d;
        z := !z lor Array.unsafe_get zeros d
      done;
      t.acc_o <- !o;
      t.acc_z <- !z
    end
  | 4 | 5 ->
    (* OR / NOR *)
    if k = 2 then begin
      let a = Array.unsafe_get fan off and b = Array.unsafe_get fan (off + 1) in
      t.acc_o <- Array.unsafe_get ones a lor Array.unsafe_get ones b;
      t.acc_z <- Array.unsafe_get zeros a land Array.unsafe_get zeros b
    end
    else begin
      let o = ref 0 and z = ref full in
      for i = off to off + k - 1 do
        let d = Array.unsafe_get fan i in
        o := !o lor Array.unsafe_get ones d;
        z := !z land Array.unsafe_get zeros d
      done;
      t.acc_o <- !o;
      t.acc_z <- !z
    end
  | 6 | 7 ->
    (* XOR / XNOR *)
    let o = ref 0 and z = ref full in
    for i = off to off + k - 1 do
      let d = Array.unsafe_get fan i in
      let io = Array.unsafe_get ones d and iz = Array.unsafe_get zeros d in
      let no = (!o land iz) lor (!z land io) in
      z := (!o land io) lor (!z land iz);
      o := no
    done;
    t.acc_o <- !o;
    t.acc_z <- !z
  | 0 | 1 ->
    let d = Array.unsafe_get fan off in
    t.acc_o <- Array.unsafe_get ones d;
    t.acc_z <- Array.unsafe_get zeros d
  | 8 ->
    t.acc_o <- 0;
    t.acc_z <- full
  | _ ->
    t.acc_o <- full;
    t.acc_z <- 0

(* Same, honouring the gate's per-pin force masks. Only reached for the
   handful of gates carrying branch faults in the current group. *)
let accumulate_forced t kind fanins k pf1 pf0 =
  let ones = t.ones and zeros = t.zeros in
  let pin i =
    let d = Array.unsafe_get fanins i in
    let f1 = Array.unsafe_get pf1 i and f0 = Array.unsafe_get pf0 i in
    let keep = lnot (f1 lor f0) in
    t.acc_o <- (Array.unsafe_get ones d land keep) lor f1;
    t.acc_z <- (Array.unsafe_get zeros d land keep) lor f0
  in
  match kind with
  | 2 | 3 ->
    let o = ref full and z = ref 0 in
    for i = 0 to k - 1 do
      pin i;
      o := !o land t.acc_o;
      z := !z lor t.acc_z
    done;
    t.acc_o <- !o;
    t.acc_z <- !z
  | 4 | 5 ->
    let o = ref 0 and z = ref full in
    for i = 0 to k - 1 do
      pin i;
      o := !o lor t.acc_o;
      z := !z land t.acc_z
    done;
    t.acc_o <- !o;
    t.acc_z <- !z
  | 6 | 7 ->
    let o = ref 0 and z = ref full in
    for i = 0 to k - 1 do
      pin i;
      let io = t.acc_o and iz = t.acc_z in
      let no = (!o land iz) lor (!z land io) in
      z := (!o land io) lor (!z land iz);
      o := no
    done;
    t.acc_o <- !o;
    t.acc_z <- !z
  | 0 | 1 -> pin 0
  | 8 ->
    t.acc_o <- 0;
    t.acc_z <- full
  | _ ->
    t.acc_o <- full;
    t.acc_z <- 0

let step t vec =
  let c = t.circuit in
  if Bist_logic.Vector.width vec <> Netlist.num_inputs c then
    invalid_arg "Packed_sim.step: vector width mismatch";
  let ones = t.ones and zeros = t.zeros in
  (* Load primary inputs (same value in all lanes) and present state. *)
  let pis = Netlist.inputs c in
  for i = 0 to Array.length pis - 1 do
    let node = Array.unsafe_get pis i in
    (match Bist_logic.Vector.get vec i with
     | T.One -> ones.(node) <- full; zeros.(node) <- 0
     | T.Zero -> ones.(node) <- 0; zeros.(node) <- full
     | T.X -> ones.(node) <- 0; zeros.(node) <- 0);
    let f1 = t.out_f1.(node) and f0 = t.out_f0.(node) in
    if f1 lor f0 <> 0 then begin
      let keep = lnot (f1 lor f0) in
      ones.(node) <- ones.(node) land keep lor f1;
      zeros.(node) <- zeros.(node) land keep lor f0
    end
  done;
  let dffs = Netlist.dffs c in
  for i = 0 to Array.length dffs - 1 do
    let node = Array.unsafe_get dffs i in
    let f1 = t.out_f1.(node) and f0 = t.out_f0.(node) in
    let keep = lnot (f1 lor f0) in
    ones.(node) <- t.state_ones.(i) land keep lor f1;
    zeros.(node) <- t.state_zeros.(i) land keep lor f0
  done;
  (* Combinational pass over the compiled program. *)
  let prog_node = t.prog_node and prog_kind = t.prog_kind in
  let prog_off = t.prog_off and prog_len = t.prog_len in
  let out_f1 = t.out_f1 and out_f0 = t.out_f0 in
  let pin_f1 = t.pin_f1 and pin_f0 = t.pin_f0 in
  for pc = 0 to Array.length prog_node - 1 do
    let node = Array.unsafe_get prog_node pc in
    let kind = Array.unsafe_get prog_kind pc in
    let k = Array.unsafe_get prog_len pc in
    let pf1 = Array.unsafe_get pin_f1 node in
    if Array.length pf1 = 0 then
      accumulate_plain t kind (Array.unsafe_get prog_off pc) k
    else
      accumulate_forced t kind
        (Array.unsafe_get t.prog_fanins pc)
        k pf1 (Array.unsafe_get pin_f0 node);
    (* Output inversion for the negated kinds (odd codes). *)
    let o, z =
      if kind land 1 = 1 && kind < 8 then (t.acc_z, t.acc_o) else (t.acc_o, t.acc_z)
    in
    let f1 = Array.unsafe_get out_f1 node and f0 = Array.unsafe_get out_f0 node in
    if f1 lor f0 <> 0 then begin
      let keep = lnot (f1 lor f0) in
      Array.unsafe_set ones node (o land keep lor f1);
      Array.unsafe_set zeros node (z land keep lor f0)
    end
    else begin
      Array.unsafe_set ones node o;
      Array.unsafe_set zeros node z
    end
  done;
  (* Detection mask over the primary outputs. *)
  let diff = ref 0 in
  let pos = Netlist.outputs c in
  for i = 0 to Array.length pos - 1 do
    let node = Array.unsafe_get pos i in
    let o = ones.(node) and z = zeros.(node) in
    if o land 1 <> 0 then diff := !diff lor z
    else if z land 1 <> 0 then diff := !diff lor o
  done;
  t.diff_lanes <- !diff land lnot 1;
  (* Clock the flip-flops through their (possibly pin-forced) D view. *)
  for i = 0 to Array.length dffs - 1 do
    let node = Array.unsafe_get dffs i in
    let d = (Netlist.fanins c node).(0) in
    let o = ref ones.(d) and z = ref zeros.(d) in
    if Array.length t.pin_f1.(node) <> 0 then begin
      let f1 = t.pin_f1.(node).(0) and f0 = t.pin_f0.(node).(0) in
      let keep = lnot (f1 lor f0) in
      o := !o land keep lor f1;
      z := !z land keep lor f0
    end;
    t.state_ones.(i) <- !o;
    t.state_zeros.(i) <- !z
  done

type snapshot = { snap_ones : int array; snap_zeros : int array }

let save_state t =
  { snap_ones = Array.copy t.state_ones; snap_zeros = Array.copy t.state_zeros }

let restore_state t s =
  if Array.length s.snap_ones <> Array.length t.state_ones then
    invalid_arg "Packed_sim.restore_state: different circuit";
  Array.blit s.snap_ones 0 t.state_ones 0 (Array.length s.snap_ones);
  Array.blit s.snap_zeros 0 t.state_zeros 0 (Array.length s.snap_zeros)

let state_diff_lanes t =
  let diff = ref 0 in
  for i = 0 to Array.length t.state_ones - 1 do
    let o = t.state_ones.(i) and z = t.state_zeros.(i) in
    if o land 1 <> 0 then diff := !diff lor z
    else if z land 1 <> 0 then diff := !diff lor o
  done;
  !diff land lnot 1

let state_diff_count t ~lane =
  if lane < 1 || lane >= 63 then invalid_arg "Packed_sim.state_diff_count: lane";
  let m = 1 lsl lane in
  let count = ref 0 in
  for i = 0 to Array.length t.state_ones - 1 do
    let o = t.state_ones.(i) and z = t.state_zeros.(i) in
    if (o land 1 <> 0 && z land m <> 0) || (z land 1 <> 0 && o land m <> 0) then
      incr count
  done;
  !count

let po_value t i =
  let node = (Netlist.outputs t.circuit).(i) in
  P.make ~ones:t.ones.(node) ~zeros:t.zeros.(node)

let po_diff_lanes t = t.diff_lanes

let node_value t n = P.make ~ones:t.ones.(n) ~zeros:t.zeros.(n)
