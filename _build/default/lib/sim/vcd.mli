(** Value Change Dump (IEEE 1364) trace writing.

    Records a fault-free sequential simulation of a test sequence as a
    [.vcd] file that any waveform viewer (GTKWave etc.) can open — one
    scalar signal per netlist node, X rendered as [x], one timestep per
    test vector. Handy when debugging why a fault escapes a sequence. *)

val dump_string : Bist_circuit.Netlist.t -> Bist_logic.Tseq.t -> string
(** Simulate the sequence from the all-X state and render the VCD text. *)

val dump_file : Bist_circuit.Netlist.t -> Bist_logic.Tseq.t -> string -> unit
(** Same, written to a path. *)
