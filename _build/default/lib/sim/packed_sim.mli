(** 63-lane packed sequential simulation with value forcing.

    Each of the 63 lanes is an independent copy of the circuit receiving
    the {e same} input vectors; lanes may differ only through forces
    installed with {!add_output_force} / {!add_pin_force}. The parallel
    fault simulator runs the fault-free machine in lane 0 and one faulty
    machine per remaining lane.

    An {e output force} pins the value of a node (as seen by every
    consumer and by the primary-output logic) in the selected lanes. A
    {e pin force} pins the value seen by one specific fanin pin of one
    gate, leaving other consumers of the driving node unaffected — this is
    how fanout-branch stuck-at faults are modeled.

    Internally the simulator keeps the one-plane and zero-plane of every
    node in flat [int] arrays and evaluates gates with inlined bitwise
    code; this is the performance kernel of the whole library. *)

type t

val create : Bist_circuit.Netlist.t -> t
(** All lanes reset (flip-flops X), no forces installed. *)

val circuit : t -> Bist_circuit.Netlist.t

val add_output_force :
  t -> Bist_circuit.Netlist.node -> mask:int -> Bist_logic.Ternary.t -> unit

val add_pin_force :
  t ->
  gate:Bist_circuit.Netlist.node ->
  pin:int ->
  mask:int ->
  Bist_logic.Ternary.t ->
  unit
(** [pin] indexes the gate's fanin array. *)

val clear_forces : t -> unit

val reset : t -> unit
(** Every flip-flop of every lane back to X. Forces stay installed. *)

val step : t -> Bist_logic.Vector.t -> unit
(** Apply one input vector to all lanes and advance the flip-flop state. *)

val po_value : t -> int -> Bist_logic.Packed.t
(** Packed value of primary output [i] during the most recent {!step}. *)

val po_diff_lanes : t -> int
(** Lanes (other than lane 0) where {e some} primary output carried the
    binary complement of lane 0's binary value during the most recent
    {!step} — the detection mask, accumulated over all POs. *)

val node_value : t -> Bist_circuit.Netlist.node -> Bist_logic.Packed.t
(** Value a node had during the most recent {!step}. *)

type snapshot
(** Captured flip-flop state of all lanes. *)

val save_state : t -> snapshot

val restore_state : t -> snapshot -> unit
(** Restore a snapshot taken from the same simulator (or one for the
    same circuit). The directed test generator uses this to branch many
    candidate suffixes off one simulated prefix. *)

val state_diff_lanes : t -> int
(** Lanes whose current flip-flop state differs (in opposite binary
    values) from lane 0's — a progress measure for guided search. *)

val state_diff_count : t -> lane:int -> int
(** Number of flip-flops whose current state in the given lane is the
    binary complement of lane 0's. *)
