module T = Bist_logic.Ternary
module Netlist = Bist_circuit.Netlist
module Gate = Bist_circuit.Gate

type t = {
  circuit : Netlist.t;
  values : T.t array;
  state : T.t array; (* per-FF present state *)
  levels : int array; (* combinational depth per node *)
  buckets : int list array; (* pending gates per level, this cycle *)
  scheduled : bool array;
  max_level : int;
  scratch : T.t array array;
  mutable full_eval : bool; (* force a complete pass (first step / reset) *)
  mutable evaluations : int;
}

let max_fanin c =
  let m = ref 1 in
  for n = 0 to Netlist.size c - 1 do
    m := max !m (Array.length (Netlist.fanins c n))
  done;
  !m

let create circuit =
  let levels = Bist_circuit.Stats.levels circuit in
  let max_level = Array.fold_left max 0 levels in
  {
    circuit;
    values = Array.make (Netlist.size circuit) T.X;
    state = Array.make (Netlist.num_dffs circuit) T.X;
    levels;
    buckets = Array.make (max_level + 1) [];
    scheduled = Array.make (Netlist.size circuit) false;
    max_level;
    scratch = Array.init (max_fanin circuit + 1) (fun k -> Array.make k T.X);
    full_eval = true;
    evaluations = 0;
  }

let circuit t = t.circuit

let reset t =
  Array.fill t.state 0 (Array.length t.state) T.X;
  t.full_eval <- true

let schedule t node =
  if (not t.scheduled.(node)) && Gate.is_combinational (Netlist.kind t.circuit node)
  then begin
    t.scheduled.(node) <- true;
    let lv = t.levels.(node) in
    t.buckets.(lv) <- node :: t.buckets.(lv)
  end

let set_source t node value =
  if not (T.equal t.values.(node) value) then begin
    t.values.(node) <- value;
    Array.iter (schedule t) (Netlist.fanouts t.circuit node)
  end

let eval_gate t node =
  let fanins = Netlist.fanins t.circuit node in
  let k = Array.length fanins in
  let buf = t.scratch.(k) in
  for i = 0 to k - 1 do
    buf.(i) <- t.values.(fanins.(i))
  done;
  t.evaluations <- t.evaluations + 1;
  Gate.eval (Netlist.kind t.circuit node) buf

let step t vec =
  let c = t.circuit in
  if Bist_logic.Vector.width vec <> Netlist.num_inputs c then
    invalid_arg "Event_sim.step: vector width mismatch";
  if t.full_eval then begin
    (* Re-evaluate the whole circuit once; afterwards incremental. *)
    Array.iteri
      (fun i n -> t.values.(n) <- Bist_logic.Vector.get vec i)
      (Netlist.inputs c);
    Array.iteri (fun i n -> t.values.(n) <- t.state.(i)) (Netlist.dffs c);
    Array.iter
      (fun n -> t.values.(n) <- eval_gate t n)
      (Netlist.topo_order c);
    t.full_eval <- false
  end
  else begin
    Array.iteri
      (fun i n -> set_source t n (Bist_logic.Vector.get vec i))
      (Netlist.inputs c);
    Array.iteri (fun i n -> set_source t n t.state.(i)) (Netlist.dffs c);
    for lv = 1 to t.max_level do
      let pending = t.buckets.(lv) in
      t.buckets.(lv) <- [];
      List.iter
        (fun node ->
          t.scheduled.(node) <- false;
          let value = eval_gate t node in
          if not (T.equal t.values.(node) value) then begin
            t.values.(node) <- value;
            Array.iter (schedule t) (Netlist.fanouts c node)
          end)
        pending
    done
  end;
  let response =
    Bist_logic.Vector.init (Netlist.num_outputs c) (fun i ->
        t.values.((Netlist.outputs c).(i)))
  in
  Array.iteri
    (fun i n -> t.state.(i) <- t.values.((Netlist.fanins c n).(0)))
    (Netlist.dffs c);
  response

let run circuit seq =
  let sim = create circuit in
  Array.init (Bist_logic.Tseq.length seq) (fun u ->
      step sim (Bist_logic.Tseq.get seq u))

let evaluations t = t.evaluations
