module Tseq = Bist_logic.Tseq
module Vector = Bist_logic.Vector
module T = Bist_logic.Ternary

type encoded = {
  width : int;
  first : bool array;
  deltas : int list array; (* changed positions vs previous vector *)
}

type report = {
  raw_bits : int;
  encoded_bits : int;
  compression_ratio : float;
  decode_cycles_per_vector : float;
}

let to_bools vec =
  Array.init (Vector.width vec) (fun i ->
      match Vector.get vec i with
      | T.One -> true
      | T.Zero -> false
      | T.X -> invalid_arg "Encoding.encode: X in stored sequence")

let encode seq =
  let len = Tseq.length seq in
  if len = 0 then invalid_arg "Encoding.encode: empty sequence";
  let width = Tseq.width seq in
  let rows = Array.init len (fun u -> to_bools (Tseq.get seq u)) in
  let deltas =
    Array.init (len - 1) (fun u ->
        let changed = ref [] in
        for i = width - 1 downto 0 do
          if rows.(u).(i) <> rows.(u + 1).(i) then changed := i :: !changed
        done;
        !changed)
  in
  (* Cost model: per delta, a count field of ceil(log2 (width+1)) bits
     plus one position index of ceil(log2 width) bits per changed bit. *)
  let count_bits = Bist_util.Bits.width_for (width + 1) in
  let pos_bits = Bist_util.Bits.width_for width in
  let encoded_bits =
    width
    + Array.fold_left
        (fun acc changed -> acc + count_bits + (pos_bits * List.length changed))
        0 deltas
  in
  let raw_bits = len * width in
  (* The decoder reconstructs each vector by applying its changed
     positions serially: one cycle per position plus one to emit. *)
  let decode_cycles =
    Array.fold_left (fun acc d -> acc +. float_of_int (1 + List.length d)) 1.0 deltas
  in
  ( { width; first = rows.(0); deltas },
    {
      raw_bits;
      encoded_bits;
      compression_ratio = float_of_int encoded_bits /. float_of_int raw_bits;
      decode_cycles_per_vector = decode_cycles /. float_of_int len;
    } )

let decode { width; first; deltas } =
  let current = Array.copy first in
  let vec_of row = Vector.init width (fun i -> T.of_bool row.(i)) in
  let out = Array.make (Array.length deltas + 1) (vec_of current) in
  Array.iteri
    (fun u changed ->
      List.iter (fun i -> current.(i) <- not current.(i)) changed;
      out.(u + 1) <- vec_of current)
    deltas;
  Tseq.of_vectors out
