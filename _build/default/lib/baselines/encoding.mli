(** Baseline: store [T0] compressed (the approach of Iyengar et al. [5]).

    Section 1 notes that encoding an off-chip sequence shrinks the test
    memory but the on-chip decoder typically cannot sustain one vector
    per functional clock, so at-speed application is lost. This module
    implements a representative encoder — first vector raw, every later
    vector as an XOR-delta over its predecessor, sparse deltas encoded as
    position lists — and reports the memory it would need, for comparison
    with the scheme's memory in the examples and benches.

    The decoder ({!decode}) restores the sequence exactly; the
    [decode_cycles_per_vector] field models the serial position-by-
    position reconstruction that breaks at-speed operation. *)

type encoded

type report = {
  raw_bits : int;  (** [|T0| * m]. *)
  encoded_bits : int;
  compression_ratio : float;  (** encoded / raw, lower is better. *)
  decode_cycles_per_vector : float;
      (** Average decoder cycles needed per reconstructed vector; > 1
          means the decoder cannot feed the circuit at-speed. *)
}

val encode : Bist_logic.Tseq.t -> encoded * report
(** Raises [Invalid_argument] on sequences with X values (a stored
    sequence is always fully specified). *)

val decode : encoded -> Bist_logic.Tseq.t
(** Exact inverse of {!encode}. *)
