lib/baselines/lfsr_bist.ml: Array Bist_circuit Bist_fault Bist_hw Bist_logic Bist_util Int List
