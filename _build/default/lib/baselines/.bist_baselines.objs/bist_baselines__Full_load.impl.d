lib/baselines/full_load.ml: Bist_fault Bist_logic Bist_util
