lib/baselines/partition.ml: Bist_fault Bist_logic Bist_util List
