lib/baselines/encoding.mli: Bist_logic
