lib/baselines/encoding.ml: Array Bist_logic Bist_util List
