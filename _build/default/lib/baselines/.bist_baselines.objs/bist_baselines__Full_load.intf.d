lib/baselines/full_load.mli: Bist_fault Bist_logic
