lib/baselines/lfsr_bist.mli: Bist_fault
