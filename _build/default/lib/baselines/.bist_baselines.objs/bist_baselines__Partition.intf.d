lib/baselines/partition.mli: Bist_fault Bist_logic
