module Tseq = Bist_logic.Tseq

type report = {
  applied_cycles : int;
  detected : int;
  coverage : float;
}

let lfsr_sequence ~seed ~width ~cycles ~hold =
  let reg_width = max 2 (min 32 (width + 3)) in
  let lfsr = Bist_hw.Lfsr.create ~width:reg_width ~seed () in
  let distinct = (cycles + hold - 1) / hold in
  let vectors = Array.init distinct (fun _ -> Bist_hw.Lfsr.next_vector lfsr width) in
  Tseq.of_vectors (Array.init cycles (fun i -> vectors.(i / hold)))

let evaluate ?(seed = 0x2A) universe ~cycles ~hold =
  if cycles < 1 || hold < 1 then invalid_arg "Lfsr_bist.evaluate";
  let width = Bist_circuit.Netlist.num_inputs (Bist_fault.Universe.circuit universe) in
  let seq = lfsr_sequence ~seed ~width ~cycles ~hold in
  let outcome = Bist_fault.Fsim.run ~stop_when_all_detected:true universe seq in
  let detected = Bist_util.Bitset.cardinal outcome.Bist_fault.Fsim.detected in
  {
    applied_cycles = cycles;
    detected;
    coverage = float_of_int detected /. float_of_int (Bist_fault.Universe.size universe);
  }

let coverage_curve ?(seed = 0x2A) universe ~checkpoints ~hold =
  let width = Bist_circuit.Netlist.num_inputs (Bist_fault.Universe.circuit universe) in
  let checkpoints = List.sort_uniq Int.compare checkpoints in
  let total = List.fold_left max 0 checkpoints in
  if total < 1 then invalid_arg "Lfsr_bist.coverage_curve";
  let seq = lfsr_sequence ~seed ~width ~cycles:total ~hold in
  let outcome = Bist_fault.Fsim.run universe seq in
  (* det_time gives the first detection cycle of every fault; a prefix of
     the run detects exactly the faults with det_time below its length. *)
  List.map
    (fun cp ->
      let count = ref 0 in
      Array.iter (fun dt -> if dt >= 0 && dt < cp then incr count) outcome.Bist_fault.Fsim.det_time;
      (cp, !count))
    checkpoints
