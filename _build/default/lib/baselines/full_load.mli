(** Baseline: store all of [T0] on-chip and apply it once at-speed.

    This is the "guaranteed coverage" comparator of Section 1: it detects
    exactly what [T0] detects, but the memory must hold [|T0|] words and
    the tester spends [|T0|] load cycles. *)

type report = {
  memory_words : int;
  memory_bits : int;
  load_cycles : int;
  at_speed_cycles : int;
  detected : int;
  coverage : float;
}

val evaluate : Bist_fault.Universe.t -> t0:Bist_logic.Tseq.t -> report
