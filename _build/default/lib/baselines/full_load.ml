type report = {
  memory_words : int;
  memory_bits : int;
  load_cycles : int;
  at_speed_cycles : int;
  detected : int;
  coverage : float;
}

let evaluate universe ~t0 =
  let outcome = Bist_fault.Fsim.run ~stop_when_all_detected:true universe t0 in
  let len = Bist_logic.Tseq.length t0 in
  let width = Bist_logic.Tseq.width t0 in
  let detected = Bist_util.Bitset.cardinal outcome.Bist_fault.Fsim.detected in
  {
    memory_words = len;
    memory_bits = len * width;
    load_cycles = len;
    at_speed_cycles = len;
    detected;
    coverage = float_of_int detected /. float_of_int (Bist_fault.Universe.size universe);
  }
