(** Baseline: partition [T0] into separately-loaded subsequences.

    Section 1 discusses this alternative: split [T0] into contiguous
    blocks of at most [block] vectors, load and apply each independently
    from the unknown state. Because a block loses the warm-up its prefix
    provided, faults can escape; this implementation then extends blocks
    backwards (re-including preceding vectors of [T0]) until the union of
    the blocks' detections again covers everything [T0] detects — which
    in the worst case makes a block the whole prefix of [T0].

    The paper's two criticisms are exactly what the report exposes:
    the total loaded length is at least [|T0|] (every vector is loaded at
    least once, often more after extension), and the maximum block length
    can grow well past the nominal [block]. *)

type report = {
  block : int;  (** Requested nominal block size. *)
  num_blocks : int;
  total_loaded : int;  (** Sum of final block lengths, >= |T0|. *)
  max_block_length : int;  (** After extension, >= block is possible. *)
  detected : int;
  coverage_preserved : bool;
}

val evaluate : Bist_fault.Universe.t -> t0:Bist_logic.Tseq.t -> block:int -> report
