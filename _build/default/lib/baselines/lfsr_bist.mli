(** Baselines: pure LFSR BIST, and LFSR BIST with the hold option of
    Nachman et al. [3].

    These are the "no guarantee" comparators of Section 1: no memory, no
    loading, but fault coverage saturates below what a deterministic
    sequence achieves. The hold variant repeats each pseudo-random vector
    for [hold] cycles, which was shown in [3] to help sequential circuits
    walk deeper into their state space. *)

type report = {
  applied_cycles : int;
  detected : int;
  coverage : float;
}

val evaluate :
  ?seed:int -> Bist_fault.Universe.t -> cycles:int -> hold:int -> report
(** [hold = 1] is plain LFSR BIST. [cycles] counts applied vectors
    (after holding). *)

val coverage_curve :
  ?seed:int ->
  Bist_fault.Universe.t ->
  checkpoints:int list ->
  hold:int ->
  (int * int) list
(** Detected-fault count after each checkpoint cycle count (one
    continuous run, monotone in cycles). *)
