module Tseq = Bist_logic.Tseq
module Bitset = Bist_util.Bitset
module Fsim = Bist_fault.Fsim

type report = {
  block : int;
  num_blocks : int;
  total_loaded : int;
  max_block_length : int;
  detected : int;
  coverage_preserved : bool;
}

let evaluate universe ~t0 ~block =
  if block < 1 then invalid_arg "Partition.evaluate: block must be >= 1";
  let len = Tseq.length t0 in
  let reference = (Fsim.run ~stop_when_all_detected:true universe t0).Fsim.detected in
  (* Nominal blocks: [lo, hi] windows of T0. *)
  let nominal =
    let rec go lo acc =
      if lo >= len then List.rev acc
      else
        let hi = min (len - 1) (lo + block - 1) in
        go (hi + 1) ((lo, hi) :: acc)
    in
    go 0 []
  in
  (* Extend each block leftward until it re-detects every reference fault
     that the blocks so far were responsible for. We process blocks in
     order, maintaining the still-uncovered fault set; a block must cover
     whatever faults T0 first detects inside its window. *)
  let detected_by lo hi =
    (Fsim.run ~targets:reference ~stop_when_all_detected:true universe
       (Tseq.sub t0 ~lo ~hi))
      .Fsim.detected
  in
  let remaining = Bitset.copy reference in
  let finalize (lo, hi) =
    let windows_detected = ref (detected_by lo hi) in
    let lo = ref lo in
    (* The faults this block must deliver: those T0 detects by time hi
       that are still missing. Extend until they are all present. *)
    let ref_outcome = Fsim.run ~targets:remaining ~stop_when_all_detected:true universe (Tseq.sub t0 ~lo:0 ~hi) in
    let due = ref_outcome.Fsim.detected in
    let missing () =
      let m = Bitset.copy due in
      Bitset.diff_into m !windows_detected;
      not (Bitset.is_empty m)
    in
    while missing () && !lo > 0 do
      lo := max 0 (!lo - block);
      windows_detected := detected_by !lo hi
    done;
    Bitset.diff_into remaining !windows_detected;
    (!lo, hi, !windows_detected)
  in
  let final_blocks = List.map finalize nominal in
  let union = Bitset.create (Bist_fault.Universe.size universe) in
  List.iter (fun (_, _, d) -> Bitset.union_into union d) final_blocks;
  let lengths = List.map (fun (lo, hi, _) -> hi - lo + 1) final_blocks in
  {
    block;
    num_blocks = List.length final_blocks;
    total_loaded = List.fold_left ( + ) 0 lengths;
    max_block_length = List.fold_left max 0 lengths;
    detected = Bitset.cardinal union;
    coverage_preserved = Bitset.subset reference union;
  }
