lib/tgen/directed.ml: Array Bist_circuit Bist_fault Bist_logic Bist_sim Bist_util Int List Option
