lib/tgen/compaction.ml: Bist_fault Bist_logic Bist_util
