lib/tgen/engine.mli: Bist_circuit Bist_fault Bist_logic Bist_util
