lib/tgen/compaction.mli: Bist_fault Bist_logic
