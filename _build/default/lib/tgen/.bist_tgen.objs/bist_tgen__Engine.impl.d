lib/tgen/engine.ml: Array Bist_circuit Bist_fault Bist_logic Bist_util Directed List Option
