lib/util/bitset.mli:
