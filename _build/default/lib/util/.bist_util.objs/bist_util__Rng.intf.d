lib/util/rng.mli:
