lib/util/bits.mli:
