lib/util/bits.ml:
