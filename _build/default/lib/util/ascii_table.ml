type align = Left | Right

type row = Cells of string list | Separator

type t = { headers : (string * align) list; mutable rows : row list (* reversed *) }

let create ~headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Ascii_table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells
  in
  measure (List.map fst t.headers);
  List.iter (function Cells c -> measure c | Separator -> ()) rows;
  let buf = Buffer.create 256 in
  let total_width = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  let emit cells =
    List.iteri
      (fun i (cell, align) ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad align widths.(i) cell))
      cells;
    (* Trim trailing spaces for clean diffs. *)
    let line = Buffer.contents buf in
    Buffer.clear buf;
    let len = ref (String.length line) in
    while !len > 0 && line.[!len - 1] = ' ' do decr len done;
    String.sub line 0 !len
  in
  let aligns = List.map snd t.headers in
  let lines =
    emit (List.map (fun (h, a) -> (h, a)) t.headers)
    :: String.make total_width '-'
    :: List.map
         (function
           | Cells c -> emit (List.combine c aligns)
           | Separator -> String.make total_width '-')
         rows
  in
  String.concat "\n" lines ^ "\n"

let render_rows ~headers rows =
  let t = create ~headers in
  List.iter (add_row t) rows;
  render t
