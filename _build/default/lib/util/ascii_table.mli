(** Plain-text table rendering for the experiment reports.

    Produces aligned, pipe-free tables in the visual style of the paper's
    result tables. Columns are sized to their widest cell; numeric cells
    should be pre-formatted by the caller. *)

type align = Left | Right

type t

val create : headers:(string * align) list -> t
(** A table with the given column headers and per-column alignment. *)

val add_row : t -> string list -> unit
(** Append one row. Raises [Invalid_argument] if the arity does not match
    the header count. *)

val add_separator : t -> unit
(** Append a horizontal rule between row groups. *)

val render : t -> string
(** Render with a header rule, suitable for [print_string]. *)

val render_rows : headers:(string * align) list -> string list list -> string
(** One-shot convenience wrapper. *)
