type t = { words : Bytes.t; cap : int }

(* One byte per 8 members; Bytes gives cheap blits and comparisons. *)

let words_for cap = (cap + 7) / 8

let create cap =
  if cap < 0 then invalid_arg "Bitset.create";
  { words = Bytes.make (words_for cap) '\000'; cap }

let capacity t = t.cap

let check t i =
  if i < 0 || i >= t.cap then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let b = i lsr 3 in
  Bytes.set t.words b (Char.chr (Char.code (Bytes.get t.words b) lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let b = i lsr 3 in
  Bytes.set t.words b (Char.chr (Char.code (Bytes.get t.words b) land lnot (1 lsl (i land 7)) land 0xFF))

let popcount_byte =
  let table = Array.init 256 (fun i ->
    let rec count v = if v = 0 then 0 else (v land 1) + count (v lsr 1) in
    count i)
  in
  fun c -> table.(Char.code c)

let cardinal t =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte c) t.words;
  !n

let is_empty t =
  let len = Bytes.length t.words in
  let rec go i = i >= len || (Bytes.get t.words i = '\000' && go (i + 1)) in
  go 0

let copy t = { words = Bytes.copy t.words; cap = t.cap }

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let fill t =
  Bytes.fill t.words 0 (Bytes.length t.words) '\255';
  (* Mask out the bits beyond capacity so cardinal stays exact. *)
  let extra = (8 - (t.cap land 7)) land 7 in
  if extra > 0 && Bytes.length t.words > 0 then begin
    let last = Bytes.length t.words - 1 in
    Bytes.set t.words last (Char.chr (0xFF lsr extra))
  end

let binop f dst src =
  if dst.cap <> src.cap then invalid_arg "Bitset: capacity mismatch";
  for i = 0 to Bytes.length dst.words - 1 do
    let v = f (Char.code (Bytes.get dst.words i)) (Char.code (Bytes.get src.words i)) in
    Bytes.set dst.words i (Char.chr (v land 0xFF))
  done

let union_into dst src = binop (lor) dst src
let diff_into dst src = binop (fun a b -> a land lnot b) dst src
let inter_into dst src = binop (land) dst src

let iter f t =
  for i = 0 to t.cap - 1 do
    if Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0 then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let equal a b = a.cap = b.cap && Bytes.equal a.words b.words

let subset a b =
  if a.cap <> b.cap then invalid_arg "Bitset: capacity mismatch";
  let len = Bytes.length a.words in
  let rec go i =
    i >= len
    || (Char.code (Bytes.get a.words i) land lnot (Char.code (Bytes.get b.words i)) land 0xFF = 0
        && go (i + 1))
  in
  go 0
