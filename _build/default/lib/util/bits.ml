let width_for value =
  if value <= 0 then invalid_arg "Bits.width_for";
  let rec go bits capacity = if capacity >= value then bits else go (bits + 1) (2 * capacity) in
  go 1 2

let popcount v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v land (v - 1)) in
  go 0 v
