(** Small bit-arithmetic helpers shared by the hardware models. *)

val width_for : int -> int
(** [width_for v] is the number of bits a counter needs to represent
    [v] distinct values (at least 1). Raises [Invalid_argument] for
    [v <= 0]. *)

val popcount : int -> int
(** Number of set bits. *)
