(** Dense mutable bitsets over a fixed universe [0 .. capacity-1].

    Used for fault sets: faults are numbered densely, and the selection
    and compaction procedures repeatedly intersect and subtract large sets
    of detected faults. *)

type t

val create : int -> t
(** [create capacity] is the empty set over [0 .. capacity-1]. *)

val capacity : t -> int

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

val cardinal : t -> int
(** Number of members (O(words)). *)

val is_empty : t -> bool

val copy : t -> t

val clear : t -> unit

val fill : t -> unit
(** Add every element of the universe. *)

val union_into : t -> t -> unit
(** [union_into dst src] adds all of [src] to [dst]. Capacities must match. *)

val diff_into : t -> t -> unit
(** [dst := dst \ src]. Capacities must match. *)

val inter_into : t -> t -> unit
(** [dst := dst ∩ src]. Capacities must match. *)

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list
(** Members in increasing order. *)

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is true when every member of [a] is in [b]. *)
