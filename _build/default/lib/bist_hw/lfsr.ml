type t = { width : int; poly_mask : int; mutable state : int }

(* Primitive polynomial taps for x^w + ... + 1, widths 2..32 (classic
   table; the listed positions are the exponents besides w and 0). *)
let taps_table =
  [
    (2, [ 1 ]); (3, [ 2 ]); (4, [ 3 ]); (5, [ 3 ]); (6, [ 5 ]); (7, [ 6 ]);
    (8, [ 6; 5; 4 ]); (9, [ 5 ]); (10, [ 7 ]); (11, [ 9 ]);
    (12, [ 11; 10; 4 ]); (13, [ 12; 11; 8 ]); (14, [ 13; 12; 2 ]);
    (15, [ 14 ]); (16, [ 15; 13; 4 ]); (17, [ 14 ]); (18, [ 11 ]);
    (19, [ 18; 17; 14 ]); (20, [ 17 ]); (21, [ 19 ]); (22, [ 21 ]);
    (23, [ 18 ]); (24, [ 23; 22; 17 ]); (25, [ 22 ]); (26, [ 25; 24; 20 ]);
    (27, [ 26; 25; 22 ]); (28, [ 25 ]); (29, [ 27 ]); (30, [ 29; 28; 7 ]);
    (31, [ 28 ]); (32, [ 31; 30; 10 ]);
  ]

let taps_for width =
  match List.assoc_opt width taps_table with
  | Some taps -> taps
  | None -> invalid_arg "Lfsr.taps_for: width must be in 2..32"

(* Galois form: the mask has a bit at position e-1 for every exponent e
   of the polynomial except the constant term, including x^w itself. *)
let mask_of_taps ~width taps =
  List.fold_left
    (fun acc tap ->
      if tap < 1 || tap > width then invalid_arg "Lfsr.create: tap out of range";
      acc lor (1 lsl (tap - 1)))
    (1 lsl (width - 1))
    taps

let create ?taps ~width ~seed () =
  if width < 2 || width > 32 then invalid_arg "Lfsr.create: width must be in 2..32";
  let taps = match taps with Some t -> t | None -> taps_for width in
  let poly_mask = mask_of_taps ~width taps in
  let state = seed land ((1 lsl width) - 1) in
  { width; poly_mask; state = (if state = 0 then 1 else state) }

let width t = t.width

let next_bit t =
  let out = t.state land 1 in
  t.state <- t.state lsr 1;
  if out = 1 then t.state <- t.state lxor t.poly_mask;
  out = 1

let next_vector t m =
  Bist_logic.Vector.init m (fun _ -> Bist_logic.Ternary.of_bool (next_bit t))

let sequence t ~vectors ~width:m =
  Bist_logic.Tseq.of_vectors (Array.init vectors (fun _ -> next_vector t m))
