(** First-order area model of the on-chip test hardware.

    The paper argues the scheme's hardware is small and independent of
    the circuit under test: a memory sized to the longest stored
    sequence, an up/down address counter, a sweep counter, and per-input
    complement/shift multiplexers. This model counts memory bits and
    equivalent 2-input-gate cost so the examples can compare
    configurations; the constants are conventional textbook figures, not
    a technology library. *)

type t = {
  memory_bits : int;  (** [max_seq_len * num_inputs]. *)
  address_counter_bits : int;
  sweep_counter_bits : int;
  mux_count : int;  (** One complement mux + one shift mux per input. *)
  inverter_count : int;
  control_gate_estimate : int;  (** FSM decode logic, gate equivalents. *)
  gate_equivalents : int;  (** Everything except the memory, in 2-input
                               gate equivalents (flip-flop = 6). *)
}

val estimate : num_inputs:int -> max_seq_len:int -> n:int -> t

val storage_for_full_t0 : num_inputs:int -> t0_len:int -> int
(** Memory bits needed by the load-everything baseline, for comparison. *)

val pp : Format.formatter -> t -> unit
