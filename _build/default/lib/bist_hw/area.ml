type t = {
  memory_bits : int;
  address_counter_bits : int;
  sweep_counter_bits : int;
  mux_count : int;
  inverter_count : int;
  control_gate_estimate : int;
  gate_equivalents : int;
}

let estimate ~num_inputs ~max_seq_len ~n =
  if num_inputs < 1 || max_seq_len < 1 || n < 1 then invalid_arg "Area.estimate";
  let address_counter_bits = Bist_util.Bits.width_for max_seq_len in
  let sweep_counter_bits = Bist_util.Bits.width_for (8 * n) in
  let mux_count = 2 * num_inputs in
  let inverter_count = num_inputs in
  (* Decode of the sweep quarter plus the terminal-count comparators. *)
  let control_gate_estimate = 12 + (2 * address_counter_bits) + (2 * sweep_counter_bits) in
  let ff_cost = 6 (* 2-input-gate equivalents per flip-flop *) in
  let mux_cost = 3 in
  let gate_equivalents =
    ((address_counter_bits + sweep_counter_bits) * ff_cost)
    + (mux_count * mux_cost) + inverter_count + control_gate_estimate
  in
  {
    memory_bits = max_seq_len * num_inputs;
    address_counter_bits;
    sweep_counter_bits;
    mux_count;
    inverter_count;
    control_gate_estimate;
    gate_equivalents;
  }

let storage_for_full_t0 ~num_inputs ~t0_len = num_inputs * t0_len

let pp fmt t =
  Format.fprintf fmt
    "memory %d bits; addr ctr %d b; sweep ctr %d b; %d muxes; %d inverters; ~%d gate eq."
    t.memory_bits t.address_counter_bits t.sweep_counter_bits t.mux_count
    t.inverter_count t.gate_equivalents
