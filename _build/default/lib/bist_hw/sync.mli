(** Synchronizing sequences.

    The paper notes that before computing a signature "care must be taken
    to synchronize the circuit ... to avoid unknown values". This module
    searches for a short input sequence that drives every flip-flop to a
    binary value starting from the all-X state; {!Session.run} can apply
    it (outside the signature window) before each expanded sequence, which
    removes the X-contamination of the MISR.

    By ternary monotonicity, prepending a synchronizing sequence can only
    {e add} fault detections, so the scheme's coverage guarantee is
    unaffected.

    The search is randomized (weighted-random candidates of growing
    length); circuits with structurally uninitializable flip-flops (see
    {!Bist_circuit.Validate}) have no synchronizing sequence and the
    search returns [None]. *)

val synchronized : Bist_circuit.Netlist.t -> Bist_logic.Tseq.t -> bool
(** Whether applying the sequence from the all-X state leaves every
    flip-flop binary. *)

val find_sequence :
  ?attempts:int ->
  ?max_length:int ->
  rng:Bist_util.Rng.t ->
  Bist_circuit.Netlist.t ->
  Bist_logic.Tseq.t option
(** [find_sequence ~rng circuit] tries [attempts] (default 64) random
    candidates per length, doubling the length from 4 up to [max_length]
    (default 128), and greedily trims a successful candidate from the
    front. *)
