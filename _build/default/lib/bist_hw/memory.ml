type t = {
  word_bits : int;
  depth : int;
  mutable words : Bist_logic.Vector.t array;
  mutable used : int;
  mutable load_cycles : int;
}

let create ~word_bits ~depth =
  if word_bits < 1 || depth < 1 then invalid_arg "Memory.create";
  {
    word_bits;
    depth;
    words = Array.make depth (Bist_logic.Vector.create word_bits Bist_logic.Ternary.X);
    used = 0;
    load_cycles = 0;
  }

let depth t = t.depth
let word_bits t = t.word_bits

let load_sequence t seq =
  let len = Bist_logic.Tseq.length seq in
  if len > t.depth then invalid_arg "Memory.load_sequence: sequence longer than memory";
  if Bist_logic.Tseq.width seq <> t.word_bits then
    invalid_arg "Memory.load_sequence: word width mismatch";
  for i = 0 to len - 1 do
    t.words.(i) <- Bist_logic.Tseq.get seq i
  done;
  t.used <- len;
  t.load_cycles <- t.load_cycles + len

let used_words t = t.used

let read t addr =
  if addr < 0 || addr >= t.used then invalid_arg "Memory.read: address out of range";
  t.words.(addr)

let total_load_cycles t = t.load_cycles
