module Vector = Bist_logic.Vector

type t = {
  memory : Memory.t;
  n : int;
  length : int;
  mutable sweep : int; (* 0 .. 8n-1 *)
  mutable offset : int; (* 0 .. length-1, position within the sweep *)
}

let start memory ~n =
  if n < 1 then invalid_arg "Controller.start: n must be >= 1";
  let length = Memory.used_words memory in
  if length = 0 then invalid_arg "Controller.start: memory is empty";
  { memory; n; length; sweep = 0; offset = 0 }

let total_cycles t = 8 * t.n * t.length

let finished t = t.sweep >= 8 * t.n

(* Decode the sweep index into direction / complement / shift controls. *)
let controls t =
  let quarter = t.sweep / t.n in
  match quarter with
  | 0 -> (`Up, false, false)
  | 1 -> (`Up, true, false)
  | 2 -> (`Up, false, true)
  | 3 -> (`Up, true, true)
  | 4 -> (`Down, true, true)
  | 5 -> (`Down, false, true)
  | 6 -> (`Down, true, false)
  | 7 -> (`Down, false, false)
  | _ -> invalid_arg "Controller.step: already finished"

let step t =
  let dir, comp, shift = controls t in
  let addr = match dir with `Up -> t.offset | `Down -> t.length - 1 - t.offset in
  let word = Memory.read t.memory addr in
  let word = if shift then Vector.shift_left_circular word else word in
  let word = if comp then Vector.complement word else word in
  t.offset <- t.offset + 1;
  if t.offset = t.length then begin
    t.offset <- 0;
    t.sweep <- t.sweep + 1
  end;
  word

let emit_all t =
  let remaining =
    ((8 * t.n) - t.sweep) * t.length - t.offset
  in
  if remaining = 0 then Bist_logic.Tseq.empty (Memory.word_bits t.memory)
  else
    Bist_logic.Tseq.of_vectors (Array.init remaining (fun _ -> step t))
