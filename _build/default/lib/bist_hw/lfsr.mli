(** Linear-feedback shift registers.

    Used two ways: as the pseudo-random pattern source of the baseline
    BIST schemes ([3] and plain LFSR BIST), and in tests as a reference
    bit stream. Fibonacci form with primitive feedback polynomials for
    common widths. *)

type t

val taps_for : int -> int list
(** Tap positions (1-based, as in the usual x^k conventions) of a
    primitive polynomial for widths 2..32. Raises [Invalid_argument]
    outside that range. *)

val create : ?taps:int list -> width:int -> seed:int -> unit -> t
(** [seed] must be non-zero within [width] bits (an all-zero LFSR is
    stuck); it is masked to [width] bits, and if the mask is zero the
    seed 1 is used. *)

val width : t -> int

val next_bit : t -> bool
(** Shift once, returning the bit shifted out. *)

val next_vector : t -> int -> Bist_logic.Vector.t
(** [next_vector t m] collects [m] successive bits into a fully-specified
    input vector. *)

val sequence : t -> vectors:int -> width:int -> Bist_logic.Tseq.t
(** Convenience: the next [vectors] vectors of the given width. *)
