lib/bist_hw/lfsr.ml: Array Bist_logic List
