lib/bist_hw/sync.mli: Bist_circuit Bist_logic Bist_util
