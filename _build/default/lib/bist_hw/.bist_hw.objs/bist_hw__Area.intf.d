lib/bist_hw/area.mli: Format
