lib/bist_hw/controller.mli: Bist_logic Memory
