lib/bist_hw/lfsr.mli: Bist_logic
