lib/bist_hw/sync.ml: Array Bist_circuit Bist_logic Bist_sim Bist_util
