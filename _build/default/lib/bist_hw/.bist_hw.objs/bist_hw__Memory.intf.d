lib/bist_hw/memory.mli: Bist_logic
