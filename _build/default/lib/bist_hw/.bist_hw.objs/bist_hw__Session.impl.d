lib/bist_hw/session.ml: Area Bist_circuit Bist_logic Bist_sim Controller Format List Memory Misr
