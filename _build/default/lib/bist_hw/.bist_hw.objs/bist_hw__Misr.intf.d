lib/bist_hw/misr.mli: Bist_logic
