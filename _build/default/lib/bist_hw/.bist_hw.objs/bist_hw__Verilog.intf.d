lib/bist_hw/verilog.mli:
