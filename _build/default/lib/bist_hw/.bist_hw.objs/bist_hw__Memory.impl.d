lib/bist_hw/memory.ml: Array Bist_logic
