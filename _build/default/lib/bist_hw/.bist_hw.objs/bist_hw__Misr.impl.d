lib/bist_hw/misr.ml: Bist_logic Lfsr List
