lib/bist_hw/controller.ml: Array Bist_logic Memory
