lib/bist_hw/verilog.ml: Bist_util Buffer Fun Printf
