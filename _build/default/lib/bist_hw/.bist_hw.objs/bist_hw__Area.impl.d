lib/bist_hw/area.ml: Bist_util Format
