lib/bist_hw/session.mli: Area Bist_circuit Bist_logic Format
