(** The on-chip test memory.

    A word array of [word_bits] (one bit per circuit primary input) by
    [depth] words. Sequences are loaded at tester speed through
    {!load_sequence}, which also accounts the load cycles — the quantity
    the paper's "tot len" column measures. *)

type t

val create : word_bits:int -> depth:int -> t

val depth : t -> int
val word_bits : t -> int

val load_sequence : t -> Bist_logic.Tseq.t -> unit
(** Load a sequence into addresses [0 .. length-1]. Raises
    [Invalid_argument] if it does not fit or widths differ. Increments
    the load-cycle counter by the sequence length. *)

val used_words : t -> int
(** Number of words occupied by the currently loaded sequence. *)

val read : t -> int -> Bist_logic.Vector.t
(** Word at an address, [0 <= addr < used_words]. *)

val total_load_cycles : t -> int
(** Tester cycles spent loading since {!create}. *)
