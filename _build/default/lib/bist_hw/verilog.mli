(** Synthesizable Verilog for the on-chip expansion hardware.

    The paper's point is that the test hardware is simple and independent
    of the circuit under test; this module makes that concrete by
    emitting RTL for it: the test memory with its tester-side load port,
    the up/down address counter, the sweep counter with its
    quarter-decode into direction/complement/shift controls, and the
    per-bit complement and rotate muxes. The emitted module's cycle
    behaviour mirrors {!Controller} exactly (same sweep order), which the
    OCaml model's tests pin down against [Ops.expand].

    The generator only fixes three parameters: the input width [m], the
    memory depth, and the repetition count [n]. *)

type config = {
  module_name : string;
  width : int;  (** Circuit primary inputs = memory word bits. *)
  depth : int;  (** Memory words = longest stored sequence. *)
  n : int;  (** Repetition count; the sweep counter runs to 8n-1. *)
}

val emit : config -> string
(** The Verilog-2001 source text. Raises [Invalid_argument] on
    non-positive parameters. *)

val emit_file : config -> string -> unit
