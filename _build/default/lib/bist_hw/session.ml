module Tseq = Bist_logic.Tseq

type sequence_report = {
  stored_length : int;
  applied_length : int;
  signature : int;
  signature_valid : bool;
}

type report = {
  circuit_name : string;
  n : int;
  memory_words : int;
  memory_bits : int;
  total_load_cycles : int;
  total_at_speed_cycles : int;
  sync_cycles_per_sequence : int;
  per_sequence : sequence_report list;
  area : Area.t;
}

let run ?sync ~n circuit sequences =
  if sequences = [] then invalid_arg "Session.run: no sequences";
  let num_inputs = Bist_circuit.Netlist.num_inputs circuit in
  let depth =
    List.fold_left (fun acc s -> max acc (Tseq.length s)) 0 sequences
  in
  if depth = 0 then invalid_arg "Session.run: empty sequence";
  let memory = Memory.create ~word_bits:num_inputs ~depth in
  let misr = Misr.create ~width:(Bist_circuit.Netlist.num_outputs circuit) in
  let at_speed = ref 0 in
  let sync_cycles =
    match sync with None -> 0 | Some s -> Bist_logic.Tseq.length s
  in
  let apply_one seq =
    Memory.load_sequence memory seq;
    let controller = Controller.start memory ~n in
    let sim = Bist_sim.Seq_sim.create circuit in
    (* Synchronizing prefix: applied at speed, signature window closed. *)
    (match sync with
     | None -> ()
     | Some s ->
       Bist_logic.Tseq.iter
         (fun v ->
           ignore (Bist_sim.Seq_sim.step sim v : Bist_logic.Vector.t);
           incr at_speed)
         s);
    Misr.reset misr;
    while not (Controller.finished controller) do
      let vec = Controller.step controller in
      let response = Bist_sim.Seq_sim.step sim vec in
      Misr.compact misr response;
      incr at_speed
    done;
    {
      stored_length = Tseq.length seq;
      applied_length = Controller.total_cycles controller;
      signature = Misr.signature misr;
      signature_valid = not (Misr.contaminated misr);
    }
  in
  let per_sequence = List.map apply_one sequences in
  {
    circuit_name = Bist_circuit.Netlist.circuit_name circuit;
    n;
    memory_words = depth;
    memory_bits = depth * num_inputs;
    total_load_cycles = Memory.total_load_cycles memory;
    total_at_speed_cycles = !at_speed;
    sync_cycles_per_sequence = sync_cycles;
    per_sequence;
    area = Area.estimate ~num_inputs ~max_seq_len:depth ~n;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%s (n=%d): memory %d words (%d bits), load %d cycles, at-speed %d cycles@,%a@,%d sequences:@,"
    r.circuit_name r.n r.memory_words r.memory_bits r.total_load_cycles
    r.total_at_speed_cycles Area.pp r.area
    (List.length r.per_sequence);
  List.iteri
    (fun i s ->
      Format.fprintf fmt "  #%d: stored %d, applied %d, signature %08x%s@," i
        s.stored_length s.applied_length s.signature
        (if s.signature_valid then "" else " (X-contaminated)"))
    r.per_sequence;
  Format.fprintf fmt "@]"
