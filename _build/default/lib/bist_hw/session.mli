(** A complete on-chip test session.

    For each stored sequence: load it into the memory at tester speed,
    run the expansion controller at functional speed, apply the emitted
    vectors to the circuit under test, and compact the responses in a
    MISR. The fault-free signatures computed here are what a tester
    would compare against; the coverage achieved is by construction that
    of the software expansion (verified by an equivalence test between
    {!Controller} and [Ops.expand]). *)

type sequence_report = {
  stored_length : int;
  applied_length : int;  (** [8 n · stored_length] at-speed cycles. *)
  signature : int;
  signature_valid : bool;  (** False if an X reached the MISR. *)
}

type report = {
  circuit_name : string;
  n : int;
  memory_words : int;  (** Memory depth required = longest stored sequence. *)
  memory_bits : int;
  total_load_cycles : int;  (** Tester cycles (the "tot len" cost). *)
  total_at_speed_cycles : int;  (** Applied test length ("test len"),
                                    including synchronization cycles. *)
  sync_cycles_per_sequence : int;  (** 0 when no synchronizing prefix. *)
  per_sequence : sequence_report list;
  area : Area.t;
}

val run :
  ?sync:Bist_logic.Tseq.t ->
  n:int ->
  Bist_circuit.Netlist.t ->
  Bist_logic.Tseq.t list ->
  report
(** [run ~n circuit sequences] — sequences are applied independently,
    each from the unknown circuit state. With [sync] (see {!Sync}), the
    synchronizing prefix runs before each sequence with the MISR held in
    reset, which is the paper's recipe for X-free signatures. Raises
    [Invalid_argument] on an empty sequence list or width mismatches. *)

val pp_report : Format.formatter -> report -> unit
