module Tseq = Bist_logic.Tseq
module T = Bist_logic.Ternary
module Seq_sim = Bist_sim.Seq_sim

let synchronized circuit seq =
  let sim = Seq_sim.create circuit in
  Tseq.iter (fun v -> ignore (Seq_sim.step sim v : Bist_logic.Vector.t)) seq;
  Array.for_all T.is_binary (Seq_sim.ff_state sim)

let candidate rng ~width ~length =
  let p_one =
    match Bist_util.Rng.int rng 3 with 0 -> 0.2 | 1 -> 0.5 | _ -> 0.8
  in
  Tseq.of_vectors
    (Array.init length (fun _ ->
         Bist_logic.Vector.random_weighted rng width ~p_one))

(* Trim from the front: the tail of a synchronizing sequence usually
   synchronizes on its own once the early vectors did the hard part. *)
let rec trim circuit seq =
  let len = Tseq.length seq in
  if len <= 1 then seq
  else begin
    let shorter = Tseq.sub seq ~lo:1 ~hi:(len - 1) in
    if synchronized circuit shorter then trim circuit shorter else seq
  end

let find_sequence ?(attempts = 64) ?(max_length = 128) ~rng circuit =
  let width = Bist_circuit.Netlist.num_inputs circuit in
  if Bist_circuit.Netlist.num_dffs circuit = 0 then Some (Tseq.empty width)
  else begin
    let rec search length =
      if length > max_length then None
      else begin
        let rec try_attempt k =
          if k = 0 then None
          else begin
            let seq = candidate rng ~width ~length in
            if synchronized circuit seq then Some (trim circuit seq)
            else try_attempt (k - 1)
          end
        in
        match try_attempt attempts with
        | Some seq -> Some seq
        | None -> search (2 * length)
      end
    in
    search 4
  end
