(** The ISCAS-89 benchmark circuit s27 and the paper's worked example.

    s27 is small enough that the paper prints it in full: Table 2 gives a
    10-vector test sequence [T0] together with the time unit at which each
    fault is first detected, and Section 3.1 walks Procedure 2 through
    fault [f10]. This module reproduces the circuit and that sequence
    exactly. *)

val bench_text : string
(** The [.bench] source of s27 (4 PIs G0..G3, 1 PO G17, 3 DFFs). *)

val circuit : unit -> Bist_circuit.Netlist.t

val t0 : unit -> Bist_logic.Tseq.t
(** The paper's Table 2 sequence:
    0111 1001 0111 1001 0100 1011 1001 0000 0000 1011,
    with input order G0 G1 G2 G3. *)

val table1_s : unit -> Bist_logic.Tseq.t
(** The sequence [S = (000, 110)] of the paper's Table 1 (a 3-input
    example unrelated to s27, used to illustrate expansion). *)
