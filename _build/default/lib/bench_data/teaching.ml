let parse name text = Bist_circuit.Bench_parser.parse_string ~name text

let counter3 () =
  parse "counter3"
    "# 3-bit synchronous counter with synchronous reset\n\
     INPUT(rst)\n\
     INPUT(en)\n\
     OUTPUT(q0)\n\
     OUTPUT(q1)\n\
     OUTPUT(q2)\n\
     q0 = DFF(d0)\n\
     q1 = DFF(d1)\n\
     q2 = DFF(d2)\n\
     nrst = NOT(rst)\n\
     t0 = XOR(q0, en)\n\
     c0 = AND(en, q0)\n\
     t1 = XOR(q1, c0)\n\
     c1 = AND(c0, q1)\n\
     t2 = XOR(q2, c1)\n\
     d0 = AND(t0, nrst)\n\
     d1 = AND(t1, nrst)\n\
     d2 = AND(t2, nrst)\n"

let shift4 () =
  parse "shift4"
    "# 4-stage shift register\n\
     INPUT(sin)\n\
     OUTPUT(q0)\n\
     OUTPUT(q1)\n\
     OUTPUT(q2)\n\
     OUTPUT(q3)\n\
     q0 = DFF(b0)\n\
     q1 = DFF(b1)\n\
     q2 = DFF(b2)\n\
     q3 = DFF(b3)\n\
     b0 = BUF(sin)\n\
     b1 = BUF(q0)\n\
     b2 = BUF(q1)\n\
     b3 = BUF(q2)\n"

let gray3 () =
  parse "gray3"
    "# 3-bit Gray-code counter: binary core, Gray output stage\n\
     INPUT(rst)\n\
     INPUT(en)\n\
     OUTPUT(g0)\n\
     OUTPUT(g1)\n\
     OUTPUT(g2)\n\
     b0 = DFF(d0)\n\
     b1 = DFF(d1)\n\
     b2 = DFF(d2)\n\
     nrst = NOT(rst)\n\
     t0 = XOR(b0, en)\n\
     c0 = AND(en, b0)\n\
     t1 = XOR(b1, c0)\n\
     c1 = AND(c0, b1)\n\
     t2 = XOR(b2, c1)\n\
     d0 = AND(t0, nrst)\n\
     d1 = AND(t1, nrst)\n\
     d2 = AND(t2, nrst)\n\
     g0 = XOR(b0, b1)\n\
     g1 = XOR(b1, b2)\n\
     g2 = BUF(b2)\n"

let johnson4 () =
  parse "johnson4"
    "# 4-stage Johnson counter (twisted ring)\n\
     INPUT(rst)\n\
     OUTPUT(j0)\n\
     OUTPUT(j1)\n\
     OUTPUT(j2)\n\
     OUTPUT(j3)\n\
     j0 = DFF(d0)\n\
     j1 = DFF(d1)\n\
     j2 = DFF(d2)\n\
     j3 = DFF(d3)\n\
     nrst = NOT(rst)\n\
     nj3 = NOT(j3)\n\
     d0 = AND(nj3, nrst)\n\
     d1 = AND(j0, nrst)\n\
     d2 = AND(j1, nrst)\n\
     d3 = AND(j2, nrst)\n"

let parity_fsm () =
  parse "parity_fsm"
    "# running parity with synchronous reset\n\
     INPUT(rst)\n\
     INPUT(d)\n\
     OUTPUT(p)\n\
     s = DFF(ns)\n\
     nrst = NOT(rst)\n\
     x = XOR(s, d)\n\
     ns = AND(x, nrst)\n\
     p = BUF(s)\n"
