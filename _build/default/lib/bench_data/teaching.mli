(** Small hand-written sequential circuits for examples and tests.

    Unlike the synthetic benchmarks these have documented behaviour, which
    makes them useful for testing the simulator's sequential semantics
    (synchronization from the all-X state in particular). *)

val counter3 : unit -> Bist_circuit.Netlist.t
(** 3-bit synchronous up-counter. Inputs [rst] (synchronous reset, active
    high) and [en] (count enable); outputs the counter bits [q0..q2]
    (q0 is the least significant). Holding [rst = 1] for one cycle drives
    the state to 000 from any (even unknown) state. *)

val shift4 : unit -> Bist_circuit.Netlist.t
(** 4-stage shift register. Input [sin]; outputs all four taps
    [q0..q3]. Four cycles of known input fully synchronize it. *)

val parity_fsm : unit -> Bist_circuit.Netlist.t
(** Serial parity accumulator. Inputs [rst] and [d]; output [p] is the
    running XOR of [d] since the last reset. *)

val gray3 : unit -> Bist_circuit.Netlist.t
(** 3-bit Gray-code counter: exactly one output bit changes per enabled
    cycle. Inputs [rst] and [en]; outputs [g0..g2]. Internally a binary
    counter with a Gray output stage, so it also exercises XOR cones. *)

val johnson4 : unit -> Bist_circuit.Netlist.t
(** 4-stage Johnson (twisted-ring) counter with synchronous reset.
    Inputs [rst]; outputs [j0..j3]; cycles through 8 states. *)
