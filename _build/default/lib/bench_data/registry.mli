(** The evaluation circuit suite.

    One entry per circuit of the paper's Tables 3-5. [s27] is the real
    ISCAS-89 circuit (it appears in the paper itself); the twelve
    evaluated circuits are synthetic stand-ins generated to the published
    ISCAS-89 structural profiles and named [x298 .. x35932] to make the
    substitution explicit. [x35932]'s profile is scaled down (about a
    quarter of the real gate count) to keep the full experiment suite
    runnable in CI; the scaling is recorded here and in EXPERIMENTS.md. *)

type entry = {
  name : string;  (** Our circuit name, e.g. ["x298"]. *)
  paper_name : string;  (** The ISCAS-89 circuit it stands in for. *)
  circuit : unit -> Bist_circuit.Netlist.t;  (** Deterministic. *)
  scaled : bool;  (** True when the profile was reduced for runtime. *)
}

val s27 : entry

val evaluation_suite : unit -> entry list
(** The twelve Table-3 stand-ins, smallest first. *)

val all : unit -> entry list
(** [s27] followed by the evaluation suite. *)

val find : string -> entry option
(** Look up by [name] or [paper_name]. *)
