(** Synthetic synchronous sequential benchmark circuits.

    The paper evaluates on ISCAS-89 netlists, which are not available
    here; this generator produces random gate-level circuits matched to a
    published profile (PI / PO / flip-flop / gate counts). Circuits are
    deterministic in the seed.

    Structure, chosen so the circuits behave like the real benchmarks
    under three-valued sequential test generation:

    - gates draw fanins with a recency bias, giving multi-level cones;
    - a configurable fraction of flip-flops get a {e synchronizing} D
      input — a gate with a controlling side driven directly by a primary
      input — so the state can be progressively initialized from the
      all-X state, as in the real benchmarks;
    - every gate output is observable: leftover unconsumed signals become
      primary outputs or are folded into an OR collector tree feeding the
      last output. *)

type profile = {
  name : string;
  num_inputs : int;
  num_outputs : int;
  num_ffs : int;
  num_gates : int;  (** Target combinational gate count (approximate). *)
  sync_fraction : float;
      (** Fraction of flip-flops given a synchronizing D gate. *)
  seed : int;
}

val default_sync_fraction : float
(** 0.7 — calibrated so random circuits reach coverages comparable to the
    ISCAS-89 circuits under random/deterministic test generation. *)

val generate : profile -> Bist_circuit.Netlist.t
(** Raises [Invalid_argument] on nonsensical profiles (no inputs or no
    outputs). *)
