lib/bench_data/s27.mli: Bist_circuit Bist_logic
