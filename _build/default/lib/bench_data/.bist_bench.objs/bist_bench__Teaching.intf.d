lib/bench_data/teaching.mli: Bist_circuit
