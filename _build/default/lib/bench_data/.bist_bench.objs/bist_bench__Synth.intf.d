lib/bench_data/synth.mli: Bist_circuit
