lib/bench_data/synth.ml: Array Bist_circuit Bist_util Hashtbl List Printf String
