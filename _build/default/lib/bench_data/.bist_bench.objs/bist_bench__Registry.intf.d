lib/bench_data/registry.mli: Bist_circuit
