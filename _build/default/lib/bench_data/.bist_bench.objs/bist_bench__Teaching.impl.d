lib/bench_data/teaching.ml: Bist_circuit
