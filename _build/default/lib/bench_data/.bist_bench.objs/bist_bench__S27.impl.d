lib/bench_data/s27.ml: Bist_circuit Bist_logic
