lib/bench_data/registry.ml: Bist_circuit List S27 Synth
