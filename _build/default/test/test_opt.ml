(* Suites for Bist_circuit.Opt (netlist cleanup), Bist_sim.Vcd, and
   Bist_hw.Verilog. *)

module Netlist = Bist_circuit.Netlist
module Opt = Bist_circuit.Opt
module Tseq = Bist_logic.Tseq
module Gate = Bist_circuit.Gate

let parse = Bist_circuit.Bench_parser.parse_string

(* Differential equivalence: the optimized circuit must match the
   original cycle-for-cycle under three-valued simulation. *)
let equivalent a b len seed =
  let width = Netlist.num_inputs a in
  let rng = Bist_util.Rng.create seed in
  let seq = Tseq.random_binary rng ~width ~length:len in
  let ra = Bist_sim.Seq_sim.run a seq in
  let rb = Bist_sim.Seq_sim.run b seq in
  Array.for_all2 Bist_logic.Vector.equal ra rb

let test_const_prop_folds () =
  let c =
    parse ~name:"cp"
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\n\
       one = CONST1\n\
       zero = CONST0\n\
       g1 = AND(a, one)\n\
       g2 = OR(g1, zero)\n\
       g3 = AND(b, zero)\n\
       y = XOR(g2, g3)\n\
       z = NAND(one, one)\n"
  in
  let o = Opt.constant_propagate c in
  (* y reduces to buffer-of-a behaviour; z to constant 0. g3 vanishes. *)
  Alcotest.(check bool) "equivalent" true (equivalent c o 20 7);
  Alcotest.(check bool) "smaller" true (Netlist.num_gates o < Netlist.num_gates c)

let test_const_prop_xor_parity () =
  let c =
    parse ~name:"xp"
      "INPUT(a)\nOUTPUT(y)\none = CONST1\ny = XOR(a, one, one, one)\n"
  in
  let o = Opt.constant_propagate c in
  Alcotest.(check bool) "equivalent" true (equivalent c o 10 3);
  (* XOR(a,1,1,1) = NOT a *)
  let y = Netlist.find_exn o "y" in
  Alcotest.(check bool) "reduced to NOT" true (Netlist.kind o y = Gate.Not)

let test_const_prop_keeps_dffs () =
  let c =
    parse ~name:"ff"
      "INPUT(a)\nOUTPUT(p)\nzero = CONST0\nq = DFF(zero)\np = OR(q, a)\n"
  in
  let o = Opt.constant_propagate c in
  (* q's D is constant 0, but q itself starts at X: it must survive. *)
  Alcotest.(check int) "dff kept" 1 (Netlist.num_dffs o);
  Alcotest.(check bool) "equivalent" true (equivalent c o 10 5)

let test_const_prop_random_equivalence =
  Testutil.qcheck
    (QCheck.Test.make ~name:"constant_propagate preserves behaviour" ~count:40
       Testutil.circuit_and_seq
       (fun (cseed, sseed, len) ->
         let c = Testutil.small_circuit cseed in
         equivalent c (Opt.constant_propagate c) (len + 5) sseed))

let test_sweep_removes_cone () =
  let c =
    parse ~name:"sw"
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\nu1 = OR(a, b)\nu2 = NOT(u1)\n"
  in
  let o = Opt.sweep_unobservable c in
  Alcotest.(check int) "only y remains" 1 (Netlist.num_gates o);
  Alcotest.(check int) "PIs kept" 2 (Netlist.num_inputs o);
  Alcotest.(check bool) "equivalent" true (equivalent c o 10 9)

let test_cleanup_random_equivalence =
  Testutil.qcheck
    (QCheck.Test.make ~name:"cleanup preserves behaviour" ~count:30
       Testutil.circuit_and_seq
       (fun (cseed, sseed, len) ->
         let c = Testutil.small_circuit cseed in
         let o = Opt.cleanup c in
         Netlist.num_gates o <= Netlist.num_gates c
         && equivalent c o (len + 5) sseed))

(* Vcd *)

let test_vcd_structure () =
  let c = Bist_bench.Teaching.parity_fsm () in
  let text = Bist_sim.Vcd.dump_string c (Tseq.of_strings [ "10"; "01"; "01" ]) in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
    [ "$enddefinitions"; "$dumpvars"; "$var wire 1"; "#1"; "#3"; "$scope module parity_fsm" ]

let test_vcd_deterministic () =
  let c = Bist_bench.Teaching.shift4 () in
  let seq = Tseq.of_strings [ "1"; "0"; "1" ] in
  Alcotest.(check string) "stable output"
    (Bist_sim.Vcd.dump_string c seq)
    (Bist_sim.Vcd.dump_string c seq)

(* Verilog *)

let test_verilog_emits () =
  let text =
    Bist_hw.Verilog.emit
      { Bist_hw.Verilog.module_name = "bist_expander"; width = 4; depth = 8; n = 2 }
  in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
    [ "module bist_expander ("; "localparam SWEEPS = 16;"; "endmodule";
      "dir_down"; "do_comp"; "do_shift"; "mem [0:7]";
      "{word[2:0], word[3]}" ]

let test_verilog_width1 () =
  let text =
    Bist_hw.Verilog.emit
      { Bist_hw.Verilog.module_name = "w1"; width = 1; depth = 2; n = 1 }
  in
  Alcotest.(check bool) "emits" true (String.length text > 200)

let test_verilog_invalid () =
  Alcotest.check_raises "bad config" (Invalid_argument "Verilog.emit") (fun () ->
      ignore
        (Bist_hw.Verilog.emit
           { Bist_hw.Verilog.module_name = "x"; width = 0; depth = 1; n = 1 }))

let suite =
  [
    Alcotest.test_case "const prop folds" `Quick test_const_prop_folds;
    Alcotest.test_case "const prop xor parity" `Quick test_const_prop_xor_parity;
    Alcotest.test_case "const prop keeps dffs" `Quick test_const_prop_keeps_dffs;
    test_const_prop_random_equivalence;
    Alcotest.test_case "sweep removes cone" `Quick test_sweep_removes_cone;
    test_cleanup_random_equivalence;
    Alcotest.test_case "vcd structure" `Quick test_vcd_structure;
    Alcotest.test_case "vcd deterministic" `Quick test_vcd_deterministic;
    Alcotest.test_case "verilog emits" `Quick test_verilog_emits;
    Alcotest.test_case "verilog width 1" `Quick test_verilog_width1;
    Alcotest.test_case "verilog invalid" `Quick test_verilog_invalid;
  ]
