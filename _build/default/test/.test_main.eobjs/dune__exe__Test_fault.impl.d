test/test_fault.ml: Alcotest Array Bist_bench Bist_circuit Bist_fault Bist_logic Bist_util List Printf QCheck String Testutil
