test/test_circuit.ml: Alcotest Array Bist_bench Bist_circuit Bist_logic Fun List Option QCheck Testutil
