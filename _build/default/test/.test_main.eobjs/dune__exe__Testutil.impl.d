test/testutil.ml: Alcotest Array Bist_bench Bist_logic Bist_util Format List Printf QCheck QCheck_alcotest String
