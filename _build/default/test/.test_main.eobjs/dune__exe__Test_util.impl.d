test/test_util.ml: Alcotest Array Bist_util Fun Int List Printf QCheck Set String Testutil
