test/test_hw.ml: Alcotest Array Bist_bench Bist_circuit Bist_core Bist_hw Bist_logic Bist_util Hashtbl List Option Printf QCheck Testutil
