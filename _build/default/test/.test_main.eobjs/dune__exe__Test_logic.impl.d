test/test_logic.ml: Alcotest Bist_logic Fun Gen List Printf QCheck Testutil
