test/test_validate.ml: Alcotest Bist_bench Bist_circuit Bist_fault Bist_logic Bist_tgen Bist_util List
