test/test_opt.ml: Alcotest Array Bist_bench Bist_circuit Bist_hw Bist_logic Bist_sim Bist_util List QCheck String Testutil
