test/test_core.ml: Alcotest Bist_bench Bist_circuit Bist_core Bist_fault Bist_logic Bist_util List Printf QCheck Testutil
