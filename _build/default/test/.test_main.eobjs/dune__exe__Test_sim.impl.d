test/test_sim.ml: Alcotest Array Bist_bench Bist_circuit Bist_logic Bist_sim Bist_util QCheck String Testutil
