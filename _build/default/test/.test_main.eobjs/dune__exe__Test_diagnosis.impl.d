test/test_diagnosis.ml: Alcotest Bist_bench Bist_core Bist_fault Bist_harness Bist_logic Fun Lazy List String
