test/test_tgen.ml: Alcotest Bist_bench Bist_circuit Bist_fault Bist_logic Bist_tgen Bist_util List Option Printf QCheck Testutil
