test/test_harness.ml: Alcotest Array Bist_baselines Bist_bench Bist_core Bist_fault Bist_harness Bist_logic Bist_util Filename Fun Lazy List Option Printf QCheck String Sys Testutil
