test/test_main.ml: Alcotest Test_circuit Test_core Test_diagnosis Test_fault Test_harness Test_hw Test_invariants Test_logic Test_opt Test_sim Test_tgen Test_util Test_validate
