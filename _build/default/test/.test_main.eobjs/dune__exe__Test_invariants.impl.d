test/test_invariants.ml: Alcotest Array Bist_bench Bist_circuit Bist_core Bist_fault Bist_harness Bist_hw Bist_logic Bist_sim Bist_util Filename Fun Gen List QCheck String Sys Testutil
