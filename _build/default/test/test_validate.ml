(* Suites for Bist_circuit.Validate and Bist_tgen.Directed. *)

module Validate = Bist_circuit.Validate
module Netlist = Bist_circuit.Netlist

let parse = Bist_circuit.Bench_parser.parse_string

let names c nodes = List.map (Netlist.name c) nodes

let test_teaching_circuits_clean () =
  List.iter
    (fun circuit ->
      let r = Validate.check circuit in
      Alcotest.(check bool)
        (Netlist.circuit_name circuit ^ " clean")
        true (Validate.is_clean r))
    [ Bist_bench.Teaching.counter3 (); Bist_bench.Teaching.shift4 ();
      Bist_bench.Teaching.parity_fsm (); Bist_bench.S27.circuit () ]

let test_dangling () =
  let c =
    parse ~name:"d" "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\norphan = BUF(a)\n"
  in
  let r = Validate.check c in
  Alcotest.(check (list string)) "orphan flagged" [ "orphan" ] (names c r.Validate.dangling);
  Alcotest.(check (list string)) "orphan also unobservable" [ "orphan" ]
    (names c r.unobservable)

let test_unobservable_cone () =
  (* A whole cone feeding only the orphan is unobservable but only the
     orphan is dangling. *)
  let c =
    parse ~name:"cone"
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\nmid = OR(a, b)\norphan = NOT(mid)\n"
  in
  let r = Validate.check c in
  Alcotest.(check (list string)) "dangling" [ "orphan" ] (names c r.Validate.dangling);
  Alcotest.(check (list string)) "unobservable includes cone" [ "mid"; "orphan" ]
    (List.sort compare (names c r.unobservable))

let test_uncontrollable_ff () =
  (* A flip-flop pair feeding each other, never touched by a PI. *)
  let c =
    parse ~name:"island"
      "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = BUF(a)\nq1 = DFF(q2)\nq2 = DFF(q1)\nz = BUF(q1)\n"
  in
  let r = Validate.check c in
  Alcotest.(check (list string)) "island flagged" [ "q1"; "q2" ]
    (List.sort compare (names c r.Validate.uncontrollable_ffs));
  Alcotest.(check (list string)) "also uninitializable" [ "q1"; "q2" ]
    (List.sort compare (names c r.maybe_uninitializable_ffs))

let test_uninitializable_self_loop () =
  (* q = DFF(XOR(q, a)) can never leave X: XOR propagates X forever. *)
  let c =
    parse ~name:"xloop"
      "INPUT(a)\nOUTPUT(p)\nq = DFF(d)\nd = XOR(q, a)\np = BUF(q)\n"
  in
  let r = Validate.check c in
  Alcotest.(check (list string)) "xor loop flagged" [ "q" ]
    (names c r.Validate.maybe_uninitializable_ffs);
  Alcotest.(check (list string)) "but controllable" []
    (names c r.uncontrollable_ffs)

let test_resettable_loop_not_flagged () =
  (* The same loop with a reset AND is initializable (counter3 pattern). *)
  let c =
    parse ~name:"rloop"
      "INPUT(a)\nINPUT(rst)\nOUTPUT(p)\nnrst = NOT(rst)\nq = DFF(d)\nx = XOR(q, a)\nd = AND(x, nrst)\np = BUF(q)\n"
  in
  let r = Validate.check c in
  Alcotest.(check (list string)) "not flagged" []
    (names c r.Validate.maybe_uninitializable_ffs)

let test_flagged_ff_faults_undetectable () =
  (* Cross-check against the fault simulator: faults on a flagged FF's
     output are never detected, by any random sequence. *)
  let c =
    parse ~name:"xloop"
      "INPUT(a)\nOUTPUT(p)\nq = DFF(d)\nd = XOR(q, a)\np = BUF(q)\n"
  in
  let q = Netlist.find_exn c "q" in
  let rng = Bist_util.Rng.create 3 in
  let seq = Bist_logic.Tseq.random_binary rng ~width:1 ~length:100 in
  List.iter
    (fun v ->
      let fault = Bist_fault.Fault.output_stuck q v in
      (* Detection would need the fault-free PO to go binary, which the
         X-locked loop forbids. *)
      Alcotest.(check bool) "undetectable" false (Bist_fault.Fsim.detects c fault seq))
    [ Bist_logic.Ternary.Zero; Bist_logic.Ternary.One ]

(* Directed search *)

let test_directed_finds_hard_fault () =
  (* Target a fault the shift register detects only after shifting a
     specific value through: directed search should find a segment. *)
  let c = Bist_bench.Teaching.shift4 () in
  let universe = Bist_fault.Universe.collapsed c in
  let rng = Bist_util.Rng.create 12 in
  let prefix = Bist_logic.Tseq.of_strings [ "0" ] in
  let found = ref 0 in
  Bist_fault.Universe.iter
    (fun _ fault ->
      let outcome = Bist_tgen.Directed.search ~rng ~prefix c fault in
      match outcome.Bist_tgen.Directed.segment with
      | None -> ()
      | Some seg ->
        incr found;
        (* the claim must be real: prefix . seg detects the fault *)
        let full = Bist_logic.Tseq.concat prefix seg in
        Alcotest.(check bool) "claimed detection is real" true
          (Bist_fault.Fsim.detects c fault full))
    universe;
  Alcotest.(check bool) "finds most shift4 faults" true
    (!found >= Bist_fault.Universe.size universe / 2)

let test_directed_respects_budget () =
  let c = Bist_bench.Teaching.counter3 () in
  let fault = Bist_fault.Universe.get (Bist_fault.Universe.collapsed c) 0 in
  let rng = Bist_util.Rng.create 12 in
  let config =
    { Bist_tgen.Directed.default_config with population = 4; generations = 3 }
  in
  let outcome =
    Bist_tgen.Directed.search ~config ~rng
      ~prefix:(Bist_logic.Tseq.of_strings [ "00" ])
      c fault
  in
  (* population evals + at most generations * (population - elite) more *)
  Alcotest.(check bool) "bounded evaluations" true
    (outcome.Bist_tgen.Directed.evaluations <= 4 + (3 * 4))

let suite =
  [
    Alcotest.test_case "teaching circuits clean" `Quick test_teaching_circuits_clean;
    Alcotest.test_case "dangling" `Quick test_dangling;
    Alcotest.test_case "unobservable cone" `Quick test_unobservable_cone;
    Alcotest.test_case "uncontrollable ff island" `Quick test_uncontrollable_ff;
    Alcotest.test_case "uninitializable xor loop" `Quick test_uninitializable_self_loop;
    Alcotest.test_case "resettable loop ok" `Quick test_resettable_loop_not_flagged;
    Alcotest.test_case "flagged ff faults undetectable" `Quick
      test_flagged_ff_faults_undetectable;
    Alcotest.test_case "directed finds shift4 faults" `Quick
      test_directed_finds_hard_fault;
    Alcotest.test_case "directed respects budget" `Quick test_directed_respects_budget;
  ]
