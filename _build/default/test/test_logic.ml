(* Suites for Bist_logic: Ternary, Packed, Vector, Tseq. *)

module T = Bist_logic.Ternary
module P = Bist_logic.Packed
module Vector = Bist_logic.Vector
module Tseq = Bist_logic.Tseq

let all3 = [ T.Zero; T.One; T.X ]

let test_ternary_truth_tables () =
  let module A = Alcotest in
  let chk = A.check Testutil.ternary_testable in
  chk "and 1 1" T.One (T.and_ T.One T.One);
  chk "and 0 X" T.Zero (T.and_ T.Zero T.X);
  chk "and X 1" T.X (T.and_ T.X T.One);
  chk "or 1 X" T.One (T.or_ T.One T.X);
  chk "or 0 X" T.X (T.or_ T.Zero T.X);
  chk "xor X 1" T.X (T.xor T.X T.One);
  chk "xor 1 0" T.One (T.xor T.One T.Zero);
  chk "not X" T.X (T.not_ T.X);
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          chk "nand = not and" (T.not_ (T.and_ a b)) (T.nand a b);
          chk "nor = not or" (T.not_ (T.or_ a b)) (T.nor a b);
          chk "xnor = not xor" (T.not_ (T.xor a b)) (T.xnor a b);
          chk "and commutes" (T.and_ a b) (T.and_ b a);
          chk "or commutes" (T.or_ a b) (T.or_ b a))
        all3)
    all3

(* Information order: X below both binaries. Every connective must be
   monotone — refining an X input never flips a binary output. This is
   the property the whole detection theory rests on. *)
let refines a b = T.equal a b || T.equal b T.X

let test_ternary_monotone () =
  let ops = [ ("and", T.and_); ("or", T.or_); ("xor", T.xor); ("nand", T.nand) ] in
  List.iter
    (fun (name, op) ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              (* refine X inputs in all ways *)
              let refinements v = if T.equal v T.X then all3 else [ v ] in
              List.iter
                (fun a' ->
                  List.iter
                    (fun b' ->
                      if refines a' a && refines b' b then
                        Alcotest.(check bool)
                          (Printf.sprintf "%s monotone" name) true
                          (refines (op a' b') (op a b)))
                    (refinements b))
                (refinements a))
            all3)
        all3)
    ops

let test_ternary_conflicts () =
  Alcotest.(check bool) "0 vs 1" true (T.conflicts T.Zero T.One);
  Alcotest.(check bool) "1 vs 0" true (T.conflicts T.One T.Zero);
  Alcotest.(check bool) "1 vs 1" false (T.conflicts T.One T.One);
  Alcotest.(check bool) "X vs 1" false (T.conflicts T.X T.One);
  Alcotest.(check bool) "1 vs X" false (T.conflicts T.One T.X)

let test_ternary_chars () =
  List.iter
    (fun t -> Alcotest.check Testutil.ternary_testable "roundtrip" t (T.of_char (T.to_char t)))
    all3;
  Alcotest.check_raises "bad char" (Invalid_argument "Ternary.of_char: '2'")
    (fun () -> ignore (T.of_char '2'))

(* Packed words must agree lane-wise with the scalar connectives. *)
let test_packed_matches_scalar =
  let gen = QCheck.Gen.(pair (list_size (return P.lanes) Testutil.ternary_gen)
                          (list_size (return P.lanes) Testutil.ternary_gen)) in
  let arb = QCheck.make gen in
  Testutil.qcheck
    (QCheck.Test.make ~name:"Packed ops match Ternary lane-wise" ~count:200 arb
       (fun (la, lb) ->
         let pack l = List.fold_left (fun (w, i) v -> (P.set w i v, i + 1)) (P.all_x, 0) l |> fst in
         let wa = pack la and wb = pack lb in
         let ops =
           [ (P.and_, T.and_); (P.or_, T.or_); (P.xor, T.xor);
             (P.nand, T.nand); (P.nor, T.nor); (P.xnor, T.xnor) ]
         in
         List.for_all
           (fun (pop, top) ->
             let w = pop wa wb in
             List.for_all2
               (fun i (a, b) -> T.equal (P.get w i) (top a b))
               (List.init P.lanes Fun.id)
               (List.combine la lb))
           ops
         && List.for_all
              (fun i -> T.equal (P.get (P.not_ wa) i) (T.not_ (P.get wa i)))
              (List.init P.lanes Fun.id)))

let test_packed_set_get () =
  let w = P.all T.X in
  let w = P.set w 5 T.One in
  let w = P.set w 17 T.Zero in
  Alcotest.check Testutil.ternary_testable "lane 5" T.One (P.get w 5);
  Alcotest.check Testutil.ternary_testable "lane 17" T.Zero (P.get w 17);
  Alcotest.check Testutil.ternary_testable "lane 0 untouched" T.X (P.get w 0);
  let w = P.set w 5 T.X in
  Alcotest.check Testutil.ternary_testable "cleared" T.X (P.get w 5)

let test_packed_force_and_diff () =
  let good = P.all T.One in
  let faulty = P.force good ~mask:0b100 T.Zero in
  Alcotest.(check int) "diff lane 2" 0b100 (P.diff_mask good faulty);
  let faulty_x = P.force good ~mask:0b1000 T.X in
  Alcotest.(check int) "X never diffs" 0 (P.diff_mask good faulty_x);
  Alcotest.(check int) "binary mask drops X lane" (-1 land lnot 0b1000)
    (P.binary_mask faulty_x)

let test_packed_invariant () =
  Alcotest.check_raises "overlapping planes"
    (Invalid_argument "Packed.make: ones and zeros overlap") (fun () ->
      ignore (P.make ~ones:1 ~zeros:1))

(* Vector *)

let test_vector_roundtrip =
  Testutil.qcheck
    (QCheck.Test.make ~name:"Vector of_string/to_string roundtrip" ~count:200
       QCheck.(string_gen_of_size (Gen.int_range 0 20) (Gen.oneofl [ '0'; '1'; 'x' ]))
       (fun s -> Vector.to_string (Vector.of_string s) = s))

let test_vector_shift () =
  Testutil.check_vec "paper example 001 -> 010" (Vector.of_string "010")
    (Vector.shift_left_circular (Vector.of_string "001"));
  Testutil.check_vec "paper example 101 -> 011" (Vector.of_string "011")
    (Vector.shift_left_circular (Vector.of_string "101"));
  Testutil.check_vec "width 1 fixed point" (Vector.of_string "1")
    (Vector.shift_left_circular (Vector.of_string "1"))

let test_vector_shift_order () =
  (* width applications of the circular shift = identity *)
  let v = Vector.of_string "1x010" in
  let rec apply n w = if n = 0 then w else apply (n - 1) (Vector.shift_left_circular w) in
  Testutil.check_vec "period divides width" v (apply 5 v)

let test_vector_complement_involutive =
  Testutil.qcheck
    (QCheck.Test.make ~name:"Vector complement involutive" ~count:200
       (QCheck.make (Testutil.vector_gen ~width:8))
       (fun v -> Vector.equal v (Vector.complement (Vector.complement v))))

(* Tseq *)

let test_tseq_sub_omit () =
  let s = Tseq.of_strings [ "00"; "01"; "10"; "11" ] in
  Testutil.check_seq "sub [1,2]" (Tseq.of_strings [ "01"; "10" ]) (Tseq.sub s ~lo:1 ~hi:2);
  Testutil.check_seq "omit 2" (Tseq.of_strings [ "00"; "01"; "11" ]) (Tseq.omit s 2);
  Alcotest.check_raises "bad range" (Invalid_argument "Tseq.sub: bad range")
    (fun () -> ignore (Tseq.sub s ~lo:2 ~hi:1))

let test_tseq_repeat_reverse () =
  let s = Tseq.of_strings [ "01"; "10" ] in
  Testutil.check_seq "repeat 3"
    (Tseq.of_strings [ "01"; "10"; "01"; "10"; "01"; "10" ])
    (Tseq.repeat s 3);
  Testutil.check_seq "reverse" (Tseq.of_strings [ "10"; "01" ]) (Tseq.reverse s)

let test_tseq_laws =
  let arb = Testutil.seq ~width:5 ~max_len:12 in
  [
    Testutil.qcheck
      (QCheck.Test.make ~name:"reverse involutive" ~count:200 arb (fun s ->
           Tseq.equal s (Tseq.reverse (Tseq.reverse s))));
    Testutil.qcheck
      (QCheck.Test.make ~name:"complement involutive" ~count:200 arb (fun s ->
           Tseq.equal s (Tseq.complement (Tseq.complement s))));
    Testutil.qcheck
      (QCheck.Test.make ~name:"repeat length" ~count:200
         QCheck.(pair arb (int_range 1 5))
         (fun (s, n) -> Tseq.length (Tseq.repeat s n) = n * Tseq.length s));
    Testutil.qcheck
      (QCheck.Test.make ~name:"concat length" ~count:200 QCheck.(pair arb arb)
         (fun (a, b) -> Tseq.length (Tseq.concat a b) = Tseq.length a + Tseq.length b));
    Testutil.qcheck
      (QCheck.Test.make ~name:"reverse distributes over concat" ~count:200
         QCheck.(pair arb arb)
         (fun (a, b) ->
           Tseq.equal
             (Tseq.reverse (Tseq.concat a b))
             (Tseq.concat (Tseq.reverse b) (Tseq.reverse a))));
  ]

let test_tseq_width_mismatch () =
  let a = Tseq.of_strings [ "01" ] and b = Tseq.of_strings [ "011" ] in
  Alcotest.check_raises "concat width" (Invalid_argument "Tseq.concat: width mismatch")
    (fun () -> ignore (Tseq.concat a b))

let suite =
  [
    Alcotest.test_case "ternary truth tables" `Quick test_ternary_truth_tables;
    Alcotest.test_case "ternary monotone" `Quick test_ternary_monotone;
    Alcotest.test_case "ternary conflicts" `Quick test_ternary_conflicts;
    Alcotest.test_case "ternary chars" `Quick test_ternary_chars;
    test_packed_matches_scalar;
    Alcotest.test_case "packed set/get" `Quick test_packed_set_get;
    Alcotest.test_case "packed force/diff" `Quick test_packed_force_and_diff;
    Alcotest.test_case "packed invariant" `Quick test_packed_invariant;
    test_vector_roundtrip;
    Alcotest.test_case "vector shift" `Quick test_vector_shift;
    Alcotest.test_case "vector shift period" `Quick test_vector_shift_order;
    test_vector_complement_involutive;
    Alcotest.test_case "tseq sub/omit" `Quick test_tseq_sub_omit;
    Alcotest.test_case "tseq repeat/reverse" `Quick test_tseq_repeat_reverse;
  ]
  @ test_tseq_laws
  @ [ Alcotest.test_case "tseq width mismatch" `Quick test_tseq_width_mismatch ]
