(* Suites for Bist_util: Rng, Bitset, Ascii_table. *)

module Rng = Bist_util.Rng
module Bitset = Bist_util.Bitset

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_differs_by_seed () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 20 do
    Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr matches
  done;
  Alcotest.(check bool) "split stream is distinct" true (!matches < 4)

let test_rng_int_bounds =
  Testutil.qcheck
    (QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
       QCheck.(pair small_int (int_range 1 1000))
       (fun (seed, bound) ->
         let rng = Rng.create seed in
         let v = Rng.int rng bound in
         v >= 0 && v < bound))

let test_rng_permutation () =
  let rng = Rng.create 3 in
  let p = Rng.permutation rng 50 in
  let seen = Array.make 50 false in
  Array.iter (fun i -> seen.(i) <- true) p;
  Alcotest.(check bool) "is a permutation" true (Array.for_all Fun.id seen)

let test_rng_float_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_invalid () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "choose empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

(* Bitset *)

module IntSet = Set.Make (Int)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "not mem 62" false (Bitset.mem s 62);
  Bitset.remove s 63;
  Alcotest.(check int) "after remove" 3 (Bitset.cardinal s);
  Alcotest.(check (list int)) "elements sorted" [ 0; 64; 99 ] (Bitset.elements s)

let test_bitset_fill () =
  List.iter
    (fun cap ->
      let s = Bitset.create cap in
      Bitset.fill s;
      Alcotest.(check int) (Printf.sprintf "fill %d" cap) cap (Bitset.cardinal s))
    [ 0; 1; 7; 8; 9; 63; 64; 65; 100 ]

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s 10)

let bitset_of_list cap l =
  let s = Bitset.create cap in
  List.iter (Bitset.add s) l;
  s

let test_bitset_ops_vs_reference =
  let gen =
    QCheck.(pair (list (int_range 0 199)) (list (int_range 0 199)))
  in
  Testutil.qcheck
    (QCheck.Test.make ~name:"Bitset ops agree with Set" ~count:300 gen
       (fun (la, lb) ->
         let sa = IntSet.of_list la and sb = IntSet.of_list lb in
         let check op ref_op =
           let a = bitset_of_list 200 la in
           let b = bitset_of_list 200 lb in
           op a b;
           IntSet.elements (ref_op sa sb) = Bitset.elements a
         in
         check Bitset.union_into IntSet.union
         && check Bitset.diff_into IntSet.diff
         && check Bitset.inter_into IntSet.inter
         && Bitset.subset (bitset_of_list 200 la) (bitset_of_list 200 lb)
            = IntSet.subset sa sb))

let test_bitset_copy_independent () =
  let a = bitset_of_list 50 [ 1; 2; 3 ] in
  let b = Bitset.copy a in
  Bitset.add b 10;
  Alcotest.(check bool) "copy does not alias" false (Bitset.mem a 10)

(* Ascii_table *)

let test_table_render () =
  let t =
    Bist_util.Ascii_table.create
      ~headers:[ ("name", Bist_util.Ascii_table.Left); ("v", Bist_util.Ascii_table.Right) ]
  in
  Bist_util.Ascii_table.add_row t [ "a"; "1" ];
  Bist_util.Ascii_table.add_row t [ "bcd"; "22" ];
  let out = Bist_util.Ascii_table.render t in
  Alcotest.(check bool) "has header" true
    (String.length out > 0 && String.sub out 0 4 = "name");
  Alcotest.(check bool) "right-aligns" true
    (let lines = String.split_on_char '\n' out in
     List.exists (fun l -> l = "a      1") lines)

let test_table_arity () =
  let t =
    Bist_util.Ascii_table.create ~headers:[ ("a", Bist_util.Ascii_table.Left) ]
  in
  Alcotest.check_raises "arity" (Invalid_argument "Ascii_table.add_row: arity mismatch")
    (fun () -> Bist_util.Ascii_table.add_row t [ "x"; "y" ])

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_differs_by_seed;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    test_rng_int_bounds;
    Alcotest.test_case "rng permutation" `Quick test_rng_permutation;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng invalid args" `Quick test_rng_invalid;
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset fill" `Quick test_bitset_fill;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    test_bitset_ops_vs_reference;
    Alcotest.test_case "bitset copy" `Quick test_bitset_copy_independent;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity;
  ]
