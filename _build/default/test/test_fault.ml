(* Suites for Bist_fault: universes, collapsing, and the fault
   simulators — including the exact reproduction of the paper's Table 2
   detection profile on s27. *)

module Tseq = Bist_logic.Tseq
module T = Bist_logic.Ternary
module Bitset = Bist_util.Bitset
module Fault = Bist_fault.Fault
module Universe = Bist_fault.Universe
module Fsim = Bist_fault.Fsim
module Fault_table = Bist_fault.Fault_table

let s27 = Bist_bench.S27.circuit ()
let s27_universe = Universe.collapsed s27
let s27_t0 = Bist_bench.S27.t0 ()

let test_universe_sizes () =
  Alcotest.(check int) "s27 full" 52 (Universe.size (Universe.full s27));
  (* 32 is the classic collapsed count for s27, and the paper's. *)
  Alcotest.(check int) "s27 collapsed" 32 (Universe.size s27_universe)

let test_universe_dedup () =
  let f = Fault.output_stuck 3 T.One in
  let u = Universe.of_faults s27 [ f; f; Fault.output_stuck 3 T.Zero ] in
  Alcotest.(check int) "dedup" 2 (Universe.size u)

let test_fault_names () =
  let g8 = Bist_circuit.Netlist.find_exn s27 "G8" in
  Alcotest.(check string) "stem name" "G8/1" (Fault.name s27 (Fault.output_stuck g8 T.One));
  Alcotest.(check string) "pin name" "G8.in0/0"
    (Fault.name s27 (Fault.pin_stuck ~gate:g8 ~pin:0 T.Zero))

let test_fault_stuck_binary () =
  Alcotest.check_raises "X rejected"
    (Invalid_argument "Fault.stuck_at: stuck value must be binary") (fun () ->
      ignore (Fault.output_stuck 0 T.X))

(* Every member of a collapse class must have the same detection profile
   under the paper's T0 — this validates the equivalence rules. *)
let test_collapse_classes_equivalent () =
  let classes = Bist_fault.Collapse.classes s27 in
  List.iter
    (fun cls ->
      match cls with
      | [] | [ _ ] -> ()
      | rep :: rest ->
        let dt f =
          let u = Universe.of_faults s27 [ f ] in
          (Fsim.run u s27_t0).Fsim.det_time.(0)
        in
        let rep_time = dt rep in
        List.iter
          (fun f ->
            Alcotest.(check int)
              (Printf.sprintf "%s ~ %s" (Fault.name s27 rep) (Fault.name s27 f))
              rep_time (dt f))
          rest)
    classes

(* Table 2 of the paper: first-detection counts per time unit. *)
let test_table2_profile () =
  let table = Fault_table.compute s27_universe s27_t0 in
  Alcotest.(check int) "all 32 detected" 32 (Fault_table.num_detected table);
  let expected = [ (0, 0); (1, 9); (2, 4); (3, 0); (4, 1); (5, 11); (6, 2); (7, 0); (8, 3); (9, 2) ] in
  List.iter
    (fun (u, count) ->
      Alcotest.(check int)
        (Printf.sprintf "faults first detected at u=%d" u)
        count
        (List.length (Fault_table.detected_at table u)))
    expected

let test_argmax_udet () =
  let table = Fault_table.compute s27_universe s27_t0 in
  let targets = Fault_table.detected table in
  match Fault_table.argmax_udet table ~targets with
  | None -> Alcotest.fail "expected a fault"
  | Some id ->
    Alcotest.(check (option int)) "udet = 9" (Some 9) (Fault_table.udet table id)

let test_serial_matches_parallel () =
  let outcome = Fsim.run s27_universe s27_t0 in
  Universe.iter
    (fun id fault ->
      let serial = Fsim.single s27 fault in
      let expected =
        if outcome.Fsim.det_time.(id) >= 0 then Some outcome.Fsim.det_time.(id)
        else None
      in
      Alcotest.(check (option int))
        (Fault.name s27 fault) expected
        (Fsim.single_detection_time serial s27_t0))
    s27_universe

(* The same differential on random circuits. *)
let test_serial_parallel_random =
  Testutil.qcheck
    (QCheck.Test.make ~name:"serial == parallel on random circuits" ~count:20
       Testutil.circuit_and_seq
       (fun (cseed, sseed, len) ->
         let circuit = Testutil.small_circuit cseed in
         let universe = Universe.collapsed circuit in
         let rng = Bist_util.Rng.create sseed in
         let seq =
           Tseq.random_binary rng
             ~width:(Bist_circuit.Netlist.num_inputs circuit)
             ~length:len
         in
         let outcome = Fsim.run universe seq in
         Universe.fold
           (fun id fault acc ->
             acc
             &&
             let got = Fsim.single_detection_time (Fsim.single circuit fault) seq in
             got = (if outcome.Fsim.det_time.(id) >= 0 then Some outcome.Fsim.det_time.(id) else None))
           universe true))

let test_targets_restrict () =
  let targets = Bitset.create (Universe.size s27_universe) in
  Bitset.add targets 0;
  Bitset.add targets 5;
  let outcome = Fsim.run ~targets s27_universe s27_t0 in
  Universe.iter
    (fun id _ ->
      if not (Bitset.mem targets id) then
        Alcotest.(check int) "non-target untouched" (-1) outcome.Fsim.det_time.(id))
    s27_universe

(* Monotonicity: extending a sequence can only add detections. *)
let test_detection_monotone_in_length =
  Testutil.qcheck
    (QCheck.Test.make ~name:"longer sequence detects a superset" ~count:30
       Testutil.circuit_and_seq
       (fun (cseed, sseed, len) ->
         let circuit = Testutil.small_circuit cseed in
         let universe = Universe.collapsed circuit in
         let rng = Bist_util.Rng.create sseed in
         let width = Bist_circuit.Netlist.num_inputs circuit in
         let seq = Tseq.random_binary rng ~width ~length:(len + 5) in
         let prefix = Tseq.sub seq ~lo:0 ~hi:(len - 1) in
         let d_full = (Fsim.run universe seq).Fsim.detected in
         let d_pre = (Fsim.run universe prefix).Fsim.detected in
         Bitset.subset d_pre d_full))

(* Embedding: a fault detected by a segment standalone stays detected
   when the segment runs after a warm-up prefix (ternary monotonicity) —
   the property the T0 engine relies on. *)
let test_embedding_preserves_detection =
  Testutil.qcheck
    (QCheck.Test.make ~name:"warm-up prefix preserves detections" ~count:30
       Testutil.circuit_and_seq
       (fun (cseed, sseed, len) ->
         let circuit = Testutil.small_circuit cseed in
         let universe = Universe.collapsed circuit in
         let rng = Bist_util.Rng.create sseed in
         let width = Bist_circuit.Netlist.num_inputs circuit in
         let warmup = Tseq.random_binary rng ~width ~length:10 in
         let seg = Tseq.random_binary rng ~width ~length:len in
         let standalone = (Fsim.run universe seg).Fsim.detected in
         let embedded = (Fsim.run universe (Tseq.concat warmup seg)).Fsim.detected in
         Bitset.subset standalone embedded))

let test_coverage_value () =
  let outcome = Fsim.run s27_universe s27_t0 in
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 (Fsim.coverage outcome)

let test_fault_table_render () =
  let table = Fault_table.compute s27_universe s27_t0 in
  let text = Fault_table.render table in
  Alcotest.(check bool) "mentions a fault" true
    (String.length text > 50
     && (let found = ref false in
         String.iteri (fun i c -> if c = '/' && i > 0 then found := true) text;
         !found))

let suite =
  [
    Alcotest.test_case "universe sizes" `Quick test_universe_sizes;
    Alcotest.test_case "universe dedup" `Quick test_universe_dedup;
    Alcotest.test_case "fault names" `Quick test_fault_names;
    Alcotest.test_case "stuck value binary" `Quick test_fault_stuck_binary;
    Alcotest.test_case "collapse classes equivalent" `Slow test_collapse_classes_equivalent;
    Alcotest.test_case "paper Table 2 profile" `Quick test_table2_profile;
    Alcotest.test_case "argmax udet" `Quick test_argmax_udet;
    Alcotest.test_case "serial matches parallel (s27)" `Quick test_serial_matches_parallel;
    test_serial_parallel_random;
    Alcotest.test_case "targets restrict" `Quick test_targets_restrict;
    test_detection_monotone_in_length;
    test_embedding_preserves_detection;
    Alcotest.test_case "coverage" `Quick test_coverage_value;
    Alcotest.test_case "table renders" `Quick test_fault_table_render;
  ]
