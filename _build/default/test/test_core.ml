(* Suites for Bist_core: the expansion operators (Table 1), Procedure 2
   (the Section 3.1 walkthrough), Procedure 1, static compaction of S,
   and the end-to-end scheme. *)

module Tseq = Bist_logic.Tseq
module Bitset = Bist_util.Bitset
module Ops = Bist_core.Ops
module Procedure1 = Bist_core.Procedure1
module Procedure2 = Bist_core.Procedure2
module Postprocess = Bist_core.Postprocess
module Scheme = Bist_core.Scheme
module Universe = Bist_fault.Universe
module Fsim = Bist_fault.Fsim

let s27 = Bist_bench.S27.circuit ()
let s27_universe = Universe.collapsed s27
let s27_t0 = Bist_bench.S27.t0 ()

(* Table 1 of the paper, verbatim. *)
let test_table1 () =
  let s = Tseq.of_strings [ "000"; "110" ] in
  let expected_s'' =
    [ "000"; "110"; "000"; "110"; "111"; "001"; "111"; "001" ]
  in
  let expected_s''' =
    expected_s'' @ [ "000"; "101"; "000"; "101"; "111"; "010"; "111"; "010" ]
  in
  let expected_sexp =
    expected_s'''
    @ [ "010"; "111"; "010"; "111"; "101"; "000"; "101"; "000";
        "001"; "111"; "001"; "111"; "110"; "000"; "110"; "000" ]
  in
  Testutil.check_seq "S''exp" (Tseq.of_strings expected_s'')
    (Ops.expand_with ~operators:[ Ops.Repeat; Ops.Complement ] ~n:2 s);
  Testutil.check_seq "S'''exp" (Tseq.of_strings expected_s''')
    (Ops.expand_with ~operators:[ Ops.Repeat; Ops.Complement; Ops.Shift ] ~n:2 s);
  Testutil.check_seq "Sexp" (Tseq.of_strings expected_sexp) (Ops.expand ~n:2 s)

let test_expand_length =
  Testutil.qcheck
    (QCheck.Test.make ~name:"expansion length is 8nL" ~count:100
       QCheck.(pair (Testutil.seq ~width:4 ~max_len:10) (int_range 1 6))
       (fun (s, n) ->
         Tseq.length (Ops.expand ~n s) = Ops.expanded_length ~n (Tseq.length s)))

let test_expand_prefix =
  Testutil.qcheck
    (QCheck.Test.make ~name:"S is a prefix of Sexp (all operator subsets)"
       ~count:100
       QCheck.(
         triple (Testutil.seq ~width:4 ~max_len:8) (int_range 1 4)
           (oneofl
              [ Ops.all_operators; [ Ops.Repeat ]; [ Ops.Complement ];
                [ Ops.Shift ]; [ Ops.Reverse ]; [ Ops.Repeat; Ops.Reverse ];
                [ Ops.Complement; Ops.Shift ] ]))
       (fun (s, n, operators) ->
         let exp = Ops.expand_with ~operators ~n s in
         Tseq.length exp >= Tseq.length s
         && Tseq.equal (Tseq.sub exp ~lo:0 ~hi:(Tseq.length s - 1)) s))

let test_expansion_factor =
  Testutil.qcheck
    (QCheck.Test.make ~name:"expansion_factor matches actual length" ~count:100
       QCheck.(
         triple (Testutil.seq ~width:3 ~max_len:6) (int_range 1 5)
           (oneofl
              [ Ops.all_operators; [ Ops.Repeat ]; [ Ops.Shift; Ops.Reverse ];
                [ Ops.Complement ] ]))
       (fun (s, n, operators) ->
         Tseq.length (Ops.expand_with ~operators ~n s)
         = Ops.expansion_factor ~operators ~n * Tseq.length s))

let test_expand_bad_n () =
  Alcotest.check_raises "n=0" (Invalid_argument "Ops.expand_with: n must be >= 1")
    (fun () -> ignore (Ops.expand ~n:0 (Tseq.of_strings [ "0" ])))

(* Section 3.1: the fault detected at u=9 gives window T0[6,9]. *)
let test_procedure2_walkthrough () =
  let table = Bist_fault.Fault_table.compute s27_universe s27_t0 in
  let at9 = Bist_fault.Fault_table.detected_at table 9 in
  Alcotest.(check int) "two faults at u=9" 2 (List.length at9);
  List.iter
    (fun id ->
      let fault = Universe.get s27_universe id in
      let rng = Bist_util.Rng.create 42 in
      let o = Procedure2.find ~rng ~n:1 ~t0:s27_t0 ~udet:9 s27 fault in
      Alcotest.(check int)
        (Printf.sprintf "ustart for %s" (Bist_fault.Fault.name s27 fault))
        6 o.Procedure2.ustart;
      Alcotest.(check bool) "omission shrank or kept" true
        (Tseq.length o.subsequence <= o.window_length))
    at9

(* Invariant: the returned subsequence's expansion detects the fault,
   for every detected fault of s27, both strategies. *)
let test_procedure2_detects_target () =
  let table = Bist_fault.Fault_table.compute s27_universe s27_t0 in
  List.iter
    (fun (strategy, label) ->
      Universe.iter
        (fun id fault ->
          match Bist_fault.Fault_table.udet table id with
          | None -> ()
          | Some udet ->
            let rng = Bist_util.Rng.create (17 + id) in
            let o =
              Procedure2.find ~strategy ~rng ~n:2 ~t0:s27_t0 ~udet s27 fault
            in
            let exp = Ops.expand ~n:2 o.Procedure2.subsequence in
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s expansion detects" label
                 (Bist_fault.Fault.name s27 fault))
              true
              (Fsim.detects s27 fault exp))
        s27_universe)
    [ (Procedure2.paper_strategy, "paper"); (Procedure2.fast_strategy, "fast") ]

let test_procedure2_bad_udet () =
  let fault = Universe.get s27_universe 0 in
  let rng = Bist_util.Rng.create 1 in
  Alcotest.check_raises "udet range"
    (Invalid_argument "Procedure2.find: udet out of range") (fun () ->
      ignore (Procedure2.find ~rng ~n:1 ~t0:s27_t0 ~udet:99 s27 fault))

(* Procedure 1 must cover exactly F = faults detected by T0. *)
let check_covers universe ~n sequences targets =
  let remaining = Bitset.copy targets in
  List.iter
    (fun s ->
      let exp = Ops.expand ~n s in
      let o = Fsim.run ~targets:remaining ~stop_when_all_detected:true universe exp in
      Bitset.diff_into remaining o.Fsim.detected)
    sequences;
  Bitset.is_empty remaining

let test_procedure1_covers () =
  let rng = Bist_util.Rng.create 7 in
  let result = Procedure1.run ~rng ~n:2 ~t0:s27_t0 s27_universe in
  Alcotest.(check bool) "expansions cover F" true
    (check_covers s27_universe ~n:2
       (Procedure1.sequences result)
       result.Procedure1.t0_detected);
  (* each selected sequence detected at least its seeding fault *)
  List.iter
    (fun (sel : Procedure1.selected) ->
      Alcotest.(check bool) "target newly covered" true
        (Bitset.mem sel.newly_detected sel.target_fault))
    result.selected

let test_procedure1_fault_orders () =
  List.iter
    (fun order ->
      let rng = Bist_util.Rng.create 7 in
      let result = Procedure1.run ~fault_order:order ~rng ~n:2 ~t0:s27_t0 s27_universe in
      Alcotest.(check bool) "covers F" true
        (check_covers s27_universe ~n:2
           (Procedure1.sequences result)
           result.Procedure1.t0_detected))
    [ `Max_udet; `Min_udet; `Random ]

let test_procedure1_teaching_circuits () =
  List.iter
    (fun circuit ->
      let universe = Universe.collapsed circuit in
      let rng = Bist_util.Rng.create 3 in
      let t0 =
        Tseq.random_binary rng
          ~width:(Bist_circuit.Netlist.num_inputs circuit)
          ~length:30
      in
      let rng = Bist_util.Rng.create 5 in
      let result = Procedure1.run ~rng ~n:2 ~t0 universe in
      Alcotest.(check bool)
        (Bist_circuit.Netlist.circuit_name circuit ^ " covered")
        true
        (check_covers universe ~n:2
           (Procedure1.sequences result)
           result.Procedure1.t0_detected))
    [ Bist_bench.Teaching.counter3 (); Bist_bench.Teaching.shift4 ();
      Bist_bench.Teaching.parity_fsm () ]

(* Postprocess: never loses coverage, never grows the set. *)
let test_postprocess_preserves_coverage () =
  let rng = Bist_util.Rng.create 7 in
  let result = Procedure1.run ~rng ~n:2 ~t0:s27_t0 s27_universe in
  let seqs = Procedure1.sequences result in
  let targets = result.Procedure1.t0_detected in
  let post = Postprocess.run ~n:2 ~targets s27_universe seqs in
  Alcotest.(check bool) "still covers" true
    (check_covers s27_universe ~n:2 post.Postprocess.kept targets);
  Alcotest.(check bool) "did not grow" true
    (List.length post.kept <= List.length seqs);
  Alcotest.(check int) "dropped accounting"
    (List.length seqs - List.length post.kept)
    post.dropped

let test_postprocess_single_passes () =
  let rng = Bist_util.Rng.create 7 in
  let result = Procedure1.run ~rng ~n:2 ~t0:s27_t0 s27_universe in
  let seqs = Procedure1.sequences result in
  let targets = result.Procedure1.t0_detected in
  List.iter
    (fun pass ->
      let post = Postprocess.run ~passes:[ pass ] ~n:2 ~targets s27_universe seqs in
      Alcotest.(check bool) "single pass preserves coverage" true
        (check_covers s27_universe ~n:2 post.Postprocess.kept targets))
    Postprocess.
      [ Increasing_length; Decreasing_length; Reverse_generation;
        Decreasing_prev_detections ]

let test_postprocess_drops_redundant () =
  (* A duplicated sequence list must lose the duplicates. *)
  let rng = Bist_util.Rng.create 7 in
  let result = Procedure1.run ~rng ~n:2 ~t0:s27_t0 s27_universe in
  let seqs = Procedure1.sequences result in
  let doubled = seqs @ seqs in
  let targets = result.Procedure1.t0_detected in
  let post = Postprocess.run ~n:2 ~targets s27_universe doubled in
  Alcotest.(check bool) "duplicates dropped" true
    (List.length post.Postprocess.kept <= List.length seqs)

(* Scheme end to end. *)
let test_scheme_s27 () =
  let run = Scheme.execute ~seed:7 ~n:2 ~t0:s27_t0 s27_universe in
  Alcotest.(check bool) "coverage verified" true run.Scheme.coverage_verified;
  Alcotest.(check int) "total faults" 32 run.total_faults;
  Alcotest.(check int) "detected by T0" 32 run.detected_by_t0;
  Alcotest.(check int) "t0 length" 10 run.t0_length;
  Alcotest.(check bool) "after <= before (count)" true
    (run.after.count <= run.before.count);
  Alcotest.(check bool) "after <= before (total)" true
    (run.after.total_length <= run.before.total_length);
  Alcotest.(check int) "expanded total = 16 * tot"
    (16 * run.after.total_length)
    run.expanded_total_length

let test_scheme_deterministic () =
  let a = Scheme.execute ~seed:7 ~n:2 ~t0:s27_t0 s27_universe in
  let b = Scheme.execute ~seed:7 ~n:2 ~t0:s27_t0 s27_universe in
  Alcotest.(check int) "same |S|" a.Scheme.after.count b.Scheme.after.count;
  Alcotest.(check bool) "same sequences" true
    (List.for_all2 Tseq.equal a.sequences b.sequences)

let test_best_n () =
  let best = Scheme.best_n ~seed:7 ~ns:[ 2; 4 ] ~t0:s27_t0 s27_universe in
  let r2 = Scheme.execute ~seed:7 ~n:2 ~t0:s27_t0 s27_universe in
  let r4 = Scheme.execute ~seed:7 ~n:4 ~t0:s27_t0 s27_universe in
  let min_max = min r2.Scheme.after.max_length r4.Scheme.after.max_length in
  Alcotest.(check int) "best has minimal max length" min_max
    best.Scheme.after.max_length

let test_scheme_operator_ablation () =
  (* The scheme stays sound with restricted operator sets: whatever the
     pipeline, coverage of F must be preserved. *)
  List.iter
    (fun operators ->
      let run =
        Scheme.execute ~operators ~seed:7 ~n:2 ~t0:s27_t0 s27_universe
      in
      Alcotest.(check bool) "coverage verified" true run.Scheme.coverage_verified)
    [ [ Ops.Repeat ]; [ Ops.Repeat; Ops.Complement ];
      [ Ops.Repeat; Ops.Complement; Ops.Shift ]; [ Ops.Reverse ] ]

let suite =
  [
    Alcotest.test_case "paper Table 1" `Quick test_table1;
    test_expand_length;
    test_expand_prefix;
    test_expansion_factor;
    Alcotest.test_case "expand rejects n=0" `Quick test_expand_bad_n;
    Alcotest.test_case "paper 3.1 window [6,9]" `Quick test_procedure2_walkthrough;
    Alcotest.test_case "procedure2 detects target (all faults)" `Slow
      test_procedure2_detects_target;
    Alcotest.test_case "procedure2 bad udet" `Quick test_procedure2_bad_udet;
    Alcotest.test_case "procedure1 covers F" `Quick test_procedure1_covers;
    Alcotest.test_case "procedure1 fault orders" `Quick test_procedure1_fault_orders;
    Alcotest.test_case "procedure1 teaching circuits" `Quick
      test_procedure1_teaching_circuits;
    Alcotest.test_case "postprocess preserves coverage" `Quick
      test_postprocess_preserves_coverage;
    Alcotest.test_case "postprocess single passes" `Quick test_postprocess_single_passes;
    Alcotest.test_case "postprocess drops duplicates" `Quick
      test_postprocess_drops_redundant;
    Alcotest.test_case "scheme on s27" `Quick test_scheme_s27;
    Alcotest.test_case "scheme deterministic" `Quick test_scheme_deterministic;
    Alcotest.test_case "best n rule" `Quick test_best_n;
    Alcotest.test_case "operator ablation stays sound" `Quick
      test_scheme_operator_ablation;
  ]
