(* Suites for Bist_sim: Seq_sim semantics on known circuits, and the
   packed simulator's lane-0 equivalence with the scalar simulator. *)

module Tseq = Bist_logic.Tseq
module Vector = Bist_logic.Vector
module T = Bist_logic.Ternary
module Seq_sim = Bist_sim.Seq_sim
module Packed_sim = Bist_sim.Packed_sim
module Netlist = Bist_circuit.Netlist

let run_strings circuit strings =
  Seq_sim.run circuit (Tseq.of_strings strings) |> Array.map Vector.to_string

let test_counter_counts () =
  let c = Bist_bench.Teaching.counter3 () in
  (* rst=1 one cycle, then count 5 cycles with en=1; outputs are the
     state *during* each cycle, so the reset shows at the next cycle. *)
  let out = run_strings c [ "10"; "01"; "01"; "01"; "01"; "01" ] in
  Alcotest.(check (array string)) "count sequence"
    [| "xxx"; "000"; "100"; "010"; "110"; "001" |]
    out

let test_counter_hold () =
  let c = Bist_bench.Teaching.counter3 () in
  let out = run_strings c [ "10"; "01"; "00"; "00"; "01" ] in
  (* en=0 holds the state *)
  Alcotest.(check string) "held" "100" out.(3);
  Alcotest.(check string) "resumes" "100" out.(4)

let test_shift4 () =
  let c = Bist_bench.Teaching.shift4 () in
  let out = run_strings c [ "1"; "0"; "1"; "1"; "0" ] in
  Alcotest.(check string) "initial all X" "xxxx" out.(0);
  Alcotest.(check string) "after 4 shifts" "1101" out.(4)

let test_parity () =
  let c = Bist_bench.Teaching.parity_fsm () in
  (* inputs: rst, d *)
  let out = run_strings c [ "10"; "01"; "01"; "00"; "01" ] in
  Alcotest.(check (array string)) "parity trace" [| "x"; "0"; "1"; "0"; "0" |] out

let test_gray3 () =
  let c = Bist_bench.Teaching.gray3 () in
  (* reset, then 4 enabled counts: Gray outputs 000,100,110,010,011... *)
  let out = run_strings c [ "10"; "01"; "01"; "01"; "01"; "01" ] in
  Alcotest.(check (array string)) "gray sequence"
    [| "xxx"; "000"; "100"; "110"; "010"; "011" |]
    out;
  (* single-bit-change property over the enabled steps *)
  let changes a b =
    let d = ref 0 in
    String.iteri (fun i ca -> if ca <> b.[i] then incr d) a;
    !d
  in
  for i = 1 to 4 do
    Alcotest.(check int) "one bit flips" 1 (changes out.(i) out.(i + 1))
  done

let test_johnson4 () =
  let c = Bist_bench.Teaching.johnson4 () in
  let out = run_strings c [ "1"; "0"; "0"; "0"; "0"; "0"; "0"; "0"; "0" ] in
  Alcotest.(check (array string)) "johnson ring"
    [| "xxxx"; "0000"; "1000"; "1100"; "1110"; "1111"; "0111"; "0011"; "0001" |]
    out

let test_x_initial_state () =
  let c = Bist_bench.Teaching.shift4 () in
  let sim = Seq_sim.create c in
  Alcotest.(check bool) "all FFs X at reset" true
    (Array.for_all (fun v -> T.equal v T.X) (Seq_sim.ff_state sim));
  ignore (Seq_sim.step sim (Vector.of_string "1"));
  Alcotest.(check bool) "one FF binary after a step" true
    (Array.exists T.is_binary (Seq_sim.ff_state sim));
  Seq_sim.reset sim;
  Alcotest.(check bool) "reset returns to X" true
    (Array.for_all (fun v -> T.equal v T.X) (Seq_sim.ff_state sim))

let test_width_check () =
  let c = Bist_bench.Teaching.shift4 () in
  let sim = Seq_sim.create c in
  Alcotest.check_raises "width" (Invalid_argument "Seq_sim.step: vector width mismatch")
    (fun () -> ignore (Seq_sim.step sim (Vector.of_string "10")))

(* Differential: packed lane 0 with no forces == scalar simulator, over
   random circuits and random (possibly X-bearing) sequences. *)
let test_packed_lane0_equals_scalar =
  Testutil.qcheck
    (QCheck.Test.make ~name:"Packed_sim lane 0 == Seq_sim" ~count:60
       Testutil.circuit_and_seq
       (fun (cseed, sseed, len) ->
         let circuit = Testutil.small_circuit cseed in
         let width = Netlist.num_inputs circuit in
         let rng = Bist_util.Rng.create sseed in
         let seq = Tseq.random_binary rng ~width ~length:len in
         let scalar = Seq_sim.run circuit seq in
         let packed = Packed_sim.create circuit in
         let ok = ref true in
         Tseq.iteri
           (fun u vec ->
             Packed_sim.step packed vec;
             Array.iteri
               (fun i _ ->
                 let got = Bist_logic.Packed.get (Packed_sim.po_value packed i) 0 in
                 if not (T.equal got (Vector.get scalar.(u) i)) then ok := false)
               (Netlist.outputs circuit))
           seq;
         !ok))

(* An output force on lane k makes that lane behave like the forced
   constant; lane 0 stays fault-free. *)
let test_packed_forcing () =
  let c = Bist_bench.Teaching.shift4 () in
  let sim = Packed_sim.create c in
  let q0 = Netlist.find_exn c "q0" in
  Packed_sim.add_output_force sim q0 ~mask:0b10 T.One;
  Packed_sim.step sim (Vector.of_string "0");
  Packed_sim.step sim (Vector.of_string "0");
  Packed_sim.step sim (Vector.of_string "0");
  (* After three cycles q1's fault-free value is the 0 shifted in at
     cycle 1, while lane 1 carries the forced q0. *)
  let q1_word = Packed_sim.po_value sim 1 in
  Alcotest.check Testutil.ternary_testable "lane0 good" T.Zero
    (Bist_logic.Packed.get q1_word 0);
  Alcotest.check Testutil.ternary_testable "lane1 faulty" T.One
    (Bist_logic.Packed.get q1_word 1);
  Alcotest.(check bool) "diff detected" true (Packed_sim.po_diff_lanes sim land 0b10 <> 0)

let test_packed_pin_force_is_local () =
  (* Force only b1's input pin (branch of q0): q1 is affected, but the
     other consumer of q0 (the PO) is not. *)
  let c =
    Bist_circuit.Bench_parser.parse_string ~name:"branch"
      "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\nb = BUF(a)\ny = BUF(b)\nz = NOT(b)\n"
  in
  let sim = Packed_sim.create c in
  let y_gate = Netlist.find_exn c "y" in
  Packed_sim.add_pin_force sim ~gate:y_gate ~pin:0 ~mask:0b10 T.Zero;
  Packed_sim.step sim (Vector.of_string "1");
  let y = Packed_sim.po_value sim 0 and z = Packed_sim.po_value sim 1 in
  Alcotest.check Testutil.ternary_testable "y lane1 forced" T.Zero
    (Bist_logic.Packed.get y 1);
  Alcotest.check Testutil.ternary_testable "z lane1 unaffected" T.Zero
    (Bist_logic.Packed.get z 1);
  Alcotest.check Testutil.ternary_testable "y lane0 good" T.One
    (Bist_logic.Packed.get y 0)

let test_packed_clear_forces () =
  let c = Bist_bench.Teaching.shift4 () in
  let sim = Packed_sim.create c in
  let q0 = Netlist.find_exn c "q0" in
  Packed_sim.add_output_force sim q0 ~mask:0b10 T.One;
  Packed_sim.clear_forces sim;
  Packed_sim.reset sim;
  Packed_sim.step sim (Vector.of_string "0");
  Packed_sim.step sim (Vector.of_string "0");
  Alcotest.(check int) "no diffs after clear" 0 (Packed_sim.po_diff_lanes sim)

let test_packed_lane0_reserved () =
  let c = Bist_bench.Teaching.shift4 () in
  let sim = Packed_sim.create c in
  Alcotest.check_raises "lane 0"
    (Invalid_argument "Packed_sim: lane 0 is reserved for the fault-free machine")
    (fun () -> Packed_sim.add_output_force sim 0 ~mask:1 T.One)

(* The event-driven engine must agree with the levelized one. *)
let test_event_sim_equals_levelized =
  Testutil.qcheck
    (QCheck.Test.make ~name:"Event_sim == Seq_sim" ~count:60
       Testutil.circuit_and_seq
       (fun (cseed, sseed, len) ->
         let circuit = Testutil.small_circuit cseed in
         let width = Netlist.num_inputs circuit in
         let rng = Bist_util.Rng.create sseed in
         let seq = Tseq.random_binary rng ~width ~length:len in
         let a = Seq_sim.run circuit seq in
         let b = Bist_sim.Event_sim.run circuit seq in
         Array.for_all2 Vector.equal a b))

let test_event_sim_reset_and_reuse () =
  let circuit = Bist_bench.Teaching.counter3 () in
  let sim = Bist_sim.Event_sim.create circuit in
  let step s = Vector.to_string (Bist_sim.Event_sim.step sim (Vector.of_string s)) in
  ignore (step "10");
  Alcotest.(check string) "after reset vector" "000" (step "01");
  Bist_sim.Event_sim.reset sim;
  ignore (step "10");
  Alcotest.(check string) "same trace after reset" "000" (step "01")

let test_event_sim_activity () =
  (* On a hold sequence (same vector repeated) the event engine settles:
     far fewer evaluations than gates x cycles. *)
  let circuit = Testutil.small_circuit 3 in
  let width = Netlist.num_inputs circuit in
  let v = Vector.create width T.Zero in
  let seq = Tseq.of_vectors (Array.make 50 v) in
  let sim = Bist_sim.Event_sim.create circuit in
  Tseq.iter (fun vec -> ignore (Bist_sim.Event_sim.step sim vec)) seq;
  let full_cost = 50 * Netlist.num_gates circuit in
  Alcotest.(check bool) "event engine is lazy" true
    (Bist_sim.Event_sim.evaluations sim < full_cost / 2)

let suite =
  [
    Alcotest.test_case "counter counts" `Quick test_counter_counts;
    Alcotest.test_case "counter hold" `Quick test_counter_hold;
    Alcotest.test_case "shift register" `Quick test_shift4;
    Alcotest.test_case "parity fsm" `Quick test_parity;
    Alcotest.test_case "gray counter" `Quick test_gray3;
    Alcotest.test_case "johnson counter" `Quick test_johnson4;
    Alcotest.test_case "X initial state" `Quick test_x_initial_state;
    Alcotest.test_case "width check" `Quick test_width_check;
    test_packed_lane0_equals_scalar;
    Alcotest.test_case "packed forcing" `Quick test_packed_forcing;
    Alcotest.test_case "pin force is local" `Quick test_packed_pin_force_is_local;
    Alcotest.test_case "clear forces" `Quick test_packed_clear_forces;
    Alcotest.test_case "lane 0 reserved" `Quick test_packed_lane0_reserved;
    test_event_sim_equals_levelized;
    Alcotest.test_case "event sim reset" `Quick test_event_sim_reset_and_reuse;
    Alcotest.test_case "event sim activity" `Quick test_event_sim_activity;
  ]
