(* Suites for Bist_fault.Dictionary (pass/fail diagnosis) and
   Bist_harness.Latex. *)

module Tseq = Bist_logic.Tseq
module Universe = Bist_fault.Universe
module Dictionary = Bist_fault.Dictionary

let s27 = Bist_bench.S27.circuit ()
let s27_universe = Universe.collapsed s27

(* The scheme's own expanded sequences, the realistic dictionary input. *)
let expanded_set =
  lazy
    (let run =
       Bist_core.Scheme.execute ~seed:7 ~n:2 ~t0:(Bist_bench.S27.t0 ())
         s27_universe
     in
     List.map (Bist_core.Ops.expand ~n:2) run.Bist_core.Scheme.sequences)

let test_dictionary_syndromes_match_fsim () =
  let seqs = Lazy.force expanded_set in
  let dict = Dictionary.build s27_universe seqs in
  Alcotest.(check int) "num sequences" (List.length seqs)
    (Dictionary.num_sequences dict);
  (* spot-check each fault's syndrome against direct simulation *)
  Universe.iter
    (fun id fault ->
      let expected =
        List.map (fun seq -> Bist_fault.Fsim.detects s27 fault seq) seqs
      in
      Alcotest.(check (list bool))
        (Bist_fault.Fault.name s27 fault)
        expected (Dictionary.syndrome dict id))
    s27_universe

let test_dictionary_candidates () =
  let seqs = Lazy.force expanded_set in
  let dict = Dictionary.build s27_universe seqs in
  (* every detected fault must be a candidate for its own syndrome *)
  Universe.iter
    (fun id _ ->
      let syn = Dictionary.syndrome dict id in
      if List.exists Fun.id syn then
        Alcotest.(check bool) "self-consistent" true
          (List.mem id (Dictionary.candidates dict ~observed:syn)))
    s27_universe;
  (* the all-pass syndrome should return only undetected faults *)
  let all_pass = List.map (fun _ -> false) seqs in
  List.iter
    (fun id ->
      Alcotest.(check bool) "all-pass candidates are undetected" false
        (List.exists Fun.id (Dictionary.syndrome dict id)))
    (Dictionary.candidates dict ~observed:all_pass)

let test_dictionary_classes () =
  let dict = Dictionary.build s27_universe (Lazy.force expanded_set) in
  let classes = Dictionary.distinguishable_classes dict in
  let total = List.fold_left (fun acc c -> acc + List.length c) 0 classes in
  (* s27's scheme set detects all 32 faults *)
  Alcotest.(check int) "classes cover all detected faults" 32 total;
  let r = Dictionary.resolution dict in
  Alcotest.(check bool) "resolution in (0,1]" true (r > 0.0 && r <= 1.0);
  (* more sequences cannot reduce resolution: compare 1-seq vs full set *)
  let dict1 = Dictionary.build s27_universe [ List.hd (Lazy.force expanded_set) ] in
  Alcotest.(check bool) "finer with more sequences" true
    (List.length classes >= List.length (Dictionary.distinguishable_classes dict1))

let test_dictionary_errors () =
  let dict = Dictionary.build s27_universe (Lazy.force expanded_set) in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Dictionary.candidates: syndrome length mismatch")
    (fun () -> ignore (Dictionary.candidates dict ~observed:[ true ]))

(* Latex *)

let mini_results =
  lazy
    (let entry =
       { Bist_bench.Registry.name = "mini"; paper_name = "s298";
         circuit = Bist_bench.Teaching.counter3; scaled = false }
     in
     [ Bist_harness.Experiment.run_circuit ~seed:4 entry ])

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

let test_latex_renders () =
  let results = Lazy.force mini_results in
  List.iter
    (fun (label, text) ->
      Alcotest.(check bool) (label ^ " has tabular") true
        (contains text "\\begin{tabular}");
      Alcotest.(check bool) (label ^ " closes table") true
        (contains text "\\end{table}"))
    [ ("table3", Bist_harness.Latex.table3 results);
      ("table5", Bist_harness.Latex.table5 results);
      ("comparison", Bist_harness.Latex.comparison results) ]

let test_latex_escapes () =
  let text = Bist_harness.Latex.table3 (Lazy.force mini_results) in
  Alcotest.(check bool) "underscores escaped" false (contains text " _ ");
  Alcotest.(check bool) "pipe column header present" true (contains text "|S|")

let suite =
  [
    Alcotest.test_case "dictionary syndromes" `Slow test_dictionary_syndromes_match_fsim;
    Alcotest.test_case "dictionary candidates" `Quick test_dictionary_candidates;
    Alcotest.test_case "dictionary classes" `Quick test_dictionary_classes;
    Alcotest.test_case "dictionary errors" `Quick test_dictionary_errors;
    Alcotest.test_case "latex renders" `Slow test_latex_renders;
    Alcotest.test_case "latex escapes" `Slow test_latex_escapes;
  ]
