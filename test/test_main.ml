(* The sandbox rlimit test needs a throwaway process to jail (rlimits
   are irreversible), and OCaml 5 forbids fork once any domain exists —
   which earlier parallel suites guarantee. So the test re-execs this
   very binary, and the probe branch below hijacks startup before
   Alcotest (or any domain) comes to life. *)
let () =
  if Sys.getenv_opt "BIST_SANDBOX_PROBE" = Some "1" then
    Test_daemon.sandbox_probe ()

let () =
  Alcotest.run "subseq_bist"
    [
      ("util", Test_util.suite);
      ("parallel", Test_parallel.suite);
      ("ppsfp", Test_ppsfp.suite);
      ("logic", Test_logic.suite);
      ("circuit", Test_circuit.suite);
      ("blif", Test_blif.suite);
      ("parser-errors", Test_parser_errors.suite);
      ("validate", Test_validate.suite);
      ("analyze", Test_analyze.suite);
      ("sat", Test_sat.suite);
      ("opt", Test_opt.suite);
      ("sim", Test_sim.suite);
      ("fault", Test_fault.suite);
      ("core", Test_core.suite);
      ("hw", Test_hw.suite);
      ("tgen", Test_tgen.suite);
      ("harness", Test_harness.suite);
      ("invariants", Test_invariants.suite);
      ("inject", Test_inject.suite);
      ("obs", Test_obs.suite);
      ("diagnosis", Test_diagnosis.suite);
      ("resilience", Test_resilience.suite);
      ("fuzz", Test_fuzz.suite);
      ("daemon", Test_daemon.suite);
    ]
