let () =
  Alcotest.run "subseq_bist"
    [
      ("util", Test_util.suite);
      ("parallel", Test_parallel.suite);
      ("ppsfp", Test_ppsfp.suite);
      ("logic", Test_logic.suite);
      ("circuit", Test_circuit.suite);
      ("blif", Test_blif.suite);
      ("parser-errors", Test_parser_errors.suite);
      ("validate", Test_validate.suite);
      ("analyze", Test_analyze.suite);
      ("sat", Test_sat.suite);
      ("opt", Test_opt.suite);
      ("sim", Test_sim.suite);
      ("fault", Test_fault.suite);
      ("core", Test_core.suite);
      ("hw", Test_hw.suite);
      ("tgen", Test_tgen.suite);
      ("harness", Test_harness.suite);
      ("invariants", Test_invariants.suite);
      ("inject", Test_inject.suite);
      ("obs", Test_obs.suite);
      ("diagnosis", Test_diagnosis.suite);
      ("resilience", Test_resilience.suite);
      ("fuzz", Test_fuzz.suite);
      ("daemon", Test_daemon.suite);
    ]
