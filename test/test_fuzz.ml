(* Parser robustness fuzz smoke.

   Seeded random mutations of the registry's [.bench] sources are fed
   back through [Bench_parser.parse_string]. Each mutant must either
   parse or raise [Parse_error] — any other exception (Failure,
   Invalid_argument, Not_found, an array bound...) is a robustness bug:
   the CLI turns Parse_error into a clean exit 2, while anything else
   escapes as a crash with a backtrace. This suite is the [make
   fuzz-smoke] gate. *)

module Rng = Bist_util.Rng
module Bench_parser = Bist_circuit.Bench_parser
module Bench_writer = Bist_circuit.Bench_writer

let mutations_per_source = 180
let seed = 0x5EED

(* Mutation operators: single byte flip, truncation, random byte insert,
   line deletion, line duplication, and a random splice of two sources.
   Deliberately content-blind — the point is inputs the parser's author
   did not anticipate. *)

let flip_byte rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = Rng.int rng (Bytes.length b) in
    let bit = 1 lsl Rng.int rng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
    Bytes.to_string b
  end

let truncate rng s =
  if String.length s = 0 then s else String.sub s 0 (Rng.int rng (String.length s))

let insert_byte rng s =
  let i = Rng.int rng (String.length s + 1) in
  let c = Char.chr (Rng.int rng 256) in
  String.sub s 0 i ^ String.make 1 c ^ String.sub s i (String.length s - i)

let on_lines f rng s =
  let lines = String.split_on_char '\n' s in
  String.concat "\n" (f rng lines)

let delete_line =
  on_lines (fun rng lines ->
      match lines with
      | [] -> []
      | _ ->
        let k = Rng.int rng (List.length lines) in
        List.filteri (fun i _ -> i <> k) lines)

let duplicate_line =
  on_lines (fun rng lines ->
      match lines with
      | [] -> []
      | _ ->
        let k = Rng.int rng (List.length lines) in
        List.concat_map
          (fun (i, l) -> if i = k then [ l; l ] else [ l ])
          (List.mapi (fun i l -> (i, l)) lines))

let splice rng a b =
  let cut s = String.sub s 0 (Rng.int rng (String.length s + 1)) in
  let tail s =
    let i = Rng.int rng (String.length s + 1) in
    String.sub s i (String.length s - i)
  in
  cut a ^ tail b

let mutate rng sources s =
  match Rng.int rng 6 with
  | 0 -> flip_byte rng s
  | 1 -> truncate rng s
  | 2 -> insert_byte rng s
  | 3 -> delete_line rng s
  | 4 -> duplicate_line rng s
  | _ -> splice rng s (Rng.choose rng sources)

(* Several rounds of mutation drift further from well-formed input. *)
let mutant rng sources s =
  let rounds = 1 + Rng.int rng 3 in
  let out = ref s in
  for _ = 1 to rounds do
    out := mutate rng sources !out
  done;
  !out

let sources () =
  let registry =
    List.map
      (fun (e : Bist_bench.Registry.entry) ->
        Bench_writer.to_string (e.circuit ()))
      (Bist_bench.Registry.s27 :: Bist_bench.Registry.evaluation_suite ())
  in
  Bist_bench.S27.bench_text :: registry

let test_fuzz_parse () =
  let sources = Array.of_list (sources ()) in
  let rng = Rng.create seed in
  let total = ref 0 and parsed = ref 0 and rejected = ref 0 in
  Array.iter
    (fun src ->
      for i = 1 to mutations_per_source do
        incr total;
        let text = mutant rng sources src in
        match Bench_parser.parse_string ~name:(Printf.sprintf "fuzz%d" i) text with
        | (_ : Bist_circuit.Netlist.t) -> incr parsed
        | exception Bench_parser.Parse_error _ -> incr rejected
        | exception exn ->
          Alcotest.failf
            "mutant #%d escaped the parser with %s (input %d bytes):\n%s"
            !total (Printexc.to_string exn) (String.length text)
            (if String.length text > 400 then String.sub text 0 400 ^ "..."
             else text)
      done)
    sources;
  (* The gate's floor: at least 500 mutants actually exercised, and the
     corpus wasn't degenerate (both outcomes observed). *)
  Alcotest.(check bool)
    (Printf.sprintf "ran %d mutants (>= 500)" !total)
    true (!total >= 500);
  Alcotest.(check bool) "some mutants were rejected" true (!rejected > 0);
  Alcotest.(check bool) "some mutants still parsed" true (!parsed > 0)

let test_pristine_sources_parse () =
  List.iteri
    (fun i src ->
      match Bench_parser.parse_string ~name:(Printf.sprintf "src%d" i) src with
      | (_ : Bist_circuit.Netlist.t) -> ()
      | exception exn ->
        Alcotest.failf "pristine source %d failed to parse: %s" i
          (Printexc.to_string exn))
    (sources ())

(* Same harness over the BLIF frontend: the checked-in corpus plus
   writer output as seeds, Blif_parser.Parse_error the only permitted
   rejection. *)

module Blif_parser = Bist_circuit.Blif_parser
module Blif_writer = Bist_circuit.Blif_writer

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let blif_corpus_files =
  [ "counter3.blif"; "k12a.blif"; "pipeline_cells.blif"; "s27_yosys.blif" ]

(* `dune runtest` runs from the test directory; `dune exec
   test/test_main.exe` (make fuzz-smoke) from the repo root. *)
let corpus_path f =
  let candidates =
    [ Filename.concat (Filename.concat ".." "examples") f;
      Filename.concat "examples" f ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "BLIF corpus file %s not found" f

let blif_sources () =
  let corpus = List.map (fun f -> read_file (corpus_path f)) blif_corpus_files in
  let written =
    List.map
      (fun circuit -> Blif_writer.to_string (circuit ()))
      [
        (fun () -> Bist_bench.Registry.s27.Bist_bench.Registry.circuit ());
        Bist_bench.Teaching.gray3;
      ]
  in
  corpus @ written

let test_blif_pristine_sources_parse () =
  List.iteri
    (fun i src ->
      match Blif_parser.parse_string ~name:(Printf.sprintf "src%d" i) src with
      | (_ : Bist_circuit.Netlist.t) -> ()
      | exception exn ->
        Alcotest.failf "pristine BLIF source %d failed to parse: %s" i
          (Printexc.to_string exn))
    (blif_sources ())

let test_blif_fuzz_parse () =
  let sources = Array.of_list (blif_sources ()) in
  let rng = Rng.create seed in
  let total = ref 0 and parsed = ref 0 and rejected = ref 0 in
  Array.iter
    (fun src ->
      for i = 1 to mutations_per_source do
        incr total;
        let text = mutant rng sources src in
        match
          Blif_parser.parse_string ~name:(Printf.sprintf "fuzz%d" i) text
        with
        | (_ : Bist_circuit.Netlist.t) -> incr parsed
        | exception Blif_parser.Parse_error _ -> incr rejected
        | exception exn ->
          Alcotest.failf
            "BLIF mutant #%d escaped the parser with %s (input %d bytes):\n%s"
            !total (Printexc.to_string exn) (String.length text)
            (if String.length text > 400 then String.sub text 0 400 ^ "..."
             else text)
      done)
    sources;
  Alcotest.(check bool)
    (Printf.sprintf "ran %d mutants (>= 500)" !total)
    true (!total >= 500);
  Alcotest.(check bool) "some mutants were rejected" true (!rejected > 0);
  Alcotest.(check bool) "some mutants still parsed" true (!parsed > 0)

let suite =
  [
    Alcotest.test_case "pristine sources parse" `Quick test_pristine_sources_parse;
    Alcotest.test_case "mutants only raise Parse_error" `Quick test_fuzz_parse;
    Alcotest.test_case "pristine BLIF sources parse" `Quick
      test_blif_pristine_sources_parse;
    Alcotest.test_case "BLIF mutants only raise Parse_error" `Quick
      test_blif_fuzz_parse;
  ]
