(* Suites for Bist_harness (Seq_io, Paper_data, Tables, Figure1) and
   Bist_baselines. *)

module Tseq = Bist_logic.Tseq
module Seq_io = Bist_harness.Seq_io
module Universe = Bist_fault.Universe

let test_seq_io_roundtrip () =
  let s = Tseq.of_strings [ "01x"; "110"; "xxx" ] in
  Testutil.check_seq "roundtrip" s (Seq_io.parse (Seq_io.to_string s))

let test_seq_io_comments () =
  let s = Seq_io.parse "# header\n01\n  10  # trailing\n\n11\n" in
  Testutil.check_seq "parsed" (Tseq.of_strings [ "01"; "10"; "11" ]) s

let test_seq_io_errors () =
  (match Seq_io.parse "01\n02\n" with
   | _ -> Alcotest.fail "expected failure"
   | exception Seq_io.Parse_error { line; _ } ->
     Alcotest.(check int) "line number" 2 line);
  match Seq_io.parse "# nothing\n" with
  | _ -> Alcotest.fail "expected failure"
  | exception Seq_io.Parse_error { line; _ } ->
    Alcotest.(check int) "no content line" 0 line

let test_seq_io_set_roundtrip () =
  let set = [ Tseq.of_strings [ "01"; "10" ]; Tseq.of_strings [ "11" ] ] in
  let path = Filename.temp_file "bist" ".seqs" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Seq_io.save_set set path;
      let loaded = Seq_io.load_set path in
      Alcotest.(check int) "two sequences" 2 (List.length loaded);
      List.iter2 (Testutil.check_seq "sequence") set loaded)

let test_paper_data () =
  Alcotest.(check int) "twelve rows" 12 (List.length Bist_harness.Paper_data.rows);
  (match Bist_harness.Paper_data.find "s298" with
   | None -> Alcotest.fail "s298 missing"
   | Some r ->
     Alcotest.(check int) "s298 T0 length" 117 r.Bist_harness.Paper_data.t0_length;
     Alcotest.(check int) "s298 after total" 27 r.after_total);
  (* stand-in names resolve too *)
  Alcotest.(check bool) "x1423 resolves" true
    (Option.is_some (Bist_harness.Paper_data.find "x1423"))

let test_figure1_s27 () =
  let text = Bist_harness.Figure1.render_s27 () in
  Alcotest.(check bool) "mentions T0" true
    (String.length text > 0
     &&
     let lines = String.split_on_char '\n' text in
     List.exists (fun l -> String.length l >= 2 && String.sub l 0 2 = "T0") lines)

(* A miniature end-to-end suite run (counter-sized budget) exercises the
   experiment pipeline and the table renderers. *)
let mini_results =
  lazy
    (let entry =
       { Bist_bench.Registry.name = "mini"; paper_name = "s298";
         circuit = Bist_bench.Teaching.counter3; scaled = false }
     in
     [ Bist_harness.Experiment.run_circuit ~seed:4 entry ])

let test_experiment_pipeline () =
  match Lazy.force mini_results with
  | [ r ] ->
    Alcotest.(check bool) "coverage verified" true
      r.Bist_harness.Experiment.best.coverage_verified;
    Alcotest.(check int) "four runs (n sweep)" 4 (List.length r.runs);
    List.iter
      (fun (run : Bist_core.Scheme.run) ->
        Alcotest.(check bool) "each n verified" true run.coverage_verified)
      r.runs
  | _ -> Alcotest.fail "one result expected"

let test_tables_render () =
  let results = Lazy.force mini_results in
  let t3 = Bist_harness.Tables.table3 results in
  let t4 = Bist_harness.Tables.table4 results in
  let t5 = Bist_harness.Tables.table5 results in
  let cmp = Bist_harness.Tables.comparison results in
  List.iter
    (fun (name, text) ->
      Alcotest.(check bool) (name ^ " mentions circuit") true
        (String.length text > 0
         &&
         let found = ref false in
         List.iter
           (fun line ->
             if String.length line >= 4 && String.sub line 0 4 = "mini" then
               found := true)
           (String.split_on_char '\n' text);
         !found || name = "comparison"))
    [ ("table3", t3); ("table4", t4); ("table5", t5); ("comparison", cmp) ];
  let avg_tot, avg_max = Bist_harness.Tables.averages results in
  Alcotest.(check bool) "averages sane" true (avg_tot >= 0.0 && avg_max <= avg_tot +. 1.0)

(* Baselines *)

let test_full_load () =
  let universe = Universe.collapsed (Bist_bench.S27.circuit ()) in
  let t0 = Bist_bench.S27.t0 () in
  let r = Bist_baselines.Full_load.evaluate universe ~t0 in
  Alcotest.(check int) "memory words" 10 r.Bist_baselines.Full_load.memory_words;
  Alcotest.(check int) "memory bits" 40 r.memory_bits;
  Alcotest.(check (float 1e-9)) "coverage 1.0" 1.0 r.coverage

let test_partition_preserves () =
  let universe = Universe.collapsed (Bist_bench.S27.circuit ()) in
  let t0 = Bist_bench.S27.t0 () in
  List.iter
    (fun block ->
      let r = Bist_baselines.Partition.evaluate universe ~t0 ~block in
      Alcotest.(check bool)
        (Printf.sprintf "block %d preserves coverage" block)
        true r.Bist_baselines.Partition.coverage_preserved;
      Alcotest.(check bool) "total >= |T0|" true (r.total_loaded >= 10))
    [ 2; 3; 5; 10 ]

let test_encoding_roundtrip =
  Testutil.qcheck
    (QCheck.Test.make ~name:"encoding decode inverts encode" ~count:100
       (Testutil.binary_seq ~width:6 ~max_len:30)
       (fun s ->
         let enc, report = Bist_baselines.Encoding.encode s in
         Bist_logic.Tseq.equal s (Bist_baselines.Encoding.decode enc)
         && report.Bist_baselines.Encoding.encoded_bits > 0))

let test_encoding_compresses_holds () =
  (* A hold-heavy sequence (repeated vectors) must compress well. *)
  let rng = Bist_util.Rng.create 8 in
  let v = Bist_logic.Vector.random_binary rng 16 in
  let s = Tseq.of_vectors (Array.make 40 v) in
  let _, report = Bist_baselines.Encoding.encode s in
  Alcotest.(check bool) "ratio < 0.4" true
    (report.Bist_baselines.Encoding.compression_ratio < 0.4)

let test_encoding_rejects_x () =
  Alcotest.check_raises "X rejected"
    (Invalid_argument "Encoding.encode: X in stored sequence") (fun () ->
      ignore (Bist_baselines.Encoding.encode (Tseq.of_strings [ "0x" ])))

let test_ablation_runner () =
  (* On s27 with the paper's T0: every variant must keep coverage; the
     richer operator pipelines must not be worse than repeat-only. *)
  let universe = Universe.collapsed (Bist_bench.S27.circuit ()) in
  let t0 = Bist_bench.S27.t0 () in
  let rows = Bist_harness.Ablation.run ~seed:5 ~n:2 ~t0 universe in
  Alcotest.(check int) "all variants ran"
    (List.length Bist_harness.Ablation.variants)
    (List.length rows);
  List.iter
    (fun (r : Bist_harness.Ablation.row) ->
      Alcotest.(check bool) (r.variant.label ^ " covers") true r.covers)
    rows;
  let find label =
    List.find (fun (r : Bist_harness.Ablation.row) ->
        r.variant.Bist_harness.Ablation.label = label)
      rows
  in
  let paper = find "paper (all ops, max-udet, restart)" in
  let repeat_only = find "operators: repeat only" in
  Alcotest.(check bool) "full pipeline not worse than repeat-only" true
    (paper.total_length <= repeat_only.total_length);
  let text = Bist_harness.Ablation.render rows in
  Alcotest.(check bool) "renders" true (String.length text > 100)

let test_lfsr_bist () =
  let universe = Universe.collapsed (Bist_bench.S27.circuit ()) in
  let r = Bist_baselines.Lfsr_bist.evaluate universe ~cycles:200 ~hold:1 in
  Alcotest.(check bool) "detects some" true (r.Bist_baselines.Lfsr_bist.detected > 0);
  let curve =
    Bist_baselines.Lfsr_bist.coverage_curve universe ~checkpoints:[ 10; 50; 200 ] ~hold:1
  in
  let counts = List.map snd curve in
  Alcotest.(check bool) "curve monotone" true
    (List.sort compare counts = counts);
  (match List.rev curve with
   | (cp, count) :: _ ->
     Alcotest.(check int) "final checkpoint" 200 cp;
     Alcotest.(check int) "curve end matches evaluate" r.detected count
   | [] -> Alcotest.fail "empty curve")

let suite =
  [
    Alcotest.test_case "seq_io roundtrip" `Quick test_seq_io_roundtrip;
    Alcotest.test_case "seq_io comments" `Quick test_seq_io_comments;
    Alcotest.test_case "seq_io errors" `Quick test_seq_io_errors;
    Alcotest.test_case "seq_io set roundtrip" `Quick test_seq_io_set_roundtrip;
    Alcotest.test_case "paper data" `Quick test_paper_data;
    Alcotest.test_case "figure1 renders" `Quick test_figure1_s27;
    Alcotest.test_case "experiment pipeline (mini)" `Slow test_experiment_pipeline;
    Alcotest.test_case "tables render" `Slow test_tables_render;
    Alcotest.test_case "baseline full load" `Quick test_full_load;
    Alcotest.test_case "baseline partition" `Quick test_partition_preserves;
    Alcotest.test_case "baseline lfsr" `Quick test_lfsr_bist;
    Alcotest.test_case "ablation runner" `Quick test_ablation_runner;
    test_encoding_roundtrip;
    Alcotest.test_case "encoding compresses holds" `Quick test_encoding_compresses_holds;
    Alcotest.test_case "encoding rejects X" `Quick test_encoding_rejects_x;
  ]
