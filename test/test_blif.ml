(* BLIF frontend: corpus files, cover recognition, typed errors,
   writer round trips. Corpus paths are relative to the test cwd
   (_build/default/test) and declared as deps in test/dune. *)

module Netlist = Bist_circuit.Netlist
module Gate = Bist_circuit.Gate
module Blif_parser = Bist_circuit.Blif_parser
module Blif_writer = Bist_circuit.Blif_writer
module Bench_writer = Bist_circuit.Bench_writer

let corpus_files =
  [ "counter3.blif"; "k12a.blif"; "pipeline_cells.blif"; "s27_yosys.blif" ]

(* `dune runtest` runs from the test directory; a direct `dune exec
   test/test_main.exe` from the repo root. *)
let corpus_path f =
  let candidates =
    [ Filename.concat (Filename.concat ".." "examples") f;
      Filename.concat "examples" f ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "BLIF corpus file %s not found" f

let parse ?(name = "t") text = Blif_parser.parse_string ~name text

let kind_of c signal =
  match Netlist.find c signal with
  | Some n -> Netlist.kind c n
  | None -> Alcotest.failf "signal %S not in netlist" signal

let check_kind c signal expected =
  Alcotest.(check string)
    (Printf.sprintf "kind of %s" signal)
    (Gate.kind_name expected)
    (Gate.kind_name (kind_of c signal))

let expect_error ?line text =
  match parse text with
  | (_ : Netlist.t) -> Alcotest.failf "expected Parse_error, got a netlist"
  | exception Blif_parser.Parse_error { line = l; message } -> (
    match line with
    | Some want ->
      if l <> want then
        Alcotest.failf "expected error at line %d, got line %d: %s" want l
          message
    | None -> ())

(* --- corpus --- *)

let test_corpus_parses () =
  List.iter
    (fun f ->
      match Blif_parser.parse_file (corpus_path f) with
      | (_ : Netlist.t) -> ()
      | exception exn ->
        Alcotest.failf "%s failed to parse: %s" f (Printexc.to_string exn))
    corpus_files

let test_corpus_counter3 () =
  let c = Blif_parser.parse_file (corpus_path "counter3.blif") in
  Alcotest.(check string) "name" "counter3" (Netlist.circuit_name c);
  Alcotest.(check int) "PIs" 3 (Netlist.num_inputs c);
  Alcotest.(check int) "POs" 3 (Netlist.num_outputs c);
  Alcotest.(check int) "FFs" 3 (Netlist.num_dffs c)

let test_corpus_k12a_flattening () =
  let c = Blif_parser.parse_file (corpus_path "k12a.blif") in
  Alcotest.(check int) "FFs" 1 (Netlist.num_dffs c);
  (* Submodel internals get instance-prefixed names; bound formals take
     the outer actuals. *)
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "%s exists" s) true
        (Netlist.find c s <> None))
    [ "halfcell$0.r$i"; "halfcell$1.r$i"; "u0"; "u1"; "out" ]

let test_corpus_cells () =
  let c = Blif_parser.parse_file (corpus_path "pipeline_cells.blif") in
  Alcotest.(check int) "FFs" 2 (Netlist.num_dffs c);
  check_kind c "n1" Gate.Nand;
  check_kind c "n4" Gate.Xnor;
  check_kind c "q0" Gate.Dff;
  check_kind c "q1" Gate.Dff;
  (* $_ANDNOT_ decomposes to AND over a fresh NOT. *)
  check_kind c "n3" Gate.And

(* --- cover recognition --- *)

let cover_circuit =
  {|
.model covers
.inputs a b c
.outputs g_and g_nand g_or g_nor g_not g_buf g_xor g_xnor g_c0 g_c1 g_sop
.names a b g_and
11 1
.names a b g_nand
11 0
.names a b c g_or
1-- 1
-1- 1
--1 1
.names a b g_nor
1- 0
-1 0
.names a g_not
0 1
.names a g_buf
1 1
.names a b g_xor
10 1
01 1
.names a b c g_xnor
000 1
011 1
101 1
110 1
.names g_c0
.names g_c1
1
.names a b c g_sop
1-0 1
01- 1
.end
|}

let test_cover_kinds () =
  let c = parse cover_circuit in
  check_kind c "g_and" Gate.And;
  check_kind c "g_nand" Gate.Nand;
  check_kind c "g_or" Gate.Or;
  check_kind c "g_nor" Gate.Nor;
  check_kind c "g_not" Gate.Not;
  check_kind c "g_buf" Gate.Buf;
  check_kind c "g_xor" Gate.Xor;
  check_kind c "g_xnor" Gate.Xnor;
  check_kind c "g_c0" Gate.Const0;
  check_kind c "g_c1" Gate.Const1;
  (* Generic cover: OR over fresh AND/NOT intermediates. *)
  check_kind c "g_sop" Gate.Or;
  Alcotest.(check bool) "fresh $t node" true
    (Netlist.find c "g_sop$t0" <> None)

let test_off_set_covers () =
  let c =
    parse
      {|
.model offset
.inputs a b
.outputs f g
.names a b f
0- 0
-0 0
.names a b g
10 0
01 0
.end
|}
  in
  (* OFF-set one-hot-'0' rows: f = 0 iff some input is 0 = AND; the
     two-row parity OFF-set complements XOR into XNOR. *)
  check_kind c "f" Gate.And;
  check_kind c "g" Gate.Xnor

(* --- typed errors --- *)

let test_latch_errors () =
  let base body =
    Printf.sprintf ".model m\n.inputs clk d\n.outputs q\n%s\n.end\n" body
  in
  expect_error ~line:4 (base ".latch d q re clk 0");
  expect_error ~line:4 (base ".latch d q re clk 1");
  expect_error ~line:4 (base ".latch d q fe clk 2");
  expect_error ~line:4 (base ".latch d q re");
  expect_error ~line:4 (base ".latch d")

let test_structure_errors () =
  (* undefined signal *)
  expect_error ".model m\n.inputs a\n.outputs y\n.names a w y\n11 1\n.end\n";
  (* duplicate definition *)
  expect_error
    ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n";
  (* mixed cover values *)
  expect_error ~line:6
    ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n";
  (* row width mismatch *)
  expect_error ~line:5
    ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n";
  (* unknown cell *)
  expect_error ~line:4
    ".model m\n.inputs a\n.outputs y\n.subckt nosuch A=a Y=y\n.end\n";
  (* recursive model instantiation *)
  expect_error
    ".model m\n.inputs a\n.outputs y\n.subckt m x=a r=y\n.end\n";
  (* combinational loop: whole-netlist error, line 0 *)
  expect_error ~line:0
    ".model m\n.inputs a\n.outputs y\n.names y a y\n11 1\n.end\n";
  (* no model at all *)
  expect_error ~line:1 "foo bar\n"

let test_continuation_and_comments () =
  let c =
    parse
      ".model m # trailing comment\n.inputs a \\\nb\n.outputs y\n.names a b \\\ny\n11 1\n.end\n"
  in
  Alcotest.(check int) "PIs" 2 (Netlist.num_inputs c);
  check_kind c "y" Gate.And

(* --- writer round trips --- *)

let bench_of c = Bench_writer.to_string c

let test_teaching_roundtrip () =
  List.iter
    (fun circuit ->
      let c = circuit () in
      let name = Netlist.circuit_name c in
      let c2 = Blif_parser.parse_string ~name (Blif_writer.to_string c) in
      Alcotest.(check string)
        (Printf.sprintf "%s roundtrip" name)
        (bench_of c) (bench_of c2))
    [
      Bist_bench.Teaching.counter3;
      Bist_bench.Teaching.shift4;
      Bist_bench.Teaching.parity_fsm;
      Bist_bench.Teaching.gray3;
      Bist_bench.Teaching.johnson4;
      (fun () -> Bist_bench.Registry.s27.Bist_bench.Registry.circuit ());
    ]

let test_random_roundtrip =
  Testutil.qcheck
    (QCheck.Test.make
       ~name:"Netlist -> BLIF -> Netlist preserves the .bench serialization"
       ~count:60
       QCheck.(int_range 0 400)
       (fun seed ->
         let c = Testutil.small_circuit seed in
         let name = Netlist.circuit_name c in
         let c2 = Blif_parser.parse_string ~name (Blif_writer.to_string c) in
         String.equal (bench_of c) (bench_of c2)))

let test_workloads_deterministic () =
  List.iter
    (fun (name, circuit) ->
      let a = bench_of (circuit ()) in
      let b =
        bench_of
          ((Option.get (Bist_bench.Workloads.find name)) ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s deterministic" name)
        true (String.equal a b))
    (Bist_bench.Workloads.all ())

let test_loader_dispatch () =
  (match Bist_bench.Loader.load_file (corpus_path "counter3.blif") with
  | c -> Alcotest.(check int) "blif via loader" 3 (Netlist.num_dffs c));
  (* The unknown-extension refusal must name both the offending path and
     every supported extension — an operator reading the error should
     not need the docs. *)
  let contains text needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i =
      i + nl <= tl && (String.sub text i nl = needle || go (i + 1))
    in
    go 0
  in
  (match Bist_bench.Loader.load_file "nosuch.v" with
  | (_ : Netlist.t) -> Alcotest.fail "expected Usage_error"
  | exception Bist_bench.Loader.Usage_error msg ->
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "error mentions %s" needle)
          true (contains msg needle))
      ("nosuch.v" :: ".v" :: Bist_bench.Loader.supported_extensions));
  (match Bist_bench.Loader.load_file "noextension" with
  | (_ : Netlist.t) -> Alcotest.fail "expected Usage_error"
  | exception Bist_bench.Loader.Usage_error msg ->
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "no-extension error mentions %s" needle)
          true (contains msg needle))
      ("noextension" :: Bist_bench.Loader.supported_extensions));
  Alcotest.(check bool) "find_named workload" true
    (Bist_bench.Loader.find_named "pipe16" <> None);
  Alcotest.(check bool) "find_named teaching" true
    (Bist_bench.Loader.find_named "gray3" <> None);
  Alcotest.(check bool) "find_named misses files" true
    (Bist_bench.Loader.find_named "../examples/counter3.blif" = None)

let suite =
  [
    Alcotest.test_case "corpus parses" `Quick test_corpus_parses;
    Alcotest.test_case "counter3.blif structure" `Quick test_corpus_counter3;
    Alcotest.test_case "k12a multi-model flattening" `Quick
      test_corpus_k12a_flattening;
    Alcotest.test_case "library cells" `Quick test_corpus_cells;
    Alcotest.test_case "cover recognition" `Quick test_cover_kinds;
    Alcotest.test_case "OFF-set covers" `Quick test_off_set_covers;
    Alcotest.test_case "latch errors are typed" `Quick test_latch_errors;
    Alcotest.test_case "structural errors are typed" `Quick
      test_structure_errors;
    Alcotest.test_case "continuations and comments" `Quick
      test_continuation_and_comments;
    Alcotest.test_case "teaching circuits roundtrip" `Quick
      test_teaching_roundtrip;
    test_random_roundtrip;
    Alcotest.test_case "workloads deterministic" `Quick
      test_workloads_deterministic;
    Alcotest.test_case "loader dispatch" `Quick test_loader_dispatch;
  ]
