(* Suites for Bist_analyze: SCOAP measures, the static untestability
   prover (with its no-false-positive property), the S-graph pass and
   the lint driver. *)

module Netlist = Bist_circuit.Netlist
module Scoap = Bist_analyze.Scoap
module Untestable = Bist_analyze.Untestable
module Sgraph = Bist_analyze.Sgraph
module Lint = Bist_analyze.Lint
module Universe = Bist_fault.Universe
module Fault = Bist_fault.Fault
module Fsim = Bist_fault.Fsim
module Bitset = Bist_util.Bitset
module T = Bist_logic.Ternary

let parse = Bist_circuit.Bench_parser.parse_string

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Crafted circuits used across the suites. *)

(* A CONST0 tie: every fault on [a] is propagation-blocked at the AND,
   g stuck-at-0 is unexcitable (g is solidly 0), and tie/1 and g/1 stay
   testable. *)
let const_blocked () =
  parse ~name:"tied"
    "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ntie = CONST0()\ng = AND(a, tie)\ny = OR(g, b)\n"

(* q = DFF(XOR(q, a)) never leaves X, so faults on q are unexcitable. *)
let x_loop () =
  parse ~name:"xloop" "INPUT(a)\nOUTPUT(p)\nq = DFF(d)\nd = XOR(q, a)\np = BUF(q)\n"

(* A cyclic state core {q1, q2} whose members only synchronize at rounds
   1 and 2 (never 0): initializable, but only by bootstrapping through
   its own feedback — the x-risk pattern. q3 synchronizes at round 0. *)
let risky_core () =
  parse ~name:"risky"
    "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq3 = DFF(b)\nm = AND(q3, b)\n\
     xq = XOR(q1, a)\nd2 = OR(xq, m)\nq2 = DFF(d2)\nd1 = XOR(q2, a)\n\
     q1 = DFF(d1)\ny = BUF(q1)\n"

(* SCOAP *)

let s27 () = Bist_bench.S27.circuit ()

let check_measures name measure expected =
  let c = s27 () in
  let s = Scoap.compute c in
  List.iter
    (fun (node, want) ->
      Alcotest.(check int)
        (Printf.sprintf "%s(%s)" name node)
        want
        (measure s (Netlist.find_exn c node)))
    expected

(* Hand-computed fixpoint over the real s27 (iterated to convergence on
   paper). Inputs cost 1, every gate adds 1, DFFs add 1. *)
let test_scoap_cc () =
  let c = s27 () in
  let s = Scoap.compute c in
  List.iter
    (fun (node, w0, w1) ->
      let n = Netlist.find_exn c node in
      Alcotest.(check int) ("cc0 " ^ node) w0 (Scoap.cc0 s n);
      Alcotest.(check int) ("cc1 " ^ node) w1 (Scoap.cc1 s n))
    [ ("G0", 1, 1); ("G1", 1, 1); ("G2", 1, 1); ("G3", 1, 1);
      ("G14", 2, 2); ("G12", 2, 5); ("G13", 2, 4); ("G7", 3, 5);
      ("G10", 3, 10); ("G5", 4, 11); ("G11", 7, 14); ("G6", 8, 15);
      ("G8", 3, 18); ("G15", 6, 6); ("G16", 5, 2); ("G9", 9, 6);
      ("G17", 15, 8) ]

let test_scoap_sc () =
  let c = s27 () in
  let s = Scoap.compute c in
  List.iter
    (fun (node, w0, w1) ->
      let n = Netlist.find_exn c node in
      Alcotest.(check int) ("sc0 " ^ node) w0 (Scoap.sc0 s n);
      Alcotest.(check int) ("sc1 " ^ node) w1 (Scoap.sc1 s n))
    [ ("G0", 0, 0); ("G14", 0, 0); ("G12", 0, 1); ("G13", 0, 0);
      ("G7", 1, 1); ("G10", 0, 0); ("G5", 1, 1); ("G11", 0, 2);
      ("G6", 1, 3); ("G8", 0, 3); ("G15", 0, 1); ("G16", 0, 0);
      ("G9", 1, 0); ("G17", 2, 0) ]

let test_scoap_co () =
  check_measures "co" Scoap.co
    [ ("G17", 0); ("G11", 1); ("G9", 6); ("G15", 9); ("G16", 13);
      ("G8", 12); ("G6", 15); ("G5", 11); ("G10", 12); ("G12", 13);
      ("G13", 16); ("G7", 15); ("G14", 20); ("G0", 21); ("G1", 17);
      ("G2", 19); ("G3", 17) ]

let test_scoap_so () =
  check_measures "so" Scoap.so
    [ ("G17", 0); ("G11", 0); ("G9", 1); ("G5", 1); ("G15", 1);
      ("G16", 2); ("G8", 1); ("G6", 1); ("G10", 2); ("G12", 1);
      ("G7", 1); ("G13", 2); ("G14", 2); ("G0", 2); ("G1", 2);
      ("G2", 2); ("G3", 2) ]

let test_scoap_saturates () =
  (* The tied AND can never output 1: its cc1 must saturate, not
     overflow or diverge. *)
  let c = const_blocked () in
  let s = Scoap.compute c in
  let g = Netlist.find_exn c "g" in
  Alcotest.(check bool) "cc1 saturated" true (Scoap.cc1 s g >= Scoap.infinite);
  Alcotest.(check bool) "cc0 finite" true (Scoap.cc0 s g < Scoap.infinite)

let test_order_hardest_first () =
  let c = s27 () in
  let u = Universe.collapsed c in
  let s = Scoap.compute c in
  let ids = Array.init (Universe.size u) Fun.id in
  Bist_tgen.Directed.order_hardest_first s u ids;
  let cost i = Scoap.fault_cost s (Universe.get u i) in
  for k = 0 to Array.length ids - 2 do
    let a = ids.(k) and b = ids.(k + 1) in
    Alcotest.(check bool) "non-increasing cost" true (cost a >= cost b);
    if cost a = cost b then
      Alcotest.(check bool) "ties by ascending id" true (a < b)
  done;
  (* a permutation, not a projection *)
  let sorted = Array.copy ids in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true
    (sorted = Array.init (Universe.size u) Fun.id)

(* Untestability prover *)

let find_fault c u name =
  let found = ref None in
  Universe.iter (fun id f -> if Fault.name c f = name then found := Some (id, f)) u;
  match !found with
  | Some x -> x
  | None -> Alcotest.failf "fault %s not in universe" name

let reason_testable = Alcotest.testable
    (fun fmt r ->
      Format.pp_print_string fmt
        (match r with None -> "testable" | Some r -> Untestable.reason_name r))
    ( = )

let test_prover_const_blocked () =
  let c = const_blocked () in
  let t = Untestable.analyze c in
  let chk name want =
    Alcotest.check reason_testable name want
      (Untestable.check t (snd (find_fault c (Universe.full c) name)))
  in
  chk "a/0" (Some Untestable.Blocked);
  chk "a/1" (Some Untestable.Blocked);
  chk "g/0" (Some Untestable.Unexcitable);
  chk "g/1" None;
  chk "tie/1" None;
  chk "tie/0" (Some Untestable.Unexcitable);
  chk "b/0" None;
  chk "y/1" None

let test_prover_unobservable () =
  let c =
    parse ~name:"cone"
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\nmid = OR(a, b)\norphan = NOT(mid)\n"
  in
  let t = Untestable.analyze c in
  let chk name want =
    Alcotest.check reason_testable name want
      (Untestable.check t (snd (find_fault c (Universe.full c) name)))
  in
  chk "orphan/0" (Some Untestable.Unobservable);
  chk "orphan/1" (Some Untestable.Unobservable);
  chk "y/0" None

let test_prover_x_loop () =
  let c = x_loop () in
  let t = Untestable.analyze c in
  let chk name want =
    Alcotest.check reason_testable name want
      (Untestable.check t (snd (find_fault c (Universe.full c) name)))
  in
  chk "q/0" (Some Untestable.Unexcitable);
  chk "q/1" (Some Untestable.Unexcitable)

let test_prescreen_counts () =
  let c = const_blocked () in
  let u = Universe.collapsed c in
  let p = Untestable.prescreen_universe u in
  (* Collapsing merges the equivalent stem faults {a/0, g/0, tie/0} into a
     single class, so the collapsed count is 2, not the 6 raw faults. *)
  Alcotest.(check bool) "removes faults" true (Untestable.total p >= 2);
  Alcotest.(check int) "bitset agrees with counts" (Untestable.total p)
    (Bitset.cardinal p.Untestable.untestable);
  Alcotest.(check bool) "but not all" true
    (Untestable.total p < Universe.size u)

(* The soundness property: nothing the prover removes is ever detected
   by the packed fault simulator, under any sequence we throw at it. *)
let assert_no_false_positive ?(seeds = [ 1; 2; 3 ]) ?(length = 120) c =
  let u = Universe.collapsed c in
  let p = Untestable.prescreen_universe u in
  if not (Bitset.is_empty p.Untestable.untestable) then
    List.iter
      (fun seed ->
        let rng = Bist_util.Rng.create seed in
        let seq =
          Bist_logic.Tseq.random_binary rng ~width:(Netlist.num_inputs c)
            ~length
        in
        let outcome = Fsim.run ~targets:p.Untestable.untestable u seq in
        Bitset.iter
          (fun id ->
            Alcotest.failf "untestable fault %s detected on %s (seed %d)"
              (Fault.name c (Universe.get u id))
              (Netlist.circuit_name c) seed)
          outcome.Fsim.detected)
      seeds

let test_no_false_positives_known () =
  List.iter assert_no_false_positive
    [ s27 (); Bist_bench.Teaching.counter3 (); Bist_bench.Teaching.shift4 ();
      Bist_bench.Teaching.parity_fsm (); const_blocked (); x_loop ();
      risky_core () ]

let test_no_false_positives_synthetic =
  Testutil.qcheck
    (QCheck.Test.make ~name:"prover never contradicts the fault simulator"
       ~count:25
       (QCheck.make
          ~print:(fun seed -> Printf.sprintf "circuit seed %d" seed)
          QCheck.Gen.(int_range 0 400))
       (fun seed ->
         assert_no_false_positive ~seeds:[ seed ] (Testutil.small_circuit seed);
         true))

(* Engine integration *)

let test_engine_prescreen () =
  let c = const_blocked () in
  let u = Universe.collapsed c in
  let rng = Bist_util.Rng.create 7 in
  let t0, stats = Bist_tgen.Engine.generate ~rng u in
  Alcotest.(check bool) "prescreen removed faults" true
    (stats.Bist_tgen.Engine.statically_untestable >= 2);
  (* The untestable faults were undetectable anyway, so the generator
     must still reach full coverage of the testable rest. *)
  Alcotest.(check int) "full coverage of testable faults"
    (stats.total_faults - stats.statically_untestable)
    stats.detected;
  Alcotest.(check bool) "t0 nonempty" true (Bist_logic.Tseq.length t0 > 0)

let test_engine_prescreen_off () =
  let c = const_blocked () in
  let u = Universe.collapsed c in
  let rng = Bist_util.Rng.create 7 in
  let config =
    { (Bist_tgen.Engine.default_config c) with Bist_tgen.Engine.prescreen = false }
  in
  let _, stats = Bist_tgen.Engine.generate ~config ~rng u in
  Alcotest.(check int) "no prescreen stat" 0
    stats.Bist_tgen.Engine.statically_untestable

(* S-graph *)

let test_sgraph_s27 () =
  let c = s27 () in
  let g = Sgraph.analyze c in
  Alcotest.(check int) "ffs" 3 (Sgraph.num_ffs g);
  Alcotest.(check int) "sccs" 2 (Sgraph.num_sccs g);
  Alcotest.(check int) "largest" 2 (Sgraph.largest_scc g);
  Alcotest.(check int) "cyclic sccs" 2 (Sgraph.nontrivial_sccs g);
  Alcotest.(check int) "depth" 2 (Sgraph.depth g);
  List.iter
    (fun ff ->
      Alcotest.(check int) ("level " ^ ff) 0
        (Sgraph.sync_level g (Netlist.find_exn c ff)))
    [ "G5"; "G6"; "G7" ];
  Alcotest.(check (list string)) "no risk" [] (List.map (Netlist.name c) (Sgraph.x_risk g))

let test_sgraph_shift4 () =
  let c = Bist_bench.Teaching.shift4 () in
  let g = Sgraph.analyze c in
  Alcotest.(check int) "ffs" 4 (Sgraph.num_ffs g);
  Alcotest.(check int) "largest scc" 1 (Sgraph.largest_scc g);
  Alcotest.(check int) "no cycles" 0 (Sgraph.nontrivial_sccs g);
  Alcotest.(check int) "depth = chain length" 4 (Sgraph.depth g);
  (* Exact synchronization rounds down the chain. *)
  let levels =
    Array.to_list (Netlist.dffs c)
    |> List.map (fun ff -> Sgraph.sync_level g ff)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "levels 0..3" [ 0; 1; 2; 3 ] levels

let test_sgraph_risky_core () =
  let c = risky_core () in
  let g = Sgraph.analyze c in
  Alcotest.(check (list string)) "nothing uninitializable" []
    (List.map (Netlist.name c) (Sgraph.uninitializable g));
  Alcotest.(check int) "q3 at round 0" 0 (Sgraph.sync_level g (Netlist.find_exn c "q3"));
  Alcotest.(check (list string)) "core flagged" [ "q1"; "q2" ]
    (List.sort compare (List.map (Netlist.name c) (Sgraph.x_risk g)))

let test_sgraph_x_loop () =
  let c = x_loop () in
  let g = Sgraph.analyze c in
  Alcotest.(check int) "level -1" (-1) (Sgraph.sync_level g (Netlist.find_exn c "q"));
  Alcotest.(check (list string)) "uninitializable" [ "q" ]
    (List.map (Netlist.name c) (Sgraph.uninitializable g));
  Alcotest.(check (list string)) "also x-risk" [ "q" ]
    (List.map (Netlist.name c) (Sgraph.x_risk g))

let test_x5378_gap_flagged () =
  (* The known x5378 anomaly (DESIGN.md: X-contaminated MISR signature)
     must surface as a named lint finding, not stay a silent gap. *)
  let entry = Option.get (Bist_bench.Registry.find "x5378") in
  let c = entry.Bist_bench.Registry.circuit () in
  let g = Sgraph.analyze (c : Netlist.t) in
  Alcotest.(check bool) "x-risk nonempty" true (Sgraph.x_risk g <> [])

(* Lint driver *)

let categories r = List.map (fun f -> f.Lint.category) r.Lint.findings

let test_lint_clean_circuit () =
  let r = Lint.run (Bist_bench.Teaching.counter3 ()) in
  Alcotest.(check int) "no errors" 0 (Lint.errors r);
  Alcotest.(check int) "no warnings" 0 (Lint.warnings r);
  (* infos always present on sequential circuits *)
  Alcotest.(check bool) "s-graph info" true (List.mem "s-graph" (categories r));
  Alcotest.(check bool) "scoap info" true (List.mem "scoap" (categories r))

let test_lint_categories () =
  let island =
    parse ~name:"island"
      "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = BUF(a)\nq1 = DFF(q2)\nq2 = DFF(q1)\nz = BUF(q1)\n"
  in
  let r = Lint.run island in
  Alcotest.(check bool) "uncontrollable-ff is an error" true
    (List.exists
       (fun f -> f.Lint.category = "uncontrollable-ff" && f.severity = Lint.Error)
       r.Lint.findings);
  Alcotest.(check bool) "uninitializable-ff" true
    (List.mem "uninitializable-ff" (categories r));
  Alcotest.(check bool) "errors counted" true (Lint.errors r >= 1);
  let orphaned =
    parse ~name:"d" "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\norphan = BUF(a)\n"
  in
  let r2 = Lint.run orphaned in
  Alcotest.(check bool) "dangling" true (List.mem "dangling" (categories r2));
  Alcotest.(check bool) "unobservable" true (List.mem "unobservable" (categories r2));
  let r3 = Lint.run (const_blocked ()) in
  Alcotest.(check bool) "untestable-faults" true
    (List.mem "untestable-faults" (categories r3));
  let r4 = Lint.run (risky_core ()) in
  Alcotest.(check bool) "x-risk" true (List.mem "x-risk" (categories r4))

let test_lint_pp () =
  let r = Lint.run (const_blocked ()) in
  let text = Format.asprintf "%a" Lint.pp r in
  Alcotest.(check bool) "circuit name" true (contains text "tied:");
  Alcotest.(check bool) "severity tag" true (contains text "warning[untestable-faults]");
  Alcotest.(check bool) "summary line" true (contains text "error(s)");
  let rr = Lint.run (risky_core ()) in
  let t2 = Format.asprintf "%a" Lint.pp rr in
  Alcotest.(check bool) "x-risk line lists ffs" true (contains t2 "q1 q2")

let test_lint_json () =
  let check_json c wanted_categories =
    let r = Lint.run c in
    let json = Lint.to_json r in
    Alcotest.(check bool) "object shape" true
      (contains json "{\"circuit\":" && contains json "\"findings\":[");
    List.iter
      (fun cat ->
        Alcotest.(check bool) ("category " ^ cat) true
          (contains json (Printf.sprintf "\"category\":%S" cat)))
      wanted_categories
  in
  check_json (const_blocked ()) [ "untestable-faults"; "scoap" ];
  check_json (risky_core ()) [ "x-risk"; "s-graph" ];
  check_json
    (parse ~name:"island"
       "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = BUF(a)\nq1 = DFF(q2)\nq2 = DFF(q1)\nz = BUF(q1)\n")
    [ "uncontrollable-ff"; "uninitializable-ff" ];
  (* escaping: a name with a quote must stay valid-ish *)
  Alcotest.(check string) "string escaping" "\"a\\\"b\""
    (Lint.to_json { Lint.circuit = "a\"b"; findings = [] }
     |> fun s -> String.sub s 11 6)

let suite =
  [
    Alcotest.test_case "scoap s27 cc" `Quick test_scoap_cc;
    Alcotest.test_case "scoap s27 sc" `Quick test_scoap_sc;
    Alcotest.test_case "scoap s27 co" `Quick test_scoap_co;
    Alcotest.test_case "scoap s27 so" `Quick test_scoap_so;
    Alcotest.test_case "scoap saturating" `Quick test_scoap_saturates;
    Alcotest.test_case "hardest-first order" `Quick test_order_hardest_first;
    Alcotest.test_case "prover const-blocked" `Quick test_prover_const_blocked;
    Alcotest.test_case "prover unobservable cone" `Quick test_prover_unobservable;
    Alcotest.test_case "prover x loop" `Quick test_prover_x_loop;
    Alcotest.test_case "prescreen counts" `Quick test_prescreen_counts;
    Alcotest.test_case "no false positives (known circuits)" `Quick
      test_no_false_positives_known;
    test_no_false_positives_synthetic;
    Alcotest.test_case "engine prescreen" `Quick test_engine_prescreen;
    Alcotest.test_case "engine prescreen off" `Quick test_engine_prescreen_off;
    Alcotest.test_case "sgraph s27" `Quick test_sgraph_s27;
    Alcotest.test_case "sgraph shift4" `Quick test_sgraph_shift4;
    Alcotest.test_case "sgraph risky core" `Quick test_sgraph_risky_core;
    Alcotest.test_case "sgraph x loop" `Quick test_sgraph_x_loop;
    Alcotest.test_case "x5378 gap is flagged" `Quick test_x5378_gap_flagged;
    Alcotest.test_case "lint clean circuit" `Quick test_lint_clean_circuit;
    Alcotest.test_case "lint categories" `Quick test_lint_categories;
    Alcotest.test_case "lint pp" `Quick test_lint_pp;
    Alcotest.test_case "lint json" `Quick test_lint_json;
  ]
